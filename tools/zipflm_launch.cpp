// zipflm_launch — the rank-runner that turns one program into an
// N-process collective world.
//
//   zipflm_launch -n 4 [--rendezvous unix:/tmp/zipflm_rdzv] -- prog args...
//
// Forks N copies of `prog`, each with the environment
// ZIPFLM_NET_RANK / ZIPFLM_NET_WORLD / ZIPFLM_NET_RENDEZVOUS set, so
// the child joins the world with ProcessGroup::connect_from_env().
// Waits for all children and exits with the first nonzero child status
// (mirroring mpirun).
//
//   zipflm_launch --selftest 4
//
// forks N copies of ITSELF that rendezvous and cross-check a barrier,
// an allreduce, an allgatherv, and a broadcast against closed-form
// expectations — the multi-process smoke test registered in ctest.
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "zipflm/comm/process_group.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -n <ranks> [--rendezvous <unix:prefix|tcp:host:"
               "port>] -- <prog> [args...]\n"
               "       %s --selftest <ranks>\n",
               argv0, argv0);
}

std::string default_rendezvous() {
  return "unix:/tmp/zipflm_launch." + std::to_string(::getpid());
}

/// Spawn `world` children with the rendezvous env set; child c runs
/// argv (or, when argv is empty, `self_fn`).  Returns the first
/// nonzero child exit status, else 0.
int spawn_world(int world, const std::string& rendezvous,
                const std::vector<char*>& child_argv,
                int (*self_fn)(int, int, const std::string&)) {
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::setenv("ZIPFLM_NET_RANK", std::to_string(r).c_str(), 1);
      ::setenv("ZIPFLM_NET_WORLD", std::to_string(world).c_str(), 1);
      ::setenv("ZIPFLM_NET_RENDEZVOUS", rendezvous.c_str(), 1);
      if (!child_argv.empty()) {
        ::execvp(child_argv[0], child_argv.data());
        std::perror("execvp");
        std::_Exit(127);
      }
      std::_Exit(self_fn(r, world, rendezvous));
    }
    pids.push_back(pid);
  }
  int first_bad = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      std::perror("waitpid");
      first_bad = first_bad == 0 ? 1 : first_bad;
      continue;
    }
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
    }
    if (code != 0 && first_bad == 0) first_bad = code;
  }
  return first_bad;
}

#define SELF_CHECK(cond, what)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "selftest rank %d FAILED: %s\n", rank,     \
                   (what));                                           \
      return 1;                                                       \
    }                                                                 \
  } while (false)

/// One rank of the selftest world: rendezvous, then cross-check each
/// collective family against its closed-form result.
int selftest_rank(int rank, int world, const std::string& rendezvous) {
  zipflm::ProcessGroup::Options opt;
  opt.collective_timeout_seconds = 20.0;
  auto pg = zipflm::ProcessGroup::connect(rendezvous, rank, world, opt);
  zipflm::Communicator& comm = pg->comm();
  SELF_CHECK(comm.rank() == rank && comm.world_size() == world,
             "handshake identity");

  comm.barrier();

  std::vector<float> buf(37);
  for (std::size_t j = 0; j < buf.size(); ++j) {
    buf[j] = static_cast<float>(rank + 1) * static_cast<float>(j + 1);
  }
  comm.allreduce_sum(std::span<float>(buf));
  const float ranks_sum =
      static_cast<float>(world) * static_cast<float>(world + 1) / 2.0f;
  for (std::size_t j = 0; j < buf.size(); ++j) {
    SELF_CHECK(buf[j] == ranks_sum * static_cast<float>(j + 1),
               "allreduce_sum value");
  }

  // Variable blocks: rank r contributes r+1 ints of value r.
  std::vector<int> mine(static_cast<std::size_t>(rank) + 1, rank);
  std::vector<int> gathered;
  std::vector<std::size_t> counts;
  comm.allgatherv(std::span<const int>(mine), gathered, &counts);
  std::size_t at = 0;
  for (int r = 0; r < world; ++r) {
    SELF_CHECK(counts[static_cast<std::size_t>(r)] ==
                   static_cast<std::size_t>(r) + 1,
               "allgatherv counts");
    for (int k = 0; k <= r; ++k) {
      SELF_CHECK(gathered[at++] == r, "allgatherv payload");
    }
  }

  std::vector<double> msg(5, rank == 0 ? 3.25 : 0.0);
  comm.broadcast(std::span<double>(msg), 0);
  for (const double v : msg) SELF_CHECK(v == 3.25, "broadcast payload");

  const auto& led = pg->ledger();
  SELF_CHECK(led.barrier_calls == 1 && led.allreduce_calls == 1 &&
                 led.allgather_calls == 1 && led.broadcast_calls == 1,
             "ledger call counts");
  SELF_CHECK(world == 1 || led.wire_bytes_sent > 0,
             "wire bytes were recorded");
  std::printf("selftest rank %d/%d OK (wire %llu B out, %llu B in)\n", rank,
              world, static_cast<unsigned long long>(led.wire_bytes_sent),
              static_cast<unsigned long long>(led.wire_bytes_received));
  std::fflush(stdout);  // the child exits via _Exit, which skips flushing
  return 0;
}

#undef SELF_CHECK

}  // namespace

int main(int argc, char** argv) {
  int world = 0;
  bool selftest = false;
  std::string rendezvous;
  std::vector<char*> child_argv;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-n" && i + 1 < argc) {
      world = std::atoi(argv[++i]);
    } else if (arg == "--selftest" && i + 1 < argc) {
      selftest = true;
      world = std::atoi(argv[++i]);
    } else if (arg == "--rendezvous" && i + 1 < argc) {
      rendezvous = argv[++i];
    } else if (arg == "--") {
      ++i;
      break;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  for (; i < argc; ++i) child_argv.push_back(argv[i]);
  if (!child_argv.empty()) child_argv.push_back(nullptr);

  if (world <= 0 || (!selftest && child_argv.empty())) {
    usage(argv[0]);
    return 2;
  }
  if (rendezvous.empty()) rendezvous = default_rendezvous();

  if (selftest) {
    const int bad = spawn_world(world, rendezvous, {}, &selftest_rank);
    std::printf("selftest %s: %d ranks over %s\n", bad == 0 ? "OK" : "FAILED",
                world, rendezvous.c_str());
    return bad;
  }
  return spawn_world(world, rendezvous, child_argv, nullptr);
}
