// zipflm_top — live per-shard introspection of a running serve world.
//
// Joins a serve socket world as one more client rank and polls the
// frontend's Stats frame (serve/wire.hpp), which ships the server
// process's metrics registry.  Successive snapshots are diffed into
// rates and window percentiles — qps and p50/p95/p99 describe the
// interval between polls, not the process lifetime — and rendered as
// one table per poll: a row per shard plus the fleet aggregate.
//
//   zipflm_top <address> --rank R --world N [--server-rank 0]
//              [--interval seconds] [--count N] [--scope serve]
//
// joins the rendezvous world the frontend was launched in (the polling
// rank must be one of the world's client ranks).  --count 0 polls until
// killed.
//
//   zipflm_top --selftest
//
// runs the whole loop in one process — a 2-shard ShardedServer behind a
// SocketFrontend on a 3-endpoint socketpair mesh, one load rank, one
// top rank — and exits nonzero unless per-shard rows surface live
// traffic.  CI's smoke for the introspection path.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "zipflm/nn/lm_model.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/net/socket.hpp"
#include "zipflm/serve/serve_client.hpp"
#include "zipflm/serve/sharded_server.hpp"
#include "zipflm/serve/socket_frontend.hpp"
#include "zipflm/support/stopwatch.hpp"

namespace {

using namespace zipflm;

std::uint64_t counter_or_zero(const obs::MetricsSnapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

double gauge_or_zero(const obs::MetricsSnapshot& snap,
                     const std::string& name) {
  const auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0.0 : it->second;
}

/// Shard indices present in the snapshot: every k with a
/// "<scope>/s<k>/request_seconds" histogram.
std::vector<std::size_t> discover_shards(const obs::MetricsSnapshot& snap,
                                         const std::string& scope) {
  std::vector<std::size_t> shards;
  const std::string prefix = scope + "/s";
  const std::string suffix = "/request_seconds";
  for (const auto& [name, hist] : snap.histograms) {
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    shards.push_back(static_cast<std::size_t>(
        std::strtoull(digits.c_str(), nullptr, 10)));
  }
  return shards;
}

/// One row of the table, computed from the window between two polls.
struct Row {
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double queue_depth = 0.0;
  std::uint64_t window_count = 0;
  std::uint64_t done_evictions = 0;  ///< delta over the window
};

Row window_row(const obs::MetricsSnapshot& now,
               const obs::MetricsSnapshot& prev, bool have_prev,
               const std::string& base, double dt_seconds) {
  Row row;
  const std::uint64_t completed_now =
      counter_or_zero(now, base + "/requests_completed");
  const std::uint64_t completed_prev =
      have_prev ? counter_or_zero(prev, base + "/requests_completed") : 0;
  if (dt_seconds > 0) {
    row.qps = static_cast<double>(completed_now - completed_prev) / dt_seconds;
  }
  row.done_evictions =
      counter_or_zero(now, base + "/done_evictions") -
      (have_prev ? counter_or_zero(prev, base + "/done_evictions") : 0);
  row.queue_depth = gauge_or_zero(now, base + "/queue_depth");

  const auto hit = now.histograms.find(base + "/request_seconds");
  if (hit != now.histograms.end()) {
    obs::HistogramSnapshot window = hit->second;
    if (have_prev) {
      const auto pit = prev.histograms.find(hit->first);
      if (pit != prev.histograms.end()) window = hit->second.since(pit->second);
    }
    row.window_count = window.count;
    if (window.count > 0) {
      row.p50_ms = window.percentile(0.50) * 1e3;
      row.p95_ms = window.percentile(0.95) * 1e3;
      row.p99_ms = window.percentile(0.99) * 1e3;
    }
  }
  return row;
}

void print_row(const char* label, const Row& row) {
  std::printf("%-6s %9.1f %8.2f %8.2f %8.2f %7.0f %9" PRIu64 " %8" PRIu64
              "\n",
              label, row.qps, row.p50_ms, row.p95_ms, row.p99_ms,
              row.queue_depth, row.window_count, row.done_evictions);
}

/// One poll cycle: fetch, diff against `prev`, render.  Returns the
/// fleet-aggregate row so callers can assert on it.
Row poll_once(serve::ServeClient& client, const std::string& scope,
              obs::MetricsSnapshot& prev, bool& have_prev, double dt_seconds,
              std::uint64_t poll_index) {
  const obs::MetricsSnapshot snap = client.stats(scope.empty() ? "" : scope);

  std::printf("\nzipflm_top  scope=%s  poll %" PRIu64 "  window %.2fs\n",
              scope.c_str(), poll_index, have_prev ? dt_seconds : 0.0);
  std::printf("%-6s %9s %8s %8s %8s %7s %9s %8s\n", "shard", "qps", "p50ms",
              "p95ms", "p99ms", "queue", "reqs", "evict");

  for (const std::size_t k : discover_shards(snap, scope)) {
    const std::string base = scope + "/s" + std::to_string(k);
    const Row row = window_row(snap, prev, have_prev, base, dt_seconds);
    const std::string label = "s" + std::to_string(k);
    print_row(label.c_str(), row);
  }

  const Row total = window_row(snap, prev, have_prev, scope, dt_seconds);
  print_row("all", total);

  const std::uint64_t steals_now = counter_or_zero(snap, scope + "/steals");
  const std::uint64_t steals_prev =
      have_prev ? counter_or_zero(prev, scope + "/steals") : 0;
  const std::uint64_t rejected_now =
      counter_or_zero(snap, scope + "/requests_rejected");
  const std::uint64_t rejected_prev =
      have_prev ? counter_or_zero(prev, scope + "/requests_rejected") : 0;
  std::printf("steals +%" PRIu64 "  rejected +%" PRIu64 "\n",
              steals_now - steals_prev, rejected_now - rejected_prev);

  prev = snap;
  have_prev = true;
  return total;
}

int run_poll_loop(serve::ServeClient& client, const std::string& scope,
                  double interval_seconds, std::uint64_t count) {
  obs::MetricsSnapshot prev;
  bool have_prev = false;
  Stopwatch watch;
  for (std::uint64_t poll = 0; count == 0 || poll < count; ++poll) {
    if (poll != 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(interval_seconds));
    }
    const double dt = watch.seconds();
    watch.reset();
    poll_once(client, scope, prev, have_prev, dt, poll);
    std::fflush(stdout);
  }
  return 0;
}

// ---- selftest -------------------------------------------------------

int selftest() {
  CharLmConfig cfg;
  cfg.embed_dim = 16;
  cfg.hidden_dim = 32;
  cfg.depth = 1;
  std::vector<std::unique_ptr<CharLm>> replicas;
  std::vector<LmModel*> models;
  for (int k = 0; k < 2; ++k) {
    replicas.push_back(std::make_unique<CharLm>(cfg));
    models.push_back(replicas.back().get());
  }
  serve::ShardedServeOptions opts;
  serve::ShardedServer server(models, opts);
  server.start();

  auto world = net::socketpair_mesh(3);
  serve::SocketFrontend frontend(*world[0], server);
  std::thread frontend_thread([&] { frontend.run(); });

  // Load rank: enough sessions that SplitMix64 lands on both shards.
  std::thread load_thread([&] {
    serve::ServeClient client(*world[1], /*server_rank=*/0);
    for (std::uint64_t round = 0; round < 4; ++round) {
      std::vector<std::uint64_t> ids;
      for (std::uint64_t s = 1; s <= 12; ++s) {
        serve::Request req;
        req.session_id = s;
        req.context = {static_cast<Index>(1 + s % 7), 2, 3};
        req.new_tokens = 4;
        req.seed = 100 + round * 100 + s;
        const serve::Admission a = client.submit(req);
        if (a.accepted) ids.push_back(a.request_id);
      }
      for (const std::uint64_t id : ids) (void)client.wait(id);
    }
    client.bye();
  });

  // Top rank: poll while the load runs, then once after it drained.
  int failures = 0;
  {
    serve::ServeClient top(*world[2], /*server_rank=*/0);
    obs::MetricsSnapshot prev;
    bool have_prev = false;
    Stopwatch watch;
    for (int poll = 0; poll < 3; ++poll) {
      if (poll == 2) load_thread.join();  // final poll sees all traffic
      const double dt = watch.seconds();
      watch.reset();
      poll_once(top, "serve", prev, have_prev, dt, poll);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }

    // The last snapshot must expose both shards and a fleet aggregate
    // consistent with them — the parity the Stats frame promises.
    const auto shards = discover_shards(prev, "serve");
    if (shards.size() != 2) {
      std::fprintf(stderr, "selftest: expected 2 shards, saw %zu\n",
                   shards.size());
      ++failures;
    }
    std::uint64_t per_shard_total = 0;
    for (const std::size_t k : shards) {
      per_shard_total += counter_or_zero(
          prev, "serve/s" + std::to_string(k) + "/requests_completed");
    }
    const std::uint64_t aggregate =
        counter_or_zero(prev, "serve/requests_completed");
    if (aggregate != 4 * 12 || per_shard_total != aggregate) {
      std::fprintf(stderr,
                   "selftest: aggregate %" PRIu64 " vs per-shard %" PRIu64
                   " (want 48)\n",
                   aggregate, per_shard_total);
      ++failures;
    }
    top.bye();
  }

  frontend_thread.join();
  server.stop();
  if (failures == 0) std::printf("\nzipflm_top selftest OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string address;
  std::string scope = "serve";
  int rank = -1, world = -1, server_rank = 0;
  double interval = 1.0;
  std::uint64_t count = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selftest") return selftest();
    if (arg == "--rank") rank = std::atoi(next());
    else if (arg == "--world") world = std::atoi(next());
    else if (arg == "--server-rank") server_rank = std::atoi(next());
    else if (arg == "--interval") interval = std::strtod(next(), nullptr);
    else if (arg == "--count") count = std::strtoull(next(), nullptr, 10);
    else if (arg == "--scope") scope = next();
    else if (!arg.empty() && arg[0] != '-' && address.empty()) address = arg;
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (address.empty() || rank < 0 || world < 2) {
    std::fprintf(stderr,
                 "usage: zipflm_top <address> --rank R --world N "
                 "[--server-rank 0] [--interval 1.0] [--count 0] "
                 "[--scope serve]\n"
                 "       zipflm_top --selftest\n");
    return 2;
  }

  auto transport = net::rendezvous(address, rank, world);
  serve::ServeClient client(*transport, server_rank);
  const int code = run_poll_loop(client, scope, interval, count);
  client.bye();
  return code;
}
