#!/usr/bin/env bash
# Local/CI gate, split into independently runnable tiers:
#
#   1     full ctest suite in the default build
#   1b    fault injection + exact resume, serially (real collective
#         timeouts blur when the tests share cores with the suite)
#   1c    observability: trace export end-to-end + the <2% disabled-
#         instrumentation overhead bar
#   net   socket-transport suites (real kernel sockets, forked ranks),
#         serially — they own /tmp rendezvous paths and kernel socket
#         buffers, so sibling tests turn their timeouts into flakes
#   serve the serving suites (single-server regressions, sharded
#         routing, wire protocol, socket frontend) plus a short soak
#         smoke with latency/rejection gates
#   obs   distributed telemetry: the obs-labeled suites, a 4-process
#         merged-trace collection with clock-alignment validation, and
#         the <=2% overhead bar on the enabled-with-telemetry path
#   shard row-sharded embeddings: the shard-labeled suite (alltoallv +
#         trainer parity vs the replicated oracle, resume, re-shard)
#         plus the 4-process socket bitwise gate with --shard-embedding
#   tsan  the whole suite under ThreadSanitizer
#   asan  the whole suite under Address+UndefinedBehavior sanitizers
#
# Usage: scripts/check.sh [--tier 1|1b|1c|net|serve|obs|shard|tsan|asan] [--tsan-only | --no-tsan]
# With no arguments every tier runs, in order.  --no-tsan skips the
# sanitizer rebuilds (both tsan and asan).  Each tier configures and
# builds what it needs, so `scripts/check.sh --tier 1b` works from a
# clean checkout — CI runs the tiers as separate matrix legs.
set -euo pipefail
cd "$(dirname "$0")/.."

# Extra cmake configure flags (e.g. ZIPFLM_CHECK_FLAGS="-DZIPFLM_SIMD=scalar"
# for the CI scalar leg).
CHECK_FLAGS=${ZIPFLM_CHECK_FLAGS:-}

tiers=()
case "${1:-}" in
  --tier)
    case "${2:-}" in
      1|1b|1c|net|serve|obs|shard|tsan|asan) tiers=("$2") ;;
      *) echo "usage: $0 [--tier 1|1b|1c|net|serve|obs|shard|tsan|asan] [--tsan-only | --no-tsan]" >&2
         exit 2 ;;
    esac ;;
  --tsan-only) tiers=(tsan) ;;
  --no-tsan) tiers=(1 1b 1c net serve obs shard) ;;
  "") tiers=(1 1b 1c net serve obs shard tsan asan) ;;
  *) echo "usage: $0 [--tier 1|1b|1c|net|serve|obs|shard|tsan|asan] [--tsan-only | --no-tsan]" >&2
     exit 2 ;;
esac

ensure_build() {
  # shellcheck disable=SC2086  # CHECK_FLAGS is a flag list on purpose
  cmake -B build -S . $CHECK_FLAGS
  cmake --build build -j
}

tier_1() {
  echo "== tier-1: default build =="
  ensure_build
  ctest --test-dir build --output-on-failure -j
}

tier_1b() {
  echo "== tier-1b: fault injection + exact resume =="
  ensure_build
  ctest --test-dir build --output-on-failure \
    -R 'test_comm_faults|test_checkpoint_resume'
}

tier_1c() {
  echo "== tier-1c: observability =="
  ensure_build
  # End-to-end trace export: a short traced training run must produce a
  # parseable Chrome trace-event file with one lane per simulated rank.
  trace_out=$(mktemp /tmp/zipflm_trace.XXXXXX.json)
  ./build/examples/lm_train_cli --gpus 2 --epochs 1 --tokens 6000 \
    --vocab 50 --trace "$trace_out" --metrics-every 16 > /dev/null
  if command -v python3 > /dev/null; then
    python3 - "$trace_out" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
lanes = {e["args"]["name"] for e in d["traceEvents"]
         if e["ph"] == "M" and e["name"] == "thread_name"}
assert {"rank 0", "rank 1"} <= lanes, lanes
print(f"trace OK: {len(d['traceEvents'])} events, lanes {sorted(lanes)}")
EOF
  else
    # Parse-level validation needs python3; the structural check below
    # keeps this from silently passing on a minimal container.
    echo "WARNING: python3 not found; trace JSON checked structurally only" >&2
    grep -q '"traceEvents"' "$trace_out" || {
      echo "trace output has no traceEvents array" >&2; exit 1; }
    grep -q '"rank 0"' "$trace_out" && grep -q '"rank 1"' "$trace_out" || {
      echo "trace output is missing per-rank lanes" >&2; exit 1; }
    echo "trace OK (structural): per-rank lanes present"
  fi
  rm -f "$trace_out"

  # Compiled-in-but-disabled tracing must stay under 2% of a train step.
  # awk-only on purpose: this bar must fail loudly even where python3 is
  # absent (set -o pipefail propagates the awk exit status).
  ./build/bench/bench_obs_overhead | tee /tmp/zipflm_obs_bench.txt
  grep '^RESULT' /tmp/zipflm_obs_bench.txt | awk -F'"est_disabled_overhead_pct":' \
    '{ pct = $2 + 0
       if (pct > 2.0) { printf "obs overhead %.3f%% exceeds 2%% bar\n", pct; exit 1 }
       printf "obs overhead %.3f%% within 2%% bar\n", pct }'
}

tier_net() {
  echo "== tier-net: socket transport =="
  ensure_build
  # Everything labeled `net` is RUN_SERIAL: test_net_transport (raw
  # transport + rendezvous + collective/trainer parity across backends),
  # test_comm_faults (the fault battery re-run over real sockets), and
  # launch_selftest (zipflm_launch forking 4 OS processes).
  ctest --test-dir build --output-on-failure -L net
  # The wire-codec suite (varint/packed/int8 round trips, coded
  # collective parity across backends, codec-mismatch detection).
  ctest --test-dir build --output-on-failure -L codec
  # The subsystem's acceptance gate: 4 forked processes training over
  # UNIX-socket ring allreduce must land bitwise on the thread backend's
  # losses and weights.  bench_train_step exits nonzero on divergence.
  ./build/bench/bench_train_step --gpus 4 --transport socket \
    | tee /tmp/zipflm_net_bench.txt
  grep -q '"equal_to_thread":true' /tmp/zipflm_net_bench.txt || {
    echo "socket transport diverged from thread backend" >&2; exit 1; }
}

tier_serve() {
  echo "== tier-serve: sharded serving =="
  ensure_build
  # Everything labeled `serve`: test_serve (facade + batching + cache),
  # test_serve_stress (concurrent submit/stop/wait), test_serve_shard
  # (single-server regressions, sharded routing, wire protocol, socket
  # frontend parity).
  ctest --test-dir build --output-on-failure -L serve
  # Short soak smoke with the latency/rejection gates on.  At smoke
  # scale the tail bound is looser than the acceptance run's 5x: a few
  # hundred requests put only a handful of samples above p99, so a
  # single slow batch step dominates the ratio.
  ./build/bench/bench_serve_soak --shards 2 --sessions 48 --requests 480 \
    --open-seconds 0.3 --check --max-p99-over-p50 10 \
    | tee /tmp/zipflm_serve_soak.txt
  grep -q '^RESULT' /tmp/zipflm_serve_soak.txt || {
    echo "serve soak produced no RESULT line" >&2; exit 1; }
}

tier_obs() {
  echo "== tier-obs: distributed telemetry =="
  ensure_build
  # Everything labeled `obs`: test_obs (ring/export/metrics units),
  # test_obs_distributed (clock-offset bounds, telemetry wire frames,
  # merged export, Stats-frame parity, SLO hysteresis), and
  # top_selftest (live introspection loop over a socketpair world).
  ctest --test-dir build --output-on-failure -L obs
  # The subsystem's acceptance gate: 4 forked processes train over real
  # sockets while traced; rank 0 collects every peer's lanes over the
  # quiesced training transport and writes ONE clock-aligned document.
  merged=$(mktemp /tmp/zipflm_merged_trace.XXXXXX.json)
  ./build/bench/bench_train_step --gpus 4 --transport socket \
    --trace "$merged" 4 4 2 > /dev/null
  if command -v python3 > /dev/null; then
    python3 - "$merged" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
ev = d["traceEvents"]
procs = {e["pid"]: e["args"]["name"] for e in ev
         if e["ph"] == "M" and e["name"] == "process_name"}
assert sorted(procs.values()) == [f"rank {r}" for r in range(4)], procs
lanes = {(e["pid"], e["args"]["name"]) for e in ev
         if e["ph"] == "M" and e["name"] == "thread_name"}
for pid, label in procs.items():
    assert (pid, label) in lanes, (pid, label, lanes)
# Spans are ring-ordered by END time (nested spans emit at scope exit),
# so per-lane ends must be monotone; a violation means clock alignment
# reordered a process's own events.
ends = {}
for e in ev:
    if e["ph"] != "X":
        continue
    lane = (e["pid"], e["tid"])
    end = e["ts"] + e["dur"]
    assert end >= ends.get(lane, 0.0), (lane, e)
    ends[lane] = end
# Cross-process sanity: the i-th barrier of every rank is one
# generation; after alignment the four intervals must overlap (2ms
# slack for the estimator error bound plus scheduling).
gens = {}
for e in ev:
    if e["ph"] == "X" and e["name"] == "barrier":
        gens.setdefault(e["pid"], []).append((e["ts"], e["ts"] + e["dur"]))
counts = {len(v) for v in gens.values()}
assert len(gens) == 4 and len(counts) == 1 and counts != {0}, gens
for gen in zip(*(gens[pid] for pid in sorted(gens))):
    start = max(b[0] for b in gen)
    end = min(b[1] for b in gen)
    assert start - end <= 2000.0, gen
print(f"merged trace OK: {sum(1 for e in ev if e['ph'] == 'X')} spans, "
      f"4 processes, {len(next(iter(gens.values())))} aligned barrier "
      "generations")
EOF
  else
    echo "WARNING: python3 not found; merged trace checked structurally only" >&2
    for r in 0 1 2 3; do
      grep -q "\"rank $r\"" "$merged" || {
        echo "merged trace is missing rank $r" >&2; exit 1; }
    done
    grep -q '"process_name"' "$merged" || {
      echo "merged trace has no process metadata" >&2; exit 1; }
    echo "merged trace OK (structural): all four process lanes present"
  fi
  rm -f "$merged"

  # Both overhead bars: the always-on disabled path AND the
  # enabled-with-telemetry path (span capture + wire encoding) must
  # stay under 2% of a train step.
  ./build/bench/bench_obs_overhead | tee /tmp/zipflm_obs_bench.txt
  grep '^RESULT' /tmp/zipflm_obs_bench.txt \
    | awk -F'"est_disabled_overhead_pct":' \
    '{ pct = $2 + 0
       if (pct > 2.0) { printf "disabled-trace overhead %.3f%% exceeds 2%% bar\n", pct; exit 1 }
       printf "disabled-trace overhead %.3f%% within 2%% bar\n", pct }'
  grep '^RESULT' /tmp/zipflm_obs_bench.txt \
    | awk -F'"est_enabled_overhead_pct":' \
    '{ pct = $2 + 0
       if (pct > 2.0) { printf "enabled+telemetry overhead %.3f%% exceeds 2%% bar\n", pct; exit 1 }
       printf "enabled+telemetry overhead %.3f%% within 2%% bar\n", pct }'
}

tier_shard() {
  echo "== tier-shard: row-sharded embeddings =="
  ensure_build
  # Everything labeled `shard`: test_sharded_embedding (shard geometry,
  # alltoallv contents + ledger parity across all three backends, pull
  # verbatim-bytes, push-vs-replicated-allreduce bitwise fold, trainer
  # parity at G in {1,4}, kill/resume, G=4 -> G=2 re-shard on load).
  ctest --test-dir build --output-on-failure -L shard
  # The subsystem's acceptance gate: 4 forked processes training the
  # row-sharded table over UNIX sockets must land bitwise on BOTH the
  # thread backend AND the all-replicated oracle world.
  # bench_train_step exits nonzero on either divergence.
  ./build/bench/bench_train_step 4 8 2 --gpus 4 --transport socket \
    --shard-embedding | tee /tmp/zipflm_shard_bench.txt
  grep -q '"shard_equal_to_replicated":true' /tmp/zipflm_shard_bench.txt || {
    echo "sharded embedding diverged from the replicated oracle" >&2; exit 1; }
  grep -q '"equal_to_thread":true' /tmp/zipflm_shard_bench.txt || {
    echo "sharded socket world diverged from thread backend" >&2; exit 1; }
}

tier_tsan() {
  echo "== tier-tsan: ThreadSanitizer build =="
  # shellcheck disable=SC2086
  cmake -B build-tsan -S . -DZIPFLM_SANITIZE=thread $CHECK_FLAGS
  cmake --build build-tsan -j
  # A couple of worker threads is enough to expose ordering bugs while
  # keeping the TSAN run tractable on small containers.  The suite
  # includes test_serve_stress (concurrent submit/stop/wait),
  # test_comm_faults (rank death + retirement), and the overlapped
  # exchange tests (per-rank comm threads) — the paths where a shutdown
  # or handoff race would hide.
  ZIPFLM_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j
}

tier_asan() {
  echo "== tier-asan: Address+UB sanitizer build =="
  # shellcheck disable=SC2086
  cmake -B build-asan -S . -DZIPFLM_SANITIZE=address,undefined $CHECK_FLAGS
  cmake --build build-asan -j
  # Make every UBSAN report fatal: a diagnostic that only prints would
  # otherwise pass the gate.  Leak checking stays at ASAN's default
  # (on), catching allocation leaks in the forked socket ranks too.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j
}

for tier in "${tiers[@]}"; do
  case "$tier" in
    1) tier_1 ;;
    1b) tier_1b ;;
    1c) tier_1c ;;
    net) tier_net ;;
    serve) tier_serve ;;
    obs) tier_obs ;;
    shard) tier_shard ;;
    tsan) tier_tsan ;;
    asan) tier_asan ;;
  esac
done

echo "check.sh: all requested tiers passed: ${tiers[*]}"
