#!/usr/bin/env bash
# Full local gate: the tier-1 suite in the default configuration, then
# the same suite under ThreadSanitizer to shake races out of the thread
# pool, the parallel kernels, and the serving engine.
#
# Usage: scripts/check.sh [--tsan-only | --no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
case "${1:-}" in
  --tsan-only) run_tier1=0 ;;
  --no-tsan) run_tsan=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only | --no-tsan]" >&2; exit 2 ;;
esac

if [[ "$run_tier1" == 1 ]]; then
  echo "== tier-1: default build =="
  cmake -B build -S .
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j

  echo "== tier-1b: fault injection + exact resume =="
  # Re-run the crash-safety suite serially: rank-kill tests rely on real
  # collective timeouts, which a loaded machine can blur when the tests
  # share cores with the rest of the suite.
  ctest --test-dir build --output-on-failure \
    -R 'test_comm_faults|test_checkpoint_resume'

  echo "== tier-1c: observability =="
  # End-to-end trace export: a short traced training run must produce a
  # parseable Chrome trace-event file with one lane per simulated rank.
  trace_out=$(mktemp /tmp/zipflm_trace.XXXXXX.json)
  ./build/examples/lm_train_cli --gpus 2 --epochs 1 --tokens 6000 \
    --vocab 50 --trace "$trace_out" --metrics-every 16 > /dev/null
  if command -v python3 > /dev/null; then
    python3 - "$trace_out" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
lanes = {e["args"]["name"] for e in d["traceEvents"]
         if e["ph"] == "M" and e["name"] == "thread_name"}
assert {"rank 0", "rank 1"} <= lanes, lanes
print(f"trace OK: {len(d['traceEvents'])} events, lanes {sorted(lanes)}")
EOF
  else
    echo "python3 not found; skipping trace JSON validation"
  fi
  rm -f "$trace_out"

  # Compiled-in-but-disabled tracing must stay under 2% of a train step.
  ./build/bench/bench_obs_overhead | tee /tmp/zipflm_obs_bench.txt
  grep '^RESULT' /tmp/zipflm_obs_bench.txt | awk -F'"est_disabled_overhead_pct":' \
    '{ pct = $2 + 0
       if (pct > 2.0) { printf "obs overhead %.3f%% exceeds 2%% bar\n", pct; exit 1 }
       printf "obs overhead %.3f%% within 2%% bar\n", pct }'
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== tier-2: ThreadSanitizer build =="
  cmake -B build-tsan -S . -DZIPFLM_SANITIZE=thread
  cmake --build build-tsan -j
  # A couple of worker threads is enough to expose ordering bugs while
  # keeping the TSAN run tractable on small containers.  The suite
  # includes test_serve_stress (concurrent submit/stop/wait) and
  # test_comm_faults (rank death + retirement), the two paths where a
  # shutdown race would hide.
  ZIPFLM_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j
fi

echo "check.sh: all requested suites passed"
