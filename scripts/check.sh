#!/usr/bin/env bash
# Full local gate: the tier-1 suite in the default configuration, then
# the same suite under ThreadSanitizer to shake races out of the thread
# pool, the parallel kernels, and the serving engine.
#
# Usage: scripts/check.sh [--tsan-only | --no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
case "${1:-}" in
  --tsan-only) run_tier1=0 ;;
  --no-tsan) run_tsan=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only | --no-tsan]" >&2; exit 2 ;;
esac

if [[ "$run_tier1" == 1 ]]; then
  echo "== tier-1: default build =="
  cmake -B build -S .
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j

  echo "== tier-1b: fault injection + exact resume =="
  # Re-run the crash-safety suite serially: rank-kill tests rely on real
  # collective timeouts, which a loaded machine can blur when the tests
  # share cores with the rest of the suite.
  ctest --test-dir build --output-on-failure \
    -R 'test_comm_faults|test_checkpoint_resume'
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== tier-2: ThreadSanitizer build =="
  cmake -B build-tsan -S . -DZIPFLM_SANITIZE=thread
  cmake --build build-tsan -j
  # A couple of worker threads is enough to expose ordering bugs while
  # keeping the TSAN run tractable on small containers.  The suite
  # includes test_serve_stress (concurrent submit/stop/wait) and
  # test_comm_faults (rank death + retirement), the two paths where a
  # shutdown race would hide.
  ZIPFLM_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j
fi

echo "check.sh: all requested suites passed"
