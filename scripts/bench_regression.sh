#!/usr/bin/env bash
# Throughput regression gate: run bench_train_step in the recorded
# configuration and compare tokens/s against the NEWEST record in
# BENCH_train_step.json.  Fails when the fresh number falls below
# (1 - band) x recorded — the band absorbs runner-to-runner noise, a
# real regression does not hide inside it for long.
#
# Also gates the wire codecs: two extra socket-transport legs (packed,
# int8) must each move strictly fewer wire bytes than the raw leg at
# bitwise-identical losses/weights (bench_train_step exits nonzero on
# divergence).  Wire bytes are deterministic per config, so the gate
# runs a reduced workload; ZIPFLM_WIRE_GATE=0 skips it.
#
# Also smokes the serving soak: a short bench_serve_soak run with its
# latency/rejection gates on (--check).  Latency tails are noisy at
# smoke scale, so the p99 bound is looser than the acceptance run's;
# ZIPFLM_SERVE_GATE=0 skips it.
#
# Also gates observability overhead: bench_obs_overhead's estimates for
# both the disabled-instrumentation path and the enabled-with-telemetry
# path must stay under 2% of a train step; ZIPFLM_OBS_GATE=0 skips it.
#
# Also gates the row-sharded embedding memory claim: at --gpus 4 the
# per-rank shard of the frontier table must stay <= 0.30x the replicated
# table, the replicated configuration must OOM, and the sharded one must
# train (bench_mem_footprint --shard-embedding exits nonzero otherwise).
# The fresh record lands in BENCH_mem_footprint.json for artifact
# upload; ZIPFLM_MEM_GATE=0 skips it.
#
# Every gate fails LOUDLY when a RESULT line or an expected JSON key is
# missing — a renamed field must break the build, not silently pass it.
#
# Usage: scripts/bench_regression.sh [out.json]
#   out.json              fresh RESULT payload, written for artifact upload
#   ZIPFLM_BENCH_BAND     noise band as a fraction (default 0.15)
#   ZIPFLM_BENCH_ARGS     bench arguments (default: the recorded config)
#   ZIPFLM_WIRE_GATE      0 disables the codec wire-byte gate (default 1)
#   ZIPFLM_WIRE_GATE_ARGS workload for the gate legs (default "4 8 2 --gpus 4")
#   ZIPFLM_SERVE_GATE     0 disables the serve-soak smoke (default 1)
#   ZIPFLM_SERVE_GATE_ARGS soak workload (default "--shards 2 --sessions 48
#                         --requests 480 --open-seconds 0.3 --max-p99-over-p50 10")
#   ZIPFLM_OBS_GATE       0 disables the obs overhead gate (default 1)
#   ZIPFLM_MEM_GATE       0 disables the sharded-memory gate (default 1)
#   ZIPFLM_MEM_GATE_RATIO per-rank shard budget as a fraction of the
#                         replicated table (default 0.30)
set -euo pipefail
cd "$(dirname "$0")/.."

# Integer JSON field from a one-record file; a missing key is a loud
# failure (command substitution propagates the exit through set -e).
json_int() {  # file key
  local v
  v=$(grep -o "\"$2\": *[0-9]*" "$1" | head -1 | grep -o '[0-9]*$' || true)
  [[ -n "$v" ]] || { echo "missing \"$2\" in $1" >&2; return 1; }
  echo "$v"
}

out=${1:-bench_result.json}
band=${ZIPFLM_BENCH_BAND:-0.15}
args=${ZIPFLM_BENCH_ARGS:-"8 8 3 --gpus 4"}
records=BENCH_train_step.json

[[ -x build/bench/bench_train_step ]] || {
  echo "build/bench/bench_train_step not built (run cmake --build build)" >&2
  exit 2
}
[[ -f "$records" ]] || { echo "$records not found" >&2; exit 2; }

# Newest record = last tokens_per_s in the append-only records file.
recorded=$(grep -o '"tokens_per_s": *[0-9.]*' "$records" \
  | tail -1 | grep -o '[0-9.]*$')
[[ -n "$recorded" ]] || { echo "no tokens_per_s record in $records" >&2; exit 2; }

echo "running: bench_train_step $args (recorded baseline: $recorded tok/s)"
# shellcheck disable=SC2086  # args is a word list on purpose
./build/bench/bench_train_step $args | tee /tmp/zipflm_bench_run.txt
grep '^RESULT' /tmp/zipflm_bench_run.txt | sed 's/^RESULT //' > "$out"

fresh=$(grep -o '"tokens_per_s": *[0-9.]*' "$out" | grep -o '[0-9.]*$')
[[ -n "$fresh" ]] || { echo "bench produced no RESULT line" >&2; exit 2; }

awk -v fresh="$fresh" -v rec="$recorded" -v band="$band" 'BEGIN {
  floor = rec * (1.0 - band)
  if (fresh < floor) {
    printf "REGRESSION: %.2f tok/s < %.2f (recorded %.2f, band %.0f%%)\n",
           fresh, floor, rec, band * 100
    exit 1
  }
  printf "bench OK: %.2f tok/s >= %.2f (recorded %.2f, band %.0f%%)\n",
         fresh, floor, rec, band * 100
}'

# -- Codec wire-byte gate over the socket transport ------------------
if [[ "${ZIPFLM_WIRE_GATE:-1}" != "0" ]]; then
  gate_args=${ZIPFLM_WIRE_GATE_ARGS:-"4 8 2 --gpus 4"}
  wire_bytes_for() {  # codec name -> wire_bytes from the RESULT line
    # shellcheck disable=SC2086  # gate_args is a word list on purpose
    ./build/bench/bench_train_step $gate_args --transport socket \
      --codec "$1" > "/tmp/zipflm_wire_$1.txt" || {
        echo "socket leg --codec $1 failed (divergence or rank death)" >&2
        exit 1
      }
    grep '^RESULT' "/tmp/zipflm_wire_$1.txt" | sed 's/^RESULT //' \
      > "/tmp/zipflm_wire_$1.json"
    json_int "/tmp/zipflm_wire_$1.json" wire_bytes
  }
  echo "wire gate: bench_train_step $gate_args --transport socket"
  raw_bytes=$(wire_bytes_for raw)
  for codec in packed int8; do
    coded_bytes=$(wire_bytes_for "$codec")
    if (( coded_bytes >= raw_bytes )); then
      echo "WIRE REGRESSION: --codec $codec moved $coded_bytes bytes," \
           ">= raw's $raw_bytes" >&2
      exit 1
    fi
    echo "wire OK: --codec $codec moved $coded_bytes bytes < raw's $raw_bytes"
  done
fi

# -- Serving soak smoke ----------------------------------------------
if [[ "${ZIPFLM_SERVE_GATE:-1}" != "0" ]]; then
  serve_args=${ZIPFLM_SERVE_GATE_ARGS:-"--shards 2 --sessions 48 \
    --requests 480 --open-seconds 0.3 --max-p99-over-p50 10"}
  [[ -x build/bench/bench_serve_soak ]] || {
    echo "build/bench/bench_serve_soak not built" >&2; exit 2; }
  echo "serve gate: bench_serve_soak $serve_args --check"
  # shellcheck disable=SC2086  # serve_args is a word list on purpose
  ./build/bench/bench_serve_soak $serve_args --check \
    | tee /tmp/zipflm_serve_gate.txt
  grep -q '^RESULT' /tmp/zipflm_serve_gate.txt || {
    echo "serve soak produced no RESULT line" >&2; exit 1; }
fi

# -- Observability overhead gate -------------------------------------
if [[ "${ZIPFLM_OBS_GATE:-1}" != "0" ]]; then
  [[ -x build/bench/bench_obs_overhead ]] || {
    echo "build/bench/bench_obs_overhead not built" >&2; exit 2; }
  echo "obs gate: bench_obs_overhead (both overhead estimates <= 2%)"
  ./build/bench/bench_obs_overhead | tee /tmp/zipflm_obs_gate.txt
  grep -q '^RESULT' /tmp/zipflm_obs_gate.txt || {
    echo "bench_obs_overhead produced no RESULT line" >&2; exit 1; }
  for field in est_disabled_overhead_pct est_enabled_overhead_pct; do
    # A renamed/absent field must fail the gate, not read as 0%.
    grep '^RESULT' /tmp/zipflm_obs_gate.txt | grep -q "\"$field\":" || {
      echo "missing \"$field\" in bench_obs_overhead RESULT" >&2; exit 1; }
    grep '^RESULT' /tmp/zipflm_obs_gate.txt \
      | awk -F"\"$field\":" -v field="$field" \
      '{ pct = $2 + 0
         if (pct > 2.0) { printf "OBS REGRESSION: %s %.3f%% exceeds 2%% bar\n", field, pct; exit 1 }
         printf "obs OK: %s %.3f%% within 2%% bar\n", field, pct }'
  done
fi

# -- Row-sharded embedding memory gate -------------------------------
if [[ "${ZIPFLM_MEM_GATE:-1}" != "0" ]]; then
  ratio=${ZIPFLM_MEM_GATE_RATIO:-0.30}
  [[ -x build/bench/bench_mem_footprint ]] || {
    echo "build/bench/bench_mem_footprint not built" >&2; exit 2; }
  echo "mem gate: bench_mem_footprint --shard-embedding --gpus 4" \
       "(per-rank shard <= ${ratio}x replicated table)"
  # The bench itself exits nonzero unless the replicated frontier
  # config OOMs AND the sharded one trains to completion.
  ./build/bench/bench_mem_footprint --shard-embedding --gpus 4 \
    | tee /tmp/zipflm_mem_gate.txt
  grep '^RESULT' /tmp/zipflm_mem_gate.txt | sed 's/^RESULT //' \
    > BENCH_mem_footprint.json
  [[ -s BENCH_mem_footprint.json ]] || {
    echo "bench_mem_footprint produced no RESULT line" >&2; exit 1; }
  repl_bytes=$(json_int BENCH_mem_footprint.json replicated_table_bytes)
  shard_bytes=$(json_int BENCH_mem_footprint.json sharded_table_bytes_per_rank)
  awk -v shard="$shard_bytes" -v repl="$repl_bytes" -v ratio="$ratio" 'BEGIN {
    budget = repl * ratio
    if (shard > budget) {
      printf "MEM REGRESSION: per-rank shard %d bytes > %.0f (%.2fx of the %d-byte replicated table)\n",
             shard, budget, ratio, repl
      exit 1
    }
    printf "mem OK: per-rank shard %d bytes <= %.0f (%.2fx of the %d-byte replicated table)\n",
           shard, budget, ratio, repl
  }'
fi
