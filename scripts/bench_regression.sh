#!/usr/bin/env bash
# Throughput regression gate: run bench_train_step in the recorded
# configuration and compare tokens/s against the NEWEST record in
# BENCH_train_step.json.  Fails when the fresh number falls below
# (1 - band) x recorded — the band absorbs runner-to-runner noise, a
# real regression does not hide inside it for long.
#
# Usage: scripts/bench_regression.sh [out.json]
#   out.json            fresh RESULT payload, written for artifact upload
#   ZIPFLM_BENCH_BAND   noise band as a fraction (default 0.15)
#   ZIPFLM_BENCH_ARGS   bench arguments (default: the recorded config)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-bench_result.json}
band=${ZIPFLM_BENCH_BAND:-0.15}
args=${ZIPFLM_BENCH_ARGS:-"8 8 3 --gpus 4"}
records=BENCH_train_step.json

[[ -x build/bench/bench_train_step ]] || {
  echo "build/bench/bench_train_step not built (run cmake --build build)" >&2
  exit 2
}
[[ -f "$records" ]] || { echo "$records not found" >&2; exit 2; }

# Newest record = last tokens_per_s in the append-only records file.
recorded=$(grep -o '"tokens_per_s": *[0-9.]*' "$records" \
  | tail -1 | grep -o '[0-9.]*$')
[[ -n "$recorded" ]] || { echo "no tokens_per_s record in $records" >&2; exit 2; }

echo "running: bench_train_step $args (recorded baseline: $recorded tok/s)"
# shellcheck disable=SC2086  # args is a word list on purpose
./build/bench/bench_train_step $args | tee /tmp/zipflm_bench_run.txt
grep '^RESULT' /tmp/zipflm_bench_run.txt | sed 's/^RESULT //' > "$out"

fresh=$(grep -o '"tokens_per_s": *[0-9.]*' "$out" | grep -o '[0-9.]*$')
[[ -n "$fresh" ]] || { echo "bench produced no RESULT line" >&2; exit 2; }

awk -v fresh="$fresh" -v rec="$recorded" -v band="$band" 'BEGIN {
  floor = rec * (1.0 - band)
  if (fresh < floor) {
    printf "REGRESSION: %.2f tok/s < %.2f (recorded %.2f, band %.0f%%)\n",
           fresh, floor, rec, band * 100
    exit 1
  }
  printf "bench OK: %.2f tok/s >= %.2f (recorded %.2f, band %.0f%%)\n",
         fresh, floor, rec, band * 100
}'
