// Microbenchmark (Fig 4 ablation): wall-clock cost and wire volume of
// DenseExchange vs UniqueExchange over the thread-backed collectives,
// swept over world size, tokens per rank and embedding dimension.
// Also prices the wire codecs: raw encode+decode throughput per codec
// (ns/elem — these numbers calibrate CodecCost in the strategy
// selector's config) and the end-to-end UNIQUE exchange under each
// WireFormat, reporting logical vs on-wire bytes.
// google-benchmark binary: run with --benchmark_filter=... as usual.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/comm/wire_codec.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/data/zipf.hpp"

namespace zipflm {
namespace {

void run_exchange(benchmark::State& state, bool unique) {
  const int gpus = static_cast<int>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const Index d = static_cast<Index>(state.range(2));

  // Pre-generate per-rank Zipf tokens and gradients once.
  std::vector<std::vector<Index>> ids(static_cast<std::size_t>(gpus));
  std::vector<Tensor> deltas(static_cast<std::size_t>(gpus));
  ZipfSampler sampler(1 << 20, 1.5625);
  for (int r = 0; r < gpus; ++r) {
    Rng rng(40 + static_cast<std::uint64_t>(r));
    auto& v = ids[static_cast<std::size_t>(r)];
    v.resize(k);
    for (auto& id : v) id = static_cast<Index>(sampler.sample(rng) - 1);
    deltas[static_cast<std::size_t>(r)] =
        Tensor::randn({static_cast<Index>(k), d}, rng);
  }

  CommWorld world(gpus);
  std::uint64_t unique_rows = 0;
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      std::vector<Index> out_ids;
      Tensor out_rows;
      if (unique) {
        UniqueExchange ex;
        ex.exchange(comm, ids[r], deltas[r], out_ids, out_rows, nullptr);
      } else {
        DenseExchange ex;
        ex.exchange(comm, ids[r], deltas[r], out_ids, out_rows, nullptr);
      }
      if (comm.rank() == 0) unique_rows = out_ids.size();
      benchmark::DoNotOptimize(out_rows.data().data());
    });
  }

  const auto total = world.total_ledger();
  state.counters["wire_bytes_per_step"] = benchmark::Counter(
      static_cast<double>(total.bytes_sent) /
      static_cast<double>(state.iterations()));
  state.counters["U_g"] = static_cast<double>(unique_rows);
  state.counters["GK"] = static_cast<double>(gpus) * static_cast<double>(k);
  state.counters["sim_comm_s_per_step"] = benchmark::Counter(
      world.max_simulated_comm_seconds() /
      static_cast<double>(state.iterations()));
}

void BM_DenseExchange(benchmark::State& state) { run_exchange(state, false); }
void BM_UniqueExchange(benchmark::State& state) { run_exchange(state, true); }

// Sweep: world in {2, 4, 8}, K in {256, 1024}, D in {64, 256}.
void sweep(benchmark::internal::Benchmark* b) {
  for (const int g : {2, 4, 8}) {
    for (const int k : {256, 1024}) {
      for (const int d : {64, 256}) {
        b->Args({g, k, d});
      }
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_DenseExchange)->Apply(sweep)->UseRealTime();
BENCHMARK(BM_UniqueExchange)->Apply(sweep)->UseRealTime();

// -- Codec conversion throughput -------------------------------------
//
// One encode + one decode per iteration over a gradient-like payload;
// `ns_per_elem` is the combined conversion cost the selector's
// CodecCost must amortize against the wire bytes saved.  `sparsity` is
// the fraction of exact zeros (packed RLE feeds on them).

void run_codec_roundtrip(benchmark::State& state, WireCodec codec) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double sparsity = static_cast<double>(state.range(1)) / 100.0;

  Rng rng(7);
  std::vector<float> in(n);
  for (auto& v : in) {
    v = rng.uniform() < sparsity ? 0.0f
                                 : static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  std::vector<std::byte> enc;
  std::vector<float> out(n);
  for (auto _ : state) {
    encode_grad_chunk(codec, std::span<const float>(in), enc);
    decode_grad_chunk(codec, std::span<const std::byte>(enc),
                      std::span<float>(out));
    benchmark::DoNotOptimize(out.data());
  }

  const double iters = static_cast<double>(state.iterations());
  state.counters["wire_bytes"] = static_cast<double>(enc.size());
  state.counters["logical_bytes"] = static_cast<double>(n * sizeof(float));
  state.counters["ratio"] =
      static_cast<double>(enc.size()) / static_cast<double>(n * sizeof(float));
  state.counters["ns_per_elem"] = benchmark::Counter(
      iters * static_cast<double>(n),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_PackedRoundTrip(benchmark::State& state) {
  run_codec_roundtrip(state, WireCodec::Packed);
}
void BM_Int8RoundTrip(benchmark::State& state) {
  run_codec_roundtrip(state, WireCodec::Int8);
}

void BM_IndexVarintRoundTrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  // The production payload: sorted unique ids with Zipf-sized gaps.
  ZipfSampler sampler(1 << 20, 1.5625);
  Rng rng(11);
  std::vector<Index> ids(n);
  for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::vector<std::byte> enc;
  std::vector<Index> out;
  for (auto _ : state) {
    encode_index_block(std::span<const Index>(ids), enc);
    decode_index_block(std::span<const std::byte>(enc), out);
    benchmark::DoNotOptimize(out.data());
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["wire_bytes"] = static_cast<double>(enc.size());
  state.counters["logical_bytes"] =
      static_cast<double>(ids.size() * sizeof(Index));
  state.counters["ratio"] = static_cast<double>(enc.size()) /
                            static_cast<double>(ids.size() * sizeof(Index));
  state.counters["ns_per_elem"] = benchmark::Counter(
      iters * static_cast<double>(ids.size()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void codec_sweep(benchmark::internal::Benchmark* b) {
  for (const int n : {1 << 12, 1 << 16, 1 << 20}) {
    for (const int sparsity_pct : {0, 50, 90}) b->Args({n, sparsity_pct});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_PackedRoundTrip)->Apply(codec_sweep);
BENCHMARK(BM_Int8RoundTrip)->Apply(codec_sweep);
BENCHMARK(BM_IndexVarintRoundTrip)
    ->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// -- End-to-end UNIQUE exchange per wire format ----------------------
//
// The full strategy (id allgatherv + M-block allreduce) under each of
// the four WireFormats, index codec on for the coded formats.
// `wire_bytes_per_step` counts what actually moved: raw ledger bytes
// minus the coded collectives' logical bytes plus their encoded bytes.

void run_coded_exchange(benchmark::State& state, WireFormat format) {
  const int gpus = static_cast<int>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const Index d = static_cast<Index>(state.range(2));

  std::vector<std::vector<Index>> ids(static_cast<std::size_t>(gpus));
  std::vector<Tensor> deltas(static_cast<std::size_t>(gpus));
  ZipfSampler sampler(1 << 20, 1.5625);
  for (int r = 0; r < gpus; ++r) {
    Rng rng(40 + static_cast<std::uint64_t>(r));
    auto& v = ids[static_cast<std::size_t>(r)];
    v.resize(k);
    for (auto& id : v) id = static_cast<Index>(sampler.sample(rng) - 1);
    deltas[static_cast<std::size_t>(r)] =
        Tensor::randn({static_cast<Index>(k), d}, rng);
  }

  ExchangeOptions opts = with_wire_format(ExchangeOptions{}, format);
  opts.index_codec = opts.codec != WireCodec::None;

  CommWorld world(gpus);
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      std::vector<Index> out_ids;
      Tensor out_rows;
      UniqueExchange ex(opts);
      ex.exchange(comm, ids[r], deltas[r], out_ids, out_rows, nullptr);
      benchmark::DoNotOptimize(out_rows.data().data());
    });
  }

  const auto total = world.total_ledger();
  // Swap each coded gradient leg's logical bytes for its encoded bytes;
  // the index varint leg's allgatherv already moves (and books) the
  // encoded payload.
  double wire = static_cast<double>(total.bytes_sent);
  for (const CodecSlot c : {CodecSlot::Packed, CodecSlot::Int8}) {
    const CodecTraffic& slot = total.codec_slot(c);
    wire += static_cast<double>(slot.wire_bytes) -
            static_cast<double>(slot.logical_bytes);
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["wire_bytes_per_step"] = benchmark::Counter(wire / iters);
  state.counters["logical_bytes_per_step"] =
      benchmark::Counter(static_cast<double>(total.bytes_sent) / iters);
}

void BM_UniqueExchangeFp32(benchmark::State& state) {
  run_coded_exchange(state, WireFormat::FP32);
}
void BM_UniqueExchangeFp16(benchmark::State& state) {
  run_coded_exchange(state, WireFormat::FP16);
}
void BM_UniqueExchangePacked(benchmark::State& state) {
  run_coded_exchange(state, WireFormat::Packed);
}
void BM_UniqueExchangeInt8(benchmark::State& state) {
  run_coded_exchange(state, WireFormat::Int8);
}

void format_sweep(benchmark::internal::Benchmark* b) {
  for (const int g : {4, 8}) b->Args({g, 1024, 256});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_UniqueExchangeFp32)->Apply(format_sweep)->UseRealTime();
BENCHMARK(BM_UniqueExchangeFp16)->Apply(format_sweep)->UseRealTime();
BENCHMARK(BM_UniqueExchangePacked)->Apply(format_sweep)->UseRealTime();
BENCHMARK(BM_UniqueExchangeInt8)->Apply(format_sweep)->UseRealTime();

}  // namespace
}  // namespace zipflm

BENCHMARK_MAIN();
