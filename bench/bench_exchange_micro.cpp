// Microbenchmark (Fig 4 ablation): wall-clock cost and wire volume of
// DenseExchange vs UniqueExchange over the thread-backed collectives,
// swept over world size, tokens per rank and embedding dimension.
// google-benchmark binary: run with --benchmark_filter=... as usual.
#include <benchmark/benchmark.h>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/data/zipf.hpp"

namespace zipflm {
namespace {

void run_exchange(benchmark::State& state, bool unique) {
  const int gpus = static_cast<int>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const Index d = static_cast<Index>(state.range(2));

  // Pre-generate per-rank Zipf tokens and gradients once.
  std::vector<std::vector<Index>> ids(static_cast<std::size_t>(gpus));
  std::vector<Tensor> deltas(static_cast<std::size_t>(gpus));
  ZipfSampler sampler(1 << 20, 1.5625);
  for (int r = 0; r < gpus; ++r) {
    Rng rng(40 + static_cast<std::uint64_t>(r));
    auto& v = ids[static_cast<std::size_t>(r)];
    v.resize(k);
    for (auto& id : v) id = static_cast<Index>(sampler.sample(rng) - 1);
    deltas[static_cast<std::size_t>(r)] =
        Tensor::randn({static_cast<Index>(k), d}, rng);
  }

  CommWorld world(gpus);
  std::uint64_t unique_rows = 0;
  for (auto _ : state) {
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      std::vector<Index> out_ids;
      Tensor out_rows;
      if (unique) {
        UniqueExchange ex;
        ex.exchange(comm, ids[r], deltas[r], out_ids, out_rows, nullptr);
      } else {
        DenseExchange ex;
        ex.exchange(comm, ids[r], deltas[r], out_ids, out_rows, nullptr);
      }
      if (comm.rank() == 0) unique_rows = out_ids.size();
      benchmark::DoNotOptimize(out_rows.data().data());
    });
  }

  const auto total = world.total_ledger();
  state.counters["wire_bytes_per_step"] = benchmark::Counter(
      static_cast<double>(total.bytes_sent) /
      static_cast<double>(state.iterations()));
  state.counters["U_g"] = static_cast<double>(unique_rows);
  state.counters["GK"] = static_cast<double>(gpus) * static_cast<double>(k);
  state.counters["sim_comm_s_per_step"] = benchmark::Counter(
      world.max_simulated_comm_seconds() /
      static_cast<double>(state.iterations()));
}

void BM_DenseExchange(benchmark::State& state) { run_exchange(state, false); }
void BM_UniqueExchange(benchmark::State& state) { run_exchange(state, true); }

// Sweep: world in {2, 4, 8}, K in {256, 1024}, D in {64, 256}.
void sweep(benchmark::internal::Benchmark* b) {
  for (const int g : {2, 4, 8}) {
    for (const int k : {256, 1024}) {
      for (const int d : {64, 256}) {
        b->Args({g, k, d});
      }
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_DenseExchange)->Apply(sweep)->UseRealTime();
BENCHMARK(BM_UniqueExchange)->Apply(sweep)->UseRealTime();

}  // namespace
}  // namespace zipflm

BENCHMARK_MAIN();
