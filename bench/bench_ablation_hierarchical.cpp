// Design-choice ablation (DESIGN.md): flat ring allreduce vs the
// two-level node/leader hierarchy.
//
// The flat ring moves 2(G-1)/G of the buffer across the bottleneck link;
// the hierarchy moves 2(N-1)/N across the fabric plus ~2.5 extra passes
// over the intra-node links.  The crossover therefore sits at an
// intra/inter bandwidth ratio of roughly
//     2.5 / (2(G-1)/G - 2(N-1)/N)  ~  6.7   (for N=4, gpn=4)
// — i.e. the hierarchy pays off on NVLink-class nodes but NOT on the
// paper's PCIe cluster, which justifies the flat ring used throughout
// this reproduction.  Both sides are *executed* (real collectives, real
// ledger) and priced by the cost model.
#include "bench_common.hpp"
#include "zipflm/comm/hierarchical.hpp"
#include "zipflm/comm/thread_comm.hpp"

using namespace zipflm;

namespace {

double measure(int nodes, int gpn, double intra_Bps, double inter_Bps,
               std::size_t elems, bool hierarchical) {
  CommWorld::Options o;
  o.topo = Topology{nodes, gpn};
  o.topo_set = true;
  o.cost.intra_node = LinkParams{3e-6, intra_Bps};
  o.cost.inter_node = LinkParams{2e-6, inter_Bps};
  CommWorld world(nodes * gpn, o);
  world.run([&](Communicator& comm) {
    std::vector<float> data(elems, 1.0f);
    if (hierarchical) {
      hierarchical_allreduce_sum(comm, std::span<float>(data));
    } else {
      comm.allreduce_sum(std::span<float>(data));
    }
  });
  return world.max_simulated_comm_seconds();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: flat ring vs hierarchical (node/leader) allreduce",
      "design choice behind the reproduction's collectives",
      "both schemes executed over the thread runtime, priced by the "
      "alpha-beta cost model; 4 nodes x 4 GPUs, 4 MB buffer");

  const std::size_t elems = 1 << 20;  // 4 MB of FP32
  const double inter = 6e9;           // IB FDR effective

  TextTable table({"intra/inter ratio", "intra (GB/s)", "flat (ms)",
                   "hierarchical (ms)", "winner"});
  for (const double ratio : {1.0, 2.13, 4.0, 6.7, 10.0, 20.0, 50.0}) {
    const double intra = inter * ratio;
    const double flat = measure(4, 4, intra, inter, elems, false) * 1e3;
    const double hier = measure(4, 4, intra, inter, elems, true) * 1e3;
    table.add_row({bench::fmt(ratio, 1), bench::fmt(intra / 1e9, 1),
                   bench::fmt(flat, 3), bench::fmt(hier, 3),
                   hier < flat ? "hierarchical" : "flat"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper's Titan X cluster sits at ratio ~2.1 (PCIe 12.8 vs IB\n"
              "6 GB/s effective): the flat ring is the right choice there;\n"
              "V100+NVLink pods (ratio ~20+) favour the hierarchy.\n\n");

  // Latency-bound regime: tiny buffers, many nodes.
  TextTable t2({"buffer", "flat (us)", "hierarchical (us)", "winner"});
  for (const std::size_t small : {64u, 1024u, 16384u}) {
    const double flat = measure(8, 8, 12.8e9, 6e9, small, false) * 1e6;
    const double hier = measure(8, 8, 12.8e9, 6e9, small, true) * 1e6;
    t2.add_row({format_bytes(small * 4), bench::fmt(flat, 1),
                bench::fmt(hier, 1), hier < flat ? "hierarchical" : "flat"});
  }
  std::printf("latency-bound regime (8 nodes x 8 GPUs):\n\n%s\n",
              t2.render().c_str());
  std::printf("small messages: the hierarchy's 2(N-1) fabric hops beat the\n"
              "flat ring's 2(G-1) even at PCIe ratios.\n");
  return 0;
}
