// Section V-A memory claims: baseline peak GPU memory grows linearly
// (3.9 / 7.1 / 10.3 GB at 8/16/24 GPUs, OOM beyond) while the techniques
// keep it flat (1.19 / 1.20 / 1.21 GB at 8/24/64) — an 8.6x reduction at
// 24 GPUs.
//
// Two measurements: the calibrated memory model at paper scale, and the
// *functional* exchange scratch measured by running both exchanges over
// the thread-backed collectives against a simulated MemoryPool.
//
// --shard-embedding [--gpus G] switches to the row-sharding frontier
// demonstration (ROADMAP item 4): a char LM whose input table is sized
// so the REPLICATED configuration provably OOMs the per-rank simulated
// pool at construction, while the G-way row shard of the very same
// vocabulary trains an epoch to completion.  The RESULT record carries
// replicated_table_bytes and the measured per-rank shard bytes — the
// numbers scripts/bench_regression.sh's ZIPFLM_MEM_GATE asserts on
// (per-rank sharded table <= 0.30x the replicated table).  Exit is
// nonzero if the replicated run fails to OOM or the sharded run fails
// to train — the frontier claim itself is the gate.
#include <cmath>
#include <cstring>

#include "bench_common.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/sim/perf_model.hpp"

using namespace zipflm;

namespace {

/// The frontier char LM: a 120k-row input table (30.7 MB of FP32 at
/// D=64) against a deliberately small 128 MB simulated card.  With
/// grads and Adam moments charged, the replicated model needs ~185 MB
/// per rank; a 4-way shard needs ~93 MB.
constexpr Index kFrontierVocab = 120'000;
constexpr Index kFrontierDim = 64;
constexpr Index kFrontierHidden = 32;
constexpr std::size_t kFrontierCapacity = 128ull << 20;

DistributedTrainer::ModelFactory frontier_factory(int shard_world) {
  return [shard_world](int rank) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = kFrontierVocab;
    cfg.embed_dim = kFrontierDim;
    cfg.hidden_dim = kFrontierHidden;
    cfg.depth = 2;
    cfg.seed = 7;
    cfg.shard_rank = rank;
    cfg.shard_world = shard_world;  // 0 = replicated
    return std::make_unique<CharLm>(cfg);
  };
}

TrainerOptions frontier_options(bool shard) {
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 6};
  opt.base_lr = 5e-3f;
  opt.lr_decay = 1.0f;
  opt.clip = 5.0f;
  opt.use_adam = true;  // moments double the static charge — the point
  opt.shard_embedding = shard;
  opt.device.name = "sim-small";
  opt.device.memory_bytes = kFrontierCapacity;
  return opt;
}

int run_shard_frontier(int gpus) {
  bench::print_header(
      "Row-sharded embedding: the OOM frontier (char LM)",
      "replicated table OOMs the per-rank pool; the G-way shard trains",
      "DistributedTrainer + simulated MemoryPool, static memory charged");

  const std::size_t replicated_table_bytes =
      static_cast<std::size_t>(kFrontierVocab) *
      static_cast<std::size_t>(kFrontierDim) * sizeof(float);
  std::printf("vocab %lld x dim %lld = %s replicated table, %s card, "
              "%d GPUs\n\n",
              static_cast<long long>(kFrontierVocab),
              static_cast<long long>(kFrontierDim),
              format_bytes(replicated_table_bytes).c_str(),
              format_bytes(kFrontierCapacity).c_str(), gpus);

  // Leg 1: the replicated configuration must fail to even construct —
  // params + grads + Adam moments for the full table (plus the dense
  // softmax) exceed the per-rank pool.
  bool replicated_oom = false;
  try {
    CommWorld world(gpus);
    DistributedTrainer trainer(world, frontier_factory(0),
                               frontier_options(false));
    std::fprintf(stderr,
                 "replicated frontier model unexpectedly fit the pool\n");
  } catch (const OutOfMemoryError& e) {
    replicated_oom = true;
    std::printf("replicated: OOM, as intended — %s\n", e.what());
  }

  // Leg 2: the same vocabulary, row-sharded G ways, trains an epoch to
  // completion inside the same per-rank budget.
  std::vector<Index> train_ids(512);
  std::vector<Index> valid_ids(128);
  Rng rng(13);
  for (auto& id : train_ids) {
    id = static_cast<Index>(
        rng.uniform_index(static_cast<std::uint64_t>(kFrontierVocab)));
  }
  for (auto& id : valid_ids) {
    id = static_cast<Index>(
        rng.uniform_index(static_cast<std::uint64_t>(kFrontierVocab)));
  }

  bool sharded_trained = false;
  std::size_t shard_bytes_per_rank = 0;
  std::uint64_t peak_bytes = 0;
  double train_loss = 0.0;
  double valid_loss = 0.0;
  try {
    CommWorld world(gpus);
    DistributedTrainer trainer(world, frontier_factory(gpus),
                               frontier_options(true));
    const EpochStats stats = trainer.run_epoch(train_ids, valid_ids, 0);
    train_loss = stats.train_loss;
    valid_loss = stats.valid_loss;
    peak_bytes = stats.peak_memory_bytes;
    for (int r = 0; r < gpus; ++r) {
      auto* lm = dynamic_cast<CharLm*>(&trainer.model(r));
      const std::size_t bytes =
          lm->sharded_input()->param().value.bytes();
      shard_bytes_per_rank = std::max(shard_bytes_per_rank, bytes);
    }
    sharded_trained = std::isfinite(stats.train_loss) &&
                      std::isfinite(stats.valid_loss) && stats.steps > 0;
    std::printf("sharded (%d-way): trained %llu steps, train %.4f / "
                "valid %.4f nats, peak %s/rank, table %s/rank\n",
                gpus, static_cast<unsigned long long>(stats.steps),
                stats.train_loss, stats.valid_loss,
                format_bytes(peak_bytes).c_str(),
                format_bytes(shard_bytes_per_rank).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sharded frontier run failed: %s\n", e.what());
  }

  const double ratio =
      static_cast<double>(shard_bytes_per_rank) /
      static_cast<double>(replicated_table_bytes);
  std::printf("per-rank table: %s sharded vs %s replicated (%.2fx)\n",
              format_bytes(shard_bytes_per_rank).c_str(),
              format_bytes(replicated_table_bytes).c_str(), ratio);

  std::printf(
      "RESULT {\"bench\":\"mem_footprint\",\"shard_embedding\":true,"
      "\"gpus\":%d,\"vocab\":%lld,\"embed_dim\":%lld,"
      "\"device_capacity_bytes\":%zu,\"replicated_oom\":%s,"
      "\"replicated_table_bytes\":%zu,\"sharded_table_bytes_per_rank\":%zu,"
      "\"shard_table_ratio\":%.4f,\"sharded_trained\":%s,"
      "\"train_loss\":%.6f,\"valid_loss\":%.6f,\"peak_memory_bytes\":%llu}\n",
      gpus, static_cast<long long>(kFrontierVocab),
      static_cast<long long>(kFrontierDim), kFrontierCapacity,
      replicated_oom ? "true" : "false", replicated_table_bytes,
      shard_bytes_per_rank, ratio, sharded_trained ? "true" : "false",
      train_loss, valid_loss, static_cast<unsigned long long>(peak_bytes));
  return replicated_oom && sharded_trained ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool shard = false;
  int gpus = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shard-embedding") == 0) {
      shard = true;
    } else if (std::strcmp(argv[i], "--gpus") == 0 && i + 1 < argc) {
      gpus = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_mem_footprint [--shard-embedding] "
                   "[--gpus G]\n");
      return 2;
    }
  }
  if (shard) return run_shard_frontier(gpus);

  bench::print_header(
      "Memory footprint: baseline vs techniques (word LM)",
      "paper: 3.9/7.1/10.3 GB growing vs 1.19-1.21 GB flat; 8.6x @24",
      "memory model at paper scale + functional exchange scratch");

  const PerfModel model(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  const auto w = LmWorkload::word_lm_1b();

  TextTable ta({"GPUs", "baseline peak", "paper", "unique peak", "paper "});
  const struct {
    int gpus;
    const char* base_paper;
    const char* ours_paper;
  } rows[] = {{8, "3.9 GB", "1.19 GB"},
              {16, "7.1 GB", "~1.20 GB"},
              {24, "10.3 GB", "1.20 GB"},
              {32, "OOM", "~1.21 GB"},
              {64, "OOM", "1.21 GB"}};
  for (const auto& r : rows) {
    const auto base = model.epoch(w, r.gpus, TechniqueSet::none());
    const auto ours = model.epoch(w, r.gpus, TechniqueSet::all());
    ta.add_row({std::to_string(r.gpus),
                base.oom ? format_bytes(base.peak_memory_bytes) + " (OOM)"
                         : format_bytes(base.peak_memory_bytes),
                r.base_paper, format_bytes(ours.peak_memory_bytes),
                r.ours_paper});
  }
  std::printf("%s\n", ta.render().c_str());
  const double reduction =
      static_cast<double>(
          model.epoch(w, 24, TechniqueSet::none()).peak_memory_bytes) /
      static_cast<double>(
          model.epoch(w, 24, TechniqueSet::all()).peak_memory_bytes);
  std::printf("memory reduction at 24 GPUs: %.1fx (paper: 8.6x)\n\n",
              reduction);

  // Functional scratch measurement: run both exchanges for real.
  std::printf("functional exchange scratch (measured via MemoryPool, K=512 "
              "tokens, D=256, Zipf tokens):\n\n");
  TextTable tb({"GPUs", "dense scratch/rank", "unique scratch/rank",
                "reduction"});
  std::uint64_t dense8 = 0;
  std::uint64_t unique8 = 0;
  for (const int gpus_row : {2, 4, 8}) {
    std::uint64_t peaks[2] = {0, 0};
    for (const bool unique : {false, true}) {
      CommWorld world(gpus_row);
      std::vector<std::uint64_t> rank_peak(
          static_cast<std::size_t>(gpus_row));
      world.run([&](Communicator& comm) {
        MemoryPool pool(1ull << 30);
        ZipfSampler sampler(1 << 20, 1.5625);
        Rng rng(100 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Index> ids(512);
        for (auto& id : ids) {
          id = static_cast<Index>(sampler.sample(rng) - 1);
        }
        Tensor delta = Tensor::randn({512, 256}, rng);
        std::vector<Index> out_ids;
        Tensor out_rows;
        if (unique) {
          UniqueExchange ex;
          ex.exchange(comm, ids, delta, out_ids, out_rows, &pool);
        } else {
          DenseExchange ex;
          ex.exchange(comm, ids, delta, out_ids, out_rows, &pool);
        }
        rank_peak[static_cast<std::size_t>(comm.rank())] = pool.peak();
      });
      for (const auto p : rank_peak) {
        peaks[unique ? 1 : 0] = std::max<std::uint64_t>(peaks[unique], p);
      }
    }
    if (gpus_row == 8) {
      dense8 = peaks[0];
      unique8 = peaks[1];
    }
    tb.add_row({std::to_string(gpus_row), format_bytes(peaks[0]),
                format_bytes(peaks[1]),
                bench::fmt(static_cast<double>(peaks[0]) /
                               static_cast<double>(peaks[1]),
                           1) +
                    "x"});
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("expected shape: dense scratch grows with G; unique scratch "
              "nearly flat (Section III-A's 256x example at 256 GPUs).\n");
  std::printf(
      "RESULT {\"bench\":\"mem_footprint\",\"shard_embedding\":false,"
      "\"reduction_at_24\":%.2f,\"dense_scratch_8\":%llu,"
      "\"unique_scratch_8\":%llu}\n",
      reduction, static_cast<unsigned long long>(dense8),
      static_cast<unsigned long long>(unique8));
  return 0;
}
