// Section V-A memory claims: baseline peak GPU memory grows linearly
// (3.9 / 7.1 / 10.3 GB at 8/16/24 GPUs, OOM beyond) while the techniques
// keep it flat (1.19 / 1.20 / 1.21 GB at 8/24/64) — an 8.6x reduction at
// 24 GPUs.
//
// Two measurements: the calibrated memory model at paper scale, and the
// *functional* exchange scratch measured by running both exchanges over
// the thread-backed collectives against a simulated MemoryPool.
#include "bench_common.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/sim/perf_model.hpp"

using namespace zipflm;

int main() {
  bench::print_header(
      "Memory footprint: baseline vs techniques (word LM)",
      "paper: 3.9/7.1/10.3 GB growing vs 1.19-1.21 GB flat; 8.6x @24",
      "memory model at paper scale + functional exchange scratch");

  const PerfModel model(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  const auto w = LmWorkload::word_lm_1b();

  TextTable ta({"GPUs", "baseline peak", "paper", "unique peak", "paper "});
  const struct {
    int gpus;
    const char* base_paper;
    const char* ours_paper;
  } rows[] = {{8, "3.9 GB", "1.19 GB"},
              {16, "7.1 GB", "~1.20 GB"},
              {24, "10.3 GB", "1.20 GB"},
              {32, "OOM", "~1.21 GB"},
              {64, "OOM", "1.21 GB"}};
  for (const auto& r : rows) {
    const auto base = model.epoch(w, r.gpus, TechniqueSet::none());
    const auto ours = model.epoch(w, r.gpus, TechniqueSet::all());
    ta.add_row({std::to_string(r.gpus),
                base.oom ? format_bytes(base.peak_memory_bytes) + " (OOM)"
                         : format_bytes(base.peak_memory_bytes),
                r.base_paper, format_bytes(ours.peak_memory_bytes),
                r.ours_paper});
  }
  std::printf("%s\n", ta.render().c_str());
  const double reduction =
      static_cast<double>(
          model.epoch(w, 24, TechniqueSet::none()).peak_memory_bytes) /
      static_cast<double>(
          model.epoch(w, 24, TechniqueSet::all()).peak_memory_bytes);
  std::printf("memory reduction at 24 GPUs: %.1fx (paper: 8.6x)\n\n",
              reduction);

  // Functional scratch measurement: run both exchanges for real.
  std::printf("functional exchange scratch (measured via MemoryPool, K=512 "
              "tokens, D=256, Zipf tokens):\n\n");
  TextTable tb({"GPUs", "dense scratch/rank", "unique scratch/rank",
                "reduction"});
  for (const int gpus : {2, 4, 8}) {
    std::uint64_t peaks[2] = {0, 0};
    for (const bool unique : {false, true}) {
      CommWorld world(gpus);
      std::vector<std::uint64_t> rank_peak(static_cast<std::size_t>(gpus));
      world.run([&](Communicator& comm) {
        MemoryPool pool(1ull << 30);
        ZipfSampler sampler(1 << 20, 1.5625);
        Rng rng(100 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Index> ids(512);
        for (auto& id : ids) {
          id = static_cast<Index>(sampler.sample(rng) - 1);
        }
        Tensor delta = Tensor::randn({512, 256}, rng);
        std::vector<Index> out_ids;
        Tensor out_rows;
        if (unique) {
          UniqueExchange ex;
          ex.exchange(comm, ids, delta, out_ids, out_rows, &pool);
        } else {
          DenseExchange ex;
          ex.exchange(comm, ids, delta, out_ids, out_rows, &pool);
        }
        rank_peak[static_cast<std::size_t>(comm.rank())] = pool.peak();
      });
      for (const auto p : rank_peak) {
        peaks[unique ? 1 : 0] = std::max<std::uint64_t>(peaks[unique], p);
      }
    }
    tb.add_row({std::to_string(gpus), format_bytes(peaks[0]),
                format_bytes(peaks[1]),
                bench::fmt(static_cast<double>(peaks[0]) /
                               static_cast<double>(peaks[1]),
                           1) +
                    "x"});
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("expected shape: dense scratch grows with G; unique scratch "
              "nearly flat (Section III-A's 256x example at 256 GPUs).\n");
  return 0;
}
