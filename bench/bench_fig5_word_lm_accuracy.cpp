// Figure 5: word-LM validation perplexity vs epochs for three GPU
// counts.  The paper trains LSTM-2048/512 on 0.78B words with 16/32/64
// GPUs; we run the same architecture family scaled down (documented
// factors below) on a calibrated synthetic corpus with 4/8/16 simulated
// GPUs — the same 4x spread — and reproduce the *shape*: more GPUs start
// behind at epoch 1 and become indistinguishable within a few epochs.
#include "bench_common.hpp"

using namespace zipflm;

namespace {

DistributedTrainer::ModelFactory factory(Index vocab) {
  return [vocab](int) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;       // paper: 100k (scale 1/50)
    cfg.embed_dim = 16;      // paper: 512
    cfg.hidden_dim = 32;     // paper: 2048
    cfg.proj_dim = 16;       // paper: 512
    cfg.seed = 7;
    return std::make_unique<WordLm>(cfg);
  };
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5: word LM validation perplexity vs epoch",
      "paper @1 epoch: 84.3/87.9/95.3 (16/32/64 GPUs); @2: 73.5/72.1/72.4",
      "real distributed training, architecture scaled 1/32, GPU counts "
      "4/8/16 (same 4x spread), sampled softmax + all three techniques");

  const Index vocab = 2000;
  const auto data = bench::bigram_data(vocab, 24, 240'000, 24'000, 11);
  const auto& train = data.train;
  const auto& valid = data.valid;
  const int epochs = 3;
  std::printf("corpus: Markov bigram chain, |V|=%lld, entropy-floor ppl %.0f\n\n",
              static_cast<long long>(vocab), data.entropy_floor_ppl);

  TextTable table({"GPUs", "epoch 1 ppl", "epoch 2 ppl", "epoch 3 ppl",
                   "steps/epoch"});
  for (const int gpus : {4, 8, 16}) {
    CommWorld world(gpus, [] {
      CommWorld::Options o;
      return o;
    }());
    TrainerOptions opt;
    opt.batch = BatchSpec{4, 20};  // paper seqlen 20
    opt.samples_per_rank = 64;     // paper: 1024 (scale 1/16)
    opt.seed_policy = SeedPolicy::ZipfFreq;
    // Large-batch learning-rate scaling: the paper multiplies its 8-GPU
    // base rate by ln(#nodes); at our reduced scale the equivalent is a
    // linear ramp in the GPU count (Goyal et al.'s rule).
    opt.base_lr = 0.2f * static_cast<float>(gpus) / 4.0f;
    opt.lr_decay = 0.9f;
    opt.clip = 5.0f;
    opt.charge_static_memory = false;
    DistributedTrainer trainer(world, factory(vocab), opt);

    std::vector<std::string> row{std::to_string(gpus)};
    std::uint64_t steps = 0;
    for (int e = 0; e < epochs; ++e) {
      const auto stats = trainer.run_epoch(train, valid, e);
      row.push_back(bench::fmt(stats.valid_perplexity, 1));
      steps = stats.steps;
    }
    row.push_back(std::to_string(steps));
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: higher GPU counts trail at epoch 1 and close "
              "the gap by later epochs (Fig 5).\n");
  return 0;
}
