// Figure 7: accuracy impact of the seeding policy in the sampled-softmax
// layer.  Paper (64 GPUs): per-rank seeds (G) and Zipf's-freq seeds give
// matching perplexity; aggressively few seeds (log10 G) destabilize the
// curve.  We run the real trainer at 8 simulated GPUs across the same
// policy spectrum and also report the measured global unique-candidate
// count (the quantity seeding trades accuracy against).
#include <unordered_set>

#include "bench_common.hpp"

using namespace zipflm;

namespace {
DistributedTrainer::ModelFactory factory(Index vocab) {
  return [vocab](int) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 16;
    cfg.hidden_dim = 32;
    cfg.proj_dim = 16;
    cfg.seed = 7;
    return std::make_unique<WordLm>(cfg);
  };
}
}  // namespace

int main() {
  bench::print_header(
      "Figure 7: seeding policies for the sampled softmax (word LM)",
      "paper: Zipf's-freq matches G seeds; fewer seeds less stable",
      "real distributed training at 8 simulated GPUs, 3 epochs per policy");

  const Index vocab = 2000;
  const auto data = bench::bigram_data(vocab, 24, 160'000, 20'000, 31);
  const auto& train = data.train;
  const auto& valid = data.valid;
  const int gpus = 8;

  const SeedPolicy policies[] = {SeedPolicy::PerRank,   SeedPolicy::ZipfFreq,
                                 SeedPolicy::Log2G,     SeedPolicy::LogEG,
                                 SeedPolicy::Log10G,    SeedPolicy::SharedAll};

  TextTable table({"policy", "groups", "ppl e1", "ppl e2", "ppl e3",
                   "mean U_out/step", "wire bytes/epoch"});
  for (const SeedPolicy policy : policies) {
    CommWorld world(gpus);
    TrainerOptions opt;
    opt.batch = BatchSpec{4, 20};
    opt.samples_per_rank = 64;
    opt.seed_policy = policy;
    opt.base_lr = 0.2f;
    opt.lr_decay = 0.9f;
    opt.clip = 5.0f;
    opt.charge_static_memory = false;
    DistributedTrainer trainer(world, factory(vocab), opt);

    std::vector<std::string> ppl;
    TrafficLedger ledger;
    std::uint64_t steps = 1;
    for (int e = 0; e < 3; ++e) {
      const auto stats = trainer.run_epoch(train, valid, e);
      ppl.push_back(bench::fmt(stats.valid_perplexity, 1));
      ledger = stats.comm_total;
      steps = std::max<std::uint64_t>(1, stats.steps);
    }

    // Measure the global unique candidate count directly.
    ControlledSampler sampler(vocab, 64, policy, 42);
    std::unordered_set<Index> uniq;
    double mean_unique = 0.0;
    for (std::uint64_t step = 0; step < 50; ++step) {
      uniq.clear();
      for (int r = 0; r < gpus; ++r) {
        const auto draws =
            sampler.group_samples(seed_group_of(policy, r, gpus), step);
        uniq.insert(draws.begin(), draws.end());
      }
      mean_unique += static_cast<double>(uniq.size());
    }
    mean_unique /= 50.0;

    table.add_row({to_string(policy),
                   std::to_string(seed_group_count(policy, gpus)), ppl[0],
                   ppl[1], ppl[2], bench::fmt(mean_unique, 0),
                   format_bytes(ledger.bytes_sent)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: G and Zipf's-freq perplexities match; unique "
              "candidates (and wire volume) fall with fewer seed groups.\n");
  return 0;
}
