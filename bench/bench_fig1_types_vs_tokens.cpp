// Figure 1: types (unique words U) vs tokens (N) on four corpora, with
// the power-law fit U = 7.02 * N^0.64, R^2 = 1.00.
//
// The synthetic corpora are Zipf-Mandelbrot sources calibrated per
// DESIGN.md; the bench sweeps N over the same decades as the figure and
// fits one power law through all corpora, exactly as the paper does.
#include <cstdlib>

#include "bench_common.hpp"
#include "zipflm/stats/powerlaw.hpp"

using namespace zipflm;

int main(int argc, char** argv) {
  // Full figure reaches 5e7 tokens; default to 8M per corpus so the
  // bench suite stays fast (pass a larger count to extend the sweep).
  std::uint64_t max_tokens = 8'000'000;
  if (argc > 1) max_tokens = std::strtoull(argv[1], nullptr, 10);

  bench::print_header("Figure 1: types vs tokens power law",
                      "U = 7.02 N^0.64, R^2 = 1.00",
                      "type/token curves of 4 calibrated Zipf-Mandelbrot "
                      "corpora, joint log-log least-squares fit");

  TextTable table({"corpus", "N (max)", "U (max)", "U/N", "fit alpha", "R^2"});
  std::vector<double> all_x, all_y;

  for (const auto& spec : CorpusSpec::figure1_corpora()) {
    TokenStream stream(spec, /*seed=*/2026);
    const auto curve = type_token_curve(stream, max_tokens);
    std::vector<double> xs, ys;
    for (const auto& p : curve) {
      if (p.tokens < 512) continue;
      xs.push_back(static_cast<double>(p.tokens));
      ys.push_back(static_cast<double>(p.types));
      all_x.push_back(xs.back());
      all_y.push_back(ys.back());
    }
    const auto fit = fit_power_law(xs, ys);
    const auto& last = curve.back();
    table.add_row({spec.name, format_count(last.tokens),
                   format_count(last.types),
                   bench::fmt(static_cast<double>(last.types) /
                                  static_cast<double>(last.tokens),
                              4),
                   bench::fmt(fit.exponent, 3), bench::fmt(fit.r_squared, 4)});
  }

  const auto joint = fit_power_law(all_x, all_y);
  std::printf("%s\n", table.render().c_str());
  std::printf("joint fit over all corpora:  U = %s * N^%s   (R^2 = %s)\n",
              bench::fmt(joint.coefficient, 2).c_str(),
              bench::fmt(joint.exponent, 3).c_str(),
              bench::fmt(joint.r_squared, 4).c_str());
  std::printf("paper:                       U = 7.02 * N^0.64  (R^2 = 1.00)\n");

  // The figure's headline gap: at N = 40M tokens U is ~100x smaller.
  const double n40 = 40e6;
  const double gap = n40 / joint.predict(n40);
  std::printf("\ntoken/type gap at N = 40M:  %.0fx  (paper: ~100x)\n", gap);
  return 0;
}
