// Serving throughput: batched micro-batching vs sequential single-stream
// generation on the seed CharLm configuration (RHN 1792x10, ~260 MB of
// weights).  Batch-1 stepping is memory-bound — every token streams the
// full weight set — so coalescing N sessions into one batched step
// amortizes that stream across N tokens.
//
// Emits one line of JSON (prefixed "RESULT ") so harnesses can scrape a
// single machine-readable record.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/serve/server.hpp"
#include "zipflm/support/stopwatch.hpp"

#include "bench_common.hpp"

namespace {

using namespace zipflm;

std::vector<Index> session_prompt(std::size_t session, std::size_t len,
                                  Index vocab) {
  std::vector<Index> prompt;
  Rng rng(7000 + session);
  for (std::size_t i = 0; i < len; ++i) {
    prompt.push_back(static_cast<Index>(rng.uniform_index(
        static_cast<std::uint64_t>(vocab))));
  }
  return prompt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t sessions =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  const std::size_t new_tokens =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
  const std::size_t prompt_len = 4;
  // The windowed (pre-incremental) baseline re-runs the whole visible
  // context per token, so a couple of sessions suffice to measure its
  // per-token rate.
  const std::size_t window_sessions = std::min<std::size_t>(sessions, 2);

  bench::print_header(
      "Batched serving throughput, seed CharLm",
      "serving engine; paper SIV-B char model",
      "16 concurrent sessions stepped as one batch vs one at a time");

  CharLmConfig cfg;  // seed defaults: vocab 98, RHN 1792 x depth 10
  CharLm model(cfg);
  GenerateOptions opt;
  opt.max_context = static_cast<Index>(prompt_len + new_tokens + 1);

  std::vector<std::vector<Index>> prompts;
  for (std::size_t s = 0; s < sessions; ++s) {
    prompts.push_back(session_prompt(s, prompt_len, cfg.vocab));
  }

  // Baseline 1: the pre-serving path — re-run the window every token.
  Stopwatch watch;
  for (std::size_t s = 0; s < window_sessions; ++s) {
    Rng rng(100 + s);
    std::vector<Index> tokens = prompts[s];
    for (std::size_t i = 0; i < new_tokens; ++i) {
      tokens.push_back(sample_next_token(model, tokens, opt, rng));
    }
  }
  const double window_seconds = watch.seconds();
  const double window_tok_s =
      static_cast<double>(window_sessions * new_tokens) / window_seconds;

  // Baseline 2: incremental (state-carrying) generation, still one
  // session at a time.
  watch.reset();
  for (std::size_t s = 0; s < sessions; ++s) {
    Rng rng(100 + s);
    generate_tokens(model, prompts[s], new_tokens, opt, rng);
  }
  const double sequential_seconds = watch.seconds();
  const double sequential_tok_s =
      static_cast<double>(sessions * new_tokens) / sequential_seconds;

  // Batched serving: all sessions in flight at once.
  serve::ServeOptions sopts;
  sopts.max_batch = static_cast<Index>(sessions);
  sopts.queue_depth = sessions;
  sopts.cache_capacity = sessions;
  serve::Server server(model, sopts);
  std::vector<std::uint64_t> ids;
  watch.reset();
  for (std::size_t s = 0; s < sessions; ++s) {
    serve::Request req;
    req.session_id = s + 1;
    req.context = prompts[s];
    req.new_tokens = new_tokens;
    req.options = opt;
    req.seed = 100 + s;
    const serve::Admission a = server.submit(std::move(req));
    if (!a.accepted) {
      std::fprintf(stderr, "unexpected rejection\n");
      return 1;
    }
    ids.push_back(a.request_id);
  }
  server.start();
  for (const std::uint64_t id : ids) server.wait(id);
  const double batched_seconds = watch.seconds();
  server.stop();
  const double batched_tok_s =
      static_cast<double>(sessions * new_tokens) / batched_seconds;

  const serve::ServeCounters c = server.counters();
  const double p50_ms = c.token_latency.percentile(0.50) * 1e3;
  const double p95_ms = c.token_latency.percentile(0.95) * 1e3;

  std::printf("sessions %zu, prompt %zu, new tokens %zu\n", sessions,
              prompt_len, new_tokens);
  std::printf("windowed single-stream   : %8s tok/s (measured on %zu sessions)\n",
              bench::fmt(window_tok_s).c_str(), window_sessions);
  std::printf("incremental single-stream: %8s tok/s\n",
              bench::fmt(sequential_tok_s).c_str());
  std::printf("batched serving          : %8s tok/s\n",
              bench::fmt(batched_tok_s).c_str());
  std::printf("speedup vs windowed      : %8s x\n",
              bench::fmt(batched_tok_s / window_tok_s).c_str());
  std::printf("speedup vs incremental   : %8s x\n",
              bench::fmt(batched_tok_s / sequential_tok_s).c_str());
  std::printf("token latency p50 / p95  : %s / %s ms per batched step\n",
              bench::fmt(p50_ms).c_str(), bench::fmt(p95_ms).c_str());
  std::printf("mean batch occupancy     : %s streams/step\n",
              bench::fmt(c.mean_batch_occupancy()).c_str());

  std::printf(
      "RESULT {\"bench\":\"serve_throughput\",\"sessions\":%zu,"
      "\"new_tokens\":%zu,\"window_tok_s\":%.2f,\"sequential_tok_s\":%.2f,"
      "\"batched_tok_s\":%.2f,\"speedup_vs_window\":%.2f,"
      "\"speedup_vs_sequential\":%.2f,\"p50_token_ms\":%.3f,"
      "\"p95_token_ms\":%.3f,\"mean_batch_occupancy\":%.2f}\n",
      sessions, new_tokens, window_tok_s, sequential_tok_s, batched_tok_s,
      batched_tok_s / window_tok_s, batched_tok_s / sequential_tok_s,
      p50_ms, p95_ms, c.mean_batch_occupancy());
  return 0;
}
