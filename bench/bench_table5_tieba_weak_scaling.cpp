// Table V: weak scaling on the Tieba Chinese character corpus —
// 1B/4B/32B characters on 6/24/192 GPUs.  Paper: 27/28/34 hours per
// epoch (1.04x / 1.25x growth) and perplexity 17.06 -> 13.6 -> 11.1
// (a 20% then 35% accuracy improvement from more data).
//
// Two parts:
//  (a) per-epoch time from the calibrated PerfModel at the paper's exact
//      configuration (15,437-character vocabulary);
//  (b) a functional weak-scaling run of the real trainer: corpus size
//      grows with the simulated GPU count, steps per rank stay fixed,
//      validation perplexity improves with more data.
#include "bench_common.hpp"
#include "zipflm/sim/perf_model.hpp"

using namespace zipflm;

int main() {
  bench::print_header(
      "Table V: Tieba weak scaling (6/24/192 GPUs, 3/12/93 GB)",
      "paper: 27h/28h/34h; perplexity 17.06/13.6/11.1; 0.76 PFLOP/s @192",
      "(a) calibrated PerfModel; (b) real weak-scaling training run");

  // ---- (a) time table -------------------------------------------------
  const PerfModel model(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  const Index k = 128 * 150;
  const struct {
    std::uint64_t chars;
    int gpus;
    double paper_hours;
    double paper_ppl;
  } rows[] = {{1'070'000'000ull, 6, 27.0, 17.06},
              {4'290'000'000ull, 24, 28.0, 13.6},
              {34'360'000'000ull, 192, 34.0, 11.1}};

  TextTable ta({"chars (B)", "GB", "GPUs", "ours (h)", "ratio", "paper (h)",
                "paper ratio"});
  double t0 = 0.0;
  for (const auto& r : rows) {
    const auto w = LmWorkload::char_lm_tieba(r.chars, k);
    const auto perf = model.epoch(w, r.gpus, TechniqueSet::all());
    if (t0 == 0.0) t0 = perf.epoch_hours;
    ta.add_row({bench::fmt(static_cast<double>(r.chars) / 1e9, 2),
                bench::fmt(static_cast<double>(r.chars) * 2.71 / 1e9, 0),
                std::to_string(r.gpus), bench::fmt(perf.epoch_hours, 1),
                bench::fmt(perf.epoch_hours / t0, 2),
                bench::fmt(r.paper_hours, 0),
                bench::fmt(r.paper_hours / 27.0, 2)});
  }
  std::printf("%s\n", ta.render().c_str());

  // Aggregate throughput at 192 GPUs (paper: 0.76 PFLOP/s).
  const auto big = LmWorkload::char_lm_tieba(rows[2].chars, k);
  const auto p192 = model.epoch(big, 192, TechniqueSet::all());
  const double pflops = 192.0 * big.calib.flops_per_iter /
                        p192.iter_seconds() / 1e15;
  std::printf("aggregate throughput @192 GPUs: %.2f PFLOP/s (paper: 0.76)\n\n",
              pflops);

  // ---- (b) functional weak scaling ------------------------------------
  std::printf("functional weak-scaling run (vocab 800 standing in for the\n"
              "15,437-char Chinese inventory; data grows with GPUs):\n\n");
  const Index vocab = 800;
  auto char_factory = [vocab](int) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 12;
    cfg.hidden_dim = 24;
    cfg.depth = 2;
    cfg.seed = 5;
    return std::make_unique<CharLm>(cfg);
  };
  // Markov bigram corpus: estimating |V| x branching transitions takes
  // data, so corpus volume genuinely moves validation perplexity (the
  // paper's "no data like more data").
  const BigramCorpus corpus(vocab, 20, 99);
  const auto valid = corpus.generate(20'000, /*stream=*/1);
  // One master stream, sliced into nested prefixes: the G-GPU run trains
  // on a strict superset of the smaller runs' data (controlled weak
  // scaling, no stream-to-stream variance).
  const auto master = corpus.generate(480'000, /*stream=*/0);

  TextTable tb({"GPUs", "train tokens", "steps/rank", "valid ppl",
                "ppl gain vs 1 GPU"});
  double ppl0 = 0.0;
  for (const int gpus : {1, 4, 8}) {
    const std::vector<Index> train(
        master.begin(),
        master.begin() + 60'000 * static_cast<std::ptrdiff_t>(gpus));
    CommWorld world(gpus);
    TrainerOptions opt;
    opt.batch = BatchSpec{4, 25};
    opt.use_adam = true;
    opt.base_lr = 2e-3f;
    opt.clip = 5.0f;
    opt.charge_static_memory = false;
    DistributedTrainer trainer(world, char_factory, opt);
    EpochStats stats;
    for (int e = 0; e < 3; ++e) stats = trainer.run_epoch(train, valid, e);
    if (ppl0 == 0.0) ppl0 = stats.valid_perplexity;
    tb.add_row({std::to_string(gpus), format_count(train.size()),
                std::to_string(stats.steps),
                bench::fmt(stats.valid_perplexity, 2),
                bench::fmt(100.0 * (1.0 - stats.valid_perplexity / ppl0), 1) +
                    "%"});
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("expected shape: near-flat epoch time (a) and perplexity\n"
              "improving with corpus size (b), as in Table V.\n");
  return 0;
}
