// End-to-end training-step throughput on the seed CharLm configuration
// (RHN 1792 x depth 10, vocab 98), with the per-phase breakdown that
// decides where optimization effort goes: forward, backward, embedding
// exchange, optimizer.
//
// Default world size is 1 (the *local* per-step cost — kernels + local
// reduce + scatter + Adam, the paper's Θ(G·K + U_g·D) constant factor);
// --gpus N runs N simulated ranks through the full wire path with the
// overlapped bucketed dense exchange (--overlap off for the synchronous
// reference).  Throughput is aggregate: tokens_per_rank x ranks.  FP16
// wire precision is kept on so the compression-scaling casts stay in
// the measured path.
//
// Emits one line of JSON (prefixed "RESULT ") so harnesses can scrape a
// single machine-readable record; record the trajectory in
// BENCH_train_step.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/core/grad_sync.hpp"
#include "zipflm/data/batch.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/nn/optimizer.hpp"
#include "zipflm/support/phase_timers.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/support/stopwatch.hpp"
#include "zipflm/tensor/ops.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace zipflm;

  // Positional args first (batch, seq, steps), then flags.
  std::vector<char*> positional;
  int gpus = 1;
  bool overlap = true;
  bool fp16_wire = true;
  std::size_t bucket_mb = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gpus" && i + 1 < argc) {
      gpus = std::atoi(argv[++i]);
    } else if (arg == "--overlap" && i + 1 < argc) {
      overlap = std::string(argv[++i]) != "off";
    } else if (arg == "--wire" && i + 1 < argc) {
      fp16_wire = std::string(argv[++i]) != "fp32";
    } else if (arg == "--bucket-mb" && i + 1 < argc) {
      bucket_mb = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }
  const Index batch_size =
      positional.size() > 0 ? static_cast<Index>(std::atoi(positional[0])) : 8;
  const Index seq_len =
      positional.size() > 1 ? static_cast<Index>(std::atoi(positional[1])) : 8;
  const std::size_t measured_steps =
      positional.size() > 2 ? static_cast<std::size_t>(std::atoi(positional[2]))
                            : 3;
  const std::size_t warmup_steps = 1;

  bench::print_header(
      "Training-step throughput, seed CharLm",
      "paper SIV-B char model; local step cost Θ(G·K + U_g·D)",
      "full train step: forward + backward + unique exchange + Adam");

  CharLmConfig cfg;  // seed defaults: vocab 98, RHN 1792 x depth 10
  CharLm model(cfg);

  BatchSpec spec;
  spec.batch_size = batch_size;
  spec.seq_len = seq_len;
  const std::size_t total_steps = warmup_steps + measured_steps;
  const std::size_t corpus =
      static_cast<std::size_t>(spec.tokens_per_rank()) * (total_steps + 1) *
          static_cast<std::size_t>(gpus) +
      1;
  std::vector<Index> ids(corpus);
  Rng rng(42);
  for (auto& id : ids) {
    id = static_cast<Index>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.vocab)));
  }

  const ExchangeOptions ex_opts{
      fp16_wire ? WirePrecision::FP16 : WirePrecision::FP32, 1024.0f, false};

  // One replica per simulated GPU, exactly like DistributedTrainer: the
  // wire path (bucketed dense allreduce + unique embedding exchange) is
  // in the measured loop, so --gpus 4 reports what overlap actually
  // hides.
  std::vector<std::unique_ptr<CharLm>> models;
  std::vector<std::unique_ptr<Adam>> opts;
  std::vector<std::unique_ptr<UniqueExchange>> exchanges;
  std::vector<std::unique_ptr<DenseGradSync>> syncs;
  for (int r = 0; r < gpus; ++r) {
    models.push_back(std::make_unique<CharLm>(cfg));
    Adam::Config acfg;
    acfg.clip = 1.0f;
    opts.push_back(std::make_unique<Adam>(acfg));
    exchanges.push_back(std::make_unique<UniqueExchange>(ex_opts));
    syncs.push_back(std::make_unique<DenseGradSync>(ex_opts));
    syncs.back()->set_bucket_bytes(bucket_mb << 20);
  }

  CommWorld world(gpus);
  double measured_seconds = 0.0;
  std::vector<double> rank_exchange(static_cast<std::size_t>(gpus), 0.0);
  std::vector<double> rank_optimizer(static_cast<std::size_t>(gpus), 0.0);
  std::uint64_t unique_rows = 0;
  world.run([&](Communicator& comm) {
    const int r = comm.rank();
    CharLm& model = *models[static_cast<std::size_t>(r)];
    Adam& opt = *opts[static_cast<std::size_t>(r)];
    UniqueExchange& exchange = *exchanges[static_cast<std::size_t>(r)];
    DenseGradSync& dense_sync = *syncs[static_cast<std::size_t>(r)];

    AsyncCommEngine engine(comm, overlap);
    model.set_backward_hook(
        [&dense_sync](const Param& p) { dense_sync.notify_ready(&p); });

    const auto dense = model.dense_params();
    BatchIterator it(ids, spec, comm.rank(), comm.world_size());
    Batch batch;
    LmStepResult res;
    Stopwatch step_watch;
    double exchange_seconds = 0.0;
    double optimizer_seconds = 0.0;
    for (std::size_t step = 0; step < total_steps; ++step) {
      if (step == warmup_steps) {
        comm.barrier();
        if (r == 0) PhaseTimers::reset();
        exchange_seconds = optimizer_seconds = 0.0;
        step_watch.reset();
      }
      if (!it.next(batch)) {
        std::fprintf(stderr, "corpus exhausted early\n");
        std::abort();
      }
      model.zero_grad();
      dense_sync.begin_step(comm, engine, dense);
      PendingIdGather pending;
      begin_id_gather(engine, batch.inputs, pending);
      model.train_step_local(batch, {}, res);

      Stopwatch phase_watch;
      dense_sync.finish();
      std::vector<Index> uids;
      Tensor urows;
      exchange.exchange(comm, res.input_ids, res.input_delta, uids, urows,
                        nullptr, &pending);
      scale(urows, 1.0f / static_cast<float>(comm.world_size()));
      exchange_seconds += phase_watch.seconds();
      unique_rows = uids.size();

      phase_watch.reset();
      opt.begin_step();
      opt.step(dense);
      opt.step_rows(model.input_embedding_param(), urows, uids);
      optimizer_seconds += phase_watch.seconds();
    }
    model.set_backward_hook(nullptr);
    comm.barrier();
    if (r == 0) measured_seconds = step_watch.seconds();
    rank_exchange[static_cast<std::size_t>(r)] = exchange_seconds;
    rank_optimizer[static_cast<std::size_t>(r)] = optimizer_seconds;
  });
  double exchange_seconds = 0.0;
  double optimizer_seconds = 0.0;
  for (int r = 0; r < gpus; ++r) {
    exchange_seconds =
        std::max(exchange_seconds, rank_exchange[static_cast<std::size_t>(r)]);
    optimizer_seconds = std::max(
        optimizer_seconds, rank_optimizer[static_cast<std::size_t>(r)]);
  }

  // Aggregate throughput: every simulated GPU processes its own
  // tokens_per_rank each step (data parallelism), so the fleet's
  // tokens/s is the per-rank rate times the world size.
  const double tokens =
      static_cast<double>(spec.tokens_per_rank()) *
      static_cast<double>(measured_steps) * static_cast<double>(gpus);
  const double tok_s = tokens / measured_seconds;
  const double steps_d = static_cast<double>(measured_steps);
  const double step_ms = 1e3 * measured_seconds / steps_d;
  const double forward_ms = 1e3 * PhaseTimers::seconds("forward") / steps_d;
  const double backward_ms = 1e3 * PhaseTimers::seconds("backward") / steps_d;
  const double exchange_ms = 1e3 * exchange_seconds / steps_d;
  const double optimizer_ms = 1e3 * optimizer_seconds / steps_d;

  std::printf("batch %lld x seq %lld, %zu measured steps (+%zu warmup)\n",
              static_cast<long long>(batch_size),
              static_cast<long long>(seq_len), measured_steps, warmup_steps);
  std::printf("throughput: %8s tokens/s (%s ms/step)\n",
              bench::fmt(tok_s).c_str(), bench::fmt(step_ms).c_str());
  std::printf("  forward  : %8s ms\n", bench::fmt(forward_ms).c_str());
  std::printf("  backward : %8s ms\n", bench::fmt(backward_ms).c_str());
  std::printf("  exchange : %8s ms (U_g = %llu unique rows)\n",
              bench::fmt(exchange_ms).c_str(),
              static_cast<unsigned long long>(unique_rows));
  std::printf("  optimizer: %8s ms\n", bench::fmt(optimizer_ms).c_str());

  std::printf(
      "RESULT {\"bench\":\"train_step\",\"batch\":%lld,\"seq\":%lld,"
      "\"steps\":%zu,\"gpus\":%d,\"overlap\":%s,"
      "\"tokens_per_s\":%.2f,\"step_ms\":%.2f,"
      "\"forward_ms\":%.2f,\"backward_ms\":%.2f,\"exchange_ms\":%.2f,"
      "\"optimizer_ms\":%.2f}\n",
      static_cast<long long>(batch_size), static_cast<long long>(seq_len),
      measured_steps, gpus, overlap ? "true" : "false", tok_s, step_ms,
      forward_ms, backward_ms, exchange_ms, optimizer_ms);
  return 0;
}
