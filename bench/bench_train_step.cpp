// End-to-end training-step throughput on the seed CharLm configuration
// (RHN 1792 x depth 10, vocab 98), with the per-phase breakdown that
// decides where optimization effort goes: forward, backward, embedding
// exchange, optimizer.
//
// Default world size is 1 (the *local* per-step cost — kernels + local
// reduce + scatter + Adam, the paper's Θ(G·K + U_g·D) constant factor);
// --gpus N runs N simulated ranks through the full wire path with the
// overlapped bucketed dense exchange (--overlap off for the synchronous
// reference).  Throughput is aggregate: tokens_per_rank x ranks.  FP16
// wire precision is kept on so the compression-scaling casts stay in
// the measured path.
//
// --transport selects how the ranks are realized:
//
//   thread  (default)  N threads of this process over CommWorld's
//                      shared-memory collectives — the seed behavior.
//   socket             N forked OS processes that rendezvous over UNIX
//                      sockets (ProcessGroup / zipflm::net) and train
//                      over the real wire.  The parent first runs the
//                      thread world as a reference, then asserts the
//                      socket world's per-rank losses and final weights
//                      are BITWISE identical to it — the bench doubles
//                      as the multi-process equivalence gate (exit 1 on
//                      any divergence).
//
// --codec raw|packed|int8 arms the gradient wire codec (and the varint
// index codec for the non-raw settings).  packed is lossless, so the
// socket world must stay bitwise equal to the thread reference; int8 is
// deterministic across engines, so the gate holds for it too.  The
// RESULT record carries the codec and the bytes that actually crossed
// the wire (socket: measured from the transports; thread: the ledger's
// modelled wire volume).
//
// --shard-embedding row-shards the input table: rank r owns rows
// [r*V/G, (r+1)*V/G) and the worlds train through the alltoallv
// pull/push exchange instead of the replicated allreduce.  An extra
// all-replicated thread world runs first as the oracle; the sharded
// worlds' per-rank loss streams and ASSEMBLED-table weight hashes must
// be bitwise equal to it (exit 1 otherwise), on top of the usual
// socket-vs-thread gate.  FP32 wire is forced (the sharded fold is only
// bitwise-equal to the replicated ring under lossless payloads), and
// int8 is rejected for the same reason; packed stays legal.
//
// Emits one line of JSON (prefixed "RESULT ") so harnesses can scrape a
// single machine-readable record; record the trajectory in
// BENCH_train_step.json.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "zipflm/comm/process_group.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/core/grad_sync.hpp"
#include "zipflm/core/sharded_exchange.hpp"
#include "zipflm/data/batch.hpp"
#include "zipflm/net/telemetry.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/nn/optimizer.hpp"
#include "zipflm/obs/telemetry.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/support/phase_timers.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/support/stopwatch.hpp"
#include "zipflm/tensor/ops.hpp"

#include "bench_common.hpp"

namespace {

using namespace zipflm;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001b3ull;
  }
  return h;
}

/// Digest of everything training mutates: dense parameter values plus
/// the sparse-exchanged input embedding.  Two runs that agree here (and
/// on the per-step loss stream) took bitwise the same trajectory.
/// Sharded models hash the ASSEMBLED table — every rank allgathers the
/// shard slices in rank order, which reproduces the replicated V x D
/// byte layout exactly — so a sharded rank's digest is directly
/// comparable to a replicated rank's.
std::uint64_t hash_weights(CharLm& model, Communicator& comm) {
  std::uint64_t h = kFnvOffset;
  for (const Param* p : model.dense_params()) {
    h = fnv1a(p->value.data().data(), p->value.bytes(), h);
  }
  if (ShardedEmbedding* se = model.sharded_input(); se != nullptr) {
    const Tensor& shard = se->param().value;
    std::vector<std::byte> full;
    std::vector<std::size_t> counts;
    comm.allgatherv_bytes(
        std::as_bytes(std::span<const float>(shard.data().data(),
                                             shard.data().size())),
        full, counts);
    return fnv1a(full.data(), full.size(), h);
  }
  const Param& emb = model.input_embedding_param();
  return fnv1a(emb.value.data().data(), emb.value.bytes(), h);
}

/// One rank's training outcome.  Plain old data so a forked socket
/// child can ship it back to the parent over a pipe verbatim.
struct RankReport {
  std::uint64_t weights_hash = 0;  ///< final dense + embedding values
  std::uint64_t loss_hash = 0;     ///< FNV over every step's loss bits
  double loss_sum = 0.0;
  double measured_seconds = 0.0;   ///< post-warmup wall time
  double exchange_seconds = 0.0;
  double optimizer_seconds = 0.0;
  double forward_seconds = 0.0;    ///< socket children: own PhaseTimers
  double backward_seconds = 0.0;
  std::uint64_t unique_rows = 0;
  std::uint64_t wire_bytes_sent = 0;  ///< socket children only
};

/// Everything both worlds share; one parse of argv.
struct BenchConfig {
  CharLmConfig cfg;  // seed defaults: vocab 98, RHN 1792 x depth 10
  BatchSpec spec;
  ExchangeOptions ex_opts{WirePrecision::FP16, 1024.0f, false};
  int gpus = 1;
  bool shard_embedding = false;
  bool overlap = true;
  std::size_t bucket_bytes = 4u << 20;
  std::size_t warmup_steps = 1;
  std::size_t measured_steps = 3;
  /// Chrome trace output ("" = tracing off).  Socket mode collects every
  /// child's lanes over the training transport after the final barrier
  /// and writes one clock-aligned merged document.
  std::string trace_path;

  std::size_t total_steps() const { return warmup_steps + measured_steps; }

  /// Rank r's model config: the shared seed config, sharded over the
  /// world when --shard-embedding is armed.
  CharLmConfig rank_cfg(int rank) const {
    CharLmConfig c = cfg;
    if (shard_embedding) {
      c.shard_rank = rank;
      c.shard_world = gpus;
    }
    return c;
  }

  /// The embedding-gradient strategy for this run: the replicated
  /// unique allreduce, or the sharded alltoallv push.
  std::unique_ptr<EmbeddingExchange> make_exchange() const {
    if (shard_embedding) {
      return std::make_unique<ShardedEmbeddingExchange>(
          cfg.vocab, cfg.embed_dim, ex_opts);
    }
    return std::make_unique<UniqueExchange>(ex_opts);
  }
};

/// The per-rank training loop, identical for every backend: the
/// communicator is the only thing that differs between a CommWorld
/// thread and a ProcessGroup process.
RankReport run_rank(Communicator& comm, CharLm& model, Adam& opt,
                    EmbeddingExchange& exchange, DenseGradSync& dense_sync,
                    const std::vector<Index>& ids, const BenchConfig& bc) {
  RankReport rep;
  rep.loss_hash = kFnvOffset;
  const int r = comm.rank();

  AsyncCommEngine engine(comm, bc.overlap);
  model.set_backward_hook(
      [&dense_sync](const Param& p) { dense_sync.notify_ready(&p); });

  // The sharded push needs the typed strategy for the per-step row pull.
  auto* sharded = dynamic_cast<ShardedEmbeddingExchange*>(&exchange);

  const auto dense = model.dense_params();
  BatchIterator it(ids, bc.spec, comm.rank(), comm.world_size());
  Batch batch;
  LmStepResult res;
  Stopwatch step_watch;
  for (std::size_t step = 0; step < bc.total_steps(); ++step) {
    if (step == bc.warmup_steps) {
      comm.barrier();
      if (r == 0) PhaseTimers::reset();
      rep.exchange_seconds = rep.optimizer_seconds = 0.0;
      step_watch.reset();
    }
    if (!it.next(batch)) {
      std::fprintf(stderr, "corpus exhausted early\n");
      std::abort();
    }
    model.zero_grad();
    if (sharded != nullptr) {
      // Pull this batch's unique forward rows from their owner shards
      // while the engine is idle (the trainer's step-start slot).
      Stopwatch pull_watch;
      sharded->pull(comm, *model.sharded_input(), batch.inputs);
      rep.exchange_seconds += pull_watch.seconds();
    }
    dense_sync.begin_step(comm, engine, dense);
    PendingIdGather pending;
    begin_id_gather(engine, batch.inputs, pending, bc.ex_opts.index_codec);
    model.train_step_local(batch, {}, res);
    rep.loss_hash = fnv1a(&res.loss, sizeof(res.loss), rep.loss_hash);
    rep.loss_sum += static_cast<double>(res.loss);

    Stopwatch phase_watch;
    dense_sync.finish();
    std::vector<Index> uids;
    Tensor urows;
    exchange.exchange(comm, res.input_ids, res.input_delta, uids, urows,
                      nullptr, &pending);
    scale(urows, 1.0f / static_cast<float>(comm.world_size()));
    rep.exchange_seconds += phase_watch.seconds();
    rep.unique_rows = uids.size();

    phase_watch.reset();
    opt.begin_step();
    opt.step(dense);
    if (const ShardedEmbedding* se = model.sharded_input(); se != nullptr) {
      // The push returned OWNED global ids; the shard param is indexed
      // from its first owned row.
      for (Index& id : uids) id -= se->row_begin();
    }
    opt.step_rows(model.input_embedding_param(), urows, uids);
    rep.optimizer_seconds += phase_watch.seconds();
  }
  model.set_backward_hook(nullptr);
  comm.barrier();
  rep.measured_seconds = step_watch.seconds();
  rep.weights_hash = hash_weights(model, comm);
  return rep;
}

/// N threads of this process over CommWorld (the seed path).  One
/// replica per simulated GPU, exactly like DistributedTrainer: the wire
/// path (bucketed dense allreduce + unique embedding exchange) is in
/// the measured loop, so --gpus 4 reports what overlap actually hides.
std::vector<RankReport> run_thread_world(const BenchConfig& bc,
                                         const std::vector<Index>& ids,
                                         std::uint64_t* wire_model_out) {
  std::vector<std::unique_ptr<CharLm>> models;
  std::vector<std::unique_ptr<Adam>> opts;
  std::vector<std::unique_ptr<EmbeddingExchange>> exchanges;
  std::vector<std::unique_ptr<DenseGradSync>> syncs;
  for (int r = 0; r < bc.gpus; ++r) {
    models.push_back(std::make_unique<CharLm>(bc.rank_cfg(r)));
    Adam::Config acfg;
    acfg.clip = 1.0f;
    opts.push_back(std::make_unique<Adam>(acfg));
    exchanges.push_back(bc.make_exchange());
    syncs.push_back(std::make_unique<DenseGradSync>(bc.ex_opts));
    syncs.back()->set_bucket_bytes(bc.bucket_bytes);
  }

  CommWorld world(bc.gpus);
  std::vector<RankReport> reports(static_cast<std::size_t>(bc.gpus));
  world.run([&](Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    reports[r] = run_rank(comm, *models[r], *opts[r], *exchanges[r], *syncs[r],
                          ids, bc);
  });
  if (wire_model_out != nullptr) {
    // The shared-memory backend moves no real bytes; model the wire
    // volume as the ledger's logical traffic with each coded gradient
    // leg's logical bytes swapped for its encoded bytes.  (The index
    // varint leg needs no swap: its allgatherv already moves — and
    // books — the encoded payload.)
    const auto total = world.total_ledger();
    std::uint64_t wire = total.bytes_sent;
    for (const CodecSlot slot : {CodecSlot::Packed, CodecSlot::Int8}) {
      const CodecTraffic& t = total.codec_slot(slot);
      wire = wire >= t.logical_bytes ? wire - t.logical_bytes : 0;
      wire += t.wire_bytes;
    }
    *wire_model_out = wire;
  }
  return reports;
}

bool read_full(int fd, void* out, std::size_t n) {
  auto* p = static_cast<unsigned char*>(out);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // child died before reporting
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

/// One forked rank of the socket world: rendezvous, build a fresh
/// replica (identical seed => identical init to the thread world's),
/// train, and ship the report up the pipe.
int run_socket_child(int rank, const std::string& rendezvous,
                     const BenchConfig& bc, const std::vector<Index>& ids,
                     int pipe_fd) {
  const bool traced = !bc.trace_path.empty();
  if (traced) {
    // Fresh per-process timeline: the lane registrations inherited from
    // the parent's (untraced) thread world are empty and stay so.
    obs::trace_clear();
    obs::set_process_label("rank " + std::to_string(rank));
    obs::set_thread_lane("rank " + std::to_string(rank), rank);
    obs::trace_enable(true);
  }

  ProcessGroup::Options opt;
  opt.collective_timeout_seconds = 300.0;
  auto pg = ProcessGroup::connect(rendezvous, rank, bc.gpus, opt);

  CharLm model(bc.rank_cfg(rank));
  Adam::Config acfg;
  acfg.clip = 1.0f;
  Adam adam(acfg);
  const std::unique_ptr<EmbeddingExchange> exchange = bc.make_exchange();
  DenseGradSync dense_sync(bc.ex_opts);
  dense_sync.set_bucket_bytes(bc.bucket_bytes);

  RankReport rep =
      run_rank(pg->comm(), model, adam, *exchange, dense_sync, ids, bc);
  rep.forward_seconds = PhaseTimers::seconds("forward");
  rep.backward_seconds = PhaseTimers::seconds("backward");
  rep.wire_bytes_sent = pg->ledger().wire_bytes_sent;

  if (traced) {
    // run_rank ends on a barrier, so the training transport is quiet —
    // reuse it as the telemetry plane.  Rank 0 plays collector: its own
    // lanes at offset 0, every peer's shipped over the wire with an
    // NTP-style offset estimate, one merged clock-aligned document.
    obs::trace_enable(false);
    if (rank == 0) {
      std::vector<obs::ProcessTrace> traces;
      obs::ProcessTrace self;
      self.label = obs::process_label();
      self.pid = 1;
      self.lanes = obs::trace_lane_snapshot();
      traces.push_back(std::move(self));
      for (int peer = 1; peer < bc.gpus; ++peer) {
        net::telemetry::CollectOptions copt;
        copt.want_metrics = false;
        net::telemetry::WorkerTelemetry wt =
            net::telemetry::collect_from_peer(pg->transport(), peer, copt);
        wt.trace.pid = peer + 1;
        traces.push_back(std::move(wt.trace));
      }
      const obs::TraceExportStats st =
          obs::write_chrome_trace_merged_file(bc.trace_path, traces);
      std::fprintf(stderr,
                   "merged trace: %llu events across %zu lanes "
                   "(%llu dropped) -> %s\n",
                   static_cast<unsigned long long>(st.events), st.lanes,
                   static_cast<unsigned long long>(st.dropped),
                   bc.trace_path.c_str());
    } else {
      net::telemetry::serve_collector(pg->transport(), 0);
    }
  }

  if (!write_full(pipe_fd, &rep, sizeof(rep))) return 1;
  pg.reset();  // orderly endpoint close before _Exit
  return 0;
}

/// N forked OS processes over UNIX-socket rendezvous.  Returns empty on
/// any child failure (already reported to stderr).
std::vector<RankReport> run_socket_world(const BenchConfig& bc,
                                         const std::vector<Index>& ids) {
  const std::string rendezvous =
      "unix:/tmp/zipflm_bench." + std::to_string(::getpid());
  std::fflush(nullptr);  // children inherit the stdio buffers at fork
  std::vector<pid_t> pids;
  std::vector<int> read_fds;
  for (int r = 0; r < bc.gpus; ++r) {
    int fds[2];
    if (::pipe(fds) != 0) {
      std::perror("pipe");
      return {};
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return {};
    }
    if (pid == 0) {
      for (const int fd : read_fds) ::close(fd);
      ::close(fds[0]);
      int code = 1;
      try {
        code = run_socket_child(r, rendezvous, bc, ids, fds[1]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "socket rank %d failed: %s\n", r, e.what());
      }
      std::fflush(nullptr);  // _Exit skips the stdio flush
      std::_Exit(code);
    }
    ::close(fds[1]);
    pids.push_back(pid);
    read_fds.push_back(fds[0]);
  }

  std::vector<RankReport> reports(static_cast<std::size_t>(bc.gpus));
  bool ok = true;
  for (int r = 0; r < bc.gpus; ++r) {
    if (!read_full(read_fds[static_cast<std::size_t>(r)],
                   &reports[static_cast<std::size_t>(r)],
                   sizeof(RankReport))) {
      std::fprintf(stderr, "socket rank %d sent no report\n", r);
      ok = false;
    }
    ::close(read_fds[static_cast<std::size_t>(r)]);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  if (!ok) return {};
  return reports;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zipflm;

  // Positional args first (batch, seq, steps), then flags.
  std::vector<char*> positional;
  BenchConfig bc;
  bool fp16_wire = true;
  std::string transport = "thread";
  std::string codec = "raw";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gpus" && i + 1 < argc) {
      bc.gpus = std::atoi(argv[++i]);
    } else if (arg == "--overlap" && i + 1 < argc) {
      bc.overlap = std::string(argv[++i]) != "off";
    } else if (arg == "--wire" && i + 1 < argc) {
      fp16_wire = std::string(argv[++i]) != "fp32";
    } else if (arg == "--bucket-mb" && i + 1 < argc) {
      bc.bucket_bytes = static_cast<std::size_t>(std::atoi(argv[++i])) << 20;
    } else if (arg == "--transport" && i + 1 < argc) {
      transport = argv[++i];
    } else if (arg == "--shard-embedding") {
      bc.shard_embedding = true;
    } else if (arg == "--codec" && i + 1 < argc) {
      codec = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      bc.trace_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (transport != "thread" && transport != "socket") {
    std::fprintf(stderr, "--transport must be 'thread' or 'socket'\n");
    return 2;
  }
  if (codec != "raw" && codec != "packed" && codec != "int8") {
    std::fprintf(stderr, "--codec must be 'raw', 'packed' or 'int8'\n");
    return 2;
  }
  if (bc.shard_embedding && codec == "int8") {
    std::fprintf(stderr,
                 "--shard-embedding keeps row payloads lossless; int8 would "
                 "diverge from the replicated oracle (use raw or packed)\n");
    return 2;
  }
  if (bc.shard_embedding && fp16_wire) {
    // The sharded fold is only bitwise-equal to the replicated ring
    // under lossless payloads.
    std::printf("--shard-embedding forces --wire fp32\n");
    fp16_wire = false;
  }
  bc.spec.batch_size =
      positional.size() > 0 ? static_cast<Index>(std::atoi(positional[0])) : 8;
  bc.spec.seq_len =
      positional.size() > 1 ? static_cast<Index>(std::atoi(positional[1])) : 8;
  bc.measured_steps =
      positional.size() > 2 ? static_cast<std::size_t>(std::atoi(positional[2]))
                            : 3;
  bc.ex_opts.precision = fp16_wire ? WirePrecision::FP16 : WirePrecision::FP32;
  if (codec != "raw") {
    bc.ex_opts.codec =
        codec == "packed" ? WireCodec::Packed : WireCodec::Int8;
    bc.ex_opts.index_codec = true;
  }

  bench::print_header(
      "Training-step throughput, seed CharLm",
      "paper SIV-B char model; local step cost Θ(G·K + U_g·D)",
      "full train step: forward + backward + unique exchange + Adam");

  const std::size_t corpus =
      static_cast<std::size_t>(bc.spec.tokens_per_rank()) *
          (bc.total_steps() + 1) * static_cast<std::size_t>(bc.gpus) +
      1;
  std::vector<Index> ids(corpus);
  Rng rng(42);
  for (auto& id : ids) {
    id = static_cast<Index>(
        rng.uniform_index(static_cast<std::uint64_t>(bc.cfg.vocab)));
  }

  // Under --shard-embedding an all-replicated thread world runs first:
  // it is the oracle the sharded worlds must reproduce bitwise (same
  // per-rank loss stream, same assembled table).
  bool shard_equal_to_replicated = true;
  std::vector<RankReport> replicated_reports;
  if (bc.shard_embedding) {
    BenchConfig ref = bc;
    ref.shard_embedding = false;
    replicated_reports = run_thread_world(ref, ids, nullptr);
  }

  // The thread world always runs — it IS the bench in thread mode, and
  // the equality reference in socket mode.  Tracing covers only the
  // world being measured: thread mode traces the thread world locally;
  // socket mode leaves the reference untraced and lets the children
  // collect the merged multi-process document.
  const bool trace_threads = !bc.trace_path.empty() && transport == "thread";
  if (trace_threads) obs::trace_enable(true);
  std::uint64_t wire_model_bytes = 0;
  const std::vector<RankReport> thread_reports =
      run_thread_world(bc, ids, &wire_model_bytes);
  if (trace_threads) {
    obs::trace_enable(false);
    const obs::TraceExportStats st =
        obs::write_chrome_trace_file(bc.trace_path);
    std::printf("trace: %llu events across %zu lanes -> %s\n",
                static_cast<unsigned long long>(st.events), st.lanes,
                bc.trace_path.c_str());
  }

  if (bc.shard_embedding) {
    for (int r = 0; r < bc.gpus; ++r) {
      const auto& rr = replicated_reports[static_cast<std::size_t>(r)];
      const auto& sr = thread_reports[static_cast<std::size_t>(r)];
      if (rr.weights_hash != sr.weights_hash || rr.loss_hash != sr.loss_hash) {
        std::fprintf(stderr,
                     "rank %d sharded run diverged from replicated oracle: "
                     "weights %016llx vs %016llx, losses %016llx vs %016llx\n",
                     r, static_cast<unsigned long long>(rr.weights_hash),
                     static_cast<unsigned long long>(sr.weights_hash),
                     static_cast<unsigned long long>(rr.loss_hash),
                     static_cast<unsigned long long>(sr.loss_hash));
        shard_equal_to_replicated = false;
      }
    }
    std::printf(
        "sharded embedding: %d-way row shard, losses/assembled weights %s "
        "the replicated oracle\n",
        bc.gpus,
        shard_equal_to_replicated ? "bitwise equal to" : "DIVERGED from");
  }

  bool equal_to_thread = true;
  std::uint64_t wire_bytes = wire_model_bytes;
  std::vector<RankReport> reports;
  if (transport == "socket") {
    reports = run_socket_world(bc, ids);
    if (reports.empty()) {
      std::fprintf(stderr, "socket world failed\n");
      return 1;
    }
    for (int r = 0; r < bc.gpus; ++r) {
      const auto& t = thread_reports[static_cast<std::size_t>(r)];
      const auto& s = reports[static_cast<std::size_t>(r)];
      if (t.weights_hash != s.weights_hash || t.loss_hash != s.loss_hash) {
        std::fprintf(stderr,
                     "rank %d diverged from thread backend: weights "
                     "%016llx vs %016llx, losses %016llx vs %016llx\n",
                     r, static_cast<unsigned long long>(t.weights_hash),
                     static_cast<unsigned long long>(s.weights_hash),
                     static_cast<unsigned long long>(t.loss_hash),
                     static_cast<unsigned long long>(s.loss_hash));
        equal_to_thread = false;
      }
    }
    wire_bytes = 0;
    for (const auto& rep : reports) wire_bytes += rep.wire_bytes_sent;
    std::printf(
        "socket transport: %d OS processes, %llu wire bytes, losses/weights "
        "%s thread backend\n",
        bc.gpus, static_cast<unsigned long long>(wire_bytes),
        equal_to_thread ? "bitwise equal to" : "DIVERGED from");
  } else {
    reports = thread_reports;
  }

  const RankReport& r0 = reports[0];
  double exchange_seconds = 0.0;
  double optimizer_seconds = 0.0;
  for (const auto& rep : reports) {
    exchange_seconds = std::max(exchange_seconds, rep.exchange_seconds);
    optimizer_seconds = std::max(optimizer_seconds, rep.optimizer_seconds);
  }
  // Thread mode reads the process-global phase timers (as the seed
  // did); socket mode reads rank 0's own process.
  const double forward_seconds = transport == "socket"
                                     ? r0.forward_seconds
                                     : PhaseTimers::seconds("forward");
  const double backward_seconds = transport == "socket"
                                      ? r0.backward_seconds
                                      : PhaseTimers::seconds("backward");

  // Aggregate throughput: every simulated GPU processes its own
  // tokens_per_rank each step (data parallelism), so the fleet's
  // tokens/s is the per-rank rate times the world size.
  const double tokens = static_cast<double>(bc.spec.tokens_per_rank()) *
                        static_cast<double>(bc.measured_steps) *
                        static_cast<double>(bc.gpus);
  const double tok_s = tokens / r0.measured_seconds;
  const double steps_d = static_cast<double>(bc.measured_steps);
  const double step_ms = 1e3 * r0.measured_seconds / steps_d;
  const double forward_ms = 1e3 * forward_seconds / steps_d;
  const double backward_ms = 1e3 * backward_seconds / steps_d;
  const double exchange_ms = 1e3 * exchange_seconds / steps_d;
  const double optimizer_ms = 1e3 * optimizer_seconds / steps_d;

  std::printf("batch %lld x seq %lld, %zu measured steps (+%zu warmup)\n",
              static_cast<long long>(bc.spec.batch_size),
              static_cast<long long>(bc.spec.seq_len), bc.measured_steps,
              bc.warmup_steps);
  std::printf("throughput: %8s tokens/s (%s ms/step)\n",
              bench::fmt(tok_s).c_str(), bench::fmt(step_ms).c_str());
  std::printf("  forward  : %8s ms\n", bench::fmt(forward_ms).c_str());
  std::printf("  backward : %8s ms\n", bench::fmt(backward_ms).c_str());
  std::printf("  exchange : %8s ms (U_g = %llu unique rows)\n",
              bench::fmt(exchange_ms).c_str(),
              static_cast<unsigned long long>(r0.unique_rows));
  std::printf("  optimizer: %8s ms\n", bench::fmt(optimizer_ms).c_str());

  std::printf(
      "RESULT {\"bench\":\"train_step\",\"batch\":%lld,\"seq\":%lld,"
      "\"steps\":%zu,\"gpus\":%d,\"overlap\":%s,"
      "\"transport\":\"%s\",\"processes\":%d,\"equal_to_thread\":%s,"
      "\"shard_embedding\":%s,\"shard_equal_to_replicated\":%s,"
      "\"wire_codec\":\"%s\",\"wire_bytes\":%llu,"
      "\"tokens_per_s\":%.2f,\"step_ms\":%.2f,"
      "\"forward_ms\":%.2f,\"backward_ms\":%.2f,\"exchange_ms\":%.2f,"
      "\"optimizer_ms\":%.2f}\n",
      static_cast<long long>(bc.spec.batch_size),
      static_cast<long long>(bc.spec.seq_len), bc.measured_steps, bc.gpus,
      bc.overlap ? "true" : "false", transport.c_str(),
      transport == "socket" ? bc.gpus : 1, equal_to_thread ? "true" : "false",
      bc.shard_embedding ? "true" : "false",
      shard_equal_to_replicated ? "true" : "false",
      codec.c_str(), static_cast<unsigned long long>(wire_bytes),
      tok_s, step_ms, forward_ms, backward_ms, exchange_ms, optimizer_ms);
  return equal_to_thread && shard_equal_to_replicated ? 0 : 1;
}
