// End-to-end training-step throughput on the seed CharLm configuration
// (RHN 1792 x depth 10, vocab 98), with the per-phase breakdown that
// decides where optimization effort goes: forward, backward, embedding
// exchange, optimizer.
//
// Runs world size 1 on purpose: the wire path is covered by
// bench_exchange_micro; what this benchmark tracks is the *local*
// per-step cost (kernels + local reduce + scatter + Adam), which is the
// paper's Θ(G·K + U_g·D) constant factor.  FP16 wire precision is kept
// on so the compression-scaling casts stay in the measured path.
//
// Emits one line of JSON (prefixed "RESULT ") so harnesses can scrape a
// single machine-readable record; record the trajectory in
// BENCH_train_step.json.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/core/grad_sync.hpp"
#include "zipflm/data/batch.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/nn/optimizer.hpp"
#include "zipflm/support/phase_timers.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/support/stopwatch.hpp"
#include "zipflm/tensor/ops.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace zipflm;

  const Index batch_size =
      argc > 1 ? static_cast<Index>(std::atoi(argv[1])) : 8;
  const Index seq_len = argc > 2 ? static_cast<Index>(std::atoi(argv[2])) : 8;
  const std::size_t measured_steps =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 3;
  const std::size_t warmup_steps = 1;

  bench::print_header(
      "Training-step throughput, seed CharLm",
      "paper SIV-B char model; local step cost Θ(G·K + U_g·D)",
      "full train step: forward + backward + unique exchange + Adam");

  CharLmConfig cfg;  // seed defaults: vocab 98, RHN 1792 x depth 10
  CharLm model(cfg);

  BatchSpec spec;
  spec.batch_size = batch_size;
  spec.seq_len = seq_len;
  const std::size_t total_steps = warmup_steps + measured_steps;
  const std::size_t corpus =
      static_cast<std::size_t>(spec.tokens_per_rank()) * (total_steps + 1) + 1;
  std::vector<Index> ids(corpus);
  Rng rng(42);
  for (auto& id : ids) {
    id = static_cast<Index>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.vocab)));
  }

  const ExchangeOptions ex_opts{WirePrecision::FP16, 1024.0f, false};
  UniqueExchange exchange(ex_opts);
  DenseGradSync dense_sync(ex_opts);
  Adam::Config acfg;
  acfg.clip = 1.0f;
  Adam opt(acfg);

  CommWorld world(1);
  double measured_seconds = 0.0;
  double exchange_seconds = 0.0;
  double optimizer_seconds = 0.0;
  std::uint64_t unique_rows = 0;
  world.run([&](Communicator& comm) {
    const auto dense = model.dense_params();
    BatchIterator it(ids, spec, comm.rank(), comm.world_size());
    Batch batch;
    LmStepResult res;
    Stopwatch step_watch;
    for (std::size_t step = 0; step < total_steps; ++step) {
      if (step == warmup_steps) {
        PhaseTimers::reset();
        exchange_seconds = optimizer_seconds = 0.0;
        step_watch.reset();
      }
      if (!it.next(batch)) {
        std::fprintf(stderr, "corpus exhausted early\n");
        std::abort();
      }
      model.zero_grad();
      model.train_step_local(batch, {}, res);

      Stopwatch phase_watch;
      dense_sync.sync(comm, dense);
      std::vector<Index> uids;
      Tensor urows;
      exchange.exchange(comm, res.input_ids, res.input_delta, uids, urows,
                        nullptr);
      scale(urows, 1.0f / static_cast<float>(comm.world_size()));
      exchange_seconds += phase_watch.seconds();
      unique_rows = uids.size();

      phase_watch.reset();
      opt.begin_step();
      opt.step(dense);
      opt.step_rows(model.input_embedding_param(), urows, uids);
      optimizer_seconds += phase_watch.seconds();
    }
    measured_seconds = step_watch.seconds();
  });

  const double tokens =
      static_cast<double>(spec.tokens_per_rank()) *
      static_cast<double>(measured_steps);
  const double tok_s = tokens / measured_seconds;
  const double steps_d = static_cast<double>(measured_steps);
  const double step_ms = 1e3 * measured_seconds / steps_d;
  const double forward_ms = 1e3 * PhaseTimers::seconds("forward") / steps_d;
  const double backward_ms = 1e3 * PhaseTimers::seconds("backward") / steps_d;
  const double exchange_ms = 1e3 * exchange_seconds / steps_d;
  const double optimizer_ms = 1e3 * optimizer_seconds / steps_d;

  std::printf("batch %lld x seq %lld, %zu measured steps (+%zu warmup)\n",
              static_cast<long long>(batch_size),
              static_cast<long long>(seq_len), measured_steps, warmup_steps);
  std::printf("throughput: %8s tokens/s (%s ms/step)\n",
              bench::fmt(tok_s).c_str(), bench::fmt(step_ms).c_str());
  std::printf("  forward  : %8s ms\n", bench::fmt(forward_ms).c_str());
  std::printf("  backward : %8s ms\n", bench::fmt(backward_ms).c_str());
  std::printf("  exchange : %8s ms (U_g = %llu unique rows)\n",
              bench::fmt(exchange_ms).c_str(),
              static_cast<unsigned long long>(unique_rows));
  std::printf("  optimizer: %8s ms\n", bench::fmt(optimizer_ms).c_str());

  std::printf(
      "RESULT {\"bench\":\"train_step\",\"batch\":%lld,\"seq\":%lld,"
      "\"steps\":%zu,\"tokens_per_s\":%.2f,\"step_ms\":%.2f,"
      "\"forward_ms\":%.2f,\"backward_ms\":%.2f,\"exchange_ms\":%.2f,"
      "\"optimizer_ms\":%.2f}\n",
      static_cast<long long>(batch_size), static_cast<long long>(seq_len),
      measured_steps, tok_s, step_ms, forward_ms, backward_ms, exchange_ms,
      optimizer_ms);
  return 0;
}
