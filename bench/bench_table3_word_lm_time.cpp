// Table III: per-epoch hours and parallel efficiency of the word LM on
// the 1-Billion-word dataset, 8-64 GPUs, with and without the paper's
// techniques ('*' = out of simulated 12 GB device memory).
#include "bench_common.hpp"
#include "zipflm/sim/perf_model.hpp"

using namespace zipflm;

namespace {

struct PaperCell {
  int gpus;
  double without_h;  // <0: OOM
  double without_eff;
  double with_h;
  double with_eff;
};

const PaperCell kPaper[] = {
    {8, 35.1, 1.00, 14.6, 1.00},  {16, 41.1, 0.43, 8.1, 0.90},
    {24, 40.4, 0.29, 6.4, 0.76},  {32, -1, 0, 5.4, 0.67},
    {64, -1, 0, 4.5, 0.40},
};

std::string cell(double hours, bool oom) {
  return oom ? "*" : bench::fmt(hours, 1);
}

}  // namespace

int main() {
  bench::print_header(
      "Table III: word LM per-epoch time (hours), 1-Billion-word",
      "8-GPU baseline anchors calibrated; scaling/OOM structural",
      "calibrated PerfModel over the exchange algorithms' message sizes");

  const PerfModel model(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  const auto w = LmWorkload::word_lm_1b();

  const auto base8 = model.epoch(w, 8, TechniqueSet::none());
  const auto ours8 = model.epoch(w, 8, TechniqueSet::all());

  TextTable table({"GPUs", "w/o ours (h)", "w/o eff", "w/o paper (h)",
                   "with ours (h)", "with eff", "with paper (h)",
                   "mem w/o", "mem with"});
  for (const auto& p : kPaper) {
    const auto base = model.epoch(w, p.gpus, TechniqueSet::none());
    const auto ours = model.epoch(w, p.gpus, TechniqueSet::all());
    const double base_eff =
        base.oom ? 0.0
                 : parallel_efficiency(8, base8.epoch_hours, p.gpus,
                                       base.epoch_hours);
    const double ours_eff = parallel_efficiency(8, ours8.epoch_hours, p.gpus,
                                                ours.epoch_hours);
    table.add_row(
        {std::to_string(p.gpus), cell(base.epoch_hours, base.oom),
         base.oom ? "-" : bench::fmt(100 * base_eff, 0) + "%",
         p.without_h < 0 ? "*" : bench::fmt(p.without_h, 1),
         cell(ours.epoch_hours, ours.oom),
         bench::fmt(100 * ours_eff, 0) + "%", bench::fmt(p.with_h, 1),
         format_bytes(base.peak_memory_bytes),
         format_bytes(ours.peak_memory_bytes)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("speedup 8 GPU w/o -> 64 GPU with: %.1fx (paper: 7.7x)\n",
              base8.epoch_hours /
                  model.epoch(w, 64, TechniqueSet::all()).epoch_hours);
  std::printf("memory reduction at 24 GPUs:      %.1fx (paper: 8.6x)\n",
              static_cast<double>(
                  model.epoch(w, 24, TechniqueSet::none()).peak_memory_bytes) /
                  static_cast<double>(model.epoch(w, 24, TechniqueSet::all())
                                          .peak_memory_bytes));
  return 0;
}
