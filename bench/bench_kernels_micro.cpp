// Microbenchmarks of the tensor kernels underlying the training stack:
// blocked GEMM, softmax, the embedding gather/scatter, and the FP16
// compression-scaling casts.  Real wall-clock via google-benchmark.
#include <benchmark/benchmark.h>

#include "zipflm/support/rng.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {
namespace {

void BM_Gemm(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_GemmTransposed(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, true, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_GemmTransposed)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SoftmaxRows(benchmark::State& state) {
  const Index rows = 256;
  const Index cols = static_cast<Index>(state.range(0));
  Rng rng(3);
  const Tensor logits = Tensor::randn({rows, cols}, rng, 3.0f);
  Tensor probs({rows, cols});
  for (auto _ : state) {
    softmax_rows(logits, probs);
    benchmark::DoNotOptimize(probs.data().data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(98)->Arg(1024)->Arg(15437)
    ->Unit(benchmark::kMicrosecond);

void BM_GatherScatter(benchmark::State& state) {
  const Index vocab = 100'000;
  const Index d = 512;
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Tensor table = Tensor::randn({vocab, d}, rng, 0.1f);
  std::vector<Index> ids(k);
  for (auto& id : ids) {
    id = static_cast<Index>(rng.uniform_index(static_cast<std::uint64_t>(vocab)));
  }
  Tensor rows({static_cast<Index>(k), d});
  for (auto _ : state) {
    gather_rows(table, ids, rows);
    scatter_add_rows(rows, ids, table);
    benchmark::DoNotOptimize(table.data().data());
  }
}
BENCHMARK(BM_GatherScatter)->Arg(640)->Arg(19200)
    ->Unit(benchmark::kMicrosecond);

void BM_Fp16RoundTrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<float> values(n);
  for (auto& v : values) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<Half> wire;
  std::vector<float> back;
  for (auto _ : state) {
    compress_fp16(values, 1024.0f, wire);
    decompress_fp16(wire, 1024.0f, back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * n * sizeof(float)));
}
BENCHMARK(BM_Fp16RoundTrip)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace zipflm

BENCHMARK_MAIN();
