// Microbenchmarks of the tensor kernels underlying the training stack:
// blocked GEMM, softmax, the embedding gather/scatter, and the FP16
// compression-scaling casts.  Real wall-clock via google-benchmark.
//
// Kernels with a SIMD fast path also register a /scalar twin that pins
// simd::Backend::kScalar for the timed region, so the vector speedup is
// a first-class column in the report (the two variants are bitwise
// identical by construction — see test_determinism).
#include <benchmark/benchmark.h>

#include "zipflm/core/exchange.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/ops.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {
namespace {

/// Pins the requested SIMD backend for one benchmark's timed loop.
class BackendScope {
 public:
  explicit BackendScope(simd::Backend b) : prev_(simd::active_backend()) {
    simd::set_backend(b);
  }
  ~BackendScope() { simd::set_backend(prev_); }

 private:
  simd::Backend prev_;
};

void BM_Gemm(benchmark::State& state, simd::Backend backend) {
  BackendScope scope(backend);
  const Index n = static_cast<Index>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_Gemm, simd, simd::Backend::kNative)
    ->Arg(64)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gemm, scalar, simd::Backend::kScalar)
    ->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GemmTransposed(benchmark::State& state) {
  const Index n = static_cast<Index>(state.range(0));
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, false, b, true, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_GemmTransposed)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SoftmaxRows(benchmark::State& state, simd::Backend backend) {
  BackendScope scope(backend);
  const Index rows = 256;
  const Index cols = static_cast<Index>(state.range(0));
  Rng rng(3);
  const Tensor logits = Tensor::randn({rows, cols}, rng, 3.0f);
  Tensor probs({rows, cols});
  for (auto _ : state) {
    softmax_rows(logits, probs);
    benchmark::DoNotOptimize(probs.data().data());
  }
}
BENCHMARK_CAPTURE(BM_SoftmaxRows, simd, simd::Backend::kNative)
    ->Arg(98)->Arg(1024)->Arg(15437)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SoftmaxRows, scalar, simd::Backend::kScalar)
    ->Arg(98)->Arg(1024)->Arg(15437)->Unit(benchmark::kMicrosecond);

void BM_GatherScatter(benchmark::State& state) {
  const Index vocab = 100'000;
  const Index d = 512;
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Tensor table = Tensor::randn({vocab, d}, rng, 0.1f);
  std::vector<Index> ids(k);
  for (auto& id : ids) {
    id = static_cast<Index>(rng.uniform_index(static_cast<std::uint64_t>(vocab)));
  }
  Tensor rows({static_cast<Index>(k), d});
  for (auto _ : state) {
    gather_rows(table, ids, rows);
    scatter_add_rows(rows, ids, table);
    benchmark::DoNotOptimize(table.data().data());
  }
}
BENCHMARK(BM_GatherScatter)->Arg(640)->Arg(19200)
    ->Unit(benchmark::kMicrosecond);

void BM_Fp16RoundTrip(benchmark::State& state, simd::Backend backend) {
  BackendScope scope(backend);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<float> values(n);
  for (auto& v : values) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<Half> wire;
  std::vector<float> back;
  for (auto _ : state) {
    compress_fp16(values, 1024.0f, wire);
    decompress_fp16(wire, 1024.0f, back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * n * sizeof(float)));
}
BENCHMARK_CAPTURE(BM_Fp16RoundTrip, simd, simd::Backend::kNative)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Fp16RoundTrip, scalar, simd::Backend::kScalar)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_LocalReduce(benchmark::State& state, simd::Backend backend) {
  BackendScope scope(backend);
  // The exchange's local reduction: K token-gradient rows collapse onto
  // their unique word ids.  Zipf-flavored duplication (low ids hot) is
  // what the paper's Section III exploits, so sample ids that way.
  const Index tokens = static_cast<Index>(state.range(0));
  const Index vocab = 1000;
  const Index dim = 512;
  Rng rng(6);
  const Tensor delta = Tensor::randn({tokens, dim}, rng, 0.1f);
  std::vector<Index> ids(static_cast<std::size_t>(tokens));
  for (auto& id : ids) {
    const double u = rng.uniform(0.0, 1.0);
    id = static_cast<Index>(
        std::min<double>(vocab - 1, std::pow(static_cast<double>(vocab), u)) );
  }
  std::vector<Index> unique_ids;
  Tensor reduced;
  for (auto _ : state) {
    local_reduce_by_word(ids, delta, unique_ids, reduced);
    benchmark::DoNotOptimize(reduced.data().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::size_t>(tokens) *
      static_cast<std::size_t>(dim) * sizeof(float)));
}
BENCHMARK_CAPTURE(BM_LocalReduce, simd, simd::Backend::kNative)
    ->Arg(640)->Arg(19200)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_LocalReduce, scalar, simd::Backend::kScalar)
    ->Arg(640)->Arg(19200)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace zipflm

BENCHMARK_MAIN();
