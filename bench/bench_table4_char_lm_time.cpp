// Table IV: per-epoch hours and parallel efficiency of the character LM
// (RHN, full softmax) on the 1-Billion-word dataset, 8-64 GPUs.
#include "bench_common.hpp"
#include "zipflm/sim/perf_model.hpp"

using namespace zipflm;

namespace {
struct PaperCell {
  int gpus;
  double without_h;  // <0 = OOM
  double with_h;
};
const PaperCell kPaper[] = {
    {8, 25.7, 23.2}, {16, 14.5, 12.9}, {24, 10.6, 8.2},
    {32, -1, 6.8},   {64, -1, 3.5},
};
}  // namespace

int main() {
  bench::print_header(
      "Table IV: char LM per-epoch time (hours), 1-Billion-word",
      "8-GPU anchors calibrated; scaling/OOM structural",
      "calibrated PerfModel; full softmax (no seeding, per Section V-B)");

  const PerfModel model(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  const auto w = LmWorkload::char_lm_1b();
  const auto base8 = model.epoch(w, 8, TechniqueSet::none());
  const auto ours8 = model.epoch(w, 8, TechniqueSet::all());

  TextTable table({"GPUs", "w/o ours (h)", "w/o eff", "w/o paper (h)",
                   "with ours (h)", "with eff", "with paper (h)", "mem w/o"});
  for (const auto& p : kPaper) {
    const auto base = model.epoch(w, p.gpus, TechniqueSet::none());
    const auto ours = model.epoch(w, p.gpus, TechniqueSet::all());
    const double base_eff =
        base.oom ? 0.0
                 : parallel_efficiency(8, base8.epoch_hours, p.gpus,
                                       base.epoch_hours);
    const double ours_eff = parallel_efficiency(8, ours8.epoch_hours, p.gpus,
                                                ours.epoch_hours);
    table.add_row({std::to_string(p.gpus),
                   base.oom ? "*" : bench::fmt(base.epoch_hours, 1),
                   base.oom ? "-" : bench::fmt(100 * base_eff, 0) + "%",
                   p.without_h < 0 ? "*" : bench::fmt(p.without_h, 1),
                   bench::fmt(ours.epoch_hours, 1),
                   bench::fmt(100 * ours_eff, 0) + "%",
                   bench::fmt(p.with_h, 1),
                   format_bytes(base.peak_memory_bytes)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("speedup 8 -> 64 GPUs with techniques: %.1fx (paper: 6.6x)\n",
              ours8.epoch_hours /
                  model.epoch(w, 64, TechniqueSet::all()).epoch_hours);
  return 0;
}
