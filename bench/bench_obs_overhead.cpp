// Observability overhead: what does zipflm::obs cost the training hot
// path?  Three numbers matter:
//
//   1. A compiled-in but runtime-disabled trace span — the price every
//      instrumented scope pays on a production run.  One relaxed atomic
//      load and a branch; the acceptance bar is <= 2% of a train step.
//   2. An enabled span — the price while actually capturing a trace.
//   3. A metrics counter add — the per-event registry cost.
//
// The macro section runs a real (small) distributed training epoch with
// tracing disabled and then enabled, and scales the micro-measured span
// costs by the measured events-per-step to estimate both the disabled
// AND the enabled-with-telemetry overhead as fractions of the step
// time.  Both estimates are guarded quantities (<= 2%); the
// enabled-vs-disabled wall-clock delta also gets printed, but at this
// model size it is dominated by run-to-run noise.  The telemetry term
// is the trace-chunk + metrics wire encoding of the captured epoch,
// amortized over its steps — the per-collection cost a socket-mode
// worker pays to ship its lanes.
//
// Emits one line of JSON (prefixed "RESULT ") for harness scraping.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/markov.hpp"
#include "zipflm/net/telemetry.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/telemetry.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/support/stopwatch.hpp"

#include "bench_common.hpp"

namespace {

double ns_per_iter(const std::function<void()>& body, std::size_t iters) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) body();
  const auto t1 = Clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(iters);
}

}  // namespace

int main() {
  using namespace zipflm;

  bench::print_header(
      "Observability overhead (zipflm::obs)",
      "PR 4 acceptance: disabled tracing <= 2% of a train step",
      "micro span/counter costs + instrumented small-model train epochs");

  // ---- Micro: per-event costs -------------------------------------------
  constexpr std::size_t kIters = 1 << 20;
  obs::trace_enable(false);
  const double span_disabled_ns = ns_per_iter(
      [] { ZIPFLM_TRACE_SPAN("bench_span"); }, kIters);

  obs::trace_set_buffer_capacity(1 << 12);
  obs::trace_enable(true);
  const double span_enabled_ns = ns_per_iter(
      [] { ZIPFLM_TRACE_SPAN("bench_span"); }, kIters);
  obs::trace_enable(false);
  obs::trace_clear();

  auto& bench_counter =
      obs::MetricsRegistry::global().counter("bench/obs_overhead_iters");
  const double counter_add_ns =
      ns_per_iter([&] { bench_counter.add(1); }, kIters);

  std::printf("span, tracing disabled : %8.2f ns\n", span_disabled_ns);
  std::printf("span, tracing enabled  : %8.2f ns\n", span_enabled_ns);
  std::printf("counter add            : %8.2f ns\n\n", counter_add_ns);

  // ---- Macro: instrumented training epochs ------------------------------
  // Small model on purpose: the point is counting instrumented events per
  // step and bounding their cost, not reproducing seed-model throughput
  // (bench_train_step owns that number).
  const int gpus = 2;
  const auto data = bench::bigram_data(60, 16, 24'000, 4'000, 9);

  CommWorld world(gpus);
  TrainerOptions opt;
  opt.batch = BatchSpec{4, 16};
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  opt.charge_static_memory = false;
  DistributedTrainer trainer(
      world,
      [](int) -> std::unique_ptr<LmModel> {
        CharLmConfig cfg;
        cfg.vocab = 60;
        cfg.embed_dim = 12;
        cfg.hidden_dim = 24;
        cfg.depth = 2;
        cfg.seed = 7;
        return std::make_unique<CharLm>(cfg);
      },
      opt);

  trainer.run_epoch(data.train, data.valid, 0);  // warmup epoch

  Stopwatch watch;
  const EpochStats off = trainer.run_epoch(data.train, data.valid, 1);
  const double off_seconds = watch.seconds();

  obs::trace_set_buffer_capacity(1 << 16);
  obs::trace_clear();
  obs::trace_enable(true);
  watch.reset();
  const EpochStats on = trainer.run_epoch(data.train, data.valid, 2);
  const double on_seconds = watch.seconds();
  obs::trace_enable(false);

  std::ostringstream sink;
  const obs::TraceExportStats trace = obs::write_chrome_trace(sink);

  // Telemetry shipping cost: wire-encode the epoch's captured lanes and
  // the metrics registry exactly as a socket worker would for the
  // collector, timed once (it happens once per collection, so the
  // per-step share is total / steps).
  obs::ProcessTrace shipped;
  shipped.label = obs::process_label();
  shipped.lanes = obs::trace_lane_snapshot();
  Stopwatch enc_watch;
  const auto chunks = net::telemetry::encode_trace_chunks(shipped);
  const auto metrics_frame = net::telemetry::encode_metrics_frame(
      obs::MetricsRegistry::global().snapshot());
  const double telemetry_encode_seconds = enc_watch.seconds();
  std::size_t telemetry_bytes = metrics_frame.size();
  for (const auto& c : chunks) telemetry_bytes += c.size();

  const double tokens_per_epoch =
      static_cast<double>(off.steps) *
      static_cast<double>(opt.batch.tokens_per_rank()) *
      static_cast<double>(gpus);
  const double tok_s_disabled = tokens_per_epoch / off_seconds;
  const double tok_s_enabled = tokens_per_epoch / on_seconds;

  // Span events per rank-thread per optimizer step (instants and the
  // epoch/evaluate wrappers ride along in the numerator; conservative).
  const double events_per_rank_step =
      static_cast<double>(trace.events + trace.dropped) /
      (static_cast<double>(on.steps) * static_cast<double>(gpus));
  const double step_ns_disabled =
      off_seconds / static_cast<double>(off.steps) * 1e9;
  const double est_disabled_overhead_pct =
      100.0 * events_per_rank_step * span_disabled_ns / step_ns_disabled;
  // Enabled-with-telemetry path: per-event capture cost plus the
  // amortized per-step share of shipping the trace to a collector.
  const double telemetry_ns_per_step =
      telemetry_encode_seconds * 1e9 / static_cast<double>(on.steps);
  const double est_enabled_overhead_pct =
      100.0 *
      (events_per_rank_step * span_enabled_ns + telemetry_ns_per_step) /
      step_ns_disabled;

  std::printf("epoch of %llu steps on %d ranks\n",
              static_cast<unsigned long long>(off.steps), gpus);
  std::printf("throughput, tracing disabled: %9.1f tok/s\n", tok_s_disabled);
  std::printf("throughput, tracing enabled : %9.1f tok/s\n", tok_s_enabled);
  std::printf("trace events/rank/step      : %9.1f (%llu events, %llu "
              "dropped, %llu lanes)\n",
              events_per_rank_step,
              static_cast<unsigned long long>(trace.events),
              static_cast<unsigned long long>(trace.dropped),
              static_cast<unsigned long long>(trace.lanes));
  std::printf("est. disabled-trace overhead: %9.3f %% of a step\n",
              est_disabled_overhead_pct);
  std::printf("telemetry encode            : %9.1f us for %zu bytes "
              "(%zu chunks)\n",
              telemetry_encode_seconds * 1e6, telemetry_bytes,
              chunks.size());
  std::printf("est. enabled+telemetry ovhd : %9.3f %% of a step\n",
              est_enabled_overhead_pct);

  std::printf(
      "RESULT {\"bench\":\"obs_overhead\",\"span_disabled_ns\":%.3f,"
      "\"span_enabled_ns\":%.2f,\"counter_add_ns\":%.2f,"
      "\"tok_s_disabled\":%.1f,\"tok_s_enabled\":%.1f,"
      "\"events_per_rank_step\":%.1f,"
      "\"telemetry_encode_us\":%.1f,\"telemetry_bytes\":%zu,"
      "\"est_disabled_overhead_pct\":%.4f,"
      "\"est_enabled_overhead_pct\":%.4f}\n",
      span_disabled_ns, span_enabled_ns, counter_add_ns, tok_s_disabled,
      tok_s_enabled, events_per_rank_step, telemetry_encode_seconds * 1e6,
      telemetry_bytes, est_disabled_overhead_pct, est_enabled_overhead_pct);
  return 0;
}
