// Section V-D: comparison with Puri et al. [21] on the Amazon Review
// dataset.  Paper: 1.208 BPC (ours, 64 Titan X, 17.6 h/epoch) vs 1.218
// BPC ([21], 128 V100 + NVLink, ~1.25 h/epoch) — 14x slower on 41x less
// powerful hardware, a ~2.9x normalized gain.
//
// We model both testbeds with the same workload and report the
// time-per-epoch and the hardware-normalized gain; BPC is reproduced in
// shape by a scaled-down char-LM training run on the `ar` corpus preset.
#include "bench_common.hpp"
#include "zipflm/sim/perf_model.hpp"

using namespace zipflm;

int main() {
  bench::print_header(
      "Section V-D: Amazon Review comparison vs Puri et al. [21]",
      "paper: 17.6h on 64 TitanX vs 1.25h on 128 V100; gain ~2.9x",
      "PerfModel on both testbeds + scaled functional BPC run");

  const auto w = LmWorkload::char_lm_amazon();
  const PerfModel titan(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  const PerfModel v100(DeviceProps::v100(), CostModel::v100_nvlink_cluster());

  const auto ours = titan.epoch(w, 64, TechniqueSet::all());
  const auto theirs = v100.epoch(w, 128, TechniqueSet::all());

  TextTable ta({"system", "GPUs", "peak PFLOP/s", "epoch (h)",
                "paper epoch (h)"});
  ta.add_row({"Titan X cluster (this work)", "64",
              bench::fmt(64 * 6.1e12 / 1e15, 2),
              bench::fmt(ours.epoch_hours, 1), "17.6"});
  ta.add_row({"V100 + NVLink (Puri et al.)", "128",
              bench::fmt(128 * 125e12 / 1e15, 1),
              bench::fmt(theirs.epoch_hours, 2), "~1.25"});
  std::printf("%s\n", ta.render().c_str());

  const double time_ratio = ours.epoch_hours / theirs.epoch_hours;
  const double power_ratio = (128 * 125e12) / (64 * 6.1e12);
  std::printf("time ratio: %.1fx slower (paper: 14x)\n", time_ratio);
  std::printf("hardware ratio: %.0fx less peak FLOP/s (paper: 41x)\n",
              power_ratio);
  std::printf("normalized gain: %.1fx (paper: ~2.9x)\n\n",
              power_ratio / time_ratio);

  // Functional BPC shape: a scaled-down char LM on learnable synthetic
  // text with the Amazon corpus's 98-character inventory.
  std::printf("scaled functional BPC (98-char bigram corpus):\n\n");
  const BigramCorpus corpus(98, 12, 77);
  const auto train = corpus.generate(300'000, 0);
  const auto valid = corpus.generate(24'000, 1);

  auto factory = [](int) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = 98;
    cfg.embed_dim = 12;
    cfg.hidden_dim = 24;
    cfg.depth = 2;
    cfg.seed = 13;
    return std::make_unique<CharLm>(cfg);
  };
  CommWorld world(8);
  TrainerOptions opt;
  opt.batch = BatchSpec{4, 30};
  opt.use_adam = true;
  opt.base_lr = 2e-3f;
  opt.clip = 5.0f;
  opt.wire = WirePrecision::FP16;
  opt.charge_static_memory = false;
  DistributedTrainer trainer(world, factory, opt);

  TextTable tb({"epoch", "valid BPC (scaled model)"});
  for (int e = 0; e < 3; ++e) {
    const auto stats = trainer.run_epoch(train, valid, e);
    tb.add_row({std::to_string(e + 1),
                bench::fmt(bpc_from_nats(stats.valid_loss), 3)});
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("paper BPC (full-scale RHN): 1.208 @1 epoch, 1.11 @3 epochs;\n"
              "the scaled model reproduces the monotone BPC decrease, not\n"
              "the absolute value (1/75 of the parameters).\n");
  return 0;
}
