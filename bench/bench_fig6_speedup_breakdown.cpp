// Figure 6: cumulative speedup of uniqueness, seeding, and compression
// over the baseline word LM at 16 and 24 GPUs.
#include "bench_common.hpp"
#include "zipflm/sim/perf_model.hpp"

using namespace zipflm;

int main() {
  bench::print_header("Figure 6: speedup breakdown (word LM, 1B-word)",
                      "paper: 16 GPUs 1.0/4.0/4.3/5.1; 24 GPUs 1.0/5.1/5.4/6.3",
                      "PerfModel with the technique stack applied cumulatively");

  const PerfModel model(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  const auto w = LmWorkload::word_lm_1b();

  TextTable table({"GPUs", "baseline", "+uniqueness", "+seeding",
                   "+compression", "paper (+u/+s/+c)"});
  const struct {
    int gpus;
    const char* paper;
  } rows[] = {{16, "4.0 / 4.3 / 5.1"}, {24, "5.1 / 5.4 / 6.3"}};

  for (const auto& r : rows) {
    const double base =
        model.epoch(w, r.gpus, TechniqueSet::none()).epoch_hours;
    const double uniq =
        model.epoch(w, r.gpus, TechniqueSet::unique_only()).epoch_hours;
    const double seed =
        model.epoch(w, r.gpus, TechniqueSet::unique_seed()).epoch_hours;
    const double all =
        model.epoch(w, r.gpus, TechniqueSet::all()).epoch_hours;
    table.add_row({std::to_string(r.gpus), "1.0",
                   bench::fmt(base / uniq, 1) + "x",
                   bench::fmt(base / seed, 1) + "x",
                   bench::fmt(base / all, 1) + "x", r.paper});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
