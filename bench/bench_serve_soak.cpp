// Sharded serving soak: closed- then open-loop load generator replaying
// Zipf-distributed session popularity against the ShardedServer.
//
// Sessions are drawn rank-wise from a Zipf power law (the same engine
// behind the synthetic corpora), so a handful of head sessions are hot
// — the workload that makes per-shard cache affinity and cold-session
// work stealing earn their keep.  Phase 1 (closed loop) runs N client
// threads back to back; phase 2 (open loop) fires Poisson arrivals at a
// fraction of the measured closed-loop service rate, the arrival
// process that actually exposes p99 cliffs.
//
// Latency percentiles, rejection rate, and batching occupancy all come
// from the serving engine's own counters/histograms (the same ones the
// obs registry mirrors), not from a bench-side stopwatch; per-shard
// queue depth is sampled live from ShardedServer::shard_queue_size.
//
// An SloMonitor (zipflm::obs) rides along, fed ~20Hz snapshots of the
// live metrics registry — the same rolling-window health judgement a
// production collector would run, with its thresholds tied to the
// bench's own gates.  The RESULT line carries its window count, trip
// totals, and end-state summary.
//
// `--check` turns the report into a gate: non-zero exit when p99 blows
// past the knee bound (p99 > max_p99_over_p50 * p50), rejections exceed
// max_reject_rate, or any SLO rule is still tripped when load ends —
// the CI smoke for the serve tier.
//
// Emits one "RESULT {...}" JSON line for harness scraping.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "zipflm/data/zipf.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/slo.hpp"
#include "zipflm/serve/sharded_server.hpp"
#include "zipflm/support/stopwatch.hpp"

#include "bench_common.hpp"

namespace {

using namespace zipflm;

struct Config {
  std::size_t shards = 4;
  std::size_t sessions = 160;
  std::size_t requests = 0;  ///< 0 -> sessions * 6
  std::size_t new_tokens = 8;
  std::size_t clients = 8;
  double zipf_exponent = 1.2;
  double open_seconds = 1.0;
  double open_load = 0.8;  ///< open-loop rate as a fraction of closed rate
  bool check = false;
  double max_p99_over_p50 = 5.0;
  double max_reject_rate = 0.25;
  // Reduced model so the soak measures the serving path, not RHN
  // arithmetic; identical replicas per shard.
  Index hidden = 128;
  Index depth = 2;
};

Config parse(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--shards") cfg.shards = std::strtoull(next(), nullptr, 10);
    else if (arg == "--sessions") cfg.sessions = std::strtoull(next(), nullptr, 10);
    else if (arg == "--requests") cfg.requests = std::strtoull(next(), nullptr, 10);
    else if (arg == "--new-tokens") cfg.new_tokens = std::strtoull(next(), nullptr, 10);
    else if (arg == "--clients") cfg.clients = std::strtoull(next(), nullptr, 10);
    else if (arg == "--zipf") cfg.zipf_exponent = std::strtod(next(), nullptr);
    else if (arg == "--open-seconds") cfg.open_seconds = std::strtod(next(), nullptr);
    else if (arg == "--open-load") cfg.open_load = std::strtod(next(), nullptr);
    else if (arg == "--check") cfg.check = true;
    else if (arg == "--max-p99-over-p50") cfg.max_p99_over_p50 = std::strtod(next(), nullptr);
    else if (arg == "--max-reject-rate") cfg.max_reject_rate = std::strtod(next(), nullptr);
    else if (arg == "--hidden") cfg.hidden = std::atoll(next());
    else if (arg == "--depth") cfg.depth = std::atoll(next());
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (cfg.requests == 0) cfg.requests = cfg.sessions * 6;
  return cfg;
}

constexpr Index kMaxContext = 256;
constexpr std::size_t kPromptLen = 4;

/// Client-side session record.  The busy flag gives each session one
/// request in flight at a time from the load generator's side, keeping
/// the replayed history coherent (the server would serialize duplicates
/// anyway; the bench should not measure its own incoherence).  An
/// atomic flag rather than a mutex because the open-loop dispatcher
/// acquires and the collector thread releases.
struct Session {
  std::atomic<bool> busy{false};
  std::vector<Index> history;
  std::uint64_t next_seed = 0;
  std::uint64_t resets = 0;

  bool acquire() { return !busy.exchange(true, std::memory_order_acquire); }
  void release() { busy.store(false, std::memory_order_release); }
};

std::vector<Index> fresh_prompt(std::uint64_t session_id, Index vocab) {
  std::vector<Index> prompt;
  Rng rng(9000 + session_id);
  for (std::size_t i = 0; i < kPromptLen; ++i) {
    prompt.push_back(static_cast<Index>(
        rng.uniform_index(static_cast<std::uint64_t>(vocab))));
  }
  return prompt;
}

serve::Request make_request(std::uint64_t session_id, Session& s,
                            const Config& cfg, Index vocab) {
  if (s.history.size() + cfg.new_tokens >
      static_cast<std::size_t>(kMaxContext)) {
    // Conversation outgrew the window: restart it (a fresh prompt, so
    // the next admit is a cache miss — conversations do end).
    s.history = fresh_prompt(session_id, vocab);
    s.resets += 1;
  }
  serve::Request req;
  req.session_id = session_id;
  req.context = s.history;
  req.new_tokens = cfg.new_tokens;
  req.options.max_context = kMaxContext;
  req.seed = 17000 + session_id * 1000 + s.next_seed++;
  return req;
}

struct LoadStats {
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> rejections{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> open_skipped{0};  ///< arrival hit a busy session
};

/// Peak admission-queue depth per shard, sampled while load runs.
class QueueDepthProbe {
 public:
  QueueDepthProbe(serve::ShardedServer& server)
      : server_(server), max_depth_(server.shard_count(), 0) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        for (std::size_t k = 0; k < server_.shard_count(); ++k) {
          max_depth_[k] = std::max(max_depth_[k], server_.shard_queue_size(k));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }
  ~QueueDepthProbe() { stop(); }
  void stop() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
    }
  }
  const std::vector<std::size_t>& max_depth() const { return max_depth_; }

 private:
  serve::ShardedServer& server_;
  std::vector<std::size_t> max_depth_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Feeds the SloMonitor registry snapshots at ~20Hz while load runs —
/// exactly what a production health poller would do against the live
/// Stats endpoint, minus the wire.
class SloProbe {
 public:
  explicit SloProbe(obs::SloMonitor& monitor) : monitor_(monitor) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        monitor_.observe(obs::MetricsRegistry::global().snapshot());
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }
  ~SloProbe() { stop(); }
  void stop() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
      // One final window so the end state reflects the full run even
      // when the last 50ms of load fell between samples.
      monitor_.observe(obs::MetricsRegistry::global().snapshot());
    }
  }

 private:
  obs::SloMonitor& monitor_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse(argc, argv);

  bench::print_header(
      "Sharded serving soak, Zipf session popularity",
      "serving engine; paper SII (Zipf) applied to session reuse",
      "closed + open loop over N scheduler shards, work-stealing router");

  CharLmConfig model_cfg;
  model_cfg.embed_dim = 64;
  model_cfg.hidden_dim = cfg.hidden;
  model_cfg.depth = cfg.depth;
  std::vector<std::unique_ptr<CharLm>> replicas;
  std::vector<LmModel*> models;
  for (std::size_t k = 0; k < cfg.shards; ++k) {
    replicas.push_back(std::make_unique<CharLm>(model_cfg));
    models.push_back(replicas.back().get());
  }

  serve::ShardedServeOptions sopts;
  sopts.server.max_batch = 16;
  sopts.server.queue_depth = 64;
  sopts.server.cache_capacity =
      std::max<std::size_t>(16, cfg.sessions / cfg.shards);
  sopts.route_capacity = cfg.sessions * 2;
  serve::ShardedServer server(std::move(models), sopts);
  server.start();

  const ZipfSampler popularity(cfg.sessions, cfg.zipf_exponent);
  std::vector<Session> sessions(cfg.sessions + 1);  // 1-based by rank
  for (std::size_t s = 1; s <= cfg.sessions; ++s) {
    sessions[s].history =
        fresh_prompt(static_cast<std::uint64_t>(s), model_cfg.vocab);
  }

  // SLO health monitor with thresholds tied to the bench gates: the
  // latency knee is the --check bound, the queue bound is the server's
  // own admission depth (a full queue is the rejection regime, not an
  // SLO breach — only exceeding it would be a bug).  trip_after 3 /
  // clear_after 1 keeps one slow 50ms window from flapping CI.
  obs::SloOptions slo_opts;
  slo_opts.scope = sopts.server.metrics_scope;
  slo_opts.thresholds.max_p99_over_p50 = cfg.max_p99_over_p50;
  slo_opts.thresholds.max_reject_rate = cfg.max_reject_rate;
  slo_opts.thresholds.max_queue_depth =
      static_cast<double>(sopts.server.queue_depth);
  slo_opts.trip_after = 3;
  slo_opts.clear_after = 1;
  obs::SloMonitor slo(slo_opts);
  slo.set_alert_hook([](const obs::SloAlert& a) {
    std::fprintf(stderr, "SLO %s: %s %.4f vs %.4f (window %llu)\n",
                 a.tripped ? "TRIP" : "CLEAR", a.rule.c_str(), a.value,
                 a.threshold, static_cast<unsigned long long>(a.window));
  });

  LoadStats stats;
  QueueDepthProbe probe(server);
  SloProbe slo_probe(slo);

  // ---- phase 1: closed loop -----------------------------------------
  std::atomic<std::int64_t> remaining(static_cast<std::int64_t>(cfg.requests));
  Stopwatch closed_watch;
  {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(31 + c);
        while (remaining.fetch_sub(1) > 0) {
          // Zipf-pick a session; if its previous request is still in
          // flight, re-draw (the popularity distribution is what we
          // replay, not a strict per-session schedule).
          std::size_t sid;
          do {
            sid = static_cast<std::size_t>(popularity.sample(rng));
          } while (!sessions[sid].acquire());
          Session& s = sessions[sid];
          while (true) {
            stats.attempts.fetch_add(1);
            const serve::Admission a = server.submit(
                make_request(sid, s, cfg, model_cfg.vocab));
            if (!a.accepted) {
              stats.rejections.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::duration<double>(
                  a.retry_after_seconds));
              continue;
            }
            const serve::Response r = server.wait(a.request_id);
            if (r.status == serve::ResponseStatus::Ok) s.history = r.tokens;
            stats.completed.fetch_add(1);
            break;
          }
          s.release();
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double closed_seconds = closed_watch.seconds();
  const double closed_req_s =
      static_cast<double>(cfg.requests) / closed_seconds;
  const double closed_tok_s = closed_req_s * static_cast<double>(cfg.new_tokens);

  // ---- phase 2: open loop -------------------------------------------
  // Poisson arrivals at a fraction of the measured service rate: the
  // regime where queues stay short if — and only if — there is no
  // latency cliff.
  const double arrival_rate = closed_req_s * cfg.open_load;
  std::uint64_t open_submitted = 0;
  {
    std::mutex collect_mutex;
    std::condition_variable collect_cv;
    std::deque<std::pair<std::uint64_t, std::size_t>> to_collect;
    bool dispatch_done = false;

    std::thread collector([&] {
      std::unique_lock lock(collect_mutex);
      while (true) {
        collect_cv.wait(lock,
                        [&] { return !to_collect.empty() || dispatch_done; });
        if (to_collect.empty() && dispatch_done) return;
        const auto [id, sid] = to_collect.front();
        to_collect.pop_front();
        lock.unlock();
        const serve::Response r = server.wait(id);
        if (r.status == serve::ResponseStatus::Ok) {
          sessions[sid].history = r.tokens;
        }
        sessions[sid].release();  // busy since dispatch
        stats.completed.fetch_add(1);
        lock.lock();
      }
    });

    Rng rng(777);
    Stopwatch open_watch;
    double next_arrival = 0.0;
    while (open_watch.seconds() < cfg.open_seconds) {
      next_arrival += -std::log1p(-rng.uniform()) / arrival_rate;
      while (open_watch.seconds() < next_arrival) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
      const auto sid = static_cast<std::size_t>(popularity.sample(rng));
      if (!sessions[sid].acquire()) {
        // Open loop never waits on a busy session: the arrival is
        // simply lost to sampling (recorded, not retried).
        stats.open_skipped.fetch_add(1);
        continue;
      }
      stats.attempts.fetch_add(1);
      const serve::Admission a = server.submit(
          make_request(sid, sessions[sid], cfg, model_cfg.vocab));
      if (!a.accepted) {
        stats.rejections.fetch_add(1);
        sessions[sid].release();
        continue;
      }
      open_submitted += 1;
      {
        std::lock_guard lock(collect_mutex);
        // Session mutex stays held; the collector releases it.
        to_collect.emplace_back(a.request_id, sid);
      }
      collect_cv.notify_one();
    }
    {
      std::lock_guard lock(collect_mutex);
      dispatch_done = true;
    }
    collect_cv.notify_one();
    collector.join();
  }

  server.wait_idle();
  probe.stop();
  slo_probe.stop();
  const serve::ServeCounters c = server.counters();
  server.stop();

  const double p50 = c.request_latency.percentile(0.50);
  const double p95 = c.request_latency.percentile(0.95);
  const double p99 = c.request_latency.percentile(0.99);
  const double reject_rate =
      stats.attempts.load() == 0
          ? 0.0
          : static_cast<double>(stats.rejections.load()) /
                static_cast<double>(stats.attempts.load());
  const double cache_hit_rate =
      c.cache_hits + c.cache_misses == 0
          ? 0.0
          : static_cast<double>(c.cache_hits) /
                static_cast<double>(c.cache_hits + c.cache_misses);

  std::size_t max_queue_depth = 0;
  std::string shard_depths = "[";
  for (std::size_t k = 0; k < cfg.shards; ++k) {
    max_queue_depth = std::max(max_queue_depth, probe.max_depth()[k]);
    shard_depths += (k ? "," : "") + std::to_string(probe.max_depth()[k]);
  }
  shard_depths += "]";

  std::printf("shards %zu, sessions %zu (zipf s=%.2f), requests %zu + %llu open\n",
              cfg.shards, cfg.sessions, cfg.zipf_exponent, cfg.requests,
              static_cast<unsigned long long>(open_submitted));
  std::printf("closed-loop rate        : %8s req/s (%s tok/s)\n",
              bench::fmt(closed_req_s).c_str(), bench::fmt(closed_tok_s).c_str());
  std::printf("request latency p50     : %8s ms\n", bench::fmt(p50 * 1e3).c_str());
  std::printf("request latency p95     : %8s ms\n", bench::fmt(p95 * 1e3).c_str());
  std::printf("request latency p99     : %8s ms (%sx p50)\n",
              bench::fmt(p99 * 1e3).c_str(),
              bench::fmt(p50 > 0 ? p99 / p50 : 0.0).c_str());
  std::printf("rejection rate          : %8s %% of %llu attempts\n",
              bench::fmt(reject_rate * 100).c_str(),
              static_cast<unsigned long long>(stats.attempts.load()));
  std::printf("cache hit rate          : %8s %%\n",
              bench::fmt(cache_hit_rate * 100).c_str());
  std::printf("mean batch occupancy    : %8s streams/step\n",
              bench::fmt(c.mean_batch_occupancy()).c_str());
  std::printf("max shard queue depth   : %8zu  per shard %s\n",
              max_queue_depth, shard_depths.c_str());
  std::printf("cold-session steals     : %8llu\n",
              static_cast<unsigned long long>(server.steals()));
  std::printf("done-store evictions    : %8llu\n",
              static_cast<unsigned long long>(c.done_evictions));
  const std::string slo_summary = slo.summary();
  std::printf("SLO monitor             : %llu windows, %s\n",
              static_cast<unsigned long long>(slo.windows()),
              slo_summary.c_str());

  std::printf(
      "RESULT {\"bench\":\"serve_soak\",\"shards\":%zu,\"sessions\":%zu,"
      "\"requests\":%llu,\"new_tokens\":%zu,\"zipf_exponent\":%.2f,"
      "\"closed_req_s\":%.2f,\"closed_tok_s\":%.2f,"
      "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"p99_over_p50\":%.2f,\"reject_rate\":%.4f,\"cache_hit_rate\":%.4f,"
      "\"mean_batch_occupancy\":%.2f,\"max_queue_depth\":%zu,"
      "\"shard_max_queue_depth\":%s,\"steals\":%llu,\"done_evictions\":%llu,"
      "\"slo_windows\":%llu,\"slo_tripped\":%s,"
      "\"slo_trips_latency\":%llu,\"slo_trips_reject\":%llu,"
      "\"slo_trips_queue\":%llu,\"slo_summary\":\"%s\"}\n",
      cfg.shards, cfg.sessions,
      static_cast<unsigned long long>(stats.completed.load()), cfg.new_tokens,
      cfg.zipf_exponent, closed_req_s, closed_tok_s, p50 * 1e3, p95 * 1e3,
      p99 * 1e3, p50 > 0 ? p99 / p50 : 0.0, reject_rate, cache_hit_rate,
      c.mean_batch_occupancy(), max_queue_depth, shard_depths.c_str(),
      static_cast<unsigned long long>(server.steals()),
      static_cast<unsigned long long>(c.done_evictions),
      static_cast<unsigned long long>(slo.windows()),
      slo.any_tripped() ? "true" : "false",
      static_cast<unsigned long long>(slo.trips("latency_tail")),
      static_cast<unsigned long long>(slo.trips("reject_rate")),
      static_cast<unsigned long long>(slo.trips("queue_depth")),
      slo_summary.c_str());

  if (cfg.check) {
    bool ok = true;
    if (p50 > 0 && p99 > cfg.max_p99_over_p50 * p50) {
      std::fprintf(stderr, "CHECK FAILED: p99 %.3fms > %.1fx p50 %.3fms\n",
                   p99 * 1e3, cfg.max_p99_over_p50, p50 * 1e3);
      ok = false;
    }
    if (reject_rate > cfg.max_reject_rate) {
      std::fprintf(stderr, "CHECK FAILED: reject rate %.3f > %.3f\n",
                   reject_rate, cfg.max_reject_rate);
      ok = false;
    }
    if (slo.any_tripped()) {
      std::fprintf(stderr, "CHECK FAILED: SLO still tripped at end: %s\n",
                   slo_summary.c_str());
      ok = false;
    }
    if (!ok) return 1;
    std::printf(
        "CHECK OK: p99 within %.1fx p50, rejections within %.1f%%, "
        "SLO clear after %llu windows\n",
        cfg.max_p99_over_p50, cfg.max_reject_rate * 100,
        static_cast<unsigned long long>(slo.windows()));
  }
  return 0;
}
