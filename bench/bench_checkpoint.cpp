// Checkpoint cost: how long does a full-state save / restore take, and
// how large is the file, as the model grows?  The paper's epochs run
// 14-35 hours, so per-epoch checkpointing must be cheap relative to the
// epoch — this bench shows save/restore stay in milliseconds while an
// epoch is hours, i.e. exact resume is effectively free.
//
// Emits one JSON line per model size for tooling, plus a human table.
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "zipflm/core/checkpoint.hpp"
#include "zipflm/stats/table.hpp"
#include "zipflm/support/stopwatch.hpp"

namespace zipflm::bench {
namespace {

struct Scale {
  const char* label;
  Index vocab;
  Index embed;
  Index hidden;
};

void run() {
  print_header("Checkpoint save/restore cost", "crash-safe training",
               "full TrainState round-trips through a 2-rank trainer");

  constexpr Scale kScales[] = {
      {"tiny", 200, 16, 32},
      {"small", 2'000, 32, 64},
      {"medium", 10'000, 64, 128},
  };
  constexpr int kReps = 5;

  TextTable table({"model", "params", "bytes", "save ms", "restore ms"});
  for (const Scale& s : kScales) {
    CommWorld world(2);
    TrainerOptions opt;
    opt.batch = BatchSpec{2, 8};
    opt.use_adam = true;
    opt.base_lr = 5e-3f;
    opt.charge_static_memory = false;
    DistributedTrainer trainer(
        world,
        [&s](int) -> std::unique_ptr<LmModel> {
          CharLmConfig cfg;
          cfg.vocab = s.vocab;
          cfg.embed_dim = s.embed;
          cfg.hidden_dim = s.hidden;
          cfg.depth = 2;
          cfg.seed = 7;
          return std::make_unique<CharLm>(cfg);
        },
        opt);
    // One short epoch so the Adam moments exist and get serialized.
    const auto data = bigram_data(s.vocab, std::min<Index>(16, s.vocab),
                                  1'000, 200, 11);
    trainer.run_epoch(data.train, data.valid, 0);

    std::size_t param_count = 0;
    for (const Param* p : trainer.model(0).all_params()) {
      param_count += p->value.data().size();
    }

    std::string blob;
    double save_s = 0.0;
    for (int r = 0; r < kReps; ++r) {
      std::ostringstream out(std::ios::binary);
      Stopwatch watch;
      trainer.save_state(out);
      save_s += watch.seconds();
      blob = out.str();
    }
    double restore_s = 0.0;
    for (int r = 0; r < kReps; ++r) {
      std::istringstream in(blob, std::ios::binary);
      Stopwatch watch;
      trainer.restore_state(in);
      restore_s += watch.seconds();
    }
    const double save_ms = 1e3 * save_s / kReps;
    const double restore_ms = 1e3 * restore_s / kReps;

    table.add_row({s.label, std::to_string(param_count),
                   format_bytes(blob.size()), fmt(save_ms, 3),
                   fmt(restore_ms, 3)});
    std::printf(
        "RESULT {\"bench\":\"checkpoint\",\"model\":\"%s\","
        "\"params\":%zu,\"bytes\":%zu,\"save_ms\":%.3f,"
        "\"restore_ms\":%.3f}\n",
        s.label, param_count, blob.size(), save_ms, restore_ms);
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace
}  // namespace zipflm::bench

int main() {
  zipflm::bench::run();
  return 0;
}
