// Figure 8: character-LM perplexity vs epochs for three GPU counts.
// Paper: RHN depth 10 x 1792 cells on 1B-word characters, 16/32/64 GPUs,
// perplexity gap between GPU counts shrinking from ~4-5% at epoch 1 to
// ~0-1% later.  Scaled-down RHN on the calibrated character corpus with
// the same 4x GPU spread.
#include <cmath>

#include "bench_common.hpp"

using namespace zipflm;

namespace {
DistributedTrainer::ModelFactory factory(Index vocab) {
  return [vocab](int) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = vocab;       // paper: 98
    cfg.embed_dim = 12;
    cfg.hidden_dim = 24;     // paper: 1792
    cfg.depth = 2;           // paper: 10
    cfg.seed = 3;
    return std::make_unique<CharLm>(cfg);
  };
}
}  // namespace

int main() {
  bench::print_header(
      "Figure 8: char LM validation perplexity vs epoch",
      "paper: 16/32/64 GPUs within 4-5% at epoch 1, ~1% by later epochs",
      "real distributed training, RHN scaled 1/75, GPU counts 4/8/16, "
      "full softmax, uniqueness + compression (no seeding, as in paper)");

  const Index vocab = 98;  // the paper's English character inventory
  const auto data = bench::bigram_data(vocab, 12, 480'000, 24'000, 21);
  const auto& train = data.train;
  const auto& valid = data.valid;
  const int epochs = 4;
  std::printf("corpus: Markov bigram chain, |V|=98, entropy-floor ppl %.0f\n\n",
              data.entropy_floor_ppl);

  TextTable table({"GPUs", "epoch 1 ppl", "epoch 2 ppl", "epoch 3 ppl",
                   "epoch 4 ppl", "bytes on wire/epoch"});
  for (const int gpus : {4, 8, 16}) {
    CommWorld world(gpus);
    TrainerOptions opt;
    opt.batch = BatchSpec{4, 30};  // paper: 128 x 150
    opt.samples_per_rank = 0;      // full softmax
    opt.use_adam = true;           // paper: Adam for char LM
    // Linear large-batch scaling (paper: ln(#nodes) on its 8-GPU base
    // rate; at our reduced scale the steps-per-epoch deficit of large G
    // needs the full linear ramp).
    opt.base_lr = 2e-3f * static_cast<float>(gpus) / 4.0f;
    opt.lr_decay = 0.9f;
    opt.clip = 5.0f;
    opt.wire = WirePrecision::FP16;  // compression on, per Table IV
    opt.charge_static_memory = false;
    DistributedTrainer trainer(world, factory(vocab), opt);

    std::vector<std::string> row{std::to_string(gpus)};
    TrafficLedger ledger;
    for (int e = 0; e < epochs; ++e) {
      const auto stats = trainer.run_epoch(train, valid, e);
      row.push_back(bench::fmt(stats.valid_perplexity, 2));
      ledger = stats.comm_total;
    }
    row.push_back(format_bytes(ledger.bytes_sent));
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: curves for different GPU counts nearly "
              "overlap, gap shrinking with epochs (Fig 8).\n");
  return 0;
}
