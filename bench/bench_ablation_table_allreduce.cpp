// Design-choice ablation: why the paper's UNIQUE exchange rather than
// the "just make it dense" alternative.
//
// Three ways to synchronize a row-sparse embedding gradient:
//   dense-allgather   Θ(G·K·D)   — the SOTA baseline (Section II)
//   table-allreduce   Θ(|V|·D)   — materialize to dense and ALLREDUCE
//                                  (TF's IndexedSlices->dense conversion)
//   unique            Θ(G·K + U_g·D)  — the paper's Section III-A
//
// Crossovers: table-allreduce beats the allgather once G·K > |V|, but
// unique dominates both at every point because U_g <= min(|V|, G·K).
// All three are executed over the thread runtime; the table reports the
// exact wire bytes from the ledger.
#include "bench_common.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"

using namespace zipflm;

namespace {

std::uint64_t run_exchange(EmbeddingExchange& ex, int g, std::size_t k,
                           Index d, Index vocab) {
  CommWorld world(g);
  world.run([&](Communicator& comm) {
    ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.3);
    Rng rng(10 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Index> ids(k);
    for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
    Tensor delta = Tensor::randn({static_cast<Index>(k), d}, rng);
    std::vector<Index> out_ids;
    Tensor out_rows;
    ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
  });
  return world.total_ledger().bytes_sent;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: dense-allgather vs table-allreduce vs unique",
      "why Section III-A's scheme dominates the dense alternatives",
      "all three exchanges executed; ledger wire bytes, G=8, D=64");

  const int g = 8;
  const Index d = 64;

  TextTable table({"|V|", "K/rank", "G*K", "allgather", "table-AR", "unique",
                   "winner"});
  const struct {
    Index vocab;
    std::size_t k;
  } cases[] = {
      {4096, 64},    // G*K = 512  << V : allgather beats table
      {4096, 512},   // G*K = 4096 ~  V : crossover region
      {4096, 4096},  // G*K = 32768 >> V: table beats allgather
      {65536, 512},  // big vocab: table hopeless
  };
  for (const auto& c : cases) {
    DenseExchange dense;
    TableAllreduceExchange tab(c.vocab);
    UniqueExchange uniq;
    const auto b_dense = run_exchange(dense, g, c.k, d, c.vocab);
    const auto b_table = run_exchange(tab, g, c.k, d, c.vocab);
    const auto b_uniq = run_exchange(uniq, g, c.k, d, c.vocab);
    const char* winner = "unique";
    if (b_dense < b_table && b_dense < b_uniq) winner = "allgather";
    if (b_table < b_dense && b_table < b_uniq) winner = "table-AR";
    table.add_row({format_count(static_cast<std::uint64_t>(c.vocab)),
                   format_count(c.k),
                   format_count(static_cast<std::uint64_t>(g) * c.k),
                   format_bytes(b_dense), format_bytes(b_table),
                   format_bytes(b_uniq), winner});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("unique wins everywhere: U_g <= min(|V|, G*K) by definition,\n"
              "so it is bounded by the better of the two dense schemes and\n"
              "strictly better on Zipfian batches (Section III-A).\n");
  return 0;
}
