# Empty compiler generated dependencies file for exchange_walkthrough.
# This may be replaced when dependencies are built.
