file(REMOVE_RECURSE
  "CMakeFiles/exchange_walkthrough.dir/exchange_walkthrough.cpp.o"
  "CMakeFiles/exchange_walkthrough.dir/exchange_walkthrough.cpp.o.d"
  "exchange_walkthrough"
  "exchange_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
