# Empty dependencies file for lm_train_cli.
# This may be replaced when dependencies are built.
