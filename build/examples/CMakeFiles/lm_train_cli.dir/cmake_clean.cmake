file(REMOVE_RECURSE
  "CMakeFiles/lm_train_cli.dir/lm_train_cli.cpp.o"
  "CMakeFiles/lm_train_cli.dir/lm_train_cli.cpp.o.d"
  "lm_train_cli"
  "lm_train_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_train_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
