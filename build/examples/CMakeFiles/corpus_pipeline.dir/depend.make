# Empty dependencies file for corpus_pipeline.
# This may be replaced when dependencies are built.
