file(REMOVE_RECURSE
  "CMakeFiles/corpus_pipeline.dir/corpus_pipeline.cpp.o"
  "CMakeFiles/corpus_pipeline.dir/corpus_pipeline.cpp.o.d"
  "corpus_pipeline"
  "corpus_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
