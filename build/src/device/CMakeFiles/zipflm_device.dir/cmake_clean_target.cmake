file(REMOVE_RECURSE
  "libzipflm_device.a"
)
