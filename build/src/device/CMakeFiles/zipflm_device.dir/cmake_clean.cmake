file(REMOVE_RECURSE
  "CMakeFiles/zipflm_device.dir/device.cpp.o"
  "CMakeFiles/zipflm_device.dir/device.cpp.o.d"
  "libzipflm_device.a"
  "libzipflm_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
