# Empty dependencies file for zipflm_device.
# This may be replaced when dependencies are built.
