file(REMOVE_RECURSE
  "libzipflm_core.a"
)
