file(REMOVE_RECURSE
  "CMakeFiles/zipflm_core.dir/checkpoint.cpp.o"
  "CMakeFiles/zipflm_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/zipflm_core.dir/exchange.cpp.o"
  "CMakeFiles/zipflm_core.dir/exchange.cpp.o.d"
  "CMakeFiles/zipflm_core.dir/grad_sync.cpp.o"
  "CMakeFiles/zipflm_core.dir/grad_sync.cpp.o.d"
  "CMakeFiles/zipflm_core.dir/seeding.cpp.o"
  "CMakeFiles/zipflm_core.dir/seeding.cpp.o.d"
  "CMakeFiles/zipflm_core.dir/trainer.cpp.o"
  "CMakeFiles/zipflm_core.dir/trainer.cpp.o.d"
  "libzipflm_core.a"
  "libzipflm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
