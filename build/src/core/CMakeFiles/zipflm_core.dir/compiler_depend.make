# Empty compiler generated dependencies file for zipflm_core.
# This may be replaced when dependencies are built.
