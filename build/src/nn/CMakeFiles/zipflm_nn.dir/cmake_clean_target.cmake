file(REMOVE_RECURSE
  "libzipflm_nn.a"
)
