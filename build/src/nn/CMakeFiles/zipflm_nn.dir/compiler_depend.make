# Empty compiler generated dependencies file for zipflm_nn.
# This may be replaced when dependencies are built.
