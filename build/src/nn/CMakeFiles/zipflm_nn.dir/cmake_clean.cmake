file(REMOVE_RECURSE
  "CMakeFiles/zipflm_nn.dir/dropout.cpp.o"
  "CMakeFiles/zipflm_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/generate.cpp.o"
  "CMakeFiles/zipflm_nn.dir/generate.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/zipflm_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/lm_model.cpp.o"
  "CMakeFiles/zipflm_nn.dir/lm_model.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/loss_scaler.cpp.o"
  "CMakeFiles/zipflm_nn.dir/loss_scaler.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/lstm.cpp.o"
  "CMakeFiles/zipflm_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/optimizer.cpp.o"
  "CMakeFiles/zipflm_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/rhn.cpp.o"
  "CMakeFiles/zipflm_nn.dir/rhn.cpp.o.d"
  "CMakeFiles/zipflm_nn.dir/softmax_loss.cpp.o"
  "CMakeFiles/zipflm_nn.dir/softmax_loss.cpp.o.d"
  "libzipflm_nn.a"
  "libzipflm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
