
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/generate.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/generate.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/generate.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/gradcheck.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/gradcheck.cpp.o.d"
  "/root/repo/src/nn/lm_model.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/lm_model.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/lm_model.cpp.o.d"
  "/root/repo/src/nn/loss_scaler.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/loss_scaler.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/loss_scaler.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/rhn.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/rhn.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/rhn.cpp.o.d"
  "/root/repo/src/nn/softmax_loss.cpp" "src/nn/CMakeFiles/zipflm_nn.dir/softmax_loss.cpp.o" "gcc" "src/nn/CMakeFiles/zipflm_nn.dir/softmax_loss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/zipflm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zipflm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zipflm_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
