# Empty dependencies file for zipflm_comm.
# This may be replaced when dependencies are built.
