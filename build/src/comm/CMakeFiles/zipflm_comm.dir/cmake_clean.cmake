file(REMOVE_RECURSE
  "CMakeFiles/zipflm_comm.dir/cost_model.cpp.o"
  "CMakeFiles/zipflm_comm.dir/cost_model.cpp.o.d"
  "CMakeFiles/zipflm_comm.dir/hierarchical.cpp.o"
  "CMakeFiles/zipflm_comm.dir/hierarchical.cpp.o.d"
  "CMakeFiles/zipflm_comm.dir/thread_comm.cpp.o"
  "CMakeFiles/zipflm_comm.dir/thread_comm.cpp.o.d"
  "libzipflm_comm.a"
  "libzipflm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
