file(REMOVE_RECURSE
  "libzipflm_comm.a"
)
