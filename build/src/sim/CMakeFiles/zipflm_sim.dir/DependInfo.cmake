
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/zipflm_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/zipflm_sim.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/zipflm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zipflm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/zipflm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zipflm_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
