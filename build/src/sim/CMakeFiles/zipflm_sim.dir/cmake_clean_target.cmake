file(REMOVE_RECURSE
  "libzipflm_sim.a"
)
