# Empty dependencies file for zipflm_sim.
# This may be replaced when dependencies are built.
