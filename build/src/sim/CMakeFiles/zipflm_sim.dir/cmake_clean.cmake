file(REMOVE_RECURSE
  "CMakeFiles/zipflm_sim.dir/perf_model.cpp.o"
  "CMakeFiles/zipflm_sim.dir/perf_model.cpp.o.d"
  "libzipflm_sim.a"
  "libzipflm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
