file(REMOVE_RECURSE
  "CMakeFiles/zipflm_support.dir/error.cpp.o"
  "CMakeFiles/zipflm_support.dir/error.cpp.o.d"
  "CMakeFiles/zipflm_support.dir/format.cpp.o"
  "CMakeFiles/zipflm_support.dir/format.cpp.o.d"
  "CMakeFiles/zipflm_support.dir/rng.cpp.o"
  "CMakeFiles/zipflm_support.dir/rng.cpp.o.d"
  "CMakeFiles/zipflm_support.dir/thread_pool.cpp.o"
  "CMakeFiles/zipflm_support.dir/thread_pool.cpp.o.d"
  "libzipflm_support.a"
  "libzipflm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
