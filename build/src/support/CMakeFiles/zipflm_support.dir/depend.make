# Empty dependencies file for zipflm_support.
# This may be replaced when dependencies are built.
