file(REMOVE_RECURSE
  "libzipflm_support.a"
)
