file(REMOVE_RECURSE
  "CMakeFiles/zipflm_data.dir/batch.cpp.o"
  "CMakeFiles/zipflm_data.dir/batch.cpp.o.d"
  "CMakeFiles/zipflm_data.dir/corpus.cpp.o"
  "CMakeFiles/zipflm_data.dir/corpus.cpp.o.d"
  "CMakeFiles/zipflm_data.dir/markov.cpp.o"
  "CMakeFiles/zipflm_data.dir/markov.cpp.o.d"
  "CMakeFiles/zipflm_data.dir/tokenizer.cpp.o"
  "CMakeFiles/zipflm_data.dir/tokenizer.cpp.o.d"
  "CMakeFiles/zipflm_data.dir/vocab.cpp.o"
  "CMakeFiles/zipflm_data.dir/vocab.cpp.o.d"
  "CMakeFiles/zipflm_data.dir/zipf.cpp.o"
  "CMakeFiles/zipflm_data.dir/zipf.cpp.o.d"
  "libzipflm_data.a"
  "libzipflm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
