file(REMOVE_RECURSE
  "libzipflm_data.a"
)
