# Empty compiler generated dependencies file for zipflm_data.
# This may be replaced when dependencies are built.
