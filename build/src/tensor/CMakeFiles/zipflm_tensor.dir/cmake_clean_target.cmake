file(REMOVE_RECURSE
  "libzipflm_tensor.a"
)
