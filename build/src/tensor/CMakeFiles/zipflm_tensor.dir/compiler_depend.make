# Empty compiler generated dependencies file for zipflm_tensor.
# This may be replaced when dependencies are built.
