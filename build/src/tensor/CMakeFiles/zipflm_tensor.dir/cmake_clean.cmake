file(REMOVE_RECURSE
  "CMakeFiles/zipflm_tensor.dir/cast.cpp.o"
  "CMakeFiles/zipflm_tensor.dir/cast.cpp.o.d"
  "CMakeFiles/zipflm_tensor.dir/half.cpp.o"
  "CMakeFiles/zipflm_tensor.dir/half.cpp.o.d"
  "CMakeFiles/zipflm_tensor.dir/ops.cpp.o"
  "CMakeFiles/zipflm_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/zipflm_tensor.dir/tensor.cpp.o"
  "CMakeFiles/zipflm_tensor.dir/tensor.cpp.o.d"
  "libzipflm_tensor.a"
  "libzipflm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
