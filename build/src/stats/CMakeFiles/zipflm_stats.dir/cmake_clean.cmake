file(REMOVE_RECURSE
  "CMakeFiles/zipflm_stats.dir/metrics.cpp.o"
  "CMakeFiles/zipflm_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/zipflm_stats.dir/powerlaw.cpp.o"
  "CMakeFiles/zipflm_stats.dir/powerlaw.cpp.o.d"
  "CMakeFiles/zipflm_stats.dir/table.cpp.o"
  "CMakeFiles/zipflm_stats.dir/table.cpp.o.d"
  "libzipflm_stats.a"
  "libzipflm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipflm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
