file(REMOVE_RECURSE
  "libzipflm_stats.a"
)
