# Empty dependencies file for zipflm_stats.
# This may be replaced when dependencies are built.
