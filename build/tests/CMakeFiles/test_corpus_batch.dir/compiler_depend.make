# Empty compiler generated dependencies file for test_corpus_batch.
# This may be replaced when dependencies are built.
