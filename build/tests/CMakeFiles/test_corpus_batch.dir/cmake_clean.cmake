file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_batch.dir/test_corpus_batch.cpp.o"
  "CMakeFiles/test_corpus_batch.dir/test_corpus_batch.cpp.o.d"
  "test_corpus_batch"
  "test_corpus_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
