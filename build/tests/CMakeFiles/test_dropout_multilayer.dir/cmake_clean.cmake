file(REMOVE_RECURSE
  "CMakeFiles/test_dropout_multilayer.dir/test_dropout_multilayer.cpp.o"
  "CMakeFiles/test_dropout_multilayer.dir/test_dropout_multilayer.cpp.o.d"
  "test_dropout_multilayer"
  "test_dropout_multilayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dropout_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
