# Empty compiler generated dependencies file for test_dropout_multilayer.
# This may be replaced when dependencies are built.
