# Empty dependencies file for test_loss_scaler.
# This may be replaced when dependencies are built.
