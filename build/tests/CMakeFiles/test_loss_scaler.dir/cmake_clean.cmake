file(REMOVE_RECURSE
  "CMakeFiles/test_loss_scaler.dir/test_loss_scaler.cpp.o"
  "CMakeFiles/test_loss_scaler.dir/test_loss_scaler.cpp.o.d"
  "test_loss_scaler"
  "test_loss_scaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loss_scaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
