file(REMOVE_RECURSE
  "CMakeFiles/test_softmax_loss.dir/test_softmax_loss.cpp.o"
  "CMakeFiles/test_softmax_loss.dir/test_softmax_loss.cpp.o.d"
  "test_softmax_loss"
  "test_softmax_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
