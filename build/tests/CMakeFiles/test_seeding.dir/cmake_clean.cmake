file(REMOVE_RECURSE
  "CMakeFiles/test_seeding.dir/test_seeding.cpp.o"
  "CMakeFiles/test_seeding.dir/test_seeding.cpp.o.d"
  "test_seeding"
  "test_seeding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
