# Empty dependencies file for test_vocab_tokenizer.
# This may be replaced when dependencies are built.
