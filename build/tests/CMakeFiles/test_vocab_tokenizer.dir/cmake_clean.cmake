file(REMOVE_RECURSE
  "CMakeFiles/test_vocab_tokenizer.dir/test_vocab_tokenizer.cpp.o"
  "CMakeFiles/test_vocab_tokenizer.dir/test_vocab_tokenizer.cpp.o.d"
  "test_vocab_tokenizer"
  "test_vocab_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vocab_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
