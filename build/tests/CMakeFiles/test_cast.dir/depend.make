# Empty dependencies file for test_cast.
# This may be replaced when dependencies are built.
