file(REMOVE_RECURSE
  "CMakeFiles/test_cast.dir/test_cast.cpp.o"
  "CMakeFiles/test_cast.dir/test_cast.cpp.o.d"
  "test_cast"
  "test_cast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
