# Empty compiler generated dependencies file for test_rhn.
# This may be replaced when dependencies are built.
