file(REMOVE_RECURSE
  "CMakeFiles/test_rhn.dir/test_rhn.cpp.o"
  "CMakeFiles/test_rhn.dir/test_rhn.cpp.o.d"
  "test_rhn"
  "test_rhn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
