file(REMOVE_RECURSE
  "CMakeFiles/test_lm_model.dir/test_lm_model.cpp.o"
  "CMakeFiles/test_lm_model.dir/test_lm_model.cpp.o.d"
  "test_lm_model"
  "test_lm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
