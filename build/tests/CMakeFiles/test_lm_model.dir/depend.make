# Empty dependencies file for test_lm_model.
# This may be replaced when dependencies are built.
