file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_generate.dir/test_checkpoint_generate.cpp.o"
  "CMakeFiles/test_checkpoint_generate.dir/test_checkpoint_generate.cpp.o.d"
  "test_checkpoint_generate"
  "test_checkpoint_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
