# Empty compiler generated dependencies file for test_checkpoint_generate.
# This may be replaced when dependencies are built.
