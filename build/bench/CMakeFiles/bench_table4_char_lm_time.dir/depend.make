# Empty dependencies file for bench_table4_char_lm_time.
# This may be replaced when dependencies are built.
