# Empty dependencies file for bench_table5_tieba_weak_scaling.
# This may be replaced when dependencies are built.
