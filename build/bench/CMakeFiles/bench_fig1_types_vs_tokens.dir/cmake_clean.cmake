file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_types_vs_tokens.dir/bench_fig1_types_vs_tokens.cpp.o"
  "CMakeFiles/bench_fig1_types_vs_tokens.dir/bench_fig1_types_vs_tokens.cpp.o.d"
  "bench_fig1_types_vs_tokens"
  "bench_fig1_types_vs_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_types_vs_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
