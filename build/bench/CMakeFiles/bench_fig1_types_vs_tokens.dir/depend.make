# Empty dependencies file for bench_fig1_types_vs_tokens.
# This may be replaced when dependencies are built.
