
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_types_vs_tokens.cpp" "bench/CMakeFiles/bench_fig1_types_vs_tokens.dir/bench_fig1_types_vs_tokens.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_types_vs_tokens.dir/bench_fig1_types_vs_tokens.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/zipflm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zipflm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/zipflm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/zipflm_device.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/zipflm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/zipflm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zipflm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/zipflm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zipflm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
