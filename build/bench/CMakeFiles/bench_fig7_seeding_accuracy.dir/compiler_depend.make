# Empty compiler generated dependencies file for bench_fig7_seeding_accuracy.
# This may be replaced when dependencies are built.
