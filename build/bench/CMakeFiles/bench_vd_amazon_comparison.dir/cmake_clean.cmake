file(REMOVE_RECURSE
  "CMakeFiles/bench_vd_amazon_comparison.dir/bench_vd_amazon_comparison.cpp.o"
  "CMakeFiles/bench_vd_amazon_comparison.dir/bench_vd_amazon_comparison.cpp.o.d"
  "bench_vd_amazon_comparison"
  "bench_vd_amazon_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vd_amazon_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
