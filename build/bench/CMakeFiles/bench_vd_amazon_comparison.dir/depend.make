# Empty dependencies file for bench_vd_amazon_comparison.
# This may be replaced when dependencies are built.
