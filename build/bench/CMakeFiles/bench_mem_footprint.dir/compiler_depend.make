# Empty compiler generated dependencies file for bench_mem_footprint.
# This may be replaced when dependencies are built.
