file(REMOVE_RECURSE
  "CMakeFiles/bench_mem_footprint.dir/bench_mem_footprint.cpp.o"
  "CMakeFiles/bench_mem_footprint.dir/bench_mem_footprint.cpp.o.d"
  "bench_mem_footprint"
  "bench_mem_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mem_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
