# Empty compiler generated dependencies file for bench_fig8_char_lm_accuracy.
# This may be replaced when dependencies are built.
