# Empty dependencies file for bench_ablation_table_allreduce.
# This may be replaced when dependencies are built.
