# Empty dependencies file for bench_fig6_speedup_breakdown.
# This may be replaced when dependencies are built.
