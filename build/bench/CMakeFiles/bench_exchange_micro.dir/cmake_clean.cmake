file(REMOVE_RECURSE
  "CMakeFiles/bench_exchange_micro.dir/bench_exchange_micro.cpp.o"
  "CMakeFiles/bench_exchange_micro.dir/bench_exchange_micro.cpp.o.d"
  "bench_exchange_micro"
  "bench_exchange_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exchange_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
