# Empty dependencies file for bench_exchange_micro.
# This may be replaced when dependencies are built.
