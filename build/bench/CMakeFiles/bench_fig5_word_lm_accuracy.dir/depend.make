# Empty dependencies file for bench_fig5_word_lm_accuracy.
# This may be replaced when dependencies are built.
