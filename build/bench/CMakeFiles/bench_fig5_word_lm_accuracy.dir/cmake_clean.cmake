file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_word_lm_accuracy.dir/bench_fig5_word_lm_accuracy.cpp.o"
  "CMakeFiles/bench_fig5_word_lm_accuracy.dir/bench_fig5_word_lm_accuracy.cpp.o.d"
  "bench_fig5_word_lm_accuracy"
  "bench_fig5_word_lm_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_word_lm_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
