// The data pipeline end-to-end on real text: tokenize, build the
// frequency-ranked vocabulary exactly as Section IV-A (top-K after
// lower-casing, <unk> for the tail), verify the coverage claim, and
// watch Zipf's law appear in a type/token curve.
#include <cstdio>
#include <sstream>

#include "zipflm/data/corpus.hpp"
#include "zipflm/data/tokenizer.hpp"
#include "zipflm/data/vocab.hpp"
#include "zipflm/stats/powerlaw.hpp"
#include "zipflm/support/format.hpp"

using namespace zipflm;

int main() {
  // Render a synthetic document: Zipfian word ids spelled as words, so
  // the tokenizer/vocabulary path runs on genuine text.
  const auto spec = CorpusSpec::one_billion_word();
  TokenStream stream(spec, /*seed=*/7);
  std::ostringstream document;
  const std::size_t kWords = 200'000;
  for (std::size_t i = 0; i < kWords; ++i) {
    document << synthetic_word(stream.next());
    document << ((i % 13 == 12) ? ".\n" : " ");
  }
  const std::string text = document.str();
  std::printf("document: %s of text, %s words\n",
              format_bytes(text.size()).c_str(),
              format_count(kWords).c_str());

  // Tokenize (lower-case, punctuation split) and build the vocabulary.
  WordTokenizer tokenizer;
  const auto tokens = tokenizer.tokenize(text);
  std::printf("tokens after tokenization: %s\n",
              format_count(tokens.size()).c_str());

  const std::size_t kVocabSize = 10'000;
  const auto vocab = Vocabulary::build_from_tokens(tokens, kVocabSize);
  std::printf("vocabulary: top %s types (+<unk>)\n",
              format_count(vocab.size()).c_str());
  std::printf("coverage of the corpus: %.2f%% (paper: ~99%% with top-100k)\n",
              100.0 * vocab.coverage(tokens));

  // Encode and measure the type/token curve of the id stream.
  std::vector<std::int64_t> ids;
  vocab.encode(tokens, ids);

  std::vector<double> xs, ys;
  std::unordered_map<std::int64_t, bool> seen;
  std::size_t next_cp = 512;
  for (std::size_t n = 1; n <= ids.size(); ++n) {
    seen.emplace(ids[n - 1], true);
    if (n == next_cp) {
      xs.push_back(static_cast<double>(n));
      ys.push_back(static_cast<double>(seen.size()));
      next_cp *= 2;
    }
  }
  const auto fit = fit_power_law(xs, ys);
  std::printf("\ntype/token power law on this document:\n");
  std::printf("  U = %.2f * N^%.3f   (R^2 = %.4f)\n", fit.coefficient,
              fit.exponent, fit.r_squared);
  std::printf("  paper's Figure 1 fit: U = 7.02 * N^0.64 (R^2 = 1.00)\n");

  // Zipf head check: most frequent word's share.
  std::unordered_map<std::int64_t, std::size_t> counts;
  for (const auto id : ids) ++counts[id];
  std::size_t top = 0, second = 0;
  for (const auto& [id, c] : counts) {
    if (c > top) {
      second = top;
      top = c;
    } else if (c > second) {
      second = c;
    }
  }
  std::printf("\nZipf head: most frequent / second = %.2f\n",
              static_cast<double>(top) / static_cast<double>(second));
  return 0;
}
