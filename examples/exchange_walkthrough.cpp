// A step-by-step walkthrough of the paper's Figure 4 on its own toy
// example: GPU1 holds tokens with word indices {5,3,9}, GPU2 holds
// {4,3,8}.  Shows the locally-unique reduction, the index ALLGATHER, the
// globally consistent index set, the scatter, and the final ALLREDUCE —
// then verifies the result equals the dense ALLGATHER baseline.
#include <cstdio>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"

using namespace zipflm;

namespace {

void print_rows(const char* label, std::span<const Index> ids,
                const Tensor& rows) {
  std::printf("%s\n", label);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::printf("  word %2lld : [", static_cast<long long>(ids[i]));
    const auto r = rows.row(static_cast<Index>(i));
    for (std::size_t j = 0; j < r.size(); ++j) {
      std::printf("%s%5.1f", j ? ", " : "", r[j]);
    }
    std::printf("]\n");
  }
}

}  // namespace

int main() {
  // Figure 4's setup, embedding dimension 2 for readability.
  const std::vector<std::vector<Index>> ids = {{5, 3, 9}, {4, 3, 8}};
  // Per-token gradients: GPU g, token t has gradient (10g + t) in both
  // dimensions, so every contribution is traceable in the output.
  std::vector<Tensor> deltas;
  for (int g = 0; g < 2; ++g) {
    Tensor d({3, 2});
    for (Index t = 0; t < 3; ++t) {
      d(t, 0) = static_cast<float>(10 * (g + 1) + t);
      d(t, 1) = static_cast<float>(10 * (g + 1) + t);
    }
    deltas.push_back(std::move(d));
  }

  std::printf("=== Figure 4 walkthrough: UNIQUE exchange on 2 GPUs ===\n\n");
  for (int g = 0; g < 2; ++g) {
    std::printf("GPU%d word indices: {%lld, %lld, %lld}\n", g + 1,
                static_cast<long long>(ids[g][0]),
                static_cast<long long>(ids[g][1]),
                static_cast<long long>(ids[g][2]));
  }

  // Steps 1-2 (local, shown for each GPU): locally unique indices and
  // locally reduced gradients.
  for (int g = 0; g < 2; ++g) {
    std::vector<Index> uids;
    Tensor reduced;
    local_reduce_by_word(ids[static_cast<std::size_t>(g)],
                         deltas[static_cast<std::size_t>(g)], uids, reduced);
    std::printf("\nGPU%d steps 1-2 (local reduce):\n", g + 1);
    print_rows("  locally reduced gradients:", uids, reduced);
  }

  // Steps 3-7 via the real communicator, side by side with the dense
  // baseline.
  std::vector<Index> unique_ids, dense_ids;
  Tensor unique_rows, dense_rows;
  for (const bool unique : {true, false}) {
    CommWorld world(2);
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      std::vector<Index> out_ids;
      Tensor out_rows;
      if (unique) {
        UniqueExchange ex;
        ex.exchange(comm, ids[r], deltas[r], out_ids, out_rows, nullptr);
      } else {
        DenseExchange ex;
        ex.exchange(comm, ids[r], deltas[r], out_ids, out_rows, nullptr);
      }
      if (comm.rank() == 0) {
        if (unique) {
          unique_ids = out_ids;
          unique_rows = out_rows;
        } else {
          dense_ids = out_ids;
          dense_rows = out_rows;
        }
      }
    });
    const auto total = world.total_ledger();
    std::printf("\n%s exchange: %llu wire bytes\n",
                unique ? "UNIQUE" : "DENSE (baseline)",
                static_cast<unsigned long long>(total.bytes_sent));
  }

  std::printf("\nsteps 3-7 result (globally unique indices, summed rows):\n");
  print_rows("", unique_ids, unique_rows);

  const bool match =
      unique_ids == dense_ids && unique_rows == dense_rows;
  std::printf("\nmatches the dense ALLGATHER baseline: %s\n",
              match ? "yes" : "NO (bug!)");
  std::printf("note word 3 (present on both GPUs): its row is the sum of "
              "GPU1's 11 and GPU2's 21 = 32.\n");
  return match ? 0 : 1;
}
