// Quickstart: train a word language model data-parallel across four
// simulated GPUs with all three of the paper's optimizations, and watch
// the validation perplexity fall while the traffic ledger records what
// the UNIQUE exchange saved.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "zipflm/core/trainer.hpp"
#include "zipflm/data/markov.hpp"
#include "zipflm/support/format.hpp"

using namespace zipflm;

int main() {
  // 1. A corpus.  BigramCorpus produces deterministic synthetic text
  //    with Zipfian word frequencies and learnable structure.
  const Index vocab = 1000;
  const BigramCorpus corpus(vocab, /*branching=*/16, /*seed=*/2026);
  const auto train_ids = corpus.generate(120'000, /*stream=*/0);
  const auto valid_ids = corpus.generate(12'000, /*stream=*/1);

  // 2. A world of simulated GPUs.  Collectives run as real ring
  //    algorithms over threads; the cost model prices them as the
  //    paper's Titan X cluster.
  CommWorld world(/*world_size=*/4);

  // 3. A model replica per rank (the factory must be rank-blind so all
  //    replicas start identical).
  auto factory = [vocab](int) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 16;
    cfg.hidden_dim = 32;
    cfg.proj_dim = 16;
    cfg.seed = 1;
    return std::make_unique<WordLm>(cfg);
  };

  // 4. Training options: the paper's three techniques.
  TrainerOptions opt;
  opt.unique_exchange = true;               // Section III-A
  opt.seed_policy = SeedPolicy::ZipfFreq;   // Section III-B
  opt.wire = WirePrecision::FP16;           // Section III-C
  opt.samples_per_rank = 64;                // sampled softmax
  opt.batch = BatchSpec{4, 20};
  opt.base_lr = 0.2f;
  opt.clip = 5.0f;
  opt.charge_static_memory = false;

  DistributedTrainer trainer(world, factory, opt);

  std::printf("epoch | train loss | valid ppl | wire bytes | sim time\n");
  std::printf("------+------------+-----------+------------+---------\n");
  for (int epoch = 0; epoch < 4; ++epoch) {
    const EpochStats stats = trainer.run_epoch(train_ids, valid_ids, epoch);
    std::printf("%5d | %10.3f | %9.1f | %10s | %s\n", epoch + 1,
                stats.train_loss, stats.valid_perplexity,
                format_bytes(stats.comm_total.bytes_sent).c_str(),
                format_duration(stats.sim_total_seconds).c_str());
  }

  std::printf("\nreplicas still bit-identical: %s\n",
              trainer.replicas_in_sync() ? "yes" : "NO (bug!)");
  return 0;
}
