// Serving walkthrough: stand a Server up in front of a character LM,
// run concurrent sessions through the batching scheduler, resume one
// session from the warm cache, and show admission-queue backpressure.
// Exits non-zero if any of the demonstrated guarantees fails, so this
// doubles as an end-to-end smoke test under ctest.
//
//   serve_demo [--trace OUT.json] [--metrics]
//
// --trace captures the scheduler's batch steps and admissions as a
// Chrome trace (load at https://ui.perfetto.dev); --metrics prints the
// unified registry snapshot at exit.
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "zipflm/net/socket.hpp"
#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/serve/serve_client.hpp"
#include "zipflm/serve/server.hpp"
#include "zipflm/serve/sharded_server.hpp"
#include "zipflm/serve/socket_frontend.hpp"

using namespace zipflm;

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  bool print_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else {
      std::fprintf(stderr, "usage: %s [--trace OUT.json] [--metrics]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trace_path != nullptr) obs::trace_enable(true);
  CharLmConfig cfg;
  cfg.vocab = 60;
  cfg.embed_dim = 12;
  cfg.hidden_dim = 24;
  cfg.depth = 2;
  cfg.seed = 8;
  CharLm model(cfg);  // untrained: the demo is about serving, not text

  serve::ServeOptions opts;
  opts.max_batch = 4;
  opts.queue_depth = 8;
  opts.cache_capacity = 8;
  opts.batch_deadline_seconds = 200e-6;
  serve::Server server(model, opts);
  server.start();

  std::printf("serving with max_batch=%d queue_depth=%zu cache_capacity=%zu "
              "deadline=%.0fus\n\n",
              static_cast<int>(opts.max_batch), opts.queue_depth,
              opts.cache_capacity, opts.batch_deadline_seconds * 1e6);

  // Six concurrent sessions; with max_batch 4 the scheduler batches the
  // first four and streams the rest in as slots free up.
  GenerateOptions gen;
  gen.max_context = 64;
  std::vector<std::uint64_t> ids;
  for (std::size_t s = 0; s < 6; ++s) {
    serve::Request req;
    req.session_id = s + 1;
    req.context = {static_cast<Index>(1 + s), 2, 3};
    req.new_tokens = 10;
    req.options = gen;
    req.seed = 40 + s;
    const serve::Admission adm = server.submit(std::move(req));
    if (!adm.accepted) return 1;
    ids.push_back(adm.request_id);
  }
  std::vector<Index> session1_history;
  for (std::size_t s = 0; s < 6; ++s) {
    const serve::Response r = server.wait(ids[s]);
    if (s == 0) session1_history = r.tokens;
    std::printf("session %llu: %2zu tokens, cache %s, %.2f ms total\n",
                static_cast<unsigned long long>(r.session_id),
                r.tokens.size(), r.cache_hit ? "hit " : "miss",
                r.total_seconds * 1e3);
  }

  // Resume session 1 from its full history: the cache skips the replay.
  serve::Request resume;
  resume.session_id = 1;
  resume.context = session1_history;
  resume.new_tokens = 10;
  resume.options = gen;
  resume.seed = 77;
  const serve::Response cont = server.wait(server.submit(resume).request_id);
  std::printf("\nsession 1 resumed: cache %s, %zu -> %zu tokens\n",
              cont.cache_hit ? "hit" : "miss", session1_history.size(),
              cont.tokens.size());
  if (!cont.cache_hit) return 1;
  server.stop();

  // Backpressure: an unstarted server cannot drain, so a queue bounded
  // at 2 rejects the third submission with a retry hint.
  serve::ServeOptions tiny = opts;
  tiny.queue_depth = 2;
  serve::Server backlogged(model, tiny);
  serve::Request req;
  req.session_id = 9;
  req.context = {1, 2};
  req.new_tokens = 4;
  req.options = gen;
  if (!backlogged.submit(req).accepted) return 1;
  if (!backlogged.submit(req).accepted) return 1;
  const serve::Admission rejected = backlogged.submit(req);
  if (rejected.accepted) return 1;
  std::printf("\nqueue full: rejected with retry-after hint %.0f us\n",
              rejected.retry_after_seconds * 1e6);

  // Sharded serving over real sockets: two scheduler shards (one model
  // replica each) behind a frontend at rank 0 of a socketpair world; a
  // wire client at rank 1 replays session 1's original request.  The
  // replicas share the single server's weights (same config seed), so
  // the tokens that come back over the socket must be byte-identical to
  // the in-process run above.
  {
    CharLm replica_a(cfg);
    CharLm replica_b(cfg);
    serve::ShardedServeOptions shopts;
    shopts.server = opts;
    serve::ShardedServer sharded({&replica_a, &replica_b}, shopts);
    sharded.start();

    auto world = net::socketpair_mesh(2);
    serve::SocketFrontend frontend(*world[0], sharded);
    std::thread frontend_thread([&] { frontend.run(); });

    serve::ServeClient client(*world[1], /*server_rank=*/0);
    serve::Request wire_req;
    wire_req.session_id = 1;
    wire_req.context = {1, 2, 3};
    wire_req.new_tokens = 10;
    wire_req.options = gen;
    wire_req.seed = 40;
    const serve::Admission wire_adm = client.submit(wire_req);
    if (!wire_adm.accepted) return 1;
    const serve::Response wire_resp = client.wait(wire_adm.request_id);
    client.bye();
    frontend_thread.join();
    sharded.stop();

    std::printf("\nsharded over socket: shard %zu of %zu served session 1, "
                "%zu tokens, parity %s\n",
                sharded.shard_of(1), sharded.shard_count(),
                wire_resp.tokens.size(),
                wire_resp.tokens == session1_history ? "ok" : "BROKEN");
    if (wire_resp.tokens != session1_history) return 1;
  }

  const serve::ServeCounters c = server.counters();
  std::printf("\ncounters: %llu steps, %.2f streams/step, %llu generated, "
              "%llu primed, hits/misses %llu/%llu, p95 token %.2f ms\n",
              static_cast<unsigned long long>(c.batch_steps),
              c.mean_batch_occupancy(),
              static_cast<unsigned long long>(c.tokens_generated),
              static_cast<unsigned long long>(c.context_tokens_primed),
              static_cast<unsigned long long>(c.cache_hits),
              static_cast<unsigned long long>(c.cache_misses),
              c.token_latency.percentile(0.95) * 1e3);
  if (print_metrics) {
    std::printf("\nMETRICS %s\n",
                obs::MetricsRegistry::global().to_json().c_str());
  }
  if (trace_path != nullptr) {
    // The scheduler thread was joined by server.stop(), so its trace
    // writes happen-before this export.
    const auto stats = obs::write_chrome_trace_file(trace_path);
    std::printf("\ntrace: %llu events on %llu lanes -> %s\n",
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(stats.lanes), trace_path);
  }
  return 0;
}
