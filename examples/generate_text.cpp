// Train a character LM on a Markov bigram corpus, checkpoint it, reload
// it into a fresh model, and generate text — then *measure* that the
// generation actually learned the corpus: the fraction of generated
// bigrams that are legal corpus transitions should be near 1 for a
// trained model and near chance for an untrained one.
#include <cstdio>

#include "zipflm/core/checkpoint.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/corpus.hpp"
#include "zipflm/data/markov.hpp"
#include "zipflm/nn/generate.hpp"

using namespace zipflm;

namespace {

double legal_bigram_fraction(const BigramCorpus& corpus,
                             std::span<const Index> tokens) {
  if (tokens.size() < 2) return 0.0;
  std::size_t legal = 0;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto& menu = corpus.successors(tokens[i - 1]);
    if (std::find(menu.begin(), menu.end(), tokens[i]) != menu.end()) {
      ++legal;
    }
  }
  return static_cast<double>(legal) / static_cast<double>(tokens.size() - 1);
}

std::unique_ptr<LmModel> make_model(int /*rank*/) {
  CharLmConfig cfg;
  cfg.vocab = 60;
  cfg.embed_dim = 12;
  cfg.hidden_dim = 24;
  cfg.depth = 2;
  cfg.seed = 8;
  return std::make_unique<CharLm>(cfg);
}

}  // namespace

int main() {
  const Index vocab = 60;
  const BigramCorpus corpus(vocab, 8, 31);
  const auto train_ids = corpus.generate(150'000, 0);
  const auto valid_ids = corpus.generate(10'000, 1);

  // Baseline: what untrained generation looks like.
  Rng rng(99);
  GenerateOptions gen;
  gen.temperature = 0.8;
  {
    auto untrained = make_model(0);
    const auto tokens = generate_tokens(
        *untrained, std::vector<Index>{0}, 300, gen, rng);
    std::printf("untrained model: %.0f%% of generated bigrams are legal "
                "(chance ~ %.0f%%)\n",
                100.0 * legal_bigram_fraction(corpus, tokens),
                100.0 * 8.0 / 60.0);
  }

  // Train distributed (2 simulated GPUs, all techniques).
  CommWorld world(2);
  TrainerOptions opt;
  opt.batch = BatchSpec{4, 25};
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  opt.clip = 5.0f;
  opt.wire = WirePrecision::FP16;
  opt.charge_static_memory = false;
  DistributedTrainer trainer(world, make_model, opt);
  for (int e = 0; e < 4; ++e) {
    const auto stats = trainer.run_epoch(train_ids, valid_ids, e);
    std::printf("epoch %d: valid perplexity %.2f\n", e + 1,
                stats.valid_perplexity);
  }

  // Checkpoint rank 0's replica and reload into a fresh model.
  const std::string path = "/tmp/zipflm_demo.ckpt";
  save_checkpoint_file(path, trainer.model(0), {.global_step = 1, .epoch = 4});
  auto restored = make_model(0);
  const auto meta = load_checkpoint_file(path, *restored);
  std::printf("\ncheckpoint round-trip: restored at epoch %llu\n",
              static_cast<unsigned long long>(meta.epoch));

  // Generate from the restored model.
  const auto tokens = generate_tokens(
      *restored, std::vector<Index>{train_ids[0]}, 300, gen, rng);
  std::printf("trained model:   %.0f%% of generated bigrams are legal\n",
              100.0 * legal_bigram_fraction(corpus, tokens));
  std::printf("\nsample (token ids rendered as synthetic words):\n  ");
  for (std::size_t i = 0; i < 20 && i < tokens.size(); ++i) {
    std::printf("%s ", synthetic_word(tokens[i]).c_str());
  }
  std::printf("...\n");
  return 0;
}
