// Scaling study: predict how *your* model would scale on the paper's
// cluster before buying the GPU hours.  Defines a custom LM workload,
// sweeps GPU counts and technique combinations through the calibrated
// performance model, and prints epoch time, parallel efficiency, memory,
// and the OOM frontier.
//
// Usage: scaling_study [max_gpus]
#include <cstdio>
#include <cstdlib>

#include "zipflm/sim/perf_model.hpp"
#include "zipflm/stats/metrics.hpp"
#include "zipflm/stats/table.hpp"
#include "zipflm/support/format.hpp"

using namespace zipflm;

int main(int argc, char** argv) {
  int max_gpus = 256;
  if (argc > 1) max_gpus = std::atoi(argv[1]);

  // A custom workload: a mid-sized word LM on a 2B-token corpus.
  LmWorkload w = LmWorkload::word_lm_1b();
  w.name = "my-word-lm";
  w.tokens_per_epoch = 2'000'000'000ull;
  w.embed_dim = 1024;
  w.samples_per_rank = 2048;
  w.vocab = 250'000;

  const PerfModel model(DeviceProps::titan_x(), CostModel::titan_x_cluster());

  std::printf("workload: %s — %s tokens/epoch, D=%lld, V=%lld, S=%lld\n\n",
              w.name.c_str(), format_count(w.tokens_per_epoch).c_str(),
              static_cast<long long>(w.embed_dim),
              static_cast<long long>(w.vocab),
              static_cast<long long>(w.samples_per_rank));

  TextTable table({"GPUs", "baseline (h)", "unique+seed+fp16 (h)",
                   "efficiency", "baseline mem", "optimized mem"});
  double t8 = 0.0;
  for (int g = 8; g <= max_gpus; g *= 2) {
    const auto base = model.epoch(w, g, TechniqueSet::none());
    const auto ours = model.epoch(w, g, TechniqueSet::all());
    if (g == 8) t8 = ours.epoch_hours;
    table.add_row(
        {std::to_string(g),
         base.oom ? "OOM" : format_fixed(base.epoch_hours, 1),
         format_fixed(ours.epoch_hours, 1),
         format_fixed(100.0 * parallel_efficiency(8, t8, g, ours.epoch_hours),
                      0) +
             "%",
         format_bytes(base.peak_memory_bytes),
         format_bytes(ours.peak_memory_bytes)});
  }
  std::printf("%s\n", table.render().c_str());

  // Where does the baseline hit the 12 GB wall?
  for (int g = 8; g <= max_gpus; ++g) {
    if (model.epoch(w, g, TechniqueSet::none()).oom) {
      std::printf("baseline OOM frontier: %d GPUs\n", g);
      break;
    }
  }
  std::printf("optimized path at %d GPUs: %s of device memory\n", max_gpus,
              format_bytes(model.epoch(w, max_gpus, TechniqueSet::all())
                               .peak_memory_bytes)
                  .c_str());
  return 0;
}
