// A small command-line trainer: the whole public API behind flags.
//
//   lm_train_cli [--model word|char] [--gpus N] [--epochs N]
//                [--vocab N] [--tokens N] [--batch N] [--seqlen N]
//                [--no-unique] [--fp16] [--hierarchical]
//                [--seed-policy g|zipf|log2|loge|log10|shared]
//                [--lr X] [--checkpoint PATH] [--resume] [--seed N]
//                [--trace OUT.json] [--metrics-every N]
//
// With --checkpoint, the full training state (weights, optimizer
// moments, RNG streams) is written atomically after every epoch;
// --resume restores it and continues from the next epoch, bitwise
// identical to a run that was never interrupted.
//
// --trace writes a Chrome trace-event JSON of the whole run (load it at
// https://ui.perfetto.dev — one lane per simulated rank).
// --metrics-every prints a METRICS line (the unified registry snapshot)
// every N optimizer steps, and a final one at exit.
//
// Example:
//   lm_train_cli --model char --gpus 4 --epochs 3 --fp16
//   lm_train_cli --model char --gpus 4 --epochs 3 --fp16
//                --checkpoint /tmp/char.ckpt --resume
//   lm_train_cli --gpus 4 --trace /tmp/train.json --metrics-every 50
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "zipflm/core/checkpoint.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/markov.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/support/format.hpp"

using namespace zipflm;

namespace {

struct CliArgs {
  std::string model = "word";
  int gpus = 4;
  int epochs = 3;
  Index vocab = 1000;
  std::size_t tokens = 120'000;
  Index batch = 4;
  Index seqlen = 20;
  bool unique = true;
  bool fp16 = false;
  bool hierarchical = false;
  SeedPolicy policy = SeedPolicy::ZipfFreq;
  float lr = 0.0f;  // 0 = model default
  std::string checkpoint;
  bool resume = false;
  std::uint64_t seed = 2026;
  std::string trace;
  int metrics_every = 0;

  static void usage(const char* prog) {
    std::fprintf(stderr,
                 "usage: %s [--model word|char] [--gpus N] [--epochs N]\n"
                 "          [--vocab N] [--tokens N] [--batch N]\n"
                 "          [--seqlen N] [--no-unique] [--fp16]\n"
                 "          [--hierarchical] [--seed-policy NAME]\n"
                 "          [--lr X] [--checkpoint PATH] [--resume]\n"
                 "          [--seed N] [--trace OUT.json]\n"
                 "          [--metrics-every N]\n",
                 prog);
  }

  static CliArgs parse(int argc, char** argv) {
    CliArgs a;
    auto need_value = [&](int& i) -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--model") {
        a.model = need_value(i);
      } else if (flag == "--gpus") {
        a.gpus = std::atoi(need_value(i));
      } else if (flag == "--epochs") {
        a.epochs = std::atoi(need_value(i));
      } else if (flag == "--vocab") {
        a.vocab = std::atoll(need_value(i));
      } else if (flag == "--tokens") {
        a.tokens = static_cast<std::size_t>(std::atoll(need_value(i)));
      } else if (flag == "--batch") {
        a.batch = std::atoll(need_value(i));
      } else if (flag == "--seqlen") {
        a.seqlen = std::atoll(need_value(i));
      } else if (flag == "--no-unique") {
        a.unique = false;
      } else if (flag == "--fp16") {
        a.fp16 = true;
      } else if (flag == "--hierarchical") {
        a.hierarchical = true;
      } else if (flag == "--lr") {
        a.lr = static_cast<float>(std::atof(need_value(i)));
      } else if (flag == "--checkpoint") {
        a.checkpoint = need_value(i);
      } else if (flag == "--resume") {
        a.resume = true;
      } else if (flag == "--seed") {
        a.seed = std::strtoull(need_value(i), nullptr, 10);
      } else if (flag == "--trace") {
        a.trace = need_value(i);
      } else if (flag == "--metrics-every") {
        a.metrics_every = std::atoi(need_value(i));
      } else if (flag == "--seed-policy") {
        const std::string p = need_value(i);
        if (p == "g") a.policy = SeedPolicy::PerRank;
        else if (p == "zipf") a.policy = SeedPolicy::ZipfFreq;
        else if (p == "log2") a.policy = SeedPolicy::Log2G;
        else if (p == "loge") a.policy = SeedPolicy::LogEG;
        else if (p == "log10") a.policy = SeedPolicy::Log10G;
        else if (p == "shared") a.policy = SeedPolicy::SharedAll;
        else {
          std::fprintf(stderr, "unknown seed policy: %s\n", p.c_str());
          std::exit(2);
        }
      } else {
        usage(argv[0]);
        std::exit(flag == "--help" ? 0 : 2);
      }
    }
    return a;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const bool word = args.model == "word";
  if (!word && args.model != "char") {
    std::fprintf(stderr, "--model must be 'word' or 'char'\n");
    return 2;
  }

  const BigramCorpus corpus(args.vocab, std::min<Index>(16, args.vocab),
                            args.seed);
  const auto train = corpus.generate(args.tokens, 0);
  const auto valid = corpus.generate(std::max<std::size_t>(args.tokens / 10,
                                                           2000),
                                     1);

  CommWorld world(args.gpus);
  TrainerOptions opt;
  opt.unique_exchange = args.unique;
  opt.wire = args.fp16 ? WirePrecision::FP16 : WirePrecision::FP32;
  opt.hierarchical_dense_sync = args.hierarchical;
  opt.batch = BatchSpec{args.batch, args.seqlen};
  opt.charge_static_memory = false;
  opt.clip = 5.0f;
  if (!args.trace.empty()) obs::trace_enable(true);
  if (args.metrics_every > 0) {
    opt.metrics_every = args.metrics_every;
    opt.metrics_sink = [](std::uint64_t step) {
      std::printf("METRICS step=%llu %s\n",
                  static_cast<unsigned long long>(step),
                  obs::MetricsRegistry::global().to_json().c_str());
    };
  }
  if (word) {
    opt.samples_per_rank = std::min<Index>(64, args.vocab);
    opt.seed_policy = args.policy;
    opt.base_lr = args.lr > 0 ? args.lr : 0.2f;
  } else {
    opt.use_adam = true;
    opt.base_lr = args.lr > 0 ? args.lr : 5e-3f;
  }

  const std::uint64_t seed = args.seed;
  const Index vocab = args.vocab;
  DistributedTrainer trainer(
      world,
      [word, vocab, seed](int) -> std::unique_ptr<LmModel> {
        if (word) {
          WordLmConfig cfg;
          cfg.vocab = vocab;
          cfg.embed_dim = 16;
          cfg.hidden_dim = 32;
          cfg.proj_dim = 16;
          cfg.seed = seed;
          return std::make_unique<WordLm>(cfg);
        }
        CharLmConfig cfg;
        cfg.vocab = vocab;
        cfg.embed_dim = 12;
        cfg.hidden_dim = 24;
        cfg.depth = 2;
        cfg.seed = seed;
        return std::make_unique<CharLm>(cfg);
      },
      opt);

  std::printf("%s LM | %d simulated GPUs | %s exchange | %s wire%s\n\n",
              args.model.c_str(), args.gpus,
              args.unique ? "UNIQUE" : "dense-allgather",
              args.fp16 ? "FP16" : "FP32",
              args.hierarchical ? " | hierarchical dense sync" : "");
  int start_epoch = 0;
  if (args.resume) {
    if (args.checkpoint.empty()) {
      std::fprintf(stderr, "--resume requires --checkpoint PATH\n");
      return 2;
    }
    trainer.restore_state_file(args.checkpoint);
    start_epoch = static_cast<int>(trainer.epochs_completed());
    std::printf("resumed from %s: %d epoch(s), %llu steps done\n",
                args.checkpoint.c_str(), start_epoch,
                static_cast<unsigned long long>(trainer.global_step()));
  }

  std::printf("epoch | train loss | valid ppl | wire/epoch | sim time\n");
  for (int e = start_epoch; e < args.epochs; ++e) {
    const auto stats = trainer.run_epoch(train, valid, e);
    std::printf("%5d | %10.6f | %9.2f | %10s | %s\n", e + 1,
                stats.train_loss, stats.valid_perplexity,
                format_bytes(stats.comm_total.bytes_sent).c_str(),
                format_duration(stats.sim_total_seconds).c_str());
    if (!args.checkpoint.empty()) {
      // Full training state, written atomically after every epoch —
      // kill the process at any point and --resume continues exactly.
      trainer.save_state_file(args.checkpoint);
    }
  }
  if (!args.checkpoint.empty()) {
    std::printf("\ncheckpoint written to %s\n", args.checkpoint.c_str());
  }
  if (args.metrics_every > 0) {
    std::printf("METRICS final %s\n",
                obs::MetricsRegistry::global().to_json().c_str());
  }
  if (!args.trace.empty()) {
    // Safe to export here: every rank thread has been joined by
    // CommWorld::run, so all trace writes happen-before this read.
    const auto stats = obs::write_chrome_trace_file(args.trace);
    std::printf("trace: %llu events on %llu lanes -> %s%s\n",
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(stats.lanes),
                args.trace.c_str(),
                stats.dropped > 0 ? " (ring overflow; oldest dropped)" : "");
  }
  return 0;
}
