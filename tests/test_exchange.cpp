// The paper's central correctness claim: UniqueExchange computes the same
// embedding update as the dense ALLGATHER baseline at a fraction of the
// memory and wire bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/data/zipf.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {
namespace {

/// Zipf-distributed token ids (the realistic case: lots of repeats).
std::vector<Index> zipf_ids(std::size_t k, Index vocab, std::uint64_t seed,
                            double exponent = 1.2) {
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), exponent);
  Rng rng(seed);
  std::vector<Index> ids(k);
  for (auto& id : ids) {
    id = static_cast<Index>(sampler.sample(rng) - 1);
  }
  return ids;
}

Tensor integer_delta(std::size_t k, Index d, std::uint64_t seed) {
  // Small integer-valued gradients: float addition is exact, so the two
  // strategies must agree bit-for-bit despite different summation trees.
  Rng rng(seed);
  Tensor t({static_cast<Index>(k), d});
  for (float& v : t.data()) {
    v = static_cast<float>(static_cast<int>(rng.uniform_index(17)) - 8);
  }
  return t;
}

Tensor real_delta(std::size_t k, Index d, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t({static_cast<Index>(k), d});
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

struct ExchangeCase {
  int world;
  std::size_t tokens;
  Index dim;
  Index vocab;
};

class ExchangeEquivalence
    : public ::testing::TestWithParam<ExchangeCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExchangeEquivalence,
    ::testing::Values(ExchangeCase{1, 16, 4, 50}, ExchangeCase{2, 32, 8, 40},
                      ExchangeCase{3, 20, 5, 25}, ExchangeCase{4, 64, 16, 30},
                      ExchangeCase{8, 48, 8, 100},
                      ExchangeCase{8, 40, 4, 6}));  // tiny vocab: collisions

TEST_P(ExchangeEquivalence, UniqueMatchesDenseBitExactlyOnIntegerGrads) {
  const auto c = GetParam();
  std::vector<std::vector<Index>> dense_ids(static_cast<std::size_t>(c.world));
  std::vector<Tensor> dense_rows(static_cast<std::size_t>(c.world));
  std::vector<std::vector<Index>> unique_ids(
      static_cast<std::size_t>(c.world));
  std::vector<Tensor> unique_rows(static_cast<std::size_t>(c.world));

  for (int pass = 0; pass < 2; ++pass) {
    CommWorld world(c.world);
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      const auto ids =
          zipf_ids(c.tokens, c.vocab, 1000 + static_cast<std::uint64_t>(r));
      const auto delta = integer_delta(c.tokens, c.dim,
                                       2000 + static_cast<std::uint64_t>(r));
      if (pass == 0) {
        DenseExchange ex;
        ex.exchange(comm, ids, delta, dense_ids[r], dense_rows[r], nullptr);
      } else {
        UniqueExchange ex;
        ex.exchange(comm, ids, delta, unique_ids[r], unique_rows[r], nullptr);
      }
    });
  }

  for (int r = 0; r < c.world; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    ASSERT_EQ(unique_ids[ri], dense_ids[ri]) << "rank " << r;
    ASSERT_TRUE(unique_rows[ri] == dense_rows[ri]) << "rank " << r;
    // Consistency across ranks.
    ASSERT_EQ(unique_ids[ri], unique_ids[0]);
    ASSERT_TRUE(unique_rows[ri] == unique_rows[0]);
  }
}

TEST_P(ExchangeEquivalence, UniqueMatchesDenseWithinToleranceOnRealGrads) {
  const auto c = GetParam();
  Tensor dense_out, unique_out;
  std::vector<Index> dense_ids, unique_ids;

  for (int pass = 0; pass < 2; ++pass) {
    CommWorld world(c.world);
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      const auto ids =
          zipf_ids(c.tokens, c.vocab, 7000 + static_cast<std::uint64_t>(r));
      const auto delta =
          real_delta(c.tokens, c.dim, 8000 + static_cast<std::uint64_t>(r));
      std::vector<Index> out_ids;
      Tensor out_rows;
      if (pass == 0) {
        DenseExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      } else {
        UniqueExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      }
      if (comm.rank() == 0) {
        if (pass == 0) {
          dense_ids = out_ids;
          dense_out = out_rows;
        } else {
          unique_ids = out_ids;
          unique_out = out_rows;
        }
      }
    });
  }

  ASSERT_EQ(unique_ids, dense_ids);
  ASSERT_EQ(unique_out.shape(), dense_out.shape());
  for (Index i = 0; i < unique_out.size(); ++i) {
    EXPECT_NEAR(unique_out.data()[static_cast<std::size_t>(i)],
                dense_out.data()[static_cast<std::size_t>(i)],
                1e-4f * static_cast<float>(c.world * c.tokens));
  }
}

TEST(LocalReduce, AccumulatesRepeatedTokensDeterministically) {
  // Tokens: [5, 3, 5, 5, 3, 9] — word 5 appears three times.
  const std::vector<Index> ids = {5, 3, 5, 5, 3, 9};
  Tensor delta({6, 2});
  for (Index i = 0; i < 6; ++i) {
    delta(i, 0) = static_cast<float>(i + 1);
    delta(i, 1) = static_cast<float>(10 * (i + 1));
  }
  std::vector<Index> uids;
  Tensor reduced;
  local_reduce_by_word(ids, delta, uids, reduced);

  ASSERT_EQ(uids, (std::vector<Index>{3, 5, 9}));
  // word 3: rows 1 and 4 -> 2+5=7;  word 5: rows 0,2,3 -> 1+3+4=8; word 9: 6.
  EXPECT_EQ(reduced(0, 0), 7.0f);
  EXPECT_EQ(reduced(1, 0), 8.0f);
  EXPECT_EQ(reduced(2, 0), 6.0f);
  EXPECT_EQ(reduced(0, 1), 70.0f);
  EXPECT_EQ(reduced(1, 1), 80.0f);
  EXPECT_EQ(reduced(2, 1), 60.0f);
}

TEST(LocalReduce, EmptyInputYieldsEmptyOutput) {
  std::vector<Index> ids;
  Tensor delta({0, 3});
  std::vector<Index> uids;
  Tensor reduced;
  local_reduce_by_word(ids, delta, uids, reduced);
  EXPECT_TRUE(uids.empty());
  EXPECT_EQ(reduced.rows(), 0);
}

TEST(ExchangeAccounting, LedgerMatchesClosedFormsExactly) {
  const int g = 4;
  const std::size_t k = 24;
  const Index d = 8;
  const Index vocab = 16;

  for (const bool unique : {false, true}) {
    CommWorld world(g);
    std::uint64_t global_unique = 0;
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::uint64_t>(comm.rank());
      const auto ids = zipf_ids(k, vocab, 50 + r);
      const auto delta = real_delta(k, d, 60 + r);
      std::vector<Index> out_ids;
      Tensor out_rows;
      if (unique) {
        UniqueExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      } else {
        DenseExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      }
      if (comm.rank() == 0) global_unique = out_ids.size();
    });

    const TrafficLedger total = world.total_ledger();
    const std::uint64_t expected =
        unique ? unique_exchange_total_wire_bytes(g, k, global_unique, d,
                                                  WirePrecision::FP32)
               : dense_exchange_total_wire_bytes(g, k, d,
                                                 WirePrecision::FP32);
    EXPECT_EQ(total.bytes_sent, expected) << (unique ? "unique" : "dense");
    EXPECT_EQ(total.bytes_received, expected);
  }
}

TEST(ExchangeAccounting, UniqueMovesFarFewerBytesOnZipfTokens) {
  // The headline claim: with Zipfian repetition and G*K >> U_g, unique
  // exchange wire volume is a small fraction of dense.
  const int g = 8;
  const std::size_t k = 512;
  const Index d = 64;
  const Index vocab = 1 << 20;  // large vocab, zipf keeps U small

  std::uint64_t dense_bytes = 0, unique_bytes = 0;
  for (const bool unique : {false, true}) {
    CommWorld world(g);
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::uint64_t>(comm.rank());
      // Word-frequency exponent matching real corpora (Heaps 0.64):
      // U_g is then ~100x smaller than G*K at realistic batch scales.
      const auto ids = zipf_ids(k, vocab, 90 + r, 1.5625);
      const auto delta = real_delta(k, d, 95 + r);
      std::vector<Index> out_ids;
      Tensor out_rows;
      if (unique) {
        UniqueExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      } else {
        DenseExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      }
    });
    (unique ? unique_bytes : dense_bytes) = world.total_ledger().bytes_sent;
  }
  EXPECT_LT(unique_bytes, dense_bytes / 2)
      << "unique should move far fewer bytes";
}

TEST(ExchangeMemory, DenseScratchOOMsWhereUniqueFits) {
  const int g = 8;
  const std::size_t k = 256;
  const Index d = 64;
  const Index vocab = 1024;
  // Pool sized between the unique scratch and the dense scratch.
  const std::size_t pool_bytes = 1 << 20;  // 1 MB

  // Dense needs G*K*(8 + 64*4) = 8*256*264 = 540 KB ... fits in 1MB; use
  // 256 KB pool to force the dense failure.
  const std::size_t tight_pool = 256u << 10;

  CommWorld world(g);
  EXPECT_THROW(
      world.run([&](Communicator& comm) {
        MemoryPool pool(tight_pool);
        const auto r = static_cast<std::uint64_t>(comm.rank());
        const auto ids = zipf_ids(k, vocab, 10 + r);
        const auto delta = real_delta(k, d, 20 + r);
        std::vector<Index> out_ids;
        Tensor out_rows;
        DenseExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, &pool);
      }),
      OutOfMemoryError);

  CommWorld world2(g);
  world2.run([&](Communicator& comm) {
    MemoryPool pool(pool_bytes);
    const auto r = static_cast<std::uint64_t>(comm.rank());
    const auto ids = zipf_ids(k, vocab, 10 + r);
    const auto delta = real_delta(k, d, 20 + r);
    std::vector<Index> out_ids;
    Tensor out_rows;
    UniqueExchange ex;
    ex.exchange(comm, ids, delta, out_ids, out_rows, &pool);
    EXPECT_GT(pool.peak(), 0u);
    EXPECT_LT(pool.peak(), tight_pool)
        << "unique scratch should fit where dense did not";
  });
}

TEST(ExchangeFp16, CompressionPreservesGradientsWithinHalfPrecision) {
  const int g = 4;
  const std::size_t k = 64;
  const Index d = 16;
  const Index vocab = 128;

  Tensor fp32_rows, fp16_rows;
  std::vector<Index> fp32_ids, fp16_ids;
  for (const bool fp16 : {false, true}) {
    CommWorld world(g);
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::uint64_t>(comm.rank());
      const auto ids = zipf_ids(k, vocab, 300 + r);
      // Small gradients: the regime where unscaled FP16 would flush.
      Rng rng(400 + r);
      Tensor delta({static_cast<Index>(k), d});
      for (float& v : delta.data()) {
        v = static_cast<float>(rng.uniform(-1e-4, 1e-4));
      }
      ExchangeOptions opt;
      opt.precision = fp16 ? WirePrecision::FP16 : WirePrecision::FP32;
      opt.compression_scale = 1024.0f;
      UniqueExchange ex(opt);
      std::vector<Index> out_ids;
      Tensor out_rows;
      ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      if (comm.rank() == 0) {
        if (fp16) {
          fp16_ids = out_ids;
          fp16_rows = out_rows;
        } else {
          fp32_ids = out_ids;
          fp32_rows = out_rows;
        }
      }
    });
  }
  ASSERT_EQ(fp16_ids, fp32_ids);
  double max_rel = 0.0;
  std::size_t nonzero = 0;
  for (Index i = 0; i < fp32_rows.size(); ++i) {
    const float a = fp32_rows.data()[static_cast<std::size_t>(i)];
    const float b = fp16_rows.data()[static_cast<std::size_t>(i)];
    if (std::fabs(a) > 1e-6f) {
      ++nonzero;
      max_rel = std::max(max_rel,
                         static_cast<double>(std::fabs(a - b) / std::fabs(a)));
    }
  }
  ASSERT_GT(nonzero, 0u);
  // binary16 has ~3 decimal digits; per-hop FP16 accumulation over 4
  // ranks compounds the rounding, so allow 3%.
  EXPECT_LT(max_rel, 0.03);
}

TEST(ExchangeFp16, HalvesThePayloadBytes) {
  const int g = 4;
  const std::size_t k = 128;
  const Index d = 32;
  const Index vocab = 64;
  std::uint64_t bytes[2];
  for (const bool fp16 : {false, true}) {
    CommWorld world(g);
    std::uint64_t ug = 0;
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::uint64_t>(comm.rank());
      const auto ids = zipf_ids(k, vocab, 77 + r);
      const auto delta = real_delta(k, d, 88 + r);
      ExchangeOptions opt;
      opt.precision = fp16 ? WirePrecision::FP16 : WirePrecision::FP32;
      UniqueExchange ex(opt);
      std::vector<Index> out_ids;
      Tensor out_rows;
      ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      if (comm.rank() == 0) ug = out_ids.size();
    });
    bytes[fp16 ? 1 : 0] = world.total_ledger().bytes_sent;
    const std::uint64_t expected = unique_exchange_total_wire_bytes(
        g, k, ug, d, fp16 ? WirePrecision::FP16 : WirePrecision::FP32);
    EXPECT_EQ(world.total_ledger().bytes_sent, expected);
  }
  EXPECT_LT(bytes[1], bytes[0]);
}

TEST(TableAllreduce, MatchesUniqueResult) {
  const int g = 4;
  const std::size_t k = 40;
  const Index d = 6;
  const Index vocab = 30;

  std::vector<Index> table_ids, unique_ids_out;
  Tensor table_rows, unique_rows;
  for (const bool table : {false, true}) {
    CommWorld world(g);
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::uint64_t>(comm.rank());
      const auto ids = zipf_ids(k, vocab, 600 + r);
      const auto delta = integer_delta(k, d, 700 + r);
      std::vector<Index> out_ids;
      Tensor out_rows;
      if (table) {
        TableAllreduceExchange ex(vocab);
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      } else {
        UniqueExchange ex;
        ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
      }
      if (comm.rank() == 0) {
        (table ? table_ids : unique_ids_out) = out_ids;
        (table ? table_rows : unique_rows) = out_rows;
      }
    });
  }
  ASSERT_EQ(table_ids, unique_ids_out);
  // Integer gradients: both summation orders are exact.
  EXPECT_TRUE(table_rows == unique_rows);
}

TEST(TableAllreduce, WireBytesScaleWithVocabNotBatch) {
  const Index d = 32;
  auto run = [&](Index vocab, std::size_t k) {
    CommWorld world(4);
    world.run([&](Communicator& comm) {
      const auto r = static_cast<std::uint64_t>(comm.rank());
      const auto ids = zipf_ids(k, vocab, 800 + r);
      const auto delta = real_delta(k, d, 900 + r);
      TableAllreduceExchange ex(vocab);
      std::vector<Index> out_ids;
      Tensor out_rows;
      ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
    });
    return world.total_ledger().bytes_sent;
  };
  // Same vocab, 4x the tokens: wire volume barely changes (index
  // gathering only).
  const auto small_k = run(64, 32);
  const auto big_k = run(64, 128);
  EXPECT_LT(static_cast<double>(big_k),
            1.5 * static_cast<double>(small_k));
  // 4x the vocab at fixed tokens: wire volume grows ~4x.
  const auto big_v = run(256, 32);
  EXPECT_GT(static_cast<double>(big_v), 2.5 * static_cast<double>(small_k));
}

TEST(TableAllreduce, ChargesVocabSizedScratch) {
  const Index vocab = 1000;
  const Index d = 16;
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    MemoryPool pool(1ull << 30);
    const auto r = static_cast<std::uint64_t>(comm.rank());
    const auto ids = zipf_ids(8, vocab, 50 + r);
    const auto delta = real_delta(8, d, 60 + r);
    TableAllreduceExchange ex(vocab);
    std::vector<Index> out_ids;
    Tensor out_rows;
    ex.exchange(comm, ids, delta, out_ids, out_rows, &pool);
    EXPECT_GE(pool.peak(), static_cast<std::size_t>(vocab) *
                               static_cast<std::size_t>(d) * sizeof(float));
  });
}

TEST(ExchangeVariableSizes, HandlesPerRankCandidateSets) {
  // Output-embedding path: ranks contribute different numbers of rows.
  const int g = 3;
  const Index d = 4;
  CommWorld world(g);
  world.run([&](Communicator& comm) {
    // Rank r has r+2 candidates: {0..r+1}.
    const std::size_t mine = static_cast<std::size_t>(comm.rank()) + 2;
    std::vector<Index> ids(mine);
    for (std::size_t i = 0; i < mine; ++i) ids[i] = static_cast<Index>(i);
    Tensor delta({static_cast<Index>(mine), d});
    delta.fill(1.0f);

    UniqueExchange ex;
    std::vector<Index> out_ids;
    Tensor out_rows;
    ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);

    // Union is {0,1,2,3}; id 0 and 1 appear on all 3 ranks, id 2 on two
    // ranks, id 3 on one.
    ASSERT_EQ(out_ids, (std::vector<Index>{0, 1, 2, 3}));
    EXPECT_EQ(out_rows(0, 0), 3.0f);
    EXPECT_EQ(out_rows(1, 0), 3.0f);
    EXPECT_EQ(out_rows(2, 0), 2.0f);
    EXPECT_EQ(out_rows(3, 0), 1.0f);
  });
}

}  // namespace
}  // namespace zipflm
