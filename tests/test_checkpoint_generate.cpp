// Checkpoint round-trips and generation sanity.
#include <gtest/gtest.h>

#include <sstream>

#include "zipflm/core/checkpoint.hpp"
#include "zipflm/data/markov.hpp"
#include "zipflm/nn/generate.hpp"

namespace zipflm {
namespace {

std::unique_ptr<CharLm> small_char(Index vocab = 20, std::uint64_t seed = 3) {
  CharLmConfig cfg;
  cfg.vocab = vocab;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 7;
  cfg.depth = 2;
  cfg.seed = seed;
  return std::make_unique<CharLm>(cfg);
}

std::unique_ptr<WordLm> small_word(std::uint64_t seed = 4) {
  WordLmConfig cfg;
  cfg.vocab = 25;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 6;
  cfg.proj_dim = 5;
  cfg.seed = seed;
  return std::make_unique<WordLm>(cfg);
}

TEST(Checkpoint, RoundTripIsBitExact) {
  auto original = small_char();
  // Perturb so we are not just checking identical initialization.
  for (Param* p : original->all_params()) {
    for (float& v : p->value.data()) v += 0.125f;
  }
  std::stringstream buffer;
  save_checkpoint(buffer, *original, {.global_step = 1234, .epoch = 5});

  auto restored = small_char(20, /*different seed=*/99);
  const auto meta = load_checkpoint(buffer, *restored);
  EXPECT_EQ(meta.global_step, 1234u);
  EXPECT_EQ(meta.epoch, 5u);

  const auto pa = original->all_params();
  const auto pb = restored->all_params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value == pb[i]->value) << pa[i]->name;
  }
}

TEST(Checkpoint, RejectsWrongArchitecture) {
  auto chr = small_char();
  std::stringstream buffer;
  save_checkpoint(buffer, *chr);
  auto word = small_word();
  EXPECT_THROW(load_checkpoint(buffer, *word), ConfigError);
}

TEST(Checkpoint, RejectsWrongShape) {
  auto a = small_char(20);
  std::stringstream buffer;
  save_checkpoint(buffer, *a);
  auto b = small_char(21);  // different vocabulary
  EXPECT_THROW(load_checkpoint(buffer, *b), ConfigError);
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream buffer;
  buffer << "definitely not a checkpoint";
  auto m = small_char();
  EXPECT_THROW(load_checkpoint(buffer, *m), ConfigError);
}

TEST(Checkpoint, RejectsTruncation) {
  auto a = small_char();
  std::stringstream buffer;
  save_checkpoint(buffer, *a);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  auto b = small_char();
  EXPECT_THROW(load_checkpoint(cut, *b), ConfigError);
}

TEST(Generate, ProducesValidTokensDeterministically) {
  auto model = small_char(20);
  Rng a(5), b(5);
  GenerateOptions opt;
  const std::vector<Index> prompt = {1, 2};
  const auto ta = generate_tokens(*model, prompt, 50, opt, a);
  const auto tb = generate_tokens(*model, prompt, 50, opt, b);
  EXPECT_EQ(ta, tb);
  ASSERT_EQ(ta.size(), 52u);
  EXPECT_EQ(ta[0], 1);
  EXPECT_EQ(ta[1], 2);
  for (const Index t : ta) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 20);
  }
}

TEST(Generate, TopKRestrictsSupport) {
  auto model = small_char(20);
  GenerateOptions opt;
  opt.top_k = 1;  // greedy
  Rng a(1), b(2);
  const std::vector<Index> prompt = {3};
  // With top_k = 1 the continuation is deterministic regardless of RNG.
  EXPECT_EQ(generate_tokens(*model, prompt, 20, opt, a),
            generate_tokens(*model, prompt, 20, opt, b));
}

TEST(Generate, LowTemperatureConcentrates) {
  auto model = small_char(20);
  const std::vector<Index> prompt = {7, 3, 1};
  GenerateOptions cold;
  cold.temperature = 1e-5;
  GenerateOptions hot;
  hot.temperature = 10.0;
  Rng rng(11);
  std::set<Index> cold_support, hot_support;
  for (int i = 0; i < 200; ++i) {
    cold_support.insert(sample_next_token(*model, prompt, cold, rng));
    hot_support.insert(sample_next_token(*model, prompt, hot, rng));
  }
  EXPECT_LT(cold_support.size(), hot_support.size());
}

TEST(Generate, NextTokenLogitsShape) {
  auto word = small_word();
  const std::vector<Index> ctx = {1, 2, 3};
  const Tensor logits = word->next_token_logits(ctx);
  EXPECT_EQ(logits.size(), 25);
  auto chr = small_char(20);
  EXPECT_EQ(chr->next_token_logits(ctx).size(), 20);
}

TEST(Generate, RejectsBadOptions) {
  auto model = small_char(20);
  Rng rng(1);
  GenerateOptions opt;
  opt.temperature = 0.0;
  EXPECT_THROW(sample_next_token(*model, std::vector<Index>{1}, opt, rng),
               ConfigError);
  GenerateOptions ok;
  EXPECT_THROW(sample_next_token(*model, std::vector<Index>{}, ok, rng),
               ConfigError);
}

}  // namespace
}  // namespace zipflm
