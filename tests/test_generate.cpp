// Sampling semantics and the incremental (state-carrying) generation
// path: top_k = 1 must be greedy, temperature -> 0 must agree with
// greedy, and one-step-at-a-time stepping must reproduce the windowed
// path bit for bit — the contract the serving engine is built on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"

namespace zipflm {
namespace {

std::unique_ptr<CharLm> small_char(std::uint64_t seed = 3) {
  CharLmConfig cfg;
  cfg.vocab = 20;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 7;
  cfg.depth = 2;
  cfg.seed = seed;
  return std::make_unique<CharLm>(cfg);
}

std::unique_ptr<WordLm> small_word(std::uint64_t seed = 4) {
  WordLmConfig cfg;
  cfg.vocab = 25;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 6;
  cfg.proj_dim = 5;
  cfg.num_layers = 2;
  cfg.seed = seed;
  return std::make_unique<WordLm>(cfg);
}

/// The pre-incremental generation loop: re-run the visible window for
/// every token.  The incremental path must match this exactly.
std::vector<Index> window_generate(LmModel& model, std::vector<Index> tokens,
                                   std::size_t count,
                                   const GenerateOptions& options, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    tokens.push_back(sample_next_token(model, tokens, options, rng));
  }
  return tokens;
}

/// Greedy argmax with the sampler's tie-break (largest id wins ties).
Index argmax_token(const Tensor& logits) {
  const auto row = logits.data();
  Index best = 0;
  for (Index i = 1; i < static_cast<Index>(row.size()); ++i) {
    if (row[static_cast<std::size_t>(i)] >=
        row[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

TEST(Sampling, TopK1IsGreedyArgmax) {
  auto model = small_char();
  GenerateOptions greedy;
  greedy.top_k = 1;
  std::vector<Index> tokens = {1, 2};
  Rng rng(17);
  for (int step = 0; step < 12; ++step) {
    const Index expected = argmax_token(model->next_token_logits(tokens));
    tokens.push_back(sample_next_token(*model, tokens, greedy, rng));
    EXPECT_EQ(tokens.back(), expected) << "step " << step;
  }
}

TEST(Sampling, TopK1IgnoresRngState) {
  auto model = small_char();
  GenerateOptions greedy;
  greedy.top_k = 1;
  Rng a(1), b(999);
  EXPECT_EQ(generate_tokens(*model, std::vector<Index>{3}, 16, greedy, a),
            generate_tokens(*model, std::vector<Index>{3}, 16, greedy, b));
}

TEST(Sampling, TemperatureLimitAgreesWithGreedy) {
  auto model = small_char();
  GenerateOptions greedy;
  greedy.top_k = 1;
  GenerateOptions cold;
  cold.temperature = 1e-6;
  Rng ga(7), ca(7);
  EXPECT_EQ(generate_tokens(*model, std::vector<Index>{5, 1}, 16, greedy, ga),
            generate_tokens(*model, std::vector<Index>{5, 1}, 16, cold, ca));
}

TEST(Incremental, MatchesWindowPathCharLm) {
  auto model = small_char();
  GenerateOptions opt;
  opt.max_context = 64;  // prompt + count fits: incremental path
  const std::vector<Index> prompt = {1, 2, 7};
  Rng inc_rng(5), win_rng(5);
  const auto incremental = generate_tokens(*model, prompt, 40, opt, inc_rng);
  const auto windowed = window_generate(*model, prompt, 40, opt, win_rng);
  EXPECT_EQ(incremental, windowed);
}

TEST(Incremental, MatchesWindowPathWordLm) {
  auto model = small_word();
  GenerateOptions opt;
  opt.max_context = 64;
  const std::vector<Index> prompt = {4, 9};
  Rng inc_rng(11), win_rng(11);
  const auto incremental = generate_tokens(*model, prompt, 30, opt, inc_rng);
  const auto windowed = window_generate(*model, prompt, 30, opt, win_rng);
  EXPECT_EQ(incremental, windowed);
}

TEST(Incremental, FallsBackToWindowWhenContextOverflows) {
  auto model = small_char();
  GenerateOptions opt;
  opt.max_context = 8;  // forces the sliding-window fallback
  const std::vector<Index> prompt = {1, 2, 3};
  Rng a(3), b(3);
  EXPECT_EQ(generate_tokens(*model, prompt, 20, opt, a),
            window_generate(*model, prompt, 20, opt, b));
}

TEST(Incremental, EdgeCases) {
  auto model = small_char();
  GenerateOptions opt;
  Rng rng(1);
  const std::vector<Index> prompt = {2};
  EXPECT_EQ(generate_tokens(*model, prompt, 0, opt, rng), prompt);
  EXPECT_THROW(generate_tokens(*model, std::vector<Index>{}, 4, opt, rng),
               ConfigError);
}

template <typename ModelFactory>
void expect_step_matches_forward(ModelFactory make) {
  auto model = make();
  const std::vector<Index> context = {1, 3, 2, 5, 4};
  RecurrentState state = model->initial_state(1);
  Tensor step_logits;
  for (std::size_t n = 1; n <= context.size(); ++n) {
    const Index t = context[n - 1];
    model->step(std::span<const Index>(&t, 1), state, step_logits);
    const Tensor full = model->next_token_logits(
        std::span<const Index>(context.data(), n));
    const auto a = step_logits.row(0);
    const auto b = full.data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Bitwise: stepping must be the forward pass, not an approximation.
      EXPECT_EQ(a[i], b[i]) << "prefix " << n << " logit " << i;
    }
  }
}

TEST(Incremental, StepIsBitwiseForwardCharLm) {
  expect_step_matches_forward([] { return small_char(); });
}

TEST(Incremental, StepIsBitwiseForwardWordLm) {
  expect_step_matches_forward([] { return small_word(); });
}

TEST(Incremental, BatchedStepMatchesSingleStreams) {
  auto model = small_char();
  // Three independent streams advanced as one batch must equal three
  // batch-1 runs — the row independence the scheduler relies on.
  const std::vector<std::vector<Index>> contexts = {
      {1, 2, 3, 4}, {9, 9, 9, 9}, {5, 0, 7, 2}};
  const auto batch = static_cast<Index>(contexts.size());

  RecurrentState batched = model->initial_state(batch);
  Tensor batched_logits;
  std::vector<RecurrentState> singles;
  std::vector<Tensor> single_logits(contexts.size());
  for (std::size_t s = 0; s < contexts.size(); ++s) {
    singles.push_back(model->initial_state(1));
  }

  std::vector<Index> step_tokens(contexts.size());
  for (std::size_t t = 0; t < contexts.front().size(); ++t) {
    for (std::size_t s = 0; s < contexts.size(); ++s) {
      step_tokens[s] = contexts[s][t];
      model->step(std::span<const Index>(&step_tokens[s], 1), singles[s],
                  single_logits[s]);
    }
    model->step(step_tokens, batched, batched_logits);
    for (std::size_t s = 0; s < contexts.size(); ++s) {
      const auto a = batched_logits.row(static_cast<Index>(s));
      const auto b = single_logits[s].row(0);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "t " << t << " stream " << s;
      }
    }
  }
}

}  // namespace
}  // namespace zipflm
