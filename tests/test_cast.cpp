// Compression-scaling properties (Section III-C).
#include <gtest/gtest.h>

#include <cmath>

#include "zipflm/support/rng.hpp"
#include "zipflm/tensor/cast.hpp"

namespace zipflm {
namespace {

TEST(Cast, RoundTripIsIdentityForRepresentableValues) {
  std::vector<float> vals = {0.0f, 1.0f, -2.5f, 0.125f, 40.0f};
  std::vector<Half> wire;
  compress_fp16(vals, 1.0f, wire);
  std::vector<float> back;
  decompress_fp16(wire, 1.0f, back);
  EXPECT_EQ(back, vals);
}

TEST(Cast, ScalingRescuesTinyGradients) {
  // 1e-8 < 2^-25 (half of the smallest binary16 subnormal): flushed
  // without scaling, preserved with F=1024.
  std::vector<float> vals(100, 1e-8f);
  auto unscaled = measure_cast_loss(vals, 1.0f);
  EXPECT_EQ(unscaled.flushed_to_zero, 100u);

  auto scaled = measure_cast_loss(vals, 1024.0f);
  EXPECT_EQ(scaled.flushed_to_zero, 0u);
  EXPECT_LT(scaled.max_rel_error, 0.01);
}

TEST(Cast, ScalingCanOverflowLargeValues) {
  std::vector<float> vals(10, 100.0f);
  auto loss = measure_cast_loss(vals, 1024.0f);  // 102400 > 65504
  EXPECT_EQ(loss.overflowed, 10u);
  auto ok = measure_cast_loss(vals, 1.0f);
  EXPECT_EQ(ok.overflowed, 0u);
}

class CastScaleSweep : public ::testing::TestWithParam<float> {};

INSTANTIATE_TEST_SUITE_P(PaperScales, CastScaleSweep,
                         ::testing::Values(1.0f, 256.0f, 512.0f, 1024.0f));

TEST_P(CastScaleSweep, RelativeErrorBoundedByHalfEpsilon) {
  const float scale = GetParam();
  Rng rng(13);
  std::vector<float> vals(5000);
  for (auto& v : vals) {
    // Magnitudes where scaled values stay within normal half range.
    v = static_cast<float>(rng.uniform(-10.0, 10.0)) / scale;
  }
  const auto loss = measure_cast_loss(vals, scale);
  EXPECT_EQ(loss.overflowed, 0u);
  // binary16 unit roundoff is 2^-11; allow the subnormal tail some slack.
  EXPECT_LT(loss.max_rel_error, 1.0 / 1024.0);
}

TEST(Cast, RoundTripInPlaceMatchesCompressDecompress) {
  Rng rng(15);
  std::vector<float> vals(257);
  for (auto& v : vals) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  std::vector<float> inplace = vals;
  fp16_round_trip(std::span<float>(inplace), 512.0f);

  std::vector<Half> wire;
  compress_fp16(vals, 512.0f, wire);
  std::vector<float> two_step;
  decompress_fp16(wire, 512.0f, two_step);
  EXPECT_EQ(inplace, two_step);
}

TEST(Cast, EmptyBuffers) {
  std::vector<float> empty;
  std::vector<Half> wire;
  compress_fp16(empty, 256.0f, wire);
  EXPECT_TRUE(wire.empty());
  const auto loss = measure_cast_loss(empty, 256.0f);
  EXPECT_EQ(loss.total, 0u);
}

}  // namespace
}  // namespace zipflm
