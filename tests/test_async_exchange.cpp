// Overlapped bucketed gradient exchange: the async engine itself (FIFO,
// error capture, inline degradation), and the end-to-end contract that a
// training run with overlap on is bitwise identical to one with overlap
// off — same losses, same weights — at G in {1, 4} and FP32/FP16 wire.
// Also replays the adaptive strategy selector's decision log through the
// pure predict() and re-derives every choice.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "zipflm/comm/async_exchange.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/strategy_select.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/corpus.hpp"

namespace zipflm {
namespace {

std::vector<Index> tiny_corpus(Index vocab, std::size_t n,
                               std::uint64_t seed) {
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.1);
  Rng rng(seed);
  std::vector<Index> ids(n);
  for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
  return ids;
}

DistributedTrainer::ModelFactory tiny_word_factory(Index vocab) {
  return [vocab](int /*rank*/) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 12;
    cfg.proj_dim = 8;
    cfg.seed = 1234;
    return std::make_unique<WordLm>(cfg);
  };
}

TrainerOptions tiny_options() {
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 6};
  opt.base_lr = 0.2f;
  opt.lr_decay = 1.0f;
  opt.clip = 5.0f;
  opt.charge_static_memory = false;
  return opt;
}

/// Every parameter tensor of every replica, as raw bytes.
std::vector<unsigned char> model_bytes(DistributedTrainer& trainer) {
  std::vector<unsigned char> out;
  for (Param* p : trainer.model(0).all_params()) {
    const auto data = p->value.data();
    const auto* b = reinterpret_cast<const unsigned char*>(data.data());
    out.insert(out.end(), b, b + data.size() * sizeof(float));
  }
  return out;
}

// -- AsyncCommEngine unit behaviour ----------------------------------

TEST(AsyncCommEngine, ThreadedModeDrainsFifo) {
  CommWorld world(1);
  world.run([](Communicator& comm) {
    // force_thread: this host may have one hardware thread, where the
    // engine would otherwise degrade to inline execution.
    AsyncCommEngine engine(comm, /*overlap=*/true, /*force_thread=*/true);
    EXPECT_TRUE(engine.overlap());
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      engine.submit("job", 8, [&order, i](Communicator&) {
        order.push_back(i);  // worker thread runs jobs one at a time
      });
    }
    engine.flush();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
    const auto stats = engine.stats();
    EXPECT_EQ(stats.jobs, 16u);
    EXPECT_EQ(stats.payload_bytes, 16u * 8u);
  });
}

TEST(AsyncCommEngine, InlineModeRunsAtSubmit) {
  CommWorld world(1);
  world.run([](Communicator& comm) {
    AsyncCommEngine engine(comm, /*overlap=*/false);
    EXPECT_FALSE(engine.overlap());
    bool ran = false;
    engine.submit("job", 4, [&ran](Communicator&) { ran = true; });
    EXPECT_TRUE(ran) << "overlap off must execute the job inside submit()";
    engine.flush();  // nothing queued; must not block or throw
    EXPECT_EQ(engine.stats().jobs, 1u);
  });
}

TEST(AsyncCommEngine, JobErrorAbortsQueueAndRethrowsAtFlush) {
  CommWorld world(1);
  world.run([](Communicator& comm) {
    AsyncCommEngine engine(comm, /*overlap=*/true, /*force_thread=*/true);
    bool later_ran = false;
    engine.submit("boom", 0, [](Communicator&) {
      throw std::runtime_error("wire fault");
    });
    engine.submit("after", 0, [&later_ran](Communicator&) {
      later_ran = true;
    });
    EXPECT_THROW(engine.flush(), std::runtime_error);
    EXPECT_FALSE(later_ran) << "jobs after a failure must be aborted";
    // The error is consumed; the engine is reusable for the next step.
    bool ran = false;
    engine.submit("next", 0, [&ran](Communicator&) { ran = true; });
    engine.flush();
    EXPECT_TRUE(ran);
  });
}

TEST(AsyncCommEngine, OverlapEfficiencyGauge) {
  AsyncCommEngine::Stats s;
  s.busy_seconds = 2.0;
  s.flush_wait_seconds = 0.5;
  EXPECT_DOUBLE_EQ(AsyncCommEngine::overlap_efficiency(s), 0.75);
  s.flush_wait_seconds = 3.0;  // waited longer than comm worked
  EXPECT_DOUBLE_EQ(AsyncCommEngine::overlap_efficiency(s), 0.0);
  s.busy_seconds = 0.0;
  EXPECT_DOUBLE_EQ(AsyncCommEngine::overlap_efficiency(s), 0.0);
}

// -- End-to-end: overlap on == overlap off, bit for bit --------------

void expect_overlap_matches_sync(int gpus, WirePrecision wire) {
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 2400, 7);
  const auto valid = tiny_corpus(vocab, 400, 8);

  std::vector<unsigned char> reference;
  double ref_train = 0.0, ref_valid = 0.0;
  for (const bool overlap : {false, true}) {
    CommWorld world(gpus);
    TrainerOptions opt = tiny_options();
    opt.samples_per_rank = 16;
    opt.wire = wire;
    opt.overlapped_exchange = overlap;
    opt.overlap_bucket_bytes = 512;  // several buckets even at toy sizes
    DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);

    EpochStats last{};
    for (int e = 0; e < 2; ++e) last = trainer.run_epoch(train, valid, e);
    EXPECT_TRUE(trainer.replicas_in_sync());

    const auto bytes = model_bytes(trainer);
    if (!overlap) {
      reference = bytes;
      ref_train = last.train_loss;
      ref_valid = last.valid_loss;
      continue;
    }
    // Bitwise: the losses are exact doubles and the weights exact bytes.
    EXPECT_EQ(last.train_loss, ref_train);
    EXPECT_EQ(last.valid_loss, ref_valid);
    ASSERT_EQ(bytes.size(), reference.size());
    EXPECT_EQ(0, std::memcmp(bytes.data(), reference.data(), bytes.size()))
        << "overlap on diverged from overlap off at G=" << gpus;
  }
}

TEST(OverlappedExchange, MatchesSyncBitwiseG1Fp32) {
  expect_overlap_matches_sync(1, WirePrecision::FP32);
}

TEST(OverlappedExchange, MatchesSyncBitwiseG4Fp32) {
  expect_overlap_matches_sync(4, WirePrecision::FP32);
}

TEST(OverlappedExchange, MatchesSyncBitwiseG4Fp16) {
  expect_overlap_matches_sync(4, WirePrecision::FP16);
}

// -- Gradient wire codecs through the full trainer -------------------

// The lossless packed codec (and the varint index codec) must leave the
// training trajectory untouched: same losses as exact doubles, same
// weights as exact bytes.
void expect_codec_matches_raw(int gpus, WirePrecision wire) {
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 2400, 11);
  const auto valid = tiny_corpus(vocab, 400, 12);

  std::vector<unsigned char> reference;
  double ref_train = 0.0, ref_valid = 0.0;
  for (const bool coded : {false, true}) {
    CommWorld world(gpus);
    TrainerOptions opt = tiny_options();
    opt.samples_per_rank = 16;
    opt.wire = wire;
    if (coded) {
      opt.wire_codec = WireCodec::Packed;
      opt.index_codec = true;
    }
    DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);

    EpochStats last{};
    for (int e = 0; e < 2; ++e) last = trainer.run_epoch(train, valid, e);
    EXPECT_TRUE(trainer.replicas_in_sync());

    const auto bytes = model_bytes(trainer);
    if (!coded) {
      reference = bytes;
      ref_train = last.train_loss;
      ref_valid = last.valid_loss;
      continue;
    }
    EXPECT_EQ(last.train_loss, ref_train);
    EXPECT_EQ(last.valid_loss, ref_valid);
    ASSERT_EQ(bytes.size(), reference.size());
    EXPECT_EQ(0, std::memcmp(bytes.data(), reference.data(), bytes.size()))
        << "packed codec diverged from raw wire at G=" << gpus;
  }
}

TEST(CodedTraining, PackedMatchesRawBitwiseG4Fp32) {
  expect_codec_matches_raw(4, WirePrecision::FP32);
}

TEST(CodedTraining, PackedMatchesRawBitwiseG4Fp16) {
  expect_codec_matches_raw(4, WirePrecision::FP16);
}

TEST(CodedTraining, Int8KeepsReplicasInSyncAndConverges) {
  // INT8 is lossy, so the contract is weaker: replicas stay bitwise
  // identical to each other (deterministic quantization), and the loss
  // stays epsilon-close to the raw trajectory.
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 2400, 13);
  const auto valid = tiny_corpus(vocab, 400, 14);

  double raw_valid = 0.0;
  for (const bool coded : {false, true}) {
    CommWorld world(4);
    TrainerOptions opt = tiny_options();
    opt.samples_per_rank = 16;
    if (coded) opt.wire_codec = WireCodec::Int8;
    DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);
    const EpochStats stats = trainer.run_epoch(train, valid, 0);
    EXPECT_TRUE(trainer.replicas_in_sync());
    EXPECT_TRUE(std::isfinite(stats.valid_loss));
    if (!coded) {
      raw_valid = stats.valid_loss;
    } else {
      EXPECT_NEAR(stats.valid_loss, raw_valid, 0.05 * raw_valid);
    }
  }
}

// -- Adaptive strategy selection: the log is replayable --------------

TEST(StrategySelector, LoggedDecisionsReplayThroughPredict) {
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 2400, 9);
  const auto valid = tiny_corpus(vocab, 400, 10);

  const int gpus = 4;
  CommWorld world(gpus);
  TrainerOptions opt = tiny_options();
  opt.samples_per_rank = 16;
  opt.adaptive_exchange = true;
  DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);
  trainer.run_epoch(train, valid, 0);

  const ExchangeStrategySelector* sel = trainer.strategy_selector(0);
  ASSERT_NE(sel, nullptr);
  ASSERT_FALSE(sel->log().empty());

  // Lockstep: every rank must have recorded the identical decision
  // sequence, or the collective schedules would have diverged.
  for (int r = 1; r < gpus; ++r) {
    const ExchangeStrategySelector* other = trainer.strategy_selector(r);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(other->log().size(), sel->log().size());
    for (std::size_t i = 0; i < sel->log().size(); ++i) {
      EXPECT_EQ(other->log()[i].choice, sel->log()[i].choice);
      EXPECT_EQ(other->log()[i].ug, sel->log()[i].ug);
    }
  }

  // Replay: feed each logged U_g back through the pure predict() and
  // re-derive the choice with the same hysteresis rule.
  const auto idx = [](ExchangeKind k) { return static_cast<std::size_t>(k); };
  ExchangeKind current = sel->config().initial;
  for (const StrategyDecision& d : sel->log()) {
    const auto costs = ExchangeStrategySelector::predict(
        sel->config(), sel->cost_model(), sel->topology(), d.ug);
    for (std::size_t k = 0; k < costs.size(); ++k) {
      EXPECT_EQ(costs[k], d.predicted_seconds[k])
          << "predict() must be pure — step " << d.step << " strategy " << k;
    }
    ExchangeKind best = ExchangeKind::Unique;
    for (ExchangeKind k : {ExchangeKind::DenseAllgather,
                           ExchangeKind::HierarchicalUnique}) {
      if (costs[idx(k)] < costs[idx(best)]) best = k;
    }
    if (best != current &&
        costs[idx(best)] <
            costs[idx(current)] * (1.0 - sel->config().hysteresis)) {
      EXPECT_TRUE(d.switched);
      current = best;
    }
    EXPECT_EQ(d.choice, current)
        << "logged choice at step " << d.step << " is not replayable";
  }
}

TEST(StrategySelector, WireFormatDecisionsReplayThroughPredictFormat) {
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 2400, 15);
  const auto valid = tiny_corpus(vocab, 400, 16);

  const int gpus = 4;
  CommWorld world(gpus);
  TrainerOptions opt = tiny_options();
  opt.samples_per_rank = 16;
  opt.adaptive_exchange = true;
  opt.adaptive_wire_format = true;
  DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);
  for (int e = 0; e < 2; ++e) trainer.run_epoch(train, valid, e);

  const ExchangeStrategySelector* sel = trainer.strategy_selector(0);
  ASSERT_NE(sel, nullptr);
  ASSERT_FALSE(sel->log().empty());
  EXPECT_TRUE(trainer.replicas_in_sync());

  // Lockstep: the format arbitration feeds off comm.last_codec_ratio(),
  // which is globally consistent, so every rank's log must agree.
  for (int r = 1; r < gpus; ++r) {
    const ExchangeStrategySelector* other = trainer.strategy_selector(r);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(other->log().size(), sel->log().size());
    for (std::size_t i = 0; i < sel->log().size(); ++i) {
      EXPECT_EQ(other->log()[i].format, sel->log()[i].format);
      for (std::size_t f = 0; f < kWireFormatCount; ++f) {
        EXPECT_EQ(other->log()[i].ratio_used[f], sel->log()[i].ratio_used[f]);
      }
    }
  }

  // Replay: each decision logs the ratio vector it priced with, so
  // predict_format() must reproduce the logged costs, and the
  // hysteresis rule must reproduce the logged format.
  const auto fidx = [](WireFormat f) { return static_cast<std::size_t>(f); };
  WireFormat current = sel->config().initial_format;
  for (const StrategyDecision& d : sel->log()) {
    const auto costs = ExchangeStrategySelector::predict_format(
        sel->config(), sel->cost_model(), sel->topology(), d.ug, d.choice,
        d.ratio_used);
    for (std::size_t f = 0; f < kWireFormatCount; ++f) {
      EXPECT_EQ(costs[f], d.predicted_format_seconds[f])
          << "predict_format() must be pure — step " << d.step
          << " format " << f;
    }
    WireFormat best = WireFormat::FP32;
    for (std::size_t f = 0; f < kWireFormatCount; ++f) {
      if (costs[f] < costs[fidx(best)]) best = static_cast<WireFormat>(f);
    }
    if (best != current) {
      const double incumbent = costs[fidx(current)];
      if (!(incumbent < std::numeric_limits<double>::infinity()) ||
          costs[fidx(best)] < incumbent * (1.0 - sel->config().hysteresis)) {
        EXPECT_TRUE(d.format_switched);
        current = best;
      }
    }
    EXPECT_EQ(d.format, current)
        << "logged format at step " << d.step << " is not replayable";
  }
}

}  // namespace
}  // namespace zipflm
