#include <gtest/gtest.h>

#include <limits>

#include "zipflm/nn/loss_scaler.hpp"

namespace zipflm {
namespace {

Param param_with_grad(float g) {
  Param p("p", Tensor({4}));
  p.grad.fill(g);
  return p;
}

TEST(LossScaler, FixedScaleUnscalesGradients) {
  auto scaler = LossScaler::fixed(512.0f);
  Param p = param_with_grad(512.0f);
  Param* ps[] = {&p};
  EXPECT_TRUE(scaler.unscale(ps));
  for (float v : p.grad.data()) EXPECT_NEAR(v, 1.0f, 1e-6f);
  EXPECT_EQ(scaler.scale(), 512.0f);  // fixed never changes
}

TEST(LossScaler, DetectsOverflowAndSkips) {
  auto scaler = LossScaler::fixed(256.0f);
  Param p = param_with_grad(1.0f);
  p.grad(2) = std::numeric_limits<float>::infinity();
  Param* ps[] = {&p};
  EXPECT_TRUE(LossScaler::has_overflow(ps));
  EXPECT_FALSE(scaler.unscale(ps));
  EXPECT_EQ(scaler.skipped_steps(), 1);
  // Gradients untouched on skip.
  EXPECT_EQ(p.grad(0), 1.0f);
}

TEST(LossScaler, NanCountsAsOverflow) {
  Param p = param_with_grad(0.0f);
  p.grad(1) = std::numeric_limits<float>::quiet_NaN();
  Param* ps[] = {&p};
  EXPECT_TRUE(LossScaler::has_overflow(ps));
}

TEST(LossScaler, DynamicBacksOffOnOverflow) {
  auto scaler = LossScaler::dynamic(1024.0f);
  scaler.update(true);
  EXPECT_EQ(scaler.scale(), 512.0f);
  scaler.update(true);
  EXPECT_EQ(scaler.scale(), 256.0f);
}

TEST(LossScaler, DynamicGrowsAfterCleanStreak) {
  auto scaler = LossScaler::dynamic(64.0f);
  for (int i = 0; i < 200; ++i) scaler.update(false);
  EXPECT_EQ(scaler.scale(), 128.0f);
  // Streak resets after growth.
  for (int i = 0; i < 199; ++i) scaler.update(false);
  EXPECT_EQ(scaler.scale(), 128.0f);
  scaler.update(false);
  EXPECT_EQ(scaler.scale(), 256.0f);
}

TEST(LossScaler, DynamicRespectsBounds) {
  auto scaler = LossScaler::dynamic(1.0f);
  scaler.update(true);
  EXPECT_GE(scaler.scale(), 1.0f);  // floor

  auto big = LossScaler::dynamic(65536.0f);
  for (int i = 0; i < 400; ++i) big.update(false);
  EXPECT_LE(big.scale(), 65536.0f);  // ceiling
}

TEST(LossScaler, OverflowResetsGrowthStreak) {
  auto scaler = LossScaler::dynamic(64.0f);
  for (int i = 0; i < 199; ++i) scaler.update(false);
  scaler.update(true);  // overflow at step 200
  EXPECT_EQ(scaler.scale(), 32.0f);
  for (int i = 0; i < 199; ++i) scaler.update(false);
  EXPECT_EQ(scaler.scale(), 32.0f);  // needs the full streak again
}

}  // namespace
}  // namespace zipflm
