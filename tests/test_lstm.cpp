// Finite-difference verification of the hand-written LSTM BPTT.
#include <gtest/gtest.h>

#include "zipflm/nn/gradcheck.hpp"
#include "zipflm/nn/lstm.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {
namespace {

/// Scalar test loss: sum of squares of all outputs, whose gradient
/// w.r.t. output y is 2y.
double sum_sq(const std::vector<Tensor>& ys) {
  double acc = 0.0;
  for (const auto& y : ys) {
    for (float v : y.data()) acc += 0.5 * static_cast<double>(v) * v;
  }
  return acc;
}

std::vector<Tensor> loss_grads(const std::vector<Tensor>& ys) {
  std::vector<Tensor> d;
  d.reserve(ys.size());
  for (const auto& y : ys) {
    Tensor g = y;  // d(0.5 y^2)/dy = y
    d.push_back(std::move(g));
  }
  return d;
}

struct LstmCase {
  Index input_dim;
  Index hidden;
  Index proj;
  Index batch;
  Index steps;
};

class LstmGradCheck : public ::testing::TestWithParam<LstmCase> {};

INSTANTIATE_TEST_SUITE_P(Shapes, LstmGradCheck,
                         ::testing::Values(LstmCase{3, 4, 0, 2, 1},
                                           LstmCase{3, 4, 0, 2, 3},
                                           LstmCase{2, 5, 3, 2, 2},
                                           LstmCase{4, 3, 2, 3, 4},
                                           LstmCase{1, 2, 2, 1, 5}));

TEST_P(LstmGradCheck, ParameterAndInputGradientsMatchFiniteDifferences) {
  const auto c = GetParam();
  Rng rng(42);
  LstmLayer lstm(LstmConfig{c.input_dim, c.hidden, c.proj}, rng);

  std::vector<Tensor> xs;
  for (Index t = 0; t < c.steps; ++t) {
    xs.push_back(Tensor::randn({c.batch, c.input_dim}, rng, 0.5f));
  }

  auto loss_fn = [&] {
    std::vector<Tensor> ys;
    lstm.forward(xs, ys);
    return sum_sq(ys);
  };

  // Analytic gradients.
  std::vector<Tensor> ys;
  lstm.forward(xs, ys);
  lstm.zero_grad();
  std::vector<Tensor> dxs;
  lstm.backward(loss_grads(ys), dxs);

  for (Param* p : lstm.params()) {
    const auto result = grad_check(p->value, p->grad, loss_fn, 3e-3);
    EXPECT_TRUE(result.passed(4e-2))
        << p->name << " rel err " << result.max_rel_error << " at index "
        << result.worst_index;
  }
  for (Index t = 0; t < c.steps; ++t) {
    const auto result = grad_check(xs[static_cast<std::size_t>(t)],
                                   dxs[static_cast<std::size_t>(t)], loss_fn,
                                   3e-3);
    EXPECT_TRUE(result.passed(4e-2))
        << "input step " << t << " rel err " << result.max_rel_error;
  }
}

TEST(Lstm, OutputShapesRespectProjection) {
  Rng rng(1);
  LstmLayer with_proj(LstmConfig{4, 8, 3}, rng);
  LstmLayer no_proj(LstmConfig{4, 8, 0}, rng);
  EXPECT_EQ(with_proj.output_dim(), 3);
  EXPECT_EQ(no_proj.output_dim(), 8);

  std::vector<Tensor> xs{Tensor::randn({2, 4}, rng)};
  std::vector<Tensor> ys;
  with_proj.forward(xs, ys);
  EXPECT_EQ(ys[0].rows(), 2);
  EXPECT_EQ(ys[0].cols(), 3);
  no_proj.forward(xs, ys);
  EXPECT_EQ(ys[0].cols(), 8);
}

TEST(Lstm, ForwardIsDeterministic) {
  Rng rng(7);
  LstmLayer a(LstmConfig{3, 5, 2}, rng);
  Rng rng2(7);
  LstmLayer b(LstmConfig{3, 5, 2}, rng2);

  Rng xr(9);
  std::vector<Tensor> xs{Tensor::randn({2, 3}, xr),
                         Tensor::randn({2, 3}, xr)};
  std::vector<Tensor> ya, yb;
  a.forward(xs, ya);
  b.forward(xs, yb);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    EXPECT_TRUE(ya[t] == yb[t]);
  }
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  Rng rng(3);
  LstmLayer lstm(LstmConfig{2, 4, 0}, rng);
  // Bias layout is (i, f, g, o): entries [H, 2H) must be 1.
  const Param* bias = lstm.params()[2];
  ASSERT_EQ(bias->value.size(), 16);
  for (Index j = 4; j < 8; ++j) EXPECT_EQ(bias->value(j), 1.0f);
  for (Index j = 0; j < 4; ++j) EXPECT_EQ(bias->value(j), 0.0f);
}

TEST(Lstm, FlopsPerTokenScalesWithDimensions) {
  Rng rng(5);
  LstmLayer small(LstmConfig{64, 128, 0}, rng);
  LstmLayer big(LstmConfig{64, 256, 0}, rng);
  EXPECT_GT(big.flops_per_token(), small.flops_per_token());
}

TEST(Lstm, RejectsMismatchedBackward) {
  Rng rng(11);
  LstmLayer lstm(LstmConfig{2, 3, 0}, rng);
  std::vector<Tensor> xs{Tensor::randn({2, 2}, rng)};
  std::vector<Tensor> ys;
  lstm.forward(xs, ys);
  std::vector<Tensor> bad_douts;  // wrong step count
  std::vector<Tensor> dxs;
  EXPECT_THROW(lstm.backward(bad_douts, dxs), ConfigError);
}

}  // namespace
}  // namespace zipflm
