#include <gtest/gtest.h>

#include <cmath>

#include "zipflm/stats/metrics.hpp"
#include "zipflm/stats/powerlaw.hpp"
#include "zipflm/stats/table.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {
namespace {

TEST(PowerLaw, RecoversExactSyntheticLaw) {
  std::vector<double> x, y;
  for (double v = 10; v < 1e6; v *= 3) {
    x.push_back(v);
    y.push_back(7.02 * std::pow(v, 0.64));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.coefficient, 7.02, 1e-6);
  EXPECT_NEAR(fit.exponent, 0.64, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(100.0), 7.02 * std::pow(100.0, 0.64), 1e-6);
}

TEST(PowerLaw, RobustToMultiplicativeNoise) {
  Rng rng(3);
  std::vector<double> x, y;
  for (double v = 100; v < 1e7; v *= 2) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 0.5) * (1.0 + 0.05 * rng.normal()));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 0.5, 0.03);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(PowerLaw, RejectsNonPositiveData) {
  std::vector<double> x = {1, 2};
  std::vector<double> bad = {1, -1};
  EXPECT_THROW(fit_power_law(x, bad), ConfigError);
  std::vector<double> one = {1};
  EXPECT_THROW(fit_power_law(one, one), ConfigError);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x = {0, 1, 2, 3};
  std::vector<double> y = {1, 3, 5, 7};
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Metrics, PerplexityAndBpc) {
  EXPECT_NEAR(perplexity_from_nats(0.0), 1.0, 1e-12);
  EXPECT_NEAR(perplexity_from_nats(std::log(50.0)), 50.0, 1e-9);
  EXPECT_NEAR(bpc_from_nats(std::log(2.0)), 1.0, 1e-12);
  // Paper §V-C: perplexity 11.1 -> log2(11.1) ≈ 3.47 bpc... for the
  // Chinese corpus bits are per character of a 15k vocabulary.
  EXPECT_NEAR(bpc_from_perplexity(11.1), std::log2(11.1), 1e-12);
}

TEST(Metrics, CompressionRatioReproducesPaperNumbers) {
  // §V-C: bpc 1.11 on Amazon equates to a compression ratio of ~6.8
  // (40 GB corpus, ~38.76B characters, ~8 bits per raw byte).
  const double chars = 38.76e9;
  const double corpus_bytes = chars * 0.956;  // ~1 byte per char English
  const double ratio = compression_ratio(corpus_bytes, 1.11, chars);
  EXPECT_NEAR(ratio, 6.8, 0.3);
  // Tieba: perplexity 11.1 over 34.36B chars of a 93.12 GB corpus -> 6.3.
  const double tieba_ratio = compression_ratio(
      93.12e9, bpc_from_perplexity(11.1), 34.36e9);
  EXPECT_NEAR(tieba_ratio, 6.3, 0.4);
}

TEST(Metrics, ParallelEfficiency) {
  // Table III with-technique: 8 GPUs 14.6h -> 16 GPUs 8.1h = 90%.
  EXPECT_NEAR(parallel_efficiency(8, 14.6, 16, 8.1), 0.90, 0.01);
  // Perfect scaling.
  EXPECT_NEAR(parallel_efficiency(8, 10.0, 16, 5.0), 1.0, 1e-12);
  EXPECT_THROW(parallel_efficiency(0, 1.0, 2, 1.0), ConfigError);
}

TEST(Metrics, Speedup) {
  EXPECT_NEAR(speedup(35.1, 14.6), 2.404, 0.001);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"GPUs", "Time (h)"});
  t.add_row({"8", "14.6"});
  t.add_row({"64", "4.5"});
  const auto s = t.render();
  EXPECT_NE(s.find("| GPUs | Time (h) |"), std::string::npos);
  EXPECT_NE(s.find("| 64   | 4.5      |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ConfigError);
}

}  // namespace
}  // namespace zipflm
