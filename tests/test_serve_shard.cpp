// Sharded serving: routing determinism, single-shard bitwise parity
// with the plain Server, cross-shard stop()/drain semantics, the wire
// protocol, socket-frontend echo parity — and regression coverage for
// the three single-server bugs this layer depends on (bounded done
// store, per-instance metrics scopes, per-session serialized
// admission).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "zipflm/net/socket.hpp"
#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/serve/serve_client.hpp"
#include "zipflm/serve/server.hpp"
#include "zipflm/serve/sharded_server.hpp"
#include "zipflm/serve/socket_frontend.hpp"
#include "zipflm/serve/wire.hpp"

namespace zipflm::serve {
namespace {

CharLmConfig small_config(std::uint64_t seed = 3) {
  CharLmConfig cfg;
  cfg.vocab = 20;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 7;
  cfg.depth = 2;
  cfg.seed = seed;
  return cfg;
}

Request session_request(std::uint64_t session, std::vector<Index> context,
                        std::size_t new_tokens, std::uint64_t seed) {
  Request r;
  r.session_id = session;
  r.context = std::move(context);
  r.new_tokens = new_tokens;
  r.options.max_context = 64;
  r.seed = seed;
  return r;
}

/// N identical replicas of the small model (same config seed => same
/// weights), plus the raw pointers the ShardedServer wants.
struct Replicas {
  explicit Replicas(std::size_t n, std::uint64_t seed = 3) {
    for (std::size_t i = 0; i < n; ++i) {
      models.push_back(std::make_unique<CharLm>(small_config(seed)));
      raw.push_back(models.back().get());
    }
  }
  std::vector<std::unique_ptr<CharLm>> models;
  std::vector<LmModel*> raw;
};

// ---- regression: the three single-server bugs ----------------------

TEST(ServerRegression, DoneStoreIsBoundedAndSurfacesEvictions) {
  auto model = std::make_unique<CharLm>(small_config());
  ServeOptions opts;
  opts.done_capacity = 4;
  Server server(*model, opts);
  server.start();

  // Fire-and-forget: 12 requests, never collected.  The old server
  // retained every Response forever; now at most done_capacity survive.
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 12; ++i) {
    const Admission a = server.submit(
        session_request(100 + i, {1, 2, 3}, 4, 50 + i));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.request_id);
  }
  server.wait_idle();

  const ServeCounters c = server.counters();
  EXPECT_EQ(c.requests_completed, 12u);
  EXPECT_EQ(c.done_evictions, 8u);  // 12 finished - 4 retained

  // The evicted majority resolves as Expired — terminal, not a hang
  // and not "pending" — while the newest done_capacity still deliver.
  std::size_t ok = 0, expired = 0;
  for (const std::uint64_t id : ids) {
    Response r;
    ASSERT_TRUE(server.poll(id, r)) << "request " << id;
    if (r.status == ResponseStatus::Ok) ++ok;
    if (r.status == ResponseStatus::Expired) ++expired;
  }
  EXPECT_EQ(ok, opts.done_capacity);
  EXPECT_EQ(expired, 8u);

  // wait() on an evicted id must return Expired, not block forever.
  EXPECT_EQ(server.wait(ids.front()).status, ResponseStatus::Expired);
  // Never-issued ids still read as pending/unknown, not Expired.
  Response r;
  EXPECT_FALSE(server.poll(9999, r));
  server.stop();
}

TEST(ServerRegression, MetricsScopesIsolateInstancesAndAggregate) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset("scoped_a/");
  reg.reset("scoped_b/");
  reg.reset("scoped_agg/");

  auto model_a = std::make_unique<CharLm>(small_config());
  auto model_b = std::make_unique<CharLm>(small_config());
  ServeOptions opts_a;
  opts_a.metrics_scope = "scoped_a";
  opts_a.metrics_aggregate = "scoped_agg";
  ServeOptions opts_b;
  opts_b.metrics_scope = "scoped_b";
  opts_b.metrics_aggregate = "scoped_agg";
  Server a(*model_a, opts_a);
  Server b(*model_b, opts_b);
  a.start();
  b.start();
  a.wait(a.submit(session_request(1, {1, 2}, 3, 9)).request_id);
  a.wait(a.submit(session_request(2, {1, 2}, 3, 9)).request_id);
  b.wait(b.submit(session_request(1, {1, 2}, 3, 9)).request_id);
  a.stop();
  b.stop();

  // Each instance's counters are its own — the old global singleton
  // interleaved every server in the process into one "serve/" series.
  EXPECT_EQ(reg.counter("scoped_a/requests_completed").value(), 2u);
  EXPECT_EQ(reg.counter("scoped_b/requests_completed").value(), 1u);
  // Counters and histograms also book into the shared aggregate.
  EXPECT_EQ(reg.counter("scoped_agg/requests_completed").value(), 3u);
  EXPECT_EQ(reg.histogram("scoped_agg/request_seconds").count(), 3u);
  // Resetting one scope leaves the other alone.
  reg.reset("scoped_a/");
  EXPECT_EQ(reg.counter("scoped_a/requests_completed").value(), 0u);
  EXPECT_EQ(reg.counter("scoped_b/requests_completed").value(), 1u);
}

TEST(ServerRegression, DuplicateSessionRequestsSerialize) {
  auto model = std::make_unique<CharLm>(small_config());

  // Ground truth for the *second* request: the server replays its
  // context from scratch (the first request's finish makes the cached
  // fingerprint diverge), so its tokens equal batch-1 generation.
  const std::vector<Index> context = {1, 2, 3};
  GenerateOptions opt;
  opt.max_context = 64;
  Rng rng_a(41), rng_b(42);
  const auto expected_a = generate_tokens(*model, context, 8, opt, rng_a);
  const auto expected_b = generate_tokens(*model, context, 8, opt, rng_b);

  Server server(*model, ServeOptions{});
  // Both requests target session 7 and are queued before start(): the
  // old scheduler admitted both at once — two streams racing one cache
  // entry (the bug); now the second admits only after the first
  // finishes, and both come back deterministic.
  const Admission first =
      server.submit(session_request(7, context, 8, 41));
  const Admission second =
      server.submit(session_request(7, context, 8, 42));
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(second.accepted);
  server.start();
  const Response ra = server.wait(first.request_id);
  const Response rb = server.wait(second.request_id);
  server.stop();

  EXPECT_EQ(ra.status, ResponseStatus::Ok);
  EXPECT_EQ(rb.status, ResponseStatus::Ok);
  EXPECT_EQ(ra.tokens, expected_a);
  EXPECT_EQ(rb.tokens, expected_b);
  // Serialization kept FIFO across the *other* admissible sessions too:
  // nothing hung, and both requests of session 7 ran one after another.
  const ServeCounters c = server.counters();
  EXPECT_EQ(c.requests_completed, 2u);
}

// ---- sharded routing ------------------------------------------------

TEST(ShardedServerTest, RoutingIsDeterministicAndIdsDecode) {
  Replicas replicas(4);
  ShardedServeOptions opts;
  ShardedServer server(replicas.raw, opts);

  // Hash routing is a pure function of the session id.
  for (std::uint64_t sid = 1; sid <= 64; ++sid) {
    EXPECT_EQ(server.shard_of(sid), server.shard_of(sid));
    EXPECT_LT(server.shard_of(sid), server.shard_count());
  }

  server.start();
  std::vector<std::uint64_t> ids;
  std::vector<std::uint64_t> sids;
  for (std::uint64_t sid = 1; sid <= 16; ++sid) {
    const std::size_t expected_shard = server.shard_of(sid);
    const Admission a =
        server.submit(session_request(sid, {1, 2, 3}, 4, sid));
    ASSERT_TRUE(a.accepted);
    // Global ids self-route: id % shards names the admitting shard,
    // which for an uncontended submit is the session's home shard.
    EXPECT_EQ(a.request_id % server.shard_count(), expected_shard);
    EXPECT_GE(a.request_id, server.shard_count());  // 0 is never issued
    ids.push_back(a.request_id);
    sids.push_back(sid);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Response r = server.wait(ids[i]);
    EXPECT_EQ(r.status, ResponseStatus::Ok);
    EXPECT_EQ(r.request_id, ids[i]);
    EXPECT_EQ(r.session_id, sids[i]);
    // A warm session stays pinned where its cache entry lives.
    EXPECT_EQ(server.shard_of(sids[i]),
              static_cast<std::size_t>(ids[i] % server.shard_count()));
  }
  server.stop();
}

TEST(ShardedServerTest, SingleShardMatchesPlainServerBitwise) {
  auto reference_model = std::make_unique<CharLm>(small_config());
  Replicas replicas(1);

  constexpr std::size_t kSessions = 5;
  constexpr std::size_t kNewTokens = 9;
  std::vector<std::vector<Index>> contexts;
  for (std::size_t s = 0; s < kSessions; ++s) {
    contexts.push_back({static_cast<Index>(1 + s), 2, 3});
  }

  // Plain PR-1 server.
  Server plain(*reference_model, ServeOptions{});
  plain.start();
  std::vector<std::vector<Index>> plain_tokens;
  for (std::size_t s = 0; s < kSessions; ++s) {
    const Admission a = plain.submit(
        session_request(s + 1, contexts[s], kNewTokens, 300 + s));
    ASSERT_TRUE(a.accepted);
    plain_tokens.push_back(plain.wait(a.request_id).tokens);
  }
  plain.stop();

  // One-shard sharded server, same submissions.
  ShardedServeOptions opts;
  ShardedServer sharded(replicas.raw, opts);
  sharded.start();
  for (std::size_t s = 0; s < kSessions; ++s) {
    const Admission a = sharded.submit(
        session_request(s + 1, contexts[s], kNewTokens, 300 + s));
    ASSERT_TRUE(a.accepted);
    EXPECT_EQ(sharded.wait(a.request_id).tokens, plain_tokens[s])
        << "session " << s + 1;
  }
  sharded.stop();
}

TEST(ShardedServerTest, StopDrainsEveryShard) {
  Replicas replicas(3);
  ShardedServeOptions opts;
  ShardedServer server(replicas.raw, opts);

  // Queue work on every shard before any scheduler runs, then start
  // and immediately stop: drain semantics must finish all of it Ok.
  std::vector<std::uint64_t> ids;
  for (std::uint64_t sid = 1; sid <= 24; ++sid) {
    const Admission a =
        server.submit(session_request(sid, {1, 2, 3}, 6, sid));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.request_id);
  }
  server.start();
  server.stop();
  for (const std::uint64_t id : ids) {
    Response r;
    ASSERT_TRUE(server.poll(id, r)) << "request " << id << " unresolved";
    EXPECT_EQ(r.status, ResponseStatus::Ok);
    EXPECT_EQ(r.tokens.size(), 3u + 6u);
  }
  const ServeCounters total = server.counters();
  EXPECT_EQ(total.requests_completed, 24u);
  EXPECT_EQ(total.requests_failed, 0u);
}

TEST(ShardedServerTest, FailFastStopResolvesAcrossShards) {
  Replicas replicas(2);
  ShardedServeOptions opts;
  opts.server.drain_on_stop = false;
  ShardedServer server(replicas.raw, opts);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t sid = 1; sid <= 12; ++sid) {
    const Admission a =
        server.submit(session_request(sid, {1, 2, 3}, 40, sid));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.request_id);
  }
  server.start();
  server.stop();  // fail fast: nothing may be left unresolved
  std::size_t failed = 0;
  for (const std::uint64_t id : ids) {
    Response r;
    ASSERT_TRUE(server.poll(id, r)) << "request " << id << " unresolved";
    if (r.status == ResponseStatus::FailedShutdown) ++failed;
  }
  EXPECT_GT(failed, 0u);  // 12 x 40-token streams cannot finish in time
}

TEST(ShardedServerTest, ColdSessionsStealAwayFromFullShards) {
  Replicas replicas(2);
  ShardedServeOptions opts;
  opts.server.queue_depth = 2;
  ShardedServer server(replicas.raw, opts);  // never started: queues only

  // Pick four cold sessions that all hash home to shard 0 (collected
  // before any submit so the routes are still pure hashes).  The first
  // two fill shard 0's queue; the next two must be stolen onto shard 1
  // instead of rejected.
  std::vector<std::uint64_t> same_home;
  for (std::uint64_t sid = 1; same_home.size() < 4; ++sid) {
    ASSERT_LT(sid, 1000u) << "hash never maps four sessions to shard 0";
    if (server.shard_of(sid) == 0) same_home.push_back(sid);
  }
  for (const std::uint64_t sid : same_home) {
    ASSERT_TRUE(server.submit(session_request(sid, {1, 2}, 2, sid)).accepted)
        << "session " << sid;
  }
  EXPECT_EQ(server.shard_queue_size(0), 2u);
  EXPECT_EQ(server.shard_queue_size(1), 2u);
  EXPECT_EQ(server.steals(), 2u);
  // Every queue full: the 5th cold session is rejected with a hint.
  const Admission rejected =
      server.submit(session_request(77, {1, 2}, 2, 1));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_GT(rejected.retry_after_seconds, 0.0);
}

// ---- wire protocol --------------------------------------------------

TEST(ServeWireTest, FramesRoundTrip) {
  Request req;
  req.session_id = 42;
  req.context = {1, 2, 3, 4};
  req.new_tokens = 7;
  req.options.temperature = 0.75;
  req.options.max_context = 96;
  req.options.top_k = 5;
  req.seed = 1234;
  const Request back = wire::decode_submit(wire::encode_submit(req));
  EXPECT_EQ(back.session_id, req.session_id);
  EXPECT_EQ(back.context, req.context);
  EXPECT_EQ(back.new_tokens, req.new_tokens);
  EXPECT_EQ(back.options.temperature, req.options.temperature);
  EXPECT_EQ(back.options.max_context, req.options.max_context);
  EXPECT_EQ(back.options.top_k, req.options.top_k);
  EXPECT_EQ(back.seed, req.seed);

  Admission adm;
  adm.accepted = true;
  adm.request_id = 99;
  adm.queue_depth = 3;
  adm.retry_after_seconds = 0.25;
  const Admission adm_back =
      wire::decode_admission(wire::encode_admission(adm));
  EXPECT_EQ(adm_back.accepted, adm.accepted);
  EXPECT_EQ(adm_back.request_id, adm.request_id);
  EXPECT_EQ(adm_back.queue_depth, adm.queue_depth);
  EXPECT_EQ(adm_back.retry_after_seconds, adm.retry_after_seconds);

  Response resp;
  resp.request_id = 99;
  resp.session_id = 42;
  resp.status = ResponseStatus::Expired;
  resp.tokens = {9, 8, 7};
  resp.cache_hit = true;
  resp.queue_seconds = 0.5;
  resp.total_seconds = 1.5;
  const Response resp_back =
      wire::decode_response(wire::encode_response(resp));
  EXPECT_EQ(resp_back.request_id, resp.request_id);
  EXPECT_EQ(resp_back.session_id, resp.session_id);
  EXPECT_EQ(resp_back.status, resp.status);
  EXPECT_EQ(resp_back.tokens, resp.tokens);
  EXPECT_EQ(resp_back.cache_hit, resp.cache_hit);
  EXPECT_EQ(resp_back.queue_seconds, resp.queue_seconds);
  EXPECT_EQ(resp_back.total_seconds, resp.total_seconds);

  EXPECT_EQ(wire::frame_type(wire::encode_bye()), wire::FrameType::Bye);
}

TEST(ServeWireTest, MalformedFramesAreProtocolErrors) {
  EXPECT_THROW(wire::frame_type({}), net::ProtocolError);
  std::vector<std::byte> junk = {std::byte{200}};
  EXPECT_THROW(wire::frame_type(junk), net::ProtocolError);

  // Truncated submit: chop the tail off a valid frame.
  auto frame = wire::encode_submit(session_request(1, {1, 2, 3}, 4, 5));
  frame.resize(frame.size() - 3);
  EXPECT_THROW(wire::decode_submit(frame), net::ProtocolError);
  // Trailing garbage is rejected too.
  auto padded = wire::encode_bye();
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)wire::decode_submit(padded), net::ProtocolError);
}

// ---- socket frontend ------------------------------------------------

TEST(SocketFrontendTest, WireResponsesMatchInProcessServer) {
  // Ground truth from the in-process facade.
  auto reference_model = std::make_unique<CharLm>(small_config());
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kNewTokens = 6;
  std::vector<std::vector<Index>> contexts, expected;
  Server plain(*reference_model, ServeOptions{});
  plain.start();
  for (std::size_t s = 0; s < kSessions; ++s) {
    contexts.push_back({static_cast<Index>(2 + s), 3, 4});
    const Admission a = plain.submit(
        session_request(s + 1, contexts[s], kNewTokens, 500 + s));
    ASSERT_TRUE(a.accepted);
    expected.push_back(plain.wait(a.request_id).tokens);
  }
  plain.stop();

  // Same requests through rank 1 of a real socket world into a
  // 2-shard server (identical replicas): tokens must be bitwise equal.
  Replicas replicas(2);
  ShardedServeOptions opts;
  ShardedServer sharded(replicas.raw, opts);
  sharded.start();
  auto world = net::socketpair_mesh(2);
  SocketFrontend frontend(*world[0], sharded);
  std::thread frontend_thread([&] { frontend.run(); });
  {
    ServeClient client(*world[1], /*server_rank=*/0);
    std::vector<std::uint64_t> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      const Admission a = client.submit(
          session_request(s + 1, contexts[s], kNewTokens, 500 + s));
      ASSERT_TRUE(a.accepted);
      ids.push_back(a.request_id);
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      const Response r = client.wait(ids[s]);
      EXPECT_EQ(r.status, ResponseStatus::Ok);
      EXPECT_EQ(r.session_id, s + 1);
      EXPECT_EQ(r.tokens, expected[s]) << "session " << s + 1;
    }
    client.bye();
  }
  frontend_thread.join();
  const FrontendStats& fs = frontend.stats();
  EXPECT_EQ(fs.submits, kSessions);
  EXPECT_EQ(fs.accepts, kSessions);
  EXPECT_EQ(fs.frames_sent, 2 * kSessions);  // admissions + responses
  sharded.stop();
}

TEST(SocketFrontendTest, DeadClientDoesNotWedgeTheFrontend) {
  Replicas replicas(1);
  ShardedServeOptions opts;
  ShardedServer sharded(replicas.raw, opts);
  sharded.start();
  auto world = net::socketpair_mesh(2);
  SocketFrontend frontend(*world[0], sharded);
  std::thread frontend_thread([&] { frontend.run(); });
  {
    ServeClient client(*world[1], /*server_rank=*/0);
    const Admission a =
        client.submit(session_request(1, {1, 2, 3}, 4, 9));
    ASSERT_TRUE(a.accepted);
    // No wait(), no bye(): the client vanishes mid-request.
  }
  world[1]->close();
  // The frontend must notice the dead peer, discard the orphaned
  // response, and drain — not spin forever.
  frontend_thread.join();
  EXPECT_EQ(frontend.stats().orphaned_responses, 1u);
  sharded.stop();
}

}  // namespace
}  // namespace zipflm::serve
