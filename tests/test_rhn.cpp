// Finite-difference verification of the Recurrent Highway Network BPTT.
#include <gtest/gtest.h>

#include "zipflm/nn/gradcheck.hpp"
#include "zipflm/nn/rhn.hpp"

namespace zipflm {
namespace {

double sum_sq(const std::vector<Tensor>& ys) {
  double acc = 0.0;
  for (const auto& y : ys) {
    for (float v : y.data()) acc += 0.5 * static_cast<double>(v) * v;
  }
  return acc;
}

std::vector<Tensor> loss_grads(const std::vector<Tensor>& ys) {
  std::vector<Tensor> d(ys.begin(), ys.end());
  return d;
}

struct RhnCase {
  Index input_dim;
  Index hidden;
  Index depth;
  Index batch;
  Index steps;
};

class RhnGradCheck : public ::testing::TestWithParam<RhnCase> {};

INSTANTIATE_TEST_SUITE_P(Shapes, RhnGradCheck,
                         ::testing::Values(RhnCase{3, 4, 1, 2, 2},
                                           RhnCase{2, 3, 2, 2, 2},
                                           RhnCase{2, 4, 3, 1, 3},
                                           RhnCase{4, 2, 4, 2, 2},
                                           RhnCase{3, 3, 2, 3, 4}));

TEST_P(RhnGradCheck, ParameterAndInputGradientsMatchFiniteDifferences) {
  const auto c = GetParam();
  Rng rng(17);
  RhnLayer rhn(RhnConfig{c.input_dim, c.hidden, c.depth}, rng);

  std::vector<Tensor> xs;
  for (Index t = 0; t < c.steps; ++t) {
    xs.push_back(Tensor::randn({c.batch, c.input_dim}, rng, 0.5f));
  }

  auto loss_fn = [&] {
    std::vector<Tensor> ys;
    rhn.forward(xs, ys);
    return sum_sq(ys);
  };

  std::vector<Tensor> ys;
  rhn.forward(xs, ys);
  rhn.zero_grad();
  std::vector<Tensor> dxs;
  rhn.backward(loss_grads(ys), dxs);

  for (Param* p : rhn.params()) {
    const auto result = grad_check(p->value, p->grad, loss_fn, 3e-3);
    EXPECT_TRUE(result.passed(4e-2))
        << p->name << " rel err " << result.max_rel_error << " at "
        << result.worst_index;
  }
  for (Index t = 0; t < c.steps; ++t) {
    const auto result = grad_check(xs[static_cast<std::size_t>(t)],
                                   dxs[static_cast<std::size_t>(t)], loss_fn,
                                   3e-3);
    EXPECT_TRUE(result.passed(4e-2))
        << "input step " << t << " rel err " << result.max_rel_error;
  }
}

TEST(Rhn, DepthIncreasesParameterCount) {
  Rng rng(5);
  RhnLayer d1(RhnConfig{4, 8, 1}, rng);
  RhnLayer d10(RhnConfig{4, 8, 10}, rng);
  EXPECT_GT(d10.params().size(), d1.params().size());
  // 2 input mats + 4 per depth.
  EXPECT_EQ(d1.params().size(), 2u + 4u);
  EXPECT_EQ(d10.params().size(), 2u + 40u);
}

TEST(Rhn, CarryBiasStartsNegative) {
  Rng rng(5);
  RhnLayer rhn(RhnConfig{2, 3, 2}, rng);
  // Transform-gate biases (params index 5, 9 ... name rhn.bt.*) = -2.
  for (Param* p : rhn.params()) {
    if (p->name.find("rhn.bt") == 0) {
      for (float v : p->value.data()) EXPECT_EQ(v, -2.0f);
    }
  }
}

TEST(Rhn, OutputShapeIsHidden) {
  Rng rng(5);
  RhnLayer rhn(RhnConfig{3, 7, 2}, rng);
  std::vector<Tensor> xs{Tensor::randn({4, 3}, rng)};
  std::vector<Tensor> ys;
  rhn.forward(xs, ys);
  EXPECT_EQ(ys[0].rows(), 4);
  EXPECT_EQ(ys[0].cols(), 7);
}

TEST(Rhn, FlopsGrowLinearlyWithDepth) {
  Rng rng(5);
  RhnLayer d2(RhnConfig{8, 16, 2}, rng);
  RhnLayer d4(RhnConfig{8, 16, 4}, rng);
  const double delta = d4.flops_per_token() - d2.flops_per_token();
  // Adding 2 depths adds exactly 2 * (2 H^2 MACs * 6) FLOPs.
  EXPECT_NEAR(delta, 2.0 * 2.0 * 16.0 * 16.0 * 6.0, 1e-6);
}

}  // namespace
}  // namespace zipflm
