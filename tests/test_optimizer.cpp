#include <gtest/gtest.h>

#include <cmath>

#include "zipflm/nn/optimizer.hpp"

namespace zipflm {
namespace {

Param make_param(std::initializer_list<float> values) {
  Tensor t({static_cast<Index>(values.size())});
  Index i = 0;
  for (float v : values) t(i++) = v;
  return Param("p", std::move(t));
}

TEST(Sgd, DenseStepDescends) {
  Param p = make_param({1.0f, -2.0f});
  p.grad(0) = 0.5f;
  p.grad(1) = -0.5f;
  Sgd sgd(0.1f);
  Param* ps[] = {&p};
  sgd.step(ps);
  EXPECT_NEAR(p.value(0), 0.95f, 1e-6f);
  EXPECT_NEAR(p.value(1), -1.95f, 1e-6f);
}

TEST(Sgd, ClipLimitsGradient) {
  Param p = make_param({0.0f});
  p.grad(0) = 100.0f;
  Sgd sgd(1.0f, /*clip=*/1.0f);
  Param* ps[] = {&p};
  sgd.step(ps);
  EXPECT_NEAR(p.value(0), -1.0f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinks) {
  Param p = make_param({2.0f});
  Sgd sgd(0.5f, 0.0f, /*weight_decay=*/0.1f);
  Param* ps[] = {&p};
  sgd.step(ps);  // grad 0: update = -lr * wd * w = -0.1
  EXPECT_NEAR(p.value(0), 1.9f, 1e-6f);
}

TEST(Sgd, RowStepTouchesOnlyGivenRows) {
  Param table("t", Tensor::full({4, 2}, 1.0f));
  Tensor rows({2, 2});
  rows.fill(1.0f);
  const std::vector<Index> ids = {1, 3};
  Sgd sgd(0.5f);
  sgd.step_rows(table, rows, ids);
  EXPECT_EQ(table.value(0, 0), 1.0f);
  EXPECT_EQ(table.value(1, 0), 0.5f);
  EXPECT_EQ(table.value(2, 0), 1.0f);
  EXPECT_EQ(table.value(3, 1), 0.5f);
}

TEST(Sgd, RowStepEquivalentToDenseWithScatteredGrad) {
  Rng rng(3);
  Param dense("d", Tensor::randn({6, 3}, rng));
  Param sparse("s", dense.value);
  Tensor rows = Tensor::randn({2, 3}, rng);
  const std::vector<Index> ids = {4, 0};
  // Dense path: scatter rows into grad then step.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (Index j = 0; j < 3; ++j) {
      dense.grad(ids[i], j) = rows(static_cast<Index>(i), j);
    }
  }
  Sgd sgd(0.2f);
  Param* dp[] = {&dense};
  sgd.step(dp);
  sgd.step_rows(sparse, rows, ids);
  EXPECT_TRUE(dense.value == sparse.value);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize f(w) = 0.5*(w-3)^2; grad = w-3.
  Param p = make_param({0.0f});
  Adam::Config cfg;
  cfg.lr = 0.1f;
  Adam adam(cfg);
  Param* ps[] = {&p};
  for (int i = 0; i < 500; ++i) {
    adam.begin_step();
    p.grad(0) = p.value(0) - 3.0f;
    adam.step(ps);
  }
  EXPECT_NEAR(p.value(0), 3.0f, 0.05f);
}

TEST(Adam, RowStepMatchesDenseWhenGradIsSparse) {
  Rng rng(9);
  Param dense("d", Tensor::randn({5, 2}, rng));
  Param sparse("s", dense.value);
  Adam::Config cfg;
  Adam adam_dense(cfg), adam_sparse(cfg);

  // Rows must be touched on EVERY step for dense/sparse agreement:
  // dense Adam decays the moments of untouched rows each step while
  // sparse Adam freezes them.
  const std::vector<Index> ids = {1, 3};
  for (int step = 0; step < 5; ++step) {
    Tensor rows = Tensor::randn({2, 2}, rng);
    dense.zero_grad();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (Index j = 0; j < 2; ++j) {
        dense.grad(ids[i], j) += rows(static_cast<Index>(i), j);
      }
    }
    adam_dense.begin_step();
    Param* dp[] = {&dense};
    adam_dense.step(dp);

    adam_sparse.begin_step();
    adam_sparse.step_rows(sparse, rows, ids);

    // Rows touched this step must match exactly.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (Index j = 0; j < 2; ++j) {
        EXPECT_NEAR(dense.value(ids[i], j), sparse.value(ids[i], j), 1e-6f)
            << "step " << step;
      }
    }
  }
}

TEST(Adam, BiasCorrectionMakesFirstStepLrSized) {
  Param p = make_param({0.0f});
  Adam::Config cfg;
  cfg.lr = 0.01f;
  Adam adam(cfg);
  adam.begin_step();
  p.grad(0) = 123.0f;  // any gradient: first step is ~lr in magnitude
  Param* ps[] = {&p};
  adam.step(ps);
  EXPECT_NEAR(p.value(0), -0.01f, 1e-4f);
}

TEST(LearningRateSchedule, MatchesPaperFormula) {
  // base 0.2, 8 nodes (64 GPUs): 0.2 * ln(8) = 0.416.
  EXPECT_NEAR(scaled_learning_rate(0.2f, 8), 0.2f * std::log(8.0f), 1e-6f);
  // One node: no scaling.
  EXPECT_NEAR(scaled_learning_rate(0.2f, 1), 0.2f, 1e-6f);
  // Decay: epoch 2 at 0.9.
  EXPECT_NEAR(scaled_learning_rate(0.2f, 1, 2, 0.9f), 0.2f * 0.81f, 1e-6f);
}

}  // namespace
}  // namespace zipflm
