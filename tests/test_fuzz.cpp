// Randomized property tests: collectives against sequential references,
// exchange equivalence over random shapes, end-to-end training
// determinism.
#include <gtest/gtest.h>

#include <map>

#include "zipflm/comm/hierarchical.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/markov.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {
namespace {

TEST(Fuzz, RandomCollectiveSequencesMatchReferences) {
  Rng meta(0xF022);
  for (int trial = 0; trial < 12; ++trial) {
    const int g = 1 + static_cast<int>(meta.uniform_index(8));
    const int ops = 2 + static_cast<int>(meta.uniform_index(4));
    // Pre-draw the op schedule and inputs so every rank agrees.
    struct OpPlan {
      int kind;  // 0 sum, 1 max, 2 gather, 3 bcast
      std::size_t n;
      int root;
    };
    std::vector<OpPlan> plan;
    for (int o = 0; o < ops; ++o) {
      plan.push_back({static_cast<int>(meta.uniform_index(4)),
                      1 + meta.uniform_index(200),
                      static_cast<int>(meta.uniform_index(
                          static_cast<std::uint64_t>(g)))});
    }
    const std::uint64_t data_seed = meta();

    // Reference: per-op expected outputs.
    auto rank_input = [&](int op, int r, std::size_t n) {
      std::vector<float> v(n);
      Rng rng(data_seed ^ (static_cast<std::uint64_t>(op) << 32) ^
              static_cast<std::uint64_t>(r));
      for (auto& x : v) x = static_cast<float>(rng.uniform(-3.0, 3.0));
      return v;
    };

    CommWorld world(g);
    world.run([&](Communicator& comm) {
      for (int o = 0; o < ops; ++o) {
        const auto& p = plan[static_cast<std::size_t>(o)];
        auto mine = rank_input(o, comm.rank(), p.n);
        switch (p.kind) {
          case 0: {
            comm.allreduce_sum(std::span<float>(mine));
            for (std::size_t i = 0; i < p.n; ++i) {
              double expect = 0.0;
              for (int r = 0; r < g; ++r) expect += rank_input(o, r, p.n)[i];
              ASSERT_NEAR(mine[i], expect, 1e-3) << "sum op " << o;
            }
            break;
          }
          case 1: {
            comm.allreduce_max(std::span<float>(mine));
            for (std::size_t i = 0; i < p.n; ++i) {
              float expect = -1e30f;
              for (int r = 0; r < g; ++r) {
                expect = std::max(expect, rank_input(o, r, p.n)[i]);
              }
              ASSERT_EQ(mine[i], expect) << "max op " << o;
            }
            break;
          }
          case 2: {
            std::vector<float> out;
            comm.allgather(std::span<const float>(mine), out);
            for (int r = 0; r < g; ++r) {
              const auto expect = rank_input(o, r, p.n);
              for (std::size_t i = 0; i < p.n; ++i) {
                ASSERT_EQ(out[static_cast<std::size_t>(r) * p.n + i],
                          expect[i])
                    << "gather op " << o;
              }
            }
            break;
          }
          default: {
            auto data = rank_input(o, p.root, p.n);
            if (comm.rank() != p.root) {
              std::fill(data.begin(), data.end(), 0.0f);
            }
            comm.broadcast(std::span<float>(data), p.root);
            const auto expect = rank_input(o, p.root, p.n);
            ASSERT_EQ(data, expect) << "bcast op " << o;
            break;
          }
        }
      }
    });
  }
}

TEST(Fuzz, ExchangeEquivalenceOverRandomShapes) {
  Rng meta(0xE5C0);
  for (int trial = 0; trial < 10; ++trial) {
    const int g = 1 + static_cast<int>(meta.uniform_index(6));
    const std::size_t k = 1 + meta.uniform_index(60);
    const Index d = 1 + static_cast<Index>(meta.uniform_index(12));
    const Index vocab = 2 + static_cast<Index>(meta.uniform_index(80));
    const std::uint64_t seed = meta();

    auto inputs = [&](int r) {
      Rng rng(seed + static_cast<std::uint64_t>(r));
      std::vector<Index> ids(k);
      for (auto& id : ids) {
        id = static_cast<Index>(
            rng.uniform_index(static_cast<std::uint64_t>(vocab)));
      }
      Tensor delta({static_cast<Index>(k), d});
      for (float& v : delta.data()) {
        v = static_cast<float>(static_cast<int>(rng.uniform_index(9)) - 4);
      }
      return std::pair{ids, delta};
    };

    std::map<int, std::pair<std::vector<Index>, Tensor>> results;
    for (const int which : {0, 1, 2}) {  // dense, unique, table
      CommWorld world(g);
      world.run([&](Communicator& comm) {
        auto [ids, delta] = inputs(comm.rank());
        std::vector<Index> out_ids;
        Tensor out_rows;
        if (which == 0) {
          DenseExchange ex;
          ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
        } else if (which == 1) {
          UniqueExchange ex;
          ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
        } else {
          TableAllreduceExchange ex(vocab);
          ex.exchange(comm, ids, delta, out_ids, out_rows, nullptr);
        }
        if (comm.rank() == 0) {
          results[which] = {out_ids, out_rows};
        }
      });
    }
    // Integer-valued gradients: all three strategies agree bit-exactly.
    ASSERT_EQ(results[1].first, results[0].first) << "trial " << trial;
    ASSERT_TRUE(results[1].second == results[0].second) << "trial " << trial;
    ASSERT_EQ(results[2].first, results[0].first) << "trial " << trial;
    ASSERT_TRUE(results[2].second == results[0].second) << "trial " << trial;
  }
}

TEST(Fuzz, HierarchicalAllreduceRandomTopologies) {
  Rng meta(0x41E2);
  for (int trial = 0; trial < 8; ++trial) {
    const int nodes = 1 + static_cast<int>(meta.uniform_index(4));
    const int gpn = 1 + static_cast<int>(meta.uniform_index(4));
    const std::size_t n = 1 + meta.uniform_index(300);
    const int g = nodes * gpn;
    CommWorld::Options o;
    o.topo = Topology{nodes, gpn};
    o.topo_set = true;
    CommWorld world(g, o);
    world.run([&](Communicator& comm) {
      std::vector<float> data(n,
                              static_cast<float>(comm.rank() + 1));
      hierarchical_allreduce_sum(comm, std::span<float>(data));
      const float expect = static_cast<float>(g) * (g + 1) / 2.0f;
      for (float v : data) ASSERT_EQ(v, expect);
    });
  }
}

TEST(Determinism, TwoIdenticalTrainingRunsAgreeBitwise) {
  const Index vocab = 50;
  const BigramCorpus corpus(vocab, 8, 77);
  const auto train = corpus.generate(6000, 0);
  const auto valid = corpus.generate(800, 1);

  auto run_once = [&] {
    CommWorld world(3);
    TrainerOptions opt;
    opt.batch = BatchSpec{2, 8};
    opt.samples_per_rank = 10;
    opt.seed_policy = SeedPolicy::ZipfFreq;
    opt.base_lr = 0.2f;
    opt.clip = 5.0f;
    opt.charge_static_memory = false;
    DistributedTrainer trainer(
        world,
        [vocab](int) -> std::unique_ptr<LmModel> {
          WordLmConfig cfg;
          cfg.vocab = vocab;
          cfg.embed_dim = 6;
          cfg.hidden_dim = 8;
          cfg.proj_dim = 6;
          cfg.seed = 31;
          return std::make_unique<WordLm>(cfg);
        },
        opt);
    const auto stats = trainer.run_epoch(train, valid, 0);
    return std::pair{stats.train_loss, stats.valid_loss};
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first) << "training must be bitwise deterministic";
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, HierarchicalDenseSyncTrainsEquivalently) {
  const Index vocab = 40;
  const BigramCorpus corpus(vocab, 6, 9);
  const auto train = corpus.generate(5000, 0);
  const auto valid = corpus.generate(600, 1);

  double losses[2];
  for (const bool hier : {false, true}) {
    CommWorld::Options o;
    o.topo = Topology{2, 2};
    o.topo_set = true;
    CommWorld world(4, o);
    TrainerOptions opt;
    opt.batch = BatchSpec{2, 8};
    opt.hierarchical_dense_sync = hier;
    opt.base_lr = 0.1f;
    opt.clip = 5.0f;
    opt.charge_static_memory = false;
    DistributedTrainer trainer(
        world,
        [vocab](int) -> std::unique_ptr<LmModel> {
          CharLmConfig cfg;
          cfg.vocab = vocab;
          cfg.embed_dim = 6;
          cfg.hidden_dim = 8;
          cfg.depth = 2;
          cfg.seed = 13;
          return std::make_unique<CharLm>(cfg);
        },
        opt);
    const auto stats = trainer.run_epoch(train, valid, 0);
    EXPECT_TRUE(trainer.replicas_in_sync());
    losses[hier ? 1 : 0] = stats.valid_loss;
  }
  // Different reduction trees only: near-identical training outcome.
  EXPECT_NEAR(losses[0], losses[1], 5e-3);
}

}  // namespace
}  // namespace zipflm
