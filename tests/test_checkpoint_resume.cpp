// Exact resume: an interrupted-and-restored run must be bitwise
// identical to one that never stopped — same losses, same weights, same
// optimizer moments, same dropout masks.  Plus the failure modes: a
// truncated, bit-flipped, renamed-parameter, or wrong-version file must
// be rejected loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "zipflm/core/checkpoint.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/corpus.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/support/serialize.hpp"

namespace zipflm {
namespace {

std::vector<Index> tiny_corpus(Index vocab, std::size_t n,
                               std::uint64_t seed) {
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.1);
  Rng rng(seed);
  std::vector<Index> ids(n);
  for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
  return ids;
}

TrainerOptions tiny_options() {
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 6};
  opt.base_lr = 0.2f;
  opt.lr_decay = 1.0f;
  opt.clip = 5.0f;
  opt.charge_static_memory = false;
  return opt;
}

// Dropout is on so exact resume must also replay the RNG streams: a
// restored run that re-seeded dropout would diverge within one step.
DistributedTrainer::ModelFactory word_factory(Index vocab) {
  return [vocab](int /*rank*/) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 12;
    cfg.proj_dim = 8;
    cfg.dropout = 0.1f;
    cfg.seed = 1234;
    return std::make_unique<WordLm>(cfg);
  };
}

DistributedTrainer::ModelFactory char_factory(Index vocab) {
  return [vocab](int /*rank*/) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 10;
    cfg.depth = 2;
    cfg.dropout = 0.1f;
    cfg.seed = 99;
    return std::make_unique<CharLm>(cfg);
  };
}

bool params_bit_identical(LmModel& a, LmModel& b) {
  const auto pa = a.all_params();
  const auto pb = b.all_params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const auto da = pa[i]->value.data();
    const auto db = pb[i]->value.data();
    if (da.size() != db.size()) return false;
    if (std::memcmp(da.data(), db.data(), da.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

// Runs `epochs` epochs uninterrupted, returns per-epoch stats.
std::vector<EpochStats> run_straight(DistributedTrainer& trainer,
                                     std::span<const Index> train,
                                     std::span<const Index> valid,
                                     int first_epoch, int epochs) {
  std::vector<EpochStats> out;
  for (int e = first_epoch; e < first_epoch + epochs; ++e) {
    out.push_back(trainer.run_epoch(train, valid, e));
  }
  return out;
}

TEST(CheckpointResume, WordLmResumeIsBitwiseIdenticalToStraightRun) {
  const Index vocab = 60;
  const auto train = tiny_corpus(vocab, 3000, 3);
  const auto valid = tiny_corpus(vocab, 600, 4);

  TrainerOptions opt = tiny_options();
  opt.samples_per_rank = 16;
  opt.seed_policy = SeedPolicy::ZipfFreq;
  opt.base_lr = 0.3f;

  // Reference: 4 epochs, never interrupted.
  CommWorld world_a(2);
  DistributedTrainer straight(world_a, word_factory(vocab), opt);
  const auto want = run_straight(straight, train, valid, 0, 4);

  // "Crash" after epoch 2: save the full state, throw the trainer away.
  CommWorld world_b(2);
  DistributedTrainer before(world_b, word_factory(vocab), opt);
  run_straight(before, train, valid, 0, 2);
  std::stringstream ckpt(std::ios::in | std::ios::out | std::ios::binary);
  before.save_state(ckpt);
  const std::uint64_t step_at_save = before.global_step();

  // Fresh process: new world, new trainer, restore, continue.
  CommWorld world_c(2);
  DistributedTrainer resumed(world_c, word_factory(vocab), opt);
  resumed.restore_state(ckpt);
  EXPECT_EQ(resumed.global_step(), step_at_save);
  EXPECT_EQ(resumed.epochs_completed(), 2u);
  EXPECT_TRUE(resumed.replicas_in_sync());

  const auto got = run_straight(resumed, train, valid, 2, 2);
  ASSERT_EQ(got.size(), 2u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].train_loss, want[i + 2].train_loss)
        << "epoch " << i + 2 << " train loss diverged after resume";
    EXPECT_EQ(got[i].valid_loss, want[i + 2].valid_loss)
        << "epoch " << i + 2 << " valid loss diverged after resume";
  }
  EXPECT_EQ(resumed.global_step(), straight.global_step());
  EXPECT_TRUE(params_bit_identical(straight.model(0), resumed.model(0)));
}

TEST(CheckpointResume, CharLmFp16AdamResumeViaFileIsBitwiseIdentical) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 3000, 1);
  const auto valid = tiny_corpus(vocab, 600, 2);

  TrainerOptions opt = tiny_options();
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  opt.wire = WirePrecision::FP16;
  opt.dynamic_loss_scale = true;  // scaler state must survive the resume

  CommWorld world_a(2);
  DistributedTrainer straight(world_a, char_factory(vocab), opt);
  const auto want = run_straight(straight, train, valid, 0, 4);

  const std::string path = ::testing::TempDir() + "zipflm_resume_char.ckpt";
  CommWorld world_b(2);
  DistributedTrainer before(world_b, char_factory(vocab), opt);
  run_straight(before, train, valid, 0, 2);
  before.save_state_file(path);
  // Atomic save: the temp file must not outlive a successful rename.
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());

  CommWorld world_c(2);
  DistributedTrainer resumed(world_c, char_factory(vocab), opt);
  resumed.restore_state_file(path);
  const auto got = run_straight(resumed, train, valid, 2, 2);
  ASSERT_EQ(got.size(), 2u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].train_loss, want[i + 2].train_loss);
    EXPECT_EQ(got[i].valid_loss, want[i + 2].valid_loss);
  }
  EXPECT_TRUE(params_bit_identical(straight.model(1), resumed.model(1)));
  std::remove(path.c_str());
}

TEST(CheckpointResume, SaveOverwritesAtomically) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 600, 7);
  const auto valid = tiny_corpus(vocab, 200, 8);

  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  DistributedTrainer trainer(world, char_factory(vocab), opt);
  trainer.run_epoch(train, valid, 0);

  const std::string path = ::testing::TempDir() + "zipflm_atomic.ckpt";
  {  // Pre-existing garbage at the destination must not confuse save.
    std::ofstream junk(path, std::ios::binary | std::ios::trunc);
    junk << "not a checkpoint";
  }
  trainer.save_state_file(path);
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());

  CommWorld world2(2);
  DistributedTrainer fresh(world2, char_factory(vocab), opt);
  fresh.restore_state_file(path);  // must parse cleanly
  EXPECT_EQ(fresh.global_step(), trainer.global_step());
  std::remove(path.c_str());
}

TEST(CheckpointResume, WeightsOnlyCheckpointCannotResume) {
  const Index vocab = 30;
  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.use_adam = true;
  DistributedTrainer trainer(world, char_factory(vocab), opt);

  // A plain weights checkpoint (no TrainState section) loads as a model
  // but is not enough for exact resume.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(buffer, trainer.model(0));

  TrainState train;
  auto probe = char_factory(vocab)(0);
  load_checkpoint(buffer, *probe, &train);
  EXPECT_FALSE(train.present);

  buffer.clear();
  buffer.seekg(0);
  EXPECT_THROW(trainer.restore_state(buffer), ConfigError);
}

// The failure-mode tests below all tamper with a serialized state blob.
std::string serialized_state(Index vocab) {
  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  DistributedTrainer trainer(world, char_factory(vocab), opt);
  const auto train = tiny_corpus(vocab, 600, 11);
  const auto valid = tiny_corpus(vocab, 200, 12);
  trainer.run_epoch(train, valid, 0);
  std::ostringstream out(std::ios::binary);
  trainer.save_state(out);
  return out.str();
}

void expect_restore_throws(const std::string& raw, Index vocab,
                           const std::string& needle) {
  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  DistributedTrainer trainer(world, char_factory(vocab), opt);
  std::istringstream in(raw, std::ios::binary);
  try {
    trainer.restore_state(in);
    FAIL() << "tampered checkpoint was accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "unexpected error: " << e.what();
  }
}

// Recompute the trailing FNV-1a64 so only the targeted check can fire.
void refresh_checksum(std::string& raw) {
  const std::string_view body(raw.data(), raw.size() - sizeof(std::uint64_t));
  const std::uint64_t sum = fnv1a64(body);
  std::memcpy(raw.data() + body.size(), &sum, sizeof(sum));
}

TEST(CheckpointResume, RejectsTruncatedState) {
  const Index vocab = 30;
  std::string raw = serialized_state(vocab);
  raw.resize(raw.size() - 5);
  expect_restore_throws(raw, vocab, "checksum mismatch");
}

TEST(CheckpointResume, RejectsFlippedBit) {
  const Index vocab = 30;
  std::string raw = serialized_state(vocab);
  raw[raw.size() / 2] = static_cast<char>(raw[raw.size() / 2] ^ 0x10);
  expect_restore_throws(raw, vocab, "checksum mismatch");
}

TEST(CheckpointResume, RejectsRenamedParameterEvenWithValidChecksum) {
  const Index vocab = 30;
  auto probe = char_factory(vocab)(0);
  const std::string name = probe->all_params().front()->name;
  ASSERT_FALSE(name.empty());

  std::string raw = serialized_state(vocab);
  const std::size_t pos = raw.find(name);
  ASSERT_NE(pos, std::string::npos);
  raw[pos] = '#';
  refresh_checksum(raw);  // past the checksum, the name check must catch it
  expect_restore_throws(raw, vocab, "does not match model parameter");
}

TEST(CheckpointResume, RejectsUnsupportedVersion) {
  const Index vocab = 30;
  std::string raw = serialized_state(vocab);
  // Layout: u64 magic, then u32 version.
  std::uint32_t version = 0;
  std::memcpy(&version, raw.data() + sizeof(std::uint64_t), sizeof(version));
  ASSERT_EQ(version, 2u);
  version = 1;
  std::memcpy(raw.data() + sizeof(std::uint64_t), &version, sizeof(version));
  refresh_checksum(raw);
  expect_restore_throws(raw, vocab, "unsupported checkpoint version");
}

TEST(CheckpointResume, RejectsRankCountMismatch) {
  // A 2-rank checkpoint cannot restore a 3-rank trainer: the dropout
  // streams for the extra replica are missing.
  const Index vocab = 30;
  const std::string raw = serialized_state(vocab);

  CommWorld world(3);
  TrainerOptions opt = tiny_options();
  opt.use_adam = true;
  DistributedTrainer trainer(world, char_factory(vocab), opt);
  std::istringstream in(raw, std::ios::binary);
  EXPECT_THROW(trainer.restore_state(in), ConfigError);
}

}  // namespace
}  // namespace zipflm
