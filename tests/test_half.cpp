// IEEE binary16 conversion correctness, including the exhaustive
// bit-pattern round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "zipflm/tensor/half.hpp"

namespace zipflm {
namespace {

TEST(Half, BasicValuesRoundTripExactly) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.5f, 1024.0f,
                        0.0009765625f /*2^-10*/, 65504.0f, -65504.0f}) {
    EXPECT_EQ(static_cast<float>(Half(v)), v) << v;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Half(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7BFFu);
  EXPECT_EQ(Half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(Half(Half::min_normal()).bits(), 0x0400u);
  EXPECT_EQ(Half(Half::min_subnormal()).bits(), 0x0001u);
}

TEST(Half, OverflowBecomesInfinity) {
  EXPECT_TRUE(Half(65520.0f).is_inf());  // ties to even -> inf
  EXPECT_TRUE(Half(1e6f).is_inf());
  EXPECT_TRUE(Half(-1e6f).is_inf());
  EXPECT_TRUE(Half(-1e6f).signbit());
  EXPECT_FALSE(Half(65504.0f).is_inf());
  // 65519 rounds down to max finite.
  EXPECT_EQ(Half(65519.0f).bits(), 0x7BFFu);
}

TEST(Half, UnderflowFlushesOrKeepsSubnormals) {
  // Half of the smallest subnormal rounds to zero (ties-to-even).
  EXPECT_TRUE(Half(Half::min_subnormal() / 2.0f).is_zero());
  // Anything above half the smallest subnormal survives.
  EXPECT_FALSE(Half(Half::min_subnormal() * 0.75f).is_zero());
  // Subnormal values round-trip within one ulp of 2^-24.
  const float v = 3.1f * Half::min_subnormal();
  const float back = static_cast<float>(Half(v));
  EXPECT_NEAR(back, v, Half::min_subnormal());
}

TEST(Half, NanPropagates) {
  const Half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.is_nan());
  EXPECT_TRUE(std::isnan(static_cast<float>(h)));
  EXPECT_FALSE(h == h);
}

TEST(Half, InfinityPropagates) {
  const Half pos(std::numeric_limits<float>::infinity());
  const Half neg(-std::numeric_limits<float>::infinity());
  EXPECT_TRUE(pos.is_inf());
  EXPECT_TRUE(neg.is_inf());
  EXPECT_TRUE(std::isinf(static_cast<float>(pos)));
  EXPECT_GT(static_cast<float>(pos), 0.0f);
  EXPECT_LT(static_cast<float>(neg), 0.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
  // ties to even => 1.0 (mantissa 0 is even).
  EXPECT_EQ(Half(1.0f + 0.00048828125f).bits(), 0x3C00u);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even => 1+2^-9.
  EXPECT_EQ(Half(1.0f + 3.0f * 0.00048828125f).bits(), 0x3C02u);
  // Slightly above the tie rounds up.
  EXPECT_EQ(Half(1.0f + 0.000489f).bits(), 0x3C01u);
}

TEST(Half, ExhaustiveBitPatternRoundTrip) {
  // Every finite half converts to float and back to the identical bits;
  // NaNs stay NaNs.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const Half h = Half::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    const Half back(f);
    if (h.is_nan()) {
      EXPECT_TRUE(back.is_nan()) << std::hex << bits;
    } else {
      EXPECT_EQ(back.bits(), h.bits()) << std::hex << bits;
    }
  }
}

TEST(Half, MonotoneOverPositiveRange) {
  // Conversion preserves order on a sweep of positive floats.
  float prev = 0.0f;
  for (float v = 1e-5f; v < 60000.0f; v *= 1.37f) {
    const float h = static_cast<float>(Half(v));
    EXPECT_GE(h, prev) << v;
    prev = h;
  }
}

TEST(Half, SignedZeroesCompareEqual) {
  EXPECT_TRUE(Half(0.0f) == Half(-0.0f));
  EXPECT_TRUE(Half(-0.0f).signbit());
  EXPECT_FALSE(Half(0.0f).signbit());
}

}  // namespace
}  // namespace zipflm
