// Row-sharded embedding tables (ROADMAP item 4): the alltoallv
// collective, the ShardedEmbedding layer, the pull/push exchange, and
// the sharded trainer end to end.
//
// The load-bearing oracle: replicated mode.  At small V a sharded run
// must produce `==` losses and bitwise-identical assembled weights on
// every backend at G in {1, 4}, because
//  * shard init is a bitwise slice of the replicated init stream,
//  * the pull moves owner bytes verbatim, and
//  * the push's owner-side fold replays the replicated ring-allreduce
//    addition tree operand for operand (DESIGN.md §10).
// Plus the checkpoint story: sharded checkpoints store the canonical
// replicated layout, so resume is bitwise and G=4 -> G=2 re-sharding is
// just re-slicing on load.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "zipflm/comm/process_group.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/sharded_exchange.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/corpus.hpp"
#include "zipflm/nn/embedding.hpp"
#include "zipflm/nn/sharded_embedding.hpp"

namespace zipflm {
namespace {

// -- Shard geometry ---------------------------------------------------

TEST(ShardGeometry, SplitCoversVocabAndOwnerOfInvertsIt) {
  for (const Index vocab : {Index{10}, Index{97}, Index{256}}) {
    for (const int g : {1, 2, 3, 4, 7}) {
      if (vocab < g) continue;
      EXPECT_EQ(shard_row_begin(vocab, 0, g), 0);
      EXPECT_EQ(shard_row_begin(vocab, g, g), vocab);
      Rng rng(1);
      for (int r = 0; r < g; ++r) {
        ShardedEmbedding emb(vocab, 4, r, g, rng);
        EXPECT_EQ(emb.row_begin(), shard_row_begin(vocab, r, g));
        EXPECT_EQ(emb.row_end(), shard_row_begin(vocab, r + 1, g));
        EXPECT_GE(emb.owned_rows(), 1);
        for (Index id = emb.row_begin(); id < emb.row_end(); ++id) {
          EXPECT_EQ(emb.owner_of(id), r) << "V=" << vocab << " G=" << g;
          EXPECT_TRUE(emb.owns(id));
        }
      }
    }
  }
}

TEST(ShardedEmbeddingInit, ShardsAreBitwiseSlicesOfReplicatedInit) {
  const Index vocab = 37;
  const Index dim = 6;
  const std::uint64_t seed = 2024;
  Rng ref_rng = Rng::fork(seed, 11);
  Embedding replicated(vocab, dim, ref_rng);
  const std::span<const float> table = replicated.param().value.data();

  for (const int g : {1, 2, 4}) {
    for (int r = 0; r < g; ++r) {
      Rng rng = Rng::fork(seed, 11);
      ShardedEmbedding shard(vocab, dim, r, g, rng);
      const std::span<const float> own = shard.param().value.data();
      ASSERT_EQ(own.size(),
                static_cast<std::size_t>(shard.owned_rows() * dim));
      EXPECT_EQ(0, std::memcmp(own.data(),
                               table.data() + shard.row_begin() * dim,
                               own.size() * sizeof(float)))
          << "shard " << r << "/" << g << " is not a slice of the "
          << "replicated init";
    }
  }
}

// -- The alltoallv collective ----------------------------------------

struct A2AOutcome {
  std::vector<float> out;
  std::vector<std::size_t> counts;
  TrafficLedger ledger;
};

std::vector<A2AOutcome> run_alltoallv(CommBackend backend, int gpus) {
  CommWorld::Options wopt;
  wopt.backend = backend;
  CommWorld world(gpus, wopt);
  std::vector<A2AOutcome> outs(static_cast<std::size_t>(gpus));
  world.run([&](Communicator& comm) {
    const int r = comm.rank();
    const int g = comm.world_size();
    // Rank r sends (r + d) % g floats to destination d — uneven blocks,
    // including empty ones, every pair distinct.
    std::vector<float> send;
    std::vector<std::size_t> counts(static_cast<std::size_t>(g));
    for (int d = 0; d < g; ++d) {
      const std::size_t n = static_cast<std::size_t>((r + d) % g);
      counts[static_cast<std::size_t>(d)] = n;
      for (std::size_t j = 0; j < n; ++j) {
        send.push_back(static_cast<float>(r) + 0.001f * static_cast<float>(d) +
                       0.1f * static_cast<float>(j));
      }
    }
    auto& o = outs[static_cast<std::size_t>(r)];
    comm.alltoallv(std::span<const float>(send), counts, o.out, o.counts);
  });
  for (int r = 0; r < gpus; ++r) {
    outs[static_cast<std::size_t>(r)].ledger = world.ledger(r);
  }
  return outs;
}

TEST(AllToAllV, MovesExactBlocksOnEveryBackend) {
  const int gpus = 4;
  for (const CommBackend backend :
       {CommBackend::SharedMem, CommBackend::InProcNet, CommBackend::Socket}) {
    const auto outs = run_alltoallv(backend, gpus);
    for (int r = 0; r < gpus; ++r) {
      const auto& o = outs[static_cast<std::size_t>(r)];
      // Receive counts mirror the senders' formula...
      ASSERT_EQ(o.counts.size(), static_cast<std::size_t>(gpus));
      std::size_t total = 0;
      for (int s = 0; s < gpus; ++s) {
        EXPECT_EQ(o.counts[static_cast<std::size_t>(s)],
                  static_cast<std::size_t>((s + r) % gpus));
        total += o.counts[static_cast<std::size_t>(s)];
      }
      ASSERT_EQ(o.out.size(), total);
      // ...and every element is the exact float source s staged for us.
      std::size_t at = 0;
      for (int s = 0; s < gpus; ++s) {
        const std::size_t n = o.counts[static_cast<std::size_t>(s)];
        for (std::size_t j = 0; j < n; ++j) {
          EXPECT_EQ(o.out[at++], static_cast<float>(s) +
                                     0.001f * static_cast<float>(r) +
                                     0.1f * static_cast<float>(j));
        }
      }
      EXPECT_EQ(o.ledger.alltoall_calls, 1u);
    }
  }
}

TEST(AllToAllV, LedgerAndPayloadsIdenticalAcrossBackends) {
  for (const int gpus : {1, 4}) {
    const auto ref = run_alltoallv(CommBackend::SharedMem, gpus);
    for (const CommBackend backend :
         {CommBackend::InProcNet, CommBackend::Socket}) {
      const auto got = run_alltoallv(backend, gpus);
      for (int r = 0; r < gpus; ++r) {
        const auto& want = ref[static_cast<std::size_t>(r)];
        const auto& have = got[static_cast<std::size_t>(r)];
        EXPECT_EQ(want.out, have.out);
        EXPECT_EQ(want.counts, have.counts);
        EXPECT_EQ(want.ledger.bytes_sent, have.ledger.bytes_sent);
        EXPECT_EQ(want.ledger.bytes_received, have.ledger.bytes_received);
        EXPECT_EQ(want.ledger.alltoall_calls, have.ledger.alltoall_calls);
        EXPECT_EQ(want.ledger.max_alltoall_payload_bytes,
                  have.ledger.max_alltoall_payload_bytes);
        EXPECT_EQ(want.ledger.max_collective_scratch_bytes,
                  have.ledger.max_collective_scratch_bytes);
        EXPECT_EQ(want.ledger.simulated_comm_seconds,
                  have.ledger.simulated_comm_seconds);
        if (gpus > 1) {
          EXPECT_GT(have.ledger.wire_bytes_sent, 0u);
          EXPECT_EQ(want.ledger.wire_bytes_sent, 0u);
        }
      }
    }
  }
}

// -- Pull/push exchange against the replicated oracle -----------------

std::vector<Index> tiny_corpus(Index vocab, std::size_t n,
                               std::uint64_t seed) {
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.1);
  Rng rng(seed);
  std::vector<Index> ids(n);
  for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
  return ids;
}

TEST(ShardedExchange, PullInstallsOwnerBytesVerbatim) {
  const Index vocab = 29;
  const Index dim = 5;
  const int gpus = 4;
  Rng ref_rng = Rng::fork(7, 11);
  Embedding replicated(vocab, dim, ref_rng);
  const std::span<const float> table = replicated.param().value.data();

  CommWorld world(gpus);
  std::vector<std::unique_ptr<ShardedEmbedding>> shards;
  for (int r = 0; r < gpus; ++r) {
    Rng rng = Rng::fork(7, 11);
    shards.push_back(
        std::make_unique<ShardedEmbedding>(vocab, dim, r, gpus, rng));
  }
  world.run([&](Communicator& comm) {
    const int r = comm.rank();
    ShardedEmbeddingExchange ex(vocab, dim);
    const auto batch = tiny_corpus(vocab, 40, 100 + static_cast<unsigned>(r));
    ShardedEmbedding& emb = *shards[static_cast<std::size_t>(r)];
    ex.pull(comm, emb, batch);
    ASSERT_TRUE(emb.cache_ready());
    // Every pulled row must be the owner's bytes — i.e. the replicated
    // table's row — and forward must reproduce them per token.
    Tensor got({static_cast<Index>(batch.size()), dim});
    emb.forward(batch, got);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(got.data().data() + i * dim,
                               table.data() + batch[i] * dim,
                               static_cast<std::size_t>(dim) * sizeof(float)))
          << "rank " << r << " token " << i;
    }
  });
}

/// Per-rank synthetic gradient: K token ids (with repeats) + K x D delta.
void synth_grad(Index vocab, Index dim, int rank, std::vector<Index>& ids,
                Tensor& delta) {
  ids = tiny_corpus(vocab, 24, 500 + static_cast<unsigned>(rank));
  delta = Tensor({static_cast<Index>(ids.size()), dim});
  Rng rng(900 + static_cast<unsigned>(rank));
  for (float& v : delta.data()) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
}

TEST(ShardedExchange, PushMatchesReplicatedUniqueExchangeBitwise) {
  const Index vocab = 31;
  const Index dim = 7;  // deliberately not a multiple of G
  for (const int gpus : {1, 4}) {
    // Replicated oracle: UniqueExchange over the same per-rank grads.
    std::vector<std::vector<Index>> oracle_ids(
        static_cast<std::size_t>(gpus));
    std::vector<Tensor> oracle_rows(static_cast<std::size_t>(gpus));
    {
      CommWorld world(gpus);
      world.run([&](Communicator& comm) {
        const int r = comm.rank();
        std::vector<Index> ids;
        Tensor delta;
        synth_grad(vocab, dim, r, ids, delta);
        UniqueExchange ex((ExchangeOptions()));
        ex.exchange(comm, ids, delta,
                    oracle_ids[static_cast<std::size_t>(r)],
                    oracle_rows[static_cast<std::size_t>(r)]);
      });
    }
    // Sharded: same grads, owner-side fold.
    CommWorld world(gpus);
    world.run([&](Communicator& comm) {
      const int r = comm.rank();
      std::vector<Index> ids;
      Tensor delta;
      synth_grad(vocab, dim, r, ids, delta);
      ShardedEmbeddingExchange ex(vocab, dim);
      std::vector<Index> out_ids;
      Tensor out_rows;
      ex.exchange(comm, ids, delta, out_ids, out_rows);

      // out_ids must be exactly the owned slice of the oracle's Î, and
      // every owned row bitwise the oracle's reduction.
      const auto& oids = oracle_ids[static_cast<std::size_t>(r)];
      const auto& orows = oracle_rows[static_cast<std::size_t>(r)];
      const Index lo = shard_row_begin(vocab, r, gpus);
      const Index hi = shard_row_begin(vocab, r + 1, gpus);
      std::size_t checked = 0;
      for (std::size_t i = 0; i < oids.size(); ++i) {
        if (oids[i] < lo || oids[i] >= hi) continue;
        ASSERT_LT(checked, out_ids.size());
        EXPECT_EQ(out_ids[checked], oids[i]);
        EXPECT_EQ(0,
                  std::memcmp(out_rows.data().data() + checked * dim,
                              orows.data().data() + i * dim,
                              static_cast<std::size_t>(dim) * sizeof(float)))
            << "rank " << r << " row " << oids[i] << " diverged at G="
            << gpus;
        ++checked;
      }
      EXPECT_EQ(checked, out_ids.size());
    });
  }
}

// -- Trainer parity: sharded vs replicated, every backend -------------

TrainerOptions char_options() {
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 6};
  opt.base_lr = 5e-3f;
  opt.lr_decay = 1.0f;
  opt.clip = 5.0f;
  opt.use_adam = true;
  opt.charge_static_memory = false;
  return opt;
}

DistributedTrainer::ModelFactory char_factory(Index vocab, int shard_world) {
  return [vocab, shard_world](int rank) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 10;
    cfg.depth = 2;
    cfg.dropout = 0.1f;  // exercises the per-rank RNG streams too
    cfg.seed = 99;
    cfg.shard_rank = rank;
    cfg.shard_world = shard_world;  // 0 = replicated
    return std::make_unique<CharLm>(cfg);
  };
}

/// The input table as raw bytes: the replicated table, or the shard
/// slices stitched back together in rank order.
std::vector<unsigned char> assembled_table_bytes(DistributedTrainer& trainer,
                                                 int gpus) {
  std::vector<unsigned char> out;
  if (trainer.model(0).sharded_input() == nullptr) {
    const auto data = trainer.model(0).input_embedding_param().value.data();
    const auto* b = reinterpret_cast<const unsigned char*>(data.data());
    out.assign(b, b + data.size() * sizeof(float));
    return out;
  }
  for (int r = 0; r < gpus; ++r) {
    const auto data = trainer.model(r).sharded_input()->param().value.data();
    const auto* b = reinterpret_cast<const unsigned char*>(data.data());
    out.insert(out.end(), b, b + data.size() * sizeof(float));
  }
  return out;
}

/// Dense (non-embedding) parameters of replica 0 as raw bytes.
std::vector<unsigned char> dense_bytes(DistributedTrainer& trainer) {
  std::vector<unsigned char> out;
  for (Param* p : trainer.model(0).dense_params()) {
    const auto data = p->value.data();
    const auto* b = reinterpret_cast<const unsigned char*>(data.data());
    out.insert(out.end(), b, b + data.size() * sizeof(float));
  }
  return out;
}

void expect_sharded_matches_replicated(int gpus, WireCodec codec,
                                       bool index_codec, bool overlapped,
                                       std::initializer_list<CommBackend>
                                           backends) {
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 2400, 7);
  const auto valid = tiny_corpus(vocab, 400, 8);

  // Replicated oracle on the shared-memory backend.
  double ref_train = 0.0, ref_valid = 0.0;
  std::vector<unsigned char> ref_table, ref_dense;
  {
    CommWorld world(gpus);
    DistributedTrainer trainer(world, char_factory(vocab, 0),
                               char_options());
    EpochStats last{};
    for (int e = 0; e < 2; ++e) last = trainer.run_epoch(train, valid, e);
    ref_train = last.train_loss;
    ref_valid = last.valid_loss;
    ref_table = assembled_table_bytes(trainer, gpus);
    ref_dense = dense_bytes(trainer);
  }

  for (const CommBackend backend : backends) {
    CommWorld::Options wopt;
    wopt.backend = backend;
    CommWorld world(gpus, wopt);
    TrainerOptions opt = char_options();
    opt.shard_embedding = true;
    opt.wire_codec = codec;
    opt.index_codec = index_codec;
    opt.overlapped_exchange = overlapped;
    opt.overlap_bucket_bytes = 512;
    DistributedTrainer trainer(world, char_factory(vocab, gpus), opt);

    EpochStats last{};
    for (int e = 0; e < 2; ++e) last = trainer.run_epoch(train, valid, e);
    EXPECT_TRUE(trainer.replicas_in_sync());

    EXPECT_EQ(last.train_loss, ref_train)
        << "sharded train loss diverged, G=" << gpus;
    EXPECT_EQ(last.valid_loss, ref_valid)
        << "sharded valid loss diverged, G=" << gpus;
    EXPECT_EQ(assembled_table_bytes(trainer, gpus), ref_table)
        << "assembled sharded table != replicated table, G=" << gpus;
    EXPECT_EQ(dense_bytes(trainer), ref_dense);
    if (gpus > 1) {
      EXPECT_GT(world.total_ledger().alltoall_calls, 0u);
    }
  }
}

TEST(ShardedTrainer, MatchesReplicatedBitwiseG1AllBackends) {
  expect_sharded_matches_replicated(
      1, WireCodec::None, false, false,
      {CommBackend::SharedMem, CommBackend::InProcNet, CommBackend::Socket});
}

TEST(ShardedTrainer, MatchesReplicatedBitwiseG4AllBackends) {
  expect_sharded_matches_replicated(
      4, WireCodec::None, false, false,
      {CommBackend::SharedMem, CommBackend::InProcNet, CommBackend::Socket});
}

TEST(ShardedTrainer, PackedRowCodecStaysBitwise) {
  // Packed is lossless, so the coded sharded run still equals the raw
  // replicated oracle; the index legs ride the varint codec.
  expect_sharded_matches_replicated(4, WireCodec::Packed, true, false,
                                    {CommBackend::SharedMem,
                                     CommBackend::Socket});
}

TEST(ShardedTrainer, OverlappedExchangeStaysBitwise) {
  expect_sharded_matches_replicated(4, WireCodec::None, false, true,
                                    {CommBackend::SharedMem});
}

// -- Sharded checkpoints ----------------------------------------------

TEST(ShardedCheckpoint, KillResumeMidEpochIsBitwiseIdentical) {
  const Index vocab = 50;
  // One "epoch" of data, interrupted half way: the straight run sees
  // A then B back to back; the killed run trains A, checkpoints, dies,
  // restores into a fresh world and trains B.
  const auto part_a = tiny_corpus(vocab, 1200, 7);
  const auto part_b = tiny_corpus(vocab, 1200, 9);
  const auto valid = tiny_corpus(vocab, 400, 8);
  const int gpus = 4;

  TrainerOptions opt = char_options();
  opt.shard_embedding = true;

  std::vector<unsigned char> want_table, want_dense;
  double want_valid = 0.0;
  {
    CommWorld world(gpus);
    DistributedTrainer straight(world, char_factory(vocab, gpus), opt);
    straight.run_epoch(part_a, valid, 0);
    const EpochStats s = straight.run_epoch(part_b, valid, 1);
    want_table = assembled_table_bytes(straight, gpus);
    want_dense = dense_bytes(straight);
    want_valid = s.valid_loss;
  }

  std::stringstream ckpt(std::ios::in | std::ios::out | std::ios::binary);
  {
    CommWorld world(gpus);
    DistributedTrainer before(world, char_factory(vocab, gpus), opt);
    before.run_epoch(part_a, valid, 0);
    before.save_state(ckpt);
  }  // the "kill": world and trainer destroyed

  CommWorld world(gpus);
  DistributedTrainer resumed(world, char_factory(vocab, gpus), opt);
  resumed.restore_state(ckpt);
  EXPECT_TRUE(resumed.replicas_in_sync());
  const EpochStats s = resumed.run_epoch(part_b, valid, 1);

  EXPECT_EQ(s.valid_loss, want_valid);
  EXPECT_EQ(assembled_table_bytes(resumed, gpus), want_table)
      << "resumed sharded run diverged from the uninterrupted one";
  EXPECT_EQ(dense_bytes(resumed), want_dense);
}

TEST(ShardedCheckpoint, G4CheckpointReshardsIntoG2AndIntoReplicated) {
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 1200, 7);
  const auto valid = tiny_corpus(vocab, 400, 8);

  TrainerOptions opt4 = char_options();
  opt4.shard_embedding = true;

  std::stringstream ckpt(std::ios::in | std::ios::out | std::ios::binary);
  std::vector<unsigned char> want_table, want_dense;
  {
    CommWorld world(4);
    DistributedTrainer t4(world, char_factory(vocab, 4), opt4);
    t4.run_epoch(train, valid, 0);
    want_table = assembled_table_bytes(t4, 4);
    want_dense = dense_bytes(t4);
    t4.save_state(ckpt);
  }
  const std::string raw = ckpt.str();

  // G=2 sharded world: owned slices re-cut from the canonical table.
  {
    std::istringstream in(raw, std::ios::binary);
    CommWorld world(2);
    TrainerOptions opt2 = char_options();
    opt2.shard_embedding = true;
    DistributedTrainer t2(world, char_factory(vocab, 2), opt2);
    EXPECT_THROW(
        {
          std::istringstream strict(raw, std::ios::binary);
          t2.restore_state(strict);  // rank count mismatch must be loud
        },
        Error);
    t2.restore_state(in, /*allow_world_resize=*/true);
    EXPECT_EQ(assembled_table_bytes(t2, 2), want_table)
        << "G=2 re-shard lost table bytes";
    EXPECT_EQ(dense_bytes(t2), want_dense);
    // And the re-sharded trainer must still train.
    const EpochStats s = t2.run_epoch(train, valid, 1);
    EXPECT_TRUE(std::isfinite(s.train_loss));
    EXPECT_TRUE(t2.replicas_in_sync());
  }

  // Replicated world: the canonical layout loads without translation.
  {
    std::istringstream in(raw, std::ios::binary);
    CommWorld world(2);
    DistributedTrainer rep(world, char_factory(vocab, 0), char_options());
    rep.restore_state(in, /*allow_world_resize=*/true);
    EXPECT_EQ(assembled_table_bytes(rep, 2), want_table);
    EXPECT_EQ(dense_bytes(rep), want_dense);
  }
}

}  // namespace
}  // namespace zipflm
