// The statistical foundation: Zipf sampling and Heaps-law growth.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "zipflm/data/zipf.hpp"
#include "zipflm/stats/powerlaw.hpp"

namespace zipflm {
namespace {

TEST(ZipfMandelbrot, PmfSumsToOne) {
  const ZipfMandelbrot dist(1000, 1.2, 2.0);
  double sum = 0.0;
  for (std::uint64_t r = 1; r <= 1000; ++r) sum += dist.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfMandelbrot, CdfMonotoneReachingOne) {
  const ZipfMandelbrot dist(500, 1.0, 0.0);
  double prev = 0.0;
  for (std::uint64_t r = 1; r <= 500; ++r) {
    const double c = dist.cdf(r);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(dist.cdf(500), 1.0, 1e-9);
}

TEST(ZipfMandelbrot, ClassicHeadRatio) {
  // Zipf's law statement from the paper: with s=1, q=0 the most frequent
  // word occurs ~2x the second, ~3x the third.
  const ZipfMandelbrot dist(10000, 1.0, 0.0);
  EXPECT_NEAR(dist.pmf(1) / dist.pmf(2), 2.0, 1e-9);
  EXPECT_NEAR(dist.pmf(1) / dist.pmf(3), 3.0, 1e-9);
}

TEST(ZipfSampler, TableSamplerMatchesPmf) {
  const std::uint64_t vocab = 50;
  const ZipfMandelbrot dist(vocab, 1.1, 1.0);
  ZipfSampler sampler(vocab, 1.1, 1.0);
  EXPECT_TRUE(sampler.uses_table());

  Rng rng(31);
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];

  for (std::uint64_t r = 1; r <= 10; ++r) {
    const double expected = dist.pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected) + 5.0)
        << "rank " << r;
  }
}

TEST(ZipfSampler, RejectionSamplerMatchesZetaHead) {
  // Unbounded zeta(s): P(1) = 1/zeta(s), computed numerically here.
  const double s = 1.5625;
  double zeta = 0.0;
  for (std::uint64_t r = 1; r <= 2'000'000; ++r) {
    zeta += std::pow(static_cast<double>(r), -s);
  }
  // Integral tail beyond the partial sum.
  zeta += std::pow(2'000'000.5, 1.0 - s) / (s - 1.0);

  ZipfSampler sampler(0, s);
  EXPECT_FALSE(sampler.uses_table());
  Rng rng(41);
  const int n = 300000;
  int ones = 0, twos = 0;
  for (int i = 0; i < n; ++i) {
    const auto r = sampler.sample(rng);
    ASSERT_GE(r, 1u);
    if (r == 1) ++ones;
    if (r == 2) ++twos;
  }
  const double p1 = static_cast<double>(ones) / n;
  const double p2 = static_cast<double>(twos) / n;
  EXPECT_NEAR(p1, 1.0 / zeta, 0.01);
  // p2/p1 = 2^-s.
  EXPECT_NEAR(p2 / p1, std::pow(2.0, -s), 0.02);
}

TEST(ZipfSampler, BoundedLargeVocabRedrawsTail) {
  ZipfSampler sampler(1ull << 23, 1.5);  // above table limit -> rejection
  EXPECT_FALSE(sampler.uses_table());
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LE(sampler.sample(rng), 1ull << 23);
  }
}

TEST(ZipfSampler, HeapsLawExponentIsInverseZipfExponent) {
  // The design-level claim behind every synthetic corpus: drawing from
  // zipf(s) gives U(N) ~ N^(1/s).  s = 1.5625 -> alpha = 0.64.
  ZipfSampler sampler(0, 1.5625);
  Rng rng(53);
  std::unordered_set<std::uint64_t> seen;
  std::vector<double> xs, ys;
  std::uint64_t checkpoint = 1024;
  const std::uint64_t max_n = 1u << 21;
  for (std::uint64_t n = 1; n <= max_n; ++n) {
    seen.insert(sampler.sample(rng));
    if (n == checkpoint) {
      xs.push_back(static_cast<double>(n));
      ys.push_back(static_cast<double>(seen.size()));
      checkpoint *= 2;
    }
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 0.64, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(ZipfSampler, SampleTokensAreZeroBased) {
  ZipfSampler sampler(100, 1.0);
  Rng rng(3);
  std::vector<std::uint64_t> tokens;
  sampler.sample_tokens(rng, 5000, tokens);
  ASSERT_EQ(tokens.size(), 5000u);
  for (const auto t : tokens) ASSERT_LT(t, 100u);
  // Token 0 (rank 1) must be the most frequent.
  std::unordered_map<std::uint64_t, int> counts;
  for (const auto t : tokens) ++counts[t];
  for (const auto& [tok, count] : counts) {
    EXPECT_LE(count, counts[0]) << "token " << tok;
  }
}

TEST(ZipfSampler, InvalidConfigsRejected) {
  EXPECT_THROW(ZipfSampler(100, 0.0), ConfigError);
  EXPECT_THROW(ZipfSampler(0, 0.9), ConfigError);   // unbounded needs s>1
  EXPECT_THROW(ZipfSampler(0, 1.5, 2.0), ConfigError);  // shift needs table
  EXPECT_THROW(ZipfMandelbrot(0, 1.0), ConfigError);
}

}  // namespace
}  // namespace zipflm
