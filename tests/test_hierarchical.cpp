// Sub-communicators and the two-level allreduce.
#include <gtest/gtest.h>

#include "zipflm/comm/hierarchical.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {
namespace {

CommWorld::Options multi_node(int nodes, int gpus_per_node) {
  CommWorld::Options o;
  o.topo = Topology{nodes, gpus_per_node};
  o.topo_set = true;
  return o;
}

TEST(SubComm, NodeCommSpansTheNode) {
  CommWorld world(8, multi_node(2, 4));
  world.run([&](Communicator& comm) {
    Communicator* node = comm.node_comm();
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->world_size(), 4);
    EXPECT_EQ(node->rank(), comm.rank() % 4);
    EXPECT_EQ(node->topology().nodes, 1);
  });
}

TEST(SubComm, LeaderCommOnlyOnLeaders) {
  CommWorld world(8, multi_node(2, 4));
  world.run([&](Communicator& comm) {
    Communicator* leaders = comm.leader_comm();
    if (comm.rank() % 4 == 0) {
      ASSERT_NE(leaders, nullptr);
      EXPECT_EQ(leaders->world_size(), 2);
      EXPECT_EQ(leaders->rank(), comm.rank() / 4);
    } else {
      EXPECT_EQ(leaders, nullptr);
    }
  });
}

TEST(SubComm, SingleNodeHasNoLeaderComm) {
  CommWorld world(4);
  world.run([&](Communicator& comm) {
    EXPECT_EQ(comm.leader_comm(), nullptr);
    ASSERT_NE(comm.node_comm(), nullptr);
    EXPECT_EQ(comm.node_comm()->world_size(), 4);
  });
}

TEST(SubComm, NodeAllReduceSumsWithinNodeOnly) {
  CommWorld world(8, multi_node(2, 4));
  world.run([&](Communicator& comm) {
    std::vector<float> data(16, static_cast<float>(comm.rank() + 1));
    comm.node_comm()->allreduce_sum(std::span<float>(data));
    // Node 0: ranks 0-3 -> sum 10; node 1: ranks 4-7 -> sum 26.
    const float expect = comm.rank() < 4 ? 10.0f : 26.0f;
    for (float v : data) ASSERT_EQ(v, expect);
  });
}

TEST(SubComm, SubGroupsAreReusableAcrossSteps) {
  CommWorld world(8, multi_node(2, 4));
  world.run([&](Communicator& comm) {
    for (int step = 0; step < 5; ++step) {
      std::vector<float> data(3, 1.0f);
      comm.node_comm()->allreduce_sum(std::span<float>(data));
      ASSERT_EQ(data[0], 4.0f);
    }
  });
}

class HierarchicalWorlds
    : public ::testing::TestWithParam<std::pair<int, int>> {};

INSTANTIATE_TEST_SUITE_P(Shapes, HierarchicalWorlds,
                         ::testing::Values(std::pair{1, 4}, std::pair{2, 2},
                                           std::pair{2, 4}, std::pair{3, 2},
                                           std::pair{4, 4}));

TEST_P(HierarchicalWorlds, MatchesFlatAllReduce) {
  const auto [nodes, gpn] = GetParam();
  const int g = nodes * gpn;
  for (const std::size_t n : {1u, 7u, 64u, 333u}) {
    std::vector<std::vector<float>> flat(static_cast<std::size_t>(g));
    std::vector<std::vector<float>> hier(static_cast<std::size_t>(g));
    for (const bool hierarchical : {false, true}) {
      CommWorld world(g, multi_node(nodes, gpn));
      world.run([&](Communicator& comm) {
        std::vector<float> data(n);
        Rng rng(500 + static_cast<std::uint64_t>(comm.rank()));
        for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
        if (hierarchical) {
          hierarchical_allreduce_sum(comm, std::span<float>(data));
          hier[static_cast<std::size_t>(comm.rank())] = data;
        } else {
          comm.allreduce_sum(std::span<float>(data));
          flat[static_cast<std::size_t>(comm.rank())] = data;
        }
      });
    }
    for (int r = 0; r < g; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      ASSERT_EQ(hier[ri].size(), flat[ri].size());
      for (std::size_t i = 0; i < n; ++i) {
        // Different reduction trees: tolerance, not bit equality.
        EXPECT_NEAR(hier[ri][i], flat[ri][i], 1e-4f)
            << "rank " << r << " i " << i;
      }
      // All ranks agree bitwise within one scheme.
      EXPECT_EQ(hier[ri], hier[0]);
    }
  }
}

TEST(Hierarchical, Fp16VariantSums) {
  CommWorld world(4, multi_node(2, 2));
  world.run([&](Communicator& comm) {
    std::vector<Half> data(10, Half(1.5f));
    hierarchical_allreduce_sum(comm, std::span<Half>(data));
    for (const Half h : data) {
      ASSERT_NEAR(static_cast<float>(h), 6.0f, 0.01f);
    }
  });
}

TEST(Hierarchical, WinsWhenIntraNodeLinksAreMuchFaster) {
  // The two-level scheme trades 2.5 extra intra-node passes for cutting
  // the fabric traffic from 2(G-1)/G to 2(N-1)/N of the buffer, so it
  // wins only when intra/inter bandwidth ratio is large (NVLink-class).
  // It *loses* on the paper's PCIe cluster (ratio ~2) — the ablation
  // bench quantifies the crossover; here we pin both sides.
  const std::size_t n = 1 << 18;
  auto measure = [&](double intra_Bps, bool hierarchical) {
    CommWorld::Options o = multi_node(4, 4);
    o.cost.intra_node = LinkParams{3e-6, intra_Bps};
    o.cost.inter_node = LinkParams{2e-6, 6e9};
    CommWorld world(16, o);
    world.run([&](Communicator& comm) {
      std::vector<float> data(n, 1.0f);
      if (hierarchical) {
        hierarchical_allreduce_sum(comm, std::span<float>(data));
      } else {
        comm.allreduce_sum(std::span<float>(data));
      }
    });
    return world.max_simulated_comm_seconds();
  };
  // NVLink-class node (120 GB/s vs 6 GB/s fabric): hierarchy wins.
  EXPECT_LT(measure(120e9, true), measure(120e9, false));
  // PCIe-class node (12.8 GB/s): the flat ring wins on bandwidth.
  EXPECT_GT(measure(12.8e9, true), measure(12.8e9, false));
}

TEST(Hierarchical, FallsBackToFlatOnSingleNode) {
  CommWorld world(4);
  world.run([&](Communicator& comm) {
    std::vector<float> data(8, 2.0f);
    hierarchical_allreduce_sum(comm, std::span<float>(data));
    for (float v : data) ASSERT_EQ(v, 8.0f);
  });
}

}  // namespace
}  // namespace zipflm
