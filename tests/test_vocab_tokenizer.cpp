#include <gtest/gtest.h>

#include "zipflm/data/tokenizer.hpp"
#include "zipflm/data/vocab.hpp"

namespace zipflm {
namespace {

TEST(WordTokenizer, LowercasesAndSplitsPunctuation) {
  WordTokenizer tok;
  const auto out = tok.tokenize("The cat, the CAT!");
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], "the");
  EXPECT_EQ(out[1], "cat");
  EXPECT_EQ(out[2], ",");
  EXPECT_EQ(out[3], "the");
  EXPECT_EQ(out[4], "cat");
  EXPECT_EQ(out[5], "!");
}

TEST(WordTokenizer, HandlesApostropheAndNumbers) {
  WordTokenizer tok;
  const auto out = tok.tokenize("don't stop 42 times");
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], "don");
  EXPECT_EQ(out[1], "'");
  EXPECT_EQ(out[2], "t");
  EXPECT_EQ(out[3], "stop");
  EXPECT_EQ(out[4], "42");
}

TEST(WordTokenizer, EmptyAndWhitespaceOnly) {
  WordTokenizer tok;
  EXPECT_TRUE(tok.tokenize("").empty());
  EXPECT_TRUE(tok.tokenize("  \t\n ").empty());
}

TEST(CharTokenizer, AsciiSplitsPerByte) {
  CharTokenizer tok;
  const auto out = tok.tokenize("ab c");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[2], " ");
}

TEST(CharTokenizer, Utf8MultiByteKeptWhole) {
  CharTokenizer tok;
  // "中文ab" : two 3-byte Chinese characters then ASCII.
  const auto out = tok.tokenize("\xE4\xB8\xAD\xE6\x96\x87"
                                "ab");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "\xE4\xB8\xAD");
  EXPECT_EQ(out[1], "\xE6\x96\x87");
  EXPECT_EQ(out[2], "a");
}

TEST(CharTokenizer, InvalidUtf8FallsBackToBytes) {
  CharTokenizer tok;
  // 0xE4 claims 3 bytes but continuation is invalid.
  const auto out = tok.tokenize("\xE4zz");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "\xE4");
  // Truncated sequence at the end of the buffer.
  const auto out2 = tok.tokenize("a\xE4");
  ASSERT_EQ(out2.size(), 2u);
}

TEST(Vocabulary, KeepsMostFrequentWithDeterministicTies) {
  std::unordered_map<std::string, std::uint64_t> counts = {
      {"the", 100}, {"cat", 50}, {"dog", 50}, {"rare", 1}};
  const auto v = Vocabulary::build(counts, 4);  // <unk> + 3
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.id_of("the"), 1);
  EXPECT_EQ(v.id_of("cat"), 2);  // tie with dog: lexicographic
  EXPECT_EQ(v.id_of("dog"), 3);
  EXPECT_EQ(v.id_of("rare"), Vocabulary::kUnkId);
  EXPECT_EQ(v.token_of(1), "the");
  EXPECT_EQ(v.token_of(0), "<unk>");
}

TEST(Vocabulary, CoverageOfFrequentHead) {
  // Zipf-ish counts: a 3-word vocabulary should cover most tokens.
  std::vector<std::string> tokens;
  for (int i = 0; i < 60; ++i) tokens.push_back("a");
  for (int i = 0; i < 30; ++i) tokens.push_back("b");
  for (int i = 0; i < 9; ++i) tokens.push_back("c");
  tokens.push_back("zeta");

  const auto v = Vocabulary::build_from_tokens(tokens, 4);
  EXPECT_NEAR(v.coverage(tokens), 0.99, 1e-6);
}

TEST(Vocabulary, EncodeMapsOovToUnk) {
  std::vector<std::string> tokens = {"x", "x", "y"};
  const auto v = Vocabulary::build_from_tokens(tokens, 2);  // only "x" kept
  std::vector<std::int64_t> ids;
  v.encode(tokens, ids);
  EXPECT_EQ(ids, (std::vector<std::int64_t>{1, 1, Vocabulary::kUnkId}));
}

TEST(Vocabulary, TokenOfOutOfRangeThrows) {
  const Vocabulary v;
  EXPECT_THROW(v.token_of(5), ConfigError);
}

TEST(Pipeline, TokenizeBuildEncodeEndToEnd) {
  WordTokenizer tok;
  const std::string text =
      "the quick brown fox jumps over the lazy dog . the fox .";
  const auto tokens = tok.tokenize(text);
  const auto vocab = Vocabulary::build_from_tokens(tokens, 100);
  std::vector<std::int64_t> ids;
  vocab.encode(tokens, ids);
  ASSERT_EQ(ids.size(), tokens.size());
  // "the" appears 3x and must be the lowest non-unk id.
  EXPECT_EQ(vocab.id_of("the"), 1);
  // Round-trip.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(vocab.token_of(ids[i]), tokens[i]);
  }
}

}  // namespace
}  // namespace zipflm
