// Fault injection: a killed rank must surface as CollectiveTimeoutError
// on every survivor (not a deadlock), be retired from the world, and the
// degraded world must keep producing correct collectives.  Stragglers
// finish; corrupted wire payloads poison every rank identically so the
// trainer's overflow guard can skip the step in lockstep.
//
// The whole suite is parameterized over the CommWorld backend AND over
// the gradient wire codec: the same guarantees must hold when the
// collectives run over shared memory and when they run over real
// sockets (where a dead rank is an EOF on the wire rather than a
// barrier timeout), and FaultSpec::at_collective indices — which count
// collective invocations, not bytes — must stay stable when a codec
// changes every payload's size on the wire.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/comm/wire_codec.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/corpus.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm {
namespace {

class CommFaults
    : public ::testing::TestWithParam<std::tuple<CommBackend, WireCodec>> {
 protected:
  CommBackend backend() const { return std::get<0>(GetParam()); }
  WireCodec codec() const { return std::get<1>(GetParam()); }

  /// World options for the backend under test.
  CommWorld::Options world_options(double timeout_seconds = 0.0) const {
    CommWorld::Options opt;
    opt.backend = backend();
    opt.collective_timeout_seconds = timeout_seconds;
    return opt;
  }

  /// Trainer options carrying the codec under test.
  TrainerOptions trainer_options(TrainerOptions opt) const {
    opt.wire_codec = codec();
    opt.index_codec = codec() != WireCodec::None;
    return opt;
  }
};

std::vector<Index> tiny_corpus(Index vocab, std::size_t n,
                               std::uint64_t seed) {
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.1);
  Rng rng(seed);
  std::vector<Index> ids(n);
  for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
  return ids;
}

DistributedTrainer::ModelFactory char_factory(Index vocab) {
  return [vocab](int /*rank*/) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 10;
    cfg.depth = 2;
    cfg.seed = 99;
    return std::make_unique<CharLm>(cfg);
  };
}

TrainerOptions char_options() {
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 6};
  opt.lr_decay = 1.0f;
  opt.clip = 5.0f;
  opt.charge_static_memory = false;
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  return opt;
}

TEST_P(CommFaults, KilledRankTimesOutSurvivorsAndIsRetired) {
  CommWorld world(4, world_options(2.0));
  FaultPlan plan;
  plan.events.push_back({.rank = 2, .kind = FaultKind::Kill,
                         .at_collective = 3});
  world.inject_faults(plan);

  std::atomic<int> survivors_timed_out{0};
  EXPECT_THROW(
      world.run([&](Communicator& comm) {
        WireCodecScope codec_scope(comm, codec());
        std::vector<float> buf(8, 1.0f);
        try {
          for (int i = 0; i < 10; ++i) {
            comm.allreduce_sum(std::span<float>(buf));
          }
        } catch (const CollectiveTimeoutError&) {
          survivors_timed_out.fetch_add(1);
          throw;
        }
      }),
      CollectiveTimeoutError);

  // Rank 2 died silently; the other three all hit the timeout.
  EXPECT_EQ(survivors_timed_out.load(), 3);
  EXPECT_EQ(world.world_size(), 3);
  EXPECT_EQ(world.total_ranks(), 4);
  ASSERT_EQ(world.failed_ranks().size(), 1u);
  EXPECT_EQ(world.failed_ranks().front(), 2);
  EXPECT_EQ(world.live_ranks(), (std::vector<int>{0, 1, 3}));

  // The degraded world still computes exact collectives over survivors.
  world.run([&](Communicator& comm) {
    WireCodecScope codec_scope(comm, codec());
    EXPECT_EQ(comm.world_size(), 3);
    std::vector<float> buf(4, 1.0f);
    comm.allreduce_sum(std::span<float>(buf));
    for (const float v : buf) EXPECT_EQ(v, 3.0f);
  });
}

TEST_P(CommFaults, SimulatedDeathCannotBeSwallowedByErrorHandlers) {
  CommWorld world(2, world_options(2.0));
  FaultPlan plan;
  plan.events.push_back({.rank = 1, .kind = FaultKind::Kill,
                         .at_collective = 0});
  world.inject_faults(plan);

  std::atomic<bool> swallowed{false};
  EXPECT_THROW(
      world.run([&](Communicator& comm) {
        WireCodecScope codec_scope(comm, codec());
        std::vector<float> buf(4, 1.0f);
        if (comm.rank() == 1) {
          // A crashed process cannot be caught from inside: user-level
          // Error handlers must not resurrect a killed rank.
          try {
            comm.allreduce_sum(std::span<float>(buf));
            return;
          } catch (const Error&) {
            swallowed = true;
            return;
          }
        }
        comm.allreduce_sum(std::span<float>(buf));
      }),
      CollectiveTimeoutError);
  EXPECT_FALSE(swallowed.load());
  EXPECT_EQ(world.failed_ranks(), (std::vector<int>{1}));
}

TEST_P(CommFaults, StragglerDelaysButCompletes) {
  CommWorld world(3, world_options(5.0));
  FaultPlan plan;
  plan.events.push_back({.rank = 1, .kind = FaultKind::Delay,
                         .at_collective = 1, .delay_seconds = 0.05});
  world.inject_faults(plan);

  world.run([&](Communicator& comm) {
    WireCodecScope codec_scope(comm, codec());
    std::vector<float> buf(4, 2.0f);
    comm.allreduce_sum(std::span<float>(buf));
    comm.allreduce_sum(std::span<float>(buf));  // rank 1 sleeps here, then arrives
    for (const float v : buf) EXPECT_EQ(v, 18.0f);
  });
  EXPECT_TRUE(world.failed_ranks().empty());
  EXPECT_EQ(world.world_size(), 3);
}

TEST_P(CommFaults, PathologicalStragglerHitsTimeoutWithoutRetirement) {
  // A rank delayed past the timeout looks like a hang to the others:
  // everyone throws, but nobody died, so no rank is retired.
  CommWorld world(2, world_options(0.25));
  FaultPlan plan;
  plan.events.push_back({.rank = 1, .kind = FaultKind::Delay,
                         .at_collective = 0, .delay_seconds = 1.5});
  world.inject_faults(plan);

  EXPECT_THROW(world.run([&](Communicator& comm) {
    WireCodecScope codec_scope(comm, codec());
    std::vector<float> buf(4, 1.0f);
    comm.allreduce_sum(std::span<float>(buf));
  }),
               CollectiveTimeoutError);
  EXPECT_TRUE(world.failed_ranks().empty());
  EXPECT_EQ(world.world_size(), 2);

  // The world recovers once the straggler returns: barriers were
  // poisoned, not destroyed, and the next run() resets them.
  world.run([&](Communicator& comm) {
    WireCodecScope codec_scope(comm, codec());
    std::vector<float> buf(2, 1.0f);
    comm.allreduce_sum(std::span<float>(buf));
    for (const float v : buf) EXPECT_EQ(v, 2.0f);
  });
}

TEST_P(CommFaults, CorruptPayloadPoisonsEveryRankIdentically) {
  CommWorld world(2, world_options());
  FaultPlan plan;
  plan.events.push_back({.rank = 1, .kind = FaultKind::Corrupt,
                         .at_collective = 0});
  world.inject_faults(plan);

  std::atomic<int> nan_ranks{0};
  world.run([&](Communicator& comm) {
    // The poison is injected into the input buffer, upstream of the
    // encoder; the lossless codec must carry the NaNs through intact.
    WireCodecScope codec_scope(comm, codec());
    std::vector<float> buf(8, 1.0f);
    comm.allreduce_sum(std::span<float>(buf));
    bool all_nan = true;
    for (const float v : buf) all_nan = all_nan && std::isnan(v);
    if (all_nan) nan_ranks.fetch_add(1);
  });
  // The ring reduction spreads the poison to both ranks in full.
  EXPECT_EQ(nan_ranks.load(), 2);
  EXPECT_TRUE(world.failed_ranks().empty());
}

TEST_P(CommFaults, RejectsOutOfRangeFaultRank) {
  CommWorld world(2, world_options());
  FaultPlan plan;
  plan.events.push_back({.rank = 5, .kind = FaultKind::Kill,
                         .at_collective = 0});
  EXPECT_THROW(world.inject_faults(plan), ConfigError);
}

TEST_P(CommFaults, TrainerSkipsCorruptedStepUniformly) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 1200, 21);
  const auto valid = tiny_corpus(vocab, 300, 22);

  CommWorld world(2, world_options());
  TrainerOptions opt = trainer_options(char_options());
  opt.dynamic_loss_scale = true;  // arms the overflow guard
  DistributedTrainer trainer(world, char_factory(vocab), opt);

  // Collective 0 of the epoch is the first step's dense-gradient
  // allreduce: the poisoned payload reduces to NaN on both ranks, so
  // both skip the same optimizer step and the replicas never diverge.
  FaultPlan plan;
  plan.events.push_back({.rank = 1, .kind = FaultKind::Corrupt,
                         .at_collective = 0});
  world.inject_faults(plan);

  const auto stats = trainer.run_epoch(train, valid, 0);
  EXPECT_EQ(stats.skipped_steps, 1u);
  EXPECT_GT(stats.steps, stats.skipped_steps);
  EXPECT_TRUE(trainer.replicas_in_sync());
  EXPECT_TRUE(std::isfinite(stats.train_loss));
  EXPECT_TRUE(std::isfinite(stats.valid_loss));
}

TEST_P(CommFaults, ResilientEpochRollsBackAndExcludesDeadRank) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 1200, 31);
  const auto valid = tiny_corpus(vocab, 300, 32);
  // Same codec in the clean reference and the faulty run: the rollback
  // must reproduce the clean trajectory under either wire format.
  const TrainerOptions opt = trainer_options(char_options());
  const std::string ckpt =
      ::testing::TempDir() + "zipflm_resilient.ckpt";

  // Reference: the same epoch over a 2-rank world that never failed.
  CommWorld clean_world(2);
  DistributedTrainer clean(clean_world, char_factory(vocab), opt);
  const auto want = clean.run_epoch(train, valid, 0);

  // Faulty run: 3 ranks, rank 1 dies mid-epoch.  The resilient driver
  // rolls the survivors back to the epoch-start checkpoint and reruns
  // over ranks {0, 2} — which must reproduce the clean 2-rank epoch
  // bit for bit, because the checkpoint restored the initial state and
  // the survivors are densely renumbered to a 2-rank schedule.
  CommWorld world(3, world_options(2.0));
  DistributedTrainer trainer(world, char_factory(vocab), opt);
  FaultPlan plan;
  plan.events.push_back({.rank = 1, .kind = FaultKind::Kill,
                         .at_collective = 40});
  world.inject_faults(plan);

  const auto got = trainer.run_epoch_resilient(train, valid, 0, ckpt);
  EXPECT_EQ(got.restarts, 1);
  EXPECT_EQ(world.failed_ranks(), (std::vector<int>{1}));
  EXPECT_EQ(world.world_size(), 2);
  EXPECT_TRUE(trainer.replicas_in_sync());
  EXPECT_EQ(got.train_loss, want.train_loss);
  EXPECT_EQ(got.valid_loss, want.valid_loss);

  // And the degraded trainer keeps training normally afterwards.
  const auto next = trainer.run_epoch(train, valid, 1);
  EXPECT_TRUE(std::isfinite(next.train_loss));
  std::remove(ckpt.c_str());
}

TEST_P(CommFaults, ResilientEpochGivesUpAfterMaxRestarts) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 1200, 41);
  const auto valid = tiny_corpus(vocab, 300, 42);
  const std::string ckpt =
      ::testing::TempDir() + "zipflm_give_up.ckpt";

  CommWorld world(3, world_options(1.0));
  DistributedTrainer trainer(world, char_factory(vocab),
                             trainer_options(char_options()));
  FaultPlan plan;
  // Two deaths, one per restart attempt: with max_restarts = 1 the
  // second CollectiveTimeoutError must escape.
  plan.events.push_back({.rank = 1, .kind = FaultKind::Kill,
                         .at_collective = 10});
  plan.events.push_back({.rank = 2, .kind = FaultKind::Kill,
                         .at_collective = 30});
  world.inject_faults(plan);

  EXPECT_THROW(trainer.run_epoch_resilient(train, valid, 0, ckpt, 1),
               CollectiveTimeoutError);
  EXPECT_EQ(world.failed_ranks().size(), 2u);
  std::remove(ckpt.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CommFaults,
    ::testing::Combine(
        ::testing::Values(CommBackend::SharedMem, CommBackend::Socket),
        ::testing::Values(WireCodec::None, WireCodec::Packed)),
    [](const ::testing::TestParamInfo<std::tuple<CommBackend, WireCodec>>&
           info) {
      const std::string backend =
          std::get<0>(info.param) == CommBackend::SharedMem ? "SharedMem"
                                                            : "Socket";
      const std::string wire =
          std::get<1>(info.param) == WireCodec::None ? "Raw" : "Coded";
      return backend + wire;
    });

}  // namespace
}  // namespace zipflm
