#include <gtest/gtest.h>

#include "zipflm/tensor/tensor.hpp"

namespace zipflm {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  for (float v : t.data()) EXPECT_EQ(v, 3.5f);
  t.zero();
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, AccessorsRowMajor) {
  Tensor t({2, 3});
  t(0, 0) = 1;
  t(0, 2) = 2;
  t(1, 1) = 3;
  EXPECT_EQ(t.data()[0], 1.0f);
  EXPECT_EQ(t.data()[2], 2.0f);
  EXPECT_EQ(t.data()[4], 3.0f);
}

TEST(Tensor, RowViewAliasesStorage) {
  Tensor t({3, 2});
  auto row = t.row(1);
  row[0] = 9.0f;
  EXPECT_EQ(t(1, 0), 9.0f);
  EXPECT_EQ(row.size(), 2u);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t(1, 5) = 42.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t(2, 3), 42.0f);
  EXPECT_THROW(t.reshape({5, 5}), ConfigError);
}

TEST(Tensor, RandnMomentsApproximatelyStandard) {
  Rng rng(5);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
  double sum = 0, sum2 = 0;
  for (float v : t.data()) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 4.0, 0.15);
}

TEST(Tensor, UniformStaysInRange) {
  Rng rng(6);
  Tensor t = Tensor::uniform({50, 50}, rng, -0.25f, 0.25f);
  for (float v : t.data()) {
    EXPECT_GE(v, -0.25f);
    EXPECT_LT(v, 0.25f);
  }
}

TEST(Tensor, EqualityIsShapeAndValueSensitive) {
  Tensor a({2, 2});
  Tensor b({2, 2});
  EXPECT_TRUE(a == b);
  b(1, 1) = 1e-7f;
  EXPECT_FALSE(a == b);
  Tensor c({4});
  EXPECT_FALSE(a == c);
}

TEST(Tensor, OneDimensionalAccess) {
  Tensor v({5});
  v(3) = 2.0f;
  EXPECT_EQ(v(3), 2.0f);
  EXPECT_EQ(v.rank(), 1);
}

TEST(Tensor, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  Tensor z({0, 7});
  EXPECT_TRUE(z.empty());
  EXPECT_EQ(z.cols(), 7);
}

TEST(Tensor, BytesReportsPayload) {
  Tensor t({10, 10});
  EXPECT_EQ(t.bytes(), 400u);
}

TEST(Tensor, NegativeDimensionRejected) {
  EXPECT_THROW(Tensor(std::vector<Index>{-1, 3}), ConfigError);
}

}  // namespace
}  // namespace zipflm
