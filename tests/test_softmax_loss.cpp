// Output-embedding losses: gradient checks and full-vs-sampled agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "zipflm/nn/gradcheck.hpp"
#include "zipflm/nn/softmax_loss.hpp"

namespace zipflm {
namespace {

TEST(FullSoftmaxLoss, GradientsMatchFiniteDifferences) {
  Rng rng(1);
  const Index v = 7, d = 4, n = 5;
  FullSoftmaxLoss loss(v, d, rng);
  Tensor h = Tensor::randn({n, d}, rng, 0.8f);
  std::vector<Index> targets = {0, 3, 6, 3, 1};

  auto loss_fn = [&] { return static_cast<double>(loss.loss(h, targets)); };

  Tensor dh;
  loss.embedding().zero_grad();
  loss.bias().zero_grad();
  const float l = loss.forward_backward(h, targets, dh);
  EXPECT_NEAR(l, loss_fn(), 1e-5);

  EXPECT_TRUE(grad_check(h, dh, loss_fn, 3e-3).passed(3e-2));
  EXPECT_TRUE(
      grad_check(loss.embedding().value, loss.embedding().grad, loss_fn, 3e-3)
          .passed(3e-2));
  EXPECT_TRUE(grad_check(loss.bias().value, loss.bias().grad, loss_fn, 1e-3)
                  .passed(3e-2));
}

TEST(FullSoftmaxLoss, UniformLogitsGiveLogVocabLoss) {
  Rng rng(2);
  const Index v = 50;
  FullSoftmaxLoss loss(v, 3, rng, /*init_scale=*/0.0f);  // zero embedding
  Tensor h({4, 3});
  std::vector<Index> targets = {0, 10, 20, 49};
  const float l = loss.loss(h, targets);
  EXPECT_NEAR(l, std::log(static_cast<float>(v)), 1e-4);
}

TEST(SampledSoftmaxLoss, MatchesFullWhenCandidatesAreWholeVocab) {
  Rng rng(3);
  const Index v = 9, d = 5, n = 6;
  SampledSoftmaxLoss sampled(v, d, rng);
  Tensor h = Tensor::randn({n, d}, rng, 0.5f);
  std::vector<Index> targets = {1, 8, 0, 4, 4, 2};
  std::vector<Index> all(static_cast<std::size_t>(v));
  for (Index i = 0; i < v; ++i) all[static_cast<std::size_t>(i)] = i;

  Tensor dh;
  SparseRowGrad grad;
  const float l = sampled.forward_backward(h, targets, all, dh, grad);
  const float full = sampled.full_loss(h, targets);
  EXPECT_NEAR(l, full, 1e-5);
  ASSERT_EQ(grad.ids.size(), static_cast<std::size_t>(v));
}

TEST(SampledSoftmaxLoss, GradientsMatchFiniteDifferencesOnCandidateSet) {
  Rng rng(4);
  const Index v = 12, d = 3, n = 4;
  SampledSoftmaxLoss sampled(v, d, rng);
  Tensor h = Tensor::randn({n, d}, rng, 0.6f);
  std::vector<Index> targets = {2, 5, 7, 2};
  std::vector<Index> candidates = {1, 2, 5, 7, 9};

  // Reference loss recomputed through the same sampled path.
  auto loss_fn = [&] {
    Tensor dh_tmp;
    SparseRowGrad g_tmp;
    return static_cast<double>(
        sampled.forward_backward(h, targets, candidates, dh_tmp, g_tmp));
  };

  Tensor dh;
  SparseRowGrad grad;
  sampled.forward_backward(h, targets, candidates, dh, grad);

  EXPECT_TRUE(grad_check(h, dh, loss_fn, 3e-3).passed(3e-2));

  // Candidate-row gradients: perturb one embedding row element.
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    for (Index j = 0; j < d; ++j) {
      float& w = sampled.embedding().value(candidates[ci], j);
      const float orig = w;
      const double eps = 1e-3;
      w = orig + static_cast<float>(eps);
      const double up = loss_fn();
      w = orig - static_cast<float>(eps);
      const double down = loss_fn();
      w = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grad.rows(static_cast<Index>(ci), j), numeric, 5e-3)
          << "candidate " << ci << " dim " << j;
    }
    // Bias gradient.
    float& b = sampled.bias().value(candidates[ci]);
    const float orig = b;
    b = orig + 1e-3f;
    const double up = loss_fn();
    b = orig - 1e-3f;
    const double down = loss_fn();
    b = orig;
    EXPECT_NEAR(grad.bias_rows(static_cast<Index>(ci)),
                (up - down) / 2e-3, 5e-3);
  }
}

TEST(SampledSoftmaxLoss, ConstantLogQCorrectionIsANoOp) {
  // Softmax is shift-invariant per row: subtracting the same log q from
  // every candidate changes nothing.
  Rng rng(8);
  const Index v = 10, d = 4, n = 3;
  SampledSoftmaxLoss sampled(v, d, rng);
  Tensor h = Tensor::randn({n, d}, rng);
  std::vector<Index> targets = {0, 4, 9};
  std::vector<Index> candidates = {0, 2, 4, 9};
  std::vector<float> logq(candidates.size(), 1.7f);

  Tensor dh_a, dh_b;
  SparseRowGrad ga, gb;
  const float a = sampled.forward_backward(h, targets, candidates, dh_a, ga);
  const float b =
      sampled.forward_backward(h, targets, candidates, dh_b, gb, logq);
  EXPECT_NEAR(a, b, 1e-5f);
  for (Index i = 0; i < dh_a.size(); ++i) {
    EXPECT_NEAR(dh_a.data()[static_cast<std::size_t>(i)],
                dh_b.data()[static_cast<std::size_t>(i)], 1e-5f);
  }
}

TEST(SampledSoftmaxLoss, NonUniformLogQChangesTheLoss) {
  Rng rng(9);
  const Index v = 10, d = 4, n = 3;
  SampledSoftmaxLoss sampled(v, d, rng);
  Tensor h = Tensor::randn({n, d}, rng);
  std::vector<Index> targets = {0, 4, 9};
  std::vector<Index> candidates = {0, 2, 4, 9};
  // Frequent candidate 0 heavily oversampled -> large log q -> its logit
  // is pushed down, raising p(target=0)'s competitors... the loss must
  // differ from the uncorrected one.
  std::vector<float> logq = {2.0f, -1.0f, 0.0f, -2.0f};
  Tensor dh_a, dh_b;
  SparseRowGrad ga, gb;
  const float a = sampled.forward_backward(h, targets, candidates, dh_a, ga);
  const float b =
      sampled.forward_backward(h, targets, candidates, dh_b, gb, logq);
  EXPECT_NE(a, b);
}

TEST(SampledSoftmaxLoss, RejectsMismatchedLogQ) {
  Rng rng(10);
  SampledSoftmaxLoss sampled(10, 2, rng);
  Tensor h({1, 2});
  std::vector<Index> targets = {1};
  std::vector<Index> candidates = {1, 2};
  std::vector<float> logq = {0.0f};  // wrong length
  Tensor dh;
  SparseRowGrad grad;
  EXPECT_THROW(
      sampled.forward_backward(h, targets, candidates, dh, grad, logq),
      ConfigError);
}

TEST(SampledSoftmaxLoss, RejectsTargetOutsideCandidates) {
  Rng rng(5);
  SampledSoftmaxLoss sampled(10, 2, rng);
  Tensor h({1, 2});
  std::vector<Index> targets = {7};
  std::vector<Index> candidates = {1, 2, 3};
  Tensor dh;
  SparseRowGrad grad;
  EXPECT_THROW(sampled.forward_backward(h, targets, candidates, dh, grad),
               ConfigError);
}

TEST(SampledSoftmaxLoss, RejectsDuplicateCandidates) {
  Rng rng(6);
  SampledSoftmaxLoss sampled(10, 2, rng);
  Tensor h({1, 2});
  std::vector<Index> targets = {1};
  std::vector<Index> candidates = {1, 2, 2};
  Tensor dh;
  SparseRowGrad grad;
  EXPECT_THROW(sampled.forward_backward(h, targets, candidates, dh, grad),
               ConfigError);
}

TEST(SampledSoftmaxLoss, SmallerCandidateSetUnderestimatesLoss) {
  // Sampled softmax normalizes over fewer words, so training loss is an
  // underestimate of the full loss — the reason eval uses full_loss.
  Rng rng(7);
  const Index v = 64, d = 8, n = 10;
  SampledSoftmaxLoss sampled(v, d, rng);
  Tensor h = Tensor::randn({n, d}, rng);
  std::vector<Index> targets(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) targets[static_cast<std::size_t>(i)] = i;

  std::vector<Index> small;
  for (Index i = 0; i < 16; ++i) small.push_back(i);
  Tensor dh;
  SparseRowGrad grad;
  const float sampled_loss =
      sampled.forward_backward(h, targets, small, dh, grad);
  const float full = sampled.full_loss(h, targets);
  EXPECT_LT(sampled_loss, full + 1e-4f);
}

}  // namespace
}  // namespace zipflm
