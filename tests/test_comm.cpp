// Collective correctness and accounting for the thread-backed runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {
namespace {

// World sizes exercising 1 rank, 2 ranks, odd counts, non-power-of-two,
// and one "multi-node" shape (world 16 => 2 nodes of 8).
class CommWorldSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Worlds, CommWorldSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

// Buffer sizes below/at/above the chunking threshold, including sizes
// not divisible by the world size.
const std::size_t kSizes[] = {1, 2, 7, 64, 129, 1000};

TEST_P(CommWorldSizes, AllReduceSumMatchesSequentialReference) {
  const int g = GetParam();
  CommWorld world(g);
  for (const std::size_t n : kSizes) {
    // Rank r contributes (r+1) * base[i]; expected sum is
    // base[i] * g(g+1)/2.
    std::vector<float> base(n);
    Rng rng(123);
    for (auto& v : base) v = static_cast<float>(rng.uniform(-2.0, 2.0));

    std::vector<std::vector<float>> results(static_cast<std::size_t>(g));
    world.run([&](Communicator& comm) {
      std::vector<float> data(n);
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = base[i] * static_cast<float>(comm.rank() + 1);
      }
      comm.allreduce_sum(std::span<float>(data));
      results[static_cast<std::size_t>(comm.rank())] = data;
    });

    const float factor = static_cast<float>(g) * (g + 1) / 2.0f;
    for (int r = 0; r < g; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(results[static_cast<std::size_t>(r)][i],
                    base[i] * factor, 1e-4f * static_cast<float>(g))
            << "world=" << g << " n=" << n << " rank=" << r << " i=" << i;
      }
    }
    // All ranks must hold bit-identical results.
    for (int r = 1; r < g; ++r) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
    }
  }
}

TEST_P(CommWorldSizes, AllReduceMaxMatchesReference) {
  const int g = GetParam();
  CommWorld world(g);
  const std::size_t n = 257;
  std::vector<std::vector<float>> inputs(static_cast<std::size_t>(g),
                                         std::vector<float>(n));
  Rng rng(99);
  for (auto& in : inputs) {
    for (auto& v : in) v = static_cast<float>(rng.uniform(-5.0, 5.0));
  }
  std::vector<float> expected(n, -1e30f);
  for (const auto& in : inputs) {
    for (std::size_t i = 0; i < n; ++i) expected[i] = std::max(expected[i], in[i]);
  }

  world.run([&](Communicator& comm) {
    auto data = inputs[static_cast<std::size_t>(comm.rank())];
    comm.allreduce_max(std::span<float>(data));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i], expected[i]) << "rank " << comm.rank();
    }
  });
}

TEST_P(CommWorldSizes, AllGatherConcatenatesByRank) {
  const int g = GetParam();
  CommWorld world(g);
  for (const std::size_t n : kSizes) {
    world.run([&](Communicator& comm) {
      std::vector<std::int64_t> local(n);
      for (std::size_t i = 0; i < n; ++i) {
        local[i] = comm.rank() * 1000 + static_cast<std::int64_t>(i);
      }
      std::vector<std::int64_t> out;
      comm.allgather(std::span<const std::int64_t>(local), out);
      ASSERT_EQ(out.size(), n * static_cast<std::size_t>(g));
      for (int r = 0; r < g; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[static_cast<std::size_t>(r) * n + i],
                    r * 1000 + static_cast<std::int64_t>(i));
        }
      }
    });
  }
}

TEST_P(CommWorldSizes, AllGatherVHandlesRankDependentSizes) {
  const int g = GetParam();
  CommWorld world(g);
  world.run([&](Communicator& comm) {
    // Rank r contributes r+1 elements (rank 2 contributes 0 to exercise
    // the empty-block path when the world is large enough).
    std::size_t mine = static_cast<std::size_t>(comm.rank()) + 1;
    if (comm.rank() == 2) mine = 0;
    std::vector<double> local(mine, comm.rank() + 0.5);
    std::vector<double> out;
    std::vector<std::size_t> counts;
    comm.allgatherv(std::span<const double>(local), out, &counts);

    ASSERT_EQ(counts.size(), static_cast<std::size_t>(g));
    std::size_t offset = 0;
    for (int r = 0; r < g; ++r) {
      std::size_t expect_count = static_cast<std::size_t>(r) + 1;
      if (r == 2) expect_count = 0;
      ASSERT_EQ(counts[static_cast<std::size_t>(r)], expect_count);
      for (std::size_t i = 0; i < expect_count; ++i) {
        ASSERT_DOUBLE_EQ(out[offset + i], r + 0.5);
      }
      offset += expect_count;
    }
    ASSERT_EQ(out.size(), offset);
  });
}

TEST_P(CommWorldSizes, BroadcastDeliversRootPayload) {
  const int g = GetParam();
  CommWorld world(g);
  for (int root = 0; root < g; root += std::max(1, g / 3)) {
    world.run([&](Communicator& comm) {
      std::vector<float> data(33, comm.rank() == root ? 7.25f : 0.0f);
      comm.broadcast(std::span<float>(data), root);
      for (float v : data) ASSERT_EQ(v, 7.25f);
    });
  }
}

TEST_P(CommWorldSizes, Fp16AllReduceSumsWithHalfPrecision) {
  const int g = GetParam();
  CommWorld world(g);
  const std::size_t n = 100;
  world.run([&](Communicator& comm) {
    std::vector<Half> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = Half(static_cast<float>(i % 10) + 0.5f);
    }
    comm.allreduce_sum(std::span<Half>(data));
    for (std::size_t i = 0; i < n; ++i) {
      const float expect = (static_cast<float>(i % 10) + 0.5f) * g;
      // Values of this magnitude are exactly representable in binary16
      // up to world sizes used here.
      EXPECT_NEAR(static_cast<float>(data[i]), expect, expect * 0.01f + 0.01f);
    }
  });
}

TEST(CommWorld, MismatchedCollectivesThrowOnEveryRank) {
  CommWorld world(2);
  std::atomic<int> throws{0};
  EXPECT_THROW(
      world.run([&](Communicator& comm) {
        std::vector<float> data(8, 1.0f);
        try {
          if (comm.rank() == 0) {
            comm.allreduce_sum(std::span<float>(data));
          } else {
            comm.allreduce_max(std::span<float>(data));
          }
        } catch (const CollectiveMismatchError&) {
          ++throws;
          throw;
        }
      }),
      CollectiveMismatchError);
  EXPECT_EQ(throws.load(), 2);
}

TEST(CommWorld, MismatchedSizesDetected) {
  CommWorld world(3);
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 std::vector<float> data(
                     comm.rank() == 1 ? 9u : 8u, 1.0f);
                 comm.allreduce_sum(std::span<float>(data));
               }),
               CollectiveMismatchError);
}

TEST(CommWorld, RankExceptionDoesNotDeadlockOtherRanks) {
  CommWorld world(4);
  EXPECT_THROW(world.run([&](Communicator& comm) {
                 if (comm.rank() == 2) {
                   throw ConfigError("simulated rank failure");
                 }
                 // Other ranks block on a barrier; the abort must free
                 // them instead of hanging the test.
                 comm.barrier();
               }),
               ConfigError);
  // The world must be usable again after a failure.
  world.run([](Communicator& comm) { comm.barrier(); });
}

TEST(CommWorld, LedgerCountsRingAllReduceBytes) {
  const int g = 4;
  CommWorld world(g);
  const std::size_t n = 80;  // divisible by 4: every chunk is 20 floats
  world.run([&](Communicator& comm) {
    std::vector<float> data(n, 1.0f);
    comm.allreduce_sum(std::span<float>(data));
  });
  // Each rank forwards 2*(n - chunk) elements = 2*(80-20)*4 bytes.
  for (int r = 0; r < g; ++r) {
    EXPECT_EQ(world.ledger(r).bytes_sent, 2u * 60u * sizeof(float));
    EXPECT_EQ(world.ledger(r).bytes_received, 2u * 60u * sizeof(float));
    EXPECT_EQ(world.ledger(r).allreduce_calls, 1u);
    EXPECT_GT(world.ledger(r).simulated_comm_seconds, 0.0);
  }
}

TEST(CommWorld, LedgerCountsAllGatherBytesAndScratch) {
  const int g = 5;
  CommWorld world(g);
  const std::size_t n = 12;
  world.run([&](Communicator& comm) {
    std::vector<float> local(n, 1.0f);
    std::vector<float> out;
    comm.allgather(std::span<const float>(local), out);
  });
  for (int r = 0; r < g; ++r) {
    EXPECT_EQ(world.ledger(r).bytes_sent, (g - 1) * n * sizeof(float));
    EXPECT_EQ(world.ledger(r).max_collective_scratch_bytes,
              g * n * sizeof(float));
  }
}

TEST(CommWorld, SimulatedTimeUsesInterNodeLinkAcrossNodes) {
  // 16 ranks => 2 nodes of 8: the ring crosses the slower fabric.
  CommWorld one_node(8);
  CommWorld two_nodes(16);
  const std::size_t n = 1 << 16;

  auto measure = [&](CommWorld& world) {
    world.run([&](Communicator& comm) {
      std::vector<float> data(n, 1.0f);
      comm.allreduce_sum(std::span<float>(data));
    });
    return world.max_simulated_comm_seconds();
  };
  const double t8 = measure(one_node);
  const double t16 = measure(two_nodes);
  // More ranks and a slower bottleneck: strictly more simulated time.
  EXPECT_GT(t16, t8);
}

TEST(CommWorld, BarrierGenerationAdvancesTogether) {
  CommWorld world(6);
  std::atomic<std::uint64_t> sum{0};
  world.run([&](Communicator& comm) {
    for (int i = 0; i < 10; ++i) comm.barrier();
    sum += static_cast<std::uint64_t>(comm.rank());
  });
  EXPECT_EQ(sum.load(), 15u);
}

TEST(Topology, ForWorldFillsWholeNodes) {
  EXPECT_EQ(Topology::for_world(6).nodes, 1);
  EXPECT_EQ(Topology::for_world(6).gpus_per_node, 6);
  EXPECT_EQ(Topology::for_world(8).nodes, 1);
  EXPECT_EQ(Topology::for_world(64).nodes, 8);
  EXPECT_EQ(Topology::for_world(192).nodes, 24);
  EXPECT_THROW(Topology::for_world(12), ConfigError);
}

TEST(Topology, NodeMembership) {
  const Topology t{3, 8};
  EXPECT_EQ(t.world_size(), 24);
  EXPECT_TRUE(t.same_node(0, 7));
  EXPECT_FALSE(t.same_node(7, 8));
  EXPECT_EQ(t.node_of(23), 2);
  EXPECT_TRUE(t.ring_crosses_nodes());
}

TEST(CostModel, ClosedFormsScaleWithSizeAndWorld) {
  const CostModel cm = CostModel::titan_x_cluster();
  const Topology t8 = Topology::for_world(8);
  const Topology t64 = Topology::for_world(64);
  EXPECT_EQ(cm.ring_allreduce_seconds(t8, 0), 0.0);
  EXPECT_GT(cm.ring_allreduce_seconds(t8, 1 << 20), 0.0);
  EXPECT_GT(cm.ring_allreduce_seconds(t8, 2 << 20),
            cm.ring_allreduce_seconds(t8, 1 << 20));
  // Same payload across more, slower links costs more.
  EXPECT_GT(cm.ring_allgather_seconds(t64, 1 << 20),
            cm.ring_allgather_seconds(t8, 1 << 20));
}

}  // namespace
}  // namespace zipflm
