// End-to-end distributed training: replicas stay synchronized, loss
// falls, unique == dense trajectories, memory/OOM behaviour.
#include <gtest/gtest.h>

#include "zipflm/core/trainer.hpp"
#include "zipflm/data/corpus.hpp"

namespace zipflm {
namespace {

std::vector<Index> tiny_corpus(Index vocab, std::size_t n,
                               std::uint64_t seed) {
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.1);
  Rng rng(seed);
  std::vector<Index> ids(n);
  for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
  return ids;
}

TrainerOptions tiny_options() {
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 6};
  opt.base_lr = 0.2f;
  opt.lr_decay = 1.0f;
  opt.clip = 5.0f;
  opt.charge_static_memory = false;
  return opt;
}

DistributedTrainer::ModelFactory tiny_word_factory(Index vocab) {
  return [vocab](int /*rank*/) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 12;
    cfg.proj_dim = 8;
    cfg.seed = 1234;
    return std::make_unique<WordLm>(cfg);
  };
}

DistributedTrainer::ModelFactory tiny_char_factory(Index vocab) {
  return [vocab](int /*rank*/) -> std::unique_ptr<LmModel> {
    CharLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 10;
    cfg.depth = 2;
    cfg.seed = 99;
    return std::make_unique<CharLm>(cfg);
  };
}

TEST(Trainer, CharLmLossDecreasesOverEpochs) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 4000, 1);
  const auto valid = tiny_corpus(vocab, 600, 2);

  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  DistributedTrainer trainer(world, tiny_char_factory(vocab), opt);

  const auto first = trainer.run_epoch(train, valid, 0);
  EXPECT_GT(first.steps, 10u);
  EpochStats last = first;
  for (int e = 1; e < 4; ++e) last = trainer.run_epoch(train, valid, e);
  EXPECT_LT(last.valid_loss, first.valid_loss)
      << "training must improve validation loss";
  EXPECT_GT(first.valid_perplexity, 1.0);
}

TEST(Trainer, WordLmWithSampledSoftmaxTrains) {
  const Index vocab = 60;
  const auto train = tiny_corpus(vocab, 4000, 3);
  const auto valid = tiny_corpus(vocab, 600, 4);

  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.samples_per_rank = 16;
  opt.seed_policy = SeedPolicy::ZipfFreq;
  opt.base_lr = 0.3f;
  DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);

  const auto first = trainer.run_epoch(train, valid, 0);
  EpochStats last = first;
  for (int e = 1; e < 4; ++e) last = trainer.run_epoch(train, valid, e);
  EXPECT_LT(last.valid_loss, first.valid_loss);
  EXPECT_GT(first.global_unique_sum, 0u);
}

TEST(Trainer, ReplicasStayBitIdentical) {
  const Index vocab = 40;
  const auto train = tiny_corpus(vocab, 3000, 5);
  const auto valid = tiny_corpus(vocab, 400, 6);

  for (const bool unique : {true, false}) {
    CommWorld world(4);
    TrainerOptions opt = tiny_options();
    opt.unique_exchange = unique;
    opt.samples_per_rank = 12;
    DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);
    EXPECT_TRUE(trainer.replicas_in_sync()) << "factory must be rank-blind";
    trainer.run_epoch(train, valid, 0);
    EXPECT_TRUE(trainer.replicas_in_sync())
        << (unique ? "unique" : "dense")
        << " exchange let replicas diverge";
  }
}

TEST(Trainer, UniqueAndDenseExchangeGiveSameTrajectory) {
  const Index vocab = 25;
  const auto train = tiny_corpus(vocab, 2500, 7);
  const auto valid = tiny_corpus(vocab, 500, 8);

  double losses[2];
  for (const bool unique : {false, true}) {
    CommWorld world(3);
    TrainerOptions opt = tiny_options();
    opt.unique_exchange = unique;
    DistributedTrainer trainer(world, tiny_char_factory(vocab), opt);
    const auto stats = trainer.run_epoch(train, valid, 0);
    losses[unique ? 1 : 0] = stats.valid_loss;
  }
  // Same data, same seeds: only float summation order differs.
  EXPECT_NEAR(losses[0], losses[1], 1e-3);
}

TEST(Trainer, UniqueExchangeMovesFewerBytes) {
  // Wide embeddings + a heavy-tailed corpus: the regime where the paper's
  // savings appear (payload dominates indices, U_g << G*K).
  const Index vocab = 500;
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.6);
  Rng rng(9);
  std::vector<Index> train(20000), valid(500);
  for (auto& id : train) id = static_cast<Index>(sampler.sample(rng) - 1);
  for (auto& id : valid) id = static_cast<Index>(sampler.sample(rng) - 1);

  auto wide_factory = [vocab](int) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 32;
    cfg.hidden_dim = 16;
    cfg.proj_dim = 16;
    cfg.seed = 77;
    return std::make_unique<WordLm>(cfg);
  };

  std::uint64_t bytes[2];
  for (const bool unique : {false, true}) {
    CommWorld world(4);
    TrainerOptions opt = tiny_options();
    opt.unique_exchange = unique;
    opt.batch = BatchSpec{8, 32};
    opt.samples_per_rank = 32;
    DistributedTrainer trainer(world, wide_factory, opt);
    const auto stats = trainer.run_epoch(train, valid, 0);
    bytes[unique ? 1 : 0] = stats.comm_total.bytes_sent;
  }
  EXPECT_LT(bytes[1], bytes[0]);
}

TEST(Trainer, CompressionHalvesEmbeddingWireBytesAndStillLearns) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 3000, 11);
  const auto valid = tiny_corpus(vocab, 400, 12);

  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.wire = WirePrecision::FP16;
  opt.compression_scale = 512.0f;
  opt.use_adam = true;
  opt.base_lr = 5e-3f;
  DistributedTrainer trainer(world, tiny_char_factory(vocab), opt);
  const auto first = trainer.run_epoch(train, valid, 0);
  EpochStats last = first;
  for (int e = 1; e < 4; ++e) last = trainer.run_epoch(train, valid, e);
  EXPECT_LT(last.valid_loss, first.valid_loss)
      << "FP16-compressed training must still converge";
  EXPECT_TRUE(trainer.replicas_in_sync());
}

TEST(Trainer, StatsArePopulated) {
  const Index vocab = 30;
  const auto train = tiny_corpus(vocab, 2000, 13);
  const auto valid = tiny_corpus(vocab, 300, 14);

  CommWorld world(2);
  TrainerOptions opt = tiny_options();
  opt.charge_static_memory = true;
  DistributedTrainer trainer(world, tiny_char_factory(vocab), opt);
  const auto stats = trainer.run_epoch(train, valid, 0);

  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.train_loss, 0.0);
  EXPECT_GT(stats.valid_loss, 0.0);
  EXPECT_GT(stats.comm_total.bytes_sent, 0u);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
  EXPECT_GT(stats.sim_compute_seconds, 0.0);
  EXPECT_GT(stats.sim_comm_seconds, 0.0);
  EXPECT_NEAR(stats.sim_total_seconds,
              stats.sim_compute_seconds + stats.sim_comm_seconds, 1e-12);
}

TEST(Trainer, TinyDeviceOOMsWithDenseExchange) {
  const Index vocab = 2000;
  const auto train = tiny_corpus(vocab, 60000, 15);
  const auto valid = tiny_corpus(vocab, 500, 16);

  CommWorld world(4);
  TrainerOptions opt = tiny_options();
  opt.unique_exchange = false;
  opt.batch = BatchSpec{8, 32};
  opt.samples_per_rank = 256;
  // Tiny card: the G*(K+S)*D allgather scratch cannot fit.
  opt.device.memory_bytes = 32 << 10;  // 32 KB
  opt.charge_static_memory = false;

  DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);
  EXPECT_THROW(trainer.run_epoch(train, valid, 0), OutOfMemoryError);
}

TEST(Trainer, EvaluateIsPureAndRepeatable) {
  const Index vocab = 30;
  const auto valid = tiny_corpus(vocab, 800, 17);
  CommWorld world(2);
  DistributedTrainer trainer(world, tiny_char_factory(vocab),
                             tiny_options());
  const double a = trainer.evaluate(valid);
  const double b = trainer.evaluate(valid);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(trainer.replicas_in_sync());
}

}  // namespace
}  // namespace zipflm
