// Kernel correctness: every op against a naive reference.
#include <gtest/gtest.h>

#include <cmath>

#include "zipflm/tensor/ops.hpp"

namespace zipflm {
namespace {

Tensor naive_gemm(const Tensor& a, bool ta, const Tensor& b, bool tb,
                  float alpha) {
  const Index m = ta ? a.cols() : a.rows();
  const Index k = ta ? a.rows() : a.cols();
  const Index n = tb ? b.rows() : b.cols();
  Tensor c({m, n});
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      double acc = 0.0;
      for (Index kk = 0; kk < k; ++kk) {
        const float av = ta ? a(kk, i) : a(i, kk);
        const float bv = tb ? b(j, kk) : b(kk, j);
        acc += static_cast<double>(av) * bv;
      }
      c(i, j) = alpha * static_cast<float>(acc);
    }
  }
  return c;
}

struct GemmCase {
  Index m, n, k;
  bool ta, tb;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1, false, false},
                      GemmCase{3, 5, 2, false, false},
                      GemmCase{4, 4, 4, true, false},
                      GemmCase{5, 3, 7, false, true},
                      GemmCase{6, 2, 3, true, true},
                      GemmCase{33, 129, 65, false, false},
                      GemmCase{64, 31, 130, true, false},
                      GemmCase{17, 40, 128, false, true}));

TEST_P(GemmSweep, MatchesNaiveReference) {
  const auto c = GetParam();
  Rng rng(77);
  const Tensor a = c.ta ? Tensor::randn({c.k, c.m}, rng)
                        : Tensor::randn({c.m, c.k}, rng);
  const Tensor b = c.tb ? Tensor::randn({c.n, c.k}, rng)
                        : Tensor::randn({c.k, c.n}, rng);
  Tensor out({c.m, c.n});
  gemm(a, c.ta, b, c.tb, out, 1.5f, 0.0f);
  const Tensor ref = naive_gemm(a, c.ta, b, c.tb, 1.5f);
  for (Index i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[static_cast<std::size_t>(i)],
                ref.data()[static_cast<std::size_t>(i)],
                1e-3f * static_cast<float>(c.k));
  }
}

TEST(Gemm, BetaAccumulates) {
  Rng rng(3);
  const Tensor a = Tensor::randn({4, 3}, rng);
  const Tensor b = Tensor::randn({3, 5}, rng);
  Tensor c0 = Tensor::full({4, 5}, 2.0f);
  gemm(a, false, b, false, c0, 1.0f, 1.0f);
  Tensor ref = naive_gemm(a, false, b, false, 1.0f);
  for (Index i = 0; i < c0.size(); ++i) {
    EXPECT_NEAR(c0.data()[static_cast<std::size_t>(i)],
                ref.data()[static_cast<std::size_t>(i)] + 2.0f, 1e-4f);
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(gemm(a, false, b, false, c), ConfigError);
}

TEST(Ops, AxpyAndScale) {
  Tensor x = Tensor::full({4}, 2.0f);
  Tensor y = Tensor::full({4}, 1.0f);
  axpy(3.0f, x, y);
  for (float v : y.data()) EXPECT_EQ(v, 7.0f);
  scale(y, 0.5f);
  for (float v : y.data()) EXPECT_EQ(v, 3.5f);
}

TEST(Ops, ActivationsMatchStdFunctions) {
  Rng rng(8);
  Tensor x = Tensor::randn({100}, rng, 2.0f);
  Tensor y({100});
  sigmoid(x, y);
  for (Index i = 0; i < 100; ++i) {
    EXPECT_NEAR(y(i), 1.0f / (1.0f + std::exp(-x(i))), 1e-6f);
  }
  tanh_op(x, y);
  for (Index i = 0; i < 100; ++i) EXPECT_NEAR(y(i), std::tanh(x(i)), 1e-6f);
  relu(x, y);
  for (Index i = 0; i < 100; ++i) EXPECT_EQ(y(i), x(i) > 0 ? x(i) : 0.0f);
}

TEST(Ops, ActivationGradsFromOutput) {
  Tensor y({3});
  y(0) = 0.25f;
  y(1) = 0.5f;
  y(2) = 0.9f;
  Tensor dy = y;
  sigmoid_grad_from_output(y, dy);
  EXPECT_NEAR(dy(1), 0.25f, 1e-6f);
  dy = y;
  tanh_grad_from_output(y, dy);
  EXPECT_NEAR(dy(1), 0.75f, 1e-6f);
}

TEST(Ops, SoftmaxRowsNormalizedAndStable) {
  Tensor logits({2, 3});
  logits(0, 0) = 1000.0f;  // stability: subtracting the row max
  logits(0, 1) = 1000.0f;
  logits(0, 2) = 999.0f;
  logits(1, 0) = -5.0f;
  logits(1, 1) = 0.0f;
  logits(1, 2) = 5.0f;
  Tensor p({2, 3});
  softmax_rows(logits, p);
  for (Index i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (Index j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::isfinite(p(i, j)));
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p(1, 2), p(1, 1));
}

TEST(Ops, LogSoftmaxAgreesWithLogOfSoftmax) {
  Rng rng(4);
  Tensor logits = Tensor::randn({5, 7}, rng, 3.0f);
  Tensor p({5, 7}), lp({5, 7});
  softmax_rows(logits, p);
  log_softmax_rows(logits, lp);
  for (Index i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(lp.data()[static_cast<std::size_t>(i)],
                std::log(p.data()[static_cast<std::size_t>(i)]), 1e-4f);
  }
}

TEST(Ops, Reductions) {
  Tensor t({4});
  t(0) = 1;
  t(1) = -3;
  t(2) = 2;
  t(3) = 0;
  EXPECT_EQ(sum(t), 0.0f);
  EXPECT_EQ(max_abs(t), 3.0f);
  EXPECT_NEAR(l2_norm(t), std::sqrt(14.0f), 1e-6f);
}

TEST(Ops, GatherThenScatterRoundTrip) {
  Tensor table({5, 3});
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 3; ++j) table(i, j) = static_cast<float>(10 * i + j);
  }
  const std::vector<Index> ids = {4, 0, 4, 2};
  Tensor out({4, 3});
  gather_rows(table, ids, out);
  EXPECT_EQ(out(0, 1), 41.0f);
  EXPECT_EQ(out(1, 0), 0.0f);
  EXPECT_EQ(out(2, 2), 42.0f);

  Tensor acc({5, 3});
  scatter_add_rows(out, ids, acc);
  // Row 4 receives itself twice.
  EXPECT_EQ(acc(4, 0), 80.0f);
  EXPECT_EQ(acc(2, 1), 21.0f);
  EXPECT_EQ(acc(0, 0), 0.0f);
  EXPECT_EQ(acc(1, 0), 0.0f);
}

TEST(Ops, BiasAddAndGrad) {
  Tensor y = Tensor::zeros({3, 2});
  Tensor b({2});
  b(0) = 1.0f;
  b(1) = -1.0f;
  add_bias_rows(y, b);
  EXPECT_EQ(y(2, 0), 1.0f);
  EXPECT_EQ(y(2, 1), -1.0f);

  Tensor dy = Tensor::full({3, 2}, 2.0f);
  Tensor db({2});
  bias_grad(dy, db);
  EXPECT_EQ(db(0), 6.0f);
  EXPECT_EQ(db(1), 6.0f);
}

TEST(Ops, ClipBoundsValues) {
  Tensor t({3});
  t(0) = -10.0f;
  t(1) = 0.5f;
  t(2) = 10.0f;
  clip(t, 1.0f);
  EXPECT_EQ(t(0), -1.0f);
  EXPECT_EQ(t(1), 0.5f);
  EXPECT_EQ(t(2), 1.0f);
}

TEST(Ops, HadamardMultiplies) {
  Tensor x = Tensor::full({4}, 3.0f);
  Tensor y = Tensor::full({4}, -2.0f);
  Tensor z({4});
  hadamard(x, y, z);
  for (float v : z.data()) EXPECT_EQ(v, -6.0f);
}

TEST(Ops, GemmDeterministicAcrossRuns) {
  // Thread-pool decomposition must not change results run to run.
  Rng rng(10);
  const Tensor a = Tensor::randn({64, 96}, rng);
  const Tensor b = Tensor::randn({96, 48}, rng);
  Tensor c1({64, 48}), c2({64, 48});
  gemm(a, false, b, false, c1);
  gemm(a, false, b, false, c2);
  EXPECT_TRUE(c1 == c2);
}

}  // namespace
}  // namespace zipflm
