// Serving engine: batched streams must equal single-stream generation,
// LRU eviction must only cost recompute, and a full admission queue
// must reject with backpressure instead of blocking.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/serve/server.hpp"
#include "zipflm/serve/session_cache.hpp"

namespace zipflm::serve {
namespace {

std::unique_ptr<CharLm> small_char(std::uint64_t seed = 3) {
  CharLmConfig cfg;
  cfg.vocab = 20;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 7;
  cfg.depth = 2;
  cfg.seed = seed;
  return std::make_unique<CharLm>(cfg);
}

Request session_request(std::uint64_t session, std::vector<Index> context,
                        std::size_t new_tokens, std::uint64_t seed) {
  Request r;
  r.session_id = session;
  r.context = std::move(context);
  r.new_tokens = new_tokens;
  r.options.max_context = 64;
  r.seed = seed;
  return r;
}

TEST(SessionCacheTest, LruEvictsLeastRecentlyUsed) {
  SessionCache cache(2);
  SessionEntry e;
  e.last_token = 1;
  cache.put(10, e);
  e.last_token = 2;
  cache.put(20, e);
  EXPECT_EQ(cache.size(), 2u);

  SessionEntry out;
  ASSERT_TRUE(cache.take(10, out));  // hit removes
  EXPECT_EQ(out.last_token, 1);
  cache.put(10, out);  // 10 is now most recent, 20 least

  e.last_token = 3;
  cache.put(30, e);  // evicts 20
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.take(20, out));
  EXPECT_TRUE(cache.take(10, out));
  EXPECT_TRUE(cache.take(30, out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SessionCacheTest, FingerprintSeparatesHistories) {
  const std::vector<Index> a = {1, 2, 3};
  const std::vector<Index> b = {1, 2, 4};
  const std::vector<Index> c = {1, 2, 3};
  EXPECT_NE(token_fingerprint(a), token_fingerprint(b));
  EXPECT_EQ(token_fingerprint(a), token_fingerprint(c));
}

TEST(ServerTest, BatchedStreamsMatchSequentialGeneration) {
  auto model = small_char();
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kNewTokens = 12;

  // Ground truth: batch-1 generation per session, before the server
  // thread touches the model.
  std::vector<std::vector<Index>> contexts, expected;
  for (std::size_t s = 0; s < kSessions; ++s) {
    contexts.push_back({static_cast<Index>(1 + s), 2, 3, 4});
    GenerateOptions opt;
    opt.max_context = 64;
    Rng rng(100 + s);
    expected.push_back(
        generate_tokens(*model, contexts.back(), kNewTokens, opt, rng));
  }

  ServeOptions opts;
  opts.max_batch = 4;  // forces batching AND queueing with 6 sessions
  Server server(*model, opts);
  std::vector<std::uint64_t> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    const Admission a = server.submit(
        session_request(s + 1, contexts[s], kNewTokens, 100 + s));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.request_id);
  }
  server.start();
  for (std::size_t s = 0; s < kSessions; ++s) {
    const Response r = server.wait(ids[s]);
    EXPECT_EQ(r.tokens, expected[s]) << "session " << s + 1;
    EXPECT_FALSE(r.cache_hit);
    EXPECT_GE(r.total_seconds, r.queue_seconds);
  }
  server.stop();

  const ServeCounters c = server.counters();
  EXPECT_EQ(c.requests_completed, kSessions);
  EXPECT_EQ(c.tokens_generated, kSessions * kNewTokens);
  EXPECT_EQ(c.cache_misses, kSessions);
  EXPECT_GT(c.mean_batch_occupancy(), 1.0);  // batching actually happened
  // Every stream advancement feeds either a context token or a sampled
  // one; the last sampled token of each request is never fed back.
  EXPECT_EQ(c.batched_streams + kSessions,
            c.context_tokens_primed + c.tokens_generated);
}

TEST(ServerTest, EvictionOnlyCostsRecompute) {
  auto model = small_char();
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kPhase1 = 8;
  constexpr std::size_t kPhase2 = 6;

  std::vector<std::vector<Index>> contexts;
  for (std::size_t s = 0; s < kSessions; ++s) {
    contexts.push_back({static_cast<Index>(2 + s), 1});
  }

  // Same workload against a tiny cache (constant eviction) and a large
  // one (everything stays warm): token streams must be identical.
  auto run_phases = [&](std::size_t cache_capacity,
                        std::vector<std::vector<Index>>& final_tokens,
                        std::vector<bool>& phase2_hits) {
    ServeOptions opts;
    opts.max_batch = 4;
    opts.cache_capacity = cache_capacity;
    Server server(*model, opts);
    server.start();

    std::vector<std::uint64_t> ids(kSessions);
    std::vector<std::vector<Index>> histories(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids[s] = server
                   .submit(session_request(s + 1, contexts[s], kPhase1,
                                           500 + s))
                   .request_id;
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      histories[s] = server.wait(ids[s]).tokens;
    }
    // Phase 2: every session resumes from its full phase-1 history.
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids[s] = server
                   .submit(session_request(s + 1, histories[s], kPhase2,
                                           900 + s))
                   .request_id;
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      const Response r = server.wait(ids[s]);
      final_tokens.push_back(r.tokens);
      phase2_hits.push_back(r.cache_hit);
    }
    server.stop();
    return server.counters();
  };

  std::vector<std::vector<Index>> small_tokens, large_tokens;
  std::vector<bool> small_hits, large_hits;
  const ServeCounters small_c = run_phases(2, small_tokens, small_hits);
  const ServeCounters large_c = run_phases(16, large_tokens, large_hits);

  EXPECT_EQ(small_tokens, large_tokens);
  EXPECT_GT(small_c.cache_evictions, 0u);
  EXPECT_EQ(large_c.cache_evictions, 0u);
  // With room for every session, phase 2 resumes from cache: one primed
  // token (the pending last token) per session instead of the whole
  // history.
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(large_hits[s]) << "session " << s + 1;
  }
  EXPECT_EQ(large_c.cache_hits, kSessions);
  EXPECT_EQ(large_c.context_tokens_primed,
            kSessions * contexts.front().size() + kSessions);
  EXPECT_GT(small_c.context_tokens_primed, large_c.context_tokens_primed);

  // And the resumed continuations are exactly what batch-1 generation
  // produces on the full history.
  for (std::size_t s = 0; s < kSessions; ++s) {
    GenerateOptions opt;
    opt.max_context = 64;
    Rng rng(900 + s);
    const auto history = std::vector<Index>(
        large_tokens[s].begin(),
        large_tokens[s].end() - static_cast<std::ptrdiff_t>(kPhase2));
    EXPECT_EQ(large_tokens[s],
              generate_tokens(*model, history, kPhase2, opt, rng));
  }
}

TEST(ServerTest, FullQueueRejectsWithBackpressure) {
  auto model = small_char();
  ServeOptions opts;
  opts.queue_depth = 3;
  Server server(*model, opts);  // not started: the queue cannot drain

  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 3; ++i) {
    const Admission a =
        server.submit(session_request(i + 1, {1, 2}, 4, 42 + i));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.request_id);
  }
  const Admission rejected = server.submit(session_request(9, {1, 2}, 4, 7));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.queue_depth, 3u);
  EXPECT_GT(rejected.retry_after_seconds, 0.0);
  EXPECT_EQ(server.counters().requests_rejected, 1u);

  // The queued work is intact: start, drain, and every accepted request
  // completes.
  server.start();
  for (const std::uint64_t id : ids) {
    const Response r = server.wait(id);
    EXPECT_EQ(r.tokens.size(), 6u);
  }
  server.wait_idle();
  server.stop();
  EXPECT_EQ(server.counters().requests_completed, 3u);
}

TEST(ServerTest, RejectsMalformedRequests) {
  auto model = small_char();
  Server server(*model, {});
  EXPECT_THROW(server.submit(session_request(1, {}, 4, 1)), ConfigError);
  EXPECT_THROW(server.submit(session_request(1, {1}, 0, 1)), ConfigError);
  Request oversize = session_request(1, {1, 2}, 4, 1);
  oversize.options.max_context = 5;  // 2 + 4 > 5
  EXPECT_THROW(server.submit(oversize), ConfigError);
}

}  // namespace
}  // namespace zipflm::serve
