#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "zipflm/support/barrier.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/support/format.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/support/thread_pool.hpp"

namespace zipflm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutEscape) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_index(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalHasUnitMoments) {
  Rng rng(21);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng a = Rng::fork(100, 0);
  Rng b = Rng::fork(100, 1);
  Rng a2 = Rng::fork(100, 0);
  EXPECT_NE(a(), b());
  Rng a3 = Rng::fork(100, 0);
  EXPECT_EQ(a2(), a3());
}

TEST(Barrier, SynchronizesThreads) {
  const int n = 8;
  CyclicBarrier barrier(n);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        ++counter;
        barrier.arrive_and_wait();
        // After the barrier, every thread of this round has arrived.
        if (counter.load() < (round + 1) * n) failed = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), 50 * n);
}

TEST(Barrier, AbortWakesWaiters) {
  CyclicBarrier barrier(2);
  std::atomic<bool> threw{false};
  std::thread waiter([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const BarrierAborted&) {
      threw = true;
    }
  });
  // Give the waiter time to block, then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  barrier.abort();
  waiter.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW(barrier.arrive_and_wait(), BarrierAborted);
  barrier.reset();
}

TEST(Barrier, GenerationIsSharedPerCrossing) {
  CyclicBarrier barrier(3);
  std::vector<std::uint64_t> gens(3);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] { gens[static_cast<std::size_t>(i)] = barrier.arrive_and_wait(); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gens[0], gens[1]);
  EXPECT_EQ(gens[1], gens[2]);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(10000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksPartitionRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_chunks(5000, [&](std::size_t b, std::size_t e) {
    total += e - b;
  });
  EXPECT_EQ(total.load(), 5000u);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Error, CheckThrowsConfigError) {
  EXPECT_THROW(ZIPFLM_CHECK(false, "nope"), ConfigError);
  EXPECT_NO_THROW(ZIPFLM_CHECK(true, "fine"));
}

TEST(Error, OutOfMemoryCarriesSizes) {
  try {
    throw OutOfMemoryError("oom", 100, 42);
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.requested_bytes(), 100u);
    EXPECT_EQ(e.available_bytes(), 42u);
  }
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1ull << 20), "1.00 MB");
  EXPECT_EQ(format_bytes(static_cast<std::uint64_t>(1.5 * (1ull << 30))),
            "1.50 GB");
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration(7200.0), "2.00 h");
  EXPECT_EQ(format_duration(90.0), "1.5 min");
  EXPECT_EQ(format_duration(2.5), "2.50 s");
  EXPECT_EQ(format_duration(0.005), "5.00 ms");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(12288), "12,288");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace zipflm
