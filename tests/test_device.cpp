#include <gtest/gtest.h>

#include "zipflm/device/device.hpp"

namespace zipflm {
namespace {

TEST(MemoryPool, TracksUsageAndPeak) {
  MemoryPool pool(1000);
  EXPECT_EQ(pool.available(), 1000u);
  {
    auto a = pool.allocate(400, "a");
    EXPECT_EQ(pool.used(), 400u);
    {
      auto b = pool.allocate(500, "b");
      EXPECT_EQ(pool.used(), 900u);
      EXPECT_EQ(pool.peak(), 900u);
    }
    EXPECT_EQ(pool.used(), 400u);
    EXPECT_EQ(pool.peak(), 900u);
  }
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(pool.peak(), 900u);
  pool.reset_peak();
  EXPECT_EQ(pool.peak(), 0u);
  EXPECT_EQ(pool.allocation_count(), 2u);
}

TEST(MemoryPool, ThrowsOnExhaustionWithDetails) {
  MemoryPool pool(100, "titan");
  auto a = pool.allocate(80, "model");
  try {
    auto b = pool.allocate(50, "allgather buffer");
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.requested_bytes(), 50u);
    EXPECT_EQ(e.available_bytes(), 20u);
    EXPECT_NE(std::string(e.what()).find("allgather buffer"),
              std::string::npos);
  }
  // Failed allocation must not leak accounting.
  EXPECT_EQ(pool.used(), 80u);
}

TEST(MemoryPool, ExactFitSucceeds) {
  MemoryPool pool(64);
  auto a = pool.allocate(64, "exact");
  EXPECT_EQ(pool.available(), 0u);
}

TEST(Allocation, MoveTransfersOwnership) {
  MemoryPool pool(100);
  Allocation a = pool.allocate(30, "x");
  Allocation b = std::move(a);
  EXPECT_EQ(b.bytes(), 30u);
  EXPECT_EQ(a.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(pool.used(), 30u);
  Allocation c = pool.allocate(10, "y");
  c = std::move(b);
  EXPECT_EQ(pool.used(), 30u);  // y released by the move-assign
}

TEST(Allocation, ExplicitRelease) {
  MemoryPool pool(100);
  Allocation a = pool.allocate(60, "x");
  a.release();
  EXPECT_EQ(pool.used(), 0u);
  a.release();  // idempotent
  EXPECT_EQ(pool.used(), 0u);
}

TEST(DeviceProps, PresetsMatchPaperTestbed) {
  const auto titan = DeviceProps::titan_x();
  EXPECT_EQ(titan.memory_bytes, 12ull << 30);
  EXPECT_DOUBLE_EQ(titan.peak_flops, 6.1e12);
  const auto v100 = DeviceProps::v100();
  EXPECT_EQ(v100.memory_bytes, 16ull << 30);
  EXPECT_GT(v100.peak_flops, titan.peak_flops);
}

TEST(DeviceProps, SecondsForFlops) {
  const auto titan = DeviceProps::titan_x();
  // 2.44 TFLOP at 40% of 6.1 TFLOP/s peak takes exactly 1 second.
  EXPECT_NEAR(titan.seconds_for_flops(2.44e12, 0.4), 1.0, 1e-9);
  EXPECT_NEAR(titan.seconds_for_flops(2.44e12), 1.0, 1e-9);
}

}  // namespace
}  // namespace zipflm
