// Controlled seeding (Section III-B): group structure and the unique-
// candidate growth trade-off.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "zipflm/core/seeding.hpp"

namespace zipflm {
namespace {

TEST(SeedPolicy, GroupCounts) {
  EXPECT_EQ(seed_group_count(SeedPolicy::PerRank, 64), 64);
  EXPECT_EQ(seed_group_count(SeedPolicy::SharedAll, 64), 1);
  EXPECT_EQ(seed_group_count(SeedPolicy::Log2G, 64), 6);
  EXPECT_EQ(seed_group_count(SeedPolicy::LogEG, 64), 5);   // ceil(4.16)
  EXPECT_EQ(seed_group_count(SeedPolicy::Log10G, 64), 2);  // ceil(1.8)
  // G^0.64 at 64 = 14.3 -> 15.
  EXPECT_EQ(seed_group_count(SeedPolicy::ZipfFreq, 64),
            static_cast<int>(std::ceil(std::pow(64.0, 0.64))));
}

TEST(SeedPolicy, GroupCountNeverExceedsWorld) {
  for (int g = 1; g <= 16; ++g) {
    for (const auto policy :
         {SeedPolicy::PerRank, SeedPolicy::SharedAll, SeedPolicy::Log2G,
          SeedPolicy::LogEG, SeedPolicy::Log10G, SeedPolicy::ZipfFreq}) {
      const int groups = seed_group_count(policy, g);
      EXPECT_GE(groups, 1);
      EXPECT_LE(groups, g);
    }
  }
}

TEST(SeedPolicy, RoundRobinGroupAssignmentIsBalanced) {
  const int g = 64;
  std::vector<int> counts(
      static_cast<std::size_t>(seed_group_count(SeedPolicy::ZipfFreq, g)), 0);
  for (int r = 0; r < g; ++r) {
    const int grp = seed_group_of(SeedPolicy::ZipfFreq, r, g);
    ASSERT_GE(grp, 0);
    ASSERT_LT(grp, static_cast<int>(counts.size()));
    ++counts[static_cast<std::size_t>(grp)];
  }
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*mx - *mn, 1);
}

TEST(ControlledSampler, SameGroupSameDraws) {
  ControlledSampler sampler(1000, 64, SeedPolicy::Log2G, 7);
  const int world = 16;  // log2 -> 4 groups; ranks 0 and 4 share group 0
  ASSERT_EQ(seed_group_of(SeedPolicy::Log2G, 0, world),
            seed_group_of(SeedPolicy::Log2G, 4, world));
  EXPECT_EQ(sampler.group_samples(0, 3), sampler.group_samples(0, 3));

  const std::vector<Index> targets = {5};
  const auto c0 = sampler.candidates(0, world, 3, targets);
  const auto c4 = sampler.candidates(4, world, 3, targets);
  EXPECT_EQ(c0, c4);
}

TEST(ControlledSampler, DifferentGroupsDiverge) {
  ControlledSampler sampler(10000, 64, SeedPolicy::PerRank, 7);
  const auto a = sampler.group_samples(0, 0);
  const auto b = sampler.group_samples(1, 0);
  EXPECT_NE(a, b);
}

TEST(ControlledSampler, StepsAdvanceTheStream) {
  ControlledSampler sampler(10000, 64, SeedPolicy::SharedAll, 7);
  EXPECT_NE(sampler.group_samples(0, 0), sampler.group_samples(0, 1));
}

TEST(ControlledSampler, CandidatesIncludeTargetsSortedUnique) {
  ControlledSampler sampler(1000, 32, SeedPolicy::ZipfFreq, 11);
  const std::vector<Index> targets = {999, 7, 999};
  const auto c = sampler.candidates(3, 8, 5, targets);
  EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
  EXPECT_TRUE(std::adjacent_find(c.begin(), c.end()) == c.end());
  EXPECT_TRUE(std::binary_search(c.begin(), c.end(), Index{999}));
  EXPECT_TRUE(std::binary_search(c.begin(), c.end(), Index{7}));
  for (const Index id : c) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 1000);
  }
}

TEST(ControlledSampler, DrawsFollowThePowerLawHead) {
  // The controlled randomization must obey the word-frequency
  // distribution: low ids (frequent words) dominate the samples.
  ControlledSampler sampler(100000, 256, SeedPolicy::SharedAll, 13);
  std::size_t head = 0, total = 0;
  for (std::uint64_t step = 0; step < 200; ++step) {
    for (const Index id : sampler.group_samples(0, step)) {
      if (id < 1000) ++head;  // top 1% of the vocabulary
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.5);
}

TEST(ControlledSampler, GlobalUniqueCandidatesOrderedByPolicy) {
  // Fewer seed groups -> fewer distinct candidates across the world.
  const int world = 32;
  const Index s = 128;
  const Index vocab = 1 << 16;

  auto global_unique = [&](SeedPolicy policy) {
    ControlledSampler sampler(vocab, s, policy, 21);
    std::unordered_set<Index> uniq;
    for (int r = 0; r < world; ++r) {
      const auto draws =
          sampler.group_samples(seed_group_of(policy, r, world), 0);
      uniq.insert(draws.begin(), draws.end());
    }
    return uniq.size();
  };

  const auto per_rank = global_unique(SeedPolicy::PerRank);
  const auto zipf_freq = global_unique(SeedPolicy::ZipfFreq);
  const auto log2g = global_unique(SeedPolicy::Log2G);
  const auto shared = global_unique(SeedPolicy::SharedAll);

  EXPECT_GT(per_rank, zipf_freq);
  EXPECT_GT(zipf_freq, log2g);
  EXPECT_GT(log2g, shared);
  EXPECT_LE(shared, static_cast<std::size_t>(s));
}

TEST(ControlledSampler, LogExpectedCountsFollowTheProposal) {
  ControlledSampler sampler(1000, 100, SeedPolicy::PerRank, 3);
  const std::vector<Index> candidates = {0, 10, 100, 999};
  const auto logq = sampler.log_expected_counts(candidates);
  ASSERT_EQ(logq.size(), candidates.size());
  // Zipf proposal: expected counts strictly decrease with rank.
  for (std::size_t i = 1; i < logq.size(); ++i) {
    EXPECT_LT(logq[i], logq[i - 1]);
  }
  // Frequent word with S=100 and p(1) sizeable: count above e^-2 say;
  // and every value is finite.
  for (const float v : logq) EXPECT_TRUE(std::isfinite(v));
}

TEST(ControlledSampler, RejectsBadConfig) {
  EXPECT_THROW(ControlledSampler(0, 8, SeedPolicy::PerRank, 1), ConfigError);
  EXPECT_THROW(ControlledSampler(8, 0, SeedPolicy::PerRank, 1), ConfigError);
  EXPECT_THROW(ControlledSampler(8, 9, SeedPolicy::PerRank, 1), ConfigError);
}

TEST(SeedPolicy, ToStringMatchesFigureLabels) {
  EXPECT_STREQ(to_string(SeedPolicy::PerRank), "G");
  EXPECT_STREQ(to_string(SeedPolicy::ZipfFreq), "Zipf's-freq");
  EXPECT_STREQ(to_string(SeedPolicy::Log2G), "log2G");
}

}  // namespace
}  // namespace zipflm
