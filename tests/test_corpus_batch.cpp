#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "zipflm/data/batch.hpp"
#include "zipflm/data/corpus.hpp"
#include "zipflm/stats/powerlaw.hpp"

namespace zipflm {
namespace {

TEST(Corpus, PresetsMatchTableOne) {
  EXPECT_EQ(CorpusSpec::one_billion_word().total_tokens, 780'000'000ull);
  EXPECT_EQ(CorpusSpec::gutenberg().total_tokens, 1'810'000'000ull);
  EXPECT_EQ(CorpusSpec::amazon_review().total_tokens, 7'010'000'000ull);
  EXPECT_EQ(CorpusSpec::tieba().vocab, 15'437ull);
  EXPECT_TRUE(CorpusSpec::tieba().character_level);
  EXPECT_EQ(CorpusSpec::figure1_corpora().size(), 4u);
}

TEST(Corpus, TiebaSizeRoughly93GB) {
  const auto spec = CorpusSpec::tieba();
  const double gb = static_cast<double>(spec.total_tokens) *
                    spec.bytes_per_token / 1e9;
  EXPECT_NEAR(gb, 93.1, 1.0);
}

TEST(TokenStream, DeterministicPerSeed) {
  const auto spec = CorpusSpec::one_billion_word();
  TokenStream a(spec, 9);
  TokenStream b(spec, 9);
  TokenStream c(spec, 10);
  std::vector<std::int64_t> va, vb, vc;
  a.take(500, va);
  b.take(500, vb);
  c.take(500, vc);
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(TokenStream, CharPresetStaysInVocabulary) {
  TokenStream s(CorpusSpec::one_billion_char(), 3);
  for (int i = 0; i < 20000; ++i) {
    const auto t = s.next();
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 98);
  }
}

TEST(TypeTokenCurve, MonotoneAndBelowDiagonal) {
  TokenStream s(CorpusSpec::one_billion_word(), 5);
  const auto curve = type_token_curve(s, 100'000);
  ASSERT_GE(curve.size(), 5u);
  std::uint64_t prev_types = 0, prev_tokens = 0;
  for (const auto& p : curve) {
    EXPECT_GT(p.tokens, prev_tokens);
    EXPECT_GE(p.types, prev_types);
    EXPECT_LE(p.types, p.tokens);  // U <= N always
    prev_tokens = p.tokens;
    prev_types = p.types;
  }
}

TEST(TypeTokenCurve, HeapsExponentNearPaperFit) {
  TokenStream s(CorpusSpec::one_billion_word(), 11);
  const auto curve = type_token_curve(s, 1u << 20);
  std::vector<double> xs, ys;
  for (const auto& p : curve) {
    xs.push_back(static_cast<double>(p.tokens));
    ys.push_back(static_cast<double>(p.types));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 0.64, 0.06);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(SyntheticWord, BijectiveSpelling) {
  std::set<std::string> seen;
  for (std::int64_t id = 0; id < 20000; ++id) {
    const auto w = synthetic_word(id);
    ASSERT_FALSE(w.empty());
    for (char c : w) ASSERT_TRUE(c >= 'a' && c <= 'z');
    ASSERT_TRUE(seen.insert(w).second) << "collision at id " << id;
  }
  EXPECT_EQ(synthetic_word(0), "a");
  EXPECT_EQ(synthetic_word(25), "z");
  EXPECT_EQ(synthetic_word(26), "aa");
}

TEST(Split, RatioApproximatelyRespected) {
  std::vector<std::int64_t> ids(1'000'000);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(i);
  }
  const auto split = split_tokens(ids, 100, 7);
  EXPECT_EQ(split.train.size() + split.valid.size(), ids.size());
  const double frac =
      static_cast<double>(split.valid.size()) / static_cast<double>(ids.size());
  EXPECT_NEAR(frac, 0.01, 0.004);
  // Deterministic.
  const auto split2 = split_tokens(ids, 100, 7);
  EXPECT_EQ(split.valid, split2.valid);
}

TEST(Split, BlocksStayContiguous) {
  std::vector<std::int64_t> ids(10'000);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(i);
  }
  const auto split = split_tokens(ids, 4, 3, 100);
  // Every run of 100 consecutive values is preserved in one part.
  for (std::size_t i = 1; i < split.valid.size(); ++i) {
    const auto delta = split.valid[i] - split.valid[i - 1];
    EXPECT_TRUE(delta == 1 || delta > 1);
    if (split.valid[i] % 100 != 0) EXPECT_EQ(delta, 1);
  }
}

TEST(BatchIterator, ShapesAndShiftByOne) {
  std::vector<std::int64_t> ids(1000);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(i);
  }
  BatchSpec spec{4, 5};
  BatchIterator it(ids, spec, 0, 1);
  EXPECT_GT(it.steps(), 0);
  Batch b;
  ASSERT_TRUE(it.next(b));
  EXPECT_EQ(b.batch_size, 4);
  EXPECT_EQ(b.seq_len, 5);
  for (std::int64_t row = 0; row < 4; ++row) {
    for (std::int64_t t = 0; t < 5; ++t) {
      EXPECT_EQ(b.target(row, t), b.input(row, t) + 1)
          << "targets must be inputs shifted by one";
    }
  }
  // Second batch continues each substream where the first left off.
  const auto first_end = b.input(0, 4);
  ASSERT_TRUE(it.next(b));
  EXPECT_EQ(b.input(0, 0), first_end + 1);
}

TEST(BatchIterator, RankShardsAreDisjoint) {
  std::vector<std::int64_t> ids(1200);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(i);
  }
  BatchSpec spec{2, 4};
  std::unordered_set<std::int64_t> seen;
  for (int rank = 0; rank < 3; ++rank) {
    BatchIterator it(ids, spec, rank, 3);
    Batch b;
    while (it.next(b)) {
      for (const auto v : b.inputs) {
        EXPECT_TRUE(seen.insert(v).second)
            << "token " << v << " appears in two rank shards";
      }
    }
  }
  EXPECT_GT(seen.size(), 900u);
}

TEST(BatchIterator, SameStepCountOnEveryRank) {
  std::vector<std::int64_t> ids(997);  // awkward size
  BatchSpec spec{3, 7};
  const BatchIterator it0(ids, spec, 0, 4);
  for (int rank = 1; rank < 4; ++rank) {
    const BatchIterator it(ids, spec, rank, 4);
    EXPECT_EQ(it.steps(), it0.steps());
  }
}

TEST(BatchIterator, TooSmallCorpusYieldsNoBatches) {
  std::vector<std::int64_t> ids(5);
  BatchSpec spec{4, 20};
  BatchIterator it(ids, spec, 0, 2);
  EXPECT_EQ(it.steps(), 0);
  Batch b;
  EXPECT_FALSE(it.next(b));
}

TEST(BatchIterator, ResetReplaysIdentically) {
  std::vector<std::int64_t> ids(500);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(i * 3);
  }
  BatchSpec spec{2, 6};
  BatchIterator it(ids, spec, 0, 1);
  Batch b1, b2;
  ASSERT_TRUE(it.next(b1));
  it.reset();
  ASSERT_TRUE(it.next(b2));
  EXPECT_EQ(b1.inputs, b2.inputs);
  EXPECT_EQ(b1.targets, b2.targets);
}

}  // namespace
}  // namespace zipflm
