// Bitwise-determinism contract of the vectorized kernel substrate:
// every dispatched kernel must produce the same bytes regardless of the
// worker count (chunking must not change any per-element operation
// order) and regardless of the SIMD backend (the scalar fallback is an
// exact twin of the vector path, including the fixed 8-lane reduction
// layout and the min/max NaN semantics).  These tests run the hot
// kernels under {1 thread, 4 threads} x {native, scalar} and require
// byte-identical results, which is what makes training runs
// reproducible across machines and ZIPFLM_THREADS settings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/core/grad_sync.hpp"
#include "zipflm/nn/param.hpp"
#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/ops.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {
namespace {

struct KernelConfig {
  std::size_t threads;
  simd::Backend backend;
};

std::vector<KernelConfig> all_configs() {
  return {{1, simd::Backend::kNative},
          {4, simd::Backend::kNative},
          {1, simd::Backend::kScalar},
          {4, simd::Backend::kScalar}};
}

std::string config_name(const KernelConfig& c) {
  return std::to_string(c.threads) + "-thread " +
         (c.backend == simd::Backend::kNative ? "native" : "scalar");
}

/// Runs fn under every (threads, backend) configuration and checks the
/// produced byte vectors are identical to the first configuration's.
/// Restores the default pool and backend afterwards.
template <class Fn>
void expect_identical_bytes(const Fn& fn) {
  const auto configs = all_configs();
  std::vector<unsigned char> reference;
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const KernelConfig& c = configs[ci];
    ThreadPool::set_global_threads(c.threads);
    simd::set_backend(c.backend);
    const std::vector<unsigned char> got = fn();
    if (ci == 0) {
      reference = got;
      EXPECT_FALSE(reference.empty());
      continue;
    }
    ASSERT_EQ(got.size(), reference.size());
    EXPECT_EQ(0, std::memcmp(got.data(), reference.data(), got.size()))
        << "bytes diverge under " << config_name(c) << " vs "
        << config_name(configs[0]);
  }
  simd::set_backend(simd::Backend::kNative);
  ThreadPool::set_global_threads(0);
}

std::vector<unsigned char> tensor_bytes(const Tensor& t) {
  const auto* p = reinterpret_cast<const unsigned char*>(t.data().data());
  return std::vector<unsigned char>(p, p + t.data().size() * sizeof(float));
}

void append_bytes(std::vector<unsigned char>& out, const void* p,
                  std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  out.insert(out.end(), b, b + n);
}

struct GemmDetCase {
  Index m, n, k;
  bool ta, tb;
  float alpha;
  float beta;
};

class GemmDeterminism : public ::testing::TestWithParam<GemmDetCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmDeterminism,
    ::testing::Values(
        // nt path, alpha == 1 (specialized) and alpha != 1; sizes chosen
        // to split across blocks and exercise vector + tail code.
        GemmDetCase{33, 300, 65, false, false, 1.0f, 0.0f},
        GemmDetCase{33, 300, 65, false, false, 1.5f, 1.0f},
        // k larger than one packed chunk forces accumulator spills.
        GemmDetCase{8, 160, 600, false, false, 1.0f, 0.0f},
        // trans_a still lands in the nt kernels.
        GemmDetCase{40, 130, 31, true, false, 1.0f, 0.0f},
        // transposed-B dot path (backward d-state shape: small m).
        GemmDetCase{8, 300, 129, false, true, 1.0f, 0.0f},
        GemmDetCase{17, 40, 128, false, true, 2.0f, 1.0f},
        // double-transpose generic fallback.
        GemmDetCase{6, 9, 13, true, true, 1.0f, 0.0f}));

TEST_P(GemmDeterminism, BytesStableAcrossThreadsAndBackends) {
  const auto c = GetParam();
  Rng rng(1234);
  const Tensor a = c.ta ? Tensor::randn({c.k, c.m}, rng)
                        : Tensor::randn({c.m, c.k}, rng);
  const Tensor b = c.tb ? Tensor::randn({c.n, c.k}, rng)
                        : Tensor::randn({c.k, c.n}, rng);
  const Tensor c0 = Tensor::randn({c.m, c.n}, rng);
  expect_identical_bytes([&] {
    Tensor out = c0;
    gemm(a, c.ta, b, c.tb, out, c.alpha, c.beta);
    return tensor_bytes(out);
  });
}

TEST(SoftmaxDeterminism, BytesStableAcrossThreadsAndBackends) {
  Rng rng(99);
  Tensor logits = Tensor::randn({37, 301}, rng);
  // Inject extremes so the max-subtraction and exp clamp paths run.
  logits(0, 0) = 95.0f;
  logits(1, 7) = -95.0f;
  expect_identical_bytes([&] {
    Tensor probs({37, 301});
    softmax_rows(logits, probs);
    Tensor logp({37, 301});
    log_softmax_rows(logits, logp);
    std::vector<unsigned char> out = tensor_bytes(probs);
    const auto more = tensor_bytes(logp);
    out.insert(out.end(), more.begin(), more.end());
    return out;
  });
}

TEST(LocalReduceDeterminism, BytesStableAcrossThreadsAndBackends) {
  // Duplicated ids in scattered order: the reduction must accumulate
  // each word's rows in ascending token position regardless of how the
  // unique rows are chunked across workers.
  Rng rng(7);
  const Index tokens = 777;
  const Index dim = 96;
  const Tensor delta = Tensor::randn({tokens, dim}, rng);
  std::vector<Index> ids(static_cast<std::size_t>(tokens));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<Index>((i * 31 + i * i * 7) % 53);
  }
  expect_identical_bytes([&] {
    std::vector<Index> unique_ids;
    Tensor reduced;
    local_reduce_by_word(ids, delta, unique_ids, reduced);
    std::vector<unsigned char> out;
    append_bytes(out, unique_ids.data(), unique_ids.size() * sizeof(Index));
    const auto more = tensor_bytes(reduced);
    out.insert(out.end(), more.begin(), more.end());
    return out;
  });
}

TEST(CastDeterminism, EdgeValuesMatchSoftwareHalf) {
  // Values straddling every binary16 edge: subnormal magnitudes, the
  // largest finite half (65504) and first overflow, round-to-nearest-even
  // ties, signed zero, infinities and NaN.  The hardware (F16C) cast must
  // produce the same bits as the software Half reference for all of
  // them, under any thread count.
  std::vector<float> edge = {
      0.0f,        -0.0f,       1.0f,          -1.0f,
      65504.0f,    65519.9f,    65520.0f,      -65520.0f,
      70000.0f,    1e-8f,       5.96046e-8f,   -5.96046e-8f,
      6.09756e-5f, 6.10352e-5f, 1.00048828f,   1.00097656f,
      0.333333f,   -2.71828f,   3.14159e4f,    -1.17549e-38f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN()};
  // Pad out past the vector width with a deterministic sweep so the
  // packed lanes, not just the scalar tail, see ordinary values too.
  for (int i = 0; i < 4096; ++i) {
    edge.push_back(std::ldexp(1.0f + 0.001f * static_cast<float>(i % 997),
                              (i % 41) - 20));
  }
  const float scale = 8.0f;
  expect_identical_bytes([&] {
    std::vector<Half> packed(edge.size());
    compress_fp16(edge, scale, packed);
    std::vector<float> restored(edge.size());
    decompress_fp16(packed, scale, restored);
    std::vector<unsigned char> out;
    append_bytes(out, packed.data(), packed.size() * sizeof(Half));
    append_bytes(out, restored.data(), restored.size() * sizeof(float));
    return out;
  });
  // Spot-check the hardware path against the software reference
  // explicitly (expect_identical_bytes already compared native vs
  // scalar, which routes through Half::from_float).
  for (float v : edge) {
    std::vector<float> one = {v};
    std::vector<Half> hw(1);
    simd::set_backend(simd::Backend::kNative);
    compress_fp16(one, 1.0f, hw);
    const Half sw(v);
    EXPECT_EQ(hw[0].bits(), sw.bits()) << "value " << v;
  }
  simd::set_backend(simd::Backend::kNative);
  ThreadPool::set_global_threads(0);
}

TEST(ElementwiseDeterminism, ActivationBytesStable) {
  Rng rng(5);
  const Tensor x = Tensor::randn({13, 517}, rng);
  expect_identical_bytes([&] {
    Tensor s = x;
    sigmoid(s, s);
    Tensor t = x;
    tanh_op(t, t);
    std::vector<unsigned char> out = tensor_bytes(s);
    const auto more = tensor_bytes(t);
    out.insert(out.end(), more.begin(), more.end());
    return out;
  });
}

// -- Bucketed overlapped gradient sync -------------------------------
//
// The overlap contract: bucket boundaries and launch timing must never
// change a single reduced byte.  Run the same per-rank gradients through
// the legacy sync() and through the bucketed engine path at several
// bucket sizes (many tiny buckets / one huge bucket), threaded and
// inline, and require byte-identical averaged gradients.

namespace {

/// Deterministic per-rank gradients: rank-dependent (so the reduction
/// order matters) but reproducible.
std::vector<Param> make_test_params(int rank) {
  const std::vector<std::vector<Index>> shapes = {
      {3, 100}, {7, 1}, {13, 33}, {64, 8}, {501, 2}};
  std::vector<Param> params;
  params.reserve(shapes.size());
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    Param p("p" + std::to_string(s), Tensor(shapes[s]));
    auto g = p.grad.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] = std::ldexp(1.0f + 0.001f * static_cast<float>((i * 7 + s) % 911),
                        static_cast<int>((i + static_cast<std::size_t>(rank)) %
                                         17) - 8);
    }
    params.push_back(std::move(p));
  }
  return params;
}

std::vector<unsigned char> grad_bytes(const std::vector<Param>& params) {
  std::vector<unsigned char> out;
  for (const Param& p : params) {
    append_bytes(out, p.grad.data().data(),
                 p.grad.data().size() * sizeof(float));
  }
  return out;
}

}  // namespace

TEST(GradSyncDeterminism, BucketingNeverChangesReducedBytes) {
  for (const WirePrecision wire : {WirePrecision::FP32, WirePrecision::FP16}) {
    // mode: {bucket_bytes, force_thread}; bucket 0 = legacy sync().
    struct Mode {
      std::size_t bucket_bytes;
      bool threaded;
    };
    const std::vector<Mode> modes = {
        {0, false},       // sync(): the bitwise reference
        {256, false},     // many tiny buckets, inline engine
        {256, true},      // many tiny buckets, comm thread
        {1 << 20, true},  // everything in one bucket, comm thread
    };
    std::vector<std::vector<unsigned char>> results(modes.size());

    CommWorld world(4);
    for (std::size_t m = 0; m < modes.size(); ++m) {
      world.run([&](Communicator& comm) {
        std::vector<Param> params = make_test_params(comm.rank());
        std::vector<Param*> ptrs;
        for (Param& p : params) ptrs.push_back(&p);

        DenseGradSync sync(ExchangeOptions{wire, 64.0f, false});
        if (modes[m].bucket_bytes == 0) {
          sync.sync(comm, ptrs);
        } else {
          AsyncCommEngine engine(comm, /*overlap=*/true,
                                 modes[m].threaded);
          sync.set_bucket_bytes(modes[m].bucket_bytes);
          sync.begin_step(comm, engine, ptrs);
          // Notify in an arbitrary interleaving — completion order must
          // not matter, only the plan order inside each bucket.
          for (std::size_t i = params.size(); i-- > 0;) {
            sync.notify_ready(ptrs[i]);
          }
          sync.finish();
        }
        if (comm.rank() == 0) results[m] = grad_bytes(params);
      });
      ASSERT_FALSE(results[m].empty());
      if (m > 0) {
        ASSERT_EQ(results[m].size(), results[0].size());
        EXPECT_EQ(0, std::memcmp(results[m].data(), results[0].data(),
                                 results[0].size()))
            << "wire=" << (wire == WirePrecision::FP16 ? "fp16" : "fp32")
            << " mode " << m << " diverged from sync()";
      }
    }
  }
}

}  // namespace
}  // namespace zipflm
