#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "zipflm/data/markov.hpp"

namespace zipflm {
namespace {

TEST(BigramCorpus, DeterministicPerSeedAndStream) {
  const BigramCorpus a(100, 8, 42);
  const BigramCorpus b(100, 8, 42);
  EXPECT_EQ(a.generate(1000, 0), b.generate(1000, 0));
  EXPECT_NE(a.generate(1000, 0), a.generate(1000, 1));

  const BigramCorpus c(100, 8, 43);
  EXPECT_NE(a.generate(1000, 0), c.generate(1000, 0));
}

TEST(BigramCorpus, TokensStayInVocabulary) {
  const BigramCorpus corpus(50, 5, 7);
  for (const auto t : corpus.generate(20000, 3)) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 50);
  }
}

TEST(BigramCorpus, TransitionsFollowTheSuccessorMenus) {
  const BigramCorpus corpus(64, 6, 11);
  const auto tokens = corpus.generate(5000, 0);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto& menu = corpus.successors(tokens[i - 1]);
    EXPECT_NE(std::find(menu.begin(), menu.end(), tokens[i]), menu.end())
        << "token " << tokens[i] << " is not a successor of "
        << tokens[i - 1];
  }
}

TEST(BigramCorpus, SequenceCarriesMutualInformation) {
  // The conditional distribution must be much sharper than the marginal:
  // H(next | current) <= log(branching) << H(next).
  const std::int64_t vocab = 200;
  const std::int64_t branching = 8;
  const BigramCorpus corpus(vocab, branching, 5);
  const auto tokens = corpus.generate(200'000, 0);

  // Marginal entropy.
  std::unordered_map<std::int64_t, double> marginal;
  for (const auto t : tokens) marginal[t] += 1.0;
  double h_marginal = 0.0;
  for (auto& [t, c] : marginal) {
    const double p = c / static_cast<double>(tokens.size());
    h_marginal -= p * std::log(p);
  }

  // Conditional entropy via bigram counts.
  std::unordered_map<std::int64_t,
                     std::unordered_map<std::int64_t, double>>
      bigrams;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    bigrams[tokens[i - 1]][tokens[i]] += 1.0;
  }
  double h_cond = 0.0;
  for (const auto& [prev, nexts] : bigrams) {
    double total = 0.0;
    for (const auto& [nxt, c] : nexts) total += c;
    double h = 0.0;
    for (const auto& [nxt, c] : nexts) {
      const double p = c / total;
      h -= p * std::log(p);
    }
    h_cond += h * total / static_cast<double>(tokens.size() - 1);
  }

  EXPECT_LE(h_cond, corpus.entropy_bound_nats() + 1e-9);
  EXPECT_LT(h_cond, 0.7 * h_marginal)
      << "transitions must carry substantial mutual information";
}

TEST(BigramCorpus, MarginalStaysHeavyTailed) {
  // Successor menus drawn from a power law keep the token marginal
  // skewed: the top 10% of words should carry well over half the mass.
  const std::int64_t vocab = 500;
  const BigramCorpus corpus(vocab, 10, 9);
  const auto tokens = corpus.generate(100'000, 0);
  std::unordered_map<std::int64_t, std::size_t> counts;
  for (const auto t : tokens) ++counts[t];
  std::vector<std::size_t> freq;
  freq.reserve(counts.size());
  for (const auto& [t, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  std::size_t head = 0;
  for (std::size_t i = 0; i < freq.size() / 10; ++i) head += freq[i];
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(tokens.size()),
            0.5);
}

TEST(BigramCorpus, EntropyBoundIsLogBranching) {
  const BigramCorpus corpus(100, 16, 1);
  EXPECT_NEAR(corpus.entropy_bound_nats(), std::log(16.0), 1e-12);
}

TEST(BigramCorpus, RejectsBadConfig) {
  EXPECT_THROW(BigramCorpus(1, 1, 0), ConfigError);
  EXPECT_THROW(BigramCorpus(10, 0, 0), ConfigError);
  EXPECT_THROW(BigramCorpus(10, 11, 0), ConfigError);
  EXPECT_THROW(BigramCorpus(10, 11, 0).successors(3), ConfigError);
}

TEST(BigramCorpus, SuccessorsAccessorValidates) {
  const BigramCorpus corpus(10, 3, 2);
  EXPECT_EQ(corpus.successors(0).size(), 3u);
  EXPECT_THROW(corpus.successors(10), ConfigError);
  EXPECT_THROW(corpus.successors(-1), ConfigError);
}

}  // namespace
}  // namespace zipflm
