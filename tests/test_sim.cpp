// Structural properties of the performance model: the shapes of Tables
// III/IV/V must emerge from the model, not from per-cell tuning.
#include <gtest/gtest.h>

#include <cmath>

#include "zipflm/sim/perf_model.hpp"
#include "zipflm/stats/metrics.hpp"

namespace zipflm {
namespace {

PerfModel titan_model() {
  return PerfModel(DeviceProps::titan_x(), CostModel::titan_x_cluster());
}

TEST(Workload, UniqueWordsFollowHeapsThenSaturate) {
  const auto w = LmWorkload::word_lm_1b();
  // Small N: pure power law.
  EXPECT_NEAR(w.unique_words(10240), 7.02 * std::pow(10240.0, 0.64), 1.0);
  // Huge N: capped by the vocabulary.
  EXPECT_LE(w.unique_words(1e12), 100'000.0);
  const auto c = LmWorkload::char_lm_1b();
  EXPECT_LE(c.unique_words(1e9), 98.0);
  EXPECT_NEAR(c.unique_words(1e9), 98.0, 0.5);
}

TEST(Workload, UniqueWordsMonotone) {
  const auto w = LmWorkload::word_lm_1b();
  double prev = 0.0;
  for (double n = 100; n < 1e9; n *= 3) {
    const double u = w.unique_words(n);
    EXPECT_GE(u, prev);
    EXPECT_LE(u, n + 1.0);
    prev = u;
  }
}

TEST(PerfModel, BaselineOOMsBeyond24GpusOnWordLm) {
  const auto model = titan_model();
  const auto w = LmWorkload::word_lm_1b();
  EXPECT_FALSE(model.epoch(w, 8, TechniqueSet::none()).oom);
  EXPECT_FALSE(model.epoch(w, 24, TechniqueSet::none()).oom);
  EXPECT_TRUE(model.epoch(w, 32, TechniqueSet::none()).oom)
      << "Table III: baseline out of memory at 32 GPUs";
  EXPECT_TRUE(model.epoch(w, 64, TechniqueSet::none()).oom);
}

TEST(PerfModel, TechniqueMemoryStaysFlat) {
  const auto model = titan_model();
  const auto w = LmWorkload::word_lm_1b();
  const auto m8 = model.epoch(w, 8, TechniqueSet::all());
  const auto m64 = model.epoch(w, 64, TechniqueSet::all());
  EXPECT_FALSE(m8.oom);
  EXPECT_FALSE(m64.oom);
  // Paper: 1.19 GB at 8 GPUs vs 1.21 GB at 64 — essentially flat.
  EXPECT_LT(static_cast<double>(m64.peak_memory_bytes),
            1.1 * static_cast<double>(m8.peak_memory_bytes));
}

TEST(PerfModel, BaselineMemoryGrowsLinearly) {
  const auto model = titan_model();
  const auto w = LmWorkload::word_lm_1b();
  const auto m8 = model.epoch(w, 8, TechniqueSet::none());
  const auto m16 = model.epoch(w, 16, TechniqueSet::none());
  const auto m24 = model.epoch(w, 24, TechniqueSet::none());
  const double d1 = static_cast<double>(m16.peak_memory_bytes) -
                    static_cast<double>(m8.peak_memory_bytes);
  const double d2 = static_cast<double>(m24.peak_memory_bytes) -
                    static_cast<double>(m16.peak_memory_bytes);
  EXPECT_GT(d1, 0.0);
  EXPECT_NEAR(d2 / d1, 1.0, 0.05) << "memory growth must be linear in G";
}

TEST(PerfModel, EpochTimeDropsWithMoreGpusUnderTechniques) {
  const auto model = titan_model();
  for (const auto& w : {LmWorkload::word_lm_1b(), LmWorkload::char_lm_1b()}) {
    double prev = 1e30;
    for (const int g : {8, 16, 24, 32, 64}) {
      const auto r = model.epoch(w, g, TechniqueSet::all());
      EXPECT_LT(r.epoch_hours, prev) << w.name << " at " << g;
      prev = r.epoch_hours;
    }
  }
}

TEST(PerfModel, TechniquesAlwaysWinAtEqualGpuCount) {
  const auto model = titan_model();
  for (const auto& w : {LmWorkload::word_lm_1b(), LmWorkload::char_lm_1b()}) {
    for (const int g : {8, 16, 24}) {
      const auto base = model.epoch(w, g, TechniqueSet::none());
      const auto ours = model.epoch(w, g, TechniqueSet::all());
      EXPECT_GT(base.epoch_hours, ours.epoch_hours) << w.name << " " << g;
    }
  }
}

TEST(PerfModel, SpeedupBreakdownIsCumulative) {
  // Fig 6: baseline < +uniqueness < +seeding < +compression.
  const auto model = titan_model();
  const auto w = LmWorkload::word_lm_1b();
  for (const int g : {16, 24}) {
    const double base = model.epoch(w, g, TechniqueSet::none()).epoch_hours;
    const double uniq =
        model.epoch(w, g, TechniqueSet::unique_only()).epoch_hours;
    const double seed =
        model.epoch(w, g, TechniqueSet::unique_seed()).epoch_hours;
    const double all = model.epoch(w, g, TechniqueSet::all()).epoch_hours;
    EXPECT_GT(base, uniq);
    EXPECT_GT(uniq, seed);
    EXPECT_GT(seed, all);
    // Uniqueness is the dominant effect (paper: ~4x of the total ~5x).
    EXPECT_GT(base / uniq, 2.0);
  }
}

TEST(PerfModel, EightGpuAnchorsMatchPaper) {
  // Calibration sanity: the 8-GPU anchor cells of Tables III and IV.
  const auto model = titan_model();
  const auto word = model.epoch(LmWorkload::word_lm_1b(), 8,
                                TechniqueSet::all());
  EXPECT_NEAR(word.epoch_hours, 14.6, 2.0);
  const auto word_base = model.epoch(LmWorkload::word_lm_1b(), 8,
                                     TechniqueSet::none());
  EXPECT_NEAR(word_base.epoch_hours, 35.1, 5.0);

  const auto chr = model.epoch(LmWorkload::char_lm_1b(), 8,
                               TechniqueSet::all());
  EXPECT_NEAR(chr.epoch_hours, 23.2, 3.0);
  const auto chr_base = model.epoch(LmWorkload::char_lm_1b(), 8,
                                    TechniqueSet::none());
  EXPECT_NEAR(chr_base.epoch_hours, 25.7, 3.5);
}

TEST(PerfModel, CharLmParallelEfficiencyStaysHigh) {
  // Table IV: char LM keeps >80% efficiency to 64 GPUs (high compute
  // intensity), word LM decays to ~40% (low compute intensity).
  const auto model = titan_model();
  const auto chr8 = model.epoch(LmWorkload::char_lm_1b(), 8,
                                TechniqueSet::all());
  const auto chr64 = model.epoch(LmWorkload::char_lm_1b(), 64,
                                 TechniqueSet::all());
  const double chr_eff =
      parallel_efficiency(8, chr8.epoch_hours, 64, chr64.epoch_hours);
  EXPECT_GT(chr_eff, 0.70);

  const auto w8 = model.epoch(LmWorkload::word_lm_1b(), 8,
                              TechniqueSet::all());
  const auto w64 = model.epoch(LmWorkload::word_lm_1b(), 64,
                               TechniqueSet::all());
  const double w_eff =
      parallel_efficiency(8, w8.epoch_hours, 64, w64.epoch_hours);
  EXPECT_LT(w_eff, chr_eff)
      << "word LM must scale worse than char LM (lower GFLOP/iter)";
}

TEST(PerfModel, WeakScalingTiebaTimeGrowsSlowly) {
  // Table V: 32x data on 32x GPUs costs only ~1.25x the time.
  const auto model = titan_model();
  const Index k = 128 * 150;
  const auto small = LmWorkload::char_lm_tieba(1'070'000'000ull, k);
  const auto large = LmWorkload::char_lm_tieba(34'360'000'000ull, k);
  const auto t6 = model.epoch(small, 6, TechniqueSet::all());
  const auto t192 = model.epoch(large, 192, TechniqueSet::all());
  const double ratio = t192.epoch_hours / t6.epoch_hours;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.9) << "weak scaling must stay near-flat";
}

TEST(PerfModel, CompressionHelpsWordMoreThanChar) {
  // §V-B: char LM sees only ~2% from compression (cast overhead on >20
  // tensors); word LM sees ~18%.
  const auto model = titan_model();
  const auto wu = model.epoch(LmWorkload::word_lm_1b(), 24,
                              TechniqueSet::unique_seed());
  const auto wa = model.epoch(LmWorkload::word_lm_1b(), 24,
                              TechniqueSet::all());
  const double word_gain = wu.epoch_hours / wa.epoch_hours - 1.0;

  const auto cu = model.epoch(LmWorkload::char_lm_1b(), 24,
                              TechniqueSet::unique_seed());
  const auto ca = model.epoch(LmWorkload::char_lm_1b(), 24,
                              TechniqueSet::all());
  const double char_gain = cu.epoch_hours / ca.epoch_hours - 1.0;

  EXPECT_GT(word_gain, char_gain);
  EXPECT_GT(word_gain, 0.0);
  EXPECT_LT(char_gain, 0.10);
}

TEST(PerfModel, V100ClusterIsFasterThanTitanX) {
  // §V-D comparison substrate: same workload on the Puri et al. device.
  PerfModel titan(DeviceProps::titan_x(), CostModel::titan_x_cluster());
  PerfModel v100(DeviceProps::v100(), CostModel::v100_nvlink_cluster());
  const auto w = LmWorkload::char_lm_amazon();
  const auto t = titan.epoch(w, 64, TechniqueSet::all());
  const auto v = v100.epoch(w, 128, TechniqueSet::all());
  EXPECT_GT(t.epoch_hours, v.epoch_hours);
}

TEST(PerfModel, IterationCountMatchesTokensOverGlobalBatch) {
  const auto model = titan_model();
  const auto w = LmWorkload::word_lm_1b();
  const auto r = model.epoch(w, 8, TechniqueSet::all());
  EXPECT_EQ(r.iterations,
            w.tokens_per_epoch /
                (8ull * static_cast<std::uint64_t>(w.tokens_per_rank)));
}

}  // namespace
}  // namespace zipflm
