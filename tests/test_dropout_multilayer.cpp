// Dropout and multi-layer LSTM stacks (the §IV-B regularization and the
// "several RNN layers" of the paper's Figure 2).
#include <gtest/gtest.h>

#include <cmath>

#include "zipflm/data/markov.hpp"
#include "zipflm/nn/dropout.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/nn/optimizer.hpp"

namespace zipflm {
namespace {

TEST(Dropout, ZeroRateIsIdentity) {
  Dropout d(0.0f);
  Rng rng(1);
  Tensor x = Tensor::full({100}, 2.0f);
  const Tensor before = x;
  d.forward_train(x, rng);
  EXPECT_TRUE(x == before);
  Tensor g = Tensor::full({100}, 1.0f);
  d.backward(g);
  EXPECT_TRUE(g == Tensor::full({100}, 1.0f));
}

TEST(Dropout, DropsApproximatelyRateFraction) {
  Dropout d(0.3f);
  Rng rng(2);
  Tensor x = Tensor::full({10000}, 1.0f);
  d.forward_train(x, rng);
  std::size_t zeros = 0;
  for (float v : x.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.02);
}

TEST(Dropout, PreservesExpectation) {
  Dropout d(0.5f);
  Rng rng(3);
  Tensor x = Tensor::full({20000}, 3.0f);
  d.forward_train(x, rng);
  double sum = 0.0;
  for (float v : x.data()) sum += v;
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.15);
}

TEST(Dropout, BackwardAppliesTheSameMask) {
  Dropout d(0.5f);
  Rng rng(4);
  Tensor x = Tensor::full({500}, 1.0f);
  d.forward_train(x, rng);
  Tensor g = Tensor::full({500}, 1.0f);
  d.backward(g);
  // Grad is zero exactly where the activation was dropped, scaled where
  // it was kept.
  for (Index i = 0; i < 500; ++i) {
    EXPECT_EQ(g(i), x(i));
  }
}

TEST(Dropout, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(-0.1f), ConfigError);
  EXPECT_THROW(Dropout(1.0f), ConfigError);
}

TEST(MultiLayer, ParamCountGrowsWithLayers) {
  WordLmConfig one;
  one.vocab = 30;
  one.embed_dim = 6;
  one.hidden_dim = 8;
  one.proj_dim = 6;
  WordLmConfig three = one;
  three.num_layers = 3;
  WordLm a(one), b(three);
  // Each extra layer adds 4 params (wx, wh, b, wp).
  EXPECT_EQ(b.dense_params().size(), a.dense_params().size() + 8);
  // At this tiny scale the sampled-softmax term dominates FLOPs, so only
  // strict growth is asserted.
  EXPECT_GT(b.flops_per_token(), a.flops_per_token());
}

TEST(MultiLayer, ForwardShapesAndTraining) {
  WordLmConfig cfg;
  cfg.vocab = 40;
  cfg.embed_dim = 6;
  cfg.hidden_dim = 10;
  cfg.proj_dim = 6;
  cfg.num_layers = 2;
  cfg.seed = 5;
  WordLm model(cfg);

  const BigramCorpus corpus(40, 6, 1);
  const auto data = corpus.generate(2000, 0);
  BatchIterator it(data, BatchSpec{4, 10}, 0, 1);
  Batch batch;
  ASSERT_TRUE(it.next(batch));

  std::vector<Index> all(40);
  for (Index i = 0; i < 40; ++i) all[static_cast<std::size_t>(i)] = i;

  Sgd sgd(0.5f);
  LmStepResult res;
  model.train_step_local(batch, all, res);
  EXPECT_EQ(res.input_delta.rows(), 40);  // K = 4*10
  EXPECT_EQ(res.input_delta.cols(), 6);
  const float first = res.loss;
  for (int step = 0; step < 30; ++step) {
    model.zero_grad();
    model.train_step_local(batch, all, res);
    auto dense = model.dense_params();
    sgd.step(dense);
    std::vector<Index> uids;
    Tensor ureduced;
    local_reduce_by_word(res.input_ids, res.input_delta, uids, ureduced);
    sgd.step_rows(model.input_embedding_param(), ureduced, uids);
    sgd.step_rows(*model.sampled_output_param(), res.output_grad.rows,
                  res.output_grad.ids);
  }
  model.zero_grad();
  model.train_step_local(batch, all, res);
  EXPECT_LT(res.loss, first * 0.8f) << "2-layer stack must train";
}

TEST(MultiLayer, GenerationWorksWithStacks) {
  WordLmConfig cfg;
  cfg.vocab = 30;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 6;
  cfg.proj_dim = 5;
  cfg.num_layers = 2;
  WordLm model(cfg);
  const std::vector<Index> ctx = {1, 2, 3};
  EXPECT_EQ(model.next_token_logits(ctx).size(), 30);
}

TEST(DropoutTraining, CharLmWithDropoutStillConverges) {
  CharLmConfig cfg;
  cfg.vocab = 30;
  cfg.embed_dim = 6;
  cfg.hidden_dim = 10;
  cfg.depth = 2;
  cfg.dropout = 0.2f;
  cfg.seed = 7;
  CharLm model(cfg);

  const BigramCorpus corpus(30, 5, 2);
  const auto data = corpus.generate(3000, 0);
  BatchIterator it(data, BatchSpec{4, 10}, 0, 1);
  Batch batch;
  ASSERT_TRUE(it.next(batch));

  Adam::Config acfg;
  acfg.lr = 0.01f;
  Adam adam(acfg);
  const float before = model.eval_loss(batch);
  LmStepResult res;
  for (int step = 0; step < 80; ++step) {
    model.zero_grad();
    model.train_step_local(batch, {}, res);
    adam.begin_step();
    auto dense = model.dense_params();
    adam.step(dense);
    std::vector<Index> uids;
    Tensor ureduced;
    local_reduce_by_word(res.input_ids, res.input_delta, uids, ureduced);
    adam.step_rows(model.input_embedding_param(), ureduced, uids);
  }
  EXPECT_LT(model.eval_loss(batch), before * 0.95f);
}

TEST(DropoutTraining, EvalIsDeterministicDespiteDropout) {
  CharLmConfig cfg;
  cfg.vocab = 25;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 8;
  cfg.depth = 2;
  cfg.dropout = 0.4f;
  CharLm model(cfg);
  const BigramCorpus corpus(25, 4, 3);
  const auto data = corpus.generate(600, 0);
  BatchIterator it(data, BatchSpec{3, 8}, 0, 1);
  Batch batch;
  ASSERT_TRUE(it.next(batch));
  // Evaluation never applies dropout: repeated calls agree bitwise.
  EXPECT_EQ(model.eval_loss(batch), model.eval_loss(batch));
  // Training losses differ step to step (fresh masks).
  LmStepResult a, b;
  model.train_step_local(batch, {}, a);
  model.zero_grad();
  model.train_step_local(batch, {}, b);
  EXPECT_NE(a.loss, b.loss);
}

}  // namespace
}  // namespace zipflm
