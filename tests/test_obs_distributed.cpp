// zipflm::obs v2 — the distributed telemetry plane: NTP-style clock
// offset estimation, telemetry wire frames, merged multi-process trace
// export, the serve Stats introspection frame, and the SLO health
// monitor.
//
// Everything here runs over the InProc transport (deterministic, no
// kernel) except where a socketpair world is the point (Stats frames
// through the real frontend event loop).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "zipflm/net/inproc.hpp"
#include "zipflm/net/socket.hpp"
#include "zipflm/net/telemetry.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/slo.hpp"
#include "zipflm/obs/telemetry.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/serve/serve_client.hpp"
#include "zipflm/serve/sharded_server.hpp"
#include "zipflm/serve/socket_frontend.hpp"

using namespace zipflm;

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Clock-offset estimation
// ---------------------------------------------------------------------------

class ClockOffsetTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ClockOffsetTest, RecoversInjectedSkewWithinRttBound) {
  // Worker and collector share one steady clock; the worker's view is
  // shifted by a known skew.  The NTP estimate must recover that skew
  // with error bounded by the probe round-trip (theory: min_rtt / 2;
  // the assert allows min_rtt plus scheduling slack because the two
  // legs of an in-proc probe are genuinely asymmetric under load).
  const std::int64_t skew_ns = GetParam();
  net::InProcHub hub(2);
  auto collector_ep = hub.endpoint(0);
  auto worker_ep = hub.endpoint(1);

  std::thread worker([&] {
    net::telemetry::serve_collector(
        *worker_ep, 0, [&] { return steady_ns() + skew_ns; });
  });

  net::telemetry::CollectOptions opts;
  opts.probes = 31;
  opts.want_trace = false;
  opts.want_metrics = false;
  opts.clock = [] { return steady_ns(); };
  const net::telemetry::WorkerTelemetry t =
      net::telemetry::collect_from_peer(*collector_ep, 1, opts);
  worker.join();

  EXPECT_EQ(t.clock.probes, 31);
  EXPECT_GE(t.clock.min_rtt_ns, 0);
  const std::int64_t err = t.clock.offset_ns - skew_ns;
  const std::int64_t bound = t.clock.min_rtt_ns + 2'000'000;  // +2ms slack
  EXPECT_LE(err < 0 ? -err : err, bound)
      << "offset " << t.clock.offset_ns << " vs skew " << skew_ns
      << " (min rtt " << t.clock.min_rtt_ns << ")";
  EXPECT_TRUE(t.trace.lanes.empty());
}

INSTANTIATE_TEST_SUITE_P(Skews, ClockOffsetTest,
                         ::testing::Values(std::int64_t{0},
                                           std::int64_t{5'000'000'000},
                                           std::int64_t{-3'000'000'000}));

// ---------------------------------------------------------------------------
// Telemetry frame codecs
// ---------------------------------------------------------------------------

obs::ProcessTrace sample_trace() {
  obs::ProcessTrace trace;
  trace.label = "rank 3";
  trace.clock_offset_ns = -12345;
  obs::LaneSnapshot lane;
  lane.label = "rank 3";
  lane.sort_key = 3;
  lane.dropped = 7;
  for (int i = 0; i < 5; ++i) {
    obs::OwnedTraceEvent ev;
    ev.name = "span " + std::to_string(i);
    ev.arg_name[0] = "payload_bytes";
    ev.arg[0] = 1024.0 * i;
    if (i % 2 == 0) {
      ev.arg_name[3] = "codec";
      ev.arg[3] = 2.0;
    }
    ev.start_ns = 1000 + 100 * static_cast<std::uint64_t>(i);
    ev.dur_ns = 50;
    lane.events.push_back(std::move(ev));
  }
  trace.lanes.push_back(std::move(lane));
  obs::LaneSnapshot instants;
  instants.label = "rank 3 comm";
  instants.sort_key = 13;
  obs::OwnedTraceEvent tick;
  tick.name = "tick";
  tick.start_ns = 999;
  tick.instant = true;
  instants.events.push_back(std::move(tick));
  trace.lanes.push_back(std::move(instants));
  return trace;
}

void expect_traces_equal(const obs::ProcessTrace& a,
                         const obs::ProcessTrace& b) {
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.lanes.size(), b.lanes.size());
  for (std::size_t l = 0; l < a.lanes.size(); ++l) {
    EXPECT_EQ(a.lanes[l].label, b.lanes[l].label);
    EXPECT_EQ(a.lanes[l].sort_key, b.lanes[l].sort_key);
    EXPECT_EQ(a.lanes[l].dropped, b.lanes[l].dropped);
    ASSERT_EQ(a.lanes[l].events.size(), b.lanes[l].events.size());
    for (std::size_t e = 0; e < a.lanes[l].events.size(); ++e) {
      const auto& x = a.lanes[l].events[e];
      const auto& y = b.lanes[l].events[e];
      EXPECT_EQ(x.name, y.name);
      EXPECT_EQ(x.start_ns, y.start_ns);
      EXPECT_EQ(x.dur_ns, y.dur_ns);
      EXPECT_EQ(x.instant, y.instant);
      for (std::size_t i = 0; i < obs::TraceEvent::kMaxArgs; ++i) {
        EXPECT_EQ(x.arg_name[i], y.arg_name[i]);
        EXPECT_EQ(x.arg[i], y.arg[i]);
      }
    }
  }
}

TEST(TelemetryWireTest, TraceChunksRoundTrip) {
  const obs::ProcessTrace trace = sample_trace();
  const auto chunks = net::telemetry::encode_trace_chunks(trace);
  ASSERT_FALSE(chunks.empty());
  obs::ProcessTrace back;
  for (const auto& chunk : chunks) {
    ASSERT_EQ(net::telemetry::frame_type(chunk),
              net::telemetry::FrameType::TraceChunk);
    net::telemetry::merge_trace_chunk(chunk, back);
  }
  expect_traces_equal(trace, back);
}

TEST(TelemetryWireTest, TinyTargetSplitsIntoManyChunksLosslessly) {
  obs::ProcessTrace trace;
  trace.label = "rank 0";
  obs::LaneSnapshot lane;
  lane.label = "rank 0";
  lane.dropped = 84;
  for (int i = 0; i < 500; ++i) {
    obs::OwnedTraceEvent ev;
    ev.name = "event with a name long enough to dodge tiny-chunk packing " +
              std::to_string(i);
    ev.start_ns = static_cast<std::uint64_t>(i);
    ev.dur_ns = 1;
    lane.events.push_back(std::move(ev));
  }
  trace.lanes.push_back(std::move(lane));

  // Target below the enforced floor still splits (clamped, not zero).
  const auto chunks = net::telemetry::encode_trace_chunks(trace, 1);
  EXPECT_GT(chunks.size(), 1u);
  obs::ProcessTrace back;
  for (const auto& chunk : chunks) {
    net::telemetry::merge_trace_chunk(chunk, back);
  }
  expect_traces_equal(trace, back);
}

TEST(TelemetryWireTest, MetricsFrameRoundTrip) {
  obs::MetricsSnapshot snap;
  snap.counters["a/count"] = 42;
  snap.counters["weird \"name\"\\with\nescapes"] = 7;
  snap.gauges["b/depth"] = -2.5;
  obs::Histogram hist;
  for (int i = 1; i <= 100; ++i) hist.record(1e-3 * i);
  snap.histograms["c/latency"] = hist.snapshot();

  const auto frame = net::telemetry::encode_metrics_frame(snap);
  ASSERT_EQ(net::telemetry::frame_type(frame),
            net::telemetry::FrameType::MetricsChunk);
  const obs::MetricsSnapshot back =
      net::telemetry::decode_metrics_frame(frame);
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), 1u);
  const auto& h = back.histograms.at("c/latency");
  EXPECT_EQ(h.count, snap.histograms.at("c/latency").count);
  EXPECT_EQ(h.sum, snap.histograms.at("c/latency").sum);
  EXPECT_EQ(h.min, snap.histograms.at("c/latency").min);
  EXPECT_EQ(h.max, snap.histograms.at("c/latency").max);
  EXPECT_EQ(h.buckets, snap.histograms.at("c/latency").buckets);
  EXPECT_DOUBLE_EQ(h.percentile(0.5),
                   snap.histograms.at("c/latency").percentile(0.5));
}

TEST(TelemetryWireTest, ControlFramesRoundTrip) {
  net::telemetry::Begin begin;
  begin.probes = 9;
  begin.want_trace = false;
  begin.want_metrics = true;
  const net::telemetry::Begin b2 =
      net::telemetry::decode_begin(net::telemetry::encode_begin(begin));
  EXPECT_EQ(b2.probes, 9u);
  EXPECT_FALSE(b2.want_trace);
  EXPECT_TRUE(b2.want_metrics);

  net::telemetry::ClockProbe probe{17, 12345};
  const auto p2 = net::telemetry::decode_clock_probe(
      net::telemetry::encode_clock_probe(probe));
  EXPECT_EQ(p2.probe_id, 17u);
  EXPECT_EQ(p2.send_ns, 12345u);

  net::telemetry::ClockReply reply{17, 1000, 2000};
  const auto r2 = net::telemetry::decode_clock_reply(
      net::telemetry::encode_clock_reply(reply));
  EXPECT_EQ(r2.probe_id, 17u);
  EXPECT_EQ(r2.recv_ns, 1000u);
  EXPECT_EQ(r2.send_ns, 2000u);

  EXPECT_EQ(net::telemetry::frame_type(net::telemetry::encode_done()),
            net::telemetry::FrameType::Done);
}

TEST(TelemetryWireTest, MalformedFramesAreProtocolErrors) {
  EXPECT_THROW(net::telemetry::frame_type({}), net::ProtocolError);
  EXPECT_THROW(net::telemetry::frame_type({std::byte{99}}),
               net::ProtocolError);

  // Truncation anywhere in the body.
  auto frame = net::telemetry::encode_metrics_frame({});
  frame.resize(frame.size() - 1);
  EXPECT_THROW(net::telemetry::decode_metrics_frame(frame),
               net::ProtocolError);

  auto chunk = net::telemetry::encode_trace_chunks(sample_trace()).front();
  chunk.resize(chunk.size() - 3);
  obs::ProcessTrace sink;
  EXPECT_THROW(net::telemetry::merge_trace_chunk(chunk, sink),
               net::ProtocolError);

  // Trailing garbage.
  auto padded = net::telemetry::encode_begin({});
  padded.push_back(std::byte{0});
  EXPECT_THROW(net::telemetry::decode_begin(padded), net::ProtocolError);

  // Wrong frame type for the decoder.
  EXPECT_THROW(net::telemetry::decode_clock_probe(
                   net::telemetry::encode_done()),
               net::ProtocolError);

  // A Begin demanding zero probes is meaningless (no offset estimate).
  auto zero_probes = net::telemetry::encode_begin({});
  // probes is the LE u32 right after the type byte.
  zero_probes[1] = zero_probes[2] = zero_probes[3] = zero_probes[4] =
      std::byte{0};
  EXPECT_THROW(net::telemetry::decode_begin(zero_probes),
               net::ProtocolError);
}

// ---------------------------------------------------------------------------
// Merged multi-process export
// ---------------------------------------------------------------------------

TEST(MergedTraceTest, AlignsLanesAcrossProcessesAndShiftsToZero) {
  // Two processes, worker clock 2000ns ahead: after alignment both
  // "step" spans start at the same instant, and the document's earliest
  // timestamp is exactly 0.
  obs::ProcessTrace collector;
  collector.label = "rank 0";
  collector.pid = 1;
  collector.clock_offset_ns = 0;
  obs::LaneSnapshot lane0;
  lane0.label = "rank 0";
  lane0.sort_key = 0;
  obs::OwnedTraceEvent e0;
  e0.name = "step";
  e0.start_ns = 10'000;
  e0.dur_ns = 4'000;
  lane0.events.push_back(e0);
  collector.lanes.push_back(std::move(lane0));

  obs::ProcessTrace worker;
  worker.label = "rank 1";
  worker.pid = 2;
  worker.clock_offset_ns = 2'000;  // worker clock runs ahead
  obs::LaneSnapshot lane1;
  lane1.label = "rank 1";
  lane1.sort_key = 1;
  obs::OwnedTraceEvent e1 = e0;
  e1.start_ns = 12'000;  // same true instant as e0, read on a fast clock
  lane1.events.push_back(e1);
  obs::OwnedTraceEvent e2 = e0;
  e2.name = "later";
  e2.start_ns = 13'000;
  lane1.events.push_back(e2);
  worker.lanes.push_back(std::move(lane1));

  std::ostringstream out;
  const obs::TraceExportStats st =
      obs::write_chrome_trace_merged(out, {collector, worker});
  EXPECT_EQ(st.events, 3u);
  EXPECT_EQ(st.lanes, 2u);
  const std::string json = out.str();

  // Both process lanes are named, and both aligned "step" spans start
  // at ts 0 (µs): the earliest instant shifted to the origin.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  std::size_t zero_ts = 0;
  for (std::size_t pos = json.find("\"ts\":0,"); pos != std::string::npos;
       pos = json.find("\"ts\":0,", pos + 1)) {
    ++zero_ts;
  }
  EXPECT_EQ(zero_ts, 2u) << json;
  // The worker's second event lands 1µs after the aligned origin.
  EXPECT_NE(json.find("\"name\":\"later\",\"ph\":\"X\",\"pid\":2,\"tid\":0,"
                      "\"ts\":1,"),
            std::string::npos)
      << json;
}

TEST(MergedTraceTest, EndToEndOverInProcTransport) {
  // A worker's live ring (real emits, real process epoch) shipped over
  // the in-proc transport and merged with the collector's own lanes:
  // per-lane event order must survive and every aligned ts must be
  // non-negative.
  obs::trace_clear();
  obs::trace_set_buffer_capacity(1 << 10);
  obs::set_process_label("collector");
  obs::set_thread_lane("main", 0);
  obs::trace_enable(true);
  for (int i = 0; i < 3; ++i) {
    obs::SpanScope span("local_step", "i", static_cast<double>(i));
  }
  obs::trace_enable(false);

  net::InProcHub hub(2);
  auto ep0 = hub.endpoint(0);
  auto ep1 = hub.endpoint(1);
  std::thread worker([&] {
    // The worker ships the same process-wide lanes (this is one
    // process pretending to be two); the point is the wire path.
    net::telemetry::serve_collector(*ep1, 0);
  });
  net::telemetry::CollectOptions opts;
  opts.want_metrics = false;
  net::telemetry::WorkerTelemetry t =
      net::telemetry::collect_from_peer(*ep0, 1, opts);
  worker.join();

  obs::ProcessTrace self;
  self.label = obs::process_label();
  self.pid = 1;
  self.lanes = obs::trace_lane_snapshot();
  t.trace.pid = 2;

  std::ostringstream out;
  const obs::TraceExportStats st =
      obs::write_chrome_trace_merged(out, {self, t.trace});
  EXPECT_GE(st.events, 6u);  // 3 spans on each side of the merge
  const std::string json = out.str();
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos)
      << "negative aligned timestamp";
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serve Stats frame
// ---------------------------------------------------------------------------

CharLmConfig tiny_model() {
  CharLmConfig cfg;
  cfg.embed_dim = 16;
  cfg.hidden_dim = 32;
  cfg.depth = 1;
  return cfg;
}

TEST(ServeStatsTest, WirePulledRegistryMatchesInProcessAggregate) {
  std::vector<std::unique_ptr<CharLm>> replicas;
  std::vector<LmModel*> models;
  for (int k = 0; k < 2; ++k) {
    replicas.push_back(std::make_unique<CharLm>(tiny_model()));
    models.push_back(replicas.back().get());
  }
  serve::ShardedServeOptions opts;
  opts.server.metrics_scope = "statspar";
  serve::ShardedServer server(models, opts);
  server.start();

  auto world = net::socketpair_mesh(2);
  serve::SocketFrontend frontend(*world[0], server);
  std::thread frontend_thread([&] { frontend.run(); });
  {
    serve::ServeClient client(*world[1], /*server_rank=*/0);
    constexpr std::uint64_t kRequests = 10;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t s = 1; s <= kRequests; ++s) {
      serve::Request req;
      req.session_id = s;
      req.context = {static_cast<Index>(1 + s % 5), 2, 3};
      req.new_tokens = 4;
      req.seed = 40 + s;
      const serve::Admission a = client.submit(req);
      ASSERT_TRUE(a.accepted);
      ids.push_back(a.request_id);
    }
    for (const std::uint64_t id : ids) {
      EXPECT_EQ(client.wait(id).status, serve::ResponseStatus::Ok);
    }

    // Full pull: the aggregate counters must equal what the facade
    // reports in-process, and the per-shard rows must sum to them.
    const obs::MetricsSnapshot snap = client.stats("statspar");
    EXPECT_EQ(snap.counters.at("statspar/requests_completed"), kRequests);
    std::uint64_t per_shard = 0;
    for (int k = 0; k < 2; ++k) {
      per_shard += snap.counters.at("statspar/s" + std::to_string(k) +
                                    "/requests_completed");
    }
    EXPECT_EQ(per_shard, kRequests);
    EXPECT_EQ(snap.counters.at("statspar/steals"), server.steals());
    const auto& hist = snap.histograms.at("statspar/request_seconds");
    EXPECT_EQ(hist.count, kRequests);
    EXPECT_GT(hist.percentile(0.5), 0.0);

    // Prefix filter: a shard-scoped pull carries no foreign names.
    const obs::MetricsSnapshot s0 = client.stats("statspar/s0");
    EXPECT_FALSE(s0.counters.empty());
    for (const auto& [name, v] : s0.counters) {
      EXPECT_EQ(name.rfind("statspar/s0", 0), 0u) << name;
    }
    EXPECT_EQ(s0.histograms.count("statspar/request_seconds"), 0u);

    client.bye();
  }
  frontend_thread.join();
  EXPECT_EQ(frontend.stats().stats_requests, 2u);
  server.stop();
}

// ---------------------------------------------------------------------------
// SLO monitor
// ---------------------------------------------------------------------------

obs::SloOptions slo_opts_for(const std::string& scope) {
  obs::SloOptions opts;
  opts.scope = scope;
  opts.export_metrics = false;
  opts.min_window_count = 8;
  opts.trip_after = 2;
  opts.clear_after = 2;
  opts.clear_fraction = 0.8;
  return opts;
}

obs::MetricsSnapshot latency_snapshot(const std::string& scope,
                                      obs::Histogram& hist) {
  obs::MetricsSnapshot snap;
  snap.histograms[scope + "/request_seconds"] = hist.snapshot();
  return snap;
}

TEST(SloMonitorTest, LatencyTailTripsAfterConsecutiveBadWindowsAndClears) {
  obs::SloMonitor monitor(slo_opts_for("svc"));  // p99/p50 threshold 5.0
  int trips = 0, clears = 0;
  monitor.set_alert_hook([&](const obs::SloAlert& a) {
    ASSERT_EQ(a.rule, "latency_tail");
    (a.tripped ? trips : clears) += 1;
  });

  obs::Histogram hist;
  const auto window = [&](double tail_seconds) {
    for (int i = 0; i < 19; ++i) hist.record(1e-3);
    hist.record(tail_seconds);
    return monitor.observe(latency_snapshot("svc", hist));
  };

  monitor.observe(latency_snapshot("svc", hist));  // baseline window
  EXPECT_FALSE(monitor.any_tripped());

  // One bad window is absorbed by hysteresis...
  EXPECT_TRUE(window(1.0).empty());
  EXPECT_FALSE(monitor.tripped("latency_tail"));
  // ...the second consecutive one trips.
  const auto alerts = window(1.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].tripped);
  EXPECT_TRUE(monitor.tripped("latency_tail"));
  EXPECT_GT(monitor.last_value("latency_tail"), 5.0);

  // Healthy windows: first is absorbed, second clears.
  EXPECT_TRUE(window(1e-3).empty());
  EXPECT_TRUE(monitor.tripped("latency_tail"));
  EXPECT_FALSE(window(1e-3).empty());
  EXPECT_FALSE(monitor.tripped("latency_tail"));
  EXPECT_EQ(monitor.trips("latency_tail"), 1u);
  EXPECT_EQ(trips, 1);
  EXPECT_EQ(clears, 1);
}

TEST(SloMonitorTest, HysteresisBandNeitherTripsNorClears) {
  // queue_depth judges raw gauge values, making band arithmetic exact:
  // threshold 64, clear bound 51.2 — 60 sits strictly between.
  obs::SloMonitor monitor(slo_opts_for("svc"));
  const auto depth_window = [&](double depth) {
    obs::MetricsSnapshot snap;
    snap.gauges["svc/s0/queue_depth"] = depth;
    return monitor.observe(snap);
  };

  depth_window(70.0);
  depth_window(70.0);
  EXPECT_TRUE(monitor.tripped("queue_depth"));

  // Any number of in-band windows leaves the trip latched.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(depth_window(60.0).empty());
  EXPECT_TRUE(monitor.tripped("queue_depth"));

  // The band also resets a good streak: good, band, good, good.
  depth_window(10.0);
  depth_window(60.0);
  depth_window(10.0);
  EXPECT_TRUE(monitor.tripped("queue_depth"));
  depth_window(10.0);
  EXPECT_FALSE(monitor.tripped("queue_depth"));
  EXPECT_EQ(monitor.trips("queue_depth"), 1u);
}

TEST(SloMonitorTest, ThinWindowsLeaveStateUntouched) {
  obs::SloMonitor monitor(slo_opts_for("svc"));
  obs::Histogram hist;
  monitor.observe(latency_snapshot("svc", hist));  // baseline

  // 2 samples < min_window_count 8: never judged, still "n/a".
  for (int w = 0; w < 5; ++w) {
    hist.record(1e-3);
    hist.record(10.0);
    EXPECT_TRUE(monitor.observe(latency_snapshot("svc", hist)).empty());
  }
  EXPECT_FALSE(monitor.any_tripped());
  EXPECT_NE(monitor.summary().find("latency_tail=n/a"), std::string::npos)
      << monitor.summary();
}

TEST(SloMonitorTest, RejectRateJudgesAdmissionDeltas) {
  obs::SloMonitor monitor(slo_opts_for("svc"));  // threshold 0.25
  std::uint64_t admitted = 0, rejected = 0;
  const auto window = [&](std::uint64_t adm, std::uint64_t rej) {
    admitted += adm;
    rejected += rej;
    obs::MetricsSnapshot snap;
    snap.counters["svc/requests_admitted"] = admitted;
    snap.counters["svc/requests_rejected"] = rejected;
    return monitor.observe(snap);
  };

  window(0, 0);  // baseline
  window(10, 90);
  window(10, 90);
  EXPECT_TRUE(monitor.tripped("reject_rate"));
  EXPECT_DOUBLE_EQ(monitor.last_value("reject_rate"), 0.9);
  // Lifetime totals stay awful; the *window* turning healthy is what
  // clears — the whole point of judging deltas.
  window(100, 0);
  window(100, 0);
  EXPECT_FALSE(monitor.tripped("reject_rate"));
}

// ---------------------------------------------------------------------------
// Metrics JSON escaping (satellite: names must never break the document)
// ---------------------------------------------------------------------------

bool balanced_json_object(const std::string& s) {
  // Escape-aware structural scan: every quote opens/closes a string
  // (honoring backslash escapes), braces balance outside strings, and
  // no raw control characters survive.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x20) return false;  // must have been \uXXXX-escaped
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}' && --depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(MetricsJsonTest, HostileMetricNamesStayWellFormed) {
  auto& reg = obs::MetricsRegistry::global();
  // Deterministic "fuzz": every byte class that can break a JSON
  // string — quotes, backslashes, newlines, tabs, raw control bytes,
  // DEL, and multi-byte UTF-8 — spread across all three metric kinds.
  const std::string hostile[] = {
      "esc/quote\"inner", "esc/back\\slash", "esc/newline\nsplit",
      "esc/tab\tstop",    std::string("esc/ctrl") + '\x01' + "byte",
      "esc/utf8 héllo",   "esc/del\x7f",
  };
  for (std::size_t i = 0; i < std::size(hostile); ++i) {
    reg.counter(hostile[i]).add(i + 1);
  }
  reg.gauge("esc/gauge\"q").set(1.5);
  reg.histogram("esc/hist\\h").record(0.01);

  const std::string json = reg.to_json();
  EXPECT_TRUE(balanced_json_object(json)) << json;
  EXPECT_NE(json.find("esc/quote\\\"inner"), std::string::npos);
  EXPECT_NE(json.find("esc/back\\\\slash"), std::string::npos);
  // Control bytes escape to lowercase \u00xx (the writer never emits
  // two-character shorthands — one uniform path, one thing to fuzz).
  EXPECT_NE(json.find("esc/newline\\u000asplit"), std::string::npos);
  EXPECT_NE(json.find("esc/ctrl\\u0001byte"), std::string::npos);

  // The same names survive the telemetry wire byte-identically.
  obs::MetricsSnapshot snap;
  for (const std::string& name : hostile) {
    snap.counters[name] = reg.counter(name).value();
  }
  const obs::MetricsSnapshot back = net::telemetry::decode_metrics_frame(
      net::telemetry::encode_metrics_frame(snap));
  EXPECT_EQ(back.counters, snap.counters);

  reg.reset("esc/");
}

TEST(MetricsJsonTest, WindowedSnapshotDeltas) {
  obs::Histogram hist;
  for (int i = 0; i < 50; ++i) hist.record(1e-3);
  const obs::HistogramSnapshot before = hist.snapshot();
  for (int i = 0; i < 50; ++i) hist.record(1.0);
  const obs::HistogramSnapshot after = hist.snapshot();

  const obs::HistogramSnapshot window = after.since(before);
  EXPECT_EQ(window.count, 50u);
  EXPECT_NEAR(window.sum, 50.0, 1e-9);
  // The window holds only the slow samples: its p50 is the slow mode,
  // while the lifetime p50 straddles both.
  EXPECT_GT(window.percentile(0.5), 0.5);
  // since(self) is the empty window.
  EXPECT_EQ(after.since(after).count, 0u);
}

}  // namespace
