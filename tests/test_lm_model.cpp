// Unit tests for the composed LM models (WordLm / CharLm): the
// train-step contract the distributed trainer depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "zipflm/data/markov.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/nn/optimizer.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {
namespace {

Batch make_batch(const std::vector<Index>& ids, Index batch_size,
                 Index seq_len) {
  BatchIterator it(ids, BatchSpec{batch_size, seq_len}, 0, 1);
  Batch b;
  EXPECT_TRUE(it.next(b));
  return b;
}

WordLm make_word_lm(Index vocab = 40) {
  WordLmConfig cfg;
  cfg.vocab = vocab;
  cfg.embed_dim = 6;
  cfg.hidden_dim = 10;
  cfg.proj_dim = 6;
  cfg.seed = 5;
  return WordLm(cfg);
}

CharLm make_char_lm(Index vocab = 30) {
  CharLmConfig cfg;
  cfg.vocab = vocab;
  cfg.embed_dim = 6;
  cfg.hidden_dim = 8;
  cfg.depth = 2;
  cfg.seed = 5;
  return CharLm(cfg);
}

std::vector<Index> all_ids(Index vocab) {
  std::vector<Index> ids(static_cast<std::size_t>(vocab));
  for (Index i = 0; i < vocab; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

TEST(WordLmModel, StepResultShapesMatchContract) {
  auto model = make_word_lm();
  const BigramCorpus corpus(40, 6, 1);
  const auto data = corpus.generate(500, 0);
  const Batch batch = make_batch(data, 3, 7);

  LmStepResult res;
  model.train_step_local(batch, all_ids(40), res);

  EXPECT_GT(res.loss, 0.0f);
  EXPECT_EQ(res.input_ids, batch.inputs);
  EXPECT_EQ(res.input_delta.rows(), 21);  // K = 3 * 7
  EXPECT_EQ(res.input_delta.cols(), model.embed_dim());
  EXPECT_EQ(res.output_grad.ids.size(), 40u);
  EXPECT_EQ(res.output_grad.rows.rows(), 40);
}

TEST(WordLmModel, SampledLossEqualsFullWhenCandidatesAreVocab) {
  auto model = make_word_lm();
  const BigramCorpus corpus(40, 6, 2);
  const auto data = corpus.generate(500, 0);
  const Batch batch = make_batch(data, 2, 8);

  LmStepResult res;
  model.train_step_local(batch, all_ids(40), res);
  const float full = model.eval_loss(batch);
  EXPECT_NEAR(res.loss, full, 1e-4f);
}

TEST(WordLmModel, SingleRankSgdStepReducesTrainingLoss) {
  auto model = make_word_lm();
  const BigramCorpus corpus(40, 6, 3);
  const auto data = corpus.generate(2000, 0);
  const Batch batch = make_batch(data, 4, 10);
  const auto candidates = all_ids(40);

  Sgd sgd(0.5f);
  LmStepResult res;
  model.train_step_local(batch, candidates, res);
  const float first = res.loss;
  for (int step = 0; step < 30; ++step) {
    model.zero_grad();
    model.train_step_local(batch, candidates, res);
    // Single-rank update path: dense params + both sparse tables.
    auto dense = model.dense_params();
    sgd.step(dense);
    std::vector<Index> uids;
    Tensor ureduced;
    local_reduce_by_word(res.input_ids, res.input_delta, uids, ureduced);
    sgd.step_rows(model.input_embedding_param(), ureduced, uids);
    sgd.step_rows(*model.sampled_output_param(), res.output_grad.rows,
                  res.output_grad.ids);
  }
  model.zero_grad();
  model.train_step_local(batch, candidates, res);
  EXPECT_LT(res.loss, first * 0.8f)
      << "30 SGD steps on one batch must overfit it";
}

TEST(CharLmModel, StepResultHasNoSparseOutputGrad) {
  auto model = make_char_lm();
  const BigramCorpus corpus(30, 5, 4);
  const auto data = corpus.generate(500, 0);
  const Batch batch = make_batch(data, 3, 6);

  LmStepResult res;
  model.train_step_local(batch, {}, res);
  EXPECT_TRUE(res.output_grad.ids.empty());
  EXPECT_EQ(model.sampled_output_param(), nullptr);
  EXPECT_EQ(res.input_delta.rows(), 18);
}

TEST(CharLmModel, DenseParamsIncludeOutputEmbedding) {
  auto model = make_char_lm();
  // RHN (2 + 4*depth) + softmax embedding + bias.
  const auto dense = model.dense_params();
  EXPECT_EQ(dense.size(), 2u + 4u * 2u + 2u);
  // all_params additionally holds the input embedding.
  EXPECT_EQ(model.all_params().size(), dense.size() + 1);
}

TEST(CharLmModel, AdamStepsReduceTrainingLoss) {
  auto model = make_char_lm();
  const BigramCorpus corpus(30, 5, 6);
  const auto data = corpus.generate(2000, 0);
  const Batch batch = make_batch(data, 4, 8);

  Adam::Config cfg;
  cfg.lr = 0.01f;
  Adam adam(cfg);
  LmStepResult res;
  model.train_step_local(batch, {}, res);
  const float first = res.loss;
  for (int step = 0; step < 80; ++step) {
    model.zero_grad();
    model.train_step_local(batch, {}, res);
    adam.begin_step();
    auto dense = model.dense_params();
    adam.step(dense);
    std::vector<Index> uids;
    Tensor ureduced;
    local_reduce_by_word(res.input_ids, res.input_delta, uids, ureduced);
    adam.step_rows(model.input_embedding_param(), ureduced, uids);
  }
  model.zero_grad();
  model.train_step_local(batch, {}, res);
  EXPECT_LT(res.loss, first * 0.9f);
}

TEST(LmModel, IdenticalSeedsGiveIdenticalModels) {
  auto a = make_word_lm();
  auto b = make_word_lm();
  const auto pa = a.all_params();
  const auto pb = b.all_params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value == pb[i]->value) << pa[i]->name;
  }
}

TEST(LmModel, StaticBytesAndActivationEstimatesArePositive) {
  auto w = make_word_lm();
  auto c = make_char_lm();
  EXPECT_GT(w.static_bytes(), 0u);
  EXPECT_GT(c.static_bytes(), 0u);
  EXPECT_GT(w.activation_bytes_per_token(), 0u);
  EXPECT_GT(c.activation_bytes_per_token(), 0u);
  EXPECT_GT(w.flops_per_token(), 0.0);
  EXPECT_GT(c.flops_per_token(), 0.0);
}

TEST(LmModel, EvalLossNearLogVocabAtInit) {
  auto model = make_char_lm(30);
  const BigramCorpus corpus(30, 5, 8);
  const auto data = corpus.generate(600, 0);
  const Batch batch = make_batch(data, 4, 8);
  const float loss = model.eval_loss(batch);
  // Untrained model: roughly uniform predictions.
  EXPECT_NEAR(loss, std::log(30.0f), 0.5f);
}

TEST(WordLmModel, RejectsCandidatesMissingTargets) {
  auto model = make_word_lm();
  const BigramCorpus corpus(40, 6, 9);
  const auto data = corpus.generate(400, 0);
  const Batch batch = make_batch(data, 2, 5);
  LmStepResult res;
  std::vector<Index> empty;
  EXPECT_THROW(model.train_step_local(batch, empty, res), ConfigError);
}

}  // namespace
}  // namespace zipflm
