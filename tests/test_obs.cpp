// zipflm::obs — trace buffers, Chrome trace export, metrics registry,
// and the equivalence contracts the unified snapshot promises:
// PhaseTimers (shim), TrafficLedger ("comm/..."), ServeCounters
// ("serve/..."), and Histogram-vs-LatencyHistogram percentiles.
//
// The concurrent-emission tests run under the TSAN suite (check.sh
// tier 2), which is what actually proves the lock-free ring's
// synchronization contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/markov.hpp"
#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/serve/server.hpp"
#include "zipflm/stats/latency.hpp"
#include "zipflm/support/phase_timers.hpp"
#include "zipflm/support/thread_pool.hpp"

using namespace zipflm;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (values, strings with escapes,
// objects, arrays).  Rejects trailing garbage.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string export_trace() {
  std::ostringstream out;
  obs::write_chrome_trace(out);
  return out.str();
}

/// tid of the lane whose thread_name metadata matches `label` exactly
/// (exporter format: ...,"tid":N,"args":{"name":"<label>"}}), or -1.
int lane_tid(const std::string& json, const std::string& label) {
  const std::string needle = ",\"args\":{\"name\":\"" + label + "\"}}";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  const std::size_t tid_key = json.rfind("\"tid\":", at);
  if (tid_key == std::string::npos) return -1;
  return std::atoi(json.c_str() + tid_key + 6);
}

/// True iff an event named `name` was exported on lane `tid`.
bool event_on_lane(const std::string& json, const std::string& name,
                   int tid) {
  const std::string needle = "{\"name\":\"" + name +
                             "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
                             std::to_string(tid) + ",";
  return json.find(needle) != std::string::npos;
}

struct TraceGuard {
  TraceGuard() {
    obs::trace_clear();
    obs::trace_enable(true);
  }
  ~TraceGuard() {
    obs::trace_enable(false);
    obs::trace_clear();
  }
};

// Tests that assert on emitted trace content only make sense when the
// emission macros are compiled in (-DZIPFLM_TRACE=ON, the default).
#if ZIPFLM_TRACE
#define SKIP_WITHOUT_TRACE() ((void)0)
#else
#define SKIP_WITHOUT_TRACE() \
  GTEST_SKIP() << "tracing compiled out (ZIPFLM_TRACE=0)"
#endif

}  // namespace

// ---------------------------------------------------------------------------
// Trace buffer + export
// ---------------------------------------------------------------------------

TEST(Trace, DisabledEmitsNothing) {
  obs::trace_clear();
  obs::trace_enable(false);
  { ZIPFLM_TRACE_SPAN("should_not_appear"); }
  ZIPFLM_TRACE_INSTANT("nor_this");
  const std::string json = export_trace();
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(json.find("nor_this"), std::string::npos);
}

TEST(Trace, ExportIsWellFormedJsonWithLanes) {
  SKIP_WITHOUT_TRACE();
  TraceGuard guard;
  obs::set_thread_lane("test main", -1);
  {
    obs::SpanScope outer("outer_span", "bytes", 128.0);
    ZIPFLM_TRACE_SPAN("inner_span");
    ZIPFLM_TRACE_INSTANT("tick", "step", 3.0);
  }
  const std::string json = export_trace();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const int tid = lane_tid(json, "test main");
  ASSERT_GE(tid, 0) << json;
  EXPECT_TRUE(event_on_lane(json, "outer_span", tid));
  EXPECT_TRUE(event_on_lane(json, "inner_span", tid));
  // Instants carry ph:"i" and a scope.
  EXPECT_NE(json.find("{\"name\":\"tick\",\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Args survive: the span's static arg and the instant's.
  EXPECT_NE(json.find("\"args\":{\"bytes\":128}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"step\":3}"), std::string::npos);
}

TEST(Trace, DropOldestKeepsNewestAndReportsLoss) {
  SKIP_WITHOUT_TRACE();
  TraceGuard guard;
  obs::trace_set_buffer_capacity(16);
  std::thread t([] {
    obs::set_thread_lane("droplane", 500);
    for (int i = 0; i < 100; ++i) {
      obs::trace_instant("drop_tick", "i", static_cast<double>(i));
    }
  });
  t.join();
  const std::string json = export_trace();
  obs::trace_set_buffer_capacity(1 << 15);
  EXPECT_TRUE(JsonChecker(json).valid());
  // 100 emitted into a 16-slot ring: 84 dropped, newest survive.
  EXPECT_NE(json.find("droplane (dropped 84)"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"i\":99}"), std::string::npos);
  EXPECT_EQ(json.find("\"args\":{\"i\":83}"), std::string::npos);
}

TEST(Trace, SpanNestingByTimeContainment) {
  SKIP_WITHOUT_TRACE();
  TraceGuard guard;
  obs::set_thread_lane("nest lane", -1);
  {
    obs::SpanScope outer("nest_outer");
    obs::SpanScope inner("nest_inner");
  }
  const std::string json = export_trace();
  // Ring order is emission order: inner closes (and lands) first; both
  // must report inner.ts >= outer.ts (the exporter writes ts then dur).
  const auto ts_of = [&](const std::string& name) {
    const std::string needle = "{\"name\":\"" + name + "\"";
    const std::size_t at = json.find(needle);
    EXPECT_NE(at, std::string::npos) << name;
    const std::size_t ts = json.find("\"ts\":", at);
    return std::atof(json.c_str() + ts + 5);
  };
  EXPECT_GE(ts_of("nest_inner"), ts_of("nest_outer"));
}

TEST(Trace, ConcurrentRankAndPoolEmissionWithLaneAssignment) {
  SKIP_WITHOUT_TRACE();
  TraceGuard guard;
  // Rank threads and pool workers emit concurrently; export afterwards
  // is ordered by CommWorld::run's joins and the pool region's done
  // counter.  TSAN (check.sh tier 2) is the real assertion here.
  ThreadPool pool(4);
  CommWorld world(4);
  std::atomic<std::uint64_t> pool_work{0};
  for (int iter = 0; iter < 3; ++iter) {
    world.run([&](Communicator& comm) {
      std::vector<float> grads(4096, static_cast<float>(comm.rank()));
      comm.allreduce_sum(std::span<float>(grads));
      comm.barrier();
    });
    pool.parallel_chunks(
        100'000,
        [&](std::size_t begin, std::size_t end) {
          pool_work.fetch_add(end - begin, std::memory_order_relaxed);
        },
        1024);
  }
  const std::string json = export_trace();
  EXPECT_TRUE(JsonChecker(json).valid());
  for (int r = 0; r < 4; ++r) {
    const int tid = lane_tid(json, "rank " + std::to_string(r));
    ASSERT_GE(tid, 0) << "missing lane for rank " << r;
    EXPECT_TRUE(event_on_lane(json, "allreduce_f32", tid));
    EXPECT_TRUE(event_on_lane(json, "barrier", tid));
  }
  // Pool lanes exist and carry the chunk spans (worker indices depend
  // on scheduling, so just look for the span and any pool lane).
  EXPECT_NE(json.find("pool"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parallel_region\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pool_chunk\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset("t0/");
  auto& c = reg.counter("t0/events");
  auto& g = reg.gauge("t0/level");
  auto& h = reg.histogram("t0/latency");
  EXPECT_EQ(&c, &reg.counter("t0/events"));  // stable identity

  c.add(3);
  c.add();
  g.set(2.5);
  g.add(1.5);
  g.set_max(3.0);  // below current 4.0: no effect
  h.record(0.010);
  h.record(0.020);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("t0/events"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("t0/level"), 4.0);
  const auto& hs = snap.histograms.at("t0/latency");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_DOUBLE_EQ(hs.min, 0.010);
  EXPECT_DOUBLE_EQ(hs.max, 0.020);
  EXPECT_NEAR(hs.mean(), 0.015, 1e-12);

  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"t0/events\":4"), std::string::npos);

  reg.reset("t0/");
  EXPECT_EQ(c.value(), 0u);        // cached reference survives reset
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, ResetIsPrefixScoped) {
  auto& reg = obs::MetricsRegistry::global();
  auto& a = reg.counter("t1a/x");
  auto& b = reg.counter("t1b/x");
  a.add(5);
  b.add(7);
  reg.reset("t1a/");
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 7u);
  reg.reset("t1b/");
}

TEST(Metrics, ConcurrentUpdatesLoseNothing) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset("t2/");
  auto& c = reg.counter("t2/adds");
  auto& g = reg.gauge("t2/sum");
  auto& h = reg.histogram("t2/obs");
  constexpr int kThreads = 8;
  constexpr int kPer = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        c.add(1);
        g.add(1.0);
        h.record(0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPer);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(Metrics, HistogramMatchesLatencyHistogramPercentiles) {
  obs::Histogram h;
  LatencyHistogram lat;
  // Spread across several decades, including the clamp paths.
  const double values[] = {1e-8, 3e-6, 5e-5, 2e-4,  9e-4, 1e-3, 4e-3,
                           0.02, 0.5,  1.7,  25.0, 250.0, -1.0};
  for (const double v : values) {
    h.record(v);
    lat.record(v);
  }
  const auto hs = h.snapshot();
  EXPECT_EQ(hs.count, lat.count());
  EXPECT_DOUBLE_EQ(hs.sum, lat.sum_seconds());
  EXPECT_DOUBLE_EQ(hs.min, lat.min_seconds());
  EXPECT_DOUBLE_EQ(hs.max, lat.max_seconds());
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hs.percentile(p), lat.percentile(p)) << "p=" << p;
  }
}

TEST(Metrics, LatencyHistogramMergePreservesStats) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 1; i <= 50; ++i) a.record(1e-3 * i);
  for (int i = 51; i <= 100; ++i) b.record(1e-3 * i);
  LatencyHistogram all;
  for (int i = 1; i <= 100; ++i) all.record(1e-3 * i);

  a += b;
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum_seconds(), all.sum_seconds());
  EXPECT_DOUBLE_EQ(a.min_seconds(), all.min_seconds());
  EXPECT_DOUBLE_EQ(a.max_seconds(), all.max_seconds());
  for (const double p : {0.1, 0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p));
  }
}

// ---------------------------------------------------------------------------
// Legacy-instrument equivalence: the unified snapshot must reproduce
// PhaseTimers / TrafficLedger / ServeCounters numbers.
// ---------------------------------------------------------------------------

TEST(Equivalence, PhaseTimersIsARegistryShim) {
  PhaseTimers::reset();
  PhaseTimers::add("testphase", 1.5);
  PhaseTimers::add("testphase", 0.25);
  EXPECT_DOUBLE_EQ(PhaseTimers::seconds("testphase"), 1.75);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("phase/testphase_seconds"), 1.75);
  PhaseTimers::reset();
  EXPECT_DOUBLE_EQ(PhaseTimers::seconds("testphase"), 0.0);
}

TEST(Equivalence, CommRegistryMirrorsTrafficLedger) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset("comm/");
  CommWorld world(4);
  world.run([&](Communicator& comm) {
    std::vector<float> grads(1000, 1.0f);
    comm.allreduce_sum(std::span<float>(grads));
    std::vector<Half> half_grads(512);
    comm.allreduce_sum(std::span<Half>(half_grads));
    std::vector<std::byte> local(64, std::byte{1});
    std::vector<std::byte> out(64 * 4);
    comm.allgather_bytes(local, out);
    std::vector<std::byte> vlocal(
        static_cast<std::size_t>(8 * (comm.rank() + 1)), std::byte{2});
    std::vector<std::byte> vout;
    std::vector<std::size_t> counts;
    comm.allgatherv_bytes(vlocal, vout, counts);
    std::vector<std::byte> bc(256, std::byte{3});
    comm.broadcast_bytes(bc, 0);
    comm.barrier();
  });

  const TrafficLedger total = world.total_ledger();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("comm/bytes_sent"), total.bytes_sent);
  EXPECT_EQ(snap.counters.at("comm/bytes_received"), total.bytes_received);
  EXPECT_EQ(snap.counters.at("comm/allreduce_calls"), total.allreduce_calls);
  EXPECT_EQ(snap.counters.at("comm/allgather_calls"), total.allgather_calls);
  EXPECT_EQ(snap.counters.at("comm/broadcast_calls"), total.broadcast_calls);
  EXPECT_EQ(snap.counters.at("comm/barrier_calls"), total.barrier_calls);
  EXPECT_DOUBLE_EQ(snap.gauges.at("comm/max_collective_scratch_bytes"),
                   static_cast<double>(total.max_collective_scratch_bytes));
  EXPECT_DOUBLE_EQ(snap.gauges.at("comm/max_allreduce_payload_bytes"),
                   static_cast<double>(total.max_allreduce_payload_bytes));
  EXPECT_DOUBLE_EQ(snap.gauges.at("comm/max_allgather_payload_bytes"),
                   static_cast<double>(total.max_allgather_payload_bytes));
  EXPECT_DOUBLE_EQ(snap.gauges.at("comm/max_broadcast_payload_bytes"),
                   static_cast<double>(total.max_broadcast_payload_bytes));
  // CAS adds from 4 ranks land in nondeterministic order: tolerance.
  EXPECT_NEAR(snap.gauges.at("comm/simulated_seconds"),
              total.simulated_comm_seconds,
              1e-12 + 1e-9 * total.simulated_comm_seconds);

  // Per-collective payload peaks carry the known values.
  EXPECT_EQ(total.max_allreduce_payload_bytes, 1000u * sizeof(float));
  EXPECT_EQ(total.max_allgather_payload_bytes, 64u);
  EXPECT_EQ(total.max_broadcast_payload_bytes, 256u);
}

TEST(Equivalence, LedgerToJsonCarriesEveryField) {
  TrafficLedger led;
  led.bytes_sent = 11;
  led.bytes_received = 22;
  led.allreduce_calls = 3;
  led.allgather_calls = 4;
  led.broadcast_calls = 5;
  led.barrier_calls = 6;
  led.max_collective_scratch_bytes = 777;
  led.max_allreduce_payload_bytes = 100;
  led.max_allgather_payload_bytes = 200;
  led.max_broadcast_payload_bytes = 300;
  led.simulated_comm_seconds = 1.25;
  const std::string json = led.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"bytes_sent\":11"), std::string::npos);
  EXPECT_NE(json.find("\"max_allreduce_payload_bytes\":100"),
            std::string::npos);
  EXPECT_NE(json.find("\"max_allgather_payload_bytes\":200"),
            std::string::npos);
  EXPECT_NE(json.find("\"max_broadcast_payload_bytes\":300"),
            std::string::npos);
  EXPECT_NE(json.find("\"simulated_comm_seconds\":1.25"), std::string::npos);

  TrafficLedger other;
  other.max_allreduce_payload_bytes = 50;   // below: keeps 100
  other.max_allgather_payload_bytes = 900;  // above: takes 900
  led += other;
  EXPECT_EQ(led.max_allreduce_payload_bytes, 100u);
  EXPECT_EQ(led.max_allgather_payload_bytes, 900u);
}

TEST(Equivalence, ServeRegistryMirrorsServeCounters) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset("serve/");

  CharLmConfig cfg;
  cfg.vocab = 40;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.depth = 1;
  cfg.seed = 3;
  CharLm model(cfg);
  serve::ServeOptions opts;
  opts.max_batch = 2;
  opts.queue_depth = 8;
  opts.cache_capacity = 4;
  serve::Server server(model, opts);
  server.start();

  GenerateOptions gen;
  gen.max_context = 32;
  std::vector<std::uint64_t> ids;
  for (std::size_t s = 0; s < 4; ++s) {
    serve::Request req;
    req.session_id = s + 1;
    req.context = {static_cast<Index>(1 + s), 2};
    req.new_tokens = 5;
    req.options = gen;
    req.seed = 10 + s;
    const serve::Admission adm = server.submit(std::move(req));
    ASSERT_TRUE(adm.accepted);
    ids.push_back(adm.request_id);
  }
  for (const std::uint64_t id : ids) server.wait(id);
  const serve::ServeCounters c = server.counters();
  server.stop();

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("serve/requests_admitted"),
            c.requests_admitted);
  EXPECT_EQ(snap.counters.at("serve/requests_completed"),
            c.requests_completed);
  EXPECT_EQ(snap.counters.at("serve/batch_steps"), c.batch_steps);
  EXPECT_EQ(snap.counters.at("serve/batched_streams"), c.batched_streams);
  EXPECT_EQ(snap.counters.at("serve/tokens_generated"), c.tokens_generated);
  EXPECT_EQ(snap.counters.at("serve/cache_hits"), c.cache_hits);
  EXPECT_EQ(snap.counters.at("serve/cache_misses"), c.cache_misses);

  // Satellite: queue instrumentation.  Every admitted request passed
  // through the admission queue exactly once, and the registry mirror
  // records the same observations as the legacy histogram.
  EXPECT_EQ(c.queue_latency.count(), c.requests_admitted);
  const auto& qh = snap.histograms.at("serve/queue_seconds");
  EXPECT_EQ(qh.count, c.queue_latency.count());
  EXPECT_DOUBLE_EQ(qh.percentile(0.5), c.queue_latency.percentile(0.5));
  EXPECT_DOUBLE_EQ(qh.percentile(0.95), c.queue_latency.percentile(0.95));
  EXPECT_EQ(c.queue_depth, 0u);  // drained
}

// ---------------------------------------------------------------------------
// End-to-end trainer trace smoke: phases and collectives land on the
// right rank lanes.
// ---------------------------------------------------------------------------

TEST(TrainerTrace, StepPhasesAppearOnRankLanes) {
  SKIP_WITHOUT_TRACE();
  TraceGuard guard;
  const BigramCorpus corpus(50, 8, 11);
  const auto train = corpus.generate(4'000, 0);
  const auto valid = corpus.generate(1'000, 1);

  CommWorld world(2);
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 8};
  opt.use_adam = true;
  opt.base_lr = 1e-3f;
  opt.charge_static_memory = false;
  opt.metrics_every = 8;
  std::atomic<int> sink_calls{0};
  opt.metrics_sink = [&](std::uint64_t) { sink_calls.fetch_add(1); };
  DistributedTrainer trainer(
      world,
      [](int) -> std::unique_ptr<LmModel> {
        CharLmConfig cfg;
        cfg.vocab = 50;
        cfg.embed_dim = 8;
        cfg.hidden_dim = 16;
        cfg.depth = 1;
        cfg.seed = 5;
        return std::make_unique<CharLm>(cfg);
      },
      opt);
  const EpochStats stats = trainer.run_epoch(train, valid, 0);
  ASSERT_GT(stats.steps, 0u);
  EXPECT_GT(sink_calls.load(), 0);

  const std::string json = export_trace();
  EXPECT_TRUE(JsonChecker(json).valid());
  for (int r = 0; r < 2; ++r) {
    const int tid = lane_tid(json, "rank " + std::to_string(r));
    ASSERT_GE(tid, 0) << "missing rank lane " << r;
    for (const char* phase :
         {"train_step", "forward", "backward", "exchange", "optimizer",
          "allreduce_f32"}) {
      EXPECT_TRUE(event_on_lane(json, phase, tid))
          << phase << " missing on rank " << r;
    }
  }

  // The per-step metrics flowed into the registry.
  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_GE(snap.counters.at("train/steps"), stats.steps * 2);
  EXPECT_GT(snap.counters.at("train/tokens"), 0u);
  EXPECT_GT(snap.gauges.at("train/tokens_per_s"), 0.0);
}
