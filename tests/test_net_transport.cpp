// zipflm::net transport layer and the collectives re-plumbed over it.
//
// Three strata:
//  * Transport semantics — rendezvous handshake, nonblocking completion,
//    partial bidirectional transfers without deadlock, recv timeouts,
//    and the drain-then-PeerClosedError failure order, on both the
//    in-process oracle and the real socket backend.
//  * Collective parity — the same battery of collectives run under the
//    SharedMem, InProcNet, and Socket CommWorld backends must produce
//    bitwise-identical buffers and identical payload ledgers (the net
//    backends additionally record nonzero wire bytes).
//  * Trainer parity — a DistributedTrainer run over the message-passing
//    backends reproduces the shared-memory losses and weights exactly,
//    at G in {1, 4}, FP32/FP16 wire, and with the overlapped bucketed
//    exchange riding the socket path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "zipflm/comm/process_group.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/trainer.hpp"
#include "zipflm/data/corpus.hpp"
#include "zipflm/net/inproc.hpp"
#include "zipflm/net/socket.hpp"
#include "zipflm/net/transport.hpp"
#include "zipflm/tensor/half.hpp"

namespace zipflm {
namespace {

std::span<const std::byte> bytes_of(const auto& v) {
  return std::as_bytes(std::span(v));
}

std::span<std::byte> writable_bytes_of(auto& v) {
  return std::as_writable_bytes(std::span(v));
}

// -- Transport semantics: in-process oracle ---------------------------

TEST(InProcTransport, EndpointIdentityAndVacuousEmptyOps) {
  net::InProcHub hub(3);
  EXPECT_EQ(hub.world_size(), 3);
  auto ep0 = hub.endpoint(0);
  auto ep2 = hub.endpoint(2);
  EXPECT_EQ(ep0->rank(), 0);
  EXPECT_EQ(ep0->world_size(), 3);
  EXPECT_STREQ(ep0->kind(), "inproc");

  // Zero-byte messages complete vacuously, without touching a channel.
  std::vector<std::byte> empty;
  auto c = ep0->send(2, bytes_of(empty));
  EXPECT_FALSE(c.valid());
  EXPECT_TRUE(c.done());
  c.wait();  // must be a no-op
  EXPECT_EQ(ep0->stats().wire_bytes_sent, 0u);

  // Self-sends and out-of-range peers are caller bugs.
  std::vector<std::byte> one(1);
  EXPECT_THROW(ep0->send(0, bytes_of(one)), Error);
  EXPECT_THROW((void)ep2->recv(3, writable_bytes_of(one)), Error);
}

TEST(InProcTransport, NonblockingRecvCompletesWhenMessageArrives) {
  net::InProcHub hub(2);
  auto ep0 = hub.endpoint(0);
  auto ep1 = hub.endpoint(1);

  // Post the receive BEFORE the send exists: completion must be deferred.
  std::vector<int> in(4, 0);
  auto recvd = ep1->recv(0, writable_bytes_of(in));
  EXPECT_FALSE(recvd.done());

  const std::vector<int> out{3, 1, 4, 1};
  ep0->send_blocking(1, bytes_of(out));
  recvd.wait();
  EXPECT_TRUE(recvd.done());
  EXPECT_EQ(in, out);
  EXPECT_EQ(ep0->stats().wire_bytes_sent, sizeof(int) * 4);
  EXPECT_EQ(ep1->stats().wire_bytes_received, sizeof(int) * 4);
}

TEST(InProcTransport, RecvTimesOut) {
  net::InProcHub hub(2);
  auto ep1 = hub.endpoint(1);
  ep1->set_timeout_seconds(0.05);
  std::vector<std::byte> in(8);
  EXPECT_THROW(ep1->recv_blocking(0, writable_bytes_of(in)),
               net::TransportTimeoutError);
}

TEST(InProcTransport, PeerCloseDrainsBufferedMessagesFirst) {
  net::InProcHub hub(2);
  auto ep0 = hub.endpoint(0);
  auto ep1 = hub.endpoint(1);

  const std::vector<float> out{2.5f, -1.0f};
  ep0->send_blocking(1, bytes_of(out));
  ep0->close();

  // The message queued before the close is still delivered...
  std::vector<float> in(2, 0.0f);
  ep1->recv_blocking(0, writable_bytes_of(in));
  EXPECT_EQ(in, out);
  // ...and only then does the dead peer surface.
  EXPECT_THROW(ep1->recv_blocking(0, writable_bytes_of(in)),
               net::PeerClosedError);
  EXPECT_THROW(ep1->send_blocking(0, bytes_of(out)), net::PeerClosedError);
}

TEST(InProcTransport, SizeMismatchIsProtocolError) {
  net::InProcHub hub(2);
  auto ep0 = hub.endpoint(0);
  auto ep1 = hub.endpoint(1);
  const std::vector<std::byte> eight(8);
  ep0->send_blocking(1, bytes_of(eight));
  std::vector<std::byte> four(4);
  EXPECT_THROW(ep1->recv_blocking(0, writable_bytes_of(four)),
               net::ProtocolError);
}

// -- Transport semantics: socket backend ------------------------------

TEST(SocketTransport, NonblockingCompletionOverSocketpair) {
  auto mesh = net::socketpair_mesh(2);
  ASSERT_EQ(mesh.size(), 2u);
  EXPECT_STREQ(mesh[0]->kind(), "socket");

  std::vector<int> in(3, 0);
  auto recvd = mesh[1]->recv(0, writable_bytes_of(in));
  const std::vector<int> out{7, 8, 9};
  mesh[0]->send_blocking(1, bytes_of(out));
  recvd.wait();
  EXPECT_EQ(in, out);
  EXPECT_GE(mesh[0]->stats().wire_bytes_sent, sizeof(int) * 3);
}

TEST(SocketTransport, LargeBidirectionalPayloadsDoNotDeadlock) {
  // Both ranks push 8 MiB at each other head-to-head — far beyond any
  // kernel socket buffer, so neither side's send can finish unless its
  // wait() keeps draining the incoming stream (the partial-transfer
  // progress engine under every symmetric ring step).
  constexpr std::size_t kBytes = 8u << 20;
  auto mesh = net::socketpair_mesh(2);
  auto run = [&](int r) {
    std::vector<std::byte> out(kBytes);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(r)) &
                                      0xFF);
    }
    std::vector<std::byte> in(kBytes);
    auto sent = mesh[static_cast<std::size_t>(r)]->send(1 - r, out);
    auto recvd = mesh[static_cast<std::size_t>(r)]->recv(1 - r, in);
    sent.wait();
    recvd.wait();
    // What arrived is the peer's pattern, byte for byte.
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (in[i] != static_cast<std::byte>(
                       (i * 31 + static_cast<std::size_t>(1 - r)) & 0xFF)) {
        return false;
      }
    }
    return true;
  };
  auto f1 = std::async(std::launch::async, run, 1);
  EXPECT_TRUE(run(0));
  EXPECT_TRUE(f1.get());
  EXPECT_GE(mesh[0]->stats().wire_bytes_sent, kBytes);
  EXPECT_GE(mesh[0]->stats().wire_bytes_received, kBytes);
}

TEST(SocketTransport, RecvTimesOut) {
  auto mesh = net::socketpair_mesh(2);
  mesh[1]->set_timeout_seconds(0.05);
  std::vector<std::byte> in(16);
  EXPECT_THROW(mesh[1]->recv_blocking(0, writable_bytes_of(in)),
               net::TransportTimeoutError);
}

TEST(SocketTransport, PeerDeathDrainsThenFails) {
  auto mesh = net::socketpair_mesh(2);
  const std::vector<double> out{1.25, 2.5};
  mesh[0]->send_blocking(1, bytes_of(out));
  mesh[0]->close();

  std::vector<double> in(2, 0.0);
  mesh[1]->recv_blocking(0, writable_bytes_of(in));  // pre-close bytes
  EXPECT_EQ(in, out);
  EXPECT_THROW(mesh[1]->recv_blocking(0, writable_bytes_of(in)),
               net::PeerClosedError);
}

// -- Rendezvous protocol ----------------------------------------------

std::string test_rendezvous_prefix(const char* tag) {
  return std::string("unix:/tmp/zipflm_nt_") + tag + "." +
         std::to_string(::getpid());
}

TEST(SocketRendezvous, ThreeRanksHandshakeAndRing) {
  const std::string addr = test_rendezvous_prefix("ring");
  constexpr int kWorld = 3;
  auto join = [&](int r) {
    net::RendezvousOptions opts;
    opts.timeout_seconds = 20.0;
    auto ep = net::rendezvous(addr, r, kWorld, opts);
    EXPECT_EQ(ep->rank(), r);
    EXPECT_EQ(ep->world_size(), kWorld);
    // One ring hop: send my rank right, receive my left neighbour's.
    const int out = r;
    int in = -1;
    auto sent =
        ep->send((r + 1) % kWorld, std::as_bytes(std::span(&out, 1)));
    ep->recv_blocking((r + kWorld - 1) % kWorld,
                      std::as_writable_bytes(std::span(&in, 1)));
    sent.wait();
    return in == (r + kWorld - 1) % kWorld;
  };
  std::vector<std::future<bool>> fs;
  for (int r = 1; r < kWorld; ++r) {
    fs.push_back(std::async(std::launch::async, join, r));
  }
  EXPECT_TRUE(join(0));
  for (auto& f : fs) EXPECT_TRUE(f.get());
}

TEST(SocketRendezvous, WorldSizeMismatchIsProtocolError) {
  const std::string addr = test_rendezvous_prefix("mismatch");
  net::RendezvousOptions opts;
  opts.timeout_seconds = 5.0;
  // Rank 1 claims a 3-rank world; rank 0 expects 2.  The accepting side
  // sees the hello mismatch (ProtocolError); the dialing side sees its
  // rejected connection die (any transport error).
  auto f1 = std::async(std::launch::async, [&] {
    try {
      (void)net::rendezvous(addr, 1, 3, opts);
      return false;
    } catch (const net::TransportError&) {
      return true;
    }
  });
  EXPECT_THROW((void)net::rendezvous(addr, 0, 2, opts), net::ProtocolError);
  EXPECT_TRUE(f1.get());
}

TEST(ProcessGroup, TwoProcessesWorthOfRanksInThreads) {
  // The full ProcessGroup stack (rendezvous + TransportComm + ledger)
  // driven by two in-process ranks — what two zipflm_launch children do,
  // minus the fork.
  const std::string addr = test_rendezvous_prefix("pg");
  auto join = [&](int r) {
    ProcessGroup::Options opt;
    opt.collective_timeout_seconds = 20.0;
    auto pg = ProcessGroup::connect(addr, r, 2, opt);
    std::vector<float> buf(5, static_cast<float>(r + 1));
    pg->comm().allreduce_sum(std::span<float>(buf));
    bool ok = pg->rank() == r && pg->world_size() == 2;
    for (const float v : buf) ok = ok && v == 3.0f;
    ok = ok && pg->ledger().allreduce_calls == 1;
    ok = ok && pg->ledger().wire_bytes_sent > 0;
    return ok;
  };
  auto f1 = std::async(std::launch::async, join, 1);
  EXPECT_TRUE(join(0));
  EXPECT_TRUE(f1.get());
}

// -- Collective parity across CommWorld backends ----------------------

struct RankOutcome {
  std::vector<unsigned char> bytes;  ///< every result buffer, concatenated
  TrafficLedger ledger;
};

void append_bytes(std::vector<unsigned char>& out, const void* p,
                  std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  out.insert(out.end(), b, b + n);
}

/// One deterministic pass through every collective family.
std::vector<RankOutcome> run_battery(CommBackend backend, int gpus) {
  CommWorld::Options wopt;
  wopt.backend = backend;
  CommWorld world(gpus, wopt);
  std::vector<RankOutcome> outs(static_cast<std::size_t>(gpus));
  world.run([&](Communicator& comm) {
    const int r = comm.rank();
    const int g = comm.world_size();
    auto& out = outs[static_cast<std::size_t>(r)].bytes;
    comm.barrier();

    std::vector<float> f(41);
    for (std::size_t j = 0; j < f.size(); ++j) {
      f[j] = 0.125f * static_cast<float>(r + 1) * static_cast<float>(j + 1);
    }
    comm.allreduce_sum(std::span<float>(f));
    append_bytes(out, f.data(), f.size() * sizeof(float));

    std::vector<Half> h(23);
    for (std::size_t j = 0; j < h.size(); ++j) {
      h[j] = Half(0.25f * static_cast<float>(r + 1) -
                  0.5f * static_cast<float>(j));
    }
    comm.allreduce_sum(std::span<Half>(h));
    append_bytes(out, h.data(), h.size() * sizeof(Half));

    std::vector<float> m(17);
    for (std::size_t j = 0; j < m.size(); ++j) {
      m[j] = static_cast<float>((r * 7 + static_cast<int>(j) * 3) % 13) - 6.0f;
    }
    comm.allreduce_max(std::span<float>(m));
    append_bytes(out, m.data(), m.size() * sizeof(float));

    const std::vector<int> mine{r * 3, r * 3 + 1};
    std::vector<int> gathered;
    comm.allgather(std::span<const int>(mine), gathered);
    append_bytes(out, gathered.data(), gathered.size() * sizeof(int));

    const std::vector<double> vmine(static_cast<std::size_t>(r) + 1,
                                    1.5 * r - 0.25);
    std::vector<double> vgathered;
    std::vector<std::size_t> counts;
    comm.allgatherv(std::span<const double>(vmine), vgathered, &counts);
    append_bytes(out, vgathered.data(), vgathered.size() * sizeof(double));
    append_bytes(out, counts.data(), counts.size() * sizeof(std::size_t));

    const int root = g > 1 ? 1 : 0;
    std::vector<float> b(9, r == root ? 2.5f : 0.0f);
    comm.broadcast(std::span<float>(b), root);
    append_bytes(out, b.data(), b.size() * sizeof(float));

    // alltoallv with uneven per-destination counts (dest d gets d+1
    // elements from every source, so block boundaries differ per pair).
    std::vector<std::int32_t> a2a_send;
    std::vector<std::size_t> a2a_counts(static_cast<std::size_t>(g));
    for (int d = 0; d < g; ++d) {
      a2a_counts[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(d) + 1;
      for (int j = 0; j <= d; ++j) {
        a2a_send.push_back(r * 100 + d * 10 + j);
      }
    }
    std::vector<std::int32_t> a2a_out;
    std::vector<std::size_t> a2a_recv;
    comm.alltoallv(std::span<const std::int32_t>(a2a_send), a2a_counts,
                   a2a_out, a2a_recv);
    append_bytes(out, a2a_out.data(), a2a_out.size() * sizeof(std::int32_t));
    append_bytes(out, a2a_recv.data(),
                 a2a_recv.size() * sizeof(std::size_t));

    comm.barrier();
  });
  for (int r = 0; r < gpus; ++r) {
    outs[static_cast<std::size_t>(r)].ledger = world.ledger(r);
  }
  return outs;
}

void expect_payload_ledgers_equal(const TrafficLedger& a,
                                  const TrafficLedger& b) {
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.bytes_received, b.bytes_received);
  EXPECT_EQ(a.allreduce_calls, b.allreduce_calls);
  EXPECT_EQ(a.allgather_calls, b.allgather_calls);
  EXPECT_EQ(a.alltoall_calls, b.alltoall_calls);
  EXPECT_EQ(a.broadcast_calls, b.broadcast_calls);
  EXPECT_EQ(a.barrier_calls, b.barrier_calls);
  EXPECT_EQ(a.max_allreduce_payload_bytes, b.max_allreduce_payload_bytes);
  EXPECT_EQ(a.max_allgather_payload_bytes, b.max_allgather_payload_bytes);
  EXPECT_EQ(a.max_alltoall_payload_bytes, b.max_alltoall_payload_bytes);
  EXPECT_EQ(a.max_broadcast_payload_bytes, b.max_broadcast_payload_bytes);
  EXPECT_EQ(a.simulated_comm_seconds, b.simulated_comm_seconds);
}

TEST(TransportCommParity, CollectivesMatchSharedMemBitwise) {
  for (const int gpus : {1, 4}) {
    const auto ref = run_battery(CommBackend::SharedMem, gpus);
    for (const CommBackend backend :
         {CommBackend::InProcNet, CommBackend::Socket}) {
      const auto got = run_battery(backend, gpus);
      for (int r = 0; r < gpus; ++r) {
        const auto& want = ref[static_cast<std::size_t>(r)];
        const auto& have = got[static_cast<std::size_t>(r)];
        EXPECT_EQ(want.bytes, have.bytes)
            << "rank " << r << " diverged at G=" << gpus;
        expect_payload_ledgers_equal(want.ledger, have.ledger);
        // Real wire traffic exists only on the net backends (and only
        // when there is a peer to talk to).
        EXPECT_EQ(want.ledger.wire_bytes_sent, 0u);
        if (gpus > 1) {
          EXPECT_GT(have.ledger.wire_bytes_sent, 0u);
          EXPECT_GT(have.ledger.real_comm_seconds, 0.0);
        }
      }
    }
  }
}

// -- Trainer parity: thread vs message-passing backends ---------------

std::vector<Index> tiny_corpus(Index vocab, std::size_t n,
                               std::uint64_t seed) {
  ZipfSampler sampler(static_cast<std::uint64_t>(vocab), 1.1);
  Rng rng(seed);
  std::vector<Index> ids(n);
  for (auto& id : ids) id = static_cast<Index>(sampler.sample(rng) - 1);
  return ids;
}

DistributedTrainer::ModelFactory tiny_word_factory(Index vocab) {
  return [vocab](int /*rank*/) -> std::unique_ptr<LmModel> {
    WordLmConfig cfg;
    cfg.vocab = vocab;
    cfg.embed_dim = 8;
    cfg.hidden_dim = 12;
    cfg.proj_dim = 8;
    cfg.seed = 1234;
    return std::make_unique<WordLm>(cfg);
  };
}

TrainerOptions tiny_options() {
  TrainerOptions opt;
  opt.batch = BatchSpec{2, 6};
  opt.base_lr = 0.2f;
  opt.lr_decay = 1.0f;
  opt.clip = 5.0f;
  opt.charge_static_memory = false;
  return opt;
}

/// Every parameter tensor of every replica, as raw bytes.
std::vector<unsigned char> model_bytes(DistributedTrainer& trainer) {
  std::vector<unsigned char> out;
  for (Param* p : trainer.model(0).all_params()) {
    const auto data = p->value.data();
    append_bytes(out, data.data(), data.size() * sizeof(float));
  }
  return out;
}

void expect_transport_matches_thread(
    int gpus, WirePrecision wire, bool overlapped,
    std::initializer_list<CommBackend> backends) {
  const Index vocab = 50;
  const auto train = tiny_corpus(vocab, 2400, 7);
  const auto valid = tiny_corpus(vocab, 400, 8);

  std::vector<unsigned char> reference;
  double ref_train = 0.0, ref_valid = 0.0;
  TrafficLedger ref_ledger;
  std::vector<CommBackend> all{CommBackend::SharedMem};
  all.insert(all.end(), backends);
  for (const CommBackend backend : all) {
    CommWorld::Options wopt;
    wopt.backend = backend;
    CommWorld world(gpus, wopt);
    TrainerOptions opt = tiny_options();
    opt.samples_per_rank = 16;
    opt.wire = wire;
    opt.overlapped_exchange = overlapped;
    opt.overlap_bucket_bytes = 512;  // several buckets even at toy sizes
    DistributedTrainer trainer(world, tiny_word_factory(vocab), opt);

    EpochStats last{};
    for (int e = 0; e < 2; ++e) last = trainer.run_epoch(train, valid, e);
    EXPECT_TRUE(trainer.replicas_in_sync());

    const auto bytes = model_bytes(trainer);
    const TrafficLedger total = world.total_ledger();
    if (backend == CommBackend::SharedMem) {
      reference = bytes;
      ref_train = last.train_loss;
      ref_valid = last.valid_loss;
      ref_ledger = total;
      continue;
    }
    // Bitwise: the losses are exact doubles and the weights exact bytes.
    EXPECT_EQ(last.train_loss, ref_train);
    EXPECT_EQ(last.valid_loss, ref_valid);
    ASSERT_EQ(bytes.size(), reference.size());
    EXPECT_EQ(0, std::memcmp(bytes.data(), reference.data(), bytes.size()))
        << "transport backend diverged from threads at G=" << gpus;
    // Same payload accounting, plus real wire traffic on top.
    expect_payload_ledgers_equal(ref_ledger, total);
    if (gpus > 1) {
      EXPECT_GT(total.wire_bytes_sent, 0u);
    }
  }
}

TEST(TransportTrainer, MatchesThreadBitwiseG1Fp32) {
  expect_transport_matches_thread(
      1, WirePrecision::FP32, false,
      {CommBackend::InProcNet, CommBackend::Socket});
}

TEST(TransportTrainer, MatchesThreadBitwiseG4Fp32) {
  expect_transport_matches_thread(
      4, WirePrecision::FP32, false,
      {CommBackend::InProcNet, CommBackend::Socket});
}

TEST(TransportTrainer, MatchesThreadBitwiseG4Fp16) {
  expect_transport_matches_thread(4, WirePrecision::FP16, false,
                                  {CommBackend::Socket});
}

TEST(TransportTrainer, OverlappedExchangeOnSocketMatchesThread) {
  expect_transport_matches_thread(4, WirePrecision::FP32, true,
                                  {CommBackend::Socket});
}

}  // namespace
}  // namespace zipflm
