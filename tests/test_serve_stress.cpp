// Shutdown under fire: concurrent submit/stop/wait must never hang,
// double-join, or leave an accepted request without a terminal
// Response.  Exercised with many client threads so TSAN can prove the
// stop() path free of the double-join and lost-wakeup races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "zipflm/nn/lm_model.hpp"
#include "zipflm/serve/server.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm::serve {
namespace {

std::unique_ptr<CharLm> small_char(std::uint64_t seed = 3) {
  CharLmConfig cfg;
  cfg.vocab = 20;
  cfg.embed_dim = 5;
  cfg.hidden_dim = 7;
  cfg.depth = 2;
  cfg.seed = seed;
  return std::make_unique<CharLm>(cfg);
}

Request session_request(std::uint64_t session, std::size_t new_tokens,
                        std::uint64_t seed) {
  Request r;
  r.session_id = session;
  r.context = {static_cast<Index>(1 + session % 10), 2, 3};
  r.new_tokens = new_tokens;
  r.options.max_context = 512;
  r.seed = seed;
  return r;
}

bool terminal(const Response& r) {
  return r.status == ResponseStatus::Ok ||
         r.status == ResponseStatus::FailedShutdown;
}

TEST(ServeStress, ConcurrentSubmitAndStopResolvesEveryAcceptedRequest) {
  auto model = small_char();
  ServeOptions options;
  options.max_batch = 4;
  options.queue_depth = 16;
  options.drain_on_stop = false;  // fail-fast: the harsher path
  Server server(*model, options);
  server.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 20;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> completed_ok{0};
  // Submissions accepted after shutdown completed sit parked in the
  // admission queue for a future start(); wait() refuses them.
  std::atomic<std::uint64_t> parked{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const Admission a = server.submit(session_request(
            static_cast<std::uint64_t>(c), 40,
            static_cast<std::uint64_t>(c * 1000 + i)));
        if (!a.accepted) {
          EXPECT_GT(a.retry_after_seconds, 0.0)
              << "backpressure must never hint an immediate retry";
          continue;
        }
        accepted.fetch_add(1);
        try {
          const Response r = server.wait(a.request_id);
          EXPECT_EQ(r.request_id, a.request_id);
          EXPECT_TRUE(terminal(r));
          if (r.status == ResponseStatus::Ok) completed_ok.fetch_add(1);
          resolved.fetch_add(1);
        } catch (const Error&) {
          parked.fetch_add(1);
        }
      }
    });
  }

  // Let some work land, then pull the rug with racing stop() calls.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread stopper_a([&] { server.stop(); });
  std::thread stopper_b([&] { server.stop(); });
  stopper_a.join();
  stopper_b.join();
  for (auto& t : clients) t.join();

  // Every request accepted before shutdown reached a terminal state —
  // nobody hung — and the counters balance.
  EXPECT_EQ(resolved.load() + parked.load(), accepted.load());
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.requests_completed, completed_ok.load());
  EXPECT_EQ(counters.requests_completed + counters.requests_failed +
                parked.load(),
            counters.requests_admitted);
}

TEST(ServeStress, DrainStopFinishesInFlightWork) {
  auto model = small_char();
  ServeOptions options;
  options.max_batch = 8;
  options.drain_on_stop = true;
  Server server(*model, options);
  server.start();

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    const Admission a = server.submit(
        session_request(static_cast<std::uint64_t>(i), 30,
                        static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.request_id);
  }
  server.stop();  // drain: everything queued must finish Ok

  for (const std::uint64_t id : ids) {
    Response r;
    ASSERT_TRUE(server.poll(id, r));
    EXPECT_EQ(r.status, ResponseStatus::Ok);
    EXPECT_EQ(r.tokens.size(), 3u + 30u);
  }
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.requests_completed, 8u);
  EXPECT_EQ(counters.requests_failed, 0u);
}

TEST(ServeStress, FailFastStopResolvesLongRequests) {
  auto model = small_char();
  ServeOptions options;
  options.max_batch = 4;
  options.drain_on_stop = false;
  Server server(*model, options);
  server.start();

  // Requests long enough that stop() lands mid-generation.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const Admission a = server.submit(
        session_request(static_cast<std::uint64_t>(i), 400,
                        static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.request_id);
  }
  server.stop();

  std::size_t failed = 0;
  for (const std::uint64_t id : ids) {
    Response r;
    ASSERT_TRUE(server.poll(id, r)) << "request " << id << " left unresolved";
    EXPECT_TRUE(terminal(r));
    if (r.status == ResponseStatus::FailedShutdown) {
      // Partial output is surfaced: at least the context survives.
      EXPECT_GE(r.tokens.size(), 3u);
      EXPECT_LT(r.tokens.size(), 3u + 400u);
      ++failed;
    }
  }
  EXPECT_EQ(server.counters().requests_failed, failed);
}

TEST(ServeStress, BlockedWaitersWakeOnStop) {
  auto model = small_char();
  ServeOptions options;
  options.drain_on_stop = false;
  Server server(*model, options);
  server.start();

  const Admission a =
      server.submit(session_request(1, 400, 7));
  ASSERT_TRUE(a.accepted);

  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    const Response r = server.wait(a.request_id);
    EXPECT_TRUE(terminal(r));
    waiter_done = true;
  });
  std::thread idler([&] { server.wait_idle(); });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  waiter.join();  // would hang forever without the shutdown wakeup
  idler.join();
  EXPECT_TRUE(waiter_done.load());
}

TEST(ServeStress, StopWithoutStartIsSafeAndRepeatable) {
  auto model = small_char();
  Server server(*model, ServeOptions{});
  server.stop();
  server.stop();
  SUCCEED();
}

TEST(ServeStress, RestartAfterStopServesAgain) {
  auto model = small_char();
  ServeOptions options;
  options.drain_on_stop = false;
  Server server(*model, options);

  for (int round = 0; round < 3; ++round) {
    server.start();
    const Admission a = server.submit(
        session_request(static_cast<std::uint64_t>(round), 5,
                        static_cast<std::uint64_t>(round)));
    ASSERT_TRUE(a.accepted);
    const Response r = server.wait(a.request_id);
    EXPECT_TRUE(terminal(r));
    server.stop();
  }
}

TEST(ServeStress, BackpressureHintIsPositiveBeforeFirstCompletion) {
  auto model = small_char();
  ServeOptions options;
  options.max_batch = 1;
  options.queue_depth = 1;
  Server server(*model, options);  // never started: queue can only fill

  ASSERT_TRUE(server.submit(session_request(1, 5, 1)).accepted);
  const Admission rejected = server.submit(session_request(2, 5, 2));
  EXPECT_FALSE(rejected.accepted);
  // Regression: with no completed requests the measured mean latency is
  // zero; the hint must fall back to default_retry_seconds, not tell
  // clients to hammer the queue immediately.
  EXPECT_EQ(rejected.retry_after_seconds, options.default_retry_seconds);

  server.start();
  server.stop();  // resolve the queued request (FailedShutdown or Ok)
}

}  // namespace
}  // namespace zipflm::serve
