// Wire-codec round trips, determinism, and cross-backend parity.
//
// The contracts under test (see comm/wire_codec.hpp):
//  * index varint/delta and the packed byte-plane codec are lossless
//    over arbitrary payloads — including empty blocks, single elements,
//    int64 extremes, denormals, and NaN bit patterns;
//  * INT8 is deterministic (same bytes in, same bytes out) and its
//    vector kernels are bitwise identical to the scalar fallbacks;
//  * a coded allreduce produces the same bits on the SharedMem,
//    InProcNet, and Socket backends, and the lossless codec reproduces
//    the raw path exactly;
//  * ranks arming different codecs fail loudly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/comm/wire_codec.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/tensor/pack.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {
namespace {

std::vector<Index> roundtrip_ids(const std::vector<Index>& ids) {
  std::vector<std::byte> enc;
  encode_index_block(std::span<const Index>(ids), enc);
  std::vector<Index> dec;
  decode_index_block(std::span<const std::byte>(enc), dec);
  return dec;
}

TEST(IndexCodec, RoundTripsEdgePayloads) {
  const std::vector<std::vector<Index>> cases = {
      {},
      {0},
      {42},
      {std::numeric_limits<Index>::max()},
      {std::numeric_limits<Index>::min()},
      {std::numeric_limits<Index>::min(), std::numeric_limits<Index>::max()},
      {7, 7, 7, 7},
      {5, 1, 9, 2, 2, 8},  // unsorted: zigzag handles negative deltas
      {0, 1, 2, 3, 1000000, 1000001},
  };
  for (const auto& ids : cases) {
    EXPECT_EQ(roundtrip_ids(ids), ids) << "case size " << ids.size();
  }
}

TEST(IndexCodec, RoundTripsFuzzedSortedUniqueSets) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_index(501));
    std::vector<Index> ids(n);
    Index cur = 0;
    for (auto& id : ids) {
      cur += static_cast<Index>(1 + rng.uniform_index(1 << 20));
      id = cur;
    }
    EXPECT_EQ(roundtrip_ids(ids), ids);
  }
}

TEST(IndexCodec, SortedIdsCompressWellBelowRaw) {
  // The production payload: a sorted unique index set with small gaps.
  std::vector<Index> ids;
  for (Index i = 0; i < 10000; ++i) ids.push_back(i * 3);
  std::vector<std::byte> enc;
  encode_index_block(std::span<const Index>(ids), enc);
  // 8 bytes/id raw; small sorted deltas need ~1 byte/id varint-coded.
  EXPECT_LT(enc.size(), ids.size() * 2);
}

TEST(IndexCodec, MalformedInputThrows) {
  std::vector<Index> dec;
  // A truncated varint: continuation bit set, then nothing.
  const std::byte bad[] = {std::byte{0x01}, std::byte{0x80}};
  EXPECT_THROW(
      decode_index_block(std::span<const std::byte>(bad, 2), dec), Error);
}

template <typename T>
std::vector<T> roundtrip_grad(WireCodec codec, const std::vector<T>& in) {
  std::vector<std::byte> enc;
  encode_grad_chunk(codec, std::span<const T>(in), enc);
  std::vector<T> out(in.size());
  decode_grad_chunk(codec, std::span<const std::byte>(enc), std::span<T>(out));
  return out;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(PackedCodec, LosslessOverEdgeFloatPayloads) {
  const float denorm = std::numeric_limits<float>::denorm_min();
  const float nan1 = std::bit_cast<float>(0x7FC00001u);  // NaN payload bits
  const float nan2 = std::bit_cast<float>(0xFFC12345u);
  const std::vector<std::vector<float>> cases = {
      {},
      {0.0f},
      {-0.0f, 0.0f},
      {denorm, -denorm, std::numeric_limits<float>::max()},
      {nan1, nan2, std::numeric_limits<float>::infinity(),
       -std::numeric_limits<float>::infinity()},
      std::vector<float>(1000, 0.0f),
  };
  for (const auto& in : cases) {
    const auto out = roundtrip_grad(WireCodec::Packed, in);
    EXPECT_TRUE(bitwise_equal(in, out)) << "case size " << in.size();
  }
}

TEST(PackedCodec, LosslessOverFuzzedFloats) {
  Rng rng(77);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_index(778));
    std::vector<float> in(n);
    for (auto& v : in) v = static_cast<float>(rng.uniform(-10.0, 10.0));
    EXPECT_TRUE(bitwise_equal(in, roundtrip_grad(WireCodec::Packed, in)));
  }
}

TEST(PackedCodec, LosslessOverHalfPayloads) {
  std::vector<Half> in;
  in.push_back(Half(0.0f));
  in.push_back(Half(-1.5f));
  in.push_back(Half::from_bits(0x7E01));  // NaN with payload
  in.push_back(Half::from_bits(0x0001));  // smallest subnormal
  for (float v = -8.0f; v < 8.0f; v += 0.37f) in.push_back(Half(v));
  std::vector<std::byte> enc;
  encode_grad_chunk(WireCodec::Packed, std::span<const Half>(in), enc);
  std::vector<Half> out(in.size());
  decode_grad_chunk(WireCodec::Packed, std::span<const std::byte>(enc),
                    std::span<Half>(out));
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(in[i].bits(), out[i].bits()) << "i=" << i;
  }
}

TEST(PackedCodec, ZeroHeavyGradientsCompress) {
  // Typical sparse-ish gradient: mostly zeros.  The RLE planes must get
  // the encoding well under the raw 4 bytes/element.
  std::vector<float> in(4096, 0.0f);
  in[17] = 1.25f;
  in[999] = -3.5f;
  std::vector<std::byte> enc;
  encode_grad_chunk(WireCodec::Packed, std::span<const float>(in), enc);
  EXPECT_LT(enc.size(), in.size() * sizeof(float) / 8);
}

TEST(Int8Codec, DeterministicAndBounded) {
  Rng rng(31);
  std::vector<float> in(1024);
  for (auto& v : in) v = static_cast<float>(rng.uniform(-4.0, 4.0));

  std::vector<std::byte> enc1, enc2;
  encode_grad_chunk(WireCodec::Int8, std::span<const float>(in), enc1);
  encode_grad_chunk(WireCodec::Int8, std::span<const float>(in), enc2);
  EXPECT_EQ(enc1, enc2);
  // 4-byte scale + 1 byte per element.
  EXPECT_EQ(enc1.size(), 4 + in.size());

  std::vector<float> out(in.size());
  decode_grad_chunk(WireCodec::Int8, std::span<const std::byte>(enc1),
                    std::span<float>(out));
  float max_abs = 0.0f;
  for (const float v : in) max_abs = std::max(max_abs, std::fabs(v));
  const float scale = max_abs / 127.0f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::fabs(out[i] - in[i]), scale * 0.5f + 1e-6f) << "i=" << i;
  }
}

TEST(Int8Codec, NonFinitePayloadDecodesAllNaN) {
  // A single NaN (e.g. a Corrupt-fault poisoned chunk) must poison the
  // whole decoded chunk so the overflow guard still fires in lockstep.
  std::vector<float> in = {1.0f, std::numeric_limits<float>::quiet_NaN(),
                           2.0f};
  const auto out = roundtrip_grad(WireCodec::Int8, in);
  for (const float v : out) EXPECT_TRUE(std::isnan(v));
}

TEST(Int8Codec, AllZeroPayloadDecodesToZeros) {
  const std::vector<float> in(64, 0.0f);
  EXPECT_TRUE(bitwise_equal(in, roundtrip_grad(WireCodec::Int8, in)));
}

TEST(Int8Codec, SubnormalScaleStaysFinite) {
  // max_abs/127 can go subnormal; quantization divides by the scale
  // (never multiplies by its inverse), so the quants must stay exact.
  std::vector<float> in(16, std::numeric_limits<float>::denorm_min() * 100);
  const auto out = roundtrip_grad(WireCodec::Int8, in);
  for (const float v : out) EXPECT_TRUE(std::isfinite(v));
}

class CodecBackendParity : public ::testing::Test {
 protected:
  void TearDown() override { simd::set_backend(simd::Backend::kNative); }
};

TEST_F(CodecBackendParity, VectorKernelsMatchScalarBitwise) {
  Rng rng(8);
  for (const std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{64},
                              std::size_t{1000}}) {
    std::vector<float> in(n);
    for (auto& v : in) v = static_cast<float>(rng.uniform(-3.0, 3.0));
    in[0] = 0.0f;  // exercise exact-zero and sign handling
    for (const WireCodec codec : {WireCodec::Packed, WireCodec::Int8}) {
      simd::set_backend(simd::Backend::kNative);
      std::vector<std::byte> enc_native;
      encode_grad_chunk(codec, std::span<const float>(in), enc_native);
      std::vector<float> dec_native(n);
      decode_grad_chunk(codec, std::span<const std::byte>(enc_native),
                        std::span<float>(dec_native));

      simd::set_backend(simd::Backend::kScalar);
      std::vector<std::byte> enc_scalar;
      encode_grad_chunk(codec, std::span<const float>(in), enc_scalar);
      std::vector<float> dec_scalar(n);
      decode_grad_chunk(codec, std::span<const std::byte>(enc_scalar),
                        std::span<float>(dec_scalar));

      EXPECT_EQ(enc_native, enc_scalar)
          << wire_codec_name(codec) << " n=" << n;
      EXPECT_TRUE(bitwise_equal(dec_native, dec_scalar))
          << wire_codec_name(codec) << " n=" << n;
    }
  }
}

// -- Coded collectives ------------------------------------------------------

std::vector<std::vector<float>> run_allreduce(CommBackend backend, int g,
                                              std::size_t n, WireCodec codec) {
  CommWorld::Options opts;
  opts.backend = backend;
  CommWorld world(g, opts);
  std::vector<std::vector<float>> results(static_cast<std::size_t>(g));
  world.run([&](Communicator& comm) {
    std::vector<float> data(n);
    Rng rng(900 + static_cast<std::uint64_t>(comm.rank()));
    for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    WireCodecScope scope(comm, codec);
    comm.allreduce_sum(std::span<float>(data));
    results[static_cast<std::size_t>(comm.rank())] = data;
  });
  return results;
}

class CodedWorlds : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Worlds, CodedWorlds, ::testing::Values(2, 3, 4, 8));

TEST_P(CodedWorlds, PackedAllreduceBitwiseEqualsRaw) {
  const int g = GetParam();
  for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                              std::size_t{1000}}) {
    const auto raw = run_allreduce(CommBackend::SharedMem, g, n,
                                   WireCodec::None);
    const auto packed = run_allreduce(CommBackend::SharedMem, g, n,
                                      WireCodec::Packed);
    for (int r = 0; r < g; ++r) {
      EXPECT_TRUE(bitwise_equal(raw[static_cast<std::size_t>(r)],
                                packed[static_cast<std::size_t>(r)]))
          << "world=" << g << " n=" << n << " rank=" << r;
    }
  }
}

TEST_P(CodedWorlds, CodedAllreduceIdenticalAcrossBackends) {
  const int g = GetParam();
  const std::size_t n = 513;
  for (const WireCodec codec : {WireCodec::Packed, WireCodec::Int8}) {
    const auto shared = run_allreduce(CommBackend::SharedMem, g, n, codec);
    const auto inproc = run_allreduce(CommBackend::InProcNet, g, n, codec);
    for (int r = 0; r < g; ++r) {
      EXPECT_TRUE(bitwise_equal(shared[static_cast<std::size_t>(r)],
                                inproc[static_cast<std::size_t>(r)]))
          << wire_codec_name(codec) << " world=" << g << " rank=" << r;
    }
    // Every rank must agree with every other (coded phase 2 hands all
    // ranks, the owner included, the decode of one shared encoding).
    for (int r = 1; r < g; ++r) {
      EXPECT_TRUE(bitwise_equal(shared[0],
                                shared[static_cast<std::size_t>(r)]));
    }
  }
}

TEST(CodedCollectives, Int8ApproximatesRawSum) {
  const int g = 4;
  const std::size_t n = 2048;
  const auto raw = run_allreduce(CommBackend::SharedMem, g, n, WireCodec::None);
  const auto int8 = run_allreduce(CommBackend::SharedMem, g, n,
                                  WireCodec::Int8);
  double max_err = 0.0, max_mag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err,
                       std::fabs(static_cast<double>(raw[0][i]) - int8[0][i]));
    max_mag = std::max(max_mag, std::fabs(static_cast<double>(raw[0][i])));
  }
  // Per-chunk scales bound the quantization error at a few percent of
  // the chunk's max magnitude per ring hop.
  EXPECT_LT(max_err, 0.1 * std::max(max_mag, 1.0));
}

TEST(CodedCollectives, LedgerBooksCodecSlots) {
  CommWorld world(4);
  world.run([&](Communicator& comm) {
    std::vector<float> data(256, static_cast<float>(comm.rank()));
    WireCodecScope scope(comm, WireCodec::Int8);
    comm.allreduce_sum(std::span<float>(data));
    EXPECT_GT(comm.last_codec_ratio(), 0.0);
    EXPECT_LT(comm.last_codec_ratio(), 1.0);
  });
  const TrafficLedger total = world.total_ledger();
  const CodecTraffic& slot = total.codec_slot(CodecSlot::Int8);
  EXPECT_GT(slot.logical_bytes, 0u);
  EXPECT_GT(slot.wire_bytes, 0u);
  EXPECT_LT(slot.wire_bytes, slot.logical_bytes);
  EXPECT_GT(slot.ratio(), 1.0);  // logical / wire
  EXPECT_NE(total.to_json().find("\"codec\""), std::string::npos);
  EXPECT_NE(total.to_json().find("\"int8\""), std::string::npos);
}

TEST(CodedCollectives, MismatchedCodecsThrowOnEveryRank) {
  CommWorld world(2);
  std::atomic<int> throws{0};
  EXPECT_THROW(world.run([&](Communicator& comm) {
    std::vector<float> data(16, 1.0f);
    WireCodecScope scope(
        comm, comm.rank() == 0 ? WireCodec::Int8 : WireCodec::None);
    try {
      comm.allreduce_sum(std::span<float>(data));
    } catch (const CollectiveMismatchError&) {
      ++throws;
      throw;
    }
  }),
               CollectiveMismatchError);
  EXPECT_EQ(throws.load(), 2);
}

TEST(CodedCollectives, MaxAllreduceIgnoresArming) {
  // Overflow voting must stay exact whatever codec is armed.
  CommWorld world(3);
  world.run([&](Communicator& comm) {
    std::vector<float> data = {static_cast<float>(comm.rank()), -1.0f};
    WireCodecScope scope(comm, WireCodec::Int8);
    comm.allreduce_max(std::span<float>(data));
    EXPECT_EQ(data[0], 2.0f);
    EXPECT_EQ(data[1], -1.0f);
  });
}

// -- Index codec through the exchange layer ---------------------------------

TEST(IndexCodecExchange, UniqueExchangeEquivalentWithCodecOn) {
  const int g = 4;
  const Index d = 8;
  const std::size_t k = 32;
  auto run = [&](bool coded) {
    CommWorld world(g);
    std::vector<std::vector<Index>> ids_out(static_cast<std::size_t>(g));
    std::vector<std::vector<float>> rows_out(static_cast<std::size_t>(g));
    world.run([&](Communicator& comm) {
      Rng rng(5000 + static_cast<std::uint64_t>(comm.rank()));
      std::vector<Index> ids(k);
      for (auto& id : ids) id = static_cast<Index>(rng.uniform_index(201));
      Tensor delta({static_cast<Index>(k), d});
      for (auto& v : delta.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      ExchangeOptions opts;
      opts.index_codec = coded;
      UniqueExchange ex(opts);
      std::vector<Index> uids;
      Tensor urows;
      ex.exchange(comm, ids, delta, uids, urows);
      ids_out[static_cast<std::size_t>(comm.rank())] = uids;
      auto span = urows.data();
      rows_out[static_cast<std::size_t>(comm.rank())]
          .assign(span.begin(), span.end());
    });
    return std::make_pair(ids_out, rows_out);
  };
  const auto raw = run(false);
  const auto coded = run(true);
  EXPECT_EQ(raw.first, coded.first);
  for (int r = 0; r < g; ++r) {
    EXPECT_TRUE(bitwise_equal(raw.second[static_cast<std::size_t>(r)],
                              coded.second[static_cast<std::size_t>(r)]))
        << "rank " << r;
  }
}

TEST(IndexCodecExchange, LedgerBooksIndexVarintSlot) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    std::vector<Index> ids = {3, 1, 4, 1, 5, 9, 2, 6};
    Tensor delta({8, 4});
    for (auto& v : delta.data()) v = 1.0f;
    ExchangeOptions opts;
    opts.index_codec = true;
    UniqueExchange ex(opts);
    std::vector<Index> uids;
    Tensor urows;
    ex.exchange(comm, ids, delta, uids, urows);
  });
  const TrafficLedger total = world.total_ledger();
  const CodecTraffic& slot = total.codec_slot(CodecSlot::IndexVarint);
  EXPECT_GT(slot.logical_bytes, 0u);
  EXPECT_GT(slot.wire_bytes, 0u);
  EXPECT_LT(slot.wire_bytes, slot.logical_bytes);
}

}  // namespace
}  // namespace zipflm
