// Analytic performance + memory model for the paper's scaling tables.
//
// We cannot run 8-192 physical GPUs, but hours-per-epoch in Tables III,
// IV and V is a deterministic function of (FLOPs per iteration, message
// sizes, topology, memory capacity).  This model composes, per training
// iteration and per rank:
//
//   compute   : FLOPs / (peak x efficiency), times a framework-overhead
//               factor calibrated once against the paper's own 8-GPU
//               measurement (TF 1.4 kernel-launch / input-pipeline cost);
//   sync      : straggler/synchronization cost growing linearly with G;
//   dense comm: ring ALLREDUCE of the dense parameter gradients;
//   embedding : per technique — baseline ALLGATHER of K·D (and S·D)
//               gradient blocks + serialized scatter-apply, versus
//               UNIQUE's index allgather + U_g·D ALLREDUCE + parallel
//               apply (Sections II/III);
//   cast      : FP16 down/up-cast overhead when compression is on
//               (the >20-tensor overhead the paper reports for char LM).
//
// Peak memory per rank = resident model bytes + the exchange scratch of
// the chosen technique; exceeding the device capacity reproduces the '*'
// (out-of-memory) cells.
//
// Every calibration constant is listed in the workload presets below and
// discussed in EXPERIMENTS.md; the *shape* of the tables (who wins, the
// efficiency decay, the OOM frontier) is structural, not calibrated.
#pragma once

#include <cstdint>
#include <string>

#include "zipflm/comm/cost_model.hpp"
#include "zipflm/device/device.hpp"
#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

struct WorkloadCalibration {
  double flops_per_iter = 0.0;       ///< per GPU (paper: 136 / 2721 GFLOP)
  double compute_efficiency = 0.4;   ///< fraction of peak (paper: 40%/64%)
  double framework_overhead = 0.0;   ///< extra compute-time multiplier
  double sync_seconds_per_rank = 0.0;///< straggler cost, x world size
  double apply_serial_Bps = 1e9;     ///< baseline locked scatter-apply
  double apply_parallel_Bps = 1e10;  ///< unique-path parallel apply
  double apply_contention_per_rank = 0.0;  ///< (1 + c x G) on serial apply
  double cast_seconds_per_tensor = 0.0;    ///< FP16 cast launch overhead
  int comm_tensor_count = 1;         ///< tensors cast per step
  double scratch_replication = 1.0;  ///< framework buffer copies (baseline)
  /// Host <-> device staging bandwidth for the embedding exchange
  /// payloads (0 disables).  The paper notes the word LM's large-vocab
  /// embedding forces CPU-GPU traffic; the char LM's tiny tables stay
  /// on-device.
  double host_staging_Bps = 0.0;
  std::size_t static_bytes = 0;      ///< params + activations + optimizer
};

struct LmWorkload {
  std::string name;
  std::uint64_t tokens_per_epoch = 0;
  Index tokens_per_rank = 0;   ///< K
  Index samples_per_rank = 0;  ///< S (0 = full softmax)
  Index embed_dim = 0;         ///< D
  Index vocab = 0;
  std::uint64_t dense_param_count = 0;
  double heaps_c = 7.02;       ///< paper Fig 1 fit: U = 7.02 N^0.64
  double heaps_alpha = 0.64;
  WorkloadCalibration calib;

  /// Expected unique words among n power-law tokens, capped by the
  /// vocabulary.
  double unique_words(double n) const;

  // Presets matching Section IV-B / V.
  static LmWorkload word_lm_1b();       ///< Tables III, Fig 5/6/7
  static LmWorkload char_lm_1b();       ///< Table IV, Fig 8
  static LmWorkload char_lm_tieba(std::uint64_t chars,
                                  Index tokens_per_rank);  ///< Table V
  static LmWorkload char_lm_amazon();   ///< Section V-D
};

struct TechniqueSet {
  bool uniqueness = false;
  bool seeding = false;
  bool compression = false;

  static TechniqueSet none() { return {}; }
  static TechniqueSet unique_only() { return {true, false, false}; }
  static TechniqueSet unique_seed() { return {true, true, false}; }
  static TechniqueSet all() { return {true, true, true}; }
};

struct PerfBreakdown {
  // Per-iteration, per-rank seconds.
  double compute_s = 0.0;
  double sync_s = 0.0;
  double dense_comm_s = 0.0;
  double embed_comm_s = 0.0;
  double apply_s = 0.0;
  double cast_s = 0.0;
  double iter_seconds() const {
    return compute_s + sync_s + dense_comm_s + embed_comm_s + apply_s +
           cast_s;
  }

  std::uint64_t iterations = 0;
  double epoch_hours = 0.0;
  std::uint64_t peak_memory_bytes = 0;
  bool oom = false;  ///< the '*' cells of Tables III/IV
};

class PerfModel {
 public:
  PerfModel(DeviceProps device, CostModel cost, int gpus_per_node = 8);

  PerfBreakdown epoch(const LmWorkload& workload, int gpus,
                      TechniqueSet techniques) const;

  const DeviceProps& device() const noexcept { return device_; }

 private:
  double ring_allreduce_s(int gpus, double bytes) const;
  double ring_allgather_s(int gpus, double bytes_per_rank) const;
  /// Bottleneck link of the ring: PCIe within a node, the fabric across
  /// node boundaries.
  double bottleneck_Bps(int gpus) const;
  double bottleneck_alpha(int gpus) const;

  DeviceProps device_;
  CostModel cost_;
  int gpus_per_node_;
};

}  // namespace zipflm
