#include "zipflm/sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "zipflm/support/error.hpp"

namespace zipflm {

double LmWorkload::unique_words(double n) const {
  ZIPFLM_ASSERT(n >= 0.0, "token count must be non-negative");
  const double heaps = heaps_c * std::pow(n, heaps_alpha);
  // A finite vocabulary saturates (the paper notes the char vocabulary
  // "becomes constant" as batches grow); the coupon-collector form
  // V(1 - exp(-n/V)) interpolates smoothly between the two regimes.
  const double v = static_cast<double>(vocab);
  const double saturated = v * (1.0 - std::exp(-n / v));
  return std::min(heaps, saturated);
}

LmWorkload LmWorkload::word_lm_1b() {
  LmWorkload w;
  w.name = "word-lm-1b";
  w.tokens_per_epoch = 780'000'000ull;  // Table I: 0.78B words
  w.tokens_per_rank = 32 * 20;          // batch 32, seqlen 20 (Section IV-B)
  w.samples_per_rank = 1024;            // sampled softmax S
  w.embed_dim = 512;
  w.vocab = 100'000;
  // LSTM 2048 with 512 projection: wx + wh + b + proj + softmax bias.
  w.dense_param_count = 512ull * 4 * 2048 + 512ull * 4 * 2048 + 4 * 2048 +
                        2048ull * 512 + 100'000;
  // Calibration (see EXPERIMENTS.md): anchored to Table III's 8-GPU
  // cells (14.6 h with technique, 35.1 h without).
  w.calib.flops_per_iter = 136e9;       // paper: 136 GFLOP/iter
  w.calib.compute_efficiency = 0.40;    // paper: 2.44 TFLOP/s of 6.1 peak
  w.calib.framework_overhead = 3.74;
  w.calib.sync_seconds_per_rank = 8e-3;
  w.calib.apply_serial_Bps = 85e6;      // host-side locked sparse apply
  w.calib.apply_parallel_Bps = 6e9;
  w.calib.apply_contention_per_rank = 0.05;
  w.calib.cast_seconds_per_tensor = 0.4e-3;
  w.calib.comm_tensor_count = 7;
  w.calib.scratch_replication = 115.0;  // TF gradient staging copies
  w.calib.host_staging_Bps = 0.8e9;     // 100k-vocab embedding on host
  w.calib.static_bytes = static_cast<std::size_t>(1.10 * (1ull << 30));
  return w;
}

LmWorkload LmWorkload::char_lm_1b() {
  LmWorkload w;
  w.name = "char-lm-1b";
  w.tokens_per_epoch = 4'190'000'000ull;  // Table I: 4.19B characters
  w.tokens_per_rank = 128 * 150;          // batch 128, seqlen 150
  w.samples_per_rank = 0;                 // full softmax
  w.embed_dim = 1792;
  w.vocab = 98;
  w.dense_param_count = 213'000'000ull;   // paper: 213M parameters
  // Anchored to Table IV's 8-GPU cells (23.2 h with, 25.7 h without).
  w.calib.flops_per_iter = 2721e9;        // paper: 2,721 GFLOP/iter
  w.calib.compute_efficiency = 0.64;      // paper: 3.95 TFLOP/s of 6.1
  w.calib.framework_overhead = 3.212;
  w.calib.sync_seconds_per_rank = 5e-3;
  w.calib.apply_serial_Bps = 7e9;         // on-device scatter, tiny vocab
  w.calib.apply_parallel_Bps = 30e9;
  w.calib.apply_contention_per_rank = 0.03;
  w.calib.cast_seconds_per_tensor = 1.2e-3;
  w.calib.comm_tensor_count = 22;         // paper: "> 20 tensors"
  w.calib.scratch_replication = 1.2;
  w.calib.static_bytes = static_cast<std::size_t>(7.8 * (1ull << 30));
  return w;
}

LmWorkload LmWorkload::char_lm_tieba(std::uint64_t chars,
                                     Index tokens_per_rank) {
  LmWorkload w = char_lm_1b();
  w.name = "char-lm-tieba";
  w.tokens_per_epoch = chars;
  w.tokens_per_rank = tokens_per_rank;
  w.vocab = 15'437;                       // Section V-C
  // The 15K-way softmax enlarges the output layer; params grow a bit.
  w.dense_param_count = 213'000'000ull + 15'437ull * 1792;
  // The 15,437-way full softmax adds 2*H*V MACs per token (fwd), x3 for
  // the backward — it dominates the per-iteration FLOPs versus the
  // 98-way English model.
  const double softmax_flops_per_token = 2.0 * 1792.0 * 15'437.0 * 3.0;
  w.calib.flops_per_iter =
      (2721e9 / 19200.0 + softmax_flops_per_token) *
      static_cast<double>(tokens_per_rank);
  w.calib.static_bytes = static_cast<std::size_t>(8.1 * (1ull << 30));
  return w;
}

LmWorkload LmWorkload::char_lm_amazon() {
  LmWorkload w = char_lm_1b();
  w.name = "char-lm-amazon";
  w.tokens_per_epoch = 38'760'000'000ull;  // Table I: 38.76B characters
  return w;
}

PerfModel::PerfModel(DeviceProps device, CostModel cost, int gpus_per_node)
    : device_(std::move(device)), cost_(cost), gpus_per_node_(gpus_per_node) {
  ZIPFLM_CHECK(gpus_per_node >= 1, "need at least one GPU per node");
}

double PerfModel::bottleneck_Bps(int gpus) const {
  return gpus <= gpus_per_node_ ? cost_.intra_node.beta_Bps
                                : cost_.inter_node.beta_Bps;
}

double PerfModel::bottleneck_alpha(int gpus) const {
  return gpus <= gpus_per_node_ ? cost_.intra_node.alpha_s
                                : cost_.inter_node.alpha_s;
}

double PerfModel::ring_allreduce_s(int gpus, double bytes) const {
  if (gpus <= 1 || bytes <= 0.0) return 0.0;
  const double chunk = bytes / gpus;
  return 2.0 * (gpus - 1) *
         (bottleneck_alpha(gpus) + chunk / bottleneck_Bps(gpus));
}

double PerfModel::ring_allgather_s(int gpus, double bytes_per_rank) const {
  if (gpus <= 1 || bytes_per_rank <= 0.0) return 0.0;
  return (gpus - 1) *
         (bottleneck_alpha(gpus) + bytes_per_rank / bottleneck_Bps(gpus));
}

PerfBreakdown PerfModel::epoch(const LmWorkload& w, int gpus,
                               TechniqueSet t) const {
  ZIPFLM_CHECK(gpus >= 1, "need at least one GPU");
  const auto& c = w.calib;
  const double g = static_cast<double>(gpus);
  const double k = static_cast<double>(w.tokens_per_rank);
  const double s = static_cast<double>(w.samples_per_rank);
  const double d = static_cast<double>(w.embed_dim);
  const double wire_w = t.compression ? 2.0 : 4.0;

  PerfBreakdown out;

  // --- compute & synchronization -------------------------------------
  out.compute_s = device_.seconds_for_flops(c.flops_per_iter,
                                            c.compute_efficiency) *
                  (1.0 + c.framework_overhead);
  out.sync_s = c.sync_seconds_per_rank * g;

  // --- dense parameter allreduce --------------------------------------
  out.dense_comm_s =
      ring_allreduce_s(gpus, static_cast<double>(w.dense_param_count) * wire_w);

  // --- embedding exchanges ---------------------------------------------
  double scratch_bytes = 0.0;
  double staged_bytes = 0.0;  // payload crossing the host staging path
  const double serial_mult = 1.0 + c.apply_contention_per_rank * g;
  if (!t.uniqueness) {
    // Baseline ALLGATHER of the full gradient blocks (input, and output
    // under sampled softmax) + serialized locked apply of G·(K+S) rows.
    out.embed_comm_s += ring_allgather_s(gpus, k * 8.0) +
                        ring_allgather_s(gpus, k * d * wire_w);
    double rows = g * k;
    scratch_bytes += g * k * (8.0 + d * 4.0);
    staged_bytes += (g - 1) * k * d * wire_w;  // received blocks via host
    if (s > 0.0) {
      out.embed_comm_s += ring_allgather_s(gpus, s * 8.0) +
                          ring_allgather_s(gpus, s * d * wire_w);
      rows += g * s;
      scratch_bytes += g * s * (8.0 + d * 4.0);
      staged_bytes += (g - 1) * s * d * wire_w;
    }
    out.apply_s = rows * d * 4.0 * serial_mult / c.apply_serial_Bps;
    scratch_bytes *= c.scratch_replication;
  } else {
    // UNIQUE: allgather indices, allreduce the U_g x D layout, parallel
    // lock-free apply.
    const double u_in = w.unique_words(g * k);
    out.embed_comm_s += ring_allgather_s(gpus, k * 8.0) +
                        ring_allreduce_s(gpus, u_in * d * wire_w);
    double unique_rows = u_in;
    scratch_bytes += g * k * 8.0 + u_in * d * 4.0;
    staged_bytes += 2.0 * u_in * d * wire_w;  // M out and M-hat back
    if (s > 0.0) {
      double u_out = 0.0;
      if (t.seeding) {
        // Controlled seeding restores the power law: U ∝ (G·S)^0.64.
        u_out = w.unique_words(g * s);
      } else {
        // Independent per-rank seeds: nearly-uniform draws, so the
        // global candidate set grows like the coupon-collector bound —
        // uniqueness buys almost nothing (Section III-B).
        const double v = static_cast<double>(w.vocab);
        u_out = v * (1.0 - std::exp(-(g * s) / v));
      }
      out.embed_comm_s += ring_allgather_s(gpus, s * 8.0) +
                          ring_allreduce_s(gpus, u_out * d * wire_w);
      unique_rows += u_out;
      scratch_bytes += g * s * 8.0 + u_out * d * 4.0;
      staged_bytes += 2.0 * u_out * d * wire_w;
    }
    out.apply_s = unique_rows * d * 4.0 / c.apply_parallel_Bps;
  }
  if (c.host_staging_Bps > 0.0) {
    out.embed_comm_s += staged_bytes / c.host_staging_Bps;
  }

  // --- FP16 cast overhead ----------------------------------------------
  if (t.compression) {
    out.cast_s = c.cast_seconds_per_tensor * c.comm_tensor_count;
  }

  // --- totals ----------------------------------------------------------
  out.iterations = static_cast<std::uint64_t>(
      static_cast<double>(w.tokens_per_epoch) / (g * k));
  out.epoch_hours = static_cast<double>(out.iterations) *
                    out.iter_seconds() / 3600.0;
  out.peak_memory_bytes =
      static_cast<std::uint64_t>(static_cast<double>(c.static_bytes) +
                                 scratch_bytes);
  out.oom = out.peak_memory_bytes > device_.memory_bytes;
  return out;
}

}  // namespace zipflm
