#include "zipflm/core/grad_sync.hpp"

#include <cstring>
#include <vector>

#include "zipflm/comm/hierarchical.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {

namespace {
template <typename T>
void allreduce(Communicator& comm, std::span<T> data, bool hierarchical) {
  if (hierarchical) {
    hierarchical_allreduce_sum(comm, data);
  } else {
    comm.allreduce_sum(data);
  }
}
}  // namespace

void DenseGradSync::sync(Communicator& comm,
                         std::span<Param* const> params) const {
  const float inv_world = 1.0f / static_cast<float>(comm.world_size());
  for (Param* p : params) {
    if (comm.world_size() > 1) {
      if (options_.precision == WirePrecision::FP32) {
        allreduce<float>(comm, p->grad.data(),
                         options_.hierarchical_allreduce);
      } else {
        std::vector<Half> wire;
        compress_fp16(p->grad.data(), options_.compression_scale, wire);
        allreduce<Half>(comm, std::span<Half>(wire),
                        options_.hierarchical_allreduce);
        std::vector<float> up;
        decompress_fp16(wire, options_.compression_scale, up);
        std::memcpy(p->grad.data().data(), up.data(),
                    up.size() * sizeof(float));
      }
    }
    scale(p->grad, inv_world);
  }
}

}  // namespace zipflm
