#include "zipflm/core/grad_sync.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "zipflm/comm/hierarchical.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {

namespace {
template <typename T>
void allreduce(Communicator& comm, std::span<T> data, bool hierarchical) {
  if (hierarchical) {
    hierarchical_allreduce_sum(comm, data);
  } else {
    comm.allreduce_sum(data);
  }
}
}  // namespace

void DenseGradSync::sync(Communicator& comm, std::span<Param* const> params,
                         const ExchangeOptions* override_opts) const {
  const ExchangeOptions& opts =
      override_opts != nullptr ? *override_opts : options_;
  WireCodecScope codec_scope(comm, opts.codec);
  const float inv_world = 1.0f / static_cast<float>(comm.world_size());
  for (Param* p : params) {
    if (comm.world_size() > 1) {
      if (opts.precision == WirePrecision::FP32) {
        allreduce<float>(comm, p->grad.data(),
                         opts.hierarchical_allreduce);
      } else {
        std::vector<Half> wire;
        compress_fp16(p->grad.data(), opts.compression_scale, wire);
        allreduce<Half>(comm, std::span<Half>(wire),
                        opts.hierarchical_allreduce);
        std::vector<float> up;
        decompress_fp16(wire, opts.compression_scale, up);
        std::memcpy(p->grad.data().data(), up.data(),
                    up.size() * sizeof(float));
      }
    }
    scale(p->grad, inv_world);
  }
}

void DenseGradSync::rebuild_plan(std::span<Param* const> params) {
  plan_.clear();
  bucket_of_.clear();
  plan_params_.assign(params.begin(), params.end());
  plan_bucket_bytes_ = bucket_bytes_;
  const std::size_t target_floats =
      std::max<std::size_t>(1, bucket_bytes_ / sizeof(float));

  // Reverse-backprop order: the last dense parameter of the forward
  // graph finalizes first in backward, so it seeds bucket 0.
  for (std::size_t i = params.size(); i-- > 0;) {
    Param* p = params[i];
    const auto n = static_cast<std::size_t>(p->size());
    if (plan_.empty() || (plan_.back().floats > 0 &&
                          plan_.back().floats + n > target_floats)) {
      plan_.emplace_back();
    }
    Bucket& b = plan_.back();
    b.params.push_back(p);
    b.floats += n;
    bucket_of_.emplace(p, plan_.size() - 1);
  }
}

void DenseGradSync::begin_step(Communicator& comm, AsyncCommEngine& engine,
                               std::span<Param* const> params) {
  ZIPFLM_CHECK(engine_ == nullptr,
               "begin_step while a previous step is still armed");
  if (plan_params_.size() != params.size() ||
      !std::equal(plan_params_.begin(), plan_params_.end(), params.begin()) ||
      plan_bucket_bytes_ != bucket_bytes_) {
    rebuild_plan(params);
  }
  for (Bucket& b : plan_) {
    b.pending = b.params.size();
    b.launched = false;
  }
  engine_ = &engine;
  world_ = comm.world_size();
}

void DenseGradSync::notify_ready(const Param* param) {
  if (engine_ == nullptr) return;
  const auto it = bucket_of_.find(param);
  if (it == bucket_of_.end()) return;
  Bucket& b = plan_[it->second];
  ZIPFLM_ASSERT(b.pending > 0, "parameter notified ready twice in one step");
  if (--b.pending == 0) launch_bucket(it->second);
}

void DenseGradSync::launch_bucket(std::size_t index) {
  Bucket& b = plan_[index];
  if (b.launched) return;
  b.launched = true;
  engine_->submit("bucket_allreduce", b.floats * sizeof(float),
                  [this, index](Communicator& comm) {
                    run_bucket(comm, index);
                  });
}

void DenseGradSync::run_bucket(Communicator& comm, std::size_t index) {
  Bucket& b = plan_[index];
  WireCodecScope codec_scope(comm, options_.codec);
  const float inv_world = 1.0f / static_cast<float>(comm.world_size());
  // One collective per parameter, in plan order — the exact loop body of
  // sync().  A concatenated bucket-wide allreduce would shift the ring
  // chunk boundaries and with them each element's cross-rank summation
  // order, so overlap on/off would stop being bitwise identical; keeping
  // the wire schedule per-parameter also keeps the collective count (and
  // so every FaultSpec::at_collective index) independent of bucketing.
  // The bucket is purely the launch granularity: one engine job covering
  // every parameter whose gradient finalized together.
  for (Param* p : b.params) {
    if (comm.world_size() > 1) {
      auto g = p->grad.data();
      if (options_.precision == WirePrecision::FP32) {
        allreduce<float>(comm, g, options_.hierarchical_allreduce);
      } else {
        // Reduce straight out of / into the gradient buffer: identical
        // bytes to sync()'s staged copies, minus the two big memcpys.
        compress_fp16(g, options_.compression_scale, b.wire);
        allreduce<Half>(comm, std::span<Half>(b.wire),
                        options_.hierarchical_allreduce);
        decompress_fp16(b.wire, options_.compression_scale,
                        std::span<float>(g));
      }
    }
    scale(p->grad, inv_world);
  }
}

void DenseGradSync::finish() {
  ZIPFLM_CHECK(engine_ != nullptr, "finish without begin_step");
  // Launch stragglers in plan order — deterministic whether or not the
  // model reported every parameter through notify_ready.
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    if (!plan_[i].launched) launch_bucket(i);
  }
  AsyncCommEngine* engine = engine_;
  engine_ = nullptr;  // disarm before flush so a throw leaves us clean
  engine->flush();
}

}  // namespace zipflm
