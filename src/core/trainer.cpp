#include "zipflm/core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "zipflm/tensor/ops.hpp"

namespace zipflm {

DistributedTrainer::DistributedTrainer(CommWorld& world,
                                       const ModelFactory& factory,
                                       TrainerOptions options)
    : world_(world), options_(options) {
  const ExchangeOptions ex_opts{options_.wire, options_.compression_scale,
                                options_.hierarchical_dense_sync};
  if (options_.unique_exchange) {
    exchange_ = std::make_unique<UniqueExchange>(ex_opts);
  } else {
    exchange_ = std::make_unique<DenseExchange>(ex_opts);
  }
  dense_sync_ = DenseGradSync(ex_opts);

  const int g = world.world_size();
  models_.reserve(static_cast<std::size_t>(g));
  optimizers_.reserve(static_cast<std::size_t>(g));
  pools_.reserve(static_cast<std::size_t>(g));
  for (int r = 0; r < g; ++r) {
    models_.push_back(factory(r));
    ZIPFLM_CHECK(models_.back() != nullptr, "model factory returned null");
    if (options_.use_adam) {
      Adam::Config cfg;
      cfg.lr = options_.base_lr;
      cfg.clip = options_.clip;
      optimizers_.push_back(std::make_unique<Adam>(cfg));
    } else {
      optimizers_.push_back(
          std::make_unique<Sgd>(options_.base_lr, options_.clip));
    }
    pools_.push_back(std::make_unique<MemoryPool>(
        options_.device.memory_bytes,
        options_.device.name + "#" + std::to_string(r)));
  }

  if (options_.samples_per_rank > 0) {
    sampler_.emplace(models_.front()->vocab(), options_.samples_per_rank,
                     options_.seed_policy, options_.seed);
  }

  if (options_.charge_static_memory) {
    // Parameters + gradients (+ optimizer moments for Adam) and the BPTT
    // activation window are resident for the whole run.
    for (int r = 0; r < g; ++r) {
      LmModel& m = *models_[static_cast<std::size_t>(r)];
      const std::size_t params =
          m.static_bytes() * (options_.use_adam ? 2 : 1);
      const std::size_t acts =
          static_cast<std::size_t>(options_.batch.tokens_per_rank()) *
          m.activation_bytes_per_token();
      static_memory_.push_back(pools_[static_cast<std::size_t>(r)]->allocate(
          params + acts, "model parameters + activations"));
    }
  }
}

LmModel& DistributedTrainer::model(int rank) {
  ZIPFLM_CHECK(rank >= 0 && rank < world_.world_size(), "rank out of range");
  return *models_[static_cast<std::size_t>(rank)];
}

const MemoryPool& DistributedTrainer::pool(int rank) const {
  ZIPFLM_CHECK(rank >= 0 && rank < world_.world_size(), "rank out of range");
  return *pools_[static_cast<std::size_t>(rank)];
}

void DistributedTrainer::sync_step(Communicator& comm, LmModel& model,
                                   Optimizer& opt, MemoryPool& pool,
                                   const LmStepResult& res,
                                   std::uint64_t* unique_out) {
  const float inv_world = 1.0f / static_cast<float>(comm.world_size());

  // Dense parameters: classic averaged ALLREDUCE.
  const auto dense = model.dense_params();
  dense_sync_.sync(comm, dense);

  // Input embedding: the exchange under test.
  std::vector<Index> uids;
  Tensor urows;
  exchange_->exchange(comm, res.input_ids, res.input_delta, uids, urows,
                      &pool);
  scale(urows, inv_world);
  if (unique_out != nullptr) *unique_out = uids.size();

  if (options_.use_adam) static_cast<Adam&>(opt).begin_step();
  opt.step(dense);
  opt.step_rows(model.input_embedding_param(), urows, uids);

  // Output embedding: only sparse under sampled softmax.
  if (!res.output_grad.ids.empty()) {
    Param* out_emb = model.sampled_output_param();
    ZIPFLM_ASSERT(out_emb != nullptr,
                  "sparse output gradient without a sampled output param");
    std::vector<Index> ouids;
    Tensor ourows;
    exchange_->exchange(comm, res.output_grad.ids, res.output_grad.rows,
                        ouids, ourows, &pool);
    scale(ourows, inv_world);
    opt.step_rows(*out_emb, ourows, ouids);
  }
}

EpochStats DistributedTrainer::run_epoch(std::span<const Index> train_ids,
                                         std::span<const Index> valid_ids,
                                         int epoch) {
  const int g = world_.world_size();
  const float lr = scaled_learning_rate(
      options_.base_lr, world_.topology().nodes, epoch, options_.lr_decay);
  for (auto& opt : optimizers_) opt->set_learning_rate(lr);

  world_.reset_ledgers();
  for (auto& pool : pools_) pool->reset_peak();

  std::vector<double> rank_loss(static_cast<std::size_t>(g), 0.0);
  std::vector<std::uint64_t> rank_steps(static_cast<std::size_t>(g), 0);
  std::vector<std::uint64_t> rank_unique(static_cast<std::size_t>(g), 0);
  const std::uint64_t step_base = global_step_;

  world_.run([&](Communicator& comm) {
    const int r = comm.rank();
    LmModel& model = *models_[static_cast<std::size_t>(r)];
    Optimizer& opt = *optimizers_[static_cast<std::size_t>(r)];
    MemoryPool& pool = *pools_[static_cast<std::size_t>(r)];

    BatchIterator it(train_ids, options_.batch, r, g);
    Batch batch;
    LmStepResult res;
    std::uint64_t local_step = 0;
    while (it.next(batch)) {
      model.zero_grad();
      std::vector<Index> candidates;
      if (sampler_.has_value()) {
        candidates = sampler_->candidates(r, g, step_base + local_step,
                                          batch.targets);
      }
      model.train_step_local(batch, candidates, res);
      std::uint64_t ug = 0;
      sync_step(comm, model, opt, pool, res, &ug);
      rank_loss[static_cast<std::size_t>(r)] += res.loss;
      rank_unique[static_cast<std::size_t>(r)] += ug;
      ++local_step;
    }
    rank_steps[static_cast<std::size_t>(r)] = local_step;
  });

  EpochStats stats;
  stats.steps = rank_steps.front();
  for (std::uint64_t s : rank_steps) {
    ZIPFLM_ASSERT(s == stats.steps, "ranks must run identical step counts");
  }
  global_step_ += stats.steps;

  double loss_sum = 0.0;
  for (double l : rank_loss) loss_sum += l;
  stats.train_loss =
      stats.steps == 0 ? 0.0
                       : loss_sum / static_cast<double>(stats.steps * g);
  stats.global_unique_sum = rank_unique.front();

  stats.valid_loss = evaluate(valid_ids);
  stats.valid_perplexity = std::exp(stats.valid_loss);

  stats.comm_total = world_.total_ledger();
  stats.sim_comm_seconds = world_.max_simulated_comm_seconds();
  for (const auto& pool : pools_) {
    stats.peak_memory_bytes =
        std::max<std::uint64_t>(stats.peak_memory_bytes, pool->peak());
  }
  const double flops_per_step =
      static_cast<double>(options_.batch.tokens_per_rank()) *
      models_.front()->flops_per_token();
  stats.sim_compute_seconds =
      static_cast<double>(stats.steps) *
      options_.device.seconds_for_flops(flops_per_step,
                                        options_.compute_efficiency);
  stats.sim_total_seconds = stats.sim_compute_seconds + stats.sim_comm_seconds;
  return stats;
}

double DistributedTrainer::evaluate(std::span<const Index> valid_ids) {
  const int g = world_.world_size();
  std::vector<double> rank_loss(static_cast<std::size_t>(g), 0.0);
  std::vector<std::uint64_t> rank_batches(static_cast<std::size_t>(g), 0);

  world_.run([&](Communicator& comm) {
    const int r = comm.rank();
    LmModel& model = *models_[static_cast<std::size_t>(r)];
    BatchIterator it(valid_ids, options_.batch, r, g);
    Batch batch;
    while (it.next(batch)) {
      rank_loss[static_cast<std::size_t>(r)] += model.eval_loss(batch);
      ++rank_batches[static_cast<std::size_t>(r)];
    }
  });

  double loss = 0.0;
  std::uint64_t batches = 0;
  for (int r = 0; r < g; ++r) {
    loss += rank_loss[static_cast<std::size_t>(r)];
    batches += rank_batches[static_cast<std::size_t>(r)];
  }
  return batches == 0 ? 0.0 : loss / static_cast<double>(batches);
}

bool DistributedTrainer::replicas_in_sync() {
  auto reference = models_.front()->all_params();
  for (std::size_t r = 1; r < models_.size(); ++r) {
    auto params = models_[r]->all_params();
    if (params.size() != reference.size()) return false;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!(params[i]->value == reference[i]->value)) return false;
    }
  }
  return true;
}

}  // namespace zipflm
