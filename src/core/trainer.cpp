#include "zipflm/core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

#include "zipflm/core/checkpoint.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/support/phase_timers.hpp"
#include "zipflm/support/serialize.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {

namespace {

bool all_finite(std::span<const float> data) {
  for (const float v : data) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Cached "train/..." registry handles (same pattern as CommMetrics in
/// thread_comm.cpp): looked up once, then relaxed atomic updates only —
/// the step loop never touches the registry lock.
struct TrainMetrics {
  obs::Counter& steps;
  obs::Counter& skipped_steps;
  obs::Counter& tokens;
  obs::Gauge& loss;
  obs::Gauge& loss_scale;
  obs::Gauge& grad_norm;
  obs::Gauge& tokens_per_s;

  static TrainMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static TrainMetrics m{
        r.counter("train/steps"),      r.counter("train/skipped_steps"),
        r.counter("train/tokens"),     r.gauge("train/loss"),
        r.gauge("train/loss_scale"),   r.gauge("train/grad_norm"),
        r.gauge("train/tokens_per_s"),
    };
    return m;
  }
};

/// L2 norm over the dense (post-allreduce) gradients.  Only evaluated on
/// the metrics interval — it reads every dense gradient element.
double dense_grad_norm(const std::vector<Param*>& dense) {
  double sq = 0.0;
  for (const Param* p : dense) {
    for (const float g : p->grad.data()) {
      sq += static_cast<double>(g) * static_cast<double>(g);
    }
  }
  return std::sqrt(sq);
}

}  // namespace

DistributedTrainer::DistributedTrainer(CommWorld& world,
                                       const ModelFactory& factory,
                                       TrainerOptions options)
    : world_(world), options_(options) {
  ZIPFLM_CHECK(!options_.adaptive_wire_format || options_.adaptive_exchange,
               "adaptive_wire_format needs adaptive_exchange (the selector "
               "owns the format arbitration)");
  ExchangeOptions ex_opts;
  ex_opts.precision = options_.wire;
  ex_opts.compression_scale = options_.compression_scale;
  ex_opts.hierarchical_allreduce = options_.hierarchical_dense_sync;
  ex_opts.codec = options_.wire_codec;
  ex_opts.index_codec = options_.index_codec;
  if (!options_.shard_embedding) {
    if (options_.unique_exchange) {
      exchange_ = std::make_unique<UniqueExchange>(ex_opts);
    } else {
      exchange_ = std::make_unique<DenseExchange>(ex_opts);
    }
  }  // sharded exchange needs the model geometry; built after the loop.
  dense_sync_ = DenseGradSync(ex_opts);

  const int g = world.total_ranks();
  models_.reserve(static_cast<std::size_t>(g));
  optimizers_.reserve(static_cast<std::size_t>(g));
  pools_.reserve(static_cast<std::size_t>(g));
  for (int r = 0; r < g; ++r) {
    models_.push_back(factory(r));
    ZIPFLM_CHECK(models_.back() != nullptr, "model factory returned null");
    if (options_.use_adam) {
      Adam::Config cfg;
      cfg.lr = options_.base_lr;
      cfg.clip = options_.clip;
      optimizers_.push_back(std::make_unique<Adam>(cfg));
    } else {
      optimizers_.push_back(
          std::make_unique<Sgd>(options_.base_lr, options_.clip));
    }
    pools_.push_back(std::make_unique<MemoryPool>(
        options_.device.memory_bytes,
        options_.device.name + "#" + std::to_string(r)));
    if (options_.dynamic_loss_scale) {
      // Per-rank scalers, not one shared: every rank sees the same
      // post-collective gradients, so the policies march in lockstep
      // without cross-thread state.
      scalers_.push_back(LossScaler::dynamic(options_.initial_loss_scale));
    }
  }

  if (options_.shard_embedding) {
    ZIPFLM_CHECK(options_.wire == WirePrecision::FP32,
                 "shard_embedding needs the FP32 wire (compression-scaled "
                 "FP16 is a replicated-path feature)");
    ZIPFLM_CHECK(!options_.adaptive_exchange,
                 "shard_embedding is a static table layout; the adaptive "
                 "selector only arbitrates replicated strategies");
    ZIPFLM_CHECK(!options_.hierarchical_dense_sync,
                 "shard_embedding's alltoallv rides the flat ring only");
    ZIPFLM_CHECK(!options_.dynamic_loss_scale,
                 "shard_embedding returns per-owner gradient rows, so the "
                 "overflow scan would not be uniform across ranks");
    ZIPFLM_CHECK(options_.samples_per_rank == 0,
                 "shard_embedding covers the input table only (char LM); "
                 "sampled-softmax output tables stay replicated");
    for (int r = 0; r < g; ++r) {
      const ShardedEmbedding* se =
          models_[static_cast<std::size_t>(r)]->sharded_input();
      ZIPFLM_CHECK(se != nullptr,
                   "shard_embedding is on but the model factory built a "
                   "replicated table (set CharLmConfig::shard_rank/world)");
      ZIPFLM_CHECK(se->shard_world() == g && se->shard_rank() == r,
                   "model shard geometry does not match the comm world");
    }
    auto sharded = std::make_unique<ShardedEmbeddingExchange>(
        models_.front()->vocab(), models_.front()->embed_dim(), ex_opts);
    sharded_exchange_ = sharded.get();
    exchange_ = std::move(sharded);
  } else {
    for (int r = 0; r < g; ++r) {
      ZIPFLM_CHECK(models_[static_cast<std::size_t>(r)]->sharded_input() ==
                       nullptr,
                   "model factory built a sharded table but "
                   "TrainerOptions::shard_embedding is off");
    }
  }

  if (options_.samples_per_rank > 0) {
    sampler_.emplace(models_.front()->vocab(), options_.samples_per_rank,
                     options_.seed_policy, options_.seed);
  }

  if (options_.overlapped_exchange) {
    // One bucketed sync per global rank: each owns persistent staging
    // buffers its comm thread packs into, so ranks never share state.
    dense_syncs_.reserve(static_cast<std::size_t>(g));
    for (int r = 0; r < g; ++r) {
      DenseGradSync s(ex_opts);
      s.set_bucket_bytes(options_.overlap_bucket_bytes);
      dense_syncs_.push_back(std::move(s));
    }
  }
  if (options_.adaptive_exchange) {
    ExchangeOptions hier_opts = ex_opts;
    hier_opts.hierarchical_allreduce = true;
    const auto make_kind = [&](ExchangeKind kind, const ExchangeOptions& o)
        -> std::unique_ptr<EmbeddingExchange> {
      if (kind == ExchangeKind::DenseAllgather) {
        return std::make_unique<DenseExchange>(o);
      }
      return std::make_unique<UniqueExchange>(o);
    };
    if (options_.adaptive_wire_format) {
      // One instance per (kind, format) so the lockstep format choice
      // maps straight to a pre-built strategy — no per-step mutation of
      // shared options.
      kind_exchanges_.resize(3 * kWireFormatCount);
      for (std::size_t k = 0; k < 3; ++k) {
        const ExchangeKind kind = static_cast<ExchangeKind>(k);
        const ExchangeOptions& base =
            kind == ExchangeKind::HierarchicalUnique ? hier_opts : ex_opts;
        for (std::size_t f = 0; f < kWireFormatCount; ++f) {
          const WireFormat fmt = static_cast<WireFormat>(f);
          kind_exchanges_[k * kWireFormatCount + f] =
              make_kind(kind, with_wire_format(base, fmt));
        }
      }
      for (std::size_t f = 0; f < kWireFormatCount; ++f) {
        format_opts_[f] =
            with_wire_format(ex_opts, static_cast<WireFormat>(f));
      }
    } else {
      kind_exchanges_.resize(3);
      kind_exchanges_[static_cast<std::size_t>(ExchangeKind::Unique)] =
          std::make_unique<UniqueExchange>(ex_opts);
      kind_exchanges_[static_cast<std::size_t>(ExchangeKind::DenseAllgather)] =
          std::make_unique<DenseExchange>(ex_opts);
      kind_exchanges_[static_cast<std::size_t>(
          ExchangeKind::HierarchicalUnique)] =
          std::make_unique<UniqueExchange>(hier_opts);
    }

    ExchangeStrategySelector::Config scfg;
    scfg.vocab = models_.front()->vocab();
    scfg.dim = models_.front()->embed_dim();
    scfg.wire = options_.wire;
    scfg.tokens_per_rank =
        static_cast<std::uint64_t>(options_.batch.tokens_per_rank());
    scfg.hysteresis = options_.strategy_hysteresis;
    scfg.initial = options_.unique_exchange ? ExchangeKind::Unique
                                            : ExchangeKind::DenseAllgather;
    scfg.adapt_format = options_.adaptive_wire_format;
    scfg.initial_format =
        options_.wire_codec == WireCodec::Int8     ? WireFormat::Int8
        : options_.wire_codec == WireCodec::Packed ? WireFormat::Packed
        : options_.wire == WirePrecision::FP16     ? WireFormat::FP16
                                                   : WireFormat::FP32;
    // Per-rank selectors with identical inputs: every rank prices the
    // same strategies from the same (previous-step, globally consistent)
    // U_g, so the choices march in lockstep without a vote collective —
    // the LossScaler pattern.
    selectors_.reserve(static_cast<std::size_t>(g));
    for (int r = 0; r < g; ++r) {
      selectors_.push_back(std::make_unique<ExchangeStrategySelector>(
          scfg, world.cost_model(), world.topology()));
    }
  }

  if (options_.charge_static_memory) {
    // Parameters + gradients (+ optimizer moments for Adam) and the BPTT
    // activation window are resident for the whole run.
    for (int r = 0; r < g; ++r) {
      LmModel& m = *models_[static_cast<std::size_t>(r)];
      const std::size_t params =
          m.static_bytes() * (options_.use_adam ? 2 : 1);
      const std::size_t acts =
          static_cast<std::size_t>(options_.batch.tokens_per_rank()) *
          m.activation_bytes_per_token();
      static_memory_.push_back(pools_[static_cast<std::size_t>(r)]->allocate(
          params + acts, "model parameters + activations"));
    }
  }
}

LmModel& DistributedTrainer::model(int rank) {
  ZIPFLM_CHECK(rank >= 0 && rank < world_.total_ranks(), "rank out of range");
  return *models_[static_cast<std::size_t>(rank)];
}

const ExchangeStrategySelector* DistributedTrainer::strategy_selector(
    int rank) const {
  if (selectors_.empty()) return nullptr;
  ZIPFLM_CHECK(rank >= 0 && rank < static_cast<int>(selectors_.size()),
               "rank out of range");
  return selectors_[static_cast<std::size_t>(rank)].get();
}

EmbeddingExchange* DistributedTrainer::exchange_for(ExchangeKind kind,
                                                    WireFormat format) {
  std::size_t i = static_cast<std::size_t>(kind);
  if (options_.adaptive_wire_format) {
    i = i * kWireFormatCount + static_cast<std::size_t>(format);
  }
  EmbeddingExchange* ex = kind_exchanges_[i].get();
  ZIPFLM_ASSERT(ex != nullptr, "adaptive exchange strategy not built");
  return ex;
}

const MemoryPool& DistributedTrainer::pool(int rank) const {
  ZIPFLM_CHECK(rank >= 0 && rank < world_.total_ranks(), "rank out of range");
  return *pools_[static_cast<std::size_t>(rank)];
}

bool DistributedTrainer::sync_step(Communicator& comm, LmModel& model,
                                   Optimizer& opt, MemoryPool& pool,
                                   LossScaler* scaler,
                                   const LmStepResult& res,
                                   std::uint64_t* unique_out,
                                   EmbeddingExchange* exchange,
                                   DenseGradSync* overlap_sync,
                                   const PendingIdGather* pending,
                                   const ExchangeOptions* fmt_opts) {
  const float inv_world = 1.0f / static_cast<float>(comm.world_size());
  const auto dense = model.dense_params();

  std::vector<Index> uids;
  Tensor urows;
  Param* out_emb = nullptr;
  std::vector<Index> ouids;
  Tensor ourows;
  {
    PhaseScope phase("exchange");

    // Dense parameters: either drain the bucketed allreduces that have
    // been in flight since backward (overlapped path), or run the
    // classic synchronous per-parameter ALLREDUCE sweep.  finish() also
    // flushes the eager id allgather riding the same engine.
    if (overlap_sync != nullptr) {
      overlap_sync->finish();
    } else {
      dense_sync_.sync(comm, dense, fmt_opts);
    }

    // Input embedding: the exchange under test.
    exchange->exchange(comm, res.input_ids, res.input_delta, uids, urows,
                       &pool, pending);
    scale(urows, inv_world);
    if (unique_out != nullptr) *unique_out = uids.size();

    // Output embedding: only sparse under sampled softmax.  Exchanged
    // before any optimizer step runs — same values, same order, so the
    // reorder is bitwise neutral — because the overflow guard must see
    // every synchronized gradient before any of them touches a weight.
    if (!res.output_grad.ids.empty()) {
      out_emb = model.sampled_output_param();
      ZIPFLM_ASSERT(out_emb != nullptr,
                    "sparse output gradient without a sampled output param");
      exchange->exchange(comm, res.output_grad.ids, res.output_grad.rows,
                         ouids, ourows, &pool);
      scale(ourows, inv_world);
    }

    if (scaler != nullptr) {
      // Collectives give every rank the same reduced values, so a NaN
      // injected by any one rank (e.g. a corrupted wire chunk) shows up
      // identically on all of them: the skip decision is uniform without
      // an extra vote collective, and the replicas stay in lockstep.
      bool overflow = !all_finite(urows.data()) ||
                      (out_emb != nullptr && !all_finite(ourows.data()));
      for (const Param* p : dense) {
        if (overflow) break;
        overflow = !all_finite(p->grad.data());
      }
      scaler->update(overflow);
      if (overflow) return false;
    }
  }

  PhaseScope phase("optimizer");
  if (options_.use_adam) static_cast<Adam&>(opt).begin_step();
  opt.step(dense);
  if (const ShardedEmbedding* se = model.sharded_input(); se != nullptr) {
    // The push handed back this rank's OWNED rows under global ids;
    // the sparse update indexes the local shard.
    for (Index& id : uids) id -= se->row_begin();
  }
  opt.step_rows(model.input_embedding_param(), urows, uids);
  if (out_emb != nullptr) opt.step_rows(*out_emb, ourows, ouids);
  return true;
}

EpochStats DistributedTrainer::run_epoch(std::span<const Index> train_ids,
                                         std::span<const Index> valid_ids,
                                         int epoch) {
  obs::SpanScope epoch_span("epoch", "epoch", static_cast<double>(epoch));
  const int g = world_.world_size();
  const float lr = scaled_learning_rate(
      options_.base_lr, world_.topology().nodes, epoch, options_.lr_decay);
  for (auto& opt : optimizers_) opt->set_learning_rate(lr);

  world_.reset_ledgers();
  for (auto& pool : pools_) pool->reset_peak();

  std::vector<double> rank_loss(static_cast<std::size_t>(g), 0.0);
  std::vector<std::uint64_t> rank_steps(static_cast<std::size_t>(g), 0);
  std::vector<std::uint64_t> rank_skipped(static_cast<std::size_t>(g), 0);
  std::vector<std::uint64_t> rank_unique(static_cast<std::size_t>(g), 0);
  const std::uint64_t step_base = global_step_;

  world_.run([&](Communicator& comm) {
    // Dense rank dr shards the data over the live world; global rank r
    // owns this rank's replica, optimizer, and pool — the two diverge
    // once a rank has been retired by a fault.
    const int dr = comm.rank();
    const int r = world_.live_ranks()[static_cast<std::size_t>(dr)];
    LmModel& model = *models_[static_cast<std::size_t>(r)];
    Optimizer& opt = *optimizers_[static_cast<std::size_t>(r)];
    MemoryPool& pool = *pools_[static_cast<std::size_t>(r)];
    LossScaler* scaler =
        scalers_.empty() ? nullptr : &scalers_[static_cast<std::size_t>(r)];

    // Overlapped exchange: a per-rank comm thread plus this rank's
    // bucketed sync.  The engine runs jobs inline when overlap is off.
    AsyncCommEngine engine(comm, options_.overlapped_exchange);
    DenseGradSync* dsync =
        options_.overlapped_exchange
            ? &dense_syncs_[static_cast<std::size_t>(r)]
            : nullptr;
    if (dsync != nullptr) {
      model.set_backward_hook(
          [dsync](const Param& p) { dsync->notify_ready(&p); });
    }
    ExchangeStrategySelector* selector =
        selectors_.empty() ? nullptr
                           : selectors_[static_cast<std::size_t>(r)].get();
    // Unhook + disarm on every exit (including a fault unwinding the
    // epoch) so the model and sync never outlive this stack's engine.
    struct OverlapGuard {
      LmModel& model;
      DenseGradSync* dsync;
      ~OverlapGuard() {
        model.set_backward_hook(nullptr);
        if (dsync != nullptr) dsync->disarm();
      }
    } overlap_guard{model, dsync};

    BatchIterator it(train_ids, options_.batch, dr, g);
    Batch batch;
    LmStepResult res;
    std::uint64_t local_step = 0;
    auto& tm = TrainMetrics::get();
    const std::uint64_t batch_tokens =
        static_cast<std::uint64_t>(options_.batch.tokens_per_rank());
    auto interval_start = std::chrono::steady_clock::now();
    while (it.next(batch)) {
      obs::SpanScope step_span("train_step", "step",
                               static_cast<double>(step_base + local_step));
      model.zero_grad();
      if (sharded_exchange_ != nullptr) {
        // Step-scoped row pull: fetch this batch's unique rows from
        // their owner shards before any forward reads the table.  Runs
        // before the overlap engine arms, so the alltoallv rounds see
        // an idle comm schedule on every rank.
        sharded_exchange_->pull(comm, *model.sharded_input(), batch.inputs,
                                &pool);
      }
      std::vector<Index> candidates;
      if (sampler_.has_value()) {
        candidates = sampler_->candidates(dr, g, step_base + local_step,
                                          batch.targets);
      }
      // Pick this step's embedding strategy (and, under adaptive wire
      // format, the gradient wire format) before any collective so
      // every rank runs the same wire schedule (selection is lockstep).
      EmbeddingExchange* ex = exchange_.get();
      const ExchangeOptions* fmt_opts = nullptr;
      if (selector != nullptr) {
        const ExchangeKind kind = selector->choose();
        const WireFormat fmt = selector->current_format();
        ex = exchange_for(kind, fmt);
        if (options_.adaptive_wire_format) {
          fmt_opts = &format_opts_[static_cast<std::size_t>(fmt)];
          if (dsync != nullptr) dsync->set_wire_options(*fmt_opts);
        }
      }
      PendingIdGather pending;
      if (dsync != nullptr) {
        dsync->begin_step(comm, engine, model.dense_params());
        // The token ids are known now — start the Θ(G·K) id allgather
        // under forward+backward.
        begin_id_gather(engine, batch.inputs, pending, options_.index_codec);
      }
      model.train_step_local(batch, candidates, res);
      std::uint64_t ug = 0;
      if (!sync_step(comm, model, opt, pool, scaler, res, &ug, ex, dsync,
                     dsync != nullptr ? &pending : nullptr, fmt_opts)) {
        ++rank_skipped[static_cast<std::size_t>(dr)];
        tm.skipped_steps.add(1);
        ZIPFLM_TRACE_INSTANT("overflow_skip");
      }
      if (selector != nullptr) {
        selector->observe_unique(ug);
        // Feed the measured compression ratio back into the format
        // priors — only when this step's format was actually coded, so
        // a stale ratio from an earlier coded step never mislabels a
        // raw format.  The ratio is globally consistent (see
        // Communicator::last_codec_ratio), so priors stay lockstep.
        if (options_.adaptive_wire_format) {
          const WireFormat fmt = selector->current_format();
          if (wire_format_codec(fmt) != WireCodec::None) {
            selector->observe_format_ratio(fmt, comm.last_codec_ratio());
          }
        }
      }
      rank_loss[static_cast<std::size_t>(dr)] += res.loss;
      rank_unique[static_cast<std::size_t>(dr)] += ug;
      ++local_step;
      step_span.set_arg2("loss", res.loss);

      tm.steps.add(1);
      tm.tokens.add(batch_tokens);
      if (dr == 0) {
        // One writer (dense rank 0), plain relaxed stores: the gauges
        // always hold the latest step's values.
        tm.loss.set(res.loss);
        if (scaler != nullptr) tm.loss_scale.set(scaler->scale());
        if (options_.metrics_every > 0 &&
            local_step % static_cast<std::uint64_t>(options_.metrics_every) ==
                0) {
          tm.grad_norm.set(dense_grad_norm(model.dense_params()));
          const auto now = std::chrono::steady_clock::now();
          const double secs =
              std::chrono::duration<double>(now - interval_start).count();
          interval_start = now;
          if (secs > 0.0) {
            tm.tokens_per_s.set(
                static_cast<double>(options_.metrics_every) *
                static_cast<double>(batch_tokens * static_cast<unsigned>(g)) /
                secs);
          }
          if (options_.metrics_sink) {
            options_.metrics_sink(step_base + local_step);
          }
        }
      }
    }
    rank_steps[static_cast<std::size_t>(dr)] = local_step;
    if (dsync != nullptr && dr == 0) {
      // How much of the comm thread's busy time actually hid under
      // compute (1.0 = fully hidden, 0.0 = all of it waited in flush).
      auto& reg = obs::MetricsRegistry::global();
      reg.gauge("comm/overlap_efficiency")
          .set(AsyncCommEngine::overlap_efficiency(engine.stats()));
      reg.gauge("comm/overlap_buckets")
          .set(static_cast<double>(dsync->plan_buckets()));
    }
  });

  EpochStats stats;
  stats.steps = rank_steps.front();
  for (std::uint64_t s : rank_steps) {
    ZIPFLM_ASSERT(s == stats.steps, "ranks must run identical step counts");
  }
  stats.skipped_steps = rank_skipped.front();
  for (std::uint64_t s : rank_skipped) {
    ZIPFLM_ASSERT(s == stats.skipped_steps,
                  "overflow skips must be uniform across ranks");
  }
  global_step_ += stats.steps;

  double loss_sum = 0.0;
  for (double l : rank_loss) loss_sum += l;
  stats.train_loss =
      stats.steps == 0 ? 0.0
                       : loss_sum / static_cast<double>(stats.steps * g);
  stats.global_unique_sum = rank_unique.front();

  stats.valid_loss = evaluate(valid_ids);
  stats.valid_perplexity = std::exp(stats.valid_loss);

  stats.comm_total = world_.total_ledger();
  stats.sim_comm_seconds = world_.max_simulated_comm_seconds();
  for (const auto& pool : pools_) {
    stats.peak_memory_bytes =
        std::max<std::uint64_t>(stats.peak_memory_bytes, pool->peak());
  }
  const double flops_per_step =
      static_cast<double>(options_.batch.tokens_per_rank()) *
      models_.front()->flops_per_token();
  stats.sim_compute_seconds =
      static_cast<double>(stats.steps) *
      options_.device.seconds_for_flops(flops_per_step,
                                        options_.compute_efficiency);
  stats.sim_total_seconds = stats.sim_compute_seconds + stats.sim_comm_seconds;
  ++epochs_completed_;
  return stats;
}

EpochStats DistributedTrainer::run_epoch_resilient(
    std::span<const Index> train_ids, std::span<const Index> valid_ids,
    int epoch, const std::string& checkpoint_path, int max_restarts) {
  save_state_file(checkpoint_path);
  int restarts = 0;
  for (;;) {
    try {
      EpochStats stats = run_epoch(train_ids, valid_ids, epoch);
      stats.restarts = restarts;
      return stats;
    } catch (const CollectiveTimeoutError&) {
      // A rank died mid-epoch.  CommWorld::run already retired it; the
      // survivors' replicas are part-way through the epoch (and possibly
      // mid-step), so roll them back to the pre-epoch checkpoint and
      // rerun over the degraded world.
      if (restarts >= max_restarts) throw;
      ++restarts;
      restore_state_file(checkpoint_path);
    }
  }
}

double DistributedTrainer::evaluate(std::span<const Index> valid_ids) {
  obs::SpanScope eval_span("evaluate");
  const int g = world_.world_size();
  std::vector<double> rank_loss(static_cast<std::size_t>(g), 0.0);
  std::vector<std::uint64_t> rank_batches(static_cast<std::size_t>(g), 0);

  world_.run([&](Communicator& comm) {
    const int dr = comm.rank();
    const int r = world_.live_ranks()[static_cast<std::size_t>(dr)];
    LmModel& model = *models_[static_cast<std::size_t>(r)];
    BatchIterator it(valid_ids, options_.batch, dr, g);
    Batch batch;
    while (it.next(batch)) {
      if (sharded_exchange_ != nullptr) {
        sharded_exchange_->pull(comm, *model.sharded_input(), batch.inputs);
      }
      rank_loss[static_cast<std::size_t>(dr)] += model.eval_loss(batch);
      ++rank_batches[static_cast<std::size_t>(dr)];
    }
  });

  double loss = 0.0;
  std::uint64_t batches = 0;
  for (int r = 0; r < g; ++r) {
    loss += rank_loss[static_cast<std::size_t>(r)];
    batches += rank_batches[static_cast<std::size_t>(r)];
  }
  return batches == 0 ? 0.0 : loss / static_cast<double>(batches);
}

bool DistributedTrainer::replicas_in_sync() {
  const auto& live = world_.live_ranks();
  LmModel& ref_model = *models_[static_cast<std::size_t>(live.front())];
  auto reference = ref_model.all_params();
  const Param* ref_shard = ref_model.sharded_input() != nullptr
                               ? &ref_model.sharded_input()->param()
                               : nullptr;
  for (std::size_t i = 1; i < live.size(); ++i) {
    LmModel& m = *models_[static_cast<std::size_t>(live[i])];
    auto params = m.all_params();
    const Param* shard =
        m.sharded_input() != nullptr ? &m.sharded_input()->param() : nullptr;
    if (params.size() != reference.size()) return false;
    for (std::size_t j = 0; j < params.size(); ++j) {
      if (shard != nullptr && params[j] == shard &&
          reference[j] == ref_shard) {
        // Shards are disjoint slices by construction — only the dense
        // replicas (and the replicated tables) must stay bit-identical.
        continue;
      }
      if (!(params[j]->value == reference[j]->value)) return false;
    }
  }
  return true;
}

std::vector<Param*> DistributedTrainer::checkpoint_params(LmModel& model,
                                                          Param& full) const {
  auto params = model.all_params();
  ShardedEmbedding* se = model.sharded_input();
  if (se != nullptr) {
    for (Param*& p : params) {
      if (p == &se->param()) p = &full;
    }
  }
  return params;
}

void DistributedTrainer::save_state(std::ostream& out) {
  // Replicas are bit-identical (replicas_in_sync is a tested invariant),
  // so one rank's parameters and optimizer moments stand for all; the
  // dropout streams are saved per rank because each rank draws its own.
  const int r0 = world_.live_ranks().front();
  LmModel& reference = *models_[static_cast<std::size_t>(r0)];

  TrainState ts;
  ts.present = true;
  if (!scalers_.empty()) {
    ts.has_scaler = true;
    ts.scaler = scalers_[static_cast<std::size_t>(r0)].state();
  }
  ts.rank_rng.reserve(models_.size());
  for (const auto& m : models_) {
    ts.rank_rng.push_back(m->dropout_rng().state());
  }
  const CheckpointMeta meta{global_step_, epochs_completed_};

  if (sharded_exchange_ == nullptr) {
    std::ostringstream blob(std::ios::binary);
    const auto params = reference.all_params();
    optimizers_[static_cast<std::size_t>(r0)]->save_state(blob, params);
    ts.optimizer_blob = blob.str();
    save_checkpoint(out, reference, meta, &ts);
    return;
  }

  // Sharded table: the on-disk layout is the CANONICAL replicated one —
  // the full V x D table (and moment tensors) under the replicated
  // parameter name, assembled from every rank's owned slice.  A
  // checkpoint saved at any world size therefore restores into any
  // other (re-sharding is just re-slicing on load), and into a
  // replicated model unchanged.
  const Index vocab = reference.vocab();
  const Index dim = reference.embed_dim();
  Param full("embedding", Tensor({vocab, dim}));
  for (const auto& m : models_) {
    const ShardedEmbedding* se = m->sharded_input();
    ZIPFLM_ASSERT(se != nullptr, "sharded trainer holds a replicated model");
    std::memcpy(full.value.data().data() +
                    se->row_begin() * dim,
                se->param().value.data().data(),
                se->param().value.bytes());
  }
  const auto params = checkpoint_params(reference, full);

  if (options_.use_adam) {
    // Synthesize the canonical Adam blob by hand (save_state format:
    // step count, then per parameter a presence byte + raw m + raw v):
    // dense moments come from the reference optimizer, the table's from
    // stitching every rank's moment slice — zeros where a shard has
    // never stepped, matching Adam's lazily-zero-initialized moments.
    std::ostringstream blob(std::ios::binary);
    const Adam& ref_opt =
        static_cast<const Adam&>(*optimizers_[static_cast<std::size_t>(r0)]);
    write_pod<std::int64_t>(blob, ref_opt.step_count());
    for (const Param* p : params) {
      if (p == &full) {
        bool present = false;
        for (std::size_t r = 0; r < models_.size(); ++r) {
          const auto& opt = static_cast<const Adam&>(*optimizers_[r]);
          present = present ||
                    opt.has_moments(models_[r]->sharded_input()->param());
        }
        write_pod<std::uint8_t>(blob, present ? 1 : 0);
        if (!present) continue;
        Tensor fm({vocab, dim});
        Tensor fv({vocab, dim});
        for (std::size_t r = 0; r < models_.size(); ++r) {
          const auto& opt = static_cast<const Adam&>(*optimizers_[r]);
          const ShardedEmbedding* se = models_[r]->sharded_input();
          const Param& sp = se->param();
          if (!opt.has_moments(sp)) continue;
          std::memcpy(fm.data().data() + se->row_begin() * dim,
                      opt.moment_m(sp).data().data(),
                      opt.moment_m(sp).bytes());
          std::memcpy(fv.data().data() + se->row_begin() * dim,
                      opt.moment_v(sp).data().data(),
                      opt.moment_v(sp).bytes());
        }
        blob.write(reinterpret_cast<const char*>(fm.data().data()),
                   static_cast<std::streamsize>(fm.bytes()));
        blob.write(reinterpret_cast<const char*>(fv.data().data()),
                   static_cast<std::streamsize>(fv.bytes()));
        continue;
      }
      const bool present = ref_opt.has_moments(*p);
      write_pod<std::uint8_t>(blob, present ? 1 : 0);
      if (!present) continue;
      blob.write(
          reinterpret_cast<const char*>(ref_opt.moment_m(*p).data().data()),
          static_cast<std::streamsize>(ref_opt.moment_m(*p).bytes()));
      blob.write(
          reinterpret_cast<const char*>(ref_opt.moment_v(*p).data().data()),
          static_cast<std::streamsize>(ref_opt.moment_v(*p).bytes()));
    }
    ts.optimizer_blob = blob.str();
  }  // SGD carries no optimizer state (Optimizer::save_state is a no-op).

  save_checkpoint(out, std::span<Param* const>(params), meta, &ts);
}

void DistributedTrainer::restore_state(std::istream& in,
                                       bool allow_world_resize) {
  // Every replica re-reads the same serialized bytes: N in-memory parses
  // instead of one parse + N deep copies, and the code paths stay the
  // same whether the source is a file or a test's stringstream.
  const std::string raw(std::istreambuf_iterator<char>(in), {});
  CheckpointMeta meta;
  TrainState ts;
  const Index vocab = models_.front()->vocab();
  const Index dim = models_.front()->embed_dim();
  for (std::size_t r = 0; r < models_.size(); ++r) {
    std::istringstream stream(raw, std::ios::binary);
    if (sharded_exchange_ == nullptr) {
      meta = load_checkpoint(stream, *models_[r], r == 0 ? &ts : nullptr);
      continue;
    }
    // Sharded: read the canonical full table into a scratch parameter,
    // then keep only this replica's owned slice.
    ShardedEmbedding* se = models_[r]->sharded_input();
    ZIPFLM_ASSERT(se != nullptr, "sharded trainer holds a replicated model");
    Param full("embedding", Tensor({vocab, dim}));
    const auto params = checkpoint_params(*models_[r], full);
    meta = load_checkpoint(stream, std::span<Param* const>(params),
                           r == 0 ? &ts : nullptr);
    std::memcpy(se->param().value.data().data(),
                full.value.data().data() + se->row_begin() * dim,
                se->param().value.bytes());
    se->clear_cache();
  }
  ZIPFLM_CHECK(ts.present,
               "checkpoint carries no training state; it can initialize "
               "weights but not resume a run exactly");
  ZIPFLM_CHECK(allow_world_resize || ts.rank_rng.size() == models_.size(),
               "checkpoint rank count does not match this trainer (saved " +
                   std::to_string(ts.rank_rng.size()) + ", have " +
                   std::to_string(models_.size()) +
                   "); pass allow_world_resize to re-shard on load");
  ZIPFLM_CHECK(scalers_.empty() || ts.has_scaler,
               "checkpoint has no loss-scaler state but dynamic scaling "
               "is enabled");

  for (std::size_t r = 0; r < models_.size(); ++r) {
    if (sharded_exchange_ == nullptr || !options_.use_adam) {
      // SGD is stateless, so the blob is empty either way; replicated
      // Adam parses it against the live parameter list directly.
      std::istringstream blob(ts.optimizer_blob, std::ios::binary);
      const auto params = models_[r]->all_params();
      optimizers_[r]->load_state(blob, params);
    } else {
      // Sharded Adam: parse the canonical blob by hand, slicing the
      // table's moment tensors down to this replica's owned rows.
      std::istringstream blob(ts.optimizer_blob, std::ios::binary);
      ShardedEmbedding* se = models_[r]->sharded_input();
      Param full("embedding", Tensor({vocab, dim}));
      const auto params = checkpoint_params(*models_[r], full);
      auto& opt = static_cast<Adam&>(*optimizers_[r]);
      opt.clear_moments();
      opt.set_step_count(read_pod<std::int64_t>(blob));
      for (Param* p : params) {
        if (read_pod<std::uint8_t>(blob) == 0) continue;
        Tensor m(p->value.shape());
        Tensor v(p->value.shape());
        blob.read(reinterpret_cast<char*>(m.data().data()),
                  static_cast<std::streamsize>(m.bytes()));
        blob.read(reinterpret_cast<char*>(v.data().data()),
                  static_cast<std::streamsize>(v.bytes()));
        ZIPFLM_CHECK(blob.good(),
                     "optimizer state truncated for parameter " + p->name);
        if (p == &full) {
          Tensor sm({se->owned_rows(), dim});
          Tensor sv({se->owned_rows(), dim});
          std::memcpy(sm.data().data(), m.data().data() + se->row_begin() * dim,
                      sm.bytes());
          std::memcpy(sv.data().data(), v.data().data() + se->row_begin() * dim,
                      sv.bytes());
          opt.set_moments(se->param(), std::move(sm), std::move(sv));
        } else {
          opt.set_moments(*p, std::move(m), std::move(v));
        }
      }
    }
    if (r < ts.rank_rng.size()) {
      models_[r]->dropout_rng().set_state(ts.rank_rng[r]);
    }
    if (!scalers_.empty()) scalers_[r].restore(ts.scaler);
  }
  global_step_ = meta.global_step;
  epochs_completed_ = meta.epoch;
}

void DistributedTrainer::save_state_file(const std::string& path) {
  // Mirror save_checkpoint_file's atomicity: temp file, flush, rename.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ZIPFLM_CHECK(out.is_open(), "cannot open checkpoint file: " + tmp);
    save_state(out);
    out.flush();
    ZIPFLM_CHECK(out.good(), "checkpoint flush failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    ZIPFLM_CHECK(false, "cannot move checkpoint into place: " + path);
  }
}

void DistributedTrainer::restore_state_file(const std::string& path,
                                            bool allow_world_resize) {
  std::ifstream in(path, std::ios::binary);
  ZIPFLM_CHECK(in.is_open(), "cannot open checkpoint file: " + path);
  restore_state(in, allow_world_resize);
}

}  // namespace zipflm
