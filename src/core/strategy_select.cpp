#include "zipflm/core/strategy_select.hpp"

#include <algorithm>
#include <limits>

namespace zipflm {

const char* exchange_kind_name(ExchangeKind kind) noexcept {
  switch (kind) {
    case ExchangeKind::Unique: return "unique";
    case ExchangeKind::DenseAllgather: return "dense-allgather";
    case ExchangeKind::HierarchicalUnique: return "hierarchical-unique";
  }
  return "?";
}

ExchangeStrategySelector::ExchangeStrategySelector(Config config,
                                                   CostModel cost,
                                                   Topology topo)
    : config_(config),
      cost_(cost),
      topo_(topo),
      current_(config.initial),
      current_format_(config.initial_format),
      format_ratio_(config.initial_format_ratio) {
  ZIPFLM_CHECK(config_.vocab > 0 && config_.dim > 0 &&
                   config_.tokens_per_rank > 0,
               "strategy selector needs vocab, dim, and tokens_per_rank");
}

std::array<double, 3> ExchangeStrategySelector::predict(const Config& config,
                                                        const CostModel& cost,
                                                        const Topology& topo,
                                                        std::uint64_t ug) {
  const std::size_t w =
      config.wire == WirePrecision::FP16 ? sizeof(Half) : sizeof(float);
  const std::size_t k = static_cast<std::size_t>(config.tokens_per_rank);
  const std::size_t d = static_cast<std::size_t>(config.dim);
  // Every strategy starts with the Θ(G·K) id allgatherv.
  const double ids_s = cost.ring_allgatherv_seconds(topo, k * sizeof(Index));
  const std::size_t m_bytes = static_cast<std::size_t>(ug) * d * w;

  std::array<double, 3> s{};
  s[static_cast<std::size_t>(ExchangeKind::Unique)] =
      ids_s + cost.ring_allreduce_seconds(topo, m_bytes);
  s[static_cast<std::size_t>(ExchangeKind::DenseAllgather)] =
      ids_s + cost.ring_allgatherv_seconds(topo, k * d * w);
  s[static_cast<std::size_t>(ExchangeKind::HierarchicalUnique)] =
      ids_s + cost.hierarchical_allreduce_seconds(topo, m_bytes);
  return s;
}

std::array<double, kWireFormatCount> ExchangeStrategySelector::predict_format(
    const Config& config, const CostModel& cost, const Topology& topo,
    std::uint64_t ug, ExchangeKind kind,
    const std::array<double, kWireFormatCount>& ratios) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t k = static_cast<std::size_t>(config.tokens_per_rank);
  const std::size_t d = static_cast<std::size_t>(config.dim);

  std::array<double, kWireFormatCount> s{};
  s.fill(kInf);
  for (std::size_t f = 0; f < kWireFormatCount; ++f) {
    const WireFormat fmt = static_cast<WireFormat>(f);
    const std::size_t w =
        wire_format_precision(fmt) == WirePrecision::FP16 ? sizeof(Half)
                                                          : sizeof(float);
    const WireCodec codec = wire_format_codec(fmt);
    if (kind == ExchangeKind::DenseAllgather) {
      // The baseline's gradient leg is an allgatherv — there is no
      // sum-allreduce to code, so only the raw formats apply.
      if (codec == WireCodec::None) {
        s[f] = cost.ring_allgatherv_seconds(topo, k * d * w);
      }
      continue;
    }
    const std::size_t m_bytes = static_cast<std::size_t>(ug) * d * w;
    if (codec == WireCodec::None) {
      s[f] = kind == ExchangeKind::HierarchicalUnique
                 ? cost.hierarchical_allreduce_seconds(topo, m_bytes)
                 : cost.ring_allreduce_seconds(topo, m_bytes);
      continue;
    }
    // Coded formats only ride the flat UNIQUE ring: the two-level
    // path's sub-communicators keep their own (None) codec arming.
    if (kind == ExchangeKind::HierarchicalUnique) continue;
    const CodecCost& cc =
        codec == WireCodec::Packed ? config.packed_cost : config.int8_cost;
    const double wire_bytes =
        static_cast<double>(m_bytes) * std::min(ratios[f], 1.0e3);
    s[f] = cost.ring_allreduce_seconds(
               topo, static_cast<std::size_t>(wire_bytes)) +
           cc.convert_seconds(m_bytes);
  }
  return s;
}

ExchangeKind ExchangeStrategySelector::choose() {
  // Before the first observation, price with the worst case: every
  // token distinct on every rank, capped by the vocabulary.
  const std::uint64_t g = static_cast<std::uint64_t>(topo_.world_size());
  const std::uint64_t ug =
      observed_ ? last_ug_
                : std::min<std::uint64_t>(g * config_.tokens_per_rank,
                                          static_cast<std::uint64_t>(
                                              config_.vocab));

  StrategyDecision d;
  d.step = step_++;
  d.ug = ug;
  d.predicted_seconds = predict(config_, cost_, topo_, ug);

  const auto idx = [](ExchangeKind k) { return static_cast<std::size_t>(k); };
  ExchangeKind best = ExchangeKind::Unique;
  for (ExchangeKind k : {ExchangeKind::DenseAllgather,
                         ExchangeKind::HierarchicalUnique}) {
    if (d.predicted_seconds[idx(k)] < d.predicted_seconds[idx(best)]) {
      best = k;
    }
  }
  // Hysteresis: the challenger must beat the incumbent by a margin.
  if (best != current_ &&
      d.predicted_seconds[idx(best)] <
          d.predicted_seconds[idx(current_)] * (1.0 - config_.hysteresis)) {
    d.switched = true;
    current_ = best;
  }
  d.choice = current_;

  if (config_.adapt_format) {
    const auto fidx = [](WireFormat f) { return static_cast<std::size_t>(f); };
    d.ratio_used = format_ratio_;
    d.predicted_format_seconds =
        predict_format(config_, cost_, topo_, ug, current_, format_ratio_);
    // FP32 is finite for every kind, so the scan always lands on a
    // payable format even when the incumbent is unpriceable here.
    WireFormat fbest = WireFormat::FP32;
    for (std::size_t f = 0; f < kWireFormatCount; ++f) {
      if (d.predicted_format_seconds[f] <
          d.predicted_format_seconds[fidx(fbest)]) {
        fbest = static_cast<WireFormat>(f);
      }
    }
    if (fbest != current_format_) {
      const double incumbent = d.predicted_format_seconds[fidx(current_format_)];
      // Switch on margin, or unconditionally when the incumbent cannot
      // run under the chosen kind (infinite prediction).
      if (!(incumbent < std::numeric_limits<double>::infinity()) ||
          d.predicted_format_seconds[fidx(fbest)] <
              incumbent * (1.0 - config_.hysteresis)) {
        d.format_switched = true;
        current_format_ = fbest;
      }
    }
    d.format = current_format_;
  }

  log_.push_back(d);
  return current_;
}

void ExchangeStrategySelector::observe_unique(std::uint64_t ug) {
  last_ug_ = ug;
  observed_ = true;
}

void ExchangeStrategySelector::observe_format_ratio(WireFormat format,
                                                    double ratio) {
  if (ratio > 0.0) {
    format_ratio_[static_cast<std::size_t>(format)] = ratio;
  }
}

}  // namespace zipflm
