#include "zipflm/core/strategy_select.hpp"

#include <algorithm>

namespace zipflm {

const char* exchange_kind_name(ExchangeKind kind) noexcept {
  switch (kind) {
    case ExchangeKind::Unique: return "unique";
    case ExchangeKind::DenseAllgather: return "dense-allgather";
    case ExchangeKind::HierarchicalUnique: return "hierarchical-unique";
  }
  return "?";
}

ExchangeStrategySelector::ExchangeStrategySelector(Config config,
                                                   CostModel cost,
                                                   Topology topo)
    : config_(config), cost_(cost), topo_(topo), current_(config.initial) {
  ZIPFLM_CHECK(config_.vocab > 0 && config_.dim > 0 &&
                   config_.tokens_per_rank > 0,
               "strategy selector needs vocab, dim, and tokens_per_rank");
}

std::array<double, 3> ExchangeStrategySelector::predict(const Config& config,
                                                        const CostModel& cost,
                                                        const Topology& topo,
                                                        std::uint64_t ug) {
  const std::size_t w =
      config.wire == WirePrecision::FP16 ? sizeof(Half) : sizeof(float);
  const std::size_t k = static_cast<std::size_t>(config.tokens_per_rank);
  const std::size_t d = static_cast<std::size_t>(config.dim);
  // Every strategy starts with the Θ(G·K) id allgatherv.
  const double ids_s = cost.ring_allgatherv_seconds(topo, k * sizeof(Index));
  const std::size_t m_bytes = static_cast<std::size_t>(ug) * d * w;

  std::array<double, 3> s{};
  s[static_cast<std::size_t>(ExchangeKind::Unique)] =
      ids_s + cost.ring_allreduce_seconds(topo, m_bytes);
  s[static_cast<std::size_t>(ExchangeKind::DenseAllgather)] =
      ids_s + cost.ring_allgatherv_seconds(topo, k * d * w);
  s[static_cast<std::size_t>(ExchangeKind::HierarchicalUnique)] =
      ids_s + cost.hierarchical_allreduce_seconds(topo, m_bytes);
  return s;
}

ExchangeKind ExchangeStrategySelector::choose() {
  // Before the first observation, price with the worst case: every
  // token distinct on every rank, capped by the vocabulary.
  const std::uint64_t g = static_cast<std::uint64_t>(topo_.world_size());
  const std::uint64_t ug =
      observed_ ? last_ug_
                : std::min<std::uint64_t>(g * config_.tokens_per_rank,
                                          static_cast<std::uint64_t>(
                                              config_.vocab));

  StrategyDecision d;
  d.step = step_++;
  d.ug = ug;
  d.predicted_seconds = predict(config_, cost_, topo_, ug);

  const auto idx = [](ExchangeKind k) { return static_cast<std::size_t>(k); };
  ExchangeKind best = ExchangeKind::Unique;
  for (ExchangeKind k : {ExchangeKind::DenseAllgather,
                         ExchangeKind::HierarchicalUnique}) {
    if (d.predicted_seconds[idx(k)] < d.predicted_seconds[idx(best)]) {
      best = k;
    }
  }
  // Hysteresis: the challenger must beat the incumbent by a margin.
  if (best != current_ &&
      d.predicted_seconds[idx(best)] <
          d.predicted_seconds[idx(current_)] * (1.0 - config_.hysteresis)) {
    d.switched = true;
    current_ = best;
  }
  d.choice = current_;
  log_.push_back(d);
  return current_;
}

void ExchangeStrategySelector::observe_unique(std::uint64_t ug) {
  last_ug_ = ug;
  observed_ = true;
}

}  // namespace zipflm
