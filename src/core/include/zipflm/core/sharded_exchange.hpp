// Pull/push exchange for row-sharded embedding tables, over the
// alltoallv collective (the DistEmbed spmm overlap pattern).
//
// Pull (step start): each rank requests its batch's unique rows from
// their owner shards — two alltoallv rounds (id requests, row replies)
// of pure data movement, so the pulled rows are bitwise the owner's.
//
// Push (after backward): locally reduced gradient rows travel TO their
// owners, who re-run the ring-allreduce accumulation schedule over the
// received per-source contributions — same chunk geometry, same
// operand order, explicit zeros for absent sources — so every owned
// sum is bitwise identical to the rows the replicated UniqueExchange
// allreduce would have produced.  That equivalence (DESIGN.md §10) is
// what lets replicated mode stay the test oracle.
#pragma once

#include "zipflm/core/exchange.hpp"
#include "zipflm/nn/sharded_embedding.hpp"

namespace zipflm {

class ShardedEmbeddingExchange final : public EmbeddingExchange {
 public:
  ShardedEmbeddingExchange(Index vocab, Index dim,
                           ExchangeOptions options = {});

  /// Push: ships locally reduced rows to their owners and folds them
  /// there.  Unlike the replicated strategies, out_ids / out_rows hold
  /// only the rows THIS RANK OWNS (global ids, global sums) — the
  /// caller applies them to the shard, not to a replica.
  void exchange(Communicator& comm, std::span<const Index> ids,
                const Tensor& delta, std::vector<Index>& out_ids,
                Tensor& out_rows, MemoryPool* pool = nullptr,
                const PendingIdGather* pending = nullptr) override;
  const char* name() const noexcept override { return "sharded-alltoallv"; }

  /// Pull the unique rows of batch_ids from their owner shards into
  /// emb's step cache (and serve the peers' requests from emb's
  /// shard).  Every rank of comm must call this once per step, before
  /// any forward that reads the table.
  void pull(Communicator& comm, ShardedEmbedding& emb,
            std::span<const Index> batch_ids, MemoryPool* pool = nullptr);

 private:
  Index vocab_;
  Index dim_;
  ExchangeOptions options_;
};

}  // namespace zipflm
