// Dense-parameter gradient synchronization (the vision-style ALLREDUCE
// of Section II-B), with optional FP16 compression-scaling on the wire
// (Section III-C).
#pragma once

#include <span>

#include "zipflm/comm/communicator.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/nn/param.hpp"

namespace zipflm {

class DenseGradSync {
 public:
  explicit DenseGradSync(ExchangeOptions options = {}) : options_(options) {}

  /// ALLREDUCE-sum each parameter's gradient and divide by world size
  /// (data-parallel averaging).  FP16 mode down-casts with
  /// compression-scaling before the wire and up-casts after.
  void sync(Communicator& comm, std::span<Param* const> params) const;

  const ExchangeOptions& options() const noexcept { return options_; }

 private:
  ExchangeOptions options_;
};

}  // namespace zipflm
