// Dense-parameter gradient synchronization (the vision-style ALLREDUCE
// of Section II-B), with optional FP16 compression-scaling on the wire
// (Section III-C).
//
// Two modes:
//
//  * sync() — the classic synchronous path: one allreduce per parameter
//    after backprop has fully finished.  Byte-for-byte the pre-overlap
//    behavior; the fault-injection suites (which count collectives per
//    step) and existing training trajectories ride on it unchanged.
//  * begin_step()/notify_ready()/finish() — the overlapped path: the
//    dense parameters are grouped into fixed-byte buckets in
//    reverse-backprop order (last layer first), and a bucket's
//    collectives are handed to a per-rank AsyncCommEngine the moment
//    its last parameter's backward completes, so wire time hides under
//    the remaining backward compute.  Buckets batch the LAUNCH, not
//    the wire: inside a bucket each parameter still runs its own
//    allreduce, in plan order — the exact collective sequence sync()
//    issues — so overlap on/off/legacy are bitwise identical and
//    fault-injection collective indices are stable.  Bucket boundaries
//    depend only on the parameter list and bucket_bytes — never on
//    timing.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "zipflm/comm/async_exchange.hpp"
#include "zipflm/comm/communicator.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/nn/param.hpp"
#include "zipflm/tensor/half.hpp"

namespace zipflm {

class DenseGradSync {
 public:
  explicit DenseGradSync(ExchangeOptions options = {}) : options_(options) {}

  /// ALLREDUCE-sum each parameter's gradient and divide by world size
  /// (data-parallel averaging).  FP16 mode down-casts with
  /// compression-scaling before the wire and up-casts after; a gradient
  /// wire codec in the options is armed around the allreduces.
  /// `override_opts`, when non-null, replaces the constructed options
  /// for this call only — the adaptive wire-format selector's hook on
  /// the non-overlapped path.
  void sync(Communicator& comm, std::span<Param* const> params,
            const ExchangeOptions* override_opts = nullptr) const;

  /// Re-point the wire options (precision / codec / scale) for
  /// subsequent steps — the adaptive selector's hook on the overlapped
  /// path, called per rank before begin_step.  Must not be called while
  /// a step is armed.
  void set_wire_options(const ExchangeOptions& options) noexcept {
    options_ = options;
  }

  // -- Overlapped bucketed path ---------------------------------------

  /// Jobs run inline at submit when off (the bitwise-reference mode).
  void set_overlap(bool on) noexcept { overlap_ = on; }
  bool overlap() const noexcept { return overlap_; }

  /// Target bucket payload (bytes of FP32 gradient).  Buckets are
  /// parameter-granular: a parameter larger than the target gets its
  /// own bucket.  Takes effect at the next begin_step.
  void set_bucket_bytes(std::size_t bytes) noexcept { bucket_bytes_ = bytes; }
  std::size_t bucket_bytes() const noexcept { return bucket_bytes_; }

  /// Arm one step: (re)build the bucket plan over reverse(params) —
  /// reverse-backprop order, so bucket 0 holds the parameters whose
  /// gradients finalize first — and reset per-bucket completion counts.
  /// The engine must flush through finish() before `params` gradients
  /// are read.  The plan is cached: same parameter list, same buckets.
  void begin_step(Communicator& comm, AsyncCommEngine& engine,
                  std::span<Param* const> params);

  /// Mark one parameter's gradient final (call from the layer's
  /// backward-completion hook, on the rank's main thread).  Launches
  /// the parameter's bucket once every member has reported.  Unknown
  /// parameters (not in the armed plan) are ignored.
  void notify_ready(const Param* param);

  /// Launch any buckets still incomplete (in plan order), drain the
  /// engine, and disarm.  After this every gradient in `params` is the
  /// world-averaged value, exactly as sync() would have left it.
  void finish();

  /// Buckets in the current (cached) plan — 0 before any begin_step.
  std::size_t plan_buckets() const noexcept { return plan_.size(); }

  /// Drop the armed engine without draining it — the exception path
  /// (e.g. a rank death unwinding the epoch), where the engine is about
  /// to be destroyed anyway.  No-op when not armed.
  void disarm() noexcept { engine_ = nullptr; }

  const ExchangeOptions& options() const noexcept { return options_; }

 private:
  struct Bucket {
    std::vector<Param*> params;   ///< plan order (reverse backprop)
    std::size_t floats = 0;
    std::size_t pending = 0;      ///< params not yet notified this step
    bool launched = false;
    // Persistent FP16 wire scratch so the comm thread never allocates
    // per step (a fresh multi-MiB vector per bucket per step would
    // page-fault its way through the gradient footprint every
    // iteration).
    std::vector<Half> wire;
  };

  void rebuild_plan(std::span<Param* const> params);
  void launch_bucket(std::size_t index);
  void run_bucket(Communicator& comm, std::size_t index);

  ExchangeOptions options_;
  bool overlap_ = true;
  std::size_t bucket_bytes_ = std::size_t{4} << 20;

  std::vector<Bucket> plan_;
  std::vector<Param*> plan_params_;   ///< the list the plan was built on
  std::size_t plan_bucket_bytes_ = 0;
  std::unordered_map<const Param*, std::size_t> bucket_of_;
  AsyncCommEngine* engine_ = nullptr;  ///< non-null while armed
  int world_ = 1;
};

}  // namespace zipflm
