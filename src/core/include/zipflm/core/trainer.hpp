// Data-parallel distributed LM trainer — the training loop of Section II
// with the paper's three optimizations switchable one by one, exactly as
// the Fig 6 ablation requires:
//
//   baseline        : dense ALLGATHER embedding exchange, FP32 wire,
//                     per-rank softmax seeds
//   +uniqueness     : UniqueExchange on both embedding layers
//   +seeding        : controlled seed groups for the sampled softmax
//   +compression    : FP16 wire with compression-scaling
//
// Each simulated GPU rank owns a full model replica, a simulated memory
// pool, and an optimizer; every synchronization runs through the
// CommWorld's collectives, so the traffic ledger and pool high-water
// marks are exact measurements, and the invariant "all replicas remain
// bit-identical across steps" is continuously testable.
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/core/exchange.hpp"
#include "zipflm/core/grad_sync.hpp"
#include "zipflm/core/sharded_exchange.hpp"
#include "zipflm/core/seeding.hpp"
#include "zipflm/core/strategy_select.hpp"
#include "zipflm/data/batch.hpp"
#include "zipflm/device/device.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/nn/loss_scaler.hpp"
#include "zipflm/nn/optimizer.hpp"

namespace zipflm {

struct TrainerOptions {
  bool unique_exchange = true;    ///< Section III-A
  WirePrecision wire = WirePrecision::FP32;  ///< Section III-C
  float compression_scale = 1024.0f;
  /// Gradient wire codec for the sum-allreduces (dense buckets and the
  /// UNIQUE M block): Packed is lossless byte-plane+RLE (bitwise
  /// identical results); Int8 quantizes each ring chunk with a per-chunk
  /// FP32 scale (deterministic, epsilon-gated on accuracy).
  WireCodec wire_codec = WireCodec::None;
  /// Delta+varint-code the index allgatherv legs (always lossless).
  bool index_codec = false;
  /// Two-level node/leader allreduce for the dense parameters (pays off
  /// on NVLink-class nodes; see bench_ablation_hierarchical).
  bool hierarchical_dense_sync = false;
  SeedPolicy seed_policy = SeedPolicy::PerRank;  ///< Section III-B
  Index samples_per_rank = 0;     ///< S; 0 = full softmax (char LM)

  BatchSpec batch;
  float base_lr = 0.2f;           ///< paper's 8-GPU base rates
  float lr_decay = 0.9f;          ///< per-epoch decay (paper: 0.85-0.95)
  float clip = 1.0f;              ///< gradient clip (0 disables)
  bool use_adam = false;          ///< Adam for char LM, SGD for word LM
  std::uint64_t seed = 42;

  DeviceProps device = DeviceProps::titan_x();
  double compute_efficiency = 0.4;  ///< fraction of peak FLOP/s achieved
  /// Charge model + activations against the simulated pool (disable for
  /// tiny unit-test models where the accounting is noise).
  bool charge_static_memory = true;
  /// Dynamic loss-scaler overflow policy: when any synchronized gradient
  /// comes back non-finite (e.g. a corrupted wire payload), every rank
  /// deterministically skips the optimizer step and backs the scale off
  /// instead of poisoning the weights.  Off by default — the guard scans
  /// every gradient each step, and existing trajectories must not move.
  bool dynamic_loss_scale = false;
  float initial_loss_scale = 1024.0f;
  /// When > 0, dense rank 0 refreshes the expensive "train/..." gauges
  /// (grad_norm, tokens_per_s) every N optimizer steps and invokes
  /// metrics_sink (when set) with the global step index.  The sink runs
  /// on rank 0's thread, mid-epoch — keep it cheap and thread-safe.
  int metrics_every = 0;
  std::function<void(std::uint64_t global_step)> metrics_sink;

  /// Overlapped bucketed gradient exchange: pack the dense gradients
  /// into fixed-byte buckets in reverse-backprop order and launch each
  /// bucket's allreduce on a per-rank comm thread the moment its last
  /// parameter's backward completes; the embedding index allgather is
  /// kicked off eagerly at step start.  Bitwise identical to the
  /// synchronous path (fixed bucket boundaries, fixed ring schedules —
  /// tests/test_async_exchange.cpp asserts `==`).  Off by default
  /// because bucketing changes the per-rank collective schedule, which
  /// would silently invalidate recorded fault-injection points
  /// (FaultSpec::at_collective counts collectives) and per-collective
  /// ledger expectations of existing configs.
  bool overlapped_exchange = false;
  std::size_t overlap_bucket_bytes = std::size_t{4} << 20;
  /// Per-step input-embedding strategy selection (core/strategy_select):
  /// price allgather-dense vs unique vs hierarchical-unique with the
  /// comm cost model and the previous step's measured U_g, switch with
  /// hysteresis.  Replaces the static unique_exchange choice when on;
  /// decisions are logged per rank (strategy_selector()).
  bool adaptive_exchange = false;
  double strategy_hysteresis = 0.2;
  /// Row-shard the input embedding table across ranks (char LM only):
  /// rank r owns rows [r*V/G, (r+1)*V/G) plus their Adam moment slices,
  /// forward rows are pulled per step and gradient rows pushed to their
  /// owners over alltoallv.  The model factory must build matching
  /// shards (CharLmConfig::shard_rank/shard_world = rank/world).
  /// Replicated mode stays the default and the bitwise test oracle:
  /// sharded losses and assembled weights are `==` replicated ones.
  /// Requires FP32 wire, static (non-adaptive) exchange, and no dynamic
  /// loss scaling; Packed/index codecs apply to the row payloads.
  bool shard_embedding = false;
  /// Let the selector also arbitrate the gradient wire format (FP32 /
  /// FP16 / Packed / Int8) per step, fed back with the measured
  /// compression ratios.  Requires adaptive_exchange; the arbitration is
  /// lockstep for the same reason the kind choice is.
  bool adaptive_wire_format = false;
};

struct EpochStats {
  double train_loss = 0.0;      ///< mean training CE (nats/token)
  double valid_loss = 0.0;      ///< full-vocabulary CE on the valid set
  double valid_perplexity = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t skipped_steps = 0;  ///< overflow-guard skips (per rank)
  int restarts = 0;  ///< fault rollbacks consumed (resilient epochs only)
  std::uint64_t global_unique_sum = 0;  ///< Σ over steps of U_g (input emb)
  TrafficLedger comm_total;     ///< summed over ranks, this epoch
  std::uint64_t peak_memory_bytes = 0;  ///< max over ranks
  double sim_comm_seconds = 0.0;     ///< critical path (max over ranks)
  double sim_compute_seconds = 0.0;  ///< per-rank compute time
  double sim_total_seconds = 0.0;
};

class DistributedTrainer {
 public:
  /// The factory must return identically-initialized replicas (same
  /// seeds) regardless of rank — the trainer verifies this invariant.
  using ModelFactory = std::function<std::unique_ptr<LmModel>(int rank)>;

  DistributedTrainer(CommWorld& world, const ModelFactory& factory,
                     TrainerOptions options);

  /// One epoch over train_ids (sharded across ranks) followed by a
  /// full-vocabulary evaluation over valid_ids.
  EpochStats run_epoch(std::span<const Index> train_ids,
                       std::span<const Index> valid_ids, int epoch);

  /// Fault-tolerant epoch: checkpoints the full training state to
  /// `checkpoint_path` before starting, and on CollectiveTimeoutError
  /// (a rank died mid-epoch) rolls every surviving replica back to that
  /// checkpoint and reruns the epoch over the surviving ranks only —
  /// the dead rank was already retired by CommWorld::run.  Gives up
  /// (rethrows) after `max_restarts` rollbacks.
  EpochStats run_epoch_resilient(std::span<const Index> train_ids,
                                 std::span<const Index> valid_ids, int epoch,
                                 const std::string& checkpoint_path,
                                 int max_restarts = 2);

  /// Full-vocabulary validation loss (nats/token).
  double evaluate(std::span<const Index> valid_ids);

  /// Write a v2 checkpoint carrying parameters, optimizer moments,
  /// loss-scaler policy, and every rank's dropout RNG stream — enough
  /// that a restored run continues bitwise identically to one that was
  /// never interrupted.  The file variant writes atomically.
  void save_state(std::ostream& out);
  void save_state_file(const std::string& path);
  /// Restore all replicas from a checkpoint written by save_state.
  /// Throws ConfigError if the checkpoint carries no training state.
  /// Sharded trainers write the canonical replicated layout (the full
  /// assembled table + moments), so a checkpoint saved at any world
  /// size restores into any other — pass allow_world_resize=true to
  /// accept a rank count mismatch (weights and moments re-shard
  /// exactly; the per-rank dropout streams, which only exist for the
  /// saved ranks, are restored for the ranks both runs share, so
  /// bitwise resume is only guaranteed at the saved world size).
  void restore_state(std::istream& in, bool allow_world_resize = false);
  void restore_state_file(const std::string& path,
                          bool allow_world_resize = false);

  std::uint64_t global_step() const noexcept { return global_step_; }
  std::uint64_t epochs_completed() const noexcept {
    return epochs_completed_;
  }

  LmModel& model(int rank);
  const MemoryPool& pool(int rank) const;
  const TrainerOptions& options() const noexcept { return options_; }

  /// True iff every live replica's parameters are bit-identical to the
  /// first live rank's.
  bool replicas_in_sync();

  /// The per-rank strategy decision log (adaptive_exchange only, else
  /// nullptr).  Every rank's log is identical — lockstep selection.
  const ExchangeStrategySelector* strategy_selector(int rank) const;

 private:
  /// Returns false when the overflow guard skipped the optimizer step.
  /// `exchange` is the strategy for this step (adaptive selection);
  /// `overlap_sync`/`pending` are the armed overlap state, or nullptr
  /// for the synchronous path; `fmt_opts` overrides the dense sync's
  /// wire options for this step (adaptive wire format), or nullptr.
  bool sync_step(Communicator& comm, LmModel& model, Optimizer& opt,
                 MemoryPool& pool, LossScaler* scaler,
                 const LmStepResult& res, std::uint64_t* unique_out,
                 EmbeddingExchange* exchange, DenseGradSync* overlap_sync,
                 const PendingIdGather* pending,
                 const ExchangeOptions* fmt_opts);

  EmbeddingExchange* exchange_for(ExchangeKind kind, WireFormat format);

  /// The replicated param layout of one rank, with the sharded table
  /// entry (when present) redirected to `full` — the canonical
  /// checkpoint parameter list.
  std::vector<Param*> checkpoint_params(LmModel& model, Param& full) const;

  CommWorld& world_;
  TrainerOptions options_;
  std::unique_ptr<EmbeddingExchange> exchange_;
  /// Non-null iff options_.shard_embedding: the pull/push strategy that
  /// exchange_ owns, typed for the per-step pull calls.
  ShardedEmbeddingExchange* sharded_exchange_ = nullptr;
  /// Strategy instances indexed by ExchangeKind — or by
  /// kind * kWireFormatCount + format under adaptive_wire_format
  /// (adaptive mode only; stateless and shared across rank threads like
  /// exchange_).
  std::vector<std::unique_ptr<EmbeddingExchange>> kind_exchanges_;
  /// Per-format dense-sync options (adaptive_wire_format only).
  std::array<ExchangeOptions, kWireFormatCount> format_opts_{};
  std::vector<std::unique_ptr<ExchangeStrategySelector>> selectors_;
  DenseGradSync dense_sync_;
  std::vector<DenseGradSync> dense_syncs_;  ///< per rank (overlap mode)
  std::optional<ControlledSampler> sampler_;
  std::vector<std::unique_ptr<LmModel>> models_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
  std::vector<std::unique_ptr<MemoryPool>> pools_;
  std::vector<LossScaler> scalers_;  ///< per rank; empty unless dynamic
  std::vector<Allocation> static_memory_;
  std::uint64_t global_step_ = 0;
  std::uint64_t epochs_completed_ = 0;
};

}  // namespace zipflm
