// Controlled seeding of the sampled-softmax layer (Section III-B).
//
// Independent per-rank sampling destroys index overlap across ranks in
// the output embedding: the union of G·S uniform samples has almost no
// repeats, so the uniqueness technique buys nothing there.  Sharing one
// seed across all ranks restores overlap but kills sample diversity and
// degrades accuracy.  The paper's middle ground: split the G ranks into
// a controlled number of seed groups — ranks in a group draw identical
// sample sets; the group count spans a spectrum from G (fully
// independent) to 1 (fully shared), with the power-law count G^0.64
// ("Zipf's-freq") empirically pareto-optimal (Fig 7).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "zipflm/data/zipf.hpp"
#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

enum class SeedPolicy : std::uint8_t {
  PerRank,    ///< G distinct seeds (the accuracy reference, poor scaling)
  SharedAll,  ///< 1 seed (best scaling, poor accuracy)
  Log2G,      ///< ceil(log2 G) groups
  LogEG,      ///< ceil(ln G) groups
  Log10G,     ///< ceil(log10 G) groups
  ZipfFreq,   ///< ceil(G^0.64) groups — the paper's pareto-optimal pick
};

const char* to_string(SeedPolicy policy);

/// Number of distinct seed groups a policy uses for G ranks (>= 1).
int seed_group_count(SeedPolicy policy, int world_size);

/// Group of a rank: ranks are dealt into groups round-robin so groups
/// stay balanced for any G.
int seed_group_of(SeedPolicy policy, int rank, int world_size);

/// The sampled-softmax candidate sampler with controlled seeding.
///
/// Samples follow the word-frequency power law (a Zipf proposal over the
/// vocabulary, the "controlled randomization that obeys the power-law"),
/// so frequent words recur across groups and steps, which is precisely
/// what keeps the global unique-candidate count sublinear.
class ControlledSampler {
 public:
  /// vocab: output vocabulary size; samples_per_rank: S (paper: 1024);
  /// proposal_exponent: Zipf exponent of the proposal distribution.
  ControlledSampler(Index vocab, Index samples_per_rank,
                    SeedPolicy policy, std::uint64_t base_seed,
                    double proposal_exponent = 1.0);

  /// Candidate set for one rank at one training step: S power-law draws
  /// from this rank's seed-group stream, deduplicated and merged with the
  /// rank's batch targets (which must always be scoreable).  Returned ids
  /// are sorted and unique.
  std::vector<Index> candidates(int rank, int world_size, std::uint64_t step,
                                std::span<const Index> targets) const;

  /// Just the shared group draws (no targets) — used by tests and by the
  /// unique-candidate growth experiment.
  std::vector<Index> group_samples(int group, std::uint64_t step) const;

  /// log E[count(candidate)] under this sampler's proposal, for the
  /// sampled-softmax de-biasing correction (one entry per candidate).
  std::vector<float> log_expected_counts(
      std::span<const Index> candidates) const;

  Index samples_per_rank() const noexcept { return samples_; }
  SeedPolicy policy() const noexcept { return policy_; }

 private:
  Index vocab_;
  Index samples_;
  SeedPolicy policy_;
  std::uint64_t base_seed_;
  ZipfSampler proposal_;
  ZipfMandelbrot proposal_pmf_;
};

}  // namespace zipflm
