// Per-step embedding-exchange strategy selection.
//
// The paper fixes one exchange strategy per run; in practice the right
// choice moves with the measured uniqueness U_g (Zipf means U_g is far
// below G·K most steps, but a batch of rare words can push it up) and
// with the topology (a two-level allreduce of the U_g x D block only
// pays once the ring crosses nodes).  The selector prices each strategy
// with comm::CostModel's closed forms using the *previous* step's
// measured U_g — a globally consistent quantity, so every rank prices
// identically and the chosen collective sequence stays uniform without
// a vote (the same lockstep trick the dynamic loss scaler uses).
//
// Hysteresis: a challenger must predict at least `hysteresis`
// (default 20%) cheaper than the incumbent before the selector
// switches, so noise in U_g cannot flap the strategy step to step.
//
// Every decision is appended to a log carrying its inputs (U_g) and
// predicted costs, so a run's choices are replayable offline:
// feeding the logged U_g back through predict() must reproduce the
// logged choice (tests/test_async_exchange.cpp does exactly that).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "zipflm/comm/cost_model.hpp"
#include "zipflm/comm/topology.hpp"
#include "zipflm/core/exchange.hpp"

namespace zipflm {

enum class ExchangeKind : std::uint8_t {
  Unique = 0,            ///< UNIQUE with a flat ring allreduce of M
  DenseAllgather = 1,    ///< the Θ(G·K·D) ALLGATHER baseline
  HierarchicalUnique = 2 ///< UNIQUE with the two-level node/leader allreduce
};

const char* exchange_kind_name(ExchangeKind kind) noexcept;

struct StrategyDecision {
  std::uint64_t step = 0;
  std::uint64_t ug = 0;  ///< the U_g the prediction used (previous step's)
  ExchangeKind choice = ExchangeKind::Unique;
  std::array<double, 3> predicted_seconds{};  ///< indexed by ExchangeKind
  bool switched = false;
};

class ExchangeStrategySelector {
 public:
  struct Config {
    Index vocab = 0;
    Index dim = 0;
    WirePrecision wire = WirePrecision::FP32;
    std::uint64_t tokens_per_rank = 0;  ///< K
    double hysteresis = 0.2;
    ExchangeKind initial = ExchangeKind::Unique;
  };

  ExchangeStrategySelector(Config config, CostModel cost, Topology topo);

  /// Price the three strategies for one step.  Pure: same inputs, same
  /// costs on every rank — this is what makes a log replayable.
  static std::array<double, 3> predict(const Config& config,
                                       const CostModel& cost,
                                       const Topology& topo,
                                       std::uint64_t ug);

  /// Decide the strategy for the coming step from the last observed
  /// U_g (an upper bound min(G·K, V) before the first observation).
  /// Appends to the decision log.
  ExchangeKind choose();

  /// Record the step's measured global uniqueness after the exchange.
  void observe_unique(std::uint64_t ug);

  ExchangeKind current() const noexcept { return current_; }
  const std::vector<StrategyDecision>& log() const noexcept { return log_; }
  const Config& config() const noexcept { return config_; }
  const CostModel& cost_model() const noexcept { return cost_; }
  const Topology& topology() const noexcept { return topo_; }

 private:
  Config config_;
  CostModel cost_;
  Topology topo_;
  ExchangeKind current_;
  std::uint64_t step_ = 0;
  std::uint64_t last_ug_ = 0;
  bool observed_ = false;
  std::vector<StrategyDecision> log_;
};

}  // namespace zipflm
