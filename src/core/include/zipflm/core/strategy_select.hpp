// Per-step embedding-exchange strategy selection.
//
// The paper fixes one exchange strategy per run; in practice the right
// choice moves with the measured uniqueness U_g (Zipf means U_g is far
// below G·K most steps, but a batch of rare words can push it up) and
// with the topology (a two-level allreduce of the U_g x D block only
// pays once the ring crosses nodes).  The selector prices each strategy
// with comm::CostModel's closed forms using the *previous* step's
// measured U_g — a globally consistent quantity, so every rank prices
// identically and the chosen collective sequence stays uniform without
// a vote (the same lockstep trick the dynamic loss scaler uses).
//
// Hysteresis: a challenger must predict at least `hysteresis`
// (default 20%) cheaper than the incumbent before the selector
// switches, so noise in U_g cannot flap the strategy step to step.
//
// Every decision is appended to a log carrying its inputs (U_g) and
// predicted costs, so a run's choices are replayable offline:
// feeding the logged U_g back through predict() must reproduce the
// logged choice (tests/test_async_exchange.cpp does exactly that).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "zipflm/comm/cost_model.hpp"
#include "zipflm/comm/topology.hpp"
#include "zipflm/core/exchange.hpp"

namespace zipflm {

enum class ExchangeKind : std::uint8_t {
  Unique = 0,            ///< UNIQUE with a flat ring allreduce of M
  DenseAllgather = 1,    ///< the Θ(G·K·D) ALLGATHER baseline
  HierarchicalUnique = 2 ///< UNIQUE with the two-level node/leader allreduce
};

const char* exchange_kind_name(ExchangeKind kind) noexcept;

struct StrategyDecision {
  std::uint64_t step = 0;
  std::uint64_t ug = 0;  ///< the U_g the prediction used (previous step's)
  ExchangeKind choice = ExchangeKind::Unique;
  std::array<double, 3> predicted_seconds{};  ///< indexed by ExchangeKind
  bool switched = false;
  /// Wire-format arbitration (populated when Config::adapt_format):
  /// the format chosen for the gradient leg of `choice`, the per-format
  /// predicted seconds, and the compression-ratio estimates the
  /// prediction used — logging the ratios is what keeps the decision
  /// replayable offline after the priors have been updated by
  /// observe_format_ratio.
  WireFormat format = WireFormat::FP32;
  std::array<double, kWireFormatCount> predicted_format_seconds{};
  std::array<double, kWireFormatCount> ratio_used{};
  bool format_switched = false;
};

class ExchangeStrategySelector {
 public:
  struct Config {
    Index vocab = 0;
    Index dim = 0;
    WirePrecision wire = WirePrecision::FP32;
    std::uint64_t tokens_per_rank = 0;  ///< K
    double hysteresis = 0.2;
    ExchangeKind initial = ExchangeKind::Unique;
    /// Arbitrate the gradient wire format (FP32 / FP16 / Packed / Int8)
    /// alongside the strategy kind.  Coded formats are priced at
    /// infinity for DenseAllgather (no allreduce to code) and
    /// HierarchicalUnique (sub-communicator legs always move raw
    /// bytes), so they can only win on the flat UNIQUE ring.
    bool adapt_format = false;
    WireFormat initial_format = WireFormat::FP32;
    /// Conversion throughputs of the two codecs, calibrated from
    /// bench_exchange_micro's BM_*RoundTrip figures on the 1-core AVX2
    /// container (see EXPERIMENTS.md): packed ~9.3 ns/elem round trip
    /// on dense FP32, int8 ~1.6 ns/elem.
    CodecCost packed_cost{7.0e8, 1.1e9};
    CodecCost int8_cost{5.0e9, 5.0e9};
    /// Per-format wire-compression priors (encoded / logical bytes),
    /// replaced by measured ratios as collectives report them.  FP32 and
    /// FP16 are exactly 1 at their own wire width; Packed rarely beats
    /// ~0.95 on dense gradients; Int8 is structurally ~0.26
    /// (1 byte/elem + per-chunk scale over 4 bytes/elem).
    std::array<double, kWireFormatCount> initial_format_ratio{1.0, 1.0, 0.95,
                                                              0.26};
  };

  ExchangeStrategySelector(Config config, CostModel cost, Topology topo);

  /// Price the three strategies for one step.  Pure: same inputs, same
  /// costs on every rank — this is what makes a log replayable.
  static std::array<double, 3> predict(const Config& config,
                                       const CostModel& cost,
                                       const Topology& topo,
                                       std::uint64_t ug);

  /// Price the gradient leg of `kind` under each wire format: wire
  /// seconds at the (ratio-scaled) encoded size plus the codec's
  /// encode+decode conversion time.  Pure for the same reason as
  /// predict() — replaying a logged decision feeds back `ratios` from
  /// the log, not the live priors.
  static std::array<double, kWireFormatCount> predict_format(
      const Config& config, const CostModel& cost, const Topology& topo,
      std::uint64_t ug, ExchangeKind kind,
      const std::array<double, kWireFormatCount>& ratios);

  /// Decide the strategy for the coming step from the last observed
  /// U_g (an upper bound min(G·K, V) before the first observation).
  /// With adapt_format, also arbitrates the wire format for the chosen
  /// kind (same hysteresis margin).  Appends to the decision log.
  ExchangeKind choose();

  /// Record the step's measured global uniqueness after the exchange.
  void observe_unique(std::uint64_t ug);

  /// Record a measured compression ratio (Communicator::
  /// last_codec_ratio()) for one format.  Ignored unless positive.
  /// Safe for lockstep: the ratio is globally consistent by
  /// construction, so every rank updates identically.
  void observe_format_ratio(WireFormat format, double ratio);

  ExchangeKind current() const noexcept { return current_; }
  WireFormat current_format() const noexcept { return current_format_; }
  const std::array<double, kWireFormatCount>& format_ratios() const noexcept {
    return format_ratio_;
  }
  const std::vector<StrategyDecision>& log() const noexcept { return log_; }
  const Config& config() const noexcept { return config_; }
  const CostModel& cost_model() const noexcept { return cost_; }
  const Topology& topology() const noexcept { return topo_; }

 private:
  Config config_;
  CostModel cost_;
  Topology topo_;
  ExchangeKind current_;
  WireFormat current_format_;
  std::array<double, kWireFormatCount> format_ratio_;
  std::uint64_t step_ = 0;
  std::uint64_t last_ug_ = 0;
  bool observed_ = false;
  std::vector<StrategyDecision> log_;
};

}  // namespace zipflm
