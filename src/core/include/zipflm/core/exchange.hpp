// Embedding-gradient synchronization strategies — the heart of the paper.
//
// Problem (Section II): after backward, every rank holds a dense K x D
// gradient block ∆ whose rows map to *different* vocabulary rows on
// different ranks, so a plain ALLREDUCE is impossible.
//
//  * DenseExchange — the state-of-the-art baseline: ALLGATHER all G
//    blocks (Θ(G·K·D) memory and wire bytes per rank), then apply all
//    G·K token gradients locally in rank-major token order.
//  * UniqueExchange — Section III-A: exploit U ≪ N.  Locally reduce ∆ by
//    unique word, ALLGATHER only the K indices (Θ(G·K)), compute the
//    globally-consistent unique index set Î, scatter local sums into the
//    shared U_g x D layout M, ALLREDUCE M (Θ(U_g·D)), apply.
//
// Both strategies return the identical logical result: the globally
// summed gradient for every touched vocabulary row, with a vocabulary-
// consistent (sorted) id order on every rank.
//
// Wire precision is selectable (Section III-C): FP32, or FP16 with
// compression-scaling.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "zipflm/comm/async_exchange.hpp"
#include "zipflm/comm/communicator.hpp"
#include "zipflm/device/device.hpp"
#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

enum class WirePrecision : std::uint8_t { FP32, FP16 };

/// Wire format of the gradient leg: the (precision, codec) pair the
/// strategy selector arbitrates per step.  FP32/FP16 are the raw
/// formats; Packed is FP32 payload under the lossless byte-plane codec;
/// Int8 is FP32 payload quantized to int8 with a per-chunk scale.
enum class WireFormat : std::uint8_t { FP32 = 0, FP16 = 1, Packed = 2, Int8 = 3 };

inline constexpr std::size_t kWireFormatCount = 4;

constexpr WirePrecision wire_format_precision(WireFormat f) {
  return f == WireFormat::FP16 ? WirePrecision::FP16 : WirePrecision::FP32;
}

constexpr WireCodec wire_format_codec(WireFormat f) {
  return f == WireFormat::Packed ? WireCodec::Packed
         : f == WireFormat::Int8 ? WireCodec::Int8
                                 : WireCodec::None;
}

constexpr const char* wire_format_name(WireFormat f) {
  switch (f) {
    case WireFormat::FP32:
      return "fp32";
    case WireFormat::FP16:
      return "fp16";
    case WireFormat::Packed:
      return "packed";
    case WireFormat::Int8:
      return "int8";
  }
  return "?";
}

struct ExchangeOptions {
  WirePrecision precision = WirePrecision::FP32;
  /// Compression-scaling factor F for FP16 (paper: 256 / 512 / 1024).
  float compression_scale = 1024.0f;
  /// Use the two-level node/leader allreduce where the communicator
  /// supports it (see comm/hierarchical.hpp for when this pays off).
  bool hierarchical_allreduce = false;
  /// Gradient wire codec armed (via WireCodecScope) around the
  /// strategy's sum-allreduces.  Ignored by the hierarchical path —
  /// sub-communicators keep their own (None) arming, so two-level legs
  /// always move raw bytes.
  WireCodec codec = WireCodec::None;
  /// Delta+varint-code the index allgatherv (all strategies share it).
  bool index_codec = false;
};

/// `base` re-pointed at one wire format: precision and codec follow the
/// format, every other knob is preserved.
constexpr ExchangeOptions with_wire_format(ExchangeOptions base, WireFormat f) {
  base.precision = wire_format_precision(f);
  base.codec = wire_format_codec(f);
  return base;
}

/// An index ALLGATHER kicked off eagerly — the token ids are known at
/// batch time, long before backward produces the gradient rows — so the
/// Θ(G·K) id exchange rides the comm thread under forward+backward.
/// Arm with begin_id_gather(), flush the engine, then hand the result
/// to exchange(); every strategy consumes it in place of its own id
/// ALLGATHER.
struct PendingIdGather {
  bool armed = false;
  bool coded = false;          ///< gathered through the index varint codec
  std::vector<Index> ids;      ///< this rank's contribution (owned copy)
  std::vector<Index> all_ids;  ///< gathered, rank-major — job output
};

void begin_id_gather(AsyncCommEngine& engine, std::span<const Index> ids,
                     PendingIdGather& out, bool index_codec = false);

/// The id ALLGATHER every strategy starts from: consume an armed
/// PendingIdGather (asserting it was built from these ids) or run the
/// collective inline, varint-coded when index_codec is set.
void gather_ids(Communicator& comm, std::span<const Index> ids,
                const PendingIdGather* pending, std::vector<Index>& all_ids,
                bool index_codec);

class EmbeddingExchange {
 public:
  virtual ~EmbeddingExchange() = default;

  /// Synchronize one step's sparse embedding gradient.
  ///
  /// ids:   this rank's K token ids (repeats allowed);
  /// delta: [K x D] per-token gradient rows;
  /// out_ids / out_rows: globally unique touched rows and their global
  ///   gradient sums — identical content on every rank;
  /// pool:  optional simulated-GPU pool charged for the scratch this
  ///   strategy needs (this is where the baseline OOMs);
  /// pending: an already-gathered id set from begin_id_gather (must
  ///   have been built from these same ids and flushed), or nullptr to
  ///   gather inline.
  virtual void exchange(Communicator& comm, std::span<const Index> ids,
                        const Tensor& delta, std::vector<Index>& out_ids,
                        Tensor& out_rows, MemoryPool* pool = nullptr,
                        const PendingIdGather* pending = nullptr) = 0;

  virtual const char* name() const noexcept = 0;
};

class DenseExchange final : public EmbeddingExchange {
 public:
  explicit DenseExchange(ExchangeOptions options = {}) : options_(options) {}

  void exchange(Communicator& comm, std::span<const Index> ids,
                const Tensor& delta, std::vector<Index>& out_ids,
                Tensor& out_rows, MemoryPool* pool = nullptr,
                const PendingIdGather* pending = nullptr) override;
  const char* name() const noexcept override { return "dense-allgather"; }

 private:
  ExchangeOptions options_;
};

class UniqueExchange final : public EmbeddingExchange {
 public:
  explicit UniqueExchange(ExchangeOptions options = {}) : options_(options) {}

  void exchange(Communicator& comm, std::span<const Index> ids,
                const Tensor& delta, std::vector<Index>& out_ids,
                Tensor& out_rows, MemoryPool* pool = nullptr,
                const PendingIdGather* pending = nullptr) override;
  const char* name() const noexcept override { return "unique"; }

 private:
  ExchangeOptions options_;
};

/// The third road not taken by the paper: materialize the sparse
/// gradient into a dense |V| x D table (TF's IndexedSlices-to-dense
/// conversion) and ALLREDUCE the whole table — Θ(V·D) wire and scratch
/// regardless of the batch.  Beats the ALLGATHER baseline once
/// G·K > |V|, but is always dominated by UNIQUE (U_g <= min(V, G·K));
/// bench_ablation_table_allreduce maps the crossovers.
class TableAllreduceExchange final : public EmbeddingExchange {
 public:
  TableAllreduceExchange(Index vocab, ExchangeOptions options = {})
      : vocab_(vocab), options_(options) {
    ZIPFLM_CHECK(vocab > 0, "table exchange needs the vocabulary size");
  }

  void exchange(Communicator& comm, std::span<const Index> ids,
                const Tensor& delta, std::vector<Index>& out_ids,
                Tensor& out_rows, MemoryPool* pool = nullptr,
                const PendingIdGather* pending = nullptr) override;
  const char* name() const noexcept override { return "table-allreduce"; }

 private:
  Index vocab_;
  ExchangeOptions options_;
};

/// Local reduction (steps 1–2 of the paper's procedure): collapse the
/// K x D token-gradient block to a U_local x D unique-word block.
/// unique_ids comes back sorted; accumulation happens in ascending token
/// position order for determinism.  Exposed for tests and reuse.
void local_reduce_by_word(std::span<const Index> ids, const Tensor& delta,
                          std::vector<Index>& unique_ids, Tensor& reduced);

/// Closed-form *total* wire bytes (summed over all ranks, one direction)
/// of each strategy, verified bit-exactly against the executing
/// implementations' ledgers by tests.
///   dense:  G·(G-1)·K·(8 + D·w)            — ALLGATHER ids + gradients
///   unique: G·(G-1)·K·8 + 2·(G-1)·U_g·D·w  — ALLGATHER ids + ALLREDUCE M
std::uint64_t dense_exchange_total_wire_bytes(int world, std::uint64_t tokens,
                                              std::uint64_t dim,
                                              WirePrecision precision);
std::uint64_t unique_exchange_total_wire_bytes(int world, std::uint64_t tokens,
                                               std::uint64_t global_unique,
                                               std::uint64_t dim,
                                               WirePrecision precision);

}  // namespace zipflm
