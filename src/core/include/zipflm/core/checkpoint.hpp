// Model checkpointing: versioned binary serialization of every named
// parameter, so multi-day runs (the paper's epochs are 14-35 *hours*)
// survive restarts, and so trained models can be shipped to evaluation
// or generation tools.
//
// Format v2: magic, version, metadata, then per parameter
// (name, rank, dims..., raw FP32 payload), then an optional training
// state section (optimizer moments, loss-scaler policy, per-rank RNG
// streams) and a trailing FNV-1a64 checksum over everything before it.
// Load validates the checksum first, then names and shapes against the
// receiving model — a half-written file from a crash mid-save, a
// loading a word-LM checkpoint into a char LM, or a flipped bit all
// fail loudly, not silently.
//
// The training state is what turns "load the weights" into *exact*
// resume: restoring it makes the continued run bitwise identical to one
// that never stopped.  File saves are atomic (temp file + rename), so a
// crash during save leaves the previous checkpoint intact.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "zipflm/nn/lm_model.hpp"
#include "zipflm/nn/loss_scaler.hpp"

namespace zipflm {

struct CheckpointMeta {
  std::uint64_t global_step = 0;
  std::uint64_t epoch = 0;
};

/// Everything beyond the parameters that exact resume needs.  Replicas
/// are bit-identical across ranks (a continuously tested invariant), so
/// one optimizer blob serves every rank; the RNG streams are saved per
/// global rank because each rank draws its own dropout masks.
struct TrainState {
  bool present = false;
  std::string optimizer_blob;  ///< Optimizer::save_state of one replica
  bool has_scaler = false;
  LossScaler::State scaler;
  /// xoshiro256** words of each rank's dropout stream, by global rank.
  std::vector<std::array<std::uint64_t, 4>> rank_rng;
};

/// Serialize all parameters of the model (plus metadata and, when given,
/// the training state) to the stream, checksummed.
void save_checkpoint(std::ostream& out, LmModel& model,
                     const CheckpointMeta& meta = {},
                     const TrainState* train = nullptr);

/// Same format over an explicit parameter list — used when the on-disk
/// canonical set differs from the live model's (a row-sharded trainer
/// saves the assembled full table under the replicated layout, so its
/// checkpoints load into any world size, including world 1).
void save_checkpoint(std::ostream& out, std::span<Param* const> params,
                     const CheckpointMeta& meta = {},
                     const TrainState* train = nullptr);

/// Restore parameters into an identically-shaped model.  Throws
/// ConfigError on checksum/magic/version/name/shape mismatch.  When
/// `train` is non-null it receives the training state section
/// (train->present says whether the checkpoint carried one).  Returns
/// the saved metadata.
CheckpointMeta load_checkpoint(std::istream& in, LmModel& model,
                               TrainState* train = nullptr);

/// Explicit-parameter-list counterpart of the model load.
CheckpointMeta load_checkpoint(std::istream& in,
                               std::span<Param* const> params,
                               TrainState* train = nullptr);

/// Convenience file wrappers.  Saving is atomic: the bytes go to
/// `path + ".tmp"` and are renamed over `path` only once fully written,
/// so a crash mid-save cannot destroy the previous checkpoint.
void save_checkpoint_file(const std::string& path, LmModel& model,
                          const CheckpointMeta& meta = {},
                          const TrainState* train = nullptr);
CheckpointMeta load_checkpoint_file(const std::string& path, LmModel& model,
                                    TrainState* train = nullptr);

}  // namespace zipflm
