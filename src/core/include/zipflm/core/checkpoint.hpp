// Model checkpointing: versioned binary serialization of every named
// parameter, so multi-day runs (the paper's epochs are 14-35 *hours*)
// survive restarts, and so trained models can be shipped to evaluation
// or generation tools.
//
// Format: magic, version, param count, then per parameter
// (name, rank, dims..., raw FP32 payload).  Load validates names and
// shapes against the receiving model — loading a word-LM checkpoint into
// a char LM fails loudly, not silently.
#pragma once

#include <iosfwd>
#include <string>

#include "zipflm/nn/lm_model.hpp"

namespace zipflm {

struct CheckpointMeta {
  std::uint64_t global_step = 0;
  std::uint64_t epoch = 0;
};

/// Serialize all parameters of the model (plus metadata) to the stream.
void save_checkpoint(std::ostream& out, LmModel& model,
                     const CheckpointMeta& meta = {});

/// Restore parameters into an identically-shaped model.  Throws
/// ConfigError on magic/version/name/shape mismatch.  Returns the saved
/// metadata.
CheckpointMeta load_checkpoint(std::istream& in, LmModel& model);

/// Convenience file wrappers.
void save_checkpoint_file(const std::string& path, LmModel& model,
                          const CheckpointMeta& meta = {});
CheckpointMeta load_checkpoint_file(const std::string& path, LmModel& model);

}  // namespace zipflm
