#include "zipflm/core/seeding.hpp"

#include <algorithm>
#include <cmath>

namespace zipflm {

const char* to_string(SeedPolicy policy) {
  switch (policy) {
    case SeedPolicy::PerRank:
      return "G";
    case SeedPolicy::SharedAll:
      return "shared";
    case SeedPolicy::Log2G:
      return "log2G";
    case SeedPolicy::LogEG:
      return "logeG";
    case SeedPolicy::Log10G:
      return "log10G";
    case SeedPolicy::ZipfFreq:
      return "Zipf's-freq";
  }
  return "?";
}

int seed_group_count(SeedPolicy policy, int world_size) {
  ZIPFLM_CHECK(world_size >= 1, "world size must be positive");
  const double g = static_cast<double>(world_size);
  double groups = 1.0;
  switch (policy) {
    case SeedPolicy::PerRank:
      groups = g;
      break;
    case SeedPolicy::SharedAll:
      groups = 1.0;
      break;
    case SeedPolicy::Log2G:
      groups = std::ceil(std::log2(g));
      break;
    case SeedPolicy::LogEG:
      groups = std::ceil(std::log(g));
      break;
    case SeedPolicy::Log10G:
      groups = std::ceil(std::log10(g));
      break;
    case SeedPolicy::ZipfFreq:
      groups = std::ceil(std::pow(g, 0.64));
      break;
  }
  return std::clamp(static_cast<int>(groups), 1, world_size);
}

int seed_group_of(SeedPolicy policy, int rank, int world_size) {
  ZIPFLM_CHECK(rank >= 0 && rank < world_size, "rank out of range");
  return rank % seed_group_count(policy, world_size);
}

ControlledSampler::ControlledSampler(Index vocab, Index samples_per_rank,
                                     SeedPolicy policy,
                                     std::uint64_t base_seed,
                                     double proposal_exponent)
    : vocab_(vocab),
      samples_(samples_per_rank),
      policy_(policy),
      base_seed_(base_seed),
      proposal_(static_cast<std::uint64_t>(vocab), proposal_exponent,
                /*shift=*/1.0),
      proposal_pmf_(static_cast<std::uint64_t>(vocab), proposal_exponent,
                    /*shift=*/1.0) {
  ZIPFLM_CHECK(vocab > 0 && samples_per_rank > 0,
               "sampler needs a vocabulary and a sample count");
  ZIPFLM_CHECK(samples_per_rank <= vocab,
               "cannot sample more candidates than the vocabulary");
}

std::vector<Index> ControlledSampler::group_samples(int group,
                                                    std::uint64_t step) const {
  // Stream id mixes (group, step): every group advances its own
  // deterministic sequence; all ranks of a group see identical draws.
  Rng rng = Rng::fork(base_seed_,
                      0xC4AD1DA7Eull ^ (static_cast<std::uint64_t>(group) << 32) ^ step);
  std::vector<Index> out;
  out.reserve(static_cast<std::size_t>(samples_));
  for (Index i = 0; i < samples_; ++i) {
    out.push_back(static_cast<Index>(proposal_.sample(rng) - 1));
  }
  return out;
}

std::vector<float> ControlledSampler::log_expected_counts(
    std::span<const Index> candidates) const {
  std::vector<float> out(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Index id = candidates[i];
    ZIPFLM_CHECK(id >= 0 && id < vocab_, "candidate outside vocabulary");
    // E[count] = S * p(id) under i.i.d. proposal draws.
    out[i] = std::log(static_cast<float>(samples_) *
                      static_cast<float>(proposal_pmf_.pmf(
                          static_cast<std::uint64_t>(id) + 1)));
  }
  return out;
}

std::vector<Index> ControlledSampler::candidates(
    int rank, int world_size, std::uint64_t step,
    std::span<const Index> targets) const {
  const int group = seed_group_of(policy_, rank, world_size);
  std::vector<Index> ids = group_samples(group, step);
  ids.insert(ids.end(), targets.begin(), targets.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace zipflm
