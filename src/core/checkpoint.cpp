#include "zipflm/core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace zipflm {

namespace {

constexpr std::uint64_t kMagic = 0x5A49'5046'4C4D'4350ull;  // "ZIPFLMCP"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  ZIPFLM_CHECK(in.good(), "checkpoint stream truncated");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  ZIPFLM_CHECK(n < (1u << 20), "implausible string length in checkpoint");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  ZIPFLM_CHECK(in.good(), "checkpoint stream truncated");
  return s;
}

}  // namespace

void save_checkpoint(std::ostream& out, LmModel& model,
                     const CheckpointMeta& meta) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, meta.global_step);
  write_pod(out, meta.epoch);

  const auto params = model.all_params();
  write_pod<std::uint64_t>(out, params.size());
  for (const Param* p : params) {
    write_string(out, p->name);
    write_pod<std::uint32_t>(out,
                             static_cast<std::uint32_t>(p->value.rank()));
    for (const Index d : p->value.shape()) {
      write_pod<std::int64_t>(out, d);
    }
    out.write(reinterpret_cast<const char*>(p->value.data().data()),
              static_cast<std::streamsize>(p->value.bytes()));
  }
  ZIPFLM_CHECK(out.good(), "checkpoint write failed");
}

CheckpointMeta load_checkpoint(std::istream& in, LmModel& model) {
  ZIPFLM_CHECK(read_pod<std::uint64_t>(in) == kMagic,
               "not a zipflm checkpoint (bad magic)");
  ZIPFLM_CHECK(read_pod<std::uint32_t>(in) == kVersion,
               "unsupported checkpoint version");
  CheckpointMeta meta;
  meta.global_step = read_pod<std::uint64_t>(in);
  meta.epoch = read_pod<std::uint64_t>(in);

  const auto params = model.all_params();
  const auto count = read_pod<std::uint64_t>(in);
  ZIPFLM_CHECK(count == params.size(),
               "checkpoint parameter count does not match the model");
  for (Param* p : params) {
    const std::string name = read_string(in);
    ZIPFLM_CHECK(name == p->name,
                 "checkpoint parameter '" + name +
                     "' does not match model parameter '" + p->name + "'");
    const auto rank = read_pod<std::uint32_t>(in);
    ZIPFLM_CHECK(rank == static_cast<std::uint32_t>(p->value.rank()),
                 "checkpoint rank mismatch for " + name);
    for (const Index d : p->value.shape()) {
      ZIPFLM_CHECK(read_pod<std::int64_t>(in) == d,
                   "checkpoint shape mismatch for " + name);
    }
    in.read(reinterpret_cast<char*>(p->value.data().data()),
            static_cast<std::streamsize>(p->value.bytes()));
    ZIPFLM_CHECK(in.good(), "checkpoint payload truncated for " + name);
  }
  return meta;
}

void save_checkpoint_file(const std::string& path, LmModel& model,
                          const CheckpointMeta& meta) {
  std::ofstream out(path, std::ios::binary);
  ZIPFLM_CHECK(out.is_open(), "cannot open checkpoint file: " + path);
  save_checkpoint(out, model, meta);
}

CheckpointMeta load_checkpoint_file(const std::string& path, LmModel& model) {
  std::ifstream in(path, std::ios::binary);
  ZIPFLM_CHECK(in.is_open(), "cannot open checkpoint file: " + path);
  return load_checkpoint(in, model);
}

}  // namespace zipflm
