#include "zipflm/core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "zipflm/support/serialize.hpp"

namespace zipflm {

namespace {

constexpr std::uint64_t kMagic = 0x5A49'5046'4C4D'4350ull;  // "ZIPFLMCP"
constexpr std::uint32_t kVersion = 2;

void write_body(std::ostream& out, std::span<Param* const> params,
                const CheckpointMeta& meta, const TrainState* train) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, meta.global_step);
  write_pod(out, meta.epoch);

  write_pod<std::uint64_t>(out, params.size());
  for (const Param* p : params) {
    write_string(out, p->name);
    write_pod<std::uint32_t>(out,
                             static_cast<std::uint32_t>(p->value.rank()));
    for (const Index d : p->value.shape()) {
      write_pod<std::int64_t>(out, d);
    }
    out.write(reinterpret_cast<const char*>(p->value.data().data()),
              static_cast<std::streamsize>(p->value.bytes()));
  }

  write_pod<std::uint8_t>(out, train != nullptr ? 1 : 0);
  if (train != nullptr) {
    write_string(out, train->optimizer_blob);
    write_pod<std::uint8_t>(out, train->has_scaler ? 1 : 0);
    if (train->has_scaler) {
      write_pod(out, train->scaler.scale);
      write_pod(out, train->scaler.good_streak);
      write_pod(out, train->scaler.skipped);
    }
    write_pod<std::uint64_t>(out, train->rank_rng.size());
    for (const auto& words : train->rank_rng) {
      for (const std::uint64_t w : words) write_pod(out, w);
    }
  }
}

CheckpointMeta read_body(std::istream& in, std::span<Param* const> params,
                         TrainState* train) {
  ZIPFLM_CHECK(read_pod<std::uint64_t>(in) == kMagic,
               "not a zipflm checkpoint (bad magic)");
  const auto version = read_pod<std::uint32_t>(in);
  ZIPFLM_CHECK(version == kVersion,
               "unsupported checkpoint version " + std::to_string(version) +
                   " (this build reads version " + std::to_string(kVersion) +
                   " only)");
  CheckpointMeta meta;
  meta.global_step = read_pod<std::uint64_t>(in);
  meta.epoch = read_pod<std::uint64_t>(in);

  const auto count = read_pod<std::uint64_t>(in);
  ZIPFLM_CHECK(count == params.size(),
               "checkpoint parameter count does not match the model");
  for (Param* p : params) {
    const std::string name = read_string(in);
    ZIPFLM_CHECK(name == p->name,
                 "checkpoint parameter '" + name +
                     "' does not match model parameter '" + p->name + "'");
    const auto rank = read_pod<std::uint32_t>(in);
    ZIPFLM_CHECK(rank == static_cast<std::uint32_t>(p->value.rank()),
                 "checkpoint rank mismatch for " + name);
    for (const Index d : p->value.shape()) {
      ZIPFLM_CHECK(read_pod<std::int64_t>(in) == d,
                   "checkpoint shape mismatch for " + name);
    }
    in.read(reinterpret_cast<char*>(p->value.data().data()),
            static_cast<std::streamsize>(p->value.bytes()));
    ZIPFLM_CHECK(in.good(), "checkpoint payload truncated for " + name);
  }

  TrainState parsed;
  if (read_pod<std::uint8_t>(in) != 0) {
    parsed.present = true;
    // Optimizer blobs scale with the model (2 FP32 moments per weight).
    parsed.optimizer_blob = read_string(in, std::uint64_t{1} << 40);
    if (read_pod<std::uint8_t>(in) != 0) {
      parsed.has_scaler = true;
      parsed.scaler.scale = read_pod<float>(in);
      parsed.scaler.good_streak = read_pod<std::int32_t>(in);
      parsed.scaler.skipped = read_pod<std::int32_t>(in);
    }
    const auto ranks = read_pod<std::uint64_t>(in);
    ZIPFLM_CHECK(ranks < (1u << 20), "implausible rank count in checkpoint");
    parsed.rank_rng.resize(ranks);
    for (auto& words : parsed.rank_rng) {
      for (std::uint64_t& w : words) w = read_pod<std::uint64_t>(in);
    }
  }
  if (train != nullptr) *train = std::move(parsed);
  return meta;
}

}  // namespace

void save_checkpoint(std::ostream& out, std::span<Param* const> params,
                     const CheckpointMeta& meta, const TrainState* train) {
  // Buffer the body so the checksum can trail it in one write.
  std::ostringstream body(std::ios::binary);
  write_body(body, params, meta, train);
  const std::string bytes = body.str();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  write_pod(out, fnv1a64(bytes));
  ZIPFLM_CHECK(out.good(), "checkpoint write failed");
}

void save_checkpoint(std::ostream& out, LmModel& model,
                     const CheckpointMeta& meta, const TrainState* train) {
  const auto params = model.all_params();
  save_checkpoint(out, params, meta, train);
}

CheckpointMeta load_checkpoint(std::istream& in,
                               std::span<Param* const> params,
                               TrainState* train) {
  const std::string raw(std::istreambuf_iterator<char>(in), {});
  ZIPFLM_CHECK(raw.size() > sizeof(std::uint64_t),
               "checkpoint stream truncated");
  const std::string_view body(raw.data(), raw.size() - sizeof(std::uint64_t));
  std::uint64_t stored = 0;
  std::memcpy(&stored, raw.data() + body.size(), sizeof(stored));
  ZIPFLM_CHECK(fnv1a64(body) == stored,
               "checkpoint checksum mismatch (truncated or corrupt file)");

  std::istringstream stream{std::string(body), std::ios::binary};
  return read_body(stream, params, train);
}

CheckpointMeta load_checkpoint(std::istream& in, LmModel& model,
                               TrainState* train) {
  const auto params = model.all_params();
  return load_checkpoint(in, params, train);
}

void save_checkpoint_file(const std::string& path, LmModel& model,
                          const CheckpointMeta& meta,
                          const TrainState* train) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ZIPFLM_CHECK(out.is_open(), "cannot open checkpoint file: " + tmp);
    save_checkpoint(out, model, meta, train);
    out.flush();
    ZIPFLM_CHECK(out.good(), "checkpoint flush failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    ZIPFLM_CHECK(false, "cannot move checkpoint into place: " + path);
  }
}

CheckpointMeta load_checkpoint_file(const std::string& path, LmModel& model,
                                    TrainState* train) {
  std::ifstream in(path, std::ios::binary);
  ZIPFLM_CHECK(in.is_open(), "cannot open checkpoint file: " + path);
  return load_checkpoint(in, model, train);
}

}  // namespace zipflm
