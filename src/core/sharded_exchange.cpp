#include "zipflm/core/sharded_exchange.hpp"

#include <algorithm>
#include <cstring>

#include "zipflm/comm/wire_codec.hpp"
#include "zipflm/device/device.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {

std::vector<Index> sorted_unique(std::span<const Index> ids) {
  std::vector<Index> u(ids.begin(), ids.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

/// Per-owner segment offsets [off[o], off[o+1]) of a sorted id vector
/// under the shard_row_begin split — sorted ids make every owner's
/// slice contiguous.
std::vector<std::size_t> owner_offsets(const std::vector<Index>& ids,
                                       Index vocab, int g) {
  std::vector<std::size_t> off(static_cast<std::size_t>(g) + 1, 0);
  for (int o = 1; o <= g; ++o) {
    off[static_cast<std::size_t>(o)] = static_cast<std::size_t>(
        std::lower_bound(ids.begin(), ids.end(),
                         shard_row_begin(vocab, o, g)) -
        ids.begin());
  }
  return off;
}

/// Chunk geometry of the engines' ring schedules (thread_comm /
/// transport_comm split n elements into g chunks, first n%g one
/// larger).  Kept textually in sync with comm_internal::chunk_range —
/// the owner-side fold below reconstructs the allreduce addition tree
/// and MUST agree on the boundaries.
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

ChunkRange chunk_range(std::size_t n, int g, std::size_t c) {
  const std::size_t q = n / static_cast<std::size_t>(g);
  const std::size_t rem = n % static_cast<std::size_t>(g);
  const std::size_t begin = c * q + std::min(rem, c);
  return {begin, begin + q + (c < rem ? 1 : 0)};
}

std::size_t chunk_of(std::size_t p, std::size_t n, int g) {
  const std::size_t q = n / static_cast<std::size_t>(g);
  const std::size_t rem = n % static_cast<std::size_t>(g);
  if (p < rem * (q + 1)) return p / (q + 1);
  return rem + (p - rem * (q + 1)) / q;
}

/// Id alltoallv: each destination gets its segment of the sorted ids,
/// varint-coded per block when index_codec is set.  recv_ids is the
/// concatenation by source; recv_off its per-source offsets.
void alltoallv_ids(Communicator& comm, const std::vector<Index>& ids,
                   const std::vector<std::size_t>& off, bool index_codec,
                   std::vector<Index>& recv_ids,
                   std::vector<std::size_t>& recv_off) {
  const int g = comm.world_size();
  recv_off.assign(static_cast<std::size_t>(g) + 1, 0);
  if (!index_codec) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(g));
    for (int o = 0; o < g; ++o) {
      counts[static_cast<std::size_t>(o)] =
          off[static_cast<std::size_t>(o) + 1] -
          off[static_cast<std::size_t>(o)];
    }
    std::vector<std::size_t> recv_counts;
    comm.alltoallv(std::span<const Index>(ids), counts, recv_ids, recv_counts);
    for (int s = 0; s < g; ++s) {
      recv_off[static_cast<std::size_t>(s) + 1] =
          recv_off[static_cast<std::size_t>(s)] +
          recv_counts[static_cast<std::size_t>(s)];
    }
    return;
  }
  // Coded path: one varint encoding per destination block; collective
  // count and schedule identical to the raw path, only sizes shrink.
  std::vector<std::byte> payload, block;
  std::vector<std::size_t> counts(static_cast<std::size_t>(g));
  for (int o = 0; o < g; ++o) {
    encode_index_block(
        std::span<const Index>(ids.data() + off[static_cast<std::size_t>(o)],
                               off[static_cast<std::size_t>(o) + 1] -
                                   off[static_cast<std::size_t>(o)]),
        block);
    counts[static_cast<std::size_t>(o)] = block.size();
    payload.insert(payload.end(), block.begin(), block.end());
  }
  std::vector<std::byte> enc;
  std::vector<std::size_t> enc_counts;
  comm.alltoallv_bytes(payload, counts, enc, enc_counts);
  recv_ids.clear();
  std::size_t boff = 0;
  for (int s = 0; s < g; ++s) {
    decode_index_block(
        std::span<const std::byte>(enc.data() + boff,
                                   enc_counts[static_cast<std::size_t>(s)]),
        recv_ids);
    boff += enc_counts[static_cast<std::size_t>(s)];
    recv_off[static_cast<std::size_t>(s) + 1] = recv_ids.size();
  }
  record_codec_traffic(comm.ledger(), CodecSlot::IndexVarint,
                       recv_ids.size() * sizeof(Index), enc.size());
}

/// Row alltoallv: per-destination float blocks (counts in rows), coded
/// per block when codec != None.  recv_rows is the concatenation by
/// source, one row per received id.
void alltoallv_rows(Communicator& comm, const Tensor& rows,
                    const std::vector<std::size_t>& off, Index d,
                    WireCodec codec,
                    const std::vector<std::size_t>& recv_row_off,
                    std::vector<float>& recv_rows) {
  const int g = comm.world_size();
  const auto dn = static_cast<std::size_t>(d);
  std::span<const float> src = rows.data();
  if (codec == WireCodec::None) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(g));
    for (int o = 0; o < g; ++o) {
      counts[static_cast<std::size_t>(o)] =
          (off[static_cast<std::size_t>(o) + 1] -
           off[static_cast<std::size_t>(o)]) *
          dn;
    }
    std::vector<std::size_t> recv_counts;
    comm.alltoallv(src, counts, recv_rows, recv_counts);
    return;
  }
  // Coded path: each destination block encoded independently (the
  // decode side knows its element count from the id round).  Packed is
  // a bit-exact round trip; Int8 is the same deterministic
  // decode(encode(x)) every backend applies.
  std::vector<std::byte> payload, block;
  std::vector<std::size_t> counts(static_cast<std::size_t>(g));
  for (int o = 0; o < g; ++o) {
    const std::size_t rows_o = off[static_cast<std::size_t>(o) + 1] -
                               off[static_cast<std::size_t>(o)];
    if (rows_o != 0) {
      encode_grad_chunk(
          codec,
          std::span<const float>(
              src.data() + off[static_cast<std::size_t>(o)] * dn,
              rows_o * dn),
          block);
    } else {
      block.clear();
    }
    counts[static_cast<std::size_t>(o)] = block.size();
    payload.insert(payload.end(), block.begin(), block.end());
  }
  std::vector<std::byte> enc;
  std::vector<std::size_t> enc_counts;
  comm.alltoallv_bytes(payload, counts, enc, enc_counts);
  recv_rows.assign(recv_row_off.back() * dn, 0.0f);
  std::size_t boff = 0;
  for (int s = 0; s < g; ++s) {
    const std::size_t rows_s = recv_row_off[static_cast<std::size_t>(s) + 1] -
                               recv_row_off[static_cast<std::size_t>(s)];
    if (rows_s != 0) {
      decode_grad_chunk(
          codec,
          std::span<const std::byte>(enc.data() + boff,
                                     enc_counts[static_cast<std::size_t>(s)]),
          std::span<float>(recv_rows.data() +
                               recv_row_off[static_cast<std::size_t>(s)] * dn,
                           rows_s * dn));
    }
    boff += enc_counts[static_cast<std::size_t>(s)];
  }
  record_codec_traffic(
      comm.ledger(),
      codec == WireCodec::Int8 ? CodecSlot::Int8 : CodecSlot::Packed,
      recv_rows.size() * sizeof(float), enc.size());
}

}  // namespace

ShardedEmbeddingExchange::ShardedEmbeddingExchange(Index vocab, Index dim,
                                                   ExchangeOptions options)
    : vocab_(vocab), dim_(dim), options_(options) {
  ZIPFLM_CHECK(vocab > 0 && dim > 0,
               "sharded exchange needs the table geometry");
  ZIPFLM_CHECK(options_.precision == WirePrecision::FP32,
               "sharded exchange moves FP32 rows (compression-scaled FP16 "
               "wire is a replicated-path feature)");
  ZIPFLM_CHECK(!options_.hierarchical_allreduce,
               "sharded exchange has no hierarchical leg");
}

void ShardedEmbeddingExchange::pull(Communicator& comm, ShardedEmbedding& emb,
                                    std::span<const Index> batch_ids,
                                    MemoryPool* pool) {
  const int g = comm.world_size();
  ZIPFLM_CHECK(emb.shard_world() == g && emb.shard_rank() == comm.rank(),
               "shard layout does not match this communicator");
  std::vector<Index> my_ids = sorted_unique(batch_ids);
  const std::vector<std::size_t> off = owner_offsets(my_ids, vocab_, g);

  // Round 1: id requests to each owner (my sorted-unique ids are
  // already owner-contiguous).
  std::vector<Index> req_ids;
  std::vector<std::size_t> req_off;
  alltoallv_ids(comm, my_ids, off, options_.index_codec, req_ids, req_off);

  const auto dn = static_cast<std::size_t>(dim_);
  Allocation scratch;
  if (pool != nullptr) {
    scratch = pool->allocate(
        (my_ids.size() + req_ids.size()) * (sizeof(Index) + dn * sizeof(float)),
        "sharded-pull scratch");
  }

  // Round 2: row replies — gather each requested row from the shard.
  Tensor reply;
  emb.gather_owned(req_ids, reply);
  // Reply blocks go back to the sources, so the send partition is the
  // request partition; receive counts per source mirror `off`.
  std::vector<float> pulled;
  // Pulled rows are weights: any armed gradient codec falls back to
  // the lossless Packed encoding here (Int8 rows would desync the
  // replicas' forward pass).
  const WireCodec codec = options_.codec == WireCodec::None
                              ? WireCodec::None
                              : WireCodec::Packed;
  std::vector<std::size_t> my_off(off);
  alltoallv_rows(comm, reply, req_off, dim_, codec, my_off, pulled);
  ZIPFLM_CHECK(pulled.size() == my_ids.size() * dn,
               "pulled row payload size mismatch");

  // Blocks land by ascending owner = ascending id: exactly my_ids
  // order.
  Tensor rows({static_cast<Index>(my_ids.size()), dim_});
  std::memcpy(rows.data().data(), pulled.data(),
              pulled.size() * sizeof(float));
  emb.install_rows(std::move(my_ids), std::move(rows));
}

void ShardedEmbeddingExchange::exchange(Communicator& comm,
                                        std::span<const Index> ids,
                                        const Tensor& delta,
                                        std::vector<Index>& out_ids,
                                        Tensor& out_rows, MemoryPool* pool,
                                        const PendingIdGather* pending) {
  const int g = comm.world_size();
  const int r = comm.rank();
  const Index d = delta.cols();
  ZIPFLM_CHECK(d == dim_, "gradient row width mismatch");

  // Steps 1-2 (as in UNIQUE): local unique ids Ĵ and reduced rows ∆̂.
  std::vector<Index> lids;
  Tensor lrows;
  local_reduce_by_word(ids, delta, lids, lrows);

  // Step 3: the same id ALLGATHER the replicated strategies run — it
  // fixes the globally consistent Î whose M x D layout defines the
  // chunk geometry the owner fold below replays (and it consumes the
  // AsyncCommEngine's eager gather when armed).
  std::vector<Index> all_ids;
  gather_ids(comm, ids, pending, all_ids, options_.index_codec);
  const std::vector<Index> uids = sorted_unique(all_ids);
  const std::size_t m = uids.size();
  const auto dn = static_cast<std::size_t>(d);
  const std::size_t n = m * dn;  // the replicated allreduce's span

  // Step 4: ship ∆̂ rows to their owners — one id alltoallv, one row
  // alltoallv (codec applies per destination block).
  const std::vector<std::size_t> loff = owner_offsets(lids, vocab_, g);
  std::vector<Index> got_ids;
  std::vector<std::size_t> got_off;
  alltoallv_ids(comm, lids, loff, options_.index_codec, got_ids, got_off);
  std::vector<float> got_rows;
  alltoallv_rows(comm, lrows, loff, d, options_.codec, got_off, got_rows);
  ZIPFLM_CHECK(got_rows.size() == got_ids.size() * dn,
               "pushed row payload size mismatch");

  // Owned slice of Î.
  const Index my_lo = shard_row_begin(vocab_, r, g);
  const Index my_hi = shard_row_begin(vocab_, r + 1, g);
  const auto pos_lo = static_cast<std::size_t>(
      std::lower_bound(uids.begin(), uids.end(), my_lo) - uids.begin());
  const auto pos_hi = static_cast<std::size_t>(
      std::lower_bound(uids.begin(), uids.end(), my_hi) - uids.begin());
  out_ids.assign(uids.begin() + static_cast<std::ptrdiff_t>(pos_lo),
                 uids.begin() + static_cast<std::ptrdiff_t>(pos_hi));

  Allocation scratch;
  if (pool != nullptr) {
    scratch = pool->allocate(
        all_ids.size() * sizeof(Index) +
            (got_ids.size() + out_ids.size()) * dn * sizeof(float),
        "sharded-exchange scratch");
  }

  // Step 5: owner-side fold.  The replicated oracle allreduces the
  // M x D scatter of every rank's ∆̂ (zeros elsewhere); its ring
  // reduce-scatter leaves element p, in chunk c, as the left fold
  // x_c + x_{c+1} + ... + x_{c+g-1} (sources mod g, ascending from the
  // chunk index).  Rebuild exactly that: per owned row, per chunk
  // segment, fold the per-source contributions in that order with
  // explicit zero rows for sources that did not touch the id — the
  // +0.0 operands participate in IEEE addition there too.
  out_rows = Tensor({static_cast<Index>(out_ids.size()), d});
  std::vector<std::size_t> cur(static_cast<std::size_t>(g));
  for (int s = 0; s < g; ++s) {
    cur[static_cast<std::size_t>(s)] = got_off[static_cast<std::size_t>(s)];
  }
  const std::vector<float> zero(dn, 0.0f);
  std::vector<const float*> contrib(static_cast<std::size_t>(g));
  float* dst_base = out_rows.data().data();
  for (std::size_t pos = pos_lo; pos < pos_hi; ++pos) {
    const Index id = uids[pos];
    for (int s = 0; s < g; ++s) {
      auto& c = cur[static_cast<std::size_t>(s)];
      const std::size_t end_s = got_off[static_cast<std::size_t>(s) + 1];
      while (c < end_s && got_ids[c] < id) ++c;
      contrib[static_cast<std::size_t>(s)] =
          (c < end_s && got_ids[c] == id) ? got_rows.data() + c * dn
                                          : nullptr;
    }
    float* dst = dst_base + (pos - pos_lo) * dn;
    std::size_t p = pos * dn;
    const std::size_t row_end = p + dn;
    while (p < row_end) {
      const std::size_t c = chunk_of(p, n, g);
      const std::size_t seg_end = std::min(row_end, chunk_range(n, g, c).end);
      const std::size_t len = seg_end - p;
      const std::size_t loc = p - pos * dn;
      for (int k = 0; k < g; ++k) {
        const auto s =
            static_cast<std::size_t>((c + static_cast<std::size_t>(k)) %
                                     static_cast<std::size_t>(g));
        const float* src =
            contrib[s] != nullptr ? contrib[s] + loc : zero.data();
        if (k == 0) {
          std::memcpy(dst + loc, src, len * sizeof(float));
        } else {
          simd::add_inplace(dst + loc, src, len);
        }
      }
      p = seg_end;
    }
  }
}

}  // namespace zipflm
