#include "zipflm/core/exchange.hpp"

#include <algorithm>
#include <cstring>

#include "zipflm/comm/hierarchical.hpp"
#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/ops.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {

constexpr std::size_t wire_width(WirePrecision p) {
  return p == WirePrecision::FP16 ? sizeof(Half) : sizeof(float);
}

/// Position of id in a sorted unique vector.
Index position_of(const std::vector<Index>& sorted_ids, Index id) {
  const auto it = std::lower_bound(sorted_ids.begin(), sorted_ids.end(), id);
  ZIPFLM_ASSERT(it != sorted_ids.end() && *it == id,
                "id missing from the unique index set");
  return static_cast<Index>(it - sorted_ids.begin());
}

std::vector<Index> sorted_unique(std::span<const Index> ids) {
  std::vector<Index> u(ids.begin(), ids.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

/// The delta+varint-coded flavor of the id allgatherv.  Runs on top of
/// the byte collective unchanged — the collective count and schedule
/// are identical to the raw path, so fault-injection collective indices
/// stay put when the codec flips on; only the block sizes shrink.
void gather_ids_coded(Communicator& comm, std::span<const Index> ids,
                      std::vector<Index>& all_ids) {
  std::vector<std::byte> enc;
  encode_index_block(ids, enc);
  std::vector<std::byte> all_enc;
  std::vector<std::size_t> counts;
  comm.allgatherv_bytes(std::span<const std::byte>(enc), all_enc, counts);
  all_ids.clear();
  std::size_t off = 0;
  for (const std::size_t c : counts) {
    decode_index_block(std::span<const std::byte>(all_enc.data() + off, c),
                       all_ids);
    off += c;
  }
  record_codec_traffic(comm.ledger(), CodecSlot::IndexVarint,
                       all_ids.size() * sizeof(Index), all_enc.size());
}

}  // namespace

/// The id ALLGATHER every strategy needs: consume an eagerly gathered
/// result when armed (asserting it was built from these ids), otherwise
/// run the collective inline.
void gather_ids(Communicator& comm, std::span<const Index> ids,
                const PendingIdGather* pending, std::vector<Index>& all_ids,
                bool index_codec) {
  if (pending != nullptr && pending->armed) {
    ZIPFLM_ASSERT(pending->ids.size() == ids.size() &&
                      std::equal(ids.begin(), ids.end(), pending->ids.begin()),
                  "pending id gather was armed with different ids");
    all_ids = pending->all_ids;
    return;
  }
  if (index_codec) {
    gather_ids_coded(comm, ids, all_ids);
  } else {
    comm.allgatherv(ids, all_ids);
  }
}

void begin_id_gather(AsyncCommEngine& engine, std::span<const Index> ids,
                     PendingIdGather& out, bool index_codec) {
  out.ids.assign(ids.begin(), ids.end());
  out.all_ids.clear();
  out.armed = true;
  out.coded = index_codec;
  engine.submit("eager_id_allgather", out.ids.size() * sizeof(Index),
                [&out, index_codec](Communicator& comm) {
                  if (index_codec) {
                    gather_ids_coded(comm, std::span<const Index>(out.ids),
                                     out.all_ids);
                  } else {
                    comm.allgatherv(std::span<const Index>(out.ids),
                                    out.all_ids);
                  }
                });
}

void local_reduce_by_word(std::span<const Index> ids, const Tensor& delta,
                          std::vector<Index>& unique_ids, Tensor& reduced) {
  ZIPFLM_CHECK(delta.rank() == 2 &&
                   delta.rows() == static_cast<Index>(ids.size()),
               "one gradient row per token");
  unique_ids = sorted_unique(ids);
  const Index d = delta.cols();
  const std::size_t u = unique_ids.size();
  reduced = Tensor({static_cast<Index>(u), d});

  // Counting-sort the token positions into per-unique-row buckets so the
  // reduction can be split across unique rows: each row's tokens stay in
  // ascending original order, which makes every chunking (and the serial
  // loop above this replaced) accumulate bitwise-identically.
  std::vector<std::size_t> row_of(ids.size());
  std::vector<std::size_t> offsets(u + 1, 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    row_of[i] = static_cast<std::size_t>(position_of(unique_ids, ids[i]));
    ++offsets[row_of[i] + 1];
  }
  for (std::size_t r = 0; r < u; ++r) offsets[r + 1] += offsets[r];
  std::vector<std::size_t> order(ids.size());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.begin() +
                                                         static_cast<std::ptrdiff_t>(u));
    for (std::size_t i = 0; i < ids.size(); ++i) {
      order[cursor[row_of[i]]++] = i;
    }
  }

  const float* src_base = delta.data().data();
  float* dst_base = reduced.data().data();
  const auto dn = static_cast<std::size_t>(d);
  ThreadPool::global().parallel_chunks(
      u,
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          float* dst = dst_base + r * dn;
          for (std::size_t t = offsets[r]; t < offsets[r + 1]; ++t) {
            simd::add_inplace(dst, src_base + order[t] * dn, dn);
          }
        }
      },
      /*grain=*/1);
}

// ---------------------------------------------------------------------------
// DenseExchange: the Θ(G·K·D) ALLGATHER baseline of Section II.
// ---------------------------------------------------------------------------

void DenseExchange::exchange(Communicator& comm, std::span<const Index> ids,
                             const Tensor& delta, std::vector<Index>& out_ids,
                             Tensor& out_rows, MemoryPool* pool,
                             const PendingIdGather* pending) {
  const int g = comm.world_size();
  const std::size_t k = ids.size();
  const Index d = delta.cols();
  ZIPFLM_CHECK(delta.rows() == static_cast<Index>(k),
               "one gradient row per token");

  // The receive buffers that make the baseline collapse: G·K ids plus
  // G·K·D gradient values must be resident at once.
  const std::size_t gk = static_cast<std::size_t>(g) * k;
  const std::size_t scratch_bytes =
      gk * sizeof(Index) +
      gk * static_cast<std::size_t>(d) * wire_width(options_.precision) +
      (options_.precision == WirePrecision::FP16
           ? gk * static_cast<std::size_t>(d) * sizeof(float)  // upcast copy
           : 0);
  Allocation scratch;
  if (pool != nullptr) {
    scratch = pool->allocate(scratch_bytes, "dense-exchange scratch");
  }

  // allgatherv rather than allgather: the output-embedding path hands us
  // per-rank candidate sets of (slightly) different sizes.
  std::vector<Index> all_ids;
  gather_ids(comm, ids, pending, all_ids, options_.index_codec);

  // Gather the gradient payload at the configured wire precision.
  Tensor all_delta({static_cast<Index>(all_ids.size()), d});
  if (options_.precision == WirePrecision::FP32) {
    std::vector<float> gathered;
    comm.allgatherv(delta.data(), gathered);
    std::memcpy(all_delta.data().data(), gathered.data(),
                gathered.size() * sizeof(float));
  } else {
    std::vector<Half> wire;
    compress_fp16(delta.data(), options_.compression_scale, wire);
    std::vector<Half> gathered;
    comm.allgatherv(std::span<const Half>(wire), gathered);
    std::vector<float> up;
    decompress_fp16(gathered, options_.compression_scale, up);
    std::memcpy(all_delta.data().data(), up.data(), up.size() * sizeof(float));
  }

  // Apply in rank-major token order — the reference accumulation the
  // paper's Figure 3 baseline performs (serialized per row).
  out_ids = sorted_unique(all_ids);
  out_rows = Tensor({static_cast<Index>(out_ids.size()), d});
  for (std::size_t i = 0; i < all_ids.size(); ++i) {
    const Index row = position_of(out_ids, all_ids[i]);
    const auto src = all_delta.row(static_cast<Index>(i));
    auto dst = out_rows.row(row);
    simd::add_inplace(dst.data(), src.data(), dst.size());
  }
}

// ---------------------------------------------------------------------------
// UniqueExchange: Section III-A, steps 1-7.
// ---------------------------------------------------------------------------

void UniqueExchange::exchange(Communicator& comm, std::span<const Index> ids,
                              const Tensor& delta, std::vector<Index>& out_ids,
                              Tensor& out_rows, MemoryPool* pool,
                              const PendingIdGather* pending) {
  const int g = comm.world_size();
  const std::size_t k = ids.size();
  const Index d = delta.cols();
  ZIPFLM_CHECK(delta.rows() == static_cast<Index>(k),
               "one gradient row per token");

  // Steps 1-2: local unique indices Ĵ and locally reduced gradients ∆̂.
  std::vector<Index> local_ids;
  Tensor local_reduced;
  local_reduce_by_word(ids, delta, local_ids, local_reduced);

  // Step 3: ALLGATHER over the K word indices only — Θ(G·K) memory.
  // With an armed PendingIdGather this already happened on the comm
  // thread, under the forward/backward compute.
  std::vector<Index> all_ids;
  gather_ids(comm, ids, pending, all_ids, options_.index_codec);

  // Step 4: globally consistent unique index set Î (sorted => identical
  // order on every rank).
  out_ids = sorted_unique(all_ids);
  const std::size_t ug = out_ids.size();

  const std::size_t scratch_bytes =
      all_ids.size() * sizeof(Index) +
      ug * static_cast<std::size_t>(d) * sizeof(float) +
      (options_.precision == WirePrecision::FP16
           ? ug * static_cast<std::size_t>(d) * sizeof(Half)
           : 0);
  Allocation scratch;
  if (pool != nullptr) {
    scratch = pool->allocate(scratch_bytes, "unique-exchange scratch");
  }

  // Step 5: scatter ∆̂ into the shared U_g x D layout M.
  out_rows = Tensor({static_cast<Index>(ug), d});
  for (std::size_t i = 0; i < local_ids.size(); ++i) {
    const Index row = position_of(out_ids, local_ids[i]);
    const auto src = local_reduced.row(static_cast<Index>(i));
    auto dst = out_rows.row(row);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  // Step 6: ALLREDUCE over M — Θ(U_g·D) wire bytes (two-level when
  // configured and the communicator spans multiple nodes).
  if (g > 1) {
    WireCodecScope codec_scope(comm, options_.codec);
    auto reduce = [&](auto span) {
      if (options_.hierarchical_allreduce) {
        hierarchical_allreduce_sum(comm, span);
      } else {
        comm.allreduce_sum(span);
      }
    };
    if (options_.precision == WirePrecision::FP32) {
      reduce(out_rows.data());
    } else {
      std::vector<Half> wire;
      compress_fp16(out_rows.data(), options_.compression_scale, wire);
      reduce(std::span<Half>(wire));
      std::vector<float> up;
      decompress_fp16(wire, options_.compression_scale, up);
      std::memcpy(out_rows.data().data(), up.data(),
                  up.size() * sizeof(float));
    }
  }
  // Step 7 (applying M̂ to E via Î) belongs to the optimizer, which can
  // now update every row in parallel without locking — all ids unique.
}

// ---------------------------------------------------------------------------
// TableAllreduceExchange: the dense-materialization alternative.
// ---------------------------------------------------------------------------

void TableAllreduceExchange::exchange(Communicator& comm,
                                      std::span<const Index> ids,
                                      const Tensor& delta,
                                      std::vector<Index>& out_ids,
                                      Tensor& out_rows, MemoryPool* pool,
                                      const PendingIdGather* pending) {
  const Index d = delta.cols();
  ZIPFLM_CHECK(delta.rows() == static_cast<Index>(ids.size()),
               "one gradient row per token");

  const std::size_t table_bytes = static_cast<std::size_t>(vocab_) *
                                  static_cast<std::size_t>(d) * sizeof(float);
  Allocation scratch;
  if (pool != nullptr) {
    scratch = pool->allocate(
        table_bytes + (options_.precision == WirePrecision::FP16
                           ? table_bytes / 2
                           : 0),
        "table-allreduce dense gradient");
  }

  // Materialize: scatter-add the token gradients into the dense table.
  Tensor table({vocab_, d});
  scatter_add_rows(delta, ids, table);

  if (comm.world_size() > 1) {
    WireCodecScope codec_scope(comm, options_.codec);
    if (options_.precision == WirePrecision::FP32) {
      comm.allreduce_sum(table.data());
    } else {
      std::vector<Half> wire;
      compress_fp16(table.data(), options_.compression_scale, wire);
      comm.allreduce_sum(std::span<Half>(wire));
      std::vector<float> up;
      decompress_fp16(wire, options_.compression_scale, up);
      std::memcpy(table.data().data(), up.data(), up.size() * sizeof(float));
    }
  }

  // The touched-row set still needs agreeing on (zero rows of the summed
  // table are not proof a row was untouched — gradients can cancel):
  // gather the indices exactly as UNIQUE does.
  std::vector<Index> all_ids;
  gather_ids(comm, ids, pending, all_ids, options_.index_codec);
  out_ids = sorted_unique(all_ids);
  out_rows = Tensor({static_cast<Index>(out_ids.size()), d});
  gather_rows(table, out_ids, out_rows);
}

// ---------------------------------------------------------------------------
// Closed-form accounting.
// ---------------------------------------------------------------------------

namespace {
/// Total wire bytes of one allgatherv where every rank contributes
/// `block` bytes: the payload ring plus the size exchange.
std::uint64_t allgatherv_total_bytes(std::uint64_t g, std::uint64_t block) {
  if (g <= 1) return 0;
  return (g - 1) * g * block + g * (g - 1) * sizeof(std::size_t);
}
}  // namespace

std::uint64_t dense_exchange_total_wire_bytes(int world, std::uint64_t tokens,
                                              std::uint64_t dim,
                                              WirePrecision precision) {
  const std::uint64_t g = static_cast<std::uint64_t>(world);
  return allgatherv_total_bytes(g, tokens * sizeof(Index)) +
         allgatherv_total_bytes(g, tokens * dim * wire_width(precision));
}

std::uint64_t unique_exchange_total_wire_bytes(int world, std::uint64_t tokens,
                                               std::uint64_t global_unique,
                                               std::uint64_t dim,
                                               WirePrecision precision) {
  const std::uint64_t g = static_cast<std::uint64_t>(world);
  const std::uint64_t reduce =
      g > 1 ? 2 * (g - 1) * global_unique * dim * wire_width(precision) : 0;
  return allgatherv_total_bytes(g, tokens * sizeof(Index)) + reduce;
}

}  // namespace zipflm
