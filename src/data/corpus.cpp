#include "zipflm/data/corpus.hpp"

#include <unordered_set>

#include "zipflm/support/error.hpp"

namespace zipflm {

// Word corpora: Zipf-Mandelbrot over a 4M-type inventory (the paper
// reports 2M-24M unique words per corpus).  Exponent 1/0.64 sets the
// Heaps slope; the Mandelbrot shift q flattens the head so the fitted
// Heaps coefficient lands at the paper's U = 7.02 N^0.64 (calibrated
// empirically: q=60 gives c ~ 7.0 at s = 1.5625).  Per-corpus offsets
// reproduce the vertical spread of the Fig 1 curves.
namespace {
constexpr std::uint64_t kWordTypes = 4'000'000ull;
}

CorpusSpec CorpusSpec::one_billion_word() {
  return {"1b", kWordTypes, 1.5625, 60.0, 780'000'000ull, 5.05, false};
}
CorpusSpec CorpusSpec::gutenberg() {
  return {"gb", kWordTypes, 1.58, 45.0, 1'810'000'000ull, 4.58, false};
}
CorpusSpec CorpusSpec::common_crawl() {
  return {"cc", kWordTypes, 1.54, 75.0, 4'000'000'000ull, 5.0, false};
}
CorpusSpec CorpusSpec::amazon_review() {
  return {"ar", kWordTypes, 1.61, 35.0, 7'010'000'000ull, 5.28, false};
}
CorpusSpec CorpusSpec::one_billion_char() {
  // English character LM: ~98 symbols, near-classic Zipf over characters.
  return {"1b-char", 98, 1.0, 2.7, 4'190'000'000ull, 0.94, true};
}
CorpusSpec CorpusSpec::tieba() {
  // Chinese character corpus: 15,437-symbol vocabulary, 34.36B chars,
  // 93.12 GB (≈2.7 bytes per UTF-8 Chinese character).
  return {"tieba", 15'437, 1.05, 5.0, 34'360'000'000ull, 2.71, true};
}

std::vector<CorpusSpec> CorpusSpec::figure1_corpora() {
  return {one_billion_word(), gutenberg(), common_crawl(), amazon_review()};
}

TokenStream::TokenStream(const CorpusSpec& spec, std::uint64_t seed)
    : spec_(spec),
      sampler_(spec.vocab, spec.zipf_exponent, spec.zipf_shift),
      rng_(Rng::fork(seed, 0x10C0'5EEDull)) {}

std::int64_t TokenStream::next() {
  return static_cast<std::int64_t>(sampler_.sample(rng_) - 1);
}

void TokenStream::take(std::size_t n, std::vector<std::int64_t>& out) {
  out.resize(n);
  for (auto& t : out) t = next();
}

std::vector<TypeTokenPoint> type_token_curve(TokenStream& stream,
                                             std::uint64_t max_tokens,
                                             double checkpoint_factor) {
  ZIPFLM_CHECK(checkpoint_factor > 1.0, "checkpoint factor must exceed 1");
  std::vector<TypeTokenPoint> points;
  std::unordered_set<std::int64_t> seen;
  seen.reserve(1 << 16);
  std::uint64_t next_checkpoint = 512;
  for (std::uint64_t n = 1; n <= max_tokens; ++n) {
    seen.insert(stream.next());
    if (n == next_checkpoint || n == max_tokens) {
      points.push_back({n, seen.size()});
      next_checkpoint = static_cast<std::uint64_t>(
          static_cast<double>(next_checkpoint) * checkpoint_factor);
      if (next_checkpoint <= n) next_checkpoint = n + 1;
    }
  }
  return points;
}

std::string synthetic_word(std::int64_t id) {
  ZIPFLM_CHECK(id >= 0, "token ids are non-negative");
  // Bijective base-26 so distinct ids always spell distinct words.
  std::string word;
  std::uint64_t v = static_cast<std::uint64_t>(id) + 1;
  while (v > 0) {
    --v;
    word.push_back(static_cast<char>('a' + v % 26));
    v /= 26;
  }
  return word;
}

SplitIds split_tokens(const std::vector<std::int64_t>& ids,
                      std::uint64_t valid_one_in, std::uint64_t seed,
                      std::size_t block_tokens) {
  ZIPFLM_CHECK(valid_one_in >= 2, "validation ratio must be at least 1:2");
  ZIPFLM_CHECK(block_tokens >= 1, "split blocks must be non-empty");
  SplitIds split;
  split.train.reserve(ids.size());
  split.valid.reserve(ids.size() / valid_one_in + block_tokens);
  Rng rng = Rng::fork(seed, 0x5B117ull);
  for (std::size_t begin = 0; begin < ids.size(); begin += block_tokens) {
    const std::size_t end = std::min(ids.size(), begin + block_tokens);
    auto& dst = (rng.uniform_index(valid_one_in) == 0) ? split.valid
                                                       : split.train;
    dst.insert(dst.end(), ids.begin() + static_cast<std::ptrdiff_t>(begin),
               ids.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return split;
}

}  // namespace zipflm
