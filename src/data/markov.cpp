#include "zipflm/data/markov.hpp"

#include <cmath>

#include "zipflm/support/error.hpp"

namespace zipflm {

BigramCorpus::BigramCorpus(std::int64_t vocab, std::int64_t branching, std::uint64_t seed,
                           double unigram_exponent,
                           double transition_exponent)
    : vocab_(vocab),
      branching_(branching),
      seed_(seed),
      transition_sampler_(static_cast<std::uint64_t>(branching),
                          transition_exponent) {
  ZIPFLM_CHECK(vocab >= 2, "bigram corpus needs at least two words");
  ZIPFLM_CHECK(branching >= 1 && branching <= vocab,
               "branching must be in [1, vocab]");
  // Successor menus: drawn from the unigram power law so the stationary
  // distribution stays roughly Zipfian.
  const ZipfSampler unigram(static_cast<std::uint64_t>(vocab),
                            unigram_exponent);
  successors_.resize(static_cast<std::size_t>(vocab));
  Rng rng = Rng::fork(seed, 0xB16A
                                 /* bigram */);
  for (auto& menu : successors_) {
    menu.resize(static_cast<std::size_t>(branching));
    for (auto& next : menu) {
      next = static_cast<std::int64_t>(unigram.sample(rng) - 1);
    }
  }
}

std::vector<std::int64_t> BigramCorpus::generate(std::size_t n,
                                                 std::uint64_t stream) const {
  std::vector<std::int64_t> out(n);
  Rng rng = Rng::fork(seed_, 0x574EA4ull + stream);
  std::int64_t current =
      static_cast<std::int64_t>(rng.uniform_index(
          static_cast<std::uint64_t>(vocab_)));
  for (auto& token : out) {
    token = current;
    const auto& menu = successors_[static_cast<std::size_t>(current)];
    const std::uint64_t pick = transition_sampler_.sample(rng) - 1;
    current = menu[static_cast<std::size_t>(pick)];
  }
  return out;
}

const std::vector<std::int64_t>& BigramCorpus::successors(std::int64_t word) const {
  ZIPFLM_CHECK(word >= 0 && word < vocab_, "word outside vocabulary");
  return successors_[static_cast<std::size_t>(word)];
}

double BigramCorpus::entropy_bound_nats() const {
  return std::log(static_cast<double>(branching_));
}

}  // namespace zipflm
