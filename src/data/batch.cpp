#include "zipflm/data/batch.hpp"

namespace zipflm {

BatchIterator::BatchIterator(std::span<const std::int64_t> ids, BatchSpec spec,
                             int rank, int world_size)
    : ids_(ids), spec_(spec) {
  ZIPFLM_CHECK(spec.batch_size > 0 && spec.seq_len > 0,
               "batch dimensions must be positive");
  ZIPFLM_CHECK(world_size > 0 && rank >= 0 && rank < world_size,
               "bad rank / world size");
  // Shard the corpus across ranks, then split the shard into batch_size
  // parallel substreams.  Each substream needs one trailing token for the
  // final target, hence the -1.
  const std::int64_t per_rank =
      static_cast<std::int64_t>(ids.size()) / world_size;
  shard_begin_ = per_rank * rank;
  stream_len_ = per_rank / spec.batch_size;
  steps_ = stream_len_ <= 1 ? 0 : (stream_len_ - 1) / spec.seq_len;
}

bool BatchIterator::next(Batch& out) {
  if (step_ >= steps_) return false;
  const std::int64_t n = spec_.tokens_per_rank();
  out.batch_size = spec_.batch_size;
  out.seq_len = spec_.seq_len;
  out.inputs.resize(static_cast<std::size_t>(n));
  out.targets.resize(static_cast<std::size_t>(n));
  for (std::int64_t b = 0; b < spec_.batch_size; ++b) {
    const std::int64_t stream_base = shard_begin_ + b * stream_len_;
    const std::int64_t offset = step_ * spec_.seq_len;
    for (std::int64_t t = 0; t < spec_.seq_len; ++t) {
      const std::int64_t pos = stream_base + offset + t;
      out.inputs[static_cast<std::size_t>(b * spec_.seq_len + t)] =
          ids_[static_cast<std::size_t>(pos)];
      out.targets[static_cast<std::size_t>(b * spec_.seq_len + t)] =
          ids_[static_cast<std::size_t>(pos + 1)];
    }
  }
  ++step_;
  return true;
}

}  // namespace zipflm
