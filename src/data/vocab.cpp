#include "zipflm/data/vocab.hpp"

#include <algorithm>

namespace zipflm {

Vocabulary Vocabulary::build(
    const std::unordered_map<std::string, std::uint64_t>& counts,
    std::size_t max_size) {
  ZIPFLM_CHECK(max_size >= 1, "vocabulary must have room for <unk>");
  std::vector<std::pair<std::string_view, std::uint64_t>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [token, count] : counts) ranked.emplace_back(token, count);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });

  Vocabulary v;
  const std::size_t keep = std::min(ranked.size(), max_size - 1);
  v.id_to_token_.reserve(keep + 1);
  v.id_to_token_.emplace_back(kUnkToken);
  v.token_to_id_.reserve(keep + 1);
  v.token_to_id_.emplace(std::string(kUnkToken), kUnkId);
  for (std::size_t i = 0; i < keep; ++i) {
    const std::int64_t id = static_cast<std::int64_t>(v.id_to_token_.size());
    v.id_to_token_.emplace_back(ranked[i].first);
    v.token_to_id_.emplace(std::string(ranked[i].first), id);
  }
  return v;
}

Vocabulary Vocabulary::build_from_tokens(std::span<const std::string> tokens,
                                         std::size_t max_size) {
  std::unordered_map<std::string, std::uint64_t> counts;
  counts.reserve(tokens.size() / 4 + 16);
  for (const auto& t : tokens) ++counts[t];
  return build(counts, max_size);
}

std::int64_t Vocabulary::id_of(std::string_view token) const {
  const auto it = token_to_id_.find(std::string(token));
  return it == token_to_id_.end() ? kUnkId : it->second;
}

const std::string& Vocabulary::token_of(std::int64_t id) const {
  ZIPFLM_CHECK(id >= 0 && static_cast<std::size_t>(id) < id_to_token_.size(),
               "vocabulary id out of range");
  return id_to_token_[static_cast<std::size_t>(id)];
}

bool Vocabulary::contains(std::string_view token) const {
  return token_to_id_.find(std::string(token)) != token_to_id_.end();
}

double Vocabulary::coverage(std::span<const std::string> tokens) const {
  if (tokens.empty()) return 1.0;
  std::size_t covered = 0;
  for (const auto& t : tokens) {
    if (contains(t)) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(tokens.size());
}

void Vocabulary::encode(std::span<const std::string> tokens,
                        std::vector<std::int64_t>& ids) const {
  ids.resize(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) ids[i] = id_of(tokens[i]);
}

}  // namespace zipflm
