// Zipf–Mandelbrot distributions: the statistical engine behind every
// synthetic corpus in this reproduction.
//
// The paper's central empirical fact (Fig 1) is Heaps' law: the number of
// types U after N tokens grows as U ∝ N^0.64.  Drawing tokens i.i.d. from
// a rank-frequency power law p(r) ∝ (r+q)^-s yields exactly this behaviour
// with Heaps exponent 1/s, so s = 1/0.64 ≈ 1.5625 reproduces the paper's
// fitted exponent (validated by tests and by bench_fig1).
#pragma once

#include <cstdint>
#include <vector>

#include "zipflm/support/error.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

/// Probability mass and summary statistics of a finite Zipf–Mandelbrot
/// distribution p(r) ∝ 1/(r+q)^s over ranks r = 1..V.
class ZipfMandelbrot {
 public:
  ZipfMandelbrot(std::uint64_t vocab, double exponent, double shift = 0.0);

  std::uint64_t vocab() const noexcept { return vocab_; }
  double exponent() const noexcept { return s_; }
  double shift() const noexcept { return q_; }

  /// p(rank), rank in [1, vocab].
  double pmf(std::uint64_t rank) const;
  /// P(X <= rank).
  double cdf(std::uint64_t rank) const;
  /// Generalized harmonic normalizer H = sum_r (r+q)^-s.
  double normalizer() const noexcept { return h_; }

 private:
  std::uint64_t vocab_;
  double s_;
  double q_;
  double h_;
  std::vector<double> cdf_;  ///< built lazily only for small vocabularies
};

/// Draws ranks from a Zipf power law.
///
/// Two engines, selected automatically:
///  * small vocabularies (<= kTableLimit): exact inverse-CDF table,
///    supports any shift q >= 0;
///  * large/unbounded vocabularies: Devroye's rejection sampler for the
///    zeta distribution (exponent > 1, shift 0), clamped to the vocab by
///    re-drawing the rare out-of-range samples.
class ZipfSampler {
 public:
  /// vocab == 0 means unbounded (pure zeta distribution).
  ZipfSampler(std::uint64_t vocab, double exponent, double shift = 0.0);

  /// One rank in [1, vocab] (or [1, inf) when unbounded).
  std::uint64_t sample(Rng& rng) const;

  /// Draw n token ids (0-based: rank-1) into out.
  void sample_tokens(Rng& rng, std::size_t n, std::vector<std::uint64_t>& out) const;

  std::uint64_t vocab() const noexcept { return vocab_; }
  double exponent() const noexcept { return s_; }
  bool uses_table() const noexcept { return !cdf_.empty(); }

  static constexpr std::uint64_t kTableLimit = 1ull << 22;

 private:
  std::uint64_t sample_table(Rng& rng) const;
  std::uint64_t sample_rejection(Rng& rng) const;

  std::uint64_t vocab_;
  double s_;
  double q_;
  std::vector<double> cdf_;
  // Precomputed constants for the rejection sampler.
  double b_ = 0.0;
};

}  // namespace zipflm
