// Synthetic corpora calibrated to the paper's datasets (Table I).
//
// We do not have the 1-Billion-word, Gutenberg, Common Crawl, Amazon
// Review or Baidu Tieba corpora; every experiment in the paper depends on
// a corpus only through (a) its type/token power law and (b) its
// vocabulary size, so each preset is a Zipf–Mandelbrot token source whose
// fitted Heaps exponent matches the paper's Fig 1 fit (U = 7.02·N^0.64)
// and whose vocabulary matches Section IV-A.  DESIGN.md documents the
// substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "zipflm/data/zipf.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

struct CorpusSpec {
  std::string name;
  std::uint64_t vocab = 0;      ///< 0 = unbounded type inventory
  double zipf_exponent = 1.5625;  ///< 1/0.64: Heaps exponent 0.64
  double zipf_shift = 0.0;
  std::uint64_t total_tokens = 0;  ///< full-dataset token count (Table I)
  double bytes_per_token = 5.0;    ///< maps tokens -> corpus GB
  bool character_level = false;

  // Word-level presets (Fig 1's four curves + Table I).
  static CorpusSpec one_billion_word();  ///< 1b: 0.78B words, 3.94 GB
  static CorpusSpec gutenberg();         ///< gb: 1.81B words, 8.29 GB
  static CorpusSpec common_crawl();      ///< cc: Fig 1 curve
  static CorpusSpec amazon_review();     ///< ar: 7.01B words, 37.04 GB

  // Character-level presets.
  static CorpusSpec one_billion_char();  ///< 1b chars: V ~ 98 symbols
  static CorpusSpec tieba();             ///< Chinese: V = 15,437 chars, 93 GB

  /// All Fig 1 word corpora in plot order.
  static std::vector<CorpusSpec> figure1_corpora();
};

/// Infinite deterministic token stream for a corpus preset.
class TokenStream {
 public:
  TokenStream(const CorpusSpec& spec, std::uint64_t seed);

  /// Next 0-based token id.
  std::int64_t next();

  /// Fill out with n ids.
  void take(std::size_t n, std::vector<std::int64_t>& out);

  const CorpusSpec& spec() const noexcept { return spec_; }

 private:
  CorpusSpec spec_;
  ZipfSampler sampler_;
  Rng rng_;
};

/// One pass type/token curve: record U (distinct ids seen) at
/// geometrically spaced checkpoints of N — the data behind Fig 1.
struct TypeTokenPoint {
  std::uint64_t tokens;  ///< N
  std::uint64_t types;   ///< U
};

std::vector<TypeTokenPoint> type_token_curve(TokenStream& stream,
                                             std::uint64_t max_tokens,
                                             double checkpoint_factor = 2.0);

/// Deterministic pseudo-word spelling of a token id ("qex", "bo", ...);
/// gives the tokenizer/vocabulary pipeline realistic text to chew on.
std::string synthetic_word(std::int64_t id);

/// Deterministic train/validation split of a token stream by blocks:
/// roughly 1/ratio of blocks land in validation (paper: 99:1, 1000:1).
struct SplitIds {
  std::vector<std::int64_t> train;
  std::vector<std::int64_t> valid;
};

SplitIds split_tokens(const std::vector<std::int64_t>& ids,
                      std::uint64_t valid_one_in, std::uint64_t seed,
                      std::size_t block_tokens = 1024);

}  // namespace zipflm
