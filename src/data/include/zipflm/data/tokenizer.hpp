// Tokenizers for the two LM granularities the paper evaluates:
// word LMs (lower-cased, punctuation-separated words, Section IV-A) and
// character LMs (per-UTF-8-codepoint, covering the ~98-symbol English
// character vocabulary and the ~15K-symbol Chinese one).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace zipflm {

/// Lower-cases ASCII, splits on whitespace, and separates punctuation
/// into standalone tokens ("don't stop." -> don ' t stop .) — the simple
/// tokenization procedure the paper cites from NLTK [37].
class WordTokenizer {
 public:
  void tokenize(std::string_view text, std::vector<std::string>& out) const;
  std::vector<std::string> tokenize(std::string_view text) const;
};

/// Splits text into UTF-8 codepoints rendered back as strings; invalid
/// bytes become single-byte tokens (never throws on dirty corpora).
class CharTokenizer {
 public:
  void tokenize(std::string_view text, std::vector<std::string>& out) const;
  std::vector<std::string> tokenize(std::string_view text) const;
};

}  // namespace zipflm
