// Frequency-ranked vocabulary, built the way the paper builds its word
// vocabularies (Section IV-A): count token frequencies over the training
// corpus, keep the top-K most frequent, map everything else to <unk>.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "zipflm/support/error.hpp"

namespace zipflm {

class Vocabulary {
 public:
  static constexpr std::int64_t kUnkId = 0;
  static constexpr std::string_view kUnkToken = "<unk>";

  Vocabulary() = default;

  /// Build from (token, count) pairs: keep the max_size-1 most frequent
  /// (id 0 is reserved for <unk>), ids assigned in descending frequency,
  /// ties broken lexicographically for determinism.
  static Vocabulary build(
      const std::unordered_map<std::string, std::uint64_t>& counts,
      std::size_t max_size);

  /// Convenience: count tokens then build.
  static Vocabulary build_from_tokens(std::span<const std::string> tokens,
                                      std::size_t max_size);

  std::int64_t id_of(std::string_view token) const;
  const std::string& token_of(std::int64_t id) const;
  bool contains(std::string_view token) const;

  /// Number of entries including <unk>.
  std::size_t size() const noexcept { return id_to_token_.size(); }

  /// Fraction of a token stream this vocabulary covers (non-<unk>); the
  /// paper reports 99% coverage with the 100k most frequent words.
  double coverage(std::span<const std::string> tokens) const;

  /// Encode a token stream to ids (OOV -> kUnkId).
  void encode(std::span<const std::string> tokens,
              std::vector<std::int64_t>& ids) const;

 private:
  std::unordered_map<std::string, std::int64_t> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace zipflm
