// Data-parallel LM batching.
//
// Each of G ranks consumes K = batch_size x seq_len tokens per step
// (Section II-B's "local batch").  The token stream is sharded into
// G x batch_size parallel substreams so every (input, target) pair is a
// genuine next-token prediction within a contiguous text run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "zipflm/support/error.hpp"

namespace zipflm {

struct BatchSpec {
  std::int64_t batch_size = 32;  ///< sequences per rank per step
  std::int64_t seq_len = 20;     ///< tokens per sequence

  std::int64_t tokens_per_rank() const noexcept {
    return batch_size * seq_len;
  }
};

/// One step's worth of data for one rank, row-major
/// [batch_size x seq_len]; targets are inputs shifted by one token.
struct Batch {
  std::vector<std::int64_t> inputs;
  std::vector<std::int64_t> targets;
  std::int64_t batch_size = 0;
  std::int64_t seq_len = 0;

  std::int64_t input(std::int64_t b, std::int64_t t) const {
    return inputs[static_cast<std::size_t>(b * seq_len + t)];
  }
  std::int64_t target(std::int64_t b, std::int64_t t) const {
    return targets[static_cast<std::size_t>(b * seq_len + t)];
  }
};

/// Iterates a rank's shard of an in-memory token stream.
class BatchIterator {
 public:
  BatchIterator(std::span<const std::int64_t> ids, BatchSpec spec, int rank,
                int world_size);

  /// Fill out the next batch; returns false when the shard is exhausted.
  bool next(Batch& out);

  /// Number of full batches this rank will produce.
  std::int64_t steps() const noexcept { return steps_; }

  void reset() { step_ = 0; }

 private:
  std::span<const std::int64_t> ids_;
  BatchSpec spec_;
  std::int64_t shard_begin_ = 0;   ///< first id index of this rank's shard
  std::int64_t stream_len_ = 0;    ///< tokens per substream
  std::int64_t steps_ = 0;
  std::int64_t step_ = 0;
};

}  // namespace zipflm
