// Markov bigram corpus: a synthetic token source with *learnable*
// sequential structure.
//
// The i.i.d. Zipf-Mandelbrot streams in corpus.hpp reproduce a corpus's
// type/token statistics (all the scaling experiments need), but an LM
// can learn nothing from them beyond unigram frequencies — so accuracy
// experiments that depend on "more data helps" (Table V's weak scaling,
// Figs 5/7/8 learning curves) need sequential dependence.  This
// generator builds a deterministic sparse bigram chain: every word has a
// Zipf-weighted successor menu, successors themselves drawn from the
// word-frequency power law, so the *marginal* distribution stays Zipfian
// while transitions carry mutual information the model must estimate —
// and estimating |V| x branching transition weights takes data, making
// corpus size matter, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "zipflm/data/zipf.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

class BigramCorpus {
 public:
  /// vocab: token inventory; branching: successors per word; exponents
  /// control the marginal (unigram_exponent) and per-word transition
  /// (transition_exponent) power laws.
  BigramCorpus(std::int64_t vocab, std::int64_t branching, std::uint64_t seed,
               double unigram_exponent = 1.2,
               double transition_exponent = 1.3);

  /// Deterministic token walk: same (seed, stream) -> same tokens.
  std::vector<std::int64_t> generate(std::size_t n,
                                     std::uint64_t stream) const;

  std::int64_t vocab() const noexcept { return vocab_; }
  std::int64_t branching() const noexcept { return branching_; }

  /// Successor menu of a word (test hook).
  const std::vector<std::int64_t>& successors(std::int64_t word) const;

  /// Entropy rate upper bound in nats/token: log(branching) — the
  /// perplexity floor a perfect model approaches with enough data.
  double entropy_bound_nats() const;

 private:
  std::int64_t vocab_;
  std::int64_t branching_;
  std::uint64_t seed_;
  ZipfSampler transition_sampler_;
  std::vector<std::vector<std::int64_t>> successors_;
};

}  // namespace zipflm
