#include "zipflm/data/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace zipflm {

namespace {
double harmonic(std::uint64_t vocab, double s, double q) {
  // Exact sum for small vocabularies; Euler–Maclaurin style integral
  // approximation for very large ones (relative error < 1e-6 for s>1).
  if (vocab <= ZipfSampler::kTableLimit) {
    double h = 0.0;
    for (std::uint64_t r = 1; r <= vocab; ++r) {
      h += std::pow(static_cast<double>(r) + q, -s);
    }
    return h;
  }
  double h = 0.0;
  constexpr std::uint64_t kHead = 1ull << 16;
  for (std::uint64_t r = 1; r <= kHead; ++r) {
    h += std::pow(static_cast<double>(r) + q, -s);
  }
  // Integral tail: ∫_{kHead+0.5}^{vocab+0.5} (x+q)^-s dx.
  const double a = static_cast<double>(kHead) + 0.5 + q;
  const double b = static_cast<double>(vocab) + 0.5 + q;
  if (s == 1.0) {
    h += std::log(b / a);
  } else {
    h += (std::pow(a, 1.0 - s) - std::pow(b, 1.0 - s)) / (s - 1.0);
  }
  return h;
}
}  // namespace

ZipfMandelbrot::ZipfMandelbrot(std::uint64_t vocab, double exponent,
                               double shift)
    : vocab_(vocab), s_(exponent), q_(shift) {
  ZIPFLM_CHECK(vocab >= 1, "Zipf distribution needs a non-empty vocabulary");
  ZIPFLM_CHECK(exponent > 0.0, "Zipf exponent must be positive");
  ZIPFLM_CHECK(shift >= 0.0, "Zipf shift must be non-negative");
  h_ = harmonic(vocab_, s_, q_);
  if (vocab_ <= ZipfSampler::kTableLimit) {
    cdf_.resize(vocab_);
    double acc = 0.0;
    for (std::uint64_t r = 1; r <= vocab_; ++r) {
      acc += std::pow(static_cast<double>(r) + q_, -s_) / h_;
      cdf_[r - 1] = acc;
    }
    cdf_.back() = 1.0;  // kill accumulated round-off at the top
  }
}

double ZipfMandelbrot::pmf(std::uint64_t rank) const {
  ZIPFLM_CHECK(rank >= 1 && rank <= vocab_, "rank out of distribution range");
  return std::pow(static_cast<double>(rank) + q_, -s_) / h_;
}

double ZipfMandelbrot::cdf(std::uint64_t rank) const {
  ZIPFLM_CHECK(rank >= 1 && rank <= vocab_, "rank out of distribution range");
  if (!cdf_.empty()) return cdf_[rank - 1];
  // Integral approximation for large vocab.
  double c = 0.0;
  const std::uint64_t head = std::min<std::uint64_t>(rank, 1ull << 16);
  for (std::uint64_t r = 1; r <= head; ++r) {
    c += std::pow(static_cast<double>(r) + q_, -s_);
  }
  if (rank > head) {
    const double a = static_cast<double>(head) + 0.5 + q_;
    const double b = static_cast<double>(rank) + 0.5 + q_;
    c += s_ == 1.0 ? std::log(b / a)
                   : (std::pow(a, 1.0 - s_) - std::pow(b, 1.0 - s_)) / (s_ - 1.0);
  }
  return std::min(1.0, c / h_);
}

ZipfSampler::ZipfSampler(std::uint64_t vocab, double exponent, double shift)
    : vocab_(vocab), s_(exponent), q_(shift) {
  ZIPFLM_CHECK(exponent > 0.0, "Zipf exponent must be positive");
  ZIPFLM_CHECK(shift >= 0.0, "Zipf shift must be non-negative");
  if (vocab_ != 0 && vocab_ <= kTableLimit) {
    const ZipfMandelbrot dist(vocab_, s_, q_);
    cdf_.resize(vocab_);
    for (std::uint64_t r = 1; r <= vocab_; ++r) cdf_[r - 1] = dist.cdf(r);
  } else {
    ZIPFLM_CHECK(s_ > 1.0,
                 "rejection sampler requires exponent > 1 (unbounded Zipf)");
    ZIPFLM_CHECK(q_ == 0.0,
                 "rejection sampler supports shift 0 only; use a table-sized "
                 "vocabulary for Zipf-Mandelbrot");
    b_ = std::pow(2.0, s_ - 1.0);
  }
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  return uses_table() ? sample_table(rng) : sample_rejection(rng);
}

std::uint64_t ZipfSampler::sample_table(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

std::uint64_t ZipfSampler::sample_rejection(Rng& rng) const {
  // Devroye, "Non-Uniform Random Variate Generation", X.6.1: rejection
  // sampler for the zeta(s) distribution.
  for (;;) {
    const double u = rng.uniform();
    const double v = rng.uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s_ - 1.0)));
    if (x < 1.0 || x > 9.0e18) continue;  // guard overflow
    const double t = std::pow(1.0 + 1.0 / x, s_ - 1.0);
    if (v * x * (t - 1.0) / (b_ - 1.0) <= t / b_) {
      const std::uint64_t r = static_cast<std::uint64_t>(x);
      if (vocab_ == 0 || r <= vocab_) return r;
      // out-of-vocabulary tail sample: redraw (truncated zeta)
    }
  }
}

void ZipfSampler::sample_tokens(Rng& rng, std::size_t n,
                                std::vector<std::uint64_t>& out) const {
  out.resize(n);
  for (auto& t : out) t = sample(rng) - 1;
}

}  // namespace zipflm
