#include "zipflm/data/tokenizer.hpp"

#include <cctype>

namespace zipflm {

namespace {
bool is_space(unsigned char c) { return std::isspace(c) != 0; }
bool is_word_char(unsigned char c) {
  return std::isalnum(c) != 0 || c >= 0x80;  // keep multi-byte sequences intact
}
}  // namespace

void WordTokenizer::tokenize(std::string_view text,
                             std::vector<std::string>& out) const {
  out.clear();
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (const char ch : text) {
    const auto c = static_cast<unsigned char>(ch);
    if (is_space(c)) {
      flush();
    } else if (is_word_char(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      // punctuation: its own single-character token
      flush();
      out.emplace_back(1, ch);
    }
  }
  flush();
}

std::vector<std::string> WordTokenizer::tokenize(std::string_view text) const {
  std::vector<std::string> out;
  tokenize(text, out);
  return out;
}

void CharTokenizer::tokenize(std::string_view text,
                             std::vector<std::string>& out) const {
  out.clear();
  std::size_t i = 0;
  while (i < text.size()) {
    const auto c = static_cast<unsigned char>(text[i]);
    std::size_t len = 1;
    if (c >= 0xF0) {
      len = 4;
    } else if (c >= 0xE0) {
      len = 3;
    } else if (c >= 0xC0) {
      len = 2;
    }
    if (i + len > text.size()) len = 1;  // truncated sequence: byte token
    // Validate continuation bytes; fall back to a single byte if invalid.
    for (std::size_t k = 1; k < len; ++k) {
      if ((static_cast<unsigned char>(text[i + k]) & 0xC0u) != 0x80u) {
        len = 1;
        break;
      }
    }
    out.emplace_back(text.substr(i, len));
    i += len;
  }
}

std::vector<std::string> CharTokenizer::tokenize(std::string_view text) const {
  std::vector<std::string> out;
  tokenize(text, out);
  return out;
}

}  // namespace zipflm
