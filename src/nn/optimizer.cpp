#include "zipflm/nn/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "zipflm/support/serialize.hpp"
#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/ops.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {

// Optimizer updates are elementwise, so they vectorize and chunk freely:
// every split produces the same bytes.  The spans below keep the exact
// per-element operation order of the scalar originals (clip, moment
// update, bias-corrected step), with the bias-correction denominators
// hoisted out of the loop — they depend only on the step count, and
// recomputing std::pow per element dominated the old Adam step.

template <class V>
void sgd_span(float* value, const float* grad, std::size_t n, float lr,
              float wd, float clip_limit) {
  using Reg = typename V::Reg;
  const bool use_clip = clip_limit > 0.0f;
  const Reg lo = V::set1(-clip_limit);
  const Reg hi = V::set1(clip_limit);
  const Reg lrv = V::set1(lr);
  const Reg wdv = V::set1(wd);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    Reg g = V::load(grad + i);
    if (use_clip) g = V::min(V::max(g, lo), hi);
    const Reg v = V::load(value + i);
    V::store(value + i, V::sub(v, V::mul(lrv, V::add(g, V::mul(wdv, v)))));
  }
  for (; i < n; ++i) {
    float g = grad[i];
    if (use_clip) {
      g = simd::ScalarOps::min(simd::ScalarOps::max(g, -clip_limit),
                               clip_limit);
    }
    value[i] -= lr * (g + wd * value[i]);
  }
}

template <class V>
void adam_span(float* value, const float* grad, float* m, float* v,
               std::size_t n, const Adam::Config& cfg, float bc1, float bc2) {
  using Reg = typename V::Reg;
  const bool use_clip = cfg.clip > 0.0f;
  const Reg lo = V::set1(-cfg.clip);
  const Reg hi = V::set1(cfg.clip);
  const Reg b1 = V::set1(cfg.beta1);
  const Reg ob1 = V::set1(1.0f - cfg.beta1);
  const Reg b2 = V::set1(cfg.beta2);
  const Reg ob2 = V::set1(1.0f - cfg.beta2);
  const Reg bc1v = V::set1(bc1);
  const Reg bc2v = V::set1(bc2);
  const Reg epsv = V::set1(cfg.eps);
  const Reg lrv = V::set1(cfg.lr);
  const Reg wdv = V::set1(cfg.weight_decay);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    Reg g = V::load(grad + i);
    if (use_clip) g = V::min(V::max(g, lo), hi);
    const Reg mv = V::add(V::mul(b1, V::load(m + i)), V::mul(ob1, g));
    const Reg vv =
        V::add(V::mul(b2, V::load(v + i)), V::mul(V::mul(ob2, g), g));
    V::store(m + i, mv);
    V::store(v + i, vv);
    const Reg mhat = V::div(mv, bc1v);
    const Reg vhat = V::div(vv, bc2v);
    const Reg val = V::load(value + i);
    const Reg upd = V::add(V::div(mhat, V::add(V::sqrt_(vhat), epsv)),
                           V::mul(wdv, val));
    V::store(value + i, V::sub(val, V::mul(lrv, upd)));
  }
  for (; i < n; ++i) {
    float g = grad[i];
    if (use_clip) {
      g = simd::ScalarOps::min(simd::ScalarOps::max(g, -cfg.clip), cfg.clip);
    }
    float& mi = m[i];
    float& vi = v[i];
    mi = cfg.beta1 * mi + (1.0f - cfg.beta1) * g;
    vi = cfg.beta2 * vi + (1.0f - cfg.beta2) * g * g;
    const float mhat = mi / bc1;
    const float vhat = vi / bc2;
    value[i] -= cfg.lr * (mhat / (std::sqrt(vhat) + cfg.eps) +
                          cfg.weight_decay * value[i]);
  }
}

template <class Fn>
void dispatch_chunks(std::size_t n, const Fn& fn) {
  ThreadPool::global().parallel_chunks(n, fn);
}

}  // namespace

void Optimizer::save_state(std::ostream&, std::span<Param* const>) const {}
void Optimizer::load_state(std::istream&, std::span<Param* const>) {}

void Sgd::step(std::span<Param* const> params) {
  const bool native = simd::active_backend() == simd::Backend::kNative;
  for (Param* p : params) {
    const float* g = p->grad.data().data();
    float* v = p->value.data().data();
    dispatch_chunks(p->value.data().size(),
                    [&](std::size_t b, std::size_t e) {
                      if (native) {
                        sgd_span<simd::NativeOps>(v + b, g + b, e - b, lr_,
                                                  weight_decay_, clip_);
                      } else {
                        sgd_span<simd::ScalarOps>(v + b, g + b, e - b, lr_,
                                                  weight_decay_, clip_);
                      }
                    });
  }
}

void Sgd::step_rows(Param& table, const Tensor& rows,
                    std::span<const Index> ids) {
  ZIPFLM_CHECK(rows.rank() == 2 && rows.cols() == table.value.cols(),
               "sparse step row width must match the table");
  ZIPFLM_CHECK(rows.rows() == static_cast<Index>(ids.size()),
               "one id per gradient row");
  const bool native = simd::active_backend() == simd::Backend::kNative;
  const std::size_t width = static_cast<std::size_t>(table.value.cols());
  const float* src = rows.data().data();
  float* val = table.value.data().data();
  // ids are unique (unique-exchange contract), so rows are independent.
  dispatch_chunks(ids.size(), [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      float* dst = val + static_cast<std::size_t>(ids[i]) * width;
      const float* g = src + i * width;
      if (native) {
        sgd_span<simd::NativeOps>(dst, g, width, lr_, weight_decay_, clip_);
      } else {
        sgd_span<simd::ScalarOps>(dst, g, width, lr_, weight_decay_, clip_);
      }
    }
  });
}

Adam::Moments& Adam::moments_for(const Param& p) {
  auto it = state_.find(&p);
  if (it == state_.end()) {
    Moments mo;
    mo.m = Tensor(p.value.shape());
    mo.v = Tensor(p.value.shape());
    it = state_.emplace(&p, std::move(mo)).first;
  }
  return it->second;
}

void Adam::set_moments(const Param& p, Tensor m, Tensor v) {
  ZIPFLM_CHECK(m.shape() == p.value.shape() && v.shape() == p.value.shape(),
               "Adam::set_moments: moment shapes must match the parameter");
  Moments& mo = moments_for(p);
  mo.m = std::move(m);
  mo.v = std::move(v);
}

void Adam::step(std::span<Param* const> params) {
  const float t = static_cast<float>(std::max<std::int64_t>(t_, 1));
  const float bc1 = 1.0f - std::pow(cfg_.beta1, t);
  const float bc2 = 1.0f - std::pow(cfg_.beta2, t);
  const bool native = simd::active_backend() == simd::Backend::kNative;
  for (Param* p : params) {
    Moments& mo = moments_for(*p);
    const float* g = p->grad.data().data();
    float* v = p->value.data().data();
    float* m_p = mo.m.data().data();
    float* v_p = mo.v.data().data();
    dispatch_chunks(p->value.data().size(),
                    [&](std::size_t b, std::size_t e) {
                      if (native) {
                        adam_span<simd::NativeOps>(v + b, g + b, m_p + b,
                                                   v_p + b, e - b, cfg_, bc1,
                                                   bc2);
                      } else {
                        adam_span<simd::ScalarOps>(v + b, g + b, m_p + b,
                                                   v_p + b, e - b, cfg_, bc1,
                                                   bc2);
                      }
                    });
  }
}

void Adam::step_rows(Param& table, const Tensor& rows,
                     std::span<const Index> ids) {
  ZIPFLM_CHECK(rows.rank() == 2 && rows.cols() == table.value.cols(),
               "sparse step row width must match the table");
  ZIPFLM_CHECK(rows.rows() == static_cast<Index>(ids.size()),
               "one id per gradient row");
  Moments& mo = moments_for(table);
  const float t = static_cast<float>(std::max<std::int64_t>(t_, 1));
  const float bc1 = 1.0f - std::pow(cfg_.beta1, t);
  const float bc2 = 1.0f - std::pow(cfg_.beta2, t);
  const bool native = simd::active_backend() == simd::Backend::kNative;
  const std::size_t width = static_cast<std::size_t>(table.value.cols());
  const float* src = rows.data().data();
  float* val = table.value.data().data();
  float* m_p = mo.m.data().data();
  float* v_p = mo.v.data().data();
  // ids are unique (unique-exchange contract), so rows are independent.
  dispatch_chunks(ids.size(), [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      const std::size_t base = static_cast<std::size_t>(ids[i]) * width;
      if (native) {
        adam_span<simd::NativeOps>(val + base, src + i * width, m_p + base,
                                   v_p + base, width, cfg_, bc1, bc2);
      } else {
        adam_span<simd::ScalarOps>(val + base, src + i * width, m_p + base,
                                   v_p + base, width, cfg_, bc1, bc2);
      }
    }
  });
}

void Adam::save_state(std::ostream& out,
                      std::span<Param* const> params) const {
  write_pod<std::int64_t>(out, t_);
  for (const Param* p : params) {
    const auto it = state_.find(p);
    write_pod<std::uint8_t>(out, it != state_.end() ? 1 : 0);
    if (it == state_.end()) continue;
    const Moments& mo = it->second;
    out.write(reinterpret_cast<const char*>(mo.m.data().data()),
              static_cast<std::streamsize>(mo.m.bytes()));
    out.write(reinterpret_cast<const char*>(mo.v.data().data()),
              static_cast<std::streamsize>(mo.v.bytes()));
  }
  ZIPFLM_CHECK(out.good(), "optimizer state write failed");
}

void Adam::load_state(std::istream& in, std::span<Param* const> params) {
  state_.clear();
  t_ = read_pod<std::int64_t>(in);
  ZIPFLM_CHECK(t_ >= 0, "negative Adam step count in optimizer state");
  for (Param* p : params) {
    if (read_pod<std::uint8_t>(in) == 0) continue;
    Moments& mo = moments_for(*p);
    in.read(reinterpret_cast<char*>(mo.m.data().data()),
            static_cast<std::streamsize>(mo.m.bytes()));
    in.read(reinterpret_cast<char*>(mo.v.data().data()),
            static_cast<std::streamsize>(mo.v.bytes()));
    ZIPFLM_CHECK(in.good(),
                 "optimizer state truncated for parameter " + p->name);
  }
}

float scaled_learning_rate(float base_lr, int nodes, int epoch, float decay) {
  ZIPFLM_CHECK(nodes >= 1, "node count must be positive");
  // Paper: multiply the 8-GPU base rate by log_e(#nodes).  Clamped below
  // at 1 so 1-2 node runs keep the base rate (ln 2 < 1 would otherwise
  // *reduce* the rate when adding the second node).
  const float scale = std::max(1.0f, std::log(static_cast<float>(nodes)));
  return base_lr * scale * std::pow(decay, static_cast<float>(epoch));
}

}  // namespace zipflm
