#include "zipflm/nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "zipflm/tensor/ops.hpp"

namespace zipflm {

void Sgd::step(std::span<Param* const> params) {
  for (Param* p : params) {
    if (clip_ > 0.0f) clip(p->grad, clip_);
    const float* g = p->grad.data().data();
    float* v = p->value.data().data();
    const std::size_t n = p->value.data().size();
    for (std::size_t i = 0; i < n; ++i) {
      v[i] -= lr_ * (g[i] + weight_decay_ * v[i]);
    }
  }
}

void Sgd::step_rows(Param& table, const Tensor& rows,
                    std::span<const Index> ids) {
  ZIPFLM_CHECK(rows.rank() == 2 && rows.cols() == table.value.cols(),
               "sparse step row width must match the table");
  ZIPFLM_CHECK(rows.rows() == static_cast<Index>(ids.size()),
               "one id per gradient row");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto src = rows.row(static_cast<Index>(i));
    auto dst = table.value.row(ids[i]);
    for (std::size_t j = 0; j < dst.size(); ++j) {
      float g = src[j];
      if (clip_ > 0.0f) g = std::clamp(g, -clip_, clip_);
      dst[j] -= lr_ * (g + weight_decay_ * dst[j]);
    }
  }
}

Adam::Moments& Adam::moments_for(const Param& p) {
  auto it = state_.find(&p);
  if (it == state_.end()) {
    Moments mo;
    mo.m = Tensor(p.value.shape());
    mo.v = Tensor(p.value.shape());
    it = state_.emplace(&p, std::move(mo)).first;
  }
  return it->second;
}

void Adam::apply_element(float& value, float g, Moments& mo,
                         std::size_t flat) {
  if (cfg_.clip > 0.0f) g = std::clamp(g, -cfg_.clip, cfg_.clip);
  float& m = mo.m.data()[flat];
  float& v = mo.v.data()[flat];
  m = cfg_.beta1 * m + (1.0f - cfg_.beta1) * g;
  v = cfg_.beta2 * v + (1.0f - cfg_.beta2) * g * g;
  const float bc1 =
      1.0f - std::pow(cfg_.beta1, static_cast<float>(std::max<std::int64_t>(t_, 1)));
  const float bc2 =
      1.0f - std::pow(cfg_.beta2, static_cast<float>(std::max<std::int64_t>(t_, 1)));
  const float mhat = m / bc1;
  const float vhat = v / bc2;
  value -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                      cfg_.weight_decay * value);
}

void Adam::step(std::span<Param* const> params) {
  for (Param* p : params) {
    Moments& mo = moments_for(*p);
    const float* g = p->grad.data().data();
    float* v = p->value.data().data();
    const std::size_t n = p->value.data().size();
    for (std::size_t i = 0; i < n; ++i) apply_element(v[i], g[i], mo, i);
  }
}

void Adam::step_rows(Param& table, const Tensor& rows,
                     std::span<const Index> ids) {
  ZIPFLM_CHECK(rows.rank() == 2 && rows.cols() == table.value.cols(),
               "sparse step row width must match the table");
  ZIPFLM_CHECK(rows.rows() == static_cast<Index>(ids.size()),
               "one id per gradient row");
  Moments& mo = moments_for(table);
  const Index width = table.value.cols();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto src = rows.row(static_cast<Index>(i));
    auto dst = table.value.row(ids[i]);
    const std::size_t base =
        static_cast<std::size_t>(ids[i]) * static_cast<std::size_t>(width);
    for (std::size_t j = 0; j < dst.size(); ++j) {
      apply_element(dst[j], src[j], mo, base + j);
    }
  }
}

float scaled_learning_rate(float base_lr, int nodes, int epoch, float decay) {
  ZIPFLM_CHECK(nodes >= 1, "node count must be positive");
  // Paper: multiply the 8-GPU base rate by log_e(#nodes).  Clamped below
  // at 1 so 1-2 node runs keep the base rate (ln 2 < 1 would otherwise
  // *reduce* the rate when adding the second node).
  const float scale = std::max(1.0f, std::log(static_cast<float>(nodes)));
  return base_lr * scale * std::pow(decay, static_cast<float>(epoch));
}

}  // namespace zipflm
