#include "zipflm/nn/lm_model.hpp"

#include <algorithm>

#include "zipflm/support/phase_timers.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {

namespace {

/// Slice a flat batch-major [B*T x D] block into T time-major [B x D]
/// step tensors.
void to_time_major(const Tensor& flat, Index batch, Index steps,
                   std::vector<Tensor>& out) {
  const Index d = flat.cols();
  out.assign(static_cast<std::size_t>(steps), Tensor());
  for (Index t = 0; t < steps; ++t) {
    Tensor& x = out[static_cast<std::size_t>(t)];
    x = Tensor({batch, d});
    for (Index b = 0; b < batch; ++b) {
      const auto src = flat.row(b * steps + t);
      auto dst = x.row(b);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
}

/// Inverse of to_time_major.
void to_batch_major(const std::vector<Tensor>& steps_data, Index batch,
                    Index steps, Tensor& flat) {
  const Index d = steps_data.front().cols();
  flat = Tensor({batch * steps, d});
  for (Index t = 0; t < steps; ++t) {
    const Tensor& x = steps_data[static_cast<std::size_t>(t)];
    for (Index b = 0; b < batch; ++b) {
      const auto src = x.row(b);
      auto dst = flat.row(b * steps + t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
}

}  // namespace

void copy_state_row(const RecurrentState& src, Index src_row,
                    RecurrentState& dst, Index dst_row) {
  ZIPFLM_CHECK(src.slots.size() == dst.slots.size(),
               "recurrent-state slot counts must match");
  for (std::size_t s = 0; s < src.slots.size(); ++s) {
    const Tensor& from = src.slots[s];
    Tensor& to = dst.slots[s];
    ZIPFLM_CHECK(from.cols() == to.cols(),
                 "recurrent-state slot widths must match");
    const auto src_span = from.row(src_row);
    auto dst_span = to.row(dst_row);
    std::copy(src_span.begin(), src_span.end(), dst_span.begin());
  }
}

// ---------------------------------------------------------------------------
// WordLm
// ---------------------------------------------------------------------------

WordLm::WordLm(const WordLmConfig& config)
    : config_(config),
      input_([&] {
        Rng rng = Rng::fork(config.seed, 1);
        return Embedding(config.vocab, config.embed_dim, rng);
      }()),
      loss_([&] {
        Rng rng = Rng::fork(config.seed, 3);
        return SampledSoftmaxLoss(
            config.vocab,
            config.proj_dim > 0 ? config.proj_dim : config.hidden_dim, rng);
      }()),
      dropout_rng_(Rng::fork(config.seed, 0xD20)) {
  ZIPFLM_CHECK(config.num_layers >= 1, "need at least one LSTM layer");
  layers_.reserve(static_cast<std::size_t>(config.num_layers));
  for (Index l = 0; l < config.num_layers; ++l) {
    Rng rng = Rng::fork(config.seed, 2 + static_cast<std::uint64_t>(l));
    const Index in_dim =
        l == 0 ? config.embed_dim
               : (config.proj_dim > 0 ? config.proj_dim : config.hidden_dim);
    layers_.emplace_back(
        LstmConfig{in_dim, config.hidden_dim, config.proj_dim}, rng);
  }
  // One dropout per layer boundary: embedding -> L0, L0 -> L1, ...,
  // L(n-1) -> softmax.
  for (Index l = 0; l <= config.num_layers; ++l) {
    dropouts_.emplace_back(config.dropout);
  }
}

void WordLm::run_forward(const Batch& batch, Tensor& h_all, bool train) {
  const Index b = batch.batch_size;
  const Index t = batch.seq_len;
  Tensor flat({b * t, config_.embed_dim});
  input_.forward(batch.inputs, flat);
  if (train) dropouts_.front().forward_train(flat, dropout_rng_);
  std::vector<Tensor> xs, ys;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    to_time_major(flat, b, t, xs);
    layers_[l].forward(xs, ys);
    to_batch_major(ys, b, t, flat);
    if (train) dropouts_[l + 1].forward_train(flat, dropout_rng_);
  }
  h_all = std::move(flat);
}

void WordLm::train_step_local(const Batch& batch,
                              std::span<const Index> candidates,
                              LmStepResult& out) {
  const Index b = batch.batch_size;
  const Index t = batch.seq_len;

  out.input_ids = batch.inputs;
  Tensor h_all;
  {
    PhaseScope phase("forward");
    run_forward(batch, h_all, /*train=*/true);
  }

  // Loss forward+backward and the layer backwards all count as the
  // "backward" phase: the sampled softmax fuses its forward with the
  // gradient computation, so the split cannot be finer.
  PhaseScope phase("backward");
  Tensor dflat;
  out.loss = loss_.forward_backward(h_all, batch.targets, candidates, dflat,
                                    out.output_grad);

  // The candidate-bias gradient rides the dense ALLREDUCE path (it is
  // |V| floats, negligible next to the embedding rows): scatter it into
  // the bias parameter's dense gradient.
  for (std::size_t i = 0; i < out.output_grad.ids.size(); ++i) {
    loss_.bias().grad(out.output_grad.ids[i]) +=
        out.output_grad.bias_rows(static_cast<Index>(i));
  }
  notify_param_ready(loss_.bias());

  std::vector<Tensor> douts, dxs;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    dropouts_[l + 1].backward(dflat);
    to_time_major(dflat, b, t, douts);
    layers_[l].backward(douts, dxs);
    // An LSTM layer's parameter gradients are final once its BPTT sweep
    // returns; notify in reverse declaration order to match the
    // reverse-backprop bucket plan.
    auto lps = layers_[l].params();
    for (std::size_t i = lps.size(); i-- > 0;) notify_param_ready(*lps[i]);
    to_batch_major(dxs, b, t, dflat);
  }
  dropouts_.front().backward(dflat);
  out.input_delta = std::move(dflat);
}

float WordLm::eval_loss(const Batch& batch) {
  Tensor h_all;
  run_forward(batch, h_all, /*train=*/false);
  return loss_.full_loss(h_all, batch.targets);
}

Tensor WordLm::next_token_logits(std::span<const Index> context) {
  ZIPFLM_CHECK(!context.empty(), "context must be non-empty");
  const Index t = static_cast<Index>(context.size());
  Batch pseudo;
  pseudo.batch_size = 1;
  pseudo.seq_len = t;
  pseudo.inputs.assign(context.begin(), context.end());
  Tensor h_all;
  run_forward(pseudo, h_all, /*train=*/false);
  // Last row = hidden state after the full context.
  Tensor last({1, h_all.cols()});
  const auto src = h_all.row(t - 1);
  std::copy(src.begin(), src.end(), last.row(0).begin());
  Tensor logits;
  loss_.full_logits(last, logits);
  logits.reshape({logits.cols()});
  return logits;
}

RecurrentState WordLm::initial_state(Index batch) const {
  ZIPFLM_CHECK(batch > 0, "state batch must be positive");
  const Index p = config_.proj_dim > 0 ? config_.proj_dim : config_.hidden_dim;
  RecurrentState state;
  state.slots.reserve(2 * layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    state.slots.emplace_back(Tensor({batch, config_.hidden_dim}));  // cell
    state.slots.emplace_back(Tensor({batch, p}));                   // output
  }
  return state;
}

void WordLm::step(std::span<const Index> tokens, RecurrentState& state,
                  Tensor& logits) {
  const Index b = static_cast<Index>(tokens.size());
  ZIPFLM_CHECK(b > 0, "step needs at least one stream");
  ZIPFLM_CHECK(state.slots.size() == 2 * layers_.size() && state.batch() == b,
               "recurrent state does not match this model/batch");
  Tensor x({b, config_.embed_dim});
  input_.forward(tokens, x);
  const Tensor* in = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Tensor& c = state.slots[2 * l];
    Tensor& r = state.slots[2 * l + 1];
    layers_[l].step(*in, c, r);
    in = &r;
  }
  loss_.full_logits(*in, logits);
}

std::vector<Param*> WordLm::dense_params() {
  // Embedding tables are synchronized sparsely; the softmax bias rides
  // along densely (|V| floats, negligible next to the K x D tables).
  std::vector<Param*> ps;
  for (auto& layer : layers_) {
    for (Param* p : layer.params()) ps.push_back(p);
  }
  ps.push_back(&loss_.bias());
  return ps;
}

std::vector<Param*> WordLm::all_params() {
  auto ps = dense_params();
  ps.push_back(&input_.param());
  ps.push_back(&loss_.embedding());
  return ps;
}

double WordLm::flops_per_token() const {
  // RNN stack plus a sampled softmax of ~1024 candidates (paper setting).
  const double p =
      static_cast<double>(config_.proj_dim > 0 ? config_.proj_dim
                                               : config_.hidden_dim);
  double rnn = 0.0;
  for (const auto& layer : layers_) rnn += layer.flops_per_token();
  return rnn + 2.0 * p * 1024.0 * 3.0;
}

std::size_t WordLm::activation_bytes_per_token() const {
  // Embedded input, fused LSTM gates, cell/hidden, projection output —
  // forward caches kept for BPTT, per layer.
  const std::size_t e = static_cast<std::size_t>(config_.embed_dim);
  const std::size_t h = static_cast<std::size_t>(config_.hidden_dim);
  const std::size_t p = static_cast<std::size_t>(
      config_.proj_dim > 0 ? config_.proj_dim : config_.hidden_dim);
  return (e + static_cast<std::size_t>(config_.num_layers) *
                  (4 * h + 3 * h + 2 * p)) *
         sizeof(float);
}

void WordLm::zero_grad() {
  for (Param* p : all_params()) p->zero_grad();
}

// ---------------------------------------------------------------------------
// CharLm
// ---------------------------------------------------------------------------

CharLm::CharLm(const CharLmConfig& config)
    : config_(config),
      input_([&]() -> std::unique_ptr<Embedding> {
        if (config.shard_world >= 1) return nullptr;
        Rng rng = Rng::fork(config.seed, 11);
        return std::make_unique<Embedding>(config.vocab, config.embed_dim,
                                           rng);
      }()),
      sharded_input_([&]() -> std::unique_ptr<ShardedEmbedding> {
        if (config.shard_world < 1) return nullptr;
        // Same fork as the replicated table: the shard is a bitwise
        // slice of the init the replicated model would draw.
        Rng rng = Rng::fork(config.seed, 11);
        return std::make_unique<ShardedEmbedding>(config.vocab,
                                                  config.embed_dim,
                                                  config.shard_rank,
                                                  config.shard_world, rng);
      }()),
      rhn_([&] {
        Rng rng = Rng::fork(config.seed, 12);
        return RhnLayer(RhnConfig{config.embed_dim, config.hidden_dim,
                                  config.depth},
                        rng);
      }()),
      loss_([&] {
        Rng rng = Rng::fork(config.seed, 13);
        return FullSoftmaxLoss(config.vocab, config.hidden_dim, rng);
      }()),
      embed_dropout_(config.dropout),
      output_dropout_(config.dropout),
      dropout_rng_(Rng::fork(config.seed, 0xD21)) {
  // Relay the RHN's per-parameter backward-completion events to the
  // model-level hook (the overlap trigger for bucketed grad exchange).
  rhn_.set_param_ready_hook(
      [this](const Param& p) { notify_param_ready(p); });
}

void CharLm::train_step_local(const Batch& batch,
                              std::span<const Index> /*candidates*/,
                              LmStepResult& out) {
  const Index b = batch.batch_size;
  const Index t = batch.seq_len;
  const Index k = b * t;

  out.input_ids = batch.inputs;
  out.output_grad.ids.clear();

  Tensor h_all;
  {
    PhaseScope phase("forward");
    Tensor flat_emb({k, config_.embed_dim});
    embed_tokens(batch.inputs, flat_emb);
    embed_dropout_.forward_train(flat_emb, dropout_rng_);
    std::vector<Tensor> xs;
    to_time_major(flat_emb, b, t, xs);
    std::vector<Tensor> ys;
    rhn_.forward(xs, ys);
    to_batch_major(ys, b, t, h_all);
    output_dropout_.forward_train(h_all, dropout_rng_);
  }

  // The full-softmax loss fuses forward and gradient; it is attributed
  // to "backward" together with the RHN BPTT sweep.
  PhaseScope phase("backward");
  Tensor dh_all;
  out.loss = loss_.forward_backward(h_all, batch.targets, dh_all);
  // The dense softmax parameters accumulate only inside forward_backward
  // — their gradients are final before the RHN sweep even starts.
  notify_param_ready(loss_.bias());
  notify_param_ready(loss_.embedding());
  output_dropout_.backward(dh_all);

  std::vector<Tensor> douts;
  to_time_major(dh_all, b, t, douts);
  std::vector<Tensor> dxs;
  rhn_.backward(douts, dxs);
  to_batch_major(dxs, b, t, out.input_delta);
  embed_dropout_.backward(out.input_delta);
}

float CharLm::eval_loss(const Batch& batch) {
  const Index b = batch.batch_size;
  const Index t = batch.seq_len;
  Tensor flat_emb({b * t, config_.embed_dim});
  embed_tokens(batch.inputs, flat_emb);
  std::vector<Tensor> xs;
  to_time_major(flat_emb, b, t, xs);
  std::vector<Tensor> ys;
  rhn_.forward(xs, ys);
  Tensor h_all;
  to_batch_major(ys, b, t, h_all);
  return loss_.loss(h_all, batch.targets);
}

Tensor CharLm::next_token_logits(std::span<const Index> context) {
  ZIPFLM_CHECK(!context.empty(), "context must be non-empty");
  const Index t = static_cast<Index>(context.size());
  Tensor flat_emb({t, config_.embed_dim});
  embed_tokens(context, flat_emb);
  std::vector<Tensor> xs;
  to_time_major(flat_emb, 1, t, xs);
  std::vector<Tensor> ys;
  rhn_.forward(xs, ys);
  Tensor logits;
  loss_.full_logits(ys.back(), logits);
  logits.reshape({logits.cols()});
  return logits;
}

RecurrentState CharLm::initial_state(Index batch) const {
  ZIPFLM_CHECK(batch > 0, "state batch must be positive");
  RecurrentState state;
  state.slots.emplace_back(Tensor({batch, config_.hidden_dim}));
  return state;
}

void CharLm::step(std::span<const Index> tokens, RecurrentState& state,
                  Tensor& logits) {
  const Index b = static_cast<Index>(tokens.size());
  ZIPFLM_CHECK(b > 0, "step needs at least one stream");
  ZIPFLM_CHECK(state.slots.size() == 1 && state.batch() == b,
               "recurrent state does not match this model/batch");
  Tensor x({b, config_.embed_dim});
  embed_tokens(tokens, x);
  rhn_.step(x, state.slots.front());
  loss_.full_logits(state.slots.front(), logits);
}

std::vector<Param*> CharLm::dense_params() {
  auto ps = rhn_.params();
  ps.push_back(&loss_.embedding());
  ps.push_back(&loss_.bias());
  return ps;
}

std::vector<Param*> CharLm::all_params() {
  auto ps = dense_params();
  ps.push_back(&input_embedding_param());
  return ps;
}

void CharLm::embed_tokens(std::span<const Index> ids, Tensor& out) const {
  if (sharded_input_ != nullptr) {
    // Incremental decode (next_token_logits / step) would need a pull
    // per token; serving runs on replicated tables.  The trainer's
    // pull exchange installs the cache this forward reads.
    ZIPFLM_CHECK(sharded_input_->cache_ready(),
                 "sharded embedding forward without a pulled row cache "
                 "(training pull not run, or incremental decode on a "
                 "sharded model)");
    sharded_input_->forward(ids, out);
  } else {
    input_->forward(ids, out);
  }
}

double CharLm::flops_per_token() const {
  const double h = static_cast<double>(config_.hidden_dim);
  const double v = static_cast<double>(config_.vocab);
  return rhn_.flops_per_token() + 2.0 * h * v * 3.0;
}

std::size_t CharLm::activation_bytes_per_token() const {
  const std::size_t e = static_cast<std::size_t>(config_.embed_dim);
  const std::size_t h = static_cast<std::size_t>(config_.hidden_dim);
  const std::size_t depth = static_cast<std::size_t>(config_.depth);
  const std::size_t v = static_cast<std::size_t>(config_.vocab);
  return (e + depth * 3 * h + v) * sizeof(float);
}

void CharLm::zero_grad() {
  for (Param* p : all_params()) p->zero_grad();
}

}  // namespace zipflm
