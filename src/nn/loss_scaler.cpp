#include "zipflm/nn/loss_scaler.hpp"

#include <cmath>

namespace zipflm {

bool LossScaler::has_overflow(std::span<Param* const> params) {
  for (const Param* p : params) {
    for (float v : p->grad.data()) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

bool LossScaler::unscale(std::span<Param* const> params) {
  if (has_overflow(params)) {
    ++skipped_;
    update(true);
    return false;
  }
  const float inv = 1.0f / scale_;
  for (Param* p : params) {
    for (float& v : p->grad.data()) v *= inv;
  }
  update(false);
  return true;
}

void LossScaler::update(bool overflow) {
  if (!dynamic_) return;
  if (overflow) {
    scale_ = std::max(kMinScale, scale_ * 0.5f);
    good_streak_ = 0;
  } else if (++good_streak_ >= kGrowthInterval) {
    scale_ = std::min(kMaxScale, scale_ * 2.0f);
    good_streak_ = 0;
  }
}

}  // namespace zipflm
