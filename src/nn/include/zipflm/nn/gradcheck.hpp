// Central-finite-difference gradient checking, the correctness oracle
// for every hand-written backward pass in this library.
#pragma once

#include <functional>

#include "zipflm/nn/param.hpp"

namespace zipflm {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  Index worst_index = -1;
  bool passed(double tol) const { return max_rel_error <= tol; }
};

/// Compare an analytic gradient against central differences of a scalar
/// loss.  `loss_fn` must recompute the loss from the current value of
/// `values`; `analytic` holds d(loss)/d(values).  Relative error uses
/// max(|a|, |n|, eps_floor) as denominator so near-zero entries do not
/// blow up the metric.
GradCheckResult grad_check(Tensor& values, const Tensor& analytic,
                           const std::function<double()>& loss_fn,
                           double step = 1e-3, double eps_floor = 1e-3);

}  // namespace zipflm
