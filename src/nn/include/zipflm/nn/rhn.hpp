// Recurrent Highway Network layer (Zilly et al.), the paper's char-LM
// architecture (Section IV-B): one RHN layer of recurrence depth L with
// H cells, coupled carry gate (c = 1 - t).
//
// Per timestep, with s_0 = y_{t-1}:
//   for l = 1..L:
//     h_l = tanh(x W_h [l==1] + s_{l-1} R_h^l + b_h^l)
//     t_l = sigm(x W_t [l==1] + s_{l-1} R_t^l + b_t^l)
//     s_l = h_l ⊙ t_l + s_{l-1} ⊙ (1 - t_l)
//   y_t = s_L
#pragma once

#include <functional>
#include <vector>

#include "zipflm/nn/param.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

struct RhnConfig {
  Index input_dim = 0;
  Index hidden_dim = 0;
  Index depth = 1;  ///< highway micro-layers per timestep (paper: 10)
};

class RhnLayer {
 public:
  RhnLayer(const RhnConfig& config, Rng& rng);

  /// xs: T inputs [B x input_dim]; out: T outputs [B x hidden_dim].
  void forward(const std::vector<Tensor>& xs, std::vector<Tensor>& out);

  /// dout -> parameter grads + dxs.  Must follow a matching forward().
  void backward(const std::vector<Tensor>& dout, std::vector<Tensor>& dxs);

  /// Incremental inference: advance B independent streams one timestep.
  /// x: [B x input_dim]; s: [B x hidden_dim] highway state, updated in
  /// place.  Starting from zero s and stepping T times is bitwise
  /// identical to forward() over the same inputs.  No caches, no grads.
  void step(const Tensor& x, Tensor& s) const;

  std::vector<Param*> params();
  void zero_grad();

  /// Invoked (training thread) as each parameter's gradient finalizes
  /// during backward(): depth L-1 down to 0, rt/rh/bt/bh per depth,
  /// then wt/wh last — reverse-backprop order, the overlap trigger for
  /// bucketed gradient exchange.  Empty = no calls.
  void set_param_ready_hook(std::function<void(const Param&)> hook) {
    param_ready_hook_ = std::move(hook);
  }

  Index output_dim() const noexcept { return config_.hidden_dim; }
  const RhnConfig& config() const noexcept { return config_; }

  double flops_per_token() const noexcept;

 private:
  RhnConfig config_;
  Param wh_;  ///< [input_dim x H], first micro-layer only
  Param wt_;  ///< [input_dim x H]
  struct DepthParams {
    Param rh;  ///< [H x H]
    Param rt;  ///< [H x H]
    Param bh;  ///< [H]
    Param bt;  ///< [H]
  };
  std::vector<DepthParams> depth_;

  struct MicroCache {
    Tensor h;  ///< [B x H]
    Tensor t;  ///< [B x H]
    Tensor s;  ///< [B x H] state after this micro-layer
  };
  struct StepCache {
    Tensor x;
    std::vector<MicroCache> micro;
  };
  std::vector<StepCache> cache_;

  std::function<void(const Param&)> param_ready_hook_;

  /// Backward staging: per-depth [T·B x H] stacks of the cell gradients
  /// and entry states, so every weight gradient is ONE k = T·B gemm
  /// instead of T rank-B updates (8x less C traffic on the seed model).
  struct BackwardStage {
    Tensor dzh;     ///< [T·B x H]
    Tensor dzt;     ///< [T·B x H]
    Tensor s_prev;  ///< [T·B x H]
  };
  std::vector<BackwardStage> stage_;  ///< one per depth
  Tensor x_stack_;                    ///< [T·B x input_dim]
  Tensor dx_stack_;                   ///< [T·B x input_dim]
};

}  // namespace zipflm
