// Text generation: ancestral sampling from a trained language model —
// the "use the model" side of the paper's noisy-channel motivation.
#pragma once

#include <span>
#include <vector>

#include "zipflm/nn/lm_model.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

struct GenerateOptions {
  double temperature = 1.0;  ///< <1 sharpens, >1 flattens
  Index max_context = 32;    ///< sliding window fed to the model
  Index top_k = 0;           ///< 0 = full distribution, else truncate
};

/// One token sampled from a full-vocabulary logit vector (temperature,
/// optional top-k truncation, softmax sampling).  Consumes exactly one
/// uniform draw from `rng` — the shared sampling kernel of the windowed
/// path, the incremental path, and the serving engine.
Index sample_from_logits(std::span<const float> logits,
                         const GenerateOptions& options, Rng& rng);

/// One token sampled from p(next | context).
Index sample_next_token(LmModel& model, std::span<const Index> context,
                        const GenerateOptions& options, Rng& rng);

/// Continue `prompt` by `count` tokens.  Returns prompt + continuation.
/// When the whole continuation fits in `options.max_context`, the model's
/// recurrent state is carried incrementally — one O(1) step per token
/// instead of re-running the window — with bitwise-identical samples;
/// longer generations fall back to the sliding-window path.
std::vector<Index> generate_tokens(LmModel& model,
                                   std::span<const Index> prompt,
                                   std::size_t count,
                                   const GenerateOptions& options, Rng& rng);

}  // namespace zipflm
