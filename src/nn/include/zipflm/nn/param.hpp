// A trainable parameter: value + gradient accumulator of the same shape.
// Dense parameters are synchronized with ALLREDUCE; embedding tables are
// special-cased by the exchange algorithms in zipflm::core.
#pragma once

#include <string>

#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.zero(); }
  Index size() const noexcept { return value.size(); }
};

}  // namespace zipflm
