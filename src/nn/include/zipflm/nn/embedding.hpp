// Input/output embedding table (Section II-A).
//
// Forward is a row gather.  Backward does NOT touch the table: it hands
// the caller the dense per-token gradient ∆ (K x D) plus the token ids,
// because applying ∆ is exactly the step the paper's distributed exchange
// algorithms (dense ALLGATHER baseline vs UNIQUE) own.
#pragma once

#include <span>

#include "zipflm/nn/param.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/tensor/ops.hpp"

namespace zipflm {

class Embedding {
 public:
  Embedding(Index vocab, Index dim, Rng& rng, float init_scale = 0.05f)
      : table_("embedding",
               Tensor::uniform({vocab, dim}, rng, -init_scale, init_scale)) {}

  Index vocab() const { return table_.value.rows(); }
  Index dim() const { return table_.value.cols(); }

  Param& param() noexcept { return table_; }
  const Param& param() const noexcept { return table_; }

  /// out[i] = table[ids[i]]; out must be (ids.size() x dim).
  void forward(std::span<const Index> ids, Tensor& out) const {
    gather_rows(table_.value, ids, out);
  }

  /// Single-rank reference update path (used by tests and by the G=1
  /// fast path): accumulate token gradients into the table rows in token
  /// order — the serialized "reverse mapping" of Section II-A.
  void apply_token_gradients(const Tensor& delta, std::span<const Index> ids) {
    scatter_add_rows(delta, ids, table_.grad);
  }

 private:
  Param table_;
};

}  // namespace zipflm
