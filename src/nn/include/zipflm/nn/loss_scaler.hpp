// Loss scaling for reduced-precision training and communication
// (Section III-C, citing Micikevicius et al. [33]).
//
// Static mode uses a fixed factor F (the paper evaluates 256/512/1024).
// Dynamic mode implements the standard backoff/growth policy: halve on
// overflow and skip the step, double after a run of clean steps.
#pragma once

#include <cstdint>
#include <span>

#include "zipflm/nn/param.hpp"

namespace zipflm {

class LossScaler {
 public:
  /// Fixed scale F.
  static LossScaler fixed(float scale) { return LossScaler(scale, false); }
  /// Dynamic scaling starting at initial_scale.
  static LossScaler dynamic(float initial_scale = 1024.0f) {
    return LossScaler(initial_scale, true);
  }

  float scale() const noexcept { return scale_; }

  /// True if any gradient is non-finite (the overflow signal).
  static bool has_overflow(std::span<Param* const> params);

  /// Multiply every gradient by 1/scale (after backward ran on the
  /// scaled loss).  Returns false — and leaves gradients untouched — if
  /// an overflow was detected, in which case the step must be skipped.
  bool unscale(std::span<Param* const> params);

  /// Dynamic policy update; no-op for a fixed scaler.
  void update(bool overflow);

  int skipped_steps() const noexcept { return skipped_; }

  /// Checkpointable policy state (the scale and backoff counters; whether
  /// the scaler is fixed or dynamic is configuration, not state).
  struct State {
    float scale = 1.0f;
    std::int32_t good_streak = 0;
    std::int32_t skipped = 0;
  };

  State state() const noexcept { return {scale_, good_streak_, skipped_}; }
  void restore(const State& s) noexcept {
    scale_ = s.scale;
    good_streak_ = s.good_streak;
    skipped_ = s.skipped;
  }

 private:
  LossScaler(float scale, bool dynamic) : scale_(scale), dynamic_(dynamic) {}

  float scale_;
  bool dynamic_;
  int good_streak_ = 0;
  int skipped_ = 0;

  static constexpr int kGrowthInterval = 200;
  static constexpr float kMaxScale = 65536.0f;
  static constexpr float kMinScale = 1.0f;
};

}  // namespace zipflm
