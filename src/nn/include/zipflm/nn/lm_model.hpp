// End-to-end language models composing the nn substrate, mirroring the
// paper's two test-cases (Section IV-B):
//
//  * WordLm — input embedding -> LSTM(2048, proj 512) -> sampled softmax.
//    Both embedding gradients are row-sparse; they are what the paper's
//    uniqueness + seeding techniques synchronize.
//  * CharLm — input embedding -> RHN(depth 10) -> full softmax.  Only the
//    input embedding gradient is sparse; the output embedding is dense.
//
// A model's train_step_local() runs forward+backward on one rank's local
// batch and reports the sparse embedding gradients *without applying
// them* — applying them is the distributed exchange's job (zipflm::core).
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <numbers>
#include <span>
#include <vector>

#include "zipflm/data/batch.hpp"
#include "zipflm/nn/dropout.hpp"
#include "zipflm/nn/embedding.hpp"
#include "zipflm/nn/lstm.hpp"
#include "zipflm/nn/rhn.hpp"
#include "zipflm/nn/sharded_embedding.hpp"
#include "zipflm/nn/softmax_loss.hpp"

namespace zipflm {

/// Everything one local training step produces for the synchronization
/// phase.
struct LmStepResult {
  float loss = 0.0f;              ///< mean training CE (nats/token)
  std::vector<Index> input_ids;   ///< K = B*T token ids, batch-major
  Tensor input_delta;             ///< [K x embed_dim] input-embedding grad
  SparseRowGrad output_grad;      ///< sampled softmax only (ids empty otherwise)
};

/// Exported recurrent hidden state of B independent streams, the unit of
/// incremental inference.  The slot layout is model-specific (WordLm:
/// cell + output per LSTM layer; CharLm: one highway state), but every
/// slot is a [B x dim] matrix whose rows index streams — so a serving
/// layer can gather per-session rows into a batch and scatter them back
/// without knowing the architecture.
struct RecurrentState {
  std::vector<Tensor> slots;

  Index batch() const noexcept {
    return slots.empty() ? 0 : slots.front().rows();
  }
};

/// Copy one stream's state: dst row `dst_row` = src row `src_row` across
/// all slots.  Shapes (other than batch) must match.
void copy_state_row(const RecurrentState& src, Index src_row,
                    RecurrentState& dst, Index dst_row);

class LmModel {
 public:
  virtual ~LmModel() = default;

  /// Forward + backward on this rank's batch.  candidates: the sampled-
  /// softmax candidate set (ignored by full-softmax models; must include
  /// all batch targets otherwise).
  virtual void train_step_local(const Batch& batch,
                                std::span<const Index> candidates,
                                LmStepResult& out) = 0;

  /// Full-vocabulary evaluation loss (nats/token) — perplexity is
  /// exp(loss), bits-per-char is loss/ln 2.
  virtual float eval_loss(const Batch& batch) = 0;

  /// Full-vocabulary logits for the token following `context` (a single
  /// sequence).  Powers evaluation and text generation.
  virtual Tensor next_token_logits(std::span<const Index> context) = 0;

  /// Zero recurrent state for `batch` independent streams.
  virtual RecurrentState initial_state(Index batch) const = 0;

  /// Advance every stream by one token — tokens[b] is stream b's next
  /// input — and emit full-vocabulary logits [batch x V] for the token
  /// that follows.  Inference only: no dropout, no BPTT caches, no
  /// gradients.  Stepping a zero state through a history is bitwise
  /// identical to next_token_logits() over that history, which is what
  /// lets the serving layer carry state in O(1) per token.
  virtual void step(std::span<const Index> tokens, RecurrentState& state,
                    Tensor& logits) = 0;

  /// Parameters synchronized densely (ALLREDUCE) every step.
  virtual std::vector<Param*> dense_params() = 0;

  /// The row-sharded input table, or nullptr when the input embedding
  /// is replicated (the default).  Non-null changes the trainer's
  /// sparse path: forward rows are pulled per step, gradient rows are
  /// pushed to their owners, and only the owned slice is updated.
  virtual ShardedEmbedding* sharded_input() { return nullptr; }
  /// All parameters (dense + embeddings), for checkpoint/overflow scans.
  virtual std::vector<Param*> all_params() = 0;

  virtual Param& input_embedding_param() = 0;
  /// Output embedding when its gradient is row-sparse, else nullptr.
  virtual Param* sampled_output_param() = 0;

  virtual Index vocab() const = 0;
  virtual Index embed_dim() const = 0;
  virtual double flops_per_token() const = 0;
  /// Rough per-token activation footprint (bytes) for the simulated-GPU
  /// memory accounting.
  virtual std::size_t activation_bytes_per_token() const = 0;
  virtual void zero_grad() = 0;

  /// The dropout mask stream, exposed so checkpoints can capture and
  /// restore it — exact resume must replay the same masks the
  /// uninterrupted run would have drawn.
  virtual Rng& dropout_rng() = 0;

  /// Per-parameter backward-completion hook, the overlap trigger: the
  /// model invokes it on the training thread the moment a dense
  /// parameter's gradient accumulation is final for the step (its
  /// bucket can start reducing while the rest of backward runs).  The
  /// invocation sequence is part of the model's fixed backward code —
  /// never timing — so it is identical on every rank and every run.
  /// Empty hook = no overhead.  Not invoked for embedding parameters
  /// (they take the sparse exchange path).
  using BackwardHook = std::function<void(const Param&)>;
  void set_backward_hook(BackwardHook hook) {
    backward_hook_ = std::move(hook);
  }

 protected:
  void notify_param_ready(const Param& p) {
    if (backward_hook_) backward_hook_(p);
  }
  BackwardHook backward_hook_;

 public:

  /// Bytes of parameters + gradients (the model's static device cost).
  std::size_t static_bytes() {
    std::size_t total = 0;
    for (const Param* p : all_params()) total += 2 * p->value.bytes();
    return total;
  }
};

struct WordLmConfig {
  Index vocab = 100'000;   ///< Section IV-A: 100k most frequent words
  Index embed_dim = 512;
  Index hidden_dim = 2048;
  Index proj_dim = 512;
  Index num_layers = 1;    ///< the paper's §II allows "several RNN layers"
  float dropout = 0.0f;    ///< between embedding/layers/softmax
  std::uint64_t seed = 1;
};

class WordLm final : public LmModel {
 public:
  explicit WordLm(const WordLmConfig& config);

  void train_step_local(const Batch& batch,
                        std::span<const Index> candidates,
                        LmStepResult& out) override;
  float eval_loss(const Batch& batch) override;
  Tensor next_token_logits(std::span<const Index> context) override;
  RecurrentState initial_state(Index batch) const override;
  void step(std::span<const Index> tokens, RecurrentState& state,
            Tensor& logits) override;
  std::vector<Param*> dense_params() override;
  std::vector<Param*> all_params() override;
  Param& input_embedding_param() override { return input_.param(); }
  Param* sampled_output_param() override { return &loss_.embedding(); }
  Index vocab() const override { return config_.vocab; }
  Index embed_dim() const override { return config_.embed_dim; }
  double flops_per_token() const override;
  std::size_t activation_bytes_per_token() const override;
  void zero_grad() override;
  Rng& dropout_rng() override { return dropout_rng_; }

 private:
  void run_forward(const Batch& batch, Tensor& h_all, bool train);

  WordLmConfig config_;
  Embedding input_;
  std::vector<LstmLayer> layers_;
  SampledSoftmaxLoss loss_;
  std::vector<Dropout> dropouts_;  ///< one per layer boundary (train only)
  Rng dropout_rng_;
};

struct CharLmConfig {
  Index vocab = 98;        ///< English character inventory
  Index embed_dim = 256;
  Index hidden_dim = 1792; ///< paper: RHN with 1792 cells
  Index depth = 10;        ///< paper: recurrence depth 10
  float dropout = 0.0f;    ///< §IV-B: char LM trains with dropout
  std::uint64_t seed = 1;
  /// shard_world >= 1 row-shards the input table over that many ranks
  /// (1 is a legal one-way shard — the sharded code path with nothing
  /// to ship): this replica holds rows [shard_rank*V/G,
  /// (shard_rank+1)*V/G) only and relies on the trainer's pull/push
  /// exchange.  0 (the default) keeps the replicated table.  The RNG
  /// stream consumed for the shard is the full replicated table's, so
  /// shards of any G are bitwise slices of the same init.
  int shard_rank = 0;
  int shard_world = 0;
};

class CharLm final : public LmModel {
 public:
  explicit CharLm(const CharLmConfig& config);

  void train_step_local(const Batch& batch,
                        std::span<const Index> candidates,
                        LmStepResult& out) override;
  float eval_loss(const Batch& batch) override;
  Tensor next_token_logits(std::span<const Index> context) override;
  RecurrentState initial_state(Index batch) const override;
  void step(std::span<const Index> tokens, RecurrentState& state,
            Tensor& logits) override;
  std::vector<Param*> dense_params() override;
  std::vector<Param*> all_params() override;
  ShardedEmbedding* sharded_input() override { return sharded_input_.get(); }
  Param& input_embedding_param() override {
    return sharded_input_ != nullptr ? sharded_input_->param()
                                     : input_->param();
  }
  Param* sampled_output_param() override { return nullptr; }
  Index vocab() const override { return config_.vocab; }
  Index embed_dim() const override { return config_.embed_dim; }
  double flops_per_token() const override;
  std::size_t activation_bytes_per_token() const override;
  void zero_grad() override;
  Rng& dropout_rng() override { return dropout_rng_; }

 private:
  /// Reads token rows through whichever table exists: the replicated
  /// Embedding, or the sharded layer's step-scoped pull cache.
  void embed_tokens(std::span<const Index> ids, Tensor& out) const;

  CharLmConfig config_;
  std::unique_ptr<Embedding> input_;          ///< replicated (default)
  std::unique_ptr<ShardedEmbedding> sharded_input_;  ///< shard_world > 1
  RhnLayer rhn_;
  FullSoftmaxLoss loss_;
  Dropout embed_dropout_;
  Dropout output_dropout_;
  Rng dropout_rng_;
};

/// Perplexity and bits-per-character from a nats/token loss.
inline double perplexity(double nats) { return std::exp(nats); }
inline double bits_per_token(double nats) { return nats / std::numbers::ln2; }

}  // namespace zipflm
