// Output embedding + softmax + cross-entropy, in the two flavours the
// paper evaluates:
//
//  * FullSoftmaxLoss — normalizes over the whole vocabulary (used by the
//    char LM, Section IV-B, where |V| is small).  The output-embedding
//    gradient is dense and synchronizes with ALLREDUCE like any other
//    parameter.
//  * SampledSoftmaxLoss — normalizes over a candidate subset S ∪ targets
//    (word LM).  The output-embedding gradient is row-sparse over the
//    candidate ids, which is exactly the gradient the paper's seeding +
//    uniqueness techniques synchronize.
#pragma once

#include <span>

#include "zipflm/nn/param.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

class FullSoftmaxLoss {
 public:
  FullSoftmaxLoss(Index vocab, Index dim, Rng& rng, float init_scale = 0.05f);

  /// h: [N x dim] final hidden states; targets: N token ids.
  /// Returns mean cross-entropy (nats/token); fills dh and accumulates
  /// gradients into embedding()/bias().
  float forward_backward(const Tensor& h, std::span<const Index> targets,
                         Tensor& dh);

  /// Evaluation-only loss (no gradients).
  float loss(const Tensor& h, std::span<const Index> targets) const;

  /// Raw logits over the whole vocabulary: logits = h E^T + b.
  void full_logits(const Tensor& h, Tensor& logits) const;

  Param& embedding() noexcept { return emb_; }
  Param& bias() noexcept { return bias_; }
  Index vocab() const { return emb_.value.rows(); }
  Index dim() const { return emb_.value.cols(); }

 private:
  Param emb_;   ///< [V x dim]
  Param bias_;  ///< [V]
};

/// Row-sparse gradient of the output embedding produced by one step of
/// sampled softmax: d_rows[i] is the gradient of embedding row ids[i].
/// ids are unique within one step by construction.
struct SparseRowGrad {
  std::vector<Index> ids;
  Tensor rows;      ///< [ids.size() x dim]
  Tensor bias_rows; ///< [ids.size()] gradient of the per-word bias
};

class SampledSoftmaxLoss {
 public:
  SampledSoftmaxLoss(Index vocab, Index dim, Rng& rng,
                     float init_scale = 0.05f);

  /// candidates: unique candidate ids; every target must appear in it
  /// (the layer validates).  Returns mean CE over the candidate set and
  /// fills dh plus the sparse output-embedding gradient.
  ///
  /// log_expected_counts (optional, one per candidate): the sampled-
  /// softmax correction of Jean et al. / [29] — logit_j -= log E[count_j]
  /// under the proposal distribution, which de-biases the truncated
  /// softmax toward the full one.  Pass empty to skip (the paper's
  /// simplified "include the targets" variant).
  float forward_backward(const Tensor& h, std::span<const Index> targets,
                         std::span<const Index> candidates, Tensor& dh,
                         SparseRowGrad& grad,
                         std::span<const float> log_expected_counts = {});

  /// Evaluation against the full vocabulary (perplexity must be measured
  /// over V, not over the sampled subset).
  float full_loss(const Tensor& h, std::span<const Index> targets) const;

  /// Raw logits over the whole vocabulary (evaluation / generation).
  void full_logits(const Tensor& h, Tensor& logits) const;

  Param& embedding() noexcept { return emb_; }
  Param& bias() noexcept { return bias_; }
  Index vocab() const { return emb_.value.rows(); }
  Index dim() const { return emb_.value.cols(); }

 private:
  Param emb_;
  Param bias_;
};

}  // namespace zipflm
