// LSTM layer with optional recurrent projection — the paper's word-LM
// architecture (Section IV-B): one LSTM layer of 2048 cells with a 512
// projection, following Jozefowicz et al. [36].
//
// Explicit backprop-through-time, no autograd: forward caches per-step
// activations, backward replays them in reverse.  Gate layout inside the
// fused [B x 4H] pre-activation is (input, forget, candidate, output).
#pragma once

#include <vector>

#include "zipflm/nn/param.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

struct LstmConfig {
  Index input_dim = 0;
  Index hidden_dim = 0;
  Index proj_dim = 0;  ///< 0 disables the projection (output dim = hidden)
};

class LstmLayer {
 public:
  LstmLayer(const LstmConfig& config, Rng& rng);

  /// xs: T step inputs, each [B x input_dim].  out: T outputs, each
  /// [B x output_dim()].  Initial hidden/cell state is zero.
  void forward(const std::vector<Tensor>& xs, std::vector<Tensor>& out);

  /// dout: gradients w.r.t. forward()'s outputs.  Accumulates parameter
  /// gradients and fills dxs (gradients w.r.t. xs).  Must follow a
  /// forward() with matching shapes.
  void backward(const std::vector<Tensor>& dout, std::vector<Tensor>& dxs);

  /// Incremental inference: advance a batch of B independent streams by
  /// one timestep.  x: [B x input_dim]; c: [B x hidden_dim] cell state;
  /// r: [B x output_dim()] recurrent output — both updated in place.
  /// Starting from zero (c, r) and stepping T times is bitwise identical
  /// to forward() over the same T inputs (same kernels, same order), so
  /// serving can carry hidden state instead of replaying the window.
  /// Keeps no caches and accumulates no gradients.
  void step(const Tensor& x, Tensor& c, Tensor& r) const;

  std::vector<Param*> params();
  void zero_grad();

  Index output_dim() const noexcept {
    return config_.proj_dim > 0 ? config_.proj_dim : config_.hidden_dim;
  }
  const LstmConfig& config() const noexcept { return config_; }

  /// Multiply-accumulate FLOPs per token of forward+backward (the 3x
  /// rule: backward costs ~2x forward) — feeds the performance model.
  double flops_per_token() const noexcept;

 private:
  LstmConfig config_;
  Param wx_;    ///< [input_dim x 4H]
  Param wh_;    ///< [output_dim x 4H]
  Param bias_;  ///< [4H]
  Param wp_;    ///< [H x proj_dim] when projecting, else empty

  // Forward caches (per timestep).
  struct StepCache {
    Tensor x;      ///< [B x input_dim]
    Tensor gates;  ///< [B x 4H] post-activation (i, f, g, o)
    Tensor c;      ///< [B x H] cell state
    Tensor tanh_c; ///< [B x H]
    Tensor h;      ///< [B x H] hidden before projection
    Tensor r;      ///< [B x output_dim] recurrent/projected output
  };
  std::vector<StepCache> cache_;
};

}  // namespace zipflm
