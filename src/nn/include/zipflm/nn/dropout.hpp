// Inverted dropout (Section IV-B: the char LM trains with "Adam with
// weight decay and dropout").  Training-time forward scales kept units
// by 1/(1-p) so evaluation needs no rescaling; the mask is cached for
// the backward pass.  Mask draws come from a deterministic per-call RNG
// so training stays bitwise reproducible.
#pragma once

#include "zipflm/support/rng.hpp"
#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

class Dropout {
 public:
  /// rate: probability of zeroing a unit, in [0, 1).
  explicit Dropout(float rate) : rate_(rate) {
    ZIPFLM_CHECK(rate >= 0.0f && rate < 1.0f, "dropout rate must be in [0,1)");
  }

  float rate() const noexcept { return rate_; }

  /// In-place training forward; caches the mask.  A rate of 0 is a
  /// no-op (and backward then leaves gradients untouched).
  void forward_train(Tensor& x, Rng& rng);

  /// In-place backward: dy ⊙= mask (same scaling as forward).
  void backward(Tensor& dy) const;

 private:
  float rate_;
  Tensor mask_;  ///< 0 or 1/(1-p) per element
};

}  // namespace zipflm
