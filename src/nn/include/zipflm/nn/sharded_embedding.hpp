// Row-sharded input embedding table (ROADMAP item 4, the OOM frontier).
//
// Rank r of a G-way shard owns table rows [r*V/G, (r+1)*V/G) plus the
// matching Adam moment slices — per-rank table memory drops by ~G while
// the paper's uniqueness optimization keeps the exchange small: only
// the step's unique rows ever cross the wire, pulled before forward and
// pushed (summed) after backward by the ShardedEmbeddingExchange.
//
// Determinism contract: the constructor draws the FULL V x D RNG stream
// in Tensor::uniform's element order and keeps only the owned rows, so
// every shard slice is bitwise identical to the same rows of a
// replicated table built from the same fork.  Forward reads a
// step-scoped row cache installed by the pull exchange; the layer never
// materializes the full table.
#pragma once

#include <span>
#include <vector>

#include "zipflm/nn/param.hpp"
#include "zipflm/support/rng.hpp"
#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

class ShardedEmbedding {
 public:
  ShardedEmbedding(Index vocab, Index dim, int shard_rank, int shard_world,
                   Rng& rng, float init_scale = 0.05f);

  Index vocab() const noexcept { return vocab_; }
  Index dim() const noexcept { return dim_; }
  Index row_begin() const noexcept { return row_begin_; }
  Index row_end() const noexcept { return row_end_; }
  Index owned_rows() const noexcept { return row_end_ - row_begin_; }
  int shard_rank() const noexcept { return shard_rank_; }
  int shard_world() const noexcept { return shard_world_; }
  bool owns(Index id) const noexcept {
    return id >= row_begin_ && id < row_end_;
  }

  /// Owner rank of a global row id under this table's split: the r with
  /// V*r < (id+1)*G <= V*(r+1), i.e. ceil((id+1)*G/V) - 1.
  int owner_of(Index id) const noexcept {
    return static_cast<int>(((id + 1) * static_cast<Index>(shard_world_) - 1) /
                            vocab_);
  }

  /// The owned slice: value is (owned_rows x dim), grad matches.
  Param& param() noexcept { return shard_; }
  const Param& param() const noexcept { return shard_; }

  /// Install the step's pulled rows: ids sorted ascending and unique,
  /// rows one per id.  Replaces any previous cache.
  void install_rows(std::vector<Index> ids, Tensor rows);
  void clear_cache() noexcept;
  bool cache_ready() const noexcept { return !cache_ids_.empty(); }
  const std::vector<Index>& cached_ids() const noexcept { return cache_ids_; }

  /// out[i] = pulled row of ids[i]; out must be (ids.size() x dim) and
  /// every id must be in the installed cache.
  void forward(std::span<const Index> ids, Tensor& out) const;

  /// Gather rows of OWNED global ids straight from the shard (the push
  /// reply path and tests); out is resized to (ids.size() x dim).
  void gather_owned(std::span<const Index> ids, Tensor& out) const;

 private:
  Index vocab_ = 0;
  Index dim_ = 0;
  Index row_begin_ = 0;
  Index row_end_ = 0;
  int shard_rank_ = 0;
  int shard_world_ = 1;
  Param shard_;
  std::vector<Index> cache_ids_;
  Tensor cache_rows_;
};

/// First owned row of shard r in a G-way split of V rows — shared by
/// the layer, the exchange, and the checkpoint re-shard path so every
/// component agrees on the boundaries.
inline Index shard_row_begin(Index vocab, int rank, int world) {
  return vocab * static_cast<Index>(rank) / static_cast<Index>(world);
}

}  // namespace zipflm
