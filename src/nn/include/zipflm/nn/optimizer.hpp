// Optimizers used by the paper's two models (Section IV-B): plain SGD
// for the word LM, Adam with weight decay for the char LM.  Both expose
// a row-sparse step for embedding tables so the distributed exchange can
// hand them exactly the rows that changed.
#pragma once

#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "zipflm/nn/param.hpp"

namespace zipflm {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Dense step over full parameters (value -= update(grad)).
  virtual void step(std::span<Param* const> params) = 0;

  /// Row-sparse step: table.value.row(ids[i]) -= update(rows.row(i)).
  /// ids must be unique (guaranteed by the unique exchange).
  virtual void step_rows(Param& table, const Tensor& rows,
                         std::span<const Index> ids) = 0;

  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;

  /// Serialize internal state (moment tensors, step counts) for exact
  /// checkpoint/resume.  `params` fixes the parameter order and shapes;
  /// save and load must be given the same list (all_params() of the
  /// owning model).  Stateless optimizers write/read nothing.
  virtual void save_state(std::ostream& out,
                          std::span<Param* const> params) const;
  virtual void load_state(std::istream& in, std::span<Param* const> params);
};

/// SGD with optional gradient clipping and weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float clip = 0.0f, float weight_decay = 0.0f)
      : lr_(lr), clip_(clip), weight_decay_(weight_decay) {}

  void step(std::span<Param* const> params) override;
  void step_rows(Param& table, const Tensor& rows,
                 std::span<const Index> ids) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float clip_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with decoupled weight decay.  Row-sparse steps
/// update first/second-moment state only for the touched rows ("sparse
/// Adam" semantics: bias correction uses the global step count).
class Adam final : public Optimizer {
 public:
  struct Config {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    float clip = 0.0f;
  };

  explicit Adam(Config config) : cfg_(config) {}

  void step(std::span<Param* const> params) override;
  void step_rows(Param& table, const Tensor& rows,
                 std::span<const Index> ids) override;
  void set_learning_rate(float lr) override { cfg_.lr = lr; }
  float learning_rate() const override { return cfg_.lr; }

  /// Advance the shared timestep; call once per training step, before
  /// the step()/step_rows() calls of that step.
  void begin_step() { ++t_; }

  void save_state(std::ostream& out,
                  std::span<Param* const> params) const override;
  void load_state(std::istream& in, std::span<Param* const> params) override;

  /// Direct state access, for checkpoint paths that rebuild moments
  /// outside save_state/load_state (e.g. assembling or re-slicing a
  /// row-sharded table's moment slices across world sizes).
  std::int64_t step_count() const noexcept { return t_; }
  void set_step_count(std::int64_t t) { t_ = t; }
  bool has_moments(const Param& p) const { return state_.contains(&p); }
  /// First/second moment of `p`; has_moments(p) must be true.
  const Tensor& moment_m(const Param& p) const { return state_.at(&p).m; }
  const Tensor& moment_v(const Param& p) const { return state_.at(&p).v; }
  /// Install (or replace) `p`'s moments.  Shapes must match p.value.
  void set_moments(const Param& p, Tensor m, Tensor v);
  /// Drop every parameter's moments (a manual load starts clean).
  void clear_moments() { state_.clear(); }

 private:
  struct Moments {
    Tensor m;
    Tensor v;
  };
  Moments& moments_for(const Param& p);

  Config cfg_;
  std::int64_t t_ = 0;
  std::unordered_map<const Param*, Moments> state_;
};

/// The paper's learning-rate schedule (Section IV-B): base rate for an
/// 8-GPU node, multiplied by log_e(#nodes), decayed per epoch.
float scaled_learning_rate(float base_lr, int nodes, int epoch = 0,
                           float decay = 1.0f);

}  // namespace zipflm
