#include "zipflm/nn/lstm.hpp"

#include <cmath>

#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/ops.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {
/// Xavier/Glorot uniform bound for a [fan_in x fan_out] matrix.
float glorot(Index fan_in, Index fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}
}  // namespace

LstmLayer::LstmLayer(const LstmConfig& config, Rng& rng) : config_(config) {
  ZIPFLM_CHECK(config.input_dim > 0 && config.hidden_dim > 0,
               "LSTM dimensions must be positive");
  const Index h = config.hidden_dim;
  const Index p = output_dim();
  const float sx = glorot(config.input_dim, 4 * h);
  const float sh = glorot(p, 4 * h);
  wx_ = Param("lstm.wx",
              Tensor::uniform({config.input_dim, 4 * h}, rng, -sx, sx));
  wh_ = Param("lstm.wh", Tensor::uniform({p, 4 * h}, rng, -sh, sh));
  bias_ = Param("lstm.b", Tensor({4 * h}));
  // Forget-gate bias of 1.0: standard recipe for trainable LSTMs.
  for (Index j = h; j < 2 * h; ++j) bias_.value(j) = 1.0f;
  if (config.proj_dim > 0) {
    const float sp = glorot(h, config.proj_dim);
    wp_ = Param("lstm.wp",
                Tensor::uniform({h, config.proj_dim}, rng, -sp, sp));
  }
}

void LstmLayer::forward(const std::vector<Tensor>& xs,
                        std::vector<Tensor>& out) {
  ZIPFLM_CHECK(!xs.empty(), "LSTM forward needs at least one step");
  const Index batch = xs.front().rows();
  const Index h = config_.hidden_dim;
  const Index p = output_dim();

  cache_.clear();
  cache_.resize(xs.size());
  out.assign(xs.size(), Tensor());

  Tensor prev_r({batch, p});
  Tensor prev_c({batch, h});
  Tensor pre({batch, 4 * h});

  for (std::size_t t = 0; t < xs.size(); ++t) {
    const Tensor& x = xs[t];
    ZIPFLM_CHECK(x.rows() == batch && x.cols() == config_.input_dim,
                 "LSTM step input shape mismatch");
    StepCache& sc = cache_[t];
    sc.x = x;

    // Fused pre-activation: pre = x Wx + r_{t-1} Wh + b.
    gemm(x, false, wx_.value, false, pre, 1.0f, 0.0f);
    gemm(prev_r, false, wh_.value, false, pre, 1.0f, 1.0f);
    add_bias_rows(pre, bias_.value);

    // Gate nonlinearities: the (i, f) and o gate blocks are contiguous
    // per row, so each row is three vector spans — sigmoid on (i, f),
    // tanh on g, sigmoid on o.
    sc.gates = Tensor({batch, 4 * h});
    const std::size_t hn = static_cast<std::size_t>(h);
    {
      const float* zin = pre.data().data();
      float* zout = sc.gates.data().data();
      ThreadPool::global().parallel_chunks(
          static_cast<std::size_t>(batch),
          [&](std::size_t bb, std::size_t be) {
            for (std::size_t b = bb; b < be; ++b) {
              const float* zi = zin + b * 4 * hn;
              float* zo = zout + b * 4 * hn;
              simd::sigmoid(zi, zo, 2 * hn);
              simd::tanh_op(zi + 2 * hn, zo + 2 * hn, hn);
              simd::sigmoid(zi + 3 * hn, zo + 3 * hn, hn);
            }
          },
          /*grain=*/1);
    }

    // c_t = f ⊙ c_{t-1} + i ⊙ g;  h_t = o ⊙ tanh(c_t).
    sc.c = Tensor({batch, h});
    sc.tanh_c = Tensor({batch, h});
    sc.h = Tensor({batch, h});
    {
      const float* g4 = sc.gates.data().data();
      const float* cp = prev_c.data().data();
      float* c = sc.c.data().data();
      float* tc = sc.tanh_c.data().data();
      float* hh = sc.h.data().data();
      ThreadPool::global().parallel_chunks(
          static_cast<std::size_t>(batch),
          [&](std::size_t bb, std::size_t be) {
            for (std::size_t b = bb; b < be; ++b) {
              const float* g = g4 + b * 4 * hn;
              simd::lstm_cell(g, g + hn, g + 2 * hn, g + 3 * hn, cp + b * hn,
                              c + b * hn, tc + b * hn, hh + b * hn, hn);
            }
          },
          /*grain=*/1);
    }

    if (config_.proj_dim > 0) {
      sc.r = Tensor({batch, p});
      gemm(sc.h, false, wp_.value, false, sc.r, 1.0f, 0.0f);
    } else {
      sc.r = sc.h;
    }
    out[t] = sc.r;
    prev_r = sc.r;
    prev_c = sc.c;
  }
}

void LstmLayer::backward(const std::vector<Tensor>& dout,
                         std::vector<Tensor>& dxs) {
  ZIPFLM_CHECK(dout.size() == cache_.size(),
               "backward step count must match the cached forward");
  const Index batch = cache_.front().x.rows();
  const Index h = config_.hidden_dim;
  const Index p = output_dim();

  dxs.assign(cache_.size(), Tensor());

  Tensor dr_next({batch, p});  // recurrent gradient flowing from t+1
  Tensor dc_next({batch, h});
  Tensor dh({batch, h});
  Tensor dz({batch, 4 * h});
  const Tensor zero_c({batch, h});  // state before t = 0
  const Tensor zero_r({batch, p});

  for (std::size_t ti = cache_.size(); ti-- > 0;) {
    const StepCache& sc = cache_[ti];

    // Total gradient reaching r_t: output path + recurrence from t+1.
    Tensor dr = dout[ti];
    ZIPFLM_CHECK(dr.rows() == batch && dr.cols() == p,
                 "backward output-gradient shape mismatch");
    axpy(1.0f, dr_next, dr);

    if (config_.proj_dim > 0) {
      gemm(sc.h, true, dr, false, wp_.grad, 1.0f, 1.0f);
      gemm(dr, false, wp_.value, true, dh, 1.0f, 0.0f);
    } else {
      dh = dr;
    }

    // Through h_t = o ⊙ tanh(c_t) and c_t = f ⊙ c_{t-1} + i ⊙ g.
    const Tensor& prev_c_val = ti > 0 ? cache_[ti - 1].c : zero_c;
    {
      const std::size_t hn = static_cast<std::size_t>(h);
      const float* g4 = sc.gates.data().data();
      const float* tc = sc.tanh_c.data().data();
      const float* cp = prev_c_val.data().data();
      const float* dhp = dh.data().data();
      float* dcn = dc_next.data().data();
      float* dzp = dz.data().data();
      ThreadPool::global().parallel_chunks(
          static_cast<std::size_t>(batch),
          [&](std::size_t bb, std::size_t be) {
            for (std::size_t b = bb; b < be; ++b) {
              const float* g = g4 + b * 4 * hn;
              float* dzr = dzp + b * 4 * hn;
              simd::lstm_cell_grad(g, g + hn, g + 2 * hn, g + 3 * hn,
                                   tc + b * hn, cp + b * hn, dhp + b * hn,
                                   dcn + b * hn, dzr, dzr + hn, dzr + 2 * hn,
                                   dzr + 3 * hn, hn);
            }
          },
          /*grain=*/1);
    }

    // Parameter gradients and input gradients.
    gemm(sc.x, true, dz, false, wx_.grad, 1.0f, 1.0f);
    const Tensor& prev_r_val = ti > 0 ? cache_[ti - 1].r : zero_r;
    gemm(prev_r_val, true, dz, false, wh_.grad, 1.0f, 1.0f);
    bias_grad(dz, bias_.grad);

    dxs[ti] = Tensor({batch, config_.input_dim});
    gemm(dz, false, wx_.value, true, dxs[ti], 1.0f, 0.0f);
    gemm(dz, false, wh_.value, true, dr_next, 1.0f, 0.0f);
  }
}

void LstmLayer::step(const Tensor& x, Tensor& c, Tensor& r) const {
  const Index batch = x.rows();
  const Index h = config_.hidden_dim;
  const Index p = output_dim();
  ZIPFLM_CHECK(x.cols() == config_.input_dim, "LSTM step input shape mismatch");
  ZIPFLM_CHECK(c.rows() == batch && c.cols() == h,
               "LSTM step cell-state shape mismatch");
  ZIPFLM_CHECK(r.rows() == batch && r.cols() == p,
               "LSTM step output-state shape mismatch");

  // Same kernel sequence as one forward() timestep so carried state stays
  // bitwise equal to the windowed path.
  Tensor pre({batch, 4 * h});
  gemm(x, false, wx_.value, false, pre, 1.0f, 0.0f);
  gemm(r, false, wh_.value, false, pre, 1.0f, 1.0f);
  add_bias_rows(pre, bias_.value);

  Tensor gates({batch, 4 * h});
  const std::size_t hn = static_cast<std::size_t>(h);
  {
    const float* zin = pre.data().data();
    float* zout = gates.data().data();
    for (Index b = 0; b < batch; ++b) {
      const float* zi = zin + static_cast<std::size_t>(b) * 4 * hn;
      float* zo = zout + static_cast<std::size_t>(b) * 4 * hn;
      simd::sigmoid(zi, zo, 2 * hn);
      simd::tanh_op(zi + 2 * hn, zo + 2 * hn, hn);
      simd::sigmoid(zi + 3 * hn, zo + 3 * hn, hn);
    }
  }

  Tensor hidden({batch, h});
  Tensor tanh_c({batch, h});  // scratch: the cell kernel caches tanh(c)
  {
    const float* g4 = gates.data().data();
    float* cr = c.data().data();  // read old cell, write new cell in place
    float* tc = tanh_c.data().data();
    float* hh = hidden.data().data();
    for (Index bi = 0; bi < batch; ++bi) {
      const std::size_t b = static_cast<std::size_t>(bi);
      const float* g = g4 + b * 4 * hn;
      simd::lstm_cell(g, g + hn, g + 2 * hn, g + 3 * hn, cr + b * hn,
                      cr + b * hn, tc + b * hn, hh + b * hn, hn);
    }
  }

  if (config_.proj_dim > 0) {
    gemm(hidden, false, wp_.value, false, r, 1.0f, 0.0f);
  } else {
    r = hidden;
  }
}

std::vector<Param*> LstmLayer::params() {
  std::vector<Param*> ps{&wx_, &wh_, &bias_};
  if (config_.proj_dim > 0) ps.push_back(&wp_);
  return ps;
}

void LstmLayer::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

double LstmLayer::flops_per_token() const noexcept {
  const double h = static_cast<double>(config_.hidden_dim);
  const double d = static_cast<double>(config_.input_dim);
  const double p = static_cast<double>(output_dim());
  // Forward MACs per token: x·Wx + r·Wh + projection.
  double fwd = d * 4.0 * h + p * 4.0 * h;
  if (config_.proj_dim > 0) fwd += h * p;
  // 2 FLOPs per MAC; backward ≈ 2x forward.
  return 2.0 * fwd * 3.0;
}

}  // namespace zipflm
