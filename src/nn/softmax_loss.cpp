#include "zipflm/nn/softmax_loss.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "zipflm/tensor/ops.hpp"

namespace zipflm {

FullSoftmaxLoss::FullSoftmaxLoss(Index vocab, Index dim, Rng& rng,
                                 float init_scale)
    : emb_("softmax.emb",
           Tensor::uniform({vocab, dim}, rng, -init_scale, init_scale)),
      bias_("softmax.bias", Tensor({vocab})) {}

float FullSoftmaxLoss::forward_backward(const Tensor& h,
                                        std::span<const Index> targets,
                                        Tensor& dh) {
  const Index n = h.rows();
  ZIPFLM_CHECK(static_cast<std::size_t>(n) == targets.size(),
               "one target per hidden state");
  Tensor logits({n, vocab()});
  gemm(h, false, emb_.value, true, logits, 1.0f, 0.0f);
  add_bias_rows(logits, bias_.value);

  Tensor probs({n, vocab()});
  softmax_rows(logits, probs);

  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(n);
  // Reuse probs as dlogits: dlogit = (p - onehot(target)) / N.
  for (Index i = 0; i < n; ++i) {
    const Index t = targets[static_cast<std::size_t>(i)];
    ZIPFLM_ASSERT(t >= 0 && t < vocab(), "target outside vocabulary");
    loss -= std::log(std::max(probs(i, t), 1e-30f));
    auto row = probs.row(i);
    for (float& v : row) v *= invn;
    probs(i, t) -= invn;
  }

  dh = Tensor({n, dim()});
  gemm(probs, false, emb_.value, false, dh, 1.0f, 0.0f);
  gemm(probs, true, h, false, emb_.grad, 1.0f, 1.0f);
  bias_grad(probs, bias_.grad);
  return static_cast<float>(loss / n);
}

void FullSoftmaxLoss::full_logits(const Tensor& h, Tensor& logits) const {
  logits = Tensor({h.rows(), vocab()});
  gemm(h, false, emb_.value, true, logits, 1.0f, 0.0f);
  add_bias_rows(logits, bias_.value);
}

float FullSoftmaxLoss::loss(const Tensor& h,
                            std::span<const Index> targets) const {
  const Index n = h.rows();
  ZIPFLM_CHECK(static_cast<std::size_t>(n) == targets.size(),
               "one target per hidden state");
  Tensor logits({n, vocab()});
  gemm(h, false, emb_.value, true, logits, 1.0f, 0.0f);
  add_bias_rows(logits, bias_.value);
  Tensor logp({n, vocab()});
  log_softmax_rows(logits, logp);
  double loss = 0.0;
  for (Index i = 0; i < n; ++i) {
    loss -= logp(i, targets[static_cast<std::size_t>(i)]);
  }
  return static_cast<float>(loss / n);
}

SampledSoftmaxLoss::SampledSoftmaxLoss(Index vocab, Index dim, Rng& rng,
                                       float init_scale)
    : emb_("softmax.emb",
           Tensor::uniform({vocab, dim}, rng, -init_scale, init_scale)),
      bias_("softmax.bias", Tensor({vocab})) {}

float SampledSoftmaxLoss::forward_backward(
    const Tensor& h, std::span<const Index> targets,
    std::span<const Index> candidates, Tensor& dh, SparseRowGrad& grad,
    std::span<const float> log_expected_counts) {
  const Index n = h.rows();
  const Index c = static_cast<Index>(candidates.size());
  ZIPFLM_CHECK(static_cast<std::size_t>(n) == targets.size(),
               "one target per hidden state");
  ZIPFLM_CHECK(c > 0, "candidate set must be non-empty");
  ZIPFLM_CHECK(log_expected_counts.empty() ||
                   log_expected_counts.size() == candidates.size(),
               "one log expected count per candidate");

  // Candidate id -> position, also validating uniqueness.
  std::unordered_map<Index, Index> pos;
  pos.reserve(static_cast<std::size_t>(c) * 2);
  for (Index j = 0; j < c; ++j) {
    const Index id = candidates[static_cast<std::size_t>(j)];
    ZIPFLM_ASSERT(id >= 0 && id < vocab(), "candidate outside vocabulary");
    const bool inserted = pos.emplace(id, j).second;
    ZIPFLM_CHECK(inserted, "candidate ids must be unique");
  }

  // Gather candidate embedding rows and biases into a compact block.
  Tensor cand_emb({c, dim()});
  gather_rows(emb_.value, candidates, cand_emb);
  Tensor logits({n, c});
  gemm(h, false, cand_emb, true, logits, 1.0f, 0.0f);
  for (Index i = 0; i < n; ++i) {
    auto row = logits.row(i);
    for (Index j = 0; j < c; ++j) {
      row[static_cast<std::size_t>(j)] +=
          bias_.value(candidates[static_cast<std::size_t>(j)]);
      if (!log_expected_counts.empty()) {
        row[static_cast<std::size_t>(j)] -=
            log_expected_counts[static_cast<std::size_t>(j)];
      }
    }
  }

  Tensor probs({n, c});
  softmax_rows(logits, probs);

  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(n);
  for (Index i = 0; i < n; ++i) {
    const auto it = pos.find(targets[static_cast<std::size_t>(i)]);
    ZIPFLM_CHECK(it != pos.end(),
                 "every target must be present in the candidate set");
    loss -= std::log(std::max(probs(i, it->second), 1e-30f));
    auto row = probs.row(i);
    for (float& v : row) v *= invn;
    probs(i, it->second) -= invn;
  }

  dh = Tensor({n, dim()});
  gemm(probs, false, cand_emb, false, dh, 1.0f, 0.0f);

  grad.ids.assign(candidates.begin(), candidates.end());
  grad.rows = Tensor({c, dim()});
  gemm(probs, true, h, false, grad.rows, 1.0f, 0.0f);
  grad.bias_rows = Tensor({c});
  bias_grad(probs, grad.bias_rows);
  return static_cast<float>(loss / n);
}

void SampledSoftmaxLoss::full_logits(const Tensor& h, Tensor& logits) const {
  logits = Tensor({h.rows(), vocab()});
  gemm(h, false, emb_.value, true, logits, 1.0f, 0.0f);
  add_bias_rows(logits, bias_.value);
}

float SampledSoftmaxLoss::full_loss(const Tensor& h,
                                    std::span<const Index> targets) const {
  const Index n = h.rows();
  ZIPFLM_CHECK(static_cast<std::size_t>(n) == targets.size(),
               "one target per hidden state");
  Tensor logits({n, vocab()});
  gemm(h, false, emb_.value, true, logits, 1.0f, 0.0f);
  add_bias_rows(logits, bias_.value);
  Tensor logp({n, vocab()});
  log_softmax_rows(logits, logp);
  double loss = 0.0;
  for (Index i = 0; i < n; ++i) {
    loss -= logp(i, targets[static_cast<std::size_t>(i)]);
  }
  return static_cast<float>(loss / n);
}

}  // namespace zipflm
