#include "zipflm/nn/sharded_embedding.hpp"

#include <algorithm>
#include <cstring>

#include "zipflm/support/error.hpp"

namespace zipflm {

namespace {

Tensor owned_slice_of_full_stream(Index vocab, Index dim, Index row_begin,
                                  Index row_end, Rng& rng, float init_scale) {
  Tensor table({row_end - row_begin, dim});
  std::span<float> out = table.data();
  std::size_t w = 0;
  // Consume the FULL V x D stream in Tensor::uniform's element order so
  // the kept rows are bitwise identical to the same rows of a
  // replicated table drawn from the same fork.
  for (Index v = 0; v < vocab; ++v) {
    const bool own = v >= row_begin && v < row_end;
    for (Index j = 0; j < dim; ++j) {
      const float x =
          static_cast<float>(rng.uniform(-init_scale, init_scale));
      if (own) out[w++] = x;
    }
  }
  return table;
}

}  // namespace

ShardedEmbedding::ShardedEmbedding(Index vocab, Index dim, int shard_rank,
                                   int shard_world, Rng& rng,
                                   float init_scale)
    : vocab_(vocab),
      dim_(dim),
      row_begin_(shard_row_begin(vocab, shard_rank, shard_world)),
      row_end_(shard_row_begin(vocab, shard_rank + 1, shard_world)),
      shard_rank_(shard_rank),
      shard_world_(shard_world),
      shard_("embedding.shard",
             owned_slice_of_full_stream(vocab, dim, row_begin_, row_end_, rng,
                                        init_scale)) {
  ZIPFLM_CHECK(vocab > 0 && dim > 0, "sharded embedding needs a real table");
  ZIPFLM_CHECK(shard_world >= 1 && shard_rank >= 0 && shard_rank < shard_world,
               "shard rank out of range");
  ZIPFLM_CHECK(vocab >= static_cast<Index>(shard_world),
               "fewer table rows than shards");
}

void ShardedEmbedding::install_rows(std::vector<Index> ids, Tensor rows) {
  ZIPFLM_CHECK(rows.rank() == 2 &&
                   rows.rows() == static_cast<Index>(ids.size()) &&
                   rows.cols() == dim_,
               "pulled row block shape mismatch");
  ZIPFLM_ASSERT(std::is_sorted(ids.begin(), ids.end()) &&
                    std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                "pulled ids must be sorted and unique");
  cache_ids_ = std::move(ids);
  cache_rows_ = std::move(rows);
}

void ShardedEmbedding::clear_cache() noexcept {
  cache_ids_.clear();
  cache_rows_ = Tensor();
}

void ShardedEmbedding::forward(std::span<const Index> ids, Tensor& out) const {
  ZIPFLM_CHECK(out.rank() == 2 &&
                   out.rows() == static_cast<Index>(ids.size()) &&
                   out.cols() == dim_,
               "embedding forward output shape mismatch");
  const std::size_t d = static_cast<std::size_t>(dim_);
  std::span<float> dst = out.data();
  std::span<const float> src = cache_rows_.data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it =
        std::lower_bound(cache_ids_.begin(), cache_ids_.end(), ids[i]);
    ZIPFLM_CHECK(it != cache_ids_.end() && *it == ids[i],
                 "token row missing from the pulled cache (pull not run?)");
    const auto pos =
        static_cast<std::size_t>(std::distance(cache_ids_.begin(), it));
    std::memcpy(dst.data() + i * d, src.data() + pos * d, d * sizeof(float));
  }
}

void ShardedEmbedding::gather_owned(std::span<const Index> ids,
                                    Tensor& out) const {
  out = Tensor({static_cast<Index>(ids.size()), dim_});
  const std::size_t d = static_cast<std::size_t>(dim_);
  std::span<float> dst = out.data();
  std::span<const float> src = shard_.value.data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ZIPFLM_CHECK(owns(ids[i]), "gather_owned id outside this shard");
    const auto pos = static_cast<std::size_t>(ids[i] - row_begin_);
    std::memcpy(dst.data() + i * d, src.data() + pos * d, d * sizeof(float));
  }
}

}  // namespace zipflm
