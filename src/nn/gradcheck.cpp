#include "zipflm/nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace zipflm {

GradCheckResult grad_check(Tensor& values, const Tensor& analytic,
                           const std::function<double()>& loss_fn,
                           double step, double eps_floor) {
  ZIPFLM_CHECK(values.size() == analytic.size(),
               "analytic gradient must match value count");
  GradCheckResult result;
  auto vs = values.data();
  const auto grads = analytic.data();
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const float original = vs[i];
    vs[i] = original + static_cast<float>(step);
    const double up = loss_fn();
    vs[i] = original - static_cast<float>(step);
    const double down = loss_fn();
    vs[i] = original;
    const double numeric = (up - down) / (2.0 * step);
    const double a = static_cast<double>(grads[i]);
    const double abs_err = std::fabs(a - numeric);
    const double denom =
        std::max({std::fabs(a), std::fabs(numeric), eps_floor});
    const double rel_err = abs_err / denom;
    if (rel_err > result.max_rel_error) {
      result.max_rel_error = rel_err;
      result.worst_index = static_cast<Index>(i);
    }
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
  }
  return result;
}

}  // namespace zipflm
