#include "zipflm/nn/generate.hpp"

#include <algorithm>
#include <cmath>

namespace zipflm {

Index sample_next_token(LmModel& model, std::span<const Index> context,
                        const GenerateOptions& options, Rng& rng) {
  ZIPFLM_CHECK(options.temperature > 0.0, "temperature must be positive");
  ZIPFLM_CHECK(!context.empty(), "generation needs at least one token");
  const std::size_t window = std::min<std::size_t>(
      context.size(), static_cast<std::size_t>(options.max_context));
  Tensor logits =
      model.next_token_logits(context.subspan(context.size() - window));

  // Temperature + optional top-k truncation, then softmax sampling.
  const Index v = logits.size();
  std::vector<std::pair<float, Index>> scored(static_cast<std::size_t>(v));
  for (Index i = 0; i < v; ++i) {
    scored[static_cast<std::size_t>(i)] = {
        logits(i) / static_cast<float>(options.temperature), i};
  }
  if (options.top_k > 0 && options.top_k < v) {
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(options.top_k),
                      scored.end(), std::greater<>());
    scored.resize(static_cast<std::size_t>(options.top_k));
  }
  float mx = scored.front().first;
  for (const auto& [s, id] : scored) mx = std::max(mx, s);
  double denom = 0.0;
  for (auto& [s, id] : scored) {
    s = std::exp(s - mx);
    denom += s;
  }
  double u = rng.uniform() * denom;
  for (const auto& [s, id] : scored) {
    u -= s;
    if (u <= 0.0) return id;
  }
  return scored.back().second;  // numeric fringe
}

std::vector<Index> generate_tokens(LmModel& model,
                                   std::span<const Index> prompt,
                                   std::size_t count,
                                   const GenerateOptions& options, Rng& rng) {
  std::vector<Index> tokens(prompt.begin(), prompt.end());
  tokens.reserve(tokens.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    tokens.push_back(sample_next_token(model, tokens, options, rng));
  }
  return tokens;
}

}  // namespace zipflm
