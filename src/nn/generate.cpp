#include "zipflm/nn/generate.hpp"

#include <algorithm>
#include <cmath>

namespace zipflm {

Index sample_from_logits(std::span<const float> logits,
                         const GenerateOptions& options, Rng& rng) {
  ZIPFLM_CHECK(options.temperature > 0.0, "temperature must be positive");
  ZIPFLM_CHECK(!logits.empty(), "logits must be non-empty");
  const Index v = static_cast<Index>(logits.size());

  // Temperature + optional top-k truncation, then softmax sampling.
  std::vector<std::pair<float, Index>> scored(static_cast<std::size_t>(v));
  for (Index i = 0; i < v; ++i) {
    scored[static_cast<std::size_t>(i)] = {
        logits[static_cast<std::size_t>(i)] /
            static_cast<float>(options.temperature),
        i};
  }
  if (options.top_k > 0 && options.top_k < v) {
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(options.top_k),
                      scored.end(), std::greater<>());
    scored.resize(static_cast<std::size_t>(options.top_k));
  }
  float mx = scored.front().first;
  for (const auto& [s, id] : scored) mx = std::max(mx, s);
  double denom = 0.0;
  for (auto& [s, id] : scored) {
    s = std::exp(s - mx);
    denom += s;
  }
  double u = rng.uniform() * denom;
  for (const auto& [s, id] : scored) {
    u -= s;
    if (u <= 0.0) return id;
  }
  return scored.back().second;  // numeric fringe
}

Index sample_next_token(LmModel& model, std::span<const Index> context,
                        const GenerateOptions& options, Rng& rng) {
  ZIPFLM_CHECK(options.temperature > 0.0, "temperature must be positive");
  ZIPFLM_CHECK(!context.empty(), "generation needs at least one token");
  const std::size_t window = std::min<std::size_t>(
      context.size(), static_cast<std::size_t>(options.max_context));
  Tensor logits =
      model.next_token_logits(context.subspan(context.size() - window));
  return sample_from_logits(logits.data(), options, rng);
}

std::vector<Index> generate_tokens(LmModel& model,
                                   std::span<const Index> prompt,
                                   std::size_t count,
                                   const GenerateOptions& options, Rng& rng) {
  std::vector<Index> tokens(prompt.begin(), prompt.end());
  tokens.reserve(tokens.size() + count);
  if (count == 0) return tokens;

  if (tokens.size() + count <=
      static_cast<std::size_t>(options.max_context)) {
    // Incremental path: the context never slides out of the window, so
    // carry the recurrent state and step once per token.
    ZIPFLM_CHECK(!tokens.empty(), "generation needs at least one token");
    RecurrentState state = model.initial_state(1);
    Tensor logits;
    for (const Index t : tokens) {
      model.step(std::span<const Index>(&t, 1), state, logits);
    }
    for (std::size_t i = 0; i < count; ++i) {
      tokens.push_back(sample_from_logits(logits.row(0), options, rng));
      if (i + 1 < count) {
        model.step(std::span<const Index>(&tokens.back(), 1), state, logits);
      }
    }
  } else {
    // Sliding-window path: the window start moves, which invalidates any
    // carried state, so recompute from the visible context each token.
    for (std::size_t i = 0; i < count; ++i) {
      tokens.push_back(sample_next_token(model, tokens, options, rng));
    }
  }
  return tokens;
}

}  // namespace zipflm
