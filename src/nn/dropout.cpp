#include "zipflm/nn/dropout.hpp"

#include "zipflm/tensor/ops.hpp"

namespace zipflm {

void Dropout::forward_train(Tensor& x, Rng& rng) {
  if (rate_ == 0.0f) {
    mask_ = Tensor();
    return;
  }
  mask_ = Tensor(x.shape());
  const float keep_scale = 1.0f / (1.0f - rate_);
  auto xs = x.data();
  auto ms = mask_.data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const bool keep = rng.uniform() >= static_cast<double>(rate_);
    ms[i] = keep ? keep_scale : 0.0f;
    xs[i] *= ms[i];
  }
}

void Dropout::backward(Tensor& dy) const {
  if (rate_ == 0.0f || mask_.empty()) return;
  ZIPFLM_CHECK(dy.size() == mask_.size(),
               "dropout backward shape must match the cached mask");
  hadamard(dy, mask_, dy);
}

}  // namespace zipflm
