#include "zipflm/nn/rhn.hpp"

#include <cmath>

#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/ops.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {
float glorot(Index fan_in, Index fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}
}  // namespace

RhnLayer::RhnLayer(const RhnConfig& config, Rng& rng) : config_(config) {
  ZIPFLM_CHECK(config.input_dim > 0 && config.hidden_dim > 0,
               "RHN dimensions must be positive");
  ZIPFLM_CHECK(config.depth >= 1, "RHN depth must be at least 1");
  const Index d = config.input_dim;
  const Index h = config.hidden_dim;
  const float sx = glorot(d, h);
  const float sr = glorot(h, h);
  wh_ = Param("rhn.wh", Tensor::uniform({d, h}, rng, -sx, sx));
  wt_ = Param("rhn.wt", Tensor::uniform({d, h}, rng, -sx, sx));
  depth_.reserve(static_cast<std::size_t>(config.depth));
  for (Index l = 0; l < config.depth; ++l) {
    DepthParams dp;
    dp.rh = Param("rhn.rh." + std::to_string(l),
                  Tensor::uniform({h, h}, rng, -sr, sr));
    dp.rt = Param("rhn.rt." + std::to_string(l),
                  Tensor::uniform({h, h}, rng, -sr, sr));
    dp.bh = Param("rhn.bh." + std::to_string(l), Tensor({h}));
    dp.bt = Param("rhn.bt." + std::to_string(l), Tensor({h}));
    // Negative transform bias: start close to carry (standard RHN
    // initialization, keeps deep recurrences stable early in training).
    dp.bt.value.fill(-2.0f);
    depth_.push_back(std::move(dp));
  }
}

void RhnLayer::forward(const std::vector<Tensor>& xs,
                       std::vector<Tensor>& out) {
  ZIPFLM_CHECK(!xs.empty(), "RHN forward needs at least one step");
  const Index batch = xs.front().rows();
  const Index h = config_.hidden_dim;

  cache_.clear();
  cache_.resize(xs.size());
  out.assign(xs.size(), Tensor());

  Tensor state({batch, h});  // s_0 for the first timestep: zeros
  Tensor pre_h({batch, h});
  Tensor pre_t({batch, h});

  for (std::size_t ti = 0; ti < xs.size(); ++ti) {
    const Tensor& x = xs[ti];
    ZIPFLM_CHECK(x.rows() == batch && x.cols() == config_.input_dim,
                 "RHN step input shape mismatch");
    StepCache& sc = cache_[ti];
    sc.x = x;
    sc.micro.resize(static_cast<std::size_t>(config_.depth));

    for (Index l = 0; l < config_.depth; ++l) {
      auto& dp = depth_[static_cast<std::size_t>(l)];
      auto& mc = sc.micro[static_cast<std::size_t>(l)];

      gemm(state, false, dp.rh.value, false, pre_h, 1.0f, 0.0f);
      gemm(state, false, dp.rt.value, false, pre_t, 1.0f, 0.0f);
      if (l == 0) {
        gemm(x, false, wh_.value, false, pre_h, 1.0f, 1.0f);
        gemm(x, false, wt_.value, false, pre_t, 1.0f, 1.0f);
      }
      add_bias_rows(pre_h, dp.bh.value);
      add_bias_rows(pre_t, dp.bt.value);

      mc.h = Tensor({batch, h});
      mc.t = Tensor({batch, h});
      mc.s = Tensor({batch, h});
      // The whole (batch, h) block is contiguous and the cell is purely
      // elementwise, so it runs as one fused vector span.
      const std::size_t cells =
          static_cast<std::size_t>(batch) * static_cast<std::size_t>(h);
      const float* ph = pre_h.data().data();
      const float* pt = pre_t.data().data();
      const float* sp = state.data().data();
      float* hv = mc.h.data().data();
      float* tv = mc.t.data().data();
      float* sv = mc.s.data().data();
      ThreadPool::global().parallel_chunks(
          cells, [&](std::size_t cb, std::size_t ce) {
            simd::rhn_cell(ph + cb, pt + cb, sp + cb, hv + cb, tv + cb,
                           sv + cb, ce - cb);
          });
      state = mc.s;
    }
    out[ti] = state;
  }
}

void RhnLayer::backward(const std::vector<Tensor>& dout,
                        std::vector<Tensor>& dxs) {
  ZIPFLM_CHECK(dout.size() == cache_.size(),
               "backward step count must match the cached forward");
  const Index batch = cache_.front().x.rows();
  const Index h = config_.hidden_dim;

  dxs.assign(cache_.size(), Tensor());

  Tensor ds_next({batch, h});  // recurrent gradient from timestep t+1
  Tensor dzh({batch, h});
  Tensor dzt({batch, h});
  const Tensor zero_s({batch, h});

  for (std::size_t ti = cache_.size(); ti-- > 0;) {
    const StepCache& sc = cache_[ti];
    Tensor ds = dout[ti];
    ZIPFLM_CHECK(ds.rows() == batch && ds.cols() == h,
                 "backward output-gradient shape mismatch");
    axpy(1.0f, ds_next, ds);

    dxs[ti] = Tensor({batch, config_.input_dim});

    for (Index l = config_.depth; l-- > 0;) {
      auto& dp = depth_[static_cast<std::size_t>(l)];
      const auto& mc = sc.micro[static_cast<std::size_t>(l)];
      // State entering this micro-layer.
      const Tensor& s_prev =
          l > 0 ? sc.micro[static_cast<std::size_t>(l - 1)].s
                : (ti > 0 ? cache_[ti - 1].micro.back().s : zero_s);

      Tensor ds_prev({batch, h});
      const std::size_t cells =
          static_cast<std::size_t>(batch) * static_cast<std::size_t>(h);
      const float* hv = mc.h.data().data();
      const float* tv = mc.t.data().data();
      const float* sp = s_prev.data().data();
      const float* dsr = ds.data().data();
      float* dzhp = dzh.data().data();
      float* dztp = dzt.data().data();
      float* dspp = ds_prev.data().data();
      ThreadPool::global().parallel_chunks(
          cells, [&](std::size_t cb, std::size_t ce) {
            simd::rhn_cell_grad(hv + cb, tv + cb, sp + cb, dsr + cb,
                                dzhp + cb, dztp + cb, dspp + cb, ce - cb);
          });

      gemm(s_prev, true, dzh, false, dp.rh.grad, 1.0f, 1.0f);
      gemm(s_prev, true, dzt, false, dp.rt.grad, 1.0f, 1.0f);
      bias_grad(dzh, dp.bh.grad);
      bias_grad(dzt, dp.bt.grad);
      gemm(dzh, false, dp.rh.value, true, ds_prev, 1.0f, 1.0f);
      gemm(dzt, false, dp.rt.value, true, ds_prev, 1.0f, 1.0f);

      if (l == 0) {
        gemm(sc.x, true, dzh, false, wh_.grad, 1.0f, 1.0f);
        gemm(sc.x, true, dzt, false, wt_.grad, 1.0f, 1.0f);
        gemm(dzh, false, wh_.value, true, dxs[ti], 1.0f, 1.0f);
        gemm(dzt, false, wt_.value, true, dxs[ti], 1.0f, 1.0f);
      }
      ds = std::move(ds_prev);
    }
    ds_next = std::move(ds);
  }
}

void RhnLayer::step(const Tensor& x, Tensor& s) const {
  const Index batch = x.rows();
  const Index h = config_.hidden_dim;
  ZIPFLM_CHECK(x.cols() == config_.input_dim, "RHN step input shape mismatch");
  ZIPFLM_CHECK(s.rows() == batch && s.cols() == h,
               "RHN step state shape mismatch");

  // Same kernel sequence as one forward() timestep so carried state stays
  // bitwise equal to the windowed path.
  Tensor pre_h({batch, h});
  Tensor pre_t({batch, h});
  for (Index l = 0; l < config_.depth; ++l) {
    const auto& dp = depth_[static_cast<std::size_t>(l)];
    gemm(s, false, dp.rh.value, false, pre_h, 1.0f, 0.0f);
    gemm(s, false, dp.rt.value, false, pre_t, 1.0f, 0.0f);
    if (l == 0) {
      gemm(x, false, wh_.value, false, pre_h, 1.0f, 1.0f);
      gemm(x, false, wt_.value, false, pre_t, 1.0f, 1.0f);
    }
    add_bias_rows(pre_h, dp.bh.value);
    add_bias_rows(pre_t, dp.bt.value);

    // Same fused cell as forward(), applied to the carry in place.
    simd::rhn_cell_inplace(
        pre_h.data().data(), pre_t.data().data(), s.data().data(),
        static_cast<std::size_t>(batch) * static_cast<std::size_t>(h));
  }
}

std::vector<Param*> RhnLayer::params() {
  std::vector<Param*> ps{&wh_, &wt_};
  for (auto& dp : depth_) {
    ps.push_back(&dp.rh);
    ps.push_back(&dp.rt);
    ps.push_back(&dp.bh);
    ps.push_back(&dp.bt);
  }
  return ps;
}

void RhnLayer::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

double RhnLayer::flops_per_token() const noexcept {
  const double d = static_cast<double>(config_.input_dim);
  const double h = static_cast<double>(config_.hidden_dim);
  const double depth = static_cast<double>(config_.depth);
  const double fwd_macs = 2.0 * d * h + depth * 2.0 * h * h;
  return 2.0 * fwd_macs * 3.0;
}

}  // namespace zipflm
