#include "zipflm/nn/rhn.hpp"

#include <cmath>

#include "zipflm/tensor/ops.hpp"

namespace zipflm {

namespace {
float glorot(Index fan_in, Index fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}
}  // namespace

RhnLayer::RhnLayer(const RhnConfig& config, Rng& rng) : config_(config) {
  ZIPFLM_CHECK(config.input_dim > 0 && config.hidden_dim > 0,
               "RHN dimensions must be positive");
  ZIPFLM_CHECK(config.depth >= 1, "RHN depth must be at least 1");
  const Index d = config.input_dim;
  const Index h = config.hidden_dim;
  const float sx = glorot(d, h);
  const float sr = glorot(h, h);
  wh_ = Param("rhn.wh", Tensor::uniform({d, h}, rng, -sx, sx));
  wt_ = Param("rhn.wt", Tensor::uniform({d, h}, rng, -sx, sx));
  depth_.reserve(static_cast<std::size_t>(config.depth));
  for (Index l = 0; l < config.depth; ++l) {
    DepthParams dp;
    dp.rh = Param("rhn.rh." + std::to_string(l),
                  Tensor::uniform({h, h}, rng, -sr, sr));
    dp.rt = Param("rhn.rt." + std::to_string(l),
                  Tensor::uniform({h, h}, rng, -sr, sr));
    dp.bh = Param("rhn.bh." + std::to_string(l), Tensor({h}));
    dp.bt = Param("rhn.bt." + std::to_string(l), Tensor({h}));
    // Negative transform bias: start close to carry (standard RHN
    // initialization, keeps deep recurrences stable early in training).
    dp.bt.value.fill(-2.0f);
    depth_.push_back(std::move(dp));
  }
}

void RhnLayer::forward(const std::vector<Tensor>& xs,
                       std::vector<Tensor>& out) {
  ZIPFLM_CHECK(!xs.empty(), "RHN forward needs at least one step");
  const Index batch = xs.front().rows();
  const Index h = config_.hidden_dim;

  cache_.clear();
  cache_.resize(xs.size());
  out.assign(xs.size(), Tensor());

  Tensor state({batch, h});  // s_0 for the first timestep: zeros
  Tensor pre_h({batch, h});
  Tensor pre_t({batch, h});

  for (std::size_t ti = 0; ti < xs.size(); ++ti) {
    const Tensor& x = xs[ti];
    ZIPFLM_CHECK(x.rows() == batch && x.cols() == config_.input_dim,
                 "RHN step input shape mismatch");
    StepCache& sc = cache_[ti];
    sc.x = x;
    sc.micro.resize(static_cast<std::size_t>(config_.depth));

    for (Index l = 0; l < config_.depth; ++l) {
      auto& dp = depth_[static_cast<std::size_t>(l)];
      auto& mc = sc.micro[static_cast<std::size_t>(l)];

      gemm(state, false, dp.rh.value, false, pre_h, 1.0f, 0.0f);
      gemm(state, false, dp.rt.value, false, pre_t, 1.0f, 0.0f);
      if (l == 0) {
        gemm(x, false, wh_.value, false, pre_h, 1.0f, 1.0f);
        gemm(x, false, wt_.value, false, pre_t, 1.0f, 1.0f);
      }
      add_bias_rows(pre_h, dp.bh.value);
      add_bias_rows(pre_t, dp.bt.value);

      mc.h = Tensor({batch, h});
      mc.t = Tensor({batch, h});
      mc.s = Tensor({batch, h});
      for (Index b = 0; b < batch; ++b) {
        const auto ph = pre_h.row(b);
        const auto pt = pre_t.row(b);
        const auto sp = state.row(b);
        auto hr = mc.h.row(b);
        auto tr = mc.t.row(b);
        auto srow = mc.s.row(b);
        for (Index j = 0; j < h; ++j) {
          const float hv = std::tanh(ph[static_cast<std::size_t>(j)]);
          const float tv =
              1.0f / (1.0f + std::exp(-pt[static_cast<std::size_t>(j)]));
          hr[static_cast<std::size_t>(j)] = hv;
          tr[static_cast<std::size_t>(j)] = tv;
          srow[static_cast<std::size_t>(j)] =
              hv * tv + sp[static_cast<std::size_t>(j)] * (1.0f - tv);
        }
      }
      state = mc.s;
    }
    out[ti] = state;
  }
}

void RhnLayer::backward(const std::vector<Tensor>& dout,
                        std::vector<Tensor>& dxs) {
  ZIPFLM_CHECK(dout.size() == cache_.size(),
               "backward step count must match the cached forward");
  const Index batch = cache_.front().x.rows();
  const Index h = config_.hidden_dim;

  dxs.assign(cache_.size(), Tensor());

  Tensor ds_next({batch, h});  // recurrent gradient from timestep t+1
  Tensor dzh({batch, h});
  Tensor dzt({batch, h});
  const Tensor zero_s({batch, h});

  for (std::size_t ti = cache_.size(); ti-- > 0;) {
    const StepCache& sc = cache_[ti];
    Tensor ds = dout[ti];
    ZIPFLM_CHECK(ds.rows() == batch && ds.cols() == h,
                 "backward output-gradient shape mismatch");
    axpy(1.0f, ds_next, ds);

    dxs[ti] = Tensor({batch, config_.input_dim});

    for (Index l = config_.depth; l-- > 0;) {
      auto& dp = depth_[static_cast<std::size_t>(l)];
      const auto& mc = sc.micro[static_cast<std::size_t>(l)];
      // State entering this micro-layer.
      const Tensor& s_prev =
          l > 0 ? sc.micro[static_cast<std::size_t>(l - 1)].s
                : (ti > 0 ? cache_[ti - 1].micro.back().s : zero_s);

      Tensor ds_prev({batch, h});
      for (Index b = 0; b < batch; ++b) {
        const auto hr = mc.h.row(b);
        const auto tr = mc.t.row(b);
        const auto spr = s_prev.row(b);
        const auto dsr = ds.row(b);
        auto dzhr = dzh.row(b);
        auto dztr = dzt.row(b);
        auto dspr = ds_prev.row(b);
        for (Index j = 0; j < h; ++j) {
          const float hv = hr[static_cast<std::size_t>(j)];
          const float tv = tr[static_cast<std::size_t>(j)];
          const float sv = spr[static_cast<std::size_t>(j)];
          const float d = dsr[static_cast<std::size_t>(j)];
          const float dh = d * tv;
          const float dt = d * (hv - sv);
          dzhr[static_cast<std::size_t>(j)] = dh * (1.0f - hv * hv);
          dztr[static_cast<std::size_t>(j)] = dt * tv * (1.0f - tv);
          dspr[static_cast<std::size_t>(j)] = d * (1.0f - tv);
        }
      }

      gemm(s_prev, true, dzh, false, dp.rh.grad, 1.0f, 1.0f);
      gemm(s_prev, true, dzt, false, dp.rt.grad, 1.0f, 1.0f);
      bias_grad(dzh, dp.bh.grad);
      bias_grad(dzt, dp.bt.grad);
      gemm(dzh, false, dp.rh.value, true, ds_prev, 1.0f, 1.0f);
      gemm(dzt, false, dp.rt.value, true, ds_prev, 1.0f, 1.0f);

      if (l == 0) {
        gemm(sc.x, true, dzh, false, wh_.grad, 1.0f, 1.0f);
        gemm(sc.x, true, dzt, false, wt_.grad, 1.0f, 1.0f);
        gemm(dzh, false, wh_.value, true, dxs[ti], 1.0f, 1.0f);
        gemm(dzt, false, wt_.value, true, dxs[ti], 1.0f, 1.0f);
      }
      ds = std::move(ds_prev);
    }
    ds_next = std::move(ds);
  }
}

void RhnLayer::step(const Tensor& x, Tensor& s) const {
  const Index batch = x.rows();
  const Index h = config_.hidden_dim;
  ZIPFLM_CHECK(x.cols() == config_.input_dim, "RHN step input shape mismatch");
  ZIPFLM_CHECK(s.rows() == batch && s.cols() == h,
               "RHN step state shape mismatch");

  // Same kernel sequence as one forward() timestep so carried state stays
  // bitwise equal to the windowed path.
  Tensor pre_h({batch, h});
  Tensor pre_t({batch, h});
  for (Index l = 0; l < config_.depth; ++l) {
    const auto& dp = depth_[static_cast<std::size_t>(l)];
    gemm(s, false, dp.rh.value, false, pre_h, 1.0f, 0.0f);
    gemm(s, false, dp.rt.value, false, pre_t, 1.0f, 0.0f);
    if (l == 0) {
      gemm(x, false, wh_.value, false, pre_h, 1.0f, 1.0f);
      gemm(x, false, wt_.value, false, pre_t, 1.0f, 1.0f);
    }
    add_bias_rows(pre_h, dp.bh.value);
    add_bias_rows(pre_t, dp.bt.value);

    for (Index b = 0; b < batch; ++b) {
      const auto ph = pre_h.row(b);
      const auto pt = pre_t.row(b);
      auto srow = s.row(b);  // read carry, write new state in place
      for (Index j = 0; j < h; ++j) {
        const float hv = std::tanh(ph[static_cast<std::size_t>(j)]);
        const float tv =
            1.0f / (1.0f + std::exp(-pt[static_cast<std::size_t>(j)]));
        srow[static_cast<std::size_t>(j)] =
            hv * tv + srow[static_cast<std::size_t>(j)] * (1.0f - tv);
      }
    }
  }
}

std::vector<Param*> RhnLayer::params() {
  std::vector<Param*> ps{&wh_, &wt_};
  for (auto& dp : depth_) {
    ps.push_back(&dp.rh);
    ps.push_back(&dp.rt);
    ps.push_back(&dp.bh);
    ps.push_back(&dp.bt);
  }
  return ps;
}

void RhnLayer::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

double RhnLayer::flops_per_token() const noexcept {
  const double d = static_cast<double>(config_.input_dim);
  const double h = static_cast<double>(config_.hidden_dim);
  const double depth = static_cast<double>(config_.depth);
  const double fwd_macs = 2.0 * d * h + depth * 2.0 * h * h;
  return 2.0 * fwd_macs * 3.0;
}

}  // namespace zipflm
