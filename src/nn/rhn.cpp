#include "zipflm/nn/rhn.hpp"

#include <cmath>
#include <cstring>

#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/ops.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {
float glorot(Index fan_in, Index fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}
}  // namespace

RhnLayer::RhnLayer(const RhnConfig& config, Rng& rng) : config_(config) {
  ZIPFLM_CHECK(config.input_dim > 0 && config.hidden_dim > 0,
               "RHN dimensions must be positive");
  ZIPFLM_CHECK(config.depth >= 1, "RHN depth must be at least 1");
  const Index d = config.input_dim;
  const Index h = config.hidden_dim;
  const float sx = glorot(d, h);
  const float sr = glorot(h, h);
  wh_ = Param("rhn.wh", Tensor::uniform({d, h}, rng, -sx, sx));
  wt_ = Param("rhn.wt", Tensor::uniform({d, h}, rng, -sx, sx));
  depth_.reserve(static_cast<std::size_t>(config.depth));
  for (Index l = 0; l < config.depth; ++l) {
    DepthParams dp;
    dp.rh = Param("rhn.rh." + std::to_string(l),
                  Tensor::uniform({h, h}, rng, -sr, sr));
    dp.rt = Param("rhn.rt." + std::to_string(l),
                  Tensor::uniform({h, h}, rng, -sr, sr));
    dp.bh = Param("rhn.bh." + std::to_string(l), Tensor({h}));
    dp.bt = Param("rhn.bt." + std::to_string(l), Tensor({h}));
    // Negative transform bias: start close to carry (standard RHN
    // initialization, keeps deep recurrences stable early in training).
    dp.bt.value.fill(-2.0f);
    depth_.push_back(std::move(dp));
  }
}

void RhnLayer::forward(const std::vector<Tensor>& xs,
                       std::vector<Tensor>& out) {
  ZIPFLM_CHECK(!xs.empty(), "RHN forward needs at least one step");
  const Index batch = xs.front().rows();
  const Index h = config_.hidden_dim;

  cache_.clear();
  cache_.resize(xs.size());
  out.assign(xs.size(), Tensor());

  Tensor state({batch, h});  // s_0 for the first timestep: zeros
  Tensor pre_h({batch, h});
  Tensor pre_t({batch, h});

  for (std::size_t ti = 0; ti < xs.size(); ++ti) {
    const Tensor& x = xs[ti];
    ZIPFLM_CHECK(x.rows() == batch && x.cols() == config_.input_dim,
                 "RHN step input shape mismatch");
    StepCache& sc = cache_[ti];
    sc.x = x;
    sc.micro.resize(static_cast<std::size_t>(config_.depth));

    for (Index l = 0; l < config_.depth; ++l) {
      auto& dp = depth_[static_cast<std::size_t>(l)];
      auto& mc = sc.micro[static_cast<std::size_t>(l)];

      gemm(state, false, dp.rh.value, false, pre_h, 1.0f, 0.0f);
      gemm(state, false, dp.rt.value, false, pre_t, 1.0f, 0.0f);
      if (l == 0) {
        gemm(x, false, wh_.value, false, pre_h, 1.0f, 1.0f);
        gemm(x, false, wt_.value, false, pre_t, 1.0f, 1.0f);
      }
      add_bias_rows(pre_h, dp.bh.value);
      add_bias_rows(pre_t, dp.bt.value);

      mc.h = Tensor({batch, h});
      mc.t = Tensor({batch, h});
      mc.s = Tensor({batch, h});
      // The whole (batch, h) block is contiguous and the cell is purely
      // elementwise, so it runs as one fused vector span.
      const std::size_t cells =
          static_cast<std::size_t>(batch) * static_cast<std::size_t>(h);
      const float* ph = pre_h.data().data();
      const float* pt = pre_t.data().data();
      const float* sp = state.data().data();
      float* hv = mc.h.data().data();
      float* tv = mc.t.data().data();
      float* sv = mc.s.data().data();
      ThreadPool::global().parallel_chunks(
          cells, [&](std::size_t cb, std::size_t ce) {
            simd::rhn_cell(ph + cb, pt + cb, sp + cb, hv + cb, tv + cb,
                           sv + cb, ce - cb);
          });
      state = mc.s;
    }
    out[ti] = state;
  }
}

void RhnLayer::backward(const std::vector<Tensor>& dout,
                        std::vector<Tensor>& dxs) {
  ZIPFLM_CHECK(dout.size() == cache_.size(),
               "backward step count must match the cached forward");
  const Index batch = cache_.front().x.rows();
  const Index h = config_.hidden_dim;
  const Index d_in = config_.input_dim;
  const std::size_t steps = cache_.size();
  const Index tb = static_cast<Index>(steps) * batch;

  dxs.assign(steps, Tensor());

  const auto nd = static_cast<std::size_t>(config_.depth);
  if (stage_.size() != nd || stage_.front().dzh.rows() != tb ||
      stage_.front().dzh.cols() != h || x_stack_.cols() != d_in) {
    stage_.assign(nd, BackwardStage{});
    for (auto& st : stage_) {
      st.dzh = Tensor({tb, h});
      st.dzt = Tensor({tb, h});
      st.s_prev = Tensor({tb, h});
    }
    x_stack_ = Tensor({tb, d_in});
    dx_stack_ = Tensor({tb, d_in});
  }

  Tensor ds_next({batch, h});  // recurrent gradient from timestep t+1
  Tensor dzh({batch, h});
  Tensor dzt({batch, h});
  const Tensor zero_s({batch, h});
  const std::size_t row_floats =
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(h);
  const std::size_t x_floats =
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(d_in);

  // Pass 1 — the recurrence: cell gradients per (timestep, depth), with
  // only the two dstate gemms (which feed the recursion) inline.  The
  // cell gradients and entry states are staged into per-depth stacks;
  // pass 2 turns each stack into one k = T·B weight-gradient gemm
  // instead of T separate rank-B updates, which divides the read-
  // modify-write traffic over the [H x H] gradient blocks by T.
  for (std::size_t ti = steps; ti-- > 0;) {
    const StepCache& sc = cache_[ti];
    Tensor ds = dout[ti];
    ZIPFLM_CHECK(ds.rows() == batch && ds.cols() == h,
                 "backward output-gradient shape mismatch");
    axpy(1.0f, ds_next, ds);

    for (Index l = config_.depth; l-- > 0;) {
      auto& dp = depth_[static_cast<std::size_t>(l)];
      const auto& mc = sc.micro[static_cast<std::size_t>(l)];
      // State entering this micro-layer.
      const Tensor& s_prev =
          l > 0 ? sc.micro[static_cast<std::size_t>(l - 1)].s
                : (ti > 0 ? cache_[ti - 1].micro.back().s : zero_s);

      Tensor ds_prev({batch, h});
      const std::size_t cells =
          static_cast<std::size_t>(batch) * static_cast<std::size_t>(h);
      const float* hv = mc.h.data().data();
      const float* tv = mc.t.data().data();
      const float* sp = s_prev.data().data();
      const float* dsr = ds.data().data();
      float* dzhp = dzh.data().data();
      float* dztp = dzt.data().data();
      float* dspp = ds_prev.data().data();
      ThreadPool::global().parallel_chunks(
          cells, [&](std::size_t cb, std::size_t ce) {
            simd::rhn_cell_grad(hv + cb, tv + cb, sp + cb, dsr + cb,
                                dzhp + cb, dztp + cb, dspp + cb, ce - cb);
          });

      BackwardStage& st = stage_[static_cast<std::size_t>(l)];
      const std::size_t off = ti * row_floats;
      std::memcpy(st.dzh.data().data() + off, dzhp,
                  row_floats * sizeof(float));
      std::memcpy(st.dzt.data().data() + off, dztp,
                  row_floats * sizeof(float));
      std::memcpy(st.s_prev.data().data() + off, sp,
                  row_floats * sizeof(float));

      gemm(dzh, false, dp.rh.value, true, ds_prev, 1.0f, 1.0f);
      gemm(dzt, false, dp.rt.value, true, ds_prev, 1.0f, 1.0f);

      if (l == 0) {
        std::memcpy(x_stack_.data().data() + ti * x_floats,
                    sc.x.data().data(), x_floats * sizeof(float));
      }
      ds = std::move(ds_prev);
    }
    ds_next = std::move(ds);
  }

  // Pass 2 — weight gradients, finalized depth L-1 down to 0 and then
  // wt/wh: reverse-backprop order, so each depth's parameters can start
  // their bucketed allreduce while earlier depths are still computing.
  const auto ready = [this](const Param& p) {
    if (param_ready_hook_) param_ready_hook_(p);
  };
  for (Index l = config_.depth; l-- > 0;) {
    auto& dp = depth_[static_cast<std::size_t>(l)];
    BackwardStage& st = stage_[static_cast<std::size_t>(l)];
    bias_grad(st.dzt, dp.bt.grad);
    ready(dp.bt);
    bias_grad(st.dzh, dp.bh.grad);
    ready(dp.bh);
    gemm(st.s_prev, true, st.dzt, false, dp.rt.grad, 1.0f, 1.0f);
    ready(dp.rt);
    gemm(st.s_prev, true, st.dzh, false, dp.rh.grad, 1.0f, 1.0f);
    ready(dp.rh);
  }
  BackwardStage& s0 = stage_.front();
  gemm(x_stack_, true, s0.dzt, false, wt_.grad, 1.0f, 1.0f);
  ready(wt_);
  gemm(x_stack_, true, s0.dzh, false, wh_.grad, 1.0f, 1.0f);
  ready(wh_);

  // Input gradients, batched over timesteps then split back out.
  dx_stack_.zero();
  gemm(s0.dzh, false, wh_.value, true, dx_stack_, 1.0f, 1.0f);
  gemm(s0.dzt, false, wt_.value, true, dx_stack_, 1.0f, 1.0f);
  for (std::size_t ti = 0; ti < steps; ++ti) {
    dxs[ti] = Tensor({batch, d_in});
    std::memcpy(dxs[ti].data().data(),
                dx_stack_.data().data() + ti * x_floats,
                x_floats * sizeof(float));
  }
}

void RhnLayer::step(const Tensor& x, Tensor& s) const {
  const Index batch = x.rows();
  const Index h = config_.hidden_dim;
  ZIPFLM_CHECK(x.cols() == config_.input_dim, "RHN step input shape mismatch");
  ZIPFLM_CHECK(s.rows() == batch && s.cols() == h,
               "RHN step state shape mismatch");

  // Same kernel sequence as one forward() timestep so carried state stays
  // bitwise equal to the windowed path.
  Tensor pre_h({batch, h});
  Tensor pre_t({batch, h});
  for (Index l = 0; l < config_.depth; ++l) {
    const auto& dp = depth_[static_cast<std::size_t>(l)];
    gemm(s, false, dp.rh.value, false, pre_h, 1.0f, 0.0f);
    gemm(s, false, dp.rt.value, false, pre_t, 1.0f, 0.0f);
    if (l == 0) {
      gemm(x, false, wh_.value, false, pre_h, 1.0f, 1.0f);
      gemm(x, false, wt_.value, false, pre_t, 1.0f, 1.0f);
    }
    add_bias_rows(pre_h, dp.bh.value);
    add_bias_rows(pre_t, dp.bt.value);

    // Same fused cell as forward(), applied to the carry in place.
    simd::rhn_cell_inplace(
        pre_h.data().data(), pre_t.data().data(), s.data().data(),
        static_cast<std::size_t>(batch) * static_cast<std::size_t>(h));
  }
}

std::vector<Param*> RhnLayer::params() {
  std::vector<Param*> ps{&wh_, &wt_};
  for (auto& dp : depth_) {
    ps.push_back(&dp.rh);
    ps.push_back(&dp.rt);
    ps.push_back(&dp.bh);
    ps.push_back(&dp.bt);
  }
  return ps;
}

void RhnLayer::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

double RhnLayer::flops_per_token() const noexcept {
  const double d = static_cast<double>(config_.input_dim);
  const double h = static_cast<double>(config_.hidden_dim);
  const double depth = static_cast<double>(config_.depth);
  const double fwd_macs = 2.0 * d * h + depth * 2.0 * h * h;
  return 2.0 * fwd_macs * 3.0;
}

}  // namespace zipflm
