#include "zipflm/tensor/half.hpp"

#include <bit>
#include <cstring>

namespace zipflm {

namespace {
inline std::uint32_t float_bits(float f) noexcept {
  return std::bit_cast<std::uint32_t>(f);
}
inline float bits_float(std::uint32_t b) noexcept {
  return std::bit_cast<float>(b);
}
}  // namespace

std::uint16_t Half::from_float(float value) noexcept {
  const std::uint32_t f = float_bits(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t abs = f & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN.  Preserve NaN-ness by forcing a mantissa bit.
    const std::uint32_t mantissa = abs > 0x7F800000u ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | mantissa);
  }
  if (abs >= 0x477FF000u) {
    // Rounds to >= 2^16: overflow to infinity.  (0x477FF000 is the first
    // float whose round-to-nearest half exceeds max_finite.)
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero).  Shift the implicit-1 mantissa into the
    // subnormal position and round to nearest even.
    if (abs < 0x33000000u) {
      // Below half of the smallest subnormal: rounds to zero.
      return static_cast<std::uint16_t>(sign);
    }
    // The subnormal mantissa is round(|v| * 2^24) = round(M * 2^(exp-126))
    // where M is the 24-bit significand including the implicit 1: shift
    // right by (126 - exp) with round-to-nearest-even.
    const std::uint32_t exp = abs >> 23;
    const std::uint32_t shift = 126 - exp;  // 14..24 in this branch
    const std::uint64_t mant =
        static_cast<std::uint64_t>((abs & 0x007FFFFFu) | 0x00800000u);
    const std::uint64_t round_bit = 1ull << (shift - 1);
    const std::uint64_t half_ulp = mant & round_bit;
    const std::uint64_t sticky = mant & (round_bit - 1);
    std::uint64_t result = mant >> shift;
    if (half_ulp && (sticky || (result & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }
  // Normal half.  Rebias exponent (127 -> 15) and round mantissa 23 -> 10.
  std::uint32_t half_exp = ((abs >> 23) - 112) << 10;
  std::uint32_t half_mant = (abs >> 13) & 0x03FFu;
  const std::uint32_t rest = abs & 0x1FFFu;
  std::uint32_t result = half_exp | half_mant;
  if (rest > 0x1000u || (rest == 0x1000u && (result & 1u))) {
    ++result;  // may carry into the exponent; that is exactly correct.
  }
  return static_cast<std::uint16_t>(sign | result);
}

float Half::to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x03FFu;

  if (exp == 0x1Fu) {
    // Inf / NaN.
    return bits_float(sign | 0x7F800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return bits_float(sign);  // signed zero
    // Subnormal: normalize.
    std::uint32_t m = mant;
    std::uint32_t e = 113;  // exponent of 2^-14 in float bias terms + 1
    while ((m & 0x0400u) == 0) {
      m <<= 1;
      --e;
    }
    m &= 0x03FFu;
    return bits_float(sign | (e << 23) | (m << 13));
  }
  return bits_float(sign | ((exp + 112) << 23) | (mant << 13));
}

}  // namespace zipflm
