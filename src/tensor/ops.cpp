#include "zipflm/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {
// Task block sizes: the unit of work handed to the thread pool.  Each
// output element belongs to exactly one block, so the accumulation
// order per element is fixed regardless of the worker count.
constexpr Index kBlockM = 32;
constexpr Index kBlockN = 64;

// B is consumed in (kBlockK x kBlockN) tiles copied into contiguous
// per-thread scratch before the inner loops run.  The original layout
// strides ldb floats between consecutive k rows (7 KiB for a 1792-wide
// weight matrix) — past the hardware prefetchers' page limit, so every
// k step of the unpacked kernel ate a cache/TLB miss.  Packing is a
// pure copy: values and accumulation order are untouched.  64 x 64
// keeps the whole tile (16 KiB) resident in L1 across every row pass,
// where the previous 256 x 128 tile (128 KiB) was re-streamed from L2
// once per row tile.
constexpr Index kBlockK = 64;

// Elementwise sweeps hand the pool chunks of whole elements; any chunk
// boundary gives the same bits, so only dispatch overhead matters.
constexpr std::size_t kElementGrain = 1 << 14;

struct GemmDims {
  Index m, n, k;
};

GemmDims validate_gemm(const Tensor& a, bool trans_a, const Tensor& b,
                       bool trans_b, const Tensor& c) {
  ZIPFLM_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
               "gemm requires matrices");
  const Index m = trans_a ? a.cols() : a.rows();
  const Index ka = trans_a ? a.rows() : a.cols();
  const Index kb = trans_b ? b.cols() : b.rows();
  const Index n = trans_b ? b.rows() : b.cols();
  ZIPFLM_CHECK(ka == kb, "gemm inner dimensions must agree");
  ZIPFLM_CHECK(c.rows() == m && c.cols() == n,
               "gemm output shape must be m x n");
  return {m, n, ka};
}

// ---------------------------------------------------------------------------
// Non-transposed-B panels: C[i, j..] accumulates alpha * op(A)(i, k) *
// B[k, j..] in ascending k order, vectorized across the j (column)
// dimension.  Each lane is a distinct output element performing the
// exact mul-then-add sequence the original scalar kernel performed, so
// results are bitwise identical to the scalar tile at any register
// width — the PR-1 batch-invariance contract rides on this.
// ---------------------------------------------------------------------------

/// RT fixed output rows x CP register-widths of columns.  A1 marks the
/// ubiquitous alpha == 1 case: multiplying by 1.0f is a bitwise no-op,
/// so skipping it keeps results identical while shedding a scalar
/// multiply per (row, k) step of the inner loop.  TA lifts the operand
/// layout choice to compile time so the inner loop carries no branch.
template <class V, Index RT, Index CP, bool A1, bool TA>
inline void gemm_tile_nt(const float* a, Index lda, const float* b, Index ldb,
                         float* c, Index ldc, float alpha, Index i, Index j,
                         Index k) {
  using R = typename V::Reg;
  constexpr Index W = static_cast<Index>(V::kWidth);
  R acc[RT][CP];
  for (Index r = 0; r < RT; ++r) {
    for (Index p = 0; p < CP; ++p) {
      acc[r][p] = V::load(c + (i + r) * ldc + j + p * W);
    }
  }
  for (Index kk = 0; kk < k; ++kk) {
    const float* brow = b + kk * ldb + j;
    for (Index r = 0; r < RT; ++r) {
      float av = TA ? a[kk * lda + i + r] : a[(i + r) * lda + kk];
      if constexpr (!A1) av *= alpha;
      const R bc = V::set1(av);
      for (Index p = 0; p < CP; ++p) {
        acc[r][p] = V::add(acc[r][p], V::mul(bc, V::load(brow + p * W)));
      }
    }
  }
  for (Index r = 0; r < RT; ++r) {
    for (Index p = 0; p < CP; ++p) {
      V::store(c + (i + r) * ldc + j + p * W, acc[r][p]);
    }
  }
}

template <class V, Index RT, bool A1, bool TA>
inline void gemm_rows_nt(const float* a, Index lda, const float* b, Index ldb,
                         float* c, Index ldc, float alpha, Index i, Index j0,
                         Index j1, Index k) {
  constexpr Index W = static_cast<Index>(V::kWidth);
  Index j = j0;
  for (; j + 2 * W <= j1; j += 2 * W) {
    gemm_tile_nt<V, RT, 2, A1, TA>(a, lda, b, ldb, c, ldc, alpha, i, j, k);
  }
  for (; j + W <= j1; j += W) {
    gemm_tile_nt<V, RT, 1, A1, TA>(a, lda, b, ldb, c, ldc, alpha, i, j, k);
  }
  for (; j < j1; ++j) {
    gemm_tile_nt<simd::ScalarOps, RT, 1, A1, TA>(a, lda, b, ldb, c, ldc,
                                                 alpha, i, j, k);
  }
}

/// One (rows x columns) output block, with B consumed through packed
/// k-chunks.  Accumulators spill to C at chunk boundaries — an exact
/// store/reload — so the per-element sum is still one ascending-k
/// sequence, bitwise identical to the unchunked kernel.  The main row
/// tile covers 8 rows so every packed B element loaded from L1 feeds 8
/// outputs; 8 is also the exact row count of the recurrent forward
/// gemms, which previously split into two 4-row passes.
template <class V, bool A1, bool TA>
void gemm_block_nt(const float* a, Index lda, const float* b, Index ldb,
                   float* c, Index ldc, float alpha, Index i0, Index i1,
                   Index j0, Index j1, Index k) {
  const Index tw = j1 - j0;
  thread_local std::vector<float> pack;
  pack.resize(static_cast<std::size_t>(kBlockK) * static_cast<std::size_t>(tw));
  float* tile = pack.data();
  float* c_off = c + j0;
  for (Index k0 = 0; k0 < k; k0 += kBlockK) {
    const Index kc = std::min(kBlockK, k - k0);
    for (Index kk = 0; kk < kc; ++kk) {
      std::memcpy(tile + kk * tw, b + (k0 + kk) * ldb + j0,
                  static_cast<std::size_t>(tw) * sizeof(float));
    }
    const float* a_off = TA ? a + k0 * lda : a + k0;
    Index i = i0;
    for (; i + 8 <= i1; i += 8) {
      gemm_rows_nt<V, 8, A1, TA>(a_off, lda, tile, tw, c_off, ldc, alpha, i,
                                 0, tw, kc);
    }
    for (; i + 4 <= i1; i += 4) {
      gemm_rows_nt<V, 4, A1, TA>(a_off, lda, tile, tw, c_off, ldc, alpha, i,
                                 0, tw, kc);
    }
    for (; i < i1; ++i) {
      gemm_rows_nt<V, 1, A1, TA>(a_off, lda, tile, tw, c_off, ldc, alpha, i,
                                 0, tw, kc);
    }
  }
}

// ---------------------------------------------------------------------------
// Transposed-B panels: element (i, j) is a dot product of two
// contiguous rows, accumulated with the fixed 8-lane interleave of
// simd::dot_span — the k order per element is a property of the
// element, not of tiling or ISA, so any backend produces the same bits.
// j is the outer loop so B row j is streamed from memory once and then
// served from L1 for every A row of the block (m is small in the
// backward d-state gemms; a transpose-packing variant measured slower
// because the pack cost cannot amortize over so few rows).
// ---------------------------------------------------------------------------

/// JT B-rows at a time sharing each A load: per 8-element block the A
/// vector is fetched once and multiplied into JT independent Acc8
/// accumulators, one per output column.  Each column's accumulator
/// performs the exact lane sequence dot_span performs for that (a, b)
/// pair — same 8-lane interleave, same tail fold, same combine tree —
/// so the result is bit-for-bit what the one-column kernel produced
/// while the A row is streamed JT times less often.
template <class V, Index JT>
inline void gemm_dots_tb(const float* arow, const float* b, Index ldb,
                         float* cout, Index ldc_unused, float alpha,
                         std::size_t k) {
  (void)ldc_unused;
  simd::Acc8<V> acc[JT];
  for (Index t = 0; t < JT; ++t) acc[t].fill(0.0f);
  const std::size_t k8 = k & ~(simd::kAccLanes - 1);
  for (std::size_t kk = 0; kk < k8; kk += simd::kAccLanes) {
    for (std::size_t p = 0; p < simd::Acc8<V>::kPacks; ++p) {
      const typename V::Reg av = V::load(arow + kk + p * V::kWidth);
      for (Index t = 0; t < JT; ++t) {
        acc[t].acc[p] = V::add(
            acc[t].acc[p],
            V::mul(av, V::load(b + static_cast<std::size_t>(t) *
                                       static_cast<std::size_t>(ldb) +
                               kk + p * V::kWidth)));
      }
    }
  }
  for (Index t = 0; t < JT; ++t) {
    float lanes[simd::kAccLanes];
    acc[t].store(lanes);
    const float* brow =
        b + static_cast<std::size_t>(t) * static_cast<std::size_t>(ldb);
    for (std::size_t j = 0; j < k - k8; ++j) {
      lanes[j] += arow[k8 + j] * brow[k8 + j];
    }
    cout[t] += alpha * simd::combine_sum8(lanes);
  }
}

template <class V>
void gemm_panel_tb(const float* a, Index lda, const float* b, Index ldb,
                   float* c, Index ldc, float alpha, Index i0, Index i1,
                   Index j0, Index j1, Index k) {
  Index j = j0;
  for (; j + 4 <= j1; j += 4) {
    const float* brows = b + j * ldb;
    for (Index i = i0; i < i1; ++i) {
      gemm_dots_tb<V, 4>(a + i * lda, brows, ldb, c + i * ldc + j, ldc, alpha,
                         static_cast<std::size_t>(k));
    }
  }
  for (; j < j1; ++j) {
    const float* brow = b + j * ldb;
    for (Index i = i0; i < i1; ++i) {
      c[i * ldc + j] += alpha * simd::dot_span<V>(a + i * lda, brow,
                                                  static_cast<std::size_t>(k));
    }
  }
}

/// Rare shape (both operands transposed): no caller uses it today, so a
/// plain scalar loop with ascending-k accumulation is enough.
void gemm_panel_generic(const Tensor& a, bool trans_a, const Tensor& b,
                        bool trans_b, Tensor& c, float alpha, Index i0,
                        Index i1, Index j0, Index j1, Index k) {
  for (Index i = i0; i < i1; ++i) {
    for (Index j = j0; j < j1; ++j) {
      float acc = c(i, j);
      for (Index kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a(kk, i) : a(i, kk);
        const float bv = trans_b ? b(j, kk) : b(kk, j);
        acc += alpha * av * bv;
      }
      c(i, j) = acc;
    }
  }
}

}  // namespace

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  const auto [m, n, k] = validate_gemm(a, trans_a, b, trans_b, c);
  ZIPFLM_ASSERT(&a != &c && &b != &c, "gemm output must not alias inputs");

  if (beta == 0.0f) {
    c.zero();
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  const Index lda = a.cols();
  const Index ldb = b.cols();
  const Index ldc = c.cols();
  const bool native = simd::active_backend() == simd::Backend::kNative;

  // Parallelize over row x column blocks: each output element is written
  // by exactly one task, so accumulation order per element is fixed
  // regardless of the worker count.
  const Index row_blocks = (m + kBlockM - 1) / kBlockM;
  const Index col_blocks = (n + kBlockN - 1) / kBlockN;
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(row_blocks * col_blocks),
      [&, m, n, k](std::size_t t) {
        const Index i0 = static_cast<Index>(t) / col_blocks * kBlockM;
        const Index i1 = std::min(m, i0 + kBlockM);
        const Index j0 = static_cast<Index>(t) % col_blocks * kBlockN;
        const Index j1 = std::min(n, j0 + kBlockN);
        if (!trans_b) {
          const auto block_nt = [&](auto v, auto a1, auto ta) {
            gemm_block_nt<typename decltype(v)::type, decltype(a1)::value,
                          decltype(ta)::value>(ap, lda, bp, ldb, cp, ldc,
                                               alpha, i0, i1, j0, j1, k);
          };
          const auto with_flags = [&](auto v) {
            if (alpha == 1.0f) {
              if (trans_a) {
                block_nt(v, std::true_type{}, std::true_type{});
              } else {
                block_nt(v, std::true_type{}, std::false_type{});
              }
            } else if (trans_a) {
              block_nt(v, std::false_type{}, std::true_type{});
            } else {
              block_nt(v, std::false_type{}, std::false_type{});
            }
          };
          if (native) {
            with_flags(std::type_identity<simd::NativeOps>{});
          } else {
            with_flags(std::type_identity<simd::ScalarOps>{});
          }
        } else if (!trans_a) {
          if (native) {
            gemm_panel_tb<simd::NativeOps>(ap, lda, bp, ldb, cp, ldc, alpha,
                                           i0, i1, j0, j1, k);
          } else {
            gemm_panel_tb<simd::ScalarOps>(ap, lda, bp, ldb, cp, ldc, alpha,
                                           i0, i1, j0, j1, k);
          }
        } else {
          gemm_panel_generic(a, trans_a, b, trans_b, c, alpha, i0, i1, j0, j1,
                             k);
        }
      },
      /*grain=*/1);
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  ZIPFLM_CHECK(x.size() == y.size(), "axpy requires equal sizes");
  const float* xs = x.data().data();
  float* ys = y.data().data();
  ThreadPool::global().parallel_chunks(
      x.data().size(),
      [&](std::size_t b, std::size_t e) {
        simd::axpy(alpha, xs + b, ys + b, e - b);
      },
      kElementGrain);
}

void scale(Tensor& x, float alpha) {
  float* xs = x.data().data();
  ThreadPool::global().parallel_chunks(
      x.data().size(),
      [&](std::size_t b, std::size_t e) { simd::scale(xs + b, alpha, e - b); },
      kElementGrain);
}

namespace {
template <typename F>
void elementwise_spans(const Tensor& x, Tensor& y, F f) {
  ZIPFLM_CHECK(x.size() == y.size(), "elementwise requires equal sizes");
  const float* xs = x.data().data();
  float* ys = y.data().data();
  ThreadPool::global().parallel_chunks(
      x.data().size(),
      [&](std::size_t b, std::size_t e) { f(xs + b, ys + b, e - b); },
      kElementGrain);
}
}  // namespace

void sigmoid(const Tensor& x, Tensor& y) {
  elementwise_spans(x, y, [](const float* xs, float* ys, std::size_t n) {
    simd::sigmoid(xs, ys, n);
  });
}

void tanh_op(const Tensor& x, Tensor& y) {
  elementwise_spans(x, y, [](const float* xs, float* ys, std::size_t n) {
    simd::tanh_op(xs, ys, n);
  });
}

void relu(const Tensor& x, Tensor& y) {
  elementwise_spans(x, y, [](const float* xs, float* ys, std::size_t n) {
    simd::relu(xs, ys, n);
  });
}

void sigmoid_grad_from_output(const Tensor& y, Tensor& dy) {
  elementwise_spans(y, dy, [](const float* ys, float* ds, std::size_t n) {
    simd::sigmoid_grad(ys, ds, n);
  });
}

void tanh_grad_from_output(const Tensor& y, Tensor& dy) {
  elementwise_spans(y, dy, [](const float* ys, float* ds, std::size_t n) {
    simd::tanh_grad(ys, ds, n);
  });
}

void hadamard(const Tensor& x, const Tensor& y, Tensor& z) {
  ZIPFLM_CHECK(x.size() == y.size() && x.size() == z.size(),
               "hadamard requires equal sizes");
  const float* xs = x.data().data();
  const float* ys = y.data().data();
  float* zs = z.data().data();
  ThreadPool::global().parallel_chunks(
      x.data().size(),
      [&](std::size_t b, std::size_t e) {
        simd::hadamard(xs + b, ys + b, zs + b, e - b);
      },
      kElementGrain);
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  ZIPFLM_CHECK(logits.rank() == 2 && logits.shape() == probs.shape(),
               "softmax_rows requires matching matrices");
  const Index cols = logits.cols();
  const float* in = logits.data().data();
  float* out = probs.data().data();
  // One row is one unit of work: the max/denominator reductions use the
  // fixed 8-lane layout, so a row's bits do not depend on which thread
  // (or ISA) computes it.
  ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(logits.rows()),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          const float* x = in + i * static_cast<std::size_t>(cols);
          float* y = out + i * static_cast<std::size_t>(cols);
          const std::size_t n = static_cast<std::size_t>(cols);
          const float mx =
              simd::reduce_max(x, n, -std::numeric_limits<float>::infinity());
          const float denom = simd::exp_sub_sum(x, y, mx, n);
          simd::scale(y, 1.0f / denom, n);
        }
      },
      /*grain=*/1);
}

void log_softmax_rows(const Tensor& logits, Tensor& log_probs) {
  ZIPFLM_CHECK(logits.rank() == 2 && logits.shape() == log_probs.shape(),
               "log_softmax_rows requires matching matrices");
  const Index cols = logits.cols();
  const float* in = logits.data().data();
  float* out = log_probs.data().data();
  ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(logits.rows()),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          const float* x = in + i * static_cast<std::size_t>(cols);
          float* y = out + i * static_cast<std::size_t>(cols);
          const std::size_t n = static_cast<std::size_t>(cols);
          const float mx =
              simd::reduce_max(x, n, -std::numeric_limits<float>::infinity());
          // exp(x - mx) lands in the output row as scratch; the second
          // pass overwrites it with x - lse.
          const float denom = simd::exp_sub_sum(x, y, mx, n);
          const float lse = mx + std::log(denom);
          simd::sub_const(x, y, lse, n);
        }
      },
      /*grain=*/1);
}

float sum(const Tensor& x) {
  // Deliberately double precision and serial: used by statistics and
  // tests, not hot paths.
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  return static_cast<float>(acc);
}

float max_abs(const Tensor& x) {
  return simd::max_abs(x.data().data(), x.data().size());
}

float l2_norm(const Tensor& x) {
  double acc = 0.0;
  for (float v : x.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void gather_rows(const Tensor& table, std::span<const Index> ids, Tensor& out) {
  ZIPFLM_CHECK(table.rank() == 2 && out.rank() == 2, "gather_rows on matrices");
  ZIPFLM_CHECK(out.rows() == static_cast<Index>(ids.size()) &&
                   out.cols() == table.cols(),
               "gather_rows output shape mismatch");
  const std::size_t width = static_cast<std::size_t>(table.cols());
  const float* src = table.data().data();
  float* dst = out.data().data();
  const Index vocab = table.rows();
  ThreadPool::global().parallel_chunks(
      ids.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          ZIPFLM_ASSERT(ids[i] >= 0 && ids[i] < vocab,
                        "gather id out of vocabulary range");
          std::copy_n(src + static_cast<std::size_t>(ids[i]) * width, width,
                      dst + i * width);
        }
      },
      /*grain=*/16);
}

void scatter_add_rows(const Tensor& grad, std::span<const Index> ids,
                      Tensor& table) {
  ZIPFLM_CHECK(grad.rank() == 2 && table.rank() == 2,
               "scatter_add_rows on matrices");
  ZIPFLM_CHECK(grad.rows() == static_cast<Index>(ids.size()) &&
                   grad.cols() == table.cols(),
               "scatter_add_rows gradient shape mismatch");
  // Serial on purpose: ids may repeat, so rows of `table` are not
  // disjoint across tokens and the ascending token order is the
  // documented accumulation contract.
  const std::size_t width = static_cast<std::size_t>(grad.cols());
  const float* src = grad.data().data();
  float* dst = table.data().data();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ZIPFLM_ASSERT(ids[i] >= 0 && ids[i] < table.rows(),
                  "scatter id out of vocabulary range");
    simd::add_inplace(dst + static_cast<std::size_t>(ids[i]) * width,
                      src + i * width, width);
  }
}

void add_bias_rows(Tensor& y, const Tensor& bias) {
  ZIPFLM_CHECK(y.rank() == 2 && bias.size() == y.cols(),
               "bias length must equal column count");
  const float* b = bias.data().data();
  const std::size_t width = static_cast<std::size_t>(y.cols());
  float* ys = y.data().data();
  ThreadPool::global().parallel_chunks(
      static_cast<std::size_t>(y.rows()),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          simd::add_inplace(ys + i * width, b, width);
        }
      },
      /*grain=*/8);
}

void bias_grad(const Tensor& dy, Tensor& db) {
  ZIPFLM_CHECK(dy.rank() == 2 && db.size() == dy.cols(),
               "bias grad length must equal column count");
  // Chunk the *columns*: every element of db accumulates its column in
  // ascending row order no matter how many workers run.
  float* b = db.data().data();
  const float* src = dy.data().data();
  const std::size_t width = static_cast<std::size_t>(dy.cols());
  const std::size_t rows = static_cast<std::size_t>(dy.rows());
  ThreadPool::global().parallel_chunks(
      width,
      [&](std::size_t cb, std::size_t ce) {
        for (std::size_t i = 0; i < rows; ++i) {
          simd::add_inplace(b + cb, src + i * width + cb, ce - cb);
        }
      },
      /*grain=*/512);
}

void clip(Tensor& x, float limit) {
  ZIPFLM_CHECK(limit > 0.0f, "clip limit must be positive");
  float* xs = x.data().data();
  ThreadPool::global().parallel_chunks(
      x.data().size(),
      [&](std::size_t b, std::size_t e) { simd::clip(xs + b, limit, e - b); },
      kElementGrain);
}

}  // namespace zipflm
