#include "zipflm/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "zipflm/support/thread_pool.hpp"

namespace zipflm {

namespace {
// Task block sizes: the unit of work handed to the thread pool.
constexpr Index kBlockM = 32;
constexpr Index kBlockN = 128;

struct GemmDims {
  Index m, n, k;
};

GemmDims validate_gemm(const Tensor& a, bool trans_a, const Tensor& b,
                       bool trans_b, const Tensor& c) {
  ZIPFLM_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
               "gemm requires matrices");
  const Index m = trans_a ? a.cols() : a.rows();
  const Index ka = trans_a ? a.rows() : a.cols();
  const Index kb = trans_b ? b.cols() : b.rows();
  const Index n = trans_b ? b.rows() : b.cols();
  ZIPFLM_CHECK(ka == kb, "gemm inner dimensions must agree");
  ZIPFLM_CHECK(c.rows() == m && c.cols() == n,
               "gemm output shape must be m x n");
  return {m, n, ka};
}

inline float at(const Tensor& t, bool trans, Index i, Index j) {
  return trans ? t(j, i) : t(i, j);
}

// Register-tile shape for the non-transposed-B kernel: kTileM rows of C
// accumulated across the whole k extent while one kTileN-wide slice of a
// B row streams through.  Accumulators are seeded from C's (beta-scaled)
// current value and contributions are added in ascending k order, so
// every output element sees exactly the same float-operation sequence as
// the naive kernel — independent of tile shape, batch size, and worker
// count.  That invariance is what lets batched inference reproduce
// single-stream results bit for bit.
constexpr Index kTileM = 8;
constexpr Index kTileN = 16;

template <Index Rt, Index Ct>
inline void gemm_tile_fixed(const Tensor& a, bool trans_a, const Tensor& b,
                            Tensor& c, float alpha, Index ib, Index jb,
                            Index k) {
  float acc[Rt][Ct];
  for (Index r = 0; r < Rt; ++r) {
    const float* crow = c.row(ib + r).data() + jb;
    for (Index v = 0; v < Ct; ++v) acc[r][v] = crow[v];
  }
  for (Index kk = 0; kk < k; ++kk) {
    const float* brow = b.row(kk).data() + jb;
    for (Index r = 0; r < Rt; ++r) {
      const float aik = alpha * at(a, trans_a, ib + r, kk);
      for (Index v = 0; v < Ct; ++v) acc[r][v] += aik * brow[v];
    }
  }
  for (Index r = 0; r < Rt; ++r) {
    float* crow = c.row(ib + r).data() + jb;
    for (Index v = 0; v < Ct; ++v) crow[v] = acc[r][v];
  }
}

void gemm_tile_edge(const Tensor& a, bool trans_a, const Tensor& b, Tensor& c,
                    float alpha, Index ib, Index jb, Index rt, Index ct,
                    Index k) {
  float acc[kTileM][kTileN];
  for (Index r = 0; r < rt; ++r) {
    const float* crow = c.row(ib + r).data() + jb;
    for (Index v = 0; v < ct; ++v) acc[r][v] = crow[v];
  }
  for (Index kk = 0; kk < k; ++kk) {
    const float* brow = b.row(kk).data() + jb;
    for (Index r = 0; r < rt; ++r) {
      const float aik = alpha * at(a, trans_a, ib + r, kk);
      for (Index v = 0; v < ct; ++v) acc[r][v] += aik * brow[v];
    }
  }
  for (Index r = 0; r < rt; ++r) {
    float* crow = c.row(ib + r).data() + jb;
    for (Index v = 0; v < ct; ++v) crow[v] = acc[r][v];
  }
}

/// C[i0:i1, j0:j1] += alpha * op(A)[i0:i1, :] * B[:, j0:j1] with B not
/// transposed (B rows contiguous).
void gemm_panel_nt(const Tensor& a, bool trans_a, const Tensor& b, Tensor& c,
                   float alpha, Index i0, Index i1, Index j0, Index j1,
                   Index k) {
  for (Index ib = i0; ib < i1; ib += kTileM) {
    const Index rt = std::min(kTileM, i1 - ib);
    for (Index jb = j0; jb < j1; jb += kTileN) {
      const Index ct = std::min(kTileN, j1 - jb);
      if (rt == kTileM && ct == kTileN) {
        gemm_tile_fixed<kTileM, kTileN>(a, trans_a, b, c, alpha, ib, jb, k);
      } else {
        gemm_tile_edge(a, trans_a, b, c, alpha, ib, jb, rt, ct, k);
      }
    }
  }
}

/// Same contract with B transposed: element (i, j) is a dot product of
/// two contiguous rows, accumulated with kDotJ interleaved scalar chains
/// (ILP without reassociation, so k order stays ascending per element).
void gemm_panel_tb(const Tensor& a, bool trans_a, const Tensor& b, Tensor& c,
                   float alpha, Index i0, Index i1, Index j0, Index j1,
                   Index k) {
  constexpr Index kDotJ = 8;
  for (Index i = i0; i < i1; ++i) {
    float* crow = c.row(i).data();
    for (Index jb = j0; jb < j1; jb += kDotJ) {
      const Index jt = std::min(kDotJ, j1 - jb);
      float acc[kDotJ];
      for (Index jj = 0; jj < jt; ++jj) acc[jj] = crow[jb + jj];
      for (Index kk = 0; kk < k; ++kk) {
        const float aik = alpha * at(a, trans_a, i, kk);
        for (Index jj = 0; jj < jt; ++jj) {
          acc[jj] += aik * b(jb + jj, kk);
        }
      }
      for (Index jj = 0; jj < jt; ++jj) crow[jb + jj] = acc[jj];
    }
  }
}
}  // namespace

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  const auto [m, n, k] = validate_gemm(a, trans_a, b, trans_b, c);
  ZIPFLM_ASSERT(&a != &c && &b != &c, "gemm output must not alias inputs");

  if (beta == 0.0f) {
    c.zero();
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  // Parallelize over row x column blocks: each output element is written
  // by exactly one task, so accumulation order per element is fixed
  // regardless of the worker count.
  const Index row_blocks = (m + kBlockM - 1) / kBlockM;
  const Index col_blocks = (n + kBlockN - 1) / kBlockN;
  ThreadPool::global().parallel_for(
      static_cast<std::size_t>(row_blocks * col_blocks), [&](std::size_t t) {
        const Index i0 = static_cast<Index>(t) / col_blocks * kBlockM;
        const Index i1 = std::min(m, i0 + kBlockM);
        const Index j0 = static_cast<Index>(t) % col_blocks * kBlockN;
        const Index j1 = std::min(n, j0 + kBlockN);
        if (!trans_b) {
          gemm_panel_nt(a, trans_a, b, c, alpha, i0, i1, j0, j1, k);
        } else {
          gemm_panel_tb(a, trans_a, b, c, alpha, i0, i1, j0, j1, k);
        }
      });
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  ZIPFLM_CHECK(x.size() == y.size(), "axpy requires equal sizes");
  const float* xs = x.data().data();
  float* ys = y.data().data();
  const std::size_t n = x.data().size();
  for (std::size_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

void scale(Tensor& x, float alpha) {
  for (float& v : x.data()) v *= alpha;
}

namespace {
template <typename F>
void elementwise(const Tensor& x, Tensor& y, F f) {
  ZIPFLM_CHECK(x.size() == y.size(), "elementwise requires equal sizes");
  const float* xs = x.data().data();
  float* ys = y.data().data();
  const std::size_t n = x.data().size();
  for (std::size_t i = 0; i < n; ++i) ys[i] = f(xs[i]);
}
}  // namespace

void sigmoid(const Tensor& x, Tensor& y) {
  elementwise(x, y, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

void tanh_op(const Tensor& x, Tensor& y) {
  elementwise(x, y, [](float v) { return std::tanh(v); });
}

void relu(const Tensor& x, Tensor& y) {
  elementwise(x, y, [](float v) { return v > 0.0f ? v : 0.0f; });
}

void sigmoid_grad_from_output(const Tensor& y, Tensor& dy) {
  elementwise(y, dy, [](float v) { return v * (1.0f - v); });
}

void tanh_grad_from_output(const Tensor& y, Tensor& dy) {
  elementwise(y, dy, [](float v) { return 1.0f - v * v; });
}

void hadamard(const Tensor& x, const Tensor& y, Tensor& z) {
  ZIPFLM_CHECK(x.size() == y.size() && x.size() == z.size(),
               "hadamard requires equal sizes");
  const float* xs = x.data().data();
  const float* ys = y.data().data();
  float* zs = z.data().data();
  const std::size_t n = x.data().size();
  for (std::size_t i = 0; i < n; ++i) zs[i] = xs[i] * ys[i];
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  ZIPFLM_CHECK(logits.rank() == 2 && logits.shape() == probs.shape(),
               "softmax_rows requires matching matrices");
  for (Index i = 0; i < logits.rows(); ++i) {
    const auto in = logits.row(i);
    auto out = probs.row(i);
    const float mx = *std::max_element(in.begin(), in.end());
    float denom = 0.0f;
    for (std::size_t j = 0; j < in.size(); ++j) {
      out[j] = std::exp(in[j] - mx);
      denom += out[j];
    }
    const float inv = 1.0f / denom;
    for (float& v : out) v *= inv;
  }
}

void log_softmax_rows(const Tensor& logits, Tensor& log_probs) {
  ZIPFLM_CHECK(logits.rank() == 2 && logits.shape() == log_probs.shape(),
               "log_softmax_rows requires matching matrices");
  for (Index i = 0; i < logits.rows(); ++i) {
    const auto in = logits.row(i);
    auto out = log_probs.row(i);
    const float mx = *std::max_element(in.begin(), in.end());
    float denom = 0.0f;
    for (float v : in) denom += std::exp(v - mx);
    const float lse = mx + std::log(denom);
    for (std::size_t j = 0; j < in.size(); ++j) out[j] = in[j] - lse;
  }
}

float sum(const Tensor& x) {
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  return static_cast<float>(acc);
}

float max_abs(const Tensor& x) {
  float mx = 0.0f;
  for (float v : x.data()) mx = std::max(mx, std::fabs(v));
  return mx;
}

float l2_norm(const Tensor& x) {
  double acc = 0.0;
  for (float v : x.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void gather_rows(const Tensor& table, std::span<const Index> ids, Tensor& out) {
  ZIPFLM_CHECK(table.rank() == 2 && out.rank() == 2, "gather_rows on matrices");
  ZIPFLM_CHECK(out.rows() == static_cast<Index>(ids.size()) &&
                   out.cols() == table.cols(),
               "gather_rows output shape mismatch");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ZIPFLM_ASSERT(ids[i] >= 0 && ids[i] < table.rows(),
                  "gather id out of vocabulary range");
    auto src = table.row(ids[i]);
    auto dst = out.row(static_cast<Index>(i));
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

void scatter_add_rows(const Tensor& grad, std::span<const Index> ids,
                      Tensor& table) {
  ZIPFLM_CHECK(grad.rank() == 2 && table.rank() == 2,
               "scatter_add_rows on matrices");
  ZIPFLM_CHECK(grad.rows() == static_cast<Index>(ids.size()) &&
                   grad.cols() == table.cols(),
               "scatter_add_rows gradient shape mismatch");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ZIPFLM_ASSERT(ids[i] >= 0 && ids[i] < table.rows(),
                  "scatter id out of vocabulary range");
    auto src = grad.row(static_cast<Index>(i));
    auto dst = table.row(ids[i]);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
  }
}

void add_bias_rows(Tensor& y, const Tensor& bias) {
  ZIPFLM_CHECK(y.rank() == 2 && bias.size() == y.cols(),
               "bias length must equal column count");
  const float* b = bias.data().data();
  for (Index i = 0; i < y.rows(); ++i) {
    auto row = y.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += b[j];
  }
}

void bias_grad(const Tensor& dy, Tensor& db) {
  ZIPFLM_CHECK(dy.rank() == 2 && db.size() == dy.cols(),
               "bias grad length must equal column count");
  float* b = db.data().data();
  for (Index i = 0; i < dy.rows(); ++i) {
    auto row = dy.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) b[j] += row[j];
  }
}

void clip(Tensor& x, float limit) {
  ZIPFLM_CHECK(limit > 0.0f, "clip limit must be positive");
  for (float& v : x.data()) v = std::clamp(v, -limit, limit);
}

}  // namespace zipflm
