#include "zipflm/tensor/cast.hpp"

#include <algorithm>
#include <cmath>

#include "zipflm/support/error.hpp"
#include "zipflm/support/thread_pool.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {

// Compression-scaling casts sit on the exchange critical path (ZipCCL's
// observation: the payload transform must be parallel or it becomes the
// collective's bottleneck), so they are vectorized and pool-chunked.
// Chunks are independent elements — any split gives the same bytes.
constexpr std::size_t kCastGrain = 1 << 14;

void compress_span_scalar(const float* src, float scale, Half* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half(src[i] * scale);
}

void decompress_span_scalar(const Half* src, float inv, float* dst,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * inv;
  }
}

void half_accumulate_scalar(Half* mine, const Half* left, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    mine[j] = Half(static_cast<float>(mine[j]) + static_cast<float>(left[j]));
  }
}

#if defined(ZIPFLM_SIMD_AVX2) && defined(__F16C__)

// Hardware F16C round-to-nearest-even matches the software converter
// bit for bit on every non-NaN input (including subnormals and the
// 65520 overflow-to-inf threshold) — the determinism suite proves this
// on the machine at hand.  NaN payloads differ (the software path
// canonicalizes, VCVTPS2PH passes mantissa bits through), so blocks
// containing a NaN take the scalar path.
void compress_span(const float* src, float scale, Half* dst, std::size_t n) {
  if (simd::active_backend() != simd::Backend::kNative) {
    compress_span_scalar(src, scale, dst, n);
    return;
  }
  const __m256 sv = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_mul_ps(_mm256_loadu_ps(src + i), sv);
    const __m256 nan = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(nan) != 0) {
      compress_span_scalar(src + i, scale, dst + i, 8);
      continue;
    }
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  compress_span_scalar(src + i, scale, dst + i, n - i);
}

void decompress_span(const Half* src, float inv, float* dst, std::size_t n) {
  if (simd::active_backend() != simd::Backend::kNative) {
    decompress_span_scalar(src, inv, dst, n);
    return;
  }
  const __m256 iv = _mm256_set1_ps(inv);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256 f = _mm256_cvtph_ps(h);
    const __m256 nan = _mm256_cmp_ps(f, f, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(nan) != 0) {
      // VCVTPH2PS quiets signalling NaNs; the software path preserves
      // the payload.  Keep the software semantics.
      decompress_span_scalar(src + i, inv, dst + i, 8);
      continue;
    }
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(f, iv));
  }
  decompress_span_scalar(src + i, inv, dst + i, n - i);
}

void half_accumulate_span(Half* mine, const Half* left, std::size_t n) {
  if (simd::active_backend() != simd::Backend::kNative) {
    half_accumulate_scalar(mine, left, n);
    return;
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mine + i)));
    const __m256 b = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(left + i)));
    const __m256 s = _mm256_add_ps(a, b);
    // A NaN in either input (a corrupted wire chunk) or born from
    // inf + -inf: take the scalar path so the software converter's
    // payload canonicalization is what lands on the wire.
    const __m256 nan = _mm256_cmp_ps(s, s, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(nan) != 0) {
      half_accumulate_scalar(mine + i, left + i, 8);
      continue;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mine + i),
                     _mm256_cvtps_ph(s, _MM_FROUND_TO_NEAREST_INT));
  }
  half_accumulate_scalar(mine + i, left + i, n - i);
}

#else

void compress_span(const float* src, float scale, Half* dst, std::size_t n) {
  compress_span_scalar(src, scale, dst, n);
}

void decompress_span(const Half* src, float inv, float* dst, std::size_t n) {
  decompress_span_scalar(src, inv, dst, n);
}

void half_accumulate_span(Half* mine, const Half* left, std::size_t n) {
  half_accumulate_scalar(mine, left, n);
}

#endif

}  // namespace

void half_accumulate(Half* mine, const Half* left, std::size_t n) {
  half_accumulate_span(mine, left, n);
}

void compress_fp16(std::span<const float> src, float scale,
                   std::vector<Half>& dst) {
  dst.resize(src.size());
  const float* s = src.data();
  Half* d = dst.data();
  ThreadPool::global().parallel_chunks(
      src.size(),
      [&](std::size_t b, std::size_t e) {
        compress_span(s + b, scale, d + b, e - b);
      },
      kCastGrain);
}

void decompress_fp16(std::span<const Half> src, float scale,
                     std::vector<float>& dst) {
  dst.resize(src.size());
  decompress_fp16(src, scale, std::span<float>(dst));
}

void decompress_fp16(std::span<const Half> src, float scale,
                     std::span<float> dst) {
  ZIPFLM_CHECK(dst.size() == src.size(),
               "decompress_fp16 destination size mismatch");
  const float inv = 1.0f / scale;
  const Half* s = src.data();
  float* d = dst.data();
  ThreadPool::global().parallel_chunks(
      src.size(),
      [&](std::size_t b, std::size_t e) {
        decompress_span(s + b, inv, d + b, e - b);
      },
      kCastGrain);
}

void fp16_round_trip(std::span<float> values, float scale) {
  const float inv = 1.0f / scale;
  for (float& v : values) {
    v = static_cast<float>(Half(v * scale)) * inv;
  }
}

CastLossStats measure_cast_loss(std::span<const float> values, float scale) {
  CastLossStats stats;
  stats.total = values.size();
  const float inv = 1.0f / scale;
  for (float v : values) {
    const Half h(v * scale);
    const float back = static_cast<float>(h) * inv;
    if (v != 0.0f && back == 0.0f) {
      ++stats.flushed_to_zero;
    } else if (std::isfinite(v * scale) && h.is_inf()) {
      ++stats.overflowed;
    } else if (v != 0.0f && std::isfinite(back)) {
      stats.max_rel_error = std::max(
          stats.max_rel_error,
          static_cast<double>(std::fabs(back - v) / std::fabs(v)));
    }
  }
  return stats;
}

}  // namespace zipflm
