#include "zipflm/tensor/cast.hpp"

#include <algorithm>
#include <cmath>

namespace zipflm {

void compress_fp16(std::span<const float> src, float scale,
                   std::vector<Half>& dst) {
  dst.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = Half(src[i] * scale);
  }
}

void decompress_fp16(std::span<const Half> src, float scale,
                     std::vector<float>& dst) {
  dst.resize(src.size());
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]) * inv;
  }
}

void fp16_round_trip(std::span<float> values, float scale) {
  const float inv = 1.0f / scale;
  for (float& v : values) {
    v = static_cast<float>(Half(v * scale)) * inv;
  }
}

CastLossStats measure_cast_loss(std::span<const float> values, float scale) {
  CastLossStats stats;
  stats.total = values.size();
  const float inv = 1.0f / scale;
  for (float v : values) {
    const Half h(v * scale);
    const float back = static_cast<float>(h) * inv;
    if (v != 0.0f && back == 0.0f) {
      ++stats.flushed_to_zero;
    } else if (std::isfinite(v * scale) && h.is_inf()) {
      ++stats.overflowed;
    } else if (v != 0.0f && std::isfinite(back)) {
      stats.max_rel_error = std::max(
          stats.max_rel_error,
          static_cast<double>(std::fabs(back - v) / std::fabs(v)));
    }
  }
  return stats;
}

}  // namespace zipflm
