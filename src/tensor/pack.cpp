#include "zipflm/tensor/pack.hpp"

#include <cmath>
#include <cstring>

#include "zipflm/tensor/simd.hpp"

namespace zipflm::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference paths.  The vector paths below must match these bitwise.
// ---------------------------------------------------------------------------

void split_scalar(const std::byte* src, std::size_t elems, std::size_t width,
                  std::byte* planes) {
  for (std::size_t p = 0; p < width; ++p) {
    std::byte* out = planes + p * elems;
    for (std::size_t i = 0; i < elems; ++i) out[i] = src[i * width + p];
  }
}

void merge_scalar(const std::byte* planes, std::size_t elems, std::size_t width,
                  std::byte* dst) {
  for (std::size_t p = 0; p < width; ++p) {
    const std::byte* in = planes + p * elems;
    for (std::size_t i = 0; i < elems; ++i) dst[i * width + p] = in[i];
  }
}

std::int8_t quant_one(float x, float scale) {
  const float r = std::nearbyintf(x / scale);
  long v = static_cast<long>(r);
  if (v > 127) v = 127;
  if (v < -127) v = -127;
  return static_cast<std::int8_t>(v);
}

#if defined(ZIPFLM_SIMD_AVX2) || defined(ZIPFLM_SIMD_SSE2)

// De-interleave 16-bit elements into low/high byte planes, 16 at a time.
void split2_sse2(const std::byte* src, std::size_t elems, std::byte* lo,
                 std::byte* hi) {
  const __m128i mask = _mm_set1_epi16(0x00FF);
  std::size_t i = 0;
  for (; i + 16 <= elems; i += 16) {
    const __m128i a = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + 2 * i));
    const __m128i b = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + 2 * i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lo + i),
                     _mm_packus_epi16(_mm_and_si128(a, mask),
                                      _mm_and_si128(b, mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hi + i),
                     _mm_packus_epi16(_mm_srli_epi16(a, 8),
                                      _mm_srli_epi16(b, 8)));
  }
  for (; i < elems; ++i) {
    lo[i] = src[2 * i];
    hi[i] = src[2 * i + 1];
  }
}

void merge2_sse2(const std::byte* lo, const std::byte* hi, std::size_t elems,
                 std::byte* dst) {
  std::size_t i = 0;
  for (; i + 16 <= elems; i += 16) {
    const __m128i l =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + i));
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 2 * i),
                     _mm_unpacklo_epi8(l, h));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 2 * i + 16),
                     _mm_unpackhi_epi8(l, h));
  }
  for (; i < elems; ++i) {
    dst[2 * i] = lo[i];
    dst[2 * i + 1] = hi[i];
  }
}

#endif  // SSE2 or AVX2

#if defined(ZIPFLM_SIMD_AVX2)

// 4x8 byte transpose of 8 little-endian 32-bit elements per iteration:
// in-lane pshufb groups byte p of each lane's 4 elements, then a 32-bit
// permute gathers the two lanes' groups so each plane gets 8 contiguous
// bytes.  The pshufb pattern is a 4x4 transpose and therefore its own
// inverse, which merge reuses.
void split4_avx2(const std::byte* src, std::size_t elems, std::byte* planes) {
  const __m256i shuf = _mm256_setr_epi8(
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::byte* p0 = planes;
  std::byte* p1 = planes + elems;
  std::byte* p2 = planes + 2 * elems;
  std::byte* p3 = planes + 3 * elems;
  std::size_t i = 0;
  for (; i + 8 <= elems; i += 8) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + 4 * i));
    v = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(v, shuf), perm);
    const __m128i a = _mm256_castsi256_si128(v);
    const __m128i b = _mm256_extracti128_si256(v, 1);
    const std::uint64_t q0 =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(a));
    const std::uint64_t q1 =
        static_cast<std::uint64_t>(_mm_extract_epi64(a, 1));
    const std::uint64_t q2 =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(b));
    const std::uint64_t q3 =
        static_cast<std::uint64_t>(_mm_extract_epi64(b, 1));
    std::memcpy(p0 + i, &q0, 8);
    std::memcpy(p1 + i, &q1, 8);
    std::memcpy(p2 + i, &q2, 8);
    std::memcpy(p3 + i, &q3, 8);
  }
  for (; i < elems; ++i) {
    p0[i] = src[4 * i];
    p1[i] = src[4 * i + 1];
    p2[i] = src[4 * i + 2];
    p3[i] = src[4 * i + 3];
  }
}

void merge4_avx2(const std::byte* planes, std::size_t elems, std::byte* dst) {
  const __m256i shuf = _mm256_setr_epi8(
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const std::byte* p0 = planes;
  const std::byte* p1 = planes + elems;
  const std::byte* p2 = planes + 2 * elems;
  const std::byte* p3 = planes + 3 * elems;
  std::size_t i = 0;
  for (; i + 8 <= elems; i += 8) {
    std::uint64_t q0, q1, q2, q3;
    std::memcpy(&q0, p0 + i, 8);
    std::memcpy(&q1, p1 + i, 8);
    std::memcpy(&q2, p2 + i, 8);
    std::memcpy(&q3, p3 + i, 8);
    __m256i v = _mm256_set_epi64x(static_cast<long long>(q3),
                                  static_cast<long long>(q2),
                                  static_cast<long long>(q1),
                                  static_cast<long long>(q0));
    v = _mm256_shuffle_epi8(_mm256_permutevar8x32_epi32(v, perm), shuf);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * i), v);
  }
  for (; i < elems; ++i) {
    dst[4 * i] = p0[i];
    dst[4 * i + 1] = p1[i];
    dst[4 * i + 2] = p2[i];
    dst[4 * i + 3] = p3[i];
  }
}

void quant_avx2(const float* src, std::size_t n, float scale,
                std::int8_t* dst) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 q = _mm256_div_ps(_mm256_loadu_ps(src + i), vs);
    q = _mm256_round_ps(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256i qi = _mm256_cvtps_epi32(q);
    qi = _mm256_max_epi32(_mm256_min_epi32(qi, hi), lo);
    const __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(qi),
                                      _mm256_extracti128_si256(qi, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packs_epi16(w, w));
  }
  for (; i < n; ++i) dst[i] = quant_one(src[i], scale);
}

void dequant_avx2(const std::int8_t* q, std::size_t n, float scale,
                  float* dst) {
  const __m256 vs = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(f, vs));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(q[i]) * scale;
}

#endif  // ZIPFLM_SIMD_AVX2

}  // namespace

void byteplane_split(const std::byte* src, std::size_t elems,
                     std::size_t width, std::byte* planes) {
  if (active_backend() == Backend::kNative) {
#if defined(ZIPFLM_SIMD_AVX2) || defined(ZIPFLM_SIMD_SSE2)
    if (width == 2) {
      split2_sse2(src, elems, planes, planes + elems);
      return;
    }
#endif
#if defined(ZIPFLM_SIMD_AVX2)
    if (width == 4) {
      split4_avx2(src, elems, planes);
      return;
    }
#endif
  }
  split_scalar(src, elems, width, planes);
}

void byteplane_merge(const std::byte* planes, std::size_t elems,
                     std::size_t width, std::byte* dst) {
  if (active_backend() == Backend::kNative) {
#if defined(ZIPFLM_SIMD_AVX2) || defined(ZIPFLM_SIMD_SSE2)
    if (width == 2) {
      merge2_sse2(planes, planes + elems, elems, dst);
      return;
    }
#endif
#if defined(ZIPFLM_SIMD_AVX2)
    if (width == 4) {
      merge4_avx2(planes, elems, dst);
      return;
    }
#endif
  }
  merge_scalar(planes, elems, width, dst);
}

void int8_quantize(const float* src, std::size_t n, float scale,
                   std::int8_t* dst) {
#if defined(ZIPFLM_SIMD_AVX2)
  if (active_backend() == Backend::kNative) {
    quant_avx2(src, n, scale, dst);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] = quant_one(src[i], scale);
}

void int8_dequantize(const std::int8_t* q, std::size_t n, float scale,
                     float* dst) {
#if defined(ZIPFLM_SIMD_AVX2)
  if (active_backend() == Backend::kNative) {
    dequant_avx2(q, n, scale, dst);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(q[i]) * scale;
  }
}

}  // namespace zipflm::simd
