// Kernels over Tensor: BLAS-3, elementwise activations and their
// derivatives, row softmax, reductions, row gather / scatter-add.
//
// All kernels are deterministic: parallel decomposition never changes the
// floating-point accumulation order of a single output element, which the
// exchange-equivalence tests in core/ rely on.
#pragma once

#include <span>

#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

/// C = alpha * op(A) * op(B) + beta * C.  op is identity or transpose.
/// Shapes are validated against the requested transposes.
void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha = 1.0f, float beta = 0.0f);

/// y += alpha * x (same total size; shape-agnostic).
void axpy(float alpha, const Tensor& x, Tensor& y);

/// x *= alpha.
void scale(Tensor& x, float alpha);

/// Elementwise y = f(x); x and y may alias.
void sigmoid(const Tensor& x, Tensor& y);
void tanh_op(const Tensor& x, Tensor& y);
void relu(const Tensor& x, Tensor& y);

/// Given activation output y (not pre-activation), write f'(x) expressed in
/// terms of y: sigmoid' = y(1-y), tanh' = 1-y^2.  dy may alias y.
void sigmoid_grad_from_output(const Tensor& y, Tensor& dy);
void tanh_grad_from_output(const Tensor& y, Tensor& dy);

/// Elementwise product z = x ⊙ y (z may alias either input).
void hadamard(const Tensor& x, const Tensor& y, Tensor& z);

/// Row-wise softmax of a matrix (numerically stabilized by row max).
void softmax_rows(const Tensor& logits, Tensor& probs);

/// Row-wise log-softmax.
void log_softmax_rows(const Tensor& logits, Tensor& log_probs);

/// Reductions.
float sum(const Tensor& x);
float max_abs(const Tensor& x);
float l2_norm(const Tensor& x);

/// out.row(i) = table.row(ids[i]).  The embedding forward pass.
void gather_rows(const Tensor& table, std::span<const Index> ids, Tensor& out);

/// table.row(ids[i]) += grad.row(i), accumulated in the order given —
/// the single-GPU embedding backward pass the paper describes (the
/// "reverse mapping" accumulation).
void scatter_add_rows(const Tensor& grad, std::span<const Index> ids,
                      Tensor& table);

/// Bias helpers: y.row(i) += bias for all rows; db[j] += sum_i dy(i,j).
void add_bias_rows(Tensor& y, const Tensor& bias);
void bias_grad(const Tensor& dy, Tensor& db);

/// Clip every element into [-limit, limit].
void clip(Tensor& x, float limit);

}  // namespace zipflm
